//! Fault-injection suite for the parallel experiment engine: a panicking
//! task must abort the run with a structured error naming the task index,
//! label, and seed — never a hang, never a leaked worker thread — and the
//! engine must stay usable afterwards.

use warehouse_alloc::parallel::{Engine, Task};
use warehouse_alloc::sim_hw::topology::Platform;
use warehouse_alloc::tcmalloc::TcmallocConfig;
use warehouse_alloc::workload::driver::{run_batch, DriverConfig, RunJob};
use warehouse_alloc::workload::profiles;

fn counting_tasks(n: usize) -> Vec<Task<usize>> {
    Task::seeded(99, (0..n).map(|i| (format!("unit {i}"), i)))
}

/// Current thread count of this process, from /proc/self/status.
#[cfg(target_os = "linux")]
fn thread_count() -> usize {
    let status = std::fs::read_to_string("/proc/self/status").expect("proc status");
    status
        .lines()
        .find_map(|l| l.strip_prefix("Threads:"))
        .and_then(|v| v.trim().parse().ok())
        .expect("Threads: line")
}

#[test]
fn panicking_task_aborts_with_structured_error() {
    let tasks = counting_tasks(16);
    let err = Engine::new(4)
        .run(&tasks, |task, index| {
            assert!(index != 11, "injected fault in {}", task.label);
            index
        })
        .expect_err("task 11 panics");
    assert_eq!(err.index, 11);
    assert_eq!(err.seed, tasks[11].seed, "error carries the task's seed");
    assert_eq!(err.label, "unit 11");
    assert!(
        err.message.contains("injected fault in unit 11"),
        "panic payload preserved: {}",
        err.message
    );
    let display = err.to_string();
    assert!(
        display.contains("task 11") && display.contains(&format!("{:#018x}", err.seed)),
        "display names index and seed: {display}"
    );
}

#[test]
fn serial_engine_reports_first_failure() {
    // With one worker the failing task is exactly the first failing index,
    // matching a plain for-loop — the reference for debugging.
    let tasks = counting_tasks(8);
    let err = Engine::serial()
        .run(&tasks, |_, index| {
            assert!(index < 3, "boom");
            index
        })
        .expect_err("task 3 panics");
    assert_eq!(err.index, 3);
}

#[test]
fn engine_is_reusable_after_abort_and_leaks_no_threads() {
    let engine = Engine::new(8);
    #[cfg(target_os = "linux")]
    let before = {
        // Warm up once so the measurement ignores any lazily-created
        // runtime threads, then count.
        let tasks = counting_tasks(4);
        engine.run(&tasks, |_, i| i).expect("clean run");
        thread_count()
    };
    for round in 0..3 {
        let tasks = counting_tasks(32);
        let err = engine
            .run(&tasks, |_, index| {
                assert!(index != 7, "round {round}");
                index
            })
            .expect_err("injected panic");
        assert_eq!(err.index, 7, "deterministic failing index each round");
    }
    // Scoped threads join before `run` returns, so this engine's workers
    // are gone already. The process-wide count can still be transiently
    // inflated by *other* tests' engines running concurrently in this
    // binary, so allow a short settle window; a genuine leak never drains.
    #[cfg(target_os = "linux")]
    {
        let mut now = thread_count();
        for _ in 0..100 {
            if now <= before {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(10));
            now = thread_count();
        }
        assert!(
            now <= before,
            "worker threads joined after aborted runs ({now} > baseline {before})"
        );
    }
    // And the engine still completes clean work afterwards.
    let tasks = counting_tasks(32);
    let out = engine.run(&tasks, |_, i| i * 2).expect("clean run");
    assert_eq!(out, (0..32).map(|i| i * 2).collect::<Vec<_>>());
}

#[test]
fn run_batch_fault_names_the_failing_job_seed() {
    let platform = Platform::chiplet("t", 1, 2, 4, 2);
    let good = |seed: u64| RunJob {
        spec: profiles::fleet_mix(),
        platform: platform.clone(),
        tcm_cfg: TcmallocConfig::baseline(),
        dcfg: DriverConfig::new(400, seed, &platform),
    };
    // Job 1 violates the driver's non-empty-cpuset contract and panics
    // inside the simulation; the abort must name that job's seed.
    let mut bad = good(0xbad5eed);
    bad.dcfg.cpuset.clear();
    let jobs = vec![good(1), bad, good(2)];
    let err = run_batch(&Engine::new(2), jobs, |r, _| r.throughput).expect_err("job 1 panics");
    assert_eq!(err.index, 1);
    assert_eq!(err.seed, 0xbad5eed, "error carries the job's driver seed");
    assert!(
        err.message.contains("cpuset must be non-empty"),
        "driver assertion surfaced: {}",
        err.message
    );
}
