//! Cross-thread free integration suite: the contention-real ownership
//! model under deterministic interleaving schedules.
//!
//! Three properties, per the paper's A/B methodology:
//!
//! 1. **No remote free left behind** — after a schedule's settling drain,
//!    every queued remote free has been adopted by its owner
//!    (`in_flight == 0`, `queued == drained`), under both deferred arms.
//! 2. **Conservation under fire** — the sanitizer's `Full` shadow checks
//!    and cross-tier audits stay at zero findings with deferred frees in
//!    flight mid-run and after the drain.
//! 3. **Interleaving determinism** — replaying the schedules through the
//!    experiment [`Engine`] yields byte-identical event logs at 1, 2, and
//!    8 engine threads (the schedule is data; the engine only changes who
//!    executes it).

use wsc_parallel::{Engine, Task};
use wsc_sim_hw::topology::Platform;
use wsc_tcmalloc::interleave::{replay, ReplayOutcome, Schedule};
use wsc_tcmalloc::{FreeArm, SanitizeLevel, TcmallocConfig};

fn platform() -> Platform {
    // Two LLC domains: producers and consumers sit on opposite sides so
    // remote frees also cross the NUCA shard boundary.
    Platform::chiplet("t", 1, 2, 4, 2)
}

fn deferred_arms() -> [FreeArm; 2] {
    [FreeArm::AtomicList, FreeArm::MessagePassing]
}

/// Producer→consumer and thread-churn schedules used by every test here.
fn scenarios(seed: u64) -> Vec<(String, Schedule)> {
    vec![
        (
            "producer-consumer".into(),
            Schedule::producer_consumer(seed, &[0, 1, 2], &[8, 9, 10], 1_200),
        ),
        (
            "thread-churn".into(),
            Schedule::thread_churn(seed ^ 0x5EED, 16, 1_200),
        ),
    ]
}

#[test]
fn every_remote_free_is_eventually_drained() {
    for (name, sched) in scenarios(0xC0FFEE) {
        for arm in deferred_arms() {
            let cfg = TcmallocConfig::optimized().with_free_arm(arm);
            let out = replay(cfg, platform(), &sched);
            assert!(
                out.queued > 0,
                "{name}/{}: schedule never went remote",
                arm.name()
            );
            assert_eq!(
                out.in_flight,
                0,
                "{name}/{}: remote frees left parked after the drain",
                arm.name()
            );
            assert_eq!(
                out.queued,
                out.drained,
                "{name}/{}: queue/drain counters disagree",
                arm.name()
            );
        }
    }
}

#[test]
fn sanitizer_full_stays_clean_with_deferred_frees() {
    for (name, sched) in scenarios(0x5A11) {
        for arm in deferred_arms() {
            let cfg = TcmallocConfig::optimized()
                .with_free_arm(arm)
                .with_sanitize(SanitizeLevel::Full);
            let out = replay(cfg, platform(), &sched);
            assert_eq!(
                out.sanitizer_findings,
                0,
                "{name}/{}: sanitizer found violations",
                arm.name()
            );
        }
    }
}

#[test]
fn deferred_arms_agree_with_the_owner_only_heap() {
    // The free arm changes *when* objects flow back to the middle tiers,
    // never *which* objects are live: the final live set and its byte
    // accounting must match the owner-only oracle exactly.
    for (name, sched) in scenarios(0x0AC1E) {
        let oracle = replay(TcmallocConfig::optimized(), platform(), &sched);
        for arm in deferred_arms() {
            let cfg = TcmallocConfig::optimized().with_free_arm(arm);
            let out = replay(cfg, platform(), &sched);
            assert_eq!(
                out.live_objects,
                oracle.live_objects,
                "{name}/{}: live object count diverged",
                arm.name()
            );
            assert_eq!(
                out.live_bytes,
                oracle.live_bytes,
                "{name}/{}: live byte count diverged",
                arm.name()
            );
            assert_eq!(
                out.live_sizes,
                oracle.live_sizes,
                "{name}/{}: live size multiset diverged",
                arm.name()
            );
        }
    }
}

#[test]
fn event_logs_are_identical_across_engine_thread_counts() {
    // One task per (scenario × arm), including owner-only: nine replays,
    // each fingerprinting its complete event stream. The merged result
    // vector must be byte-identical at 1, 2, and 8 engine threads.
    let jobs: Vec<(String, (Schedule, FreeArm))> = scenarios(0xD17E)
        .into_iter()
        .flat_map(|(name, sched)| {
            [
                FreeArm::OwnerOnly,
                FreeArm::AtomicList,
                FreeArm::MessagePassing,
            ]
            .into_iter()
            .map(move |arm| (format!("{name}/{}", arm.name()), (sched.clone(), arm)))
        })
        .collect();
    let tasks = Task::seeded(0xD17E, jobs);
    let run = |threads: usize| -> Vec<ReplayOutcome> {
        Engine::new(threads)
            .run(&tasks, |task, _| {
                let (sched, arm) = &task.payload;
                replay(
                    TcmallocConfig::optimized().with_free_arm(*arm),
                    platform(),
                    sched,
                )
            })
            .expect("no replay panics")
    };
    let serial = run(1);
    assert!(
        serial.iter().all(|o| o.fingerprint.0 > 0),
        "every replay recorded events"
    );
    assert_eq!(serial, run(2), "threads=1 vs threads=2");
    assert_eq!(serial, run(8), "threads=1 vs threads=8");
}

#[test]
fn remote_traffic_is_visible_to_stats_and_events() {
    // Cross-thread traffic must be observable, not just correct: the
    // contention cycle category fills in and both remote event kinds
    // appear in the recorded stream.
    use wsc_sim_os::clock::Clock;
    use wsc_tcmalloc::{AllocEvent, CycleCategory, Tcmalloc};
    let sched = Schedule::producer_consumer(0x0B5, &[0, 1], &[8, 9], 800);
    let cfg = TcmallocConfig::optimized()
        .with_free_arm(FreeArm::AtomicList)
        .with_event_recorder();
    let mut tcm = Tcmalloc::new(cfg, platform(), Clock::new());
    let mut live: Vec<(u64, u64)> = Vec::new();
    for op in &sched.ops {
        use wsc_tcmalloc::interleave::SchedOp;
        match *op {
            SchedOp::Malloc { cpu, size } => {
                let a = tcm.malloc(size, wsc_sim_hw::topology::CpuId(cpu % 16));
                live.push((a.addr, size));
            }
            SchedOp::Free { slot, cpu } => {
                if live.is_empty() {
                    continue;
                }
                let (addr, size) = live.swap_remove(slot as usize % live.len());
                tcm.free(addr, size, wsc_sim_hw::topology::CpuId(cpu % 16));
            }
            SchedOp::Tick { ns } => {
                tcm.clock().advance(ns);
                tcm.maintain();
            }
            SchedOp::Drain => tcm.drain_deferred(),
        }
    }
    let queued = tcm
        .recorded_events()
        .iter()
        .filter(|e| matches!(e, AllocEvent::RemoteFreeQueued { .. }))
        .count() as u64;
    let drained: u64 = tcm
        .recorded_events()
        .iter()
        .filter_map(|e| match e {
            AllocEvent::RemoteFreeDrained { count, .. } => Some(u64::from(*count)),
            _ => None,
        })
        .sum();
    assert_eq!(
        queued,
        tcm.deferred().queued_total(),
        "event/counter parity"
    );
    assert_eq!(
        drained,
        tcm.deferred().drained_total(),
        "event/counter parity"
    );
    assert!(
        tcm.cycles().ns(CycleCategory::Contention) > 0.0,
        "contention cycles attributed"
    );
}
