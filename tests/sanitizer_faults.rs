//! Fault-injection suite for the allocator sanitizer: every [`ErrorKind`]
//! must fire at least once, each from the smallest fault that produces it.
//!
//! The application-visible shadow violations (double free, wrong-size-class
//! free, misaligned free, invalid free, unmapped free) are injected through
//! the public `Tcmalloc` API with `sanitize = Full` — the invalid operation
//! is rejected, reported, and the allocator stays consistent. The
//! structural kinds (overlap, conservation, occupancy, pagemap, hugepage)
//! are injected by corrupting shadow state or audit snapshots directly,
//! since a correct allocator cannot be driven into them from outside.

use std::collections::BTreeSet;

/// One snapshot-corruption injection: a label, the corruption, and the
/// [`ErrorKind`] the audit must report for it.
type CorruptionCase = (&'static str, Box<dyn Fn(&mut Snapshot)>, ErrorKind);
use warehouse_alloc::sanitizer::{
    audit, expected_list, ArenaSnapshot, ClassTierSnapshot, ErrorKind, HugepageSnapshot,
    PagemapLeafSnapshot, SanitizeLevel, ShadowState, Snapshot, SpanPlacement, SpanSnapshot,
};
use warehouse_alloc::sim_hw::topology::{CpuId, Platform};
use warehouse_alloc::sim_os::clock::Clock;
use warehouse_alloc::tcmalloc::{Tcmalloc, TcmallocConfig};

fn sanitized_alloc() -> Tcmalloc {
    Tcmalloc::new(
        TcmallocConfig::baseline().with_sanitize(SanitizeLevel::Full),
        Platform::chiplet("t", 1, 2, 4, 2),
        Clock::new(),
    )
}

/// The rounded object size for a request, via the public size-class table.
fn object_size(tcm: &Tcmalloc, request: u64) -> u64 {
    let cl = tcm.table().class_for(request).expect("small request");
    tcm.table().info(cl).size
}

/// Kinds reported by `tcm` for one injected fault, with the queue drained.
fn kinds_of(tcm: &mut Tcmalloc) -> Vec<ErrorKind> {
    tcm.take_sanitizer_reports()
        .into_iter()
        .map(|r| r.kind)
        .collect()
}

#[test]
fn double_free_is_rejected_and_reported() {
    let mut tcm = sanitized_alloc();
    let a = tcm.malloc(64, CpuId(0));
    tcm.free(a.addr, 64, CpuId(0));
    assert!(kinds_of(&mut tcm).is_empty(), "valid ops are silent");
    let out = tcm.free(a.addr, 64, CpuId(0));
    assert_eq!(out.ns, 0.0, "rejected free is charged nothing");
    assert_eq!(kinds_of(&mut tcm), vec![ErrorKind::DoubleFree]);
    // The rejected free must not corrupt accounting: a clean audit proves it.
    assert_eq!(tcm.live_objects(), 0);
    assert_eq!(tcm.audit_now(), 0);
}

#[test]
fn double_free_of_large_allocation_is_rejected_not_panicking() {
    // Without the sanitizer this is the `double_free_large_panics` case;
    // with it, the second free is rejected with a report instead.
    let mut tcm = sanitized_alloc();
    let a = tcm.malloc(1 << 20, CpuId(0));
    tcm.free(a.addr, 1 << 20, CpuId(0));
    tcm.free(a.addr, 1 << 20, CpuId(0));
    assert_eq!(kinds_of(&mut tcm), vec![ErrorKind::DoubleFree]);
    assert_eq!(tcm.audit_now(), 0);
}

#[test]
fn wrong_size_class_free_is_rejected_and_object_stays_live() {
    let mut tcm = sanitized_alloc();
    let a = tcm.malloc(64, CpuId(0));
    // 3000 B maps to a different size class than 64 B.
    tcm.free(a.addr, 3000, CpuId(0));
    assert_eq!(kinds_of(&mut tcm), vec![ErrorKind::WrongSizeClassFree]);
    assert_eq!(tcm.live_objects(), 1, "object survives the bad free");
    // The correct free still works afterwards.
    tcm.free(a.addr, 64, CpuId(0));
    assert!(kinds_of(&mut tcm).is_empty());
    assert_eq!(tcm.live_objects(), 0);
    assert_eq!(tcm.audit_now(), 0);
}

#[test]
fn misaligned_free_inside_live_object_is_rejected() {
    let mut tcm = sanitized_alloc();
    let a = tcm.malloc(64, CpuId(0));
    tcm.free(a.addr + 8, 64, CpuId(0));
    assert_eq!(kinds_of(&mut tcm), vec![ErrorKind::MisalignedFree]);
    tcm.free(a.addr, 64, CpuId(0));
    assert_eq!(tcm.audit_now(), 0);
}

#[test]
fn invalid_free_of_never_allocated_slot_is_rejected() {
    let mut tcm = sanitized_alloc();
    let a = tcm.malloc(64, CpuId(0));
    // The refill batch carved more 64-B-class objects from the same span
    // than the app ever received; the neighboring slot is mapped but was
    // never returned by malloc.
    let neighbor = a.addr + object_size(&tcm, 64);
    tcm.free(neighbor, 64, CpuId(0));
    assert_eq!(kinds_of(&mut tcm), vec![ErrorKind::InvalidFree]);
    tcm.free(a.addr, 64, CpuId(0));
    assert_eq!(tcm.audit_now(), 0);
}

#[test]
fn free_of_unmapped_address_is_rejected() {
    let mut tcm = sanitized_alloc();
    let a = tcm.malloc(64, CpuId(0));
    tcm.free(0x7777_0000_0000, 64, CpuId(0));
    assert_eq!(kinds_of(&mut tcm), vec![ErrorKind::UseOfUnmappedAddress]);
    tcm.free(a.addr, 64, CpuId(0));
    assert_eq!(tcm.audit_now(), 0);
}

#[test]
fn injected_os_faults_are_never_sanitizer_reports() {
    // A kernel fault is a refusal, not an allocator bug: under a storm that
    // denies mmaps, strips THP backing, and breaks subrelease all at once,
    // the shadow checker and the conservation audits must stay silent —
    // only *invalid application operations* may ever produce reports.
    use warehouse_alloc::sim_os::faults::{FaultPlan, PPM};
    // The ENOMEM rate must beat the pageheap's release-and-retry loop
    // (4 mmap draws per request) often enough to surface real refusals.
    let plan = FaultPlan {
        enomem_ppm: PPM * 3 / 4,
        deny_huge_ppm: PPM / 2,
        subrelease_fail_ppm: PPM / 2,
        latency_spike_ppm: PPM / 4,
        latency_spike_ns: 50_000,
        ..FaultPlan::off()
    }
    .with_seed(0xBAD05)
    .with_storm(0, u64::MAX);
    let clock = Clock::new();
    let mut tcm = Tcmalloc::new(
        TcmallocConfig::baseline()
            .with_sanitize(SanitizeLevel::Full)
            .with_os_faults(plan)
            .with_soft_limit(4 << 20),
        Platform::chiplet("t", 1, 2, 4, 2),
        clock.clone(),
    );
    let mut live = Vec::new();
    let mut refused = 0u64;
    for round in 0..200u64 {
        let size = if round % 3 == 0 {
            2 << 20
        } else {
            64 + round * 16
        };
        match tcm.try_malloc(size, CpuId(0)) {
            Ok(a) => live.push((a.addr, size)),
            Err(_) => refused += 1,
        }
        if live.len() > 12 {
            let (addr, size) = live.remove(0);
            tcm.free(addr, size, CpuId(0));
        }
        clock.advance(10_000_000);
        tcm.maintain();
    }
    let stats = tcm.fault_stats();
    assert!(
        stats.enomem_injected + stats.huge_denied + stats.subrelease_failed > 0,
        "the storm actually bit: {stats:?}"
    );
    assert!(refused > 0, "some allocations were refused outright");
    assert!(
        tcm.take_sanitizer_reports().is_empty(),
        "injected kernel faults masqueraded as allocator bugs"
    );
    for (addr, size) in live {
        tcm.free(addr, size, CpuId(0));
    }
    assert_eq!(tcm.live_objects(), 0);
    assert_eq!(tcm.audit_now(), 0, "conservation holds after the storm");
    assert!(tcm.take_sanitizer_reports().is_empty());
}

#[test]
fn overlapping_allocation_is_reported_by_the_shadow() {
    let mut shadow = ShadowState::new();
    shadow.record_alloc(0x10000, 64, Some(3), 0, 0x10000, 2);
    // Second object overlapping the first by 32 bytes.
    shadow.record_alloc(0x10020, 64, Some(3), 0, 0x10000, 2);
    let kinds: Vec<_> = shadow.take_reports().iter().map(|r| r.kind).collect();
    assert_eq!(kinds, vec![ErrorKind::OverlappingAllocation]);
}

#[test]
fn span_leak_with_live_objects_is_reported() {
    let mut shadow = ShadowState::new();
    shadow.record_alloc(0x10000, 64, Some(3), 0, 0x10000, 2);
    // The span vanishes (returned to the pageheap) while the object lives.
    shadow.forget_span(0x10000);
    let reports = shadow.take_reports();
    assert_eq!(reports.len(), 1);
    assert_eq!(reports[0].kind, ErrorKind::ObjectConservationViolation);
    assert!(reports[0].detail.contains("released with live object"));
}

/// A minimal consistent world for snapshot-corruption injections: one
/// class-3 span with one live object, one cached object, rest span-free.
fn consistent_world() -> (Snapshot, ShadowState) {
    let mut shadow = ShadowState::new();
    shadow.record_alloc(0x10000, 64, Some(3), 0, 0x10000, 2);
    let snap = Snapshot {
        classes: vec![ClassTierSnapshot {
            class: 3,
            object_size: 64,
            percpu_objects: 1,
            transfer_objects: 0,
            deferred_objects: 0,
            central_free_objects: 254,
        }],
        spans: vec![SpanSnapshot {
            id: 0,
            start: 0x10000,
            pages: 2,
            size_class: Some(3),
            capacity: 256,
            allocated: 2,
            free_count: 254,
            placement: SpanPlacement::Freelist {
                list: expected_list(2, 8) as u8,
            },
        }],
        occupancy_lists: 8,
        pagemap_pages: 2,
        pages_per_leaf: 32768,
        pagemap_leaves: vec![PagemapLeafSnapshot {
            base_page: 0,
            pages_used: 2,
        }],
        pages_per_hugepage: 256,
        hugepages: vec![HugepageSnapshot {
            base: 0,
            used_pages: 2,
            free_pages: 254,
            released_pages: 0,
            used_and_released: 0,
        }],
        resident_bytes: 1000,
        live_bytes: 600,
        fragmentation_bytes: 400,
        // One live span of capacity 256: one slot, a 256-entry region,
        // ⌈256/64⌉ = 4 bitmap words, nothing retired.
        arena: ArenaSnapshot {
            slots_total: 1,
            slots_live: 1,
            free_pool_entries: 256,
            bitmap_pool_words: 4,
            reserved_entries: 256,
            reserved_words: 4,
            retired_entries: 0,
            retired_words: 0,
        },
    };
    (snap, shadow)
}

#[test]
fn audit_kind_injections_each_fire_their_kind() {
    // Sanity: the uncorrupted world audits clean.
    let (snap, shadow) = consistent_world();
    assert_eq!(audit(&snap, &shadow), Vec::new());

    // Corruption -> expected kind, one fault at a time.
    let cases: Vec<CorruptionCase> = vec![
        (
            "lost cached object",
            Box::new(|s: &mut Snapshot| s.classes[0].percpu_objects = 0),
            ErrorKind::ObjectConservationViolation,
        ),
        (
            "resident bytes drift",
            Box::new(|s: &mut Snapshot| s.resident_bytes += 4096),
            ErrorKind::ByteConservationViolation,
        ),
        (
            "span on wrong occupancy list",
            Box::new(|s: &mut Snapshot| {
                s.spans[0].placement = SpanPlacement::Freelist { list: 0 };
            }),
            ErrorKind::SpanOccupancyViolation,
        ),
        (
            "pagemap page-count drift",
            Box::new(|s: &mut Snapshot| s.pagemap_pages = 7),
            ErrorKind::PagemapViolation,
        ),
        (
            "hugepage used/released overlap",
            Box::new(|s: &mut Snapshot| s.hugepages[0].used_and_released = 3),
            ErrorKind::HugepageBackingViolation,
        ),
        (
            "radix leaf occupancy drift",
            Box::new(|s: &mut Snapshot| {
                // Totals still balance (2 pages) but the per-leaf split is
                // wrong: only the leaf-occupancy audit can see it.
                s.pagemap_leaves[0].pages_used = 1;
                s.pagemap_leaves.push(PagemapLeafSnapshot {
                    base_page: 32768,
                    pages_used: 1,
                });
            }),
            ErrorKind::PagemapViolation,
        ),
        (
            "metadata arena pool drift",
            Box::new(|s: &mut Snapshot| s.arena.free_pool_entries += 7),
            ErrorKind::ArenaConservationViolation,
        ),
    ];
    for (name, corrupt, expected) in cases {
        let (mut snap, shadow) = consistent_world();
        corrupt(&mut snap);
        let kinds: BTreeSet<_> = audit(&snap, &shadow).iter().map(|r| r.kind).collect();
        assert!(kinds.contains(&expected), "{name}: got {kinds:?}");
    }
}

#[test]
fn every_error_kind_fires_at_least_once() {
    let mut fired: BTreeSet<ErrorKind> = BTreeSet::new();

    // Shadow kinds through the public allocator API.
    let mut tcm = sanitized_alloc();
    let a = tcm.malloc(64, CpuId(0));
    let neighbor = a.addr + object_size(&tcm, 64);
    tcm.free(a.addr + 8, 64, CpuId(0)); // misaligned
    tcm.free(neighbor, 64, CpuId(0)); // invalid (never allocated)
    tcm.free(a.addr, 3000, CpuId(0)); // wrong size class
    tcm.free(0x7777_0000_0000, 64, CpuId(0)); // unmapped
    tcm.free(a.addr, 64, CpuId(0)); // valid
    tcm.free(a.addr, 64, CpuId(0)); // double free
    fired.extend(tcm.take_sanitizer_reports().iter().map(|r| r.kind));

    // Structural kinds through direct shadow/audit injection.
    let mut shadow = ShadowState::new();
    shadow.record_alloc(0x10000, 64, Some(3), 0, 0x10000, 2);
    shadow.record_alloc(0x10020, 64, Some(3), 0, 0x10000, 2); // overlap
    fired.extend(shadow.take_reports().iter().map(|r| r.kind));

    for corrupt in [
        (|s: &mut Snapshot| s.classes[0].percpu_objects = 9) as fn(&mut Snapshot),
        |s| s.resident_bytes += 1,
        |s| s.spans[0].placement = SpanPlacement::Full,
        |s| s.pagemap_pages = 0,
        |s| s.hugepages[0].released_pages = 255,
        |s| s.arena.slots_live = 0,
    ] {
        let (mut snap, shadow) = consistent_world();
        corrupt(&mut snap);
        fired.extend(audit(&snap, &shadow).iter().map(|r| r.kind));
    }

    for kind in ErrorKind::ALL {
        assert!(fired.contains(&kind), "{kind:?} never fired");
    }
}
