//! Thread-count-invariance suite for the parallel experiment engine: the
//! same experiment at `threads = 1, 2, 8` must produce byte-identical
//! merged reports. The comparison serializes each result with `{:?}` and
//! compares the strings, so any float that shifts by one ULP fails.

use warehouse_alloc::fleet::experiment::{
    default_platform_mix, try_run_fleet_ab, try_run_workload_ab, FleetExperimentConfig,
};
use warehouse_alloc::parallel::Engine;
use warehouse_alloc::sim_hw::topology::Platform;
use warehouse_alloc::sim_os::faults::FaultPlan;
use warehouse_alloc::tcmalloc::TcmallocConfig;
use warehouse_alloc::workload::profiles;

fn quick_cfg(seed: u64) -> FleetExperimentConfig {
    FleetExperimentConfig {
        machines: 3,
        binaries_per_machine: 2,
        requests_per_binary: 1_000,
        seed,
        platform_mix: default_platform_mix(),
        population: 40,
    }
}

#[test]
fn fleet_ab_identical_at_threads_1_2_8() {
    let cfg = quick_cfg(11);
    let reports: Vec<String> = [1usize, 2, 8]
        .iter()
        .map(|&threads| {
            let r = try_run_fleet_ab(
                &Engine::new(threads),
                TcmallocConfig::baseline(),
                TcmallocConfig::optimized(),
                &cfg,
            )
            .expect("no cell panics");
            format!("{r:?}")
        })
        .collect();
    assert_eq!(reports[0], reports[1], "threads=1 vs threads=2");
    assert_eq!(reports[0], reports[2], "threads=1 vs threads=8");
}

#[test]
fn workload_ab_identical_at_threads_1_2_8() {
    let platform = Platform::chiplet("t", 1, 2, 4, 2);
    let spec = profiles::monarch();
    let reports: Vec<String> = [1usize, 2, 8]
        .iter()
        .map(|&threads| {
            let c = try_run_workload_ab(
                &Engine::new(threads),
                &spec,
                &platform,
                TcmallocConfig::baseline(),
                TcmallocConfig::optimized(),
                1_500,
                9,
            )
            .expect("no arm panics");
            format!("{c:?}")
        })
        .collect();
    assert_eq!(reports[0], reports[1], "threads=1 vs threads=2");
    assert_eq!(reports[0], reports[2], "threads=1 vs threads=8");
}

#[test]
fn fault_storm_identical_at_threads_1_2_8() {
    // Fault injection is part of the determinism contract: the same seeded
    // storm must perturb every cell identically regardless of how the
    // engine schedules them. Both arms run under an ENOMEM storm wide
    // enough to cover the whole quick run, so denied mmaps, release-retry
    // loops, and refused allocations all land in the compared reports.
    let cfg = quick_cfg(31);
    let storm = FaultPlan::named("enomem-storm", 0xFA57)
        .expect("catalogued storm")
        .with_storm(0, u64::MAX);
    let reports: Vec<String> = [1usize, 2, 8]
        .iter()
        .map(|&threads| {
            let r = try_run_fleet_ab(
                &Engine::new(threads),
                TcmallocConfig::baseline().with_os_faults(storm),
                TcmallocConfig::optimized().with_os_faults(storm),
                &cfg,
            )
            .expect("faults are refusals, not panics");
            format!("{r:?}")
        })
        .collect();
    assert_eq!(reports[0], reports[1], "threads=1 vs threads=2");
    assert_eq!(reports[0], reports[2], "threads=1 vs threads=8");
}

#[test]
fn merged_telemetry_identical_across_thread_counts() {
    // The resident-memory telemetry folds into fixed buckets in canonical
    // leaf order; the folded bytes must not depend on which worker
    // finished first.
    let cfg = quick_cfg(23);
    let serial = try_run_fleet_ab(
        &Engine::new(1),
        TcmallocConfig::baseline(),
        TcmallocConfig::baseline(),
        &cfg,
    )
    .expect("no cell panics");
    let threaded = try_run_fleet_ab(
        &Engine::new(4),
        TcmallocConfig::baseline(),
        TcmallocConfig::baseline(),
        &cfg,
    )
    .expect("no cell panics");
    assert!(
        serial.summary.resident.samples() > 0,
        "cells produced telemetry"
    );
    assert_eq!(
        serial.summary.encode(),
        threaded.summary.encode(),
        "folded summary byte-identical across thread counts"
    );
}
