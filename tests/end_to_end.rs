//! Cross-crate integration tests: the full stack (workload driver →
//! allocator → simulated OS/hardware) must run, be deterministic, keep its
//! byte accounting exact, and — most importantly — each of the paper's four
//! redesigns must move its headline metric in the direction the paper
//! reports, on the workload class the paper says it helps.

use warehouse_alloc::fleet::experiment::{run_fleet_ab, run_workload_ab, FleetExperimentConfig};
use warehouse_alloc::sim_hw::topology::Platform;
use warehouse_alloc::tcmalloc::{SanitizeLevel, TcmallocConfig};
use warehouse_alloc::workload::driver::{self, DriverConfig};
use warehouse_alloc::workload::profiles;

fn platform() -> Platform {
    Platform::chiplet("chiplet-64c", 2, 4, 8, 2)
}

const REQUESTS: u64 = 12_000;

#[test]
fn full_stack_runs_and_accounts_exactly() {
    let p = platform();
    let dcfg = DriverConfig::new(REQUESTS, 42, &p);
    // The sanitizer at Full shadow-checks every operation and audits
    // cross-tier conservation periodically; the run must stay report-free.
    let cfg = TcmallocConfig::baseline().with_sanitize(SanitizeLevel::Full);
    let (r, mut tcm) = driver::run(&profiles::fleet_mix(), &p, cfg, &dcfg);
    assert!(r.throughput > 0.0);
    assert!(r.cpi > 0.4 && r.cpi < 10.0);
    // Byte-accounting identity: resident == live + all fragmentation.
    let f = tcm.fragmentation();
    assert_eq!(
        f.resident_bytes,
        f.live_bytes + f.total_bytes(),
        "accounting identity"
    );
    assert!(tcm.audits_run() > 0, "periodic audits ran during the drive");
    assert_eq!(tcm.audit_now(), 0, "end-of-run audit is clean");
    let reports = tcm.take_sanitizer_reports();
    assert!(reports.is_empty(), "sanitizer reports: {reports:?}");
}

#[test]
fn runs_are_deterministic_per_seed() {
    let p = platform();
    let dcfg = DriverConfig::new(6_000, 7, &p);
    let run = || driver::run(&profiles::monarch(), &p, TcmallocConfig::optimized(), &dcfg);
    let (a, _) = run();
    let (b, _) = run();
    assert_eq!(a.busy_cpu_seconds, b.busy_cpu_seconds);
    assert_eq!(a.llc, b.llc);
    assert_eq!(a.tlb, b.tlb);
    assert_eq!(a.fragmentation, b.fragmentation);
}

#[test]
fn teardown_leaves_clean_heap_under_every_config() {
    let p = platform();
    for cfg in [
        TcmallocConfig::baseline(),
        TcmallocConfig::optimized(),
        TcmallocConfig::baseline().with_nuca_transfer(),
        TcmallocConfig::baseline().with_lifetime_filler(),
    ] {
        let dcfg = DriverConfig {
            drain_at_end: true,
            ..DriverConfig::new(5_000, 3, &p)
        };
        // Sanitize every configuration: a full teardown with the shadow
        // checker on proves no double/invalid frees anywhere in the drive.
        let cfg = cfg.with_sanitize(SanitizeLevel::Full);
        let (_, mut tcm) = driver::run(&profiles::tensorflow(), &p, cfg, &dcfg);
        assert_eq!(tcm.live_bytes(), 0);
        assert_eq!(tcm.live_objects(), 0);
        assert_eq!(tcm.fragmentation().internal_bytes, 0);
        assert_eq!(tcm.audit_now(), 0);
        assert!(tcm.take_sanitizer_reports().is_empty());
    }
}

#[test]
fn heterogeneous_caches_reduce_memory() {
    // Figure 10: the §4.1 redesign reduces RAM on multi-threaded workloads.
    let base = TcmallocConfig::baseline();
    let exp = base.with_heterogeneous_percpu();
    let c = run_workload_ab(&profiles::monarch(), &platform(), base, exp, REQUESTS, 42);
    assert!(
        c.memory_pct() < -0.2,
        "expected memory reduction, got {:+.2}%",
        c.memory_pct()
    );
}

#[test]
fn nuca_transfer_cache_reduces_llc_misses_on_chiplets() {
    // Table 1: cache-domain-local object reuse lowers LLC MPKI.
    let base = TcmallocConfig::baseline();
    let exp = base.with_nuca_transfer();
    let c = run_workload_ab(&profiles::disk(), &platform(), base, exp, REQUESTS * 2, 42);
    // Remote-domain transfers become local hits: stall time drops even when
    // the raw miss count wobbles, so the robust signal is CPI/throughput.
    assert!(c.cpi_pct() < 0.0, "CPI {:+.2}%", c.cpi_pct());
    assert!(c.throughput_pct() > 0.0, "thr {:+.2}%", c.throughput_pct());
}

#[test]
fn lifetime_filler_improves_tlb_behaviour() {
    // Table 2 / Figure 17: fewer dTLB misses and higher throughput on the
    // buffer-churning workloads (disk is the paper's biggest winner).
    let base = TcmallocConfig::baseline();
    let exp = base.with_lifetime_filler();
    let c = run_workload_ab(&profiles::disk(), &platform(), base, exp, REQUESTS * 2, 42);
    assert!(
        c.experiment.dtlb_miss_rate < c.control.dtlb_miss_rate,
        "dTLB miss {:.4} -> {:.4}",
        c.control.dtlb_miss_rate,
        c.experiment.dtlb_miss_rate
    );
    assert!(c.throughput_pct() > 0.0, "thr {:+.2}%", c.throughput_pct());
}

#[test]
fn span_prioritization_never_hurts_memory() {
    // Figure 14: span prioritization densifies spans; memory must not grow.
    let base = TcmallocConfig::baseline();
    let exp = base.with_span_prioritization();
    for spec in [profiles::monarch(), profiles::fleet_mix()] {
        let c = run_workload_ab(&spec, &platform(), base, exp, REQUESTS, 42);
        assert!(
            c.memory_pct() < 0.5,
            "{}: memory {:+.2}%",
            spec.name,
            c.memory_pct()
        );
    }
}

#[test]
fn redis_is_unaffected_by_multithread_optimizations() {
    // §4.1/§4.2: Redis is single-threaded — one per-CPU cache, one domain.
    let base = TcmallocConfig::baseline();
    let exp = base.with_heterogeneous_percpu().with_nuca_transfer();
    let c = run_workload_ab(&profiles::redis(), &platform(), base, exp, REQUESTS, 42);
    assert!(
        c.throughput_pct().abs() < 1.0,
        "redis should be ~unchanged, got {:+.2}%",
        c.throughput_pct()
    );
}

#[test]
fn spec_has_negligible_malloc_share() {
    // Figure 5a: SPEC benchmarks are unsuitable for allocator studies.
    let p = platform();
    let dcfg = DriverConfig::new(REQUESTS, 5, &p);
    let (spec_r, _) = driver::run(
        &profiles::spec_cpu(0),
        &p,
        TcmallocConfig::baseline(),
        &dcfg,
    );
    let (fleet_r, _) = driver::run(
        &profiles::fleet_mix(),
        &p,
        TcmallocConfig::baseline(),
        &dcfg,
    );
    assert!(spec_r.malloc_frac < 0.01);
    assert!(fleet_r.malloc_frac > 0.02);
}

#[test]
fn fleet_ab_framework_is_paired() {
    // Identical configurations in both arms must produce exactly zero delta.
    let cfg = FleetExperimentConfig {
        machines: 2,
        binaries_per_machine: 1,
        requests_per_binary: 2_000,
        seed: 9,
        platform_mix: warehouse_alloc::fleet::experiment::default_platform_mix(),
        population: 50,
    };
    let r = run_fleet_ab(TcmallocConfig::baseline(), TcmallocConfig::baseline(), &cfg);
    assert!(r.fleet.throughput_pct().abs() < 1e-9);
    assert!(r.fleet.memory_pct().abs() < 1e-9);
}

#[test]
fn optimized_config_beats_baseline_on_tlb_workloads() {
    // §4.5 directional check on the workload class the combined change
    // helps most.
    let c = run_workload_ab(
        &profiles::disk(),
        &platform(),
        TcmallocConfig::baseline(),
        TcmallocConfig::optimized(),
        REQUESTS * 2,
        42,
    );
    assert!(c.throughput_pct() > 0.0, "thr {:+.2}%", c.throughput_pct());
}
