//! Chaos soak: the Figure-7 fleet mix driven through seeded fault storms
//! with the sanitizer at `Full`.
//!
//! Each named storm from [`FaultPlan::NAMED`] batters a full driver run —
//! injected ENOMEM, denied THP backing, flaky `madvise`, latency spikes —
//! while the shadow checker and the cross-tier conservation audits ride
//! along. The contract under fault injection:
//!
//! 1. **Zero sanitizer reports** — injected *kernel* faults must never look
//!    like *allocator* bugs. Conservation holds at every audit.
//! 2. **No live-object loss** — every object the application obtained is
//!    freed cleanly at teardown; a refused allocation is a refusal, never a
//!    half-placed object.
//! 3. **Full recovery post-storm** — once the storm window closes,
//!    allocations succeed again, the khugepaged re-promotion pass clears
//!    the degraded state, and hugepage coverage returns to healthy levels.

use warehouse_alloc::sim_hw::topology::{CpuId, Platform};
use warehouse_alloc::sim_os::clock::{Clock, NS_PER_SEC};
use warehouse_alloc::sim_os::faults::{FaultPlan, PPM};
use warehouse_alloc::tcmalloc::{SanitizeLevel, Tcmalloc, TcmallocConfig};
use warehouse_alloc::workload::driver::{run, DriverConfig};
use warehouse_alloc::workload::profiles;

fn platform() -> Platform {
    Platform::chiplet("t", 1, 2, 4, 2)
}

/// A storm window that starts immediately and outlasts any quick driver
/// run, so the whole soak happens under fault pressure and the recovery
/// phase can advance simulated time past the end deterministically.
const STORM_END_NS: u64 = 3_600 * NS_PER_SEC;

#[test]
fn every_named_storm_soaks_clean_under_full_sanitize() {
    let p = platform();
    for name in FaultPlan::NAMED {
        let plan = FaultPlan::named(name, 0xC0FFEE)
            .expect("catalogued storm")
            .with_storm(0, STORM_END_NS);
        // The tight soft limit keeps the background passes releasing and
        // the allocation path re-mapping, so every storm sees a steady
        // stream of kernel calls to bite on.
        let cfg = TcmallocConfig::optimized()
            .with_sanitize(SanitizeLevel::Full)
            .with_os_faults(plan)
            .with_soft_limit(8 << 20);
        let dcfg = DriverConfig {
            drain_at_end: true,
            ..DriverConfig::new(2_500, 7, &p)
        };
        let (report, mut tcm) = run(&profiles::fleet_mix(), &p, cfg, &dcfg);

        // (1) Injected OS faults never produce sanitizer reports.
        assert!(
            tcm.sanitizer_reports().is_empty(),
            "{name}: sanitizer reports under fault injection: {:?}",
            tcm.sanitizer_reports()
        );
        assert!(tcm.audits_run() > 0, "{name}: audits rode the soak");
        assert_eq!(tcm.audit_now(), 0, "{name}: post-storm audit clean");

        // (2) No live-object loss: the drained teardown freed everything
        // the application ever successfully obtained.
        assert_eq!(tcm.live_objects(), 0, "{name}: live objects after drain");
        assert_eq!(tcm.live_bytes(), 0, "{name}: live bytes after drain");

        assert!(
            report.requests > 0 && report.throughput > 0.0,
            "{name}: the workload made progress under the storm"
        );

        // Aftershock: the steady-state mix reuses memory too well to
        // guarantee kernel-call traffic at quick scale, so with the storm
        // still raging, drive the syscall surface directly — fresh large
        // mappings (mmap) and small-span churn that strands free pages in
        // the filler (madvise via the subrelease pass) — until the
        // injector has demonstrably fired.
        let clock = tcm.clock().clone();
        let cpu = CpuId(0);
        let small_bytes = 100 * 8192; // a 100-page span: filler-placed
        let mut large = Vec::new();
        let mut small = Vec::new();
        for _ in 0..300 {
            let s = tcm.fault_stats();
            if s.enomem_injected + s.huge_denied + s.subrelease_failed + s.latency_spikes > 0 {
                break;
            }
            // Nothing freed yet, so every 4 MiB allocation is a fresh mmap.
            if let Ok(a) = tcm.try_malloc(4 << 20, cpu) {
                large.push(a.addr);
            }
            for _ in 0..4 {
                if let Ok(a) = tcm.try_malloc(small_bytes, cpu) {
                    small.push(a.addr);
                }
            }
            if small.len() >= 8 {
                let keep = small.split_off(small.len() - 2);
                for addr in small.drain(..) {
                    tcm.free(addr, small_bytes, cpu);
                }
                small = keep;
            }
            clock.advance(NS_PER_SEC / 10);
            tcm.maintain();
        }
        let stats = tcm.fault_stats();
        let injected = stats.enomem_injected
            + stats.huge_denied
            + stats.subrelease_failed
            + stats.latency_spikes;
        assert!(injected > 0, "{name}: storm injected no faults");
        for addr in large {
            tcm.free(addr, 4 << 20, cpu);
        }
        for addr in small {
            tcm.free(addr, small_bytes, cpu);
        }
        assert_eq!(tcm.live_objects(), 0, "{name}: aftershock drained");

        // (3) Recovery: close the storm window, run maintenance, and the
        // allocator serves cleanly again.
        while clock.now_ns() < STORM_END_NS + NS_PER_SEC {
            clock.advance(NS_PER_SEC);
            tcm.maintain();
        }
        assert!(!tcm.os_degraded(), "{name}: degraded state cleared");
        let a = tcm
            .try_malloc(1 << 20, CpuId(0))
            .unwrap_or_else(|e| panic!("{name}: post-storm allocation failed: {e}"));
        tcm.free(a.addr, 1 << 20, CpuId(0));
        assert_eq!(tcm.audit_now(), 0, "{name}: audit clean after recovery");
    }
}

#[test]
fn deferred_frees_ride_out_fault_storms() {
    // Cross-thread frees in flight while the kernel misbehaves: remote
    // frees queue and drain through ENOMEM injection, THP denial, and
    // latency spikes without losing an object; invalid frees come back as
    // structured errors (never panics) even with lists parked; and once
    // the storm window closes the allocator emits `Recovered` and audits
    // clean.
    use warehouse_alloc::tcmalloc::{AllocEvent, FreeArm, FreeError};
    let p = platform();
    let producer = CpuId(0);
    let consumer = CpuId(8); // other LLC domain: every free is remote
    for arm in [FreeArm::AtomicList, FreeArm::MessagePassing] {
        for storm in ["thp-outage", "enomem-storm", "latency-spikes"] {
            let clock = Clock::new();
            let plan = FaultPlan::named(storm, 0xBAD5EED)
                .expect("catalogued storm")
                .with_storm(0, NS_PER_SEC);
            let cfg = TcmallocConfig::optimized()
                .with_free_arm(arm)
                .with_sanitize(SanitizeLevel::Full)
                .with_event_recorder()
                .with_os_faults(plan);
            let mut tcm = Tcmalloc::new(cfg, p.clone(), clock.clone());

            // Pipeline churn under the storm. Allocation refusals are
            // structured errors; successful objects are freed from the
            // wrong CPU so the deferred arm carries them.
            let mut live: Vec<(u64, u64)> = Vec::new();
            let mut max_in_flight = 0u64;
            for i in 0..1_500u64 {
                let size = 16 + (i % 97) * 41;
                if let Ok(a) = tcm.try_malloc(size, producer) {
                    live.push((a.addr, size));
                }
                if i % 16 == 0 {
                    // Large-path traffic keeps the injector fed (fresh
                    // mmaps) and, under thp-outage, trips Degraded.
                    if let Ok(a) = tcm.try_malloc(4 << 20, producer) {
                        tcm.try_free(a.addr, 4 << 20, consumer)
                            .expect("valid large free");
                    }
                }
                if live.len() > 24 {
                    let (addr, size) = live.swap_remove((i * 7) as usize % live.len());
                    tcm.try_free(addr, size, consumer).expect("valid free");
                }
                max_in_flight = max_in_flight.max(tcm.deferred().in_flight());
                if i % 256 == 0 {
                    clock.advance(NS_PER_SEC / 20);
                    tcm.maintain();
                }
            }
            assert!(
                max_in_flight > 0,
                "{storm}/{}: no deferred frees were ever in flight",
                arm.name()
            );

            // A wild free with remote frees parked: rejected and reported
            // by the sanitizer, allocator state untouched — no panic.
            let before = tcm.sanitizer_reports().len();
            tcm.try_free(0xDEAD_0000, 64, consumer)
                .expect("sanitizer rejects wild frees as reports, not errors");
            assert_eq!(
                tcm.sanitizer_reports().len(),
                before + 1,
                "{storm}/{}: wild free reported",
                arm.name()
            );
            let degraded_seen = tcm.os_degraded();

            // Teardown: every object the application got is freed, then
            // the settling drain adopts everything parked.
            for (addr, size) in live.drain(..) {
                tcm.try_free(addr, size, consumer).expect("teardown free");
            }
            tcm.drain_deferred();
            assert_eq!(
                tcm.deferred().in_flight(),
                0,
                "{storm}/{}: drain left remote frees parked",
                arm.name()
            );
            assert_eq!(tcm.live_objects(), 0, "{storm}/{}: object lost", arm.name());

            // Storm closes: service recovers, conservation audit clean.
            while clock.now_ns() < 2 * NS_PER_SEC {
                clock.advance(NS_PER_SEC / 4);
                tcm.maintain();
            }
            assert!(!tcm.os_degraded(), "{storm}/{}: still degraded", arm.name());
            if degraded_seen {
                assert!(
                    tcm.recorded_events()
                        .iter()
                        .any(|e| matches!(e, AllocEvent::Recovered { .. })),
                    "{storm}/{}: degradation never recovered",
                    arm.name()
                );
            }
            assert_eq!(tcm.audit_now(), 0, "{storm}/{}: audit dirty", arm.name());
            let reports = tcm.take_sanitizer_reports();
            assert_eq!(
                reports.len(),
                1,
                "{storm}/{}: only the deliberate wild free may be reported: {reports:?}",
                arm.name()
            );

            // With the sanitizer off, the same wild free is a structured
            // error — the fallible API never panics, deferred arm or not.
            let cfg_off = TcmallocConfig::optimized().with_free_arm(arm);
            let mut bare = Tcmalloc::new(cfg_off, p.clone(), Clock::new());
            let a = bare.malloc(64, producer);
            bare.free(a.addr, 64, consumer); // park one remote free
            assert_eq!(
                bare.try_free(0xBAD_F00D << 20, 8 << 20, consumer),
                Err(FreeError::InvalidFree {
                    addr: 0xBAD_F00D << 20
                }),
                "{}: wild large free must be a structured error",
                arm.name()
            );
        }
    }
}

#[test]
fn thp_outage_craters_coverage_then_repromotion_recovers_it() {
    // Total THP denial (no collapse failures) makes the coverage arc exact:
    // 0 during the storm, 1.0 after the khugepaged pass.
    let clock = Clock::new();
    let plan = FaultPlan {
        deny_huge_ppm: PPM,
        ..FaultPlan::off()
    }
    .with_seed(9)
    .with_storm(0, NS_PER_SEC);
    let cfg = TcmallocConfig::baseline()
        .with_sanitize(SanitizeLevel::Full)
        .with_os_faults(plan);
    let mut tcm = Tcmalloc::new(cfg, platform(), clock.clone());

    // Allocate through the storm: every mapping comes back 4 KiB-backed.
    let live: Vec<_> = (0..4).map(|_| tcm.malloc(4 << 20, CpuId(0))).collect();
    assert!(tcm.os_degraded(), "backing denied during the storm");
    assert_eq!(
        tcm.hugepage_coverage(),
        0.0,
        "nothing hugepage-backed mid-outage"
    );
    // One denial decision per mmap call (each 4 MiB allocation is one
    // mmap), not per backing hugepage.
    assert_eq!(tcm.fault_stats().huge_denied, 4);

    // Storm ends; background maintenance re-promotes the denied hugepages.
    clock.advance(2 * NS_PER_SEC);
    tcm.maintain();
    assert!(!tcm.os_degraded(), "khugepaged pass cleared the denial set");
    assert_eq!(tcm.hugepage_coverage(), 1.0, "coverage fully recovered");

    // No object was lost along the way.
    for a in live {
        tcm.free(a.addr, 4 << 20, CpuId(0));
    }
    assert_eq!(tcm.live_objects(), 0);
    assert_eq!(tcm.audit_now(), 0);
    assert!(tcm.sanitizer_reports().is_empty());
}

#[test]
fn hard_limit_refuses_then_frees_restore_service() {
    // A 8 MiB hard limit: the second 6 MiB allocation must be refused with
    // a structured error (after the pageheap's emergency release found
    // nothing to give back), and freeing the first restores service.
    let clock = Clock::new();
    let cfg = TcmallocConfig::baseline()
        .with_sanitize(SanitizeLevel::Full)
        .with_hard_limit(8 << 20);
    let mut tcm = Tcmalloc::new(cfg, platform(), clock);
    let a = tcm.try_malloc(6 << 20, CpuId(0)).expect("fits under limit");
    let denied = tcm.try_malloc(6 << 20, CpuId(0));
    assert!(denied.is_err(), "second 6 MiB exceeds the 8 MiB hard limit");
    assert_eq!(tcm.live_objects(), 1, "refusal placed nothing");
    tcm.free(a.addr, 6 << 20, CpuId(0));
    let b = tcm
        .try_malloc(6 << 20, CpuId(0))
        .expect("frees restored headroom");
    tcm.free(b.addr, 6 << 20, CpuId(0));
    assert_eq!(tcm.audit_now(), 0);
    assert!(tcm.sanitizer_reports().is_empty());
}

#[test]
fn faults_off_run_is_byte_identical_to_a_plan_free_run() {
    // `FaultPlan::off()` draws no randomness on zero-rate faults, so a
    // fault-injector with the all-zero plan must reproduce the plan-free
    // build's event stream byte for byte — the golden figures depend on it.
    let p = platform();
    let dcfg = DriverConfig::new(1_500, 13, &p);
    let base = TcmallocConfig::optimized().with_event_recorder();
    let (_, tcm_plain) = run(&profiles::fleet_mix(), &p, base, &dcfg);
    let (_, tcm_zeroed) = run(
        &profiles::fleet_mix(),
        &p,
        base.with_os_faults(FaultPlan::off().with_seed(77)),
        &dcfg,
    );
    let plain: Vec<String> = tcm_plain
        .recorded_events()
        .iter()
        .map(|e| format!("{e:?}"))
        .collect();
    let zeroed: Vec<String> = tcm_zeroed
        .recorded_events()
        .iter()
        .map(|e| format!("{e:?}"))
        .collect();
    assert_eq!(plain, zeroed, "zero-rate injector perturbed the stream");
}
