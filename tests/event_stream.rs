//! Event-stream integration suite for the unified allocator event bus:
//!
//! 1. **Taxonomy coverage** — a directed workload must emit every one of
//!    the [`AllocEvent::KINDS`] variants at least once, so no boundary
//!    event can silently rot.
//! 2. **Thread-count determinism** — the recorded event log of a run is
//!    byte-identical whether the batch runs on 1, 2, or 8 engine threads
//!    (events carry only simulated time, never wall time).
//! 3. **Conservation** — replaying just the OS-boundary events into a
//!    fresh kernel [`PageTable`] reconstructs the allocator's resident
//!    set exactly, and replaying `MallocDone` / `FreeDone` reconstructs
//!    live bytes and live objects exactly. The stream is therefore a
//!    complete record of the heap, not a best-effort log.

use std::collections::BTreeSet;
use wsc_parallel::Engine;
use wsc_sim_hw::topology::{CpuId, Platform};
use wsc_sim_os::clock::Clock;
use wsc_sim_os::faults::{FaultPlan, PPM};
use wsc_sim_os::pagetable::PageTable;
use wsc_tcmalloc::events::EvictReason;
use wsc_tcmalloc::{AllocEvent, FreeArm, SanitizeLevel, Tcmalloc, TcmallocConfig};
use wsc_workload::driver::{run, run_batch, DriverConfig, RunJob};
use wsc_workload::profiles;

fn platform() -> Platform {
    // Two LLC domains: CpuId(0) and CpuId(8) live in different domains, so
    // the NUCA transfer shards and the plunder pass are exercised.
    Platform::chiplet("t", 1, 2, 4, 2)
}

/// FNV-1a over the debug rendering of every event: a compact fingerprint
/// for comparing whole event logs across runs.
fn fingerprint(events: &[AllocEvent]) -> (usize, u64) {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for e in events {
        for b in format!("{e:?}").bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    (events.len(), h)
}

#[test]
fn directed_workload_emits_every_event_kind() {
    let p = platform();
    let clock = Clock::new();
    let cfg = TcmallocConfig::optimized()
        .with_sanitize(SanitizeLevel::Full)
        .with_event_recorder()
        .with_trace(1 << 14);
    let mut tcm = Tcmalloc::new(cfg, p, clock.clone());
    let (cpu_a, cpu_b) = (CpuId(0), CpuId(8)); // different LLC domains

    // Populate both vCPU caches; cpu_b then stays quiet so the §4.1
    // rebalance has a donor while cpu_a's misses make it a grower.
    let warm = tcm.malloc(64, cpu_b);
    tcm.free(warm.addr, 64, cpu_b);

    // Capacity bait for the slab resizer: hold objects of a mid-size class
    // so its granted capacity sits unused (objects are out, slots remain).
    let held: Vec<_> = (0..64).map(|_| tcm.malloc(4096, cpu_a)).collect();

    // Broad churn across the size-class spectrum on cpu_a: per-CPU
    // hits/misses/overflows, transfer stash/fetch, central refills and
    // span carving, and enough bytes to trip the 2 MiB sampler.
    let mut live = Vec::new();
    for i in 0..4_000u64 {
        let size = 8 + (i % 97) * 523; // 8 B .. ~50 KiB, every class band
        let a = tcm.malloc(size, cpu_a);
        live.push((a.addr, size));
        if i % 3 != 0 {
            let (addr, sz) = live.swap_remove(((i * 7) % live.len() as u64) as usize);
            tcm.free(addr, sz, cpu_a);
        }
        if i % 512 == 0 {
            clock.advance(1 << 20);
            tcm.maintain();
        }
    }

    // Large allocations, one per pageheap component: 1 MiB (filler),
    // 3 MiB (region), 4 MiB (hugepage cache).
    let f = tcm.malloc(1 << 20, cpu_a);
    let r = tcm.malloc(3 << 20, cpu_a);
    let c = tcm.malloc(4 << 20, cpu_a);
    tcm.free(c.addr, 4 << 20, cpu_a);
    tcm.free(r.addr, 3 << 20, cpu_a);
    tcm.free(f.addr, 1 << 20, cpu_a);
    // A repeat large allocation re-occupies the cached run (reused fill).
    let c2 = tcm.malloc(4 << 20, cpu_a);
    tcm.free(c2.addr, 4 << 20, cpu_a);

    // Drain the bulk of the small objects (keeping `held` alive so some
    // hugepages stay partially used — the subrelease target), then let the
    // background passes run: resizer rebalance, plunder, decay, release.
    for (addr, sz) in live.drain(..) {
        tcm.free(addr, sz, cpu_a);
    }
    for i in 0..32u64 {
        clock.advance(wsc_sim_os::clock::NS_PER_SEC / 10);
        tcm.maintain();
        // Keep cpu_a missing between rebalance intervals (the decay pass
        // keeps emptying its cache) while cpu_b stays quiet, so the §4.1
        // rebalance has both a grower and a donor.
        for k in 0..8u64 {
            let size = 64 + (i * 8 + k) % 512;
            let a = tcm.malloc(size, cpu_a);
            tcm.free(a.addr, size, cpu_a);
        }
    }
    // Fresh demand after subrelease: the filler re-occupies broken pages.
    let back = tcm.malloc(1 << 20, cpu_a);
    tcm.free(back.addr, 1 << 20, cpu_a);
    for a in &held {
        tcm.free(a.addr, 4096, cpu_a);
    }

    // The failure-model kinds (OsFault, BackingDenied, LimitHit,
    // ReleaseRetry, Degraded, Recovered) can only come from a fault-injected
    // run: a storm denies THP backing (with a latency spike) while a tiny
    // soft limit forces release retries, then the storm ends and the
    // khugepaged pass re-promotes.
    let fclock = Clock::new();
    let plan = FaultPlan {
        deny_huge_ppm: PPM,
        latency_spike_ppm: PPM,
        latency_spike_ns: 50_000,
        ..FaultPlan::off()
    }
    .with_storm(0, 1_000);
    let fcfg = TcmallocConfig::baseline()
        .with_event_recorder()
        .with_os_faults(plan)
        .with_soft_limit(1 << 20);
    let mut ftcm = Tcmalloc::new(fcfg, platform(), fclock.clone());
    let big = ftcm.malloc(4 << 20, CpuId(0)); // storm: backing denied, spike
    assert!(ftcm.os_degraded(), "storm denied THP backing");
    fclock.advance(wsc_sim_os::clock::NS_PER_SEC);
    ftcm.maintain(); // post-storm: re-promotion + soft-limit enforcement
    assert!(!ftcm.os_degraded(), "khugepaged pass re-promoted");
    ftcm.free(big.addr, 4 << 20, CpuId(0));
    let fault_seen: BTreeSet<&str> = ftcm
        .recorded_events()
        .iter()
        .map(AllocEvent::kind)
        .collect();
    for kind in [
        "OsFault",
        "BackingDenied",
        "LimitHit",
        "ReleaseRetry",
        "Degraded",
        "Recovered",
    ] {
        assert!(
            fault_seen.contains(kind),
            "fault run never emitted {kind}: saw {fault_seen:?}"
        );
    }

    // The cross-thread kinds (RemoteFreeQueued, RemoteFreeDrained,
    // ContentionCharged) only exist once a deferred free arm is active: a
    // pipeline mini-run allocates on CpuId(0) — whose central refills claim
    // span ownership — frees from CpuId(8), and drains.
    let rclock = Clock::new();
    let rcfg = TcmallocConfig::optimized()
        .with_event_recorder()
        .with_free_arm(FreeArm::AtomicList);
    let mut rtcm = Tcmalloc::new(rcfg, platform(), rclock.clone());
    let remote_live: Vec<_> = (0..64).map(|_| rtcm.malloc(256, CpuId(0))).collect();
    for a in &remote_live {
        rtcm.free(a.addr, 256, CpuId(8));
    }
    rtcm.drain_deferred();
    let remote_seen: BTreeSet<&str> = rtcm
        .recorded_events()
        .iter()
        .map(AllocEvent::kind)
        .collect();
    for kind in ["RemoteFreeQueued", "RemoteFreeDrained", "ContentionCharged"] {
        assert!(
            remote_seen.contains(kind),
            "pipeline run never emitted {kind}: saw {remote_seen:?}"
        );
    }

    // The drain-point aggregates (PerCpuHitBatch, FastPathFlush) only exist
    // while batched fast-path emission is engaged: a mini-run with the
    // batcher on, churning one class and flushing at a maintenance pass.
    let bclock = Clock::new();
    let bcfg = TcmallocConfig::optimized()
        .with_event_recorder()
        .with_batched_fastpath_events(true);
    let mut btcm = Tcmalloc::new(bcfg, platform(), bclock.clone());
    for _ in 0..64 {
        let a = btcm.malloc(256, CpuId(0));
        btcm.free(a.addr, 256, CpuId(0));
    }
    btcm.flush_events();
    let batch_seen: BTreeSet<&str> = btcm
        .recorded_events()
        .iter()
        .map(AllocEvent::kind)
        .collect();
    for kind in ["PerCpuHitBatch", "FastPathFlush"] {
        assert!(
            batch_seen.contains(kind),
            "batched run never emitted {kind}: saw {batch_seen:?}"
        );
    }

    let events = tcm.recorded_events();
    let seen: BTreeSet<&str> = events.iter().map(AllocEvent::kind).collect();
    let missing: Vec<&str> = AllocEvent::KINDS
        .iter()
        .copied()
        .filter(|k| {
            !seen.contains(k)
                && !fault_seen.contains(k)
                && !remote_seen.contains(k)
                && !batch_seen.contains(k)
        })
        .collect();
    assert!(
        missing.is_empty(),
        "event kinds never emitted: {missing:?} (saw {} events)",
        events.len()
    );
    // Both eviction flavours, not just the variant.
    for reason in [EvictReason::Plunder, EvictReason::Decay] {
        assert!(
            events
                .iter()
                .any(|e| matches!(e, AllocEvent::TransferEvict { reason: r, .. } if *r == reason)),
            "no TransferEvict with reason {reason:?}"
        );
    }
    // Both fill flavours: fresh mmap and re-occupation.
    for reused in [false, true] {
        assert!(
            events
                .iter()
                .any(|e| matches!(e, AllocEvent::HugepageFill { reused: ru, .. } if *ru == reused)),
            "no HugepageFill with reused={reused}"
        );
    }
    // The shadow checker rode the same stream and stayed clean.
    assert!(tcm.audits_run() > 0, "audits ran");
    assert!(
        tcm.sanitizer_reports().is_empty(),
        "sanitizer reports: {:?}",
        tcm.sanitizer_reports()
    );
    // The bounded trace ring captured the tail of the same stream.
    let trace = tcm.trace().expect("trace ring configured");
    assert!(!trace.is_empty(), "trace ring captured events");
}

#[test]
fn event_log_is_identical_across_thread_counts() {
    let p = platform();
    let cfg = TcmallocConfig::optimized().with_event_recorder();
    let jobs = || -> Vec<RunJob> {
        (0..3)
            .map(|i| RunJob {
                spec: profiles::fleet_mix(),
                platform: p.clone(),
                tcm_cfg: cfg,
                dcfg: DriverConfig::new(2_000, 11 + i, &p),
            })
            .collect()
    };
    let logs: Vec<Vec<(usize, u64)>> = [1usize, 2, 8]
        .iter()
        .map(|&threads| {
            run_batch(&Engine::new(threads), jobs(), |_, tcm| {
                fingerprint(tcm.recorded_events())
            })
            .expect("no job panics")
        })
        .collect();
    assert!(
        logs[0].iter().all(|&(len, _)| len > 0),
        "every job recorded events: {:?}",
        logs[0]
    );
    assert_eq!(logs[0], logs[1], "threads=1 vs threads=2");
    assert_eq!(logs[0], logs[2], "threads=1 vs threads=8");
}

#[test]
fn replaying_the_stream_reconstructs_the_heap() {
    let p = platform();
    let dcfg = DriverConfig::new(3_000, 5, &p);
    let cfg = TcmallocConfig::optimized().with_event_recorder();
    let (_, tcm) = run(&profiles::fleet_mix(), &p, cfg, &dcfg);

    let mut pt = PageTable::new();
    let mut live_bytes: i128 = 0;
    let mut live_objects: i64 = 0;
    for e in tcm.recorded_events() {
        match *e {
            AllocEvent::HugepageFill {
                base,
                bytes,
                reused: false,
            } => pt.on_mmap(base, bytes),
            AllocEvent::HugepageFill {
                base,
                bytes,
                reused: true,
            } => pt.reoccupy(base, bytes),
            AllocEvent::HugepageBreak { base, bytes } => pt
                .subrelease(base, bytes)
                .expect("replayed stream only breaks mapped hugepages"),
            AllocEvent::HugepageRelease { base, bytes } => pt.on_munmap(base, bytes),
            AllocEvent::MallocDone { size, .. } => {
                live_bytes += i128::from(size);
                live_objects += 1;
            }
            AllocEvent::FreeDone { size, .. } => {
                live_bytes -= i128::from(size);
                live_objects -= 1;
            }
            _ => {}
        }
    }
    assert_eq!(
        pt.resident_bytes(),
        tcm.resident_bytes(),
        "OS-event replay reconstructs the resident set"
    );
    assert_eq!(
        u64::try_from(live_bytes).expect("net live bytes are non-negative"),
        tcm.live_bytes(),
        "MallocDone/FreeDone replay reconstructs live bytes"
    );
    assert_eq!(
        u64::try_from(live_objects).expect("net live objects are non-negative"),
        tcm.live_objects(),
        "MallocDone/FreeDone replay reconstructs the object count"
    );
    assert!(tcm.live_bytes() > 0, "run left live objects to account for");
}
