//! Property tests on the allocator's core invariants, driven by arbitrary
//! operation sequences.
//!
//! Deterministic seeded-loop properties (hermetic replacement for the
//! original proptest strategies): each case derives its operation sequence
//! from a [`wsc_prng::SmallRng`] stream seeded with the case index.

use std::collections::HashMap;
use warehouse_alloc::sim_hw::topology::{CpuId, Platform};
use warehouse_alloc::sim_os::clock::Clock;
use warehouse_alloc::tcmalloc::{SanitizeLevel, Tcmalloc, TcmallocConfig};
use wsc_prng::SmallRng;

#[derive(Clone, Debug)]
enum Op {
    /// Allocate `size` bytes from `cpu`.
    Malloc { size: u64, cpu: u8 },
    /// Free the k-th oldest live object from `cpu`.
    Free { k: u8, cpu: u8 },
    /// Advance time and run background maintenance.
    Tick { ms: u8 },
}

/// Mirrors the original proptest strategy weights: 4 malloc (with a size mix
/// spanning zero-size, small, mid, and large), 3 free, 1 tick.
fn sample_op(rng: &mut SmallRng) -> Op {
    match rng.gen_range(0u32..8) {
        0..=3 => {
            let size = match rng.gen_range(0u32..12) {
                0 => 0, // zero-size allocations are legal
                1..=8 => rng.gen_range(1u64..4096),
                9..=10 => rng.gen_range(4096u64..(256 << 10)),
                _ => rng.gen_range(256u64 << 10..(4 << 20)), // large path
            };
            Op::Malloc {
                size,
                cpu: rng.gen::<u8>(),
            }
        }
        4..=6 => Op::Free {
            k: rng.gen::<u8>(),
            cpu: rng.gen::<u8>(),
        },
        _ => Op::Tick {
            ms: rng.gen::<u8>(),
        },
    }
}

fn run_ops(cfg: TcmallocConfig, ops: &[Op]) {
    let sanitized = cfg.sanitize.is_on();
    let platform = Platform::chiplet("t", 1, 2, 4, 2);
    let clock = Clock::new();
    let mut tcm = Tcmalloc::new(cfg, platform, clock.clone());
    let mut live: Vec<(u64, u64)> = Vec::new();
    let mut expected_live_bytes = 0u64;
    let mut seen: HashMap<u64, u64> = HashMap::new();
    for op in ops {
        match *op {
            Op::Malloc { size, cpu } => {
                let out = tcm.malloc(size, CpuId(cpu as u32 % 16));
                // No two live objects may overlap in address space: the
                // returned object's base must be unused.
                assert!(
                    seen.insert(out.addr, size).is_none(),
                    "address {:#x} handed out twice",
                    out.addr
                );
                assert!(out.actual_bytes >= size);
                live.push((out.addr, size));
                expected_live_bytes += size;
            }
            Op::Free { k, cpu } => {
                if live.is_empty() {
                    continue;
                }
                let idx = k as usize % live.len();
                let (addr, size) = live.swap_remove(idx);
                seen.remove(&addr);
                tcm.free(addr, size, CpuId(cpu as u32 % 16));
                expected_live_bytes -= size;
            }
            Op::Tick { ms } => {
                clock.advance(ms as u64 * 1_000_000);
                tcm.maintain();
            }
        }
        assert_eq!(tcm.live_bytes(), expected_live_bytes, "live-byte tracking");
        assert_eq!(tcm.live_objects(), live.len() as u64);
    }
    // Full teardown always succeeds and zeroes the accounting.
    for (addr, size) in live {
        tcm.free(addr, size, CpuId(0));
    }
    assert_eq!(tcm.live_bytes(), 0);
    assert_eq!(tcm.live_objects(), 0);
    let f = tcm.fragmentation();
    assert_eq!(f.internal_bytes, 0);
    // Identity: with nothing live, everything resident is cached somewhere.
    assert_eq!(f.resident_bytes, f.total_bytes());
    if sanitized {
        // A clean run must produce zero shadow reports, and a final
        // cross-tier audit must find every conservation invariant intact.
        assert_eq!(tcm.audit_now(), 0, "end-of-run audit found violations");
        let reports = tcm.take_sanitizer_reports();
        assert!(reports.is_empty(), "sanitizer reports: {reports:?}");
    }
}

fn ops_for_case(seed: u64) -> Vec<Op> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let n = rng.gen_range(1usize..300);
    (0..n).map(|_| sample_op(&mut rng)).collect()
}

#[test]
fn allocator_invariants_hold_baseline() {
    for case in 0..48u64 {
        run_ops(TcmallocConfig::baseline(), &ops_for_case(0xA110 + case));
    }
}

#[test]
fn allocator_invariants_hold_optimized() {
    for case in 0..48u64 {
        run_ops(TcmallocConfig::optimized(), &ops_for_case(0xA111 + case));
    }
}

#[test]
fn allocator_invariants_hold_under_full_sanitizer() {
    // The tentpole property: with the shadow checker and conservation
    // audits fully on, arbitrary valid operation sequences never trigger a
    // single report — on either configuration.
    for case in 0..24u64 {
        run_ops(
            TcmallocConfig::baseline().with_sanitize(SanitizeLevel::Full),
            &ops_for_case(0xA112 + case),
        );
        run_ops(
            TcmallocConfig::optimized().with_sanitize(SanitizeLevel::Full),
            &ops_for_case(0xA113 + case),
        );
    }
}

#[test]
fn allocator_invariants_hold_under_sampled_sanitizer() {
    for case in 0..12u64 {
        run_ops(
            TcmallocConfig::optimized().with_sanitize(SanitizeLevel::Sampled(64)),
            &ops_for_case(0xA114 + case),
        );
    }
}

#[test]
fn alloc_free_round_trip_any_size() {
    for case in 0..48u64 {
        let mut rng = SmallRng::seed_from_u64(0xA115 + case);
        let size = rng.gen_range(0u64..(8 << 20));
        let platform = Platform::chiplet("t", 1, 2, 4, 2);
        let mut tcm = Tcmalloc::new(TcmallocConfig::baseline(), platform, Clock::new());
        let a = tcm.malloc(size, CpuId(0));
        assert!(a.actual_bytes >= size);
        tcm.free(a.addr, size, CpuId(0));
        assert_eq!(tcm.live_bytes(), 0);
    }
}

#[test]
fn addresses_of_concurrent_objects_never_overlap() {
    for case in 0..48u64 {
        let mut rng = SmallRng::seed_from_u64(0xA116 + case);
        let n = rng.gen_range(2usize..100);
        let sizes: Vec<u64> = (0..n).map(|_| rng.gen_range(1u64..(512 << 10))).collect();
        let platform = Platform::chiplet("t", 1, 2, 4, 2);
        let mut tcm = Tcmalloc::new(TcmallocConfig::optimized(), platform, Clock::new());
        let mut ranges: Vec<(u64, u64)> = Vec::new();
        for (i, &size) in sizes.iter().enumerate() {
            let a = tcm.malloc(size, CpuId((i % 8) as u32));
            for &(start, len) in &ranges {
                assert!(
                    a.addr + a.actual_bytes <= start || start + len <= a.addr,
                    "overlap: [{:#x},+{}) vs [{:#x},+{})",
                    a.addr,
                    a.actual_bytes,
                    start,
                    len
                );
            }
            ranges.push((a.addr, a.actual_bytes));
        }
    }
}

#[test]
fn radix_pagemap_matches_btreemap_oracle() {
    // Property: under arbitrary seeded set/clear/lookup sequences, the
    // radix-tree pagemap agrees with a BTreeMap oracle on every page —
    // including ranges straddling leaf boundaries and lookups after the
    // hit cache has been primed and invalidated.
    use std::collections::BTreeMap;
    use warehouse_alloc::sim_os::addr::TCMALLOC_PAGE_BYTES;
    use warehouse_alloc::tcmalloc::pagemap::{PageMap, PAGES_PER_LEAF};
    use warehouse_alloc::tcmalloc::span::SpanId;

    for case in 0..24u64 {
        let mut rng = SmallRng::seed_from_u64(0xA118 + case);
        let mut pm = PageMap::new();
        let mut oracle: BTreeMap<u64, u32> = BTreeMap::new();
        let mut live: Vec<(u64, u32, u32)> = Vec::new(); // (first_page, len, id)
        let mut next_id = 0u32;
        // Bias the page space around a leaf boundary so straddles happen.
        let space = 3 * PAGES_PER_LEAF;
        for _ in 0..rng.gen_range(100usize..400) {
            match rng.gen_range(0u32..10) {
                // set_range over a free run
                0..=4 => {
                    let first = rng.gen_range(0..space);
                    let len = rng.gen_range(1u32..64);
                    if (first..first + len as u64).any(|p| oracle.contains_key(&p)) {
                        continue; // overlap would (correctly) panic
                    }
                    let id = next_id;
                    next_id += 1;
                    pm.set_range(first * TCMALLOC_PAGE_BYTES, len, SpanId(id));
                    for p in first..first + len as u64 {
                        oracle.insert(p, id);
                    }
                    live.push((first, len, id));
                }
                // clear_range of a live span
                5..=6 => {
                    if live.is_empty() {
                        continue;
                    }
                    let k = rng.gen_range(0..live.len());
                    let (first, len, _) = live.swap_remove(k);
                    pm.clear_range(first * TCMALLOC_PAGE_BYTES, len);
                    for p in first..first + len as u64 {
                        assert!(oracle.remove(&p).is_some());
                    }
                }
                // random-page lookup (arbitrary offset within the page)
                _ => {
                    let page = rng.gen_range(0..space);
                    let addr = page * TCMALLOC_PAGE_BYTES + rng.gen_range(0..TCMALLOC_PAGE_BYTES);
                    assert_eq!(
                        pm.span_of(addr),
                        oracle.get(&page).map(|&id| SpanId(id)),
                        "case {case}: lookup at page {page} diverged"
                    );
                }
            }
            assert_eq!(pm.len(), oracle.len(), "case {case}: page counts diverge");
        }
        // Full sweep: every page in the space must classify identically.
        for page in 0..space {
            assert_eq!(
                pm.span_of(page * TCMALLOC_PAGE_BYTES),
                oracle.get(&page).map(|&id| SpanId(id)),
                "case {case}: final sweep diverged at page {page}"
            );
        }
        // Leaf occupancy must equal the oracle's per-leaf tally.
        let mut want: BTreeMap<u64, u64> = BTreeMap::new();
        for &p in oracle.keys() {
            *want
                .entry((p / PAGES_PER_LEAF) * PAGES_PER_LEAF)
                .or_insert(0) += 1;
        }
        let got: BTreeMap<u64, u64> = pm
            .leaf_occupancy()
            .into_iter()
            .map(|l| (l.base_page, l.pages_used))
            .collect();
        assert_eq!(got, want, "case {case}: leaf occupancy diverged");
    }
}

#[test]
fn random_interleavings_replay_bit_identical_and_match_the_oracle() {
    // Property: for arbitrary seeded ownership/free-site schedules,
    // (a) replaying the same schedule twice under a deferred free arm is
    // bit-identical (fingerprint of the complete event stream included),
    // (b) the deferred arms' final heap agrees with the owner-only oracle
    // on the live set and its accounting, (c) the settling drain leaves
    // nothing in flight, and (d) the full sanitizer stays silent.
    use warehouse_alloc::tcmalloc::interleave::{replay, Schedule};
    use warehouse_alloc::tcmalloc::FreeArm;
    for case in 0..10u64 {
        let mut rng = SmallRng::seed_from_u64(0xA119 + case);
        let cpus = rng.gen_range(2u32..16);
        let ops = rng.gen_range(100usize..600);
        let sched = if rng.gen::<f64>() < 0.5 {
            let split = rng.gen_range(1..cpus);
            let producers: Vec<u32> = (0..split).collect();
            let consumers: Vec<u32> = (split..cpus).collect();
            Schedule::producer_consumer(rng.gen::<u64>(), &producers, &consumers, ops)
        } else {
            Schedule::thread_churn(rng.gen::<u64>(), cpus, ops)
        };
        let platform = Platform::chiplet("t", 1, 2, 4, 2);
        let oracle = replay(
            TcmallocConfig::optimized().with_sanitize(SanitizeLevel::Full),
            platform.clone(),
            &sched,
        );
        assert_eq!(oracle.sanitizer_findings, 0, "case {case}: oracle dirty");
        for arm in [FreeArm::AtomicList, FreeArm::MessagePassing] {
            let cfg = TcmallocConfig::optimized()
                .with_free_arm(arm)
                .with_sanitize(SanitizeLevel::Full);
            let a = replay(cfg, platform.clone(), &sched);
            let b = replay(cfg, platform.clone(), &sched);
            assert_eq!(a, b, "case {case}/{}: replay diverged", arm.name());
            assert_eq!(
                (a.live_objects, a.live_bytes, &a.live_sizes),
                (oracle.live_objects, oracle.live_bytes, &oracle.live_sizes),
                "case {case}/{}: live set diverged from the owner-only oracle",
                arm.name()
            );
            assert_eq!(a.in_flight, 0, "case {case}/{}: undrained", arm.name());
            assert_eq!(
                a.sanitizer_findings,
                0,
                "case {case}/{}: sanitizer findings",
                arm.name()
            );
        }
    }
}

#[test]
fn random_experiment_specs_are_thread_count_invariant() {
    // Property: for arbitrary (small) fleet experiment specs, the merged
    // A/B report is byte-identical at 1 worker and at a random 2..=8
    // workers — the parallel engine's canonical-order merge never leaks
    // scheduling into results.
    use warehouse_alloc::fleet::experiment::{
        default_platform_mix, try_run_fleet_ab, FleetExperimentConfig,
    };
    use warehouse_alloc::parallel::Engine;
    for case in 0..6u64 {
        let mut rng = SmallRng::seed_from_u64(0xA117 + case);
        let cfg = FleetExperimentConfig {
            machines: rng.gen_range(1usize..4),
            binaries_per_machine: rng.gen_range(1usize..3),
            requests_per_binary: rng.gen_range(200u64..900),
            seed: rng.gen::<u64>(),
            platform_mix: default_platform_mix(),
            population: rng.gen_range(10usize..50),
        };
        let threads = rng.gen_range(2usize..9);
        let (control, experiment) = if rng.gen::<f64>() < 0.5 {
            (TcmallocConfig::baseline(), TcmallocConfig::optimized())
        } else {
            (TcmallocConfig::optimized(), TcmallocConfig::baseline())
        };
        let serial =
            try_run_fleet_ab(&Engine::new(1), control, experiment, &cfg).expect("no panics");
        let threaded =
            try_run_fleet_ab(&Engine::new(threads), control, experiment, &cfg).expect("no panics");
        assert_eq!(
            format!("{serial:?}"),
            format!("{threaded:?}"),
            "case {case}: spec {cfg:?} diverged at {threads} threads"
        );
    }
}
