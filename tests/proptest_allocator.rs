//! Property tests on the allocator's core invariants, driven by arbitrary
//! operation sequences.

use proptest::prelude::*;
use std::collections::HashMap;
use warehouse_alloc::sim_hw::topology::{CpuId, Platform};
use warehouse_alloc::sim_os::clock::Clock;
use warehouse_alloc::tcmalloc::{Tcmalloc, TcmallocConfig};

#[derive(Clone, Debug)]
enum Op {
    /// Allocate `size` bytes from `cpu`.
    Malloc { size: u64, cpu: u8 },
    /// Free the k-th oldest live object from `cpu`.
    Free { k: u8, cpu: u8 },
    /// Advance time and run background maintenance.
    Tick { ms: u8 },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (prop_oneof![
                1u32 => Just(0u64), // zero-size allocations are legal
                8 => 1u64..4096,
                2 => 4096u64..(256 << 10),
                1 => (256u64 << 10)..(4 << 20), // large path
            ], any::<u8>())
            .prop_map(|(size, cpu)| Op::Malloc { size, cpu }),
        3 => (any::<u8>(), any::<u8>()).prop_map(|(k, cpu)| Op::Free { k, cpu }),
        1 => any::<u8>().prop_map(|ms| Op::Tick { ms }),
    ]
}

fn run_ops(cfg: TcmallocConfig, ops: &[Op]) {
    let platform = Platform::chiplet("t", 1, 2, 4, 2);
    let clock = Clock::new();
    let mut tcm = Tcmalloc::new(cfg, platform, clock.clone());
    let mut live: Vec<(u64, u64)> = Vec::new();
    let mut expected_live_bytes = 0u64;
    let mut seen: HashMap<u64, u64> = HashMap::new();
    for op in ops {
        match *op {
            Op::Malloc { size, cpu } => {
                let out = tcm.malloc(size, CpuId(cpu as u32 % 16));
                // No two live objects may overlap in address space: the
                // returned object's base must be unused.
                assert!(
                    seen.insert(out.addr, size).is_none(),
                    "address {:#x} handed out twice",
                    out.addr
                );
                assert!(out.actual_bytes >= size);
                live.push((out.addr, size));
                expected_live_bytes += size;
            }
            Op::Free { k, cpu } => {
                if live.is_empty() {
                    continue;
                }
                let idx = k as usize % live.len();
                let (addr, size) = live.swap_remove(idx);
                seen.remove(&addr);
                tcm.free(addr, size, CpuId(cpu as u32 % 16));
                expected_live_bytes -= size;
            }
            Op::Tick { ms } => {
                clock.advance(ms as u64 * 1_000_000);
                tcm.maintain();
            }
        }
        assert_eq!(tcm.live_bytes(), expected_live_bytes, "live-byte tracking");
        assert_eq!(tcm.live_objects(), live.len() as u64);
    }
    // Full teardown always succeeds and zeroes the accounting.
    for (addr, size) in live {
        tcm.free(addr, size, CpuId(0));
    }
    assert_eq!(tcm.live_bytes(), 0);
    assert_eq!(tcm.live_objects(), 0);
    let f = tcm.fragmentation();
    assert_eq!(f.internal_bytes, 0);
    // Identity: with nothing live, everything resident is cached somewhere.
    assert_eq!(f.resident_bytes, f.total_bytes());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn allocator_invariants_hold_baseline(ops in prop::collection::vec(op_strategy(), 1..300)) {
        run_ops(TcmallocConfig::baseline(), &ops);
    }

    #[test]
    fn allocator_invariants_hold_optimized(ops in prop::collection::vec(op_strategy(), 1..300)) {
        run_ops(TcmallocConfig::optimized(), &ops);
    }

    #[test]
    fn alloc_free_round_trip_any_size(size in 0u64..(8 << 20)) {
        let platform = Platform::chiplet("t", 1, 2, 4, 2);
        let mut tcm = Tcmalloc::new(TcmallocConfig::baseline(), platform, Clock::new());
        let a = tcm.malloc(size, CpuId(0));
        prop_assert!(a.actual_bytes >= size);
        tcm.free(a.addr, size, CpuId(0));
        prop_assert_eq!(tcm.live_bytes(), 0);
    }

    #[test]
    fn addresses_of_concurrent_objects_never_overlap(
        sizes in prop::collection::vec(1u64..(512 << 10), 2..100)
    ) {
        let platform = Platform::chiplet("t", 1, 2, 4, 2);
        let mut tcm = Tcmalloc::new(TcmallocConfig::optimized(), platform, Clock::new());
        let mut ranges: Vec<(u64, u64)> = Vec::new();
        for (i, &size) in sizes.iter().enumerate() {
            let a = tcm.malloc(size, CpuId((i % 8) as u32));
            for &(start, len) in &ranges {
                prop_assert!(
                    a.addr + a.actual_bytes <= start || start + len <= a.addr,
                    "overlap: [{:#x},+{}) vs [{:#x},+{})",
                    a.addr, a.actual_bytes, start, len
                );
            }
            ranges.push((a.addr, a.actual_bytes));
        }
    }
}
