//! Locks the observable outputs of the attribution pipeline — cycle stats,
//! the GWP allocation profile, and sanitizer counters — on the Fig. 7 fleet
//! mix, so the event-bus refactor provably changes *where* attribution is
//! computed without changing *what* it reports.
//!
//! The expected values were captured from the pre-refactor implementation
//! (direct `CycleStats::charge` / `AllocationProfile::record_*` /
//! `Sanitizer::record_alloc` calls inside the tiers). Nanosecond totals are
//! compared at 1e-6 relative tolerance: the event-bus stats view stores
//! integer picoseconds, which rounds away the float-summation dust of the
//! old accumulation (e.g. `375422.399999…` → `375422.4` exactly). Counts
//! are compared exactly.

use wsc_sim_hw::topology::Platform;
use wsc_tcmalloc::{CycleCategory, SanitizeLevel, TcmallocConfig};
use wsc_workload::driver::{run, DriverConfig};
use wsc_workload::profiles;

/// Pre-refactor per-category (ns, ops) on the Fig. 7 mix, in
/// [`CycleCategory::ALL`] order.
const EXPECTED_CYCLES: [(&str, f64, u64); 7] = [
    ("CPUCache", 375_422.4, 121_104),
    ("TransferCache", 105_277.2, 4_228),
    ("CentralFreeList", 123_565.2, 1_518),
    ("PageHeap", 182_069.9, 676),
    ("Sampled", 27_500.0, 5),
    ("Prefetch", 152_000.0, 80_000),
    ("Other", 63_763.0, 127_526),
];

fn close(actual: f64, expected: f64, what: &str) {
    let tol = 1e-6 * expected.abs().max(1.0);
    assert!(
        (actual - expected).abs() <= tol,
        "{what}: {actual} != {expected} (tol {tol})"
    );
}

#[test]
fn attribution_identical_to_pre_refactor_baseline() {
    let p = Platform::chiplet("test", 1, 2, 4, 2);
    let dcfg = DriverConfig::new(4_000, 1, &p);
    let cfg = TcmallocConfig::optimized().with_sanitize(SanitizeLevel::Full);
    let (r, tcm) = run(&profiles::fleet_mix(), &p, cfg, &dcfg);

    close(r.throughput, 156_786.446_665, "throughput");
    close(r.malloc_frac, 0.040_356_741, "malloc_frac");

    for (c, (name, ns, ops)) in CycleCategory::ALL.iter().zip(EXPECTED_CYCLES) {
        assert_eq!(c.name(), name, "category order");
        close(tcm.cycles().ns(*c), ns, name);
        assert_eq!(tcm.cycles().ops(*c), ops, "{name} ops");
    }
    close(tcm.cycles().total_ns(), 1_029_597.7, "total_ns");

    close(
        tcm.profile().size_by_count.count(),
        5_786.718_334,
        "profile count",
    );
    close(
        tcm.profile().size_by_bytes.count(),
        10_485_760.0,
        "profile bytes",
    );
    close(
        tcm.profile().size_by_count.fraction_below(1 << 10),
        0.921_404_167,
        "profile below1k",
    );

    assert_eq!(tcm.audits_run(), 124, "audits");
    assert_eq!(tcm.sanitizer_reports().len(), 0, "reports");
    assert_eq!(tcm.live_bytes(), 4_637_639, "live bytes");
    assert_eq!(tcm.live_objects(), 32_474, "live objects");
    assert_eq!(tcm.resident_bytes(), 14_680_064, "resident bytes");
}
