//! Streaming-fold determinism suite for the fleet survey: the same survey
//! at any thread count, and any leaf-aligned shard-span partition, must
//! fold to byte-identical `CellSummary` encodings. Also pins the
//! pagemap-arm neutrality the masking default rests on.

use warehouse_alloc::fleet::experiment::{
    default_platform_mix, try_run_fleet_survey, try_run_fleet_survey_span, CellSummary,
    FleetSurveyConfig,
};
use warehouse_alloc::parallel::{process_shard_span, Engine, FoldSpan};
use warehouse_alloc::tcmalloc::{PagemapArm, TcmallocConfig};

fn survey_cfg(seed: u64) -> FleetSurveyConfig {
    FleetSurveyConfig {
        machines: 60,
        requests_per_machine: 24,
        seed,
        platform_mix: default_platform_mix(),
        population: 40,
        diurnal_period_ns: 500_000,
        rollout_stage: 2,
    }
}

#[test]
fn survey_identical_at_threads_1_2_8() {
    let cfg = survey_cfg(17);
    let control = TcmallocConfig::baseline();
    let experiment = TcmallocConfig::optimized();
    let serial = try_run_fleet_survey(&Engine::new(1), control, experiment, &cfg)
        .expect("no machine panics");
    let serial_bytes = serial.summary.encode();
    assert_eq!(serial.summary.cells, 60);
    for threads in [2usize, 8] {
        let threaded = try_run_fleet_survey(&Engine::new(threads), control, experiment, &cfg)
            .expect("no machine panics");
        assert_eq!(
            serial_bytes,
            threaded.summary.encode(),
            "threads={threads} vs serial"
        );
    }
}

#[test]
fn survey_shard_spans_compose_byte_identically() {
    // Merging leaf-aligned span folds in shard order must reproduce the
    // whole fold exactly — the property the process-shard protocol ships
    // over a pipe.
    let cfg = survey_cfg(19);
    let control = TcmallocConfig::baseline();
    let experiment = TcmallocConfig::optimized();
    let engine = Engine::new(2);
    let whole = try_run_fleet_survey_span(
        &engine,
        control,
        experiment,
        &cfg,
        FoldSpan::all(cfg.machines),
    )
    .expect("no machine panics");
    for shards in [1usize, 2, 4] {
        let mut merged = CellSummary::new();
        for s in 0..shards {
            let span = process_shard_span(cfg.machines, s, shards);
            let part = try_run_fleet_survey_span(&engine, control, experiment, &cfg, span)
                .expect("no machine panics");
            merged.merge(&part);
        }
        assert_eq!(
            whole.encode(),
            merged.encode(),
            "shards={shards} vs whole fold"
        );
    }
}

#[test]
fn pagemap_arms_are_simulation_neutral_in_the_survey() {
    // The masking default is only sound if both pagemap arms simulate
    // identically; the folded fleet summary is a wide net for any drift.
    let cfg = survey_cfg(23);
    let engine = Engine::new(2);
    let run = |arm: PagemapArm| {
        try_run_fleet_survey(
            &engine,
            TcmallocConfig::baseline().with_pagemap_arm(arm),
            TcmallocConfig::optimized().with_pagemap_arm(arm),
            &cfg,
        )
        .expect("no machine panics")
        .summary
        .encode()
    };
    assert_eq!(
        run(PagemapArm::Masking),
        run(PagemapArm::Radix),
        "pagemap arms must be simulation-neutral"
    );
}
