//! Golden-figure regression suite (tier 1).
//!
//! Locks the headline statistics of Figure 7 (allocation size mix),
//! Figure 8 (lifetime CDF quantiles), and Figure 9a (worker-thread
//! min/mean/max) at `Scale::quick()` to committed expected values. Every
//! run is deterministic given the scale's seed, so drift here means an
//! unintended behavior change somewhere in the allocator, the workload
//! models, or the experiment engine — not noise.
//!
//! The tolerances absorb float-summation reordering from harmless
//! refactors while still catching real distribution shifts. The values are
//! thread-count-invariant by the engine's merge-order guarantee, so the
//! suite passes identically at any `WSC_THREADS`.

use wsc_bench::experiments as ex;
use wsc_bench::Scale;

#[track_caller]
fn assert_close(what: &str, measured: f64, golden: f64, tol: f64) {
    assert!(
        (measured - golden).abs() <= tol,
        "{what}: measured {measured:.6}, golden {golden:.6} (tolerance {tol})"
    );
}

#[test]
fn fig7_size_mix_matches_golden() {
    let (count_1k, mem_1k, mem_8k, mem_256k) = ex::fig7(&Scale::quick());
    assert_close("objects < 1 KiB", count_1k, 0.9887, 0.002);
    assert_close("memory < 1 KiB", mem_1k, 0.2661, 0.005);
    assert_close("memory > 8 KiB", mem_8k, 0.5477, 0.005);
    assert_close("memory > 256 KiB", mem_256k, 0.2018, 0.005);
}

#[test]
// 0.4342 is a measured golden value that happens to sit near LOG10_E.
#[allow(clippy::approx_constant)]
fn fig8_lifetime_quantiles_match_golden() {
    let (fleet_short, spec_short, fleet_mid, spec_mid) = ex::fig8(&Scale::quick());
    assert_close("fleet small < 1 ms", fleet_short, 0.4342, 0.005);
    assert_close("spec small < 1 ms", spec_short, 0.5183, 0.005);
    assert_close("fleet mass 1 ms..1 s", fleet_mid, 0.5658, 0.005);
    assert_close("spec mass 1 ms..1 s", spec_mid, 0.0442, 0.005);
}

#[test]
fn fig9a_thread_counts_match_golden() {
    let (min, mean, max) = ex::fig9a(&Scale::quick());
    assert_close("thread count min", min, 12.0, 0.5);
    assert_close("thread count mean", mean, 24.7, 0.2);
    assert_close("thread count max", max, 64.0, 0.5);
}
