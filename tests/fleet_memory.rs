//! Constant-memory property of the streaming fleet survey: peak RSS must
//! not grow with machine count, because the engine folds each machine into
//! a constant-size summary instead of collecting per-machine results.
//!
//! `VmHWM` (the kernel's high-water mark) is monotone over the process
//! lifetime, so this test lives in its own binary: it runs the small fleet
//! first, snapshots the peak, runs a fleet 10× larger, and requires the
//! peak to stay within 1.2×. A collect-then-merge engine fails this
//! immediately — 10× the machines is 10× the result vector.

use warehouse_alloc::fleet::experiment::{try_run_fleet_survey, FleetSurveyConfig};
use warehouse_alloc::parallel::Engine;
use warehouse_alloc::sim_hw::topology::Platform;
use warehouse_alloc::tcmalloc::TcmallocConfig;

/// Peak resident set size (VmHWM) of this process, in KiB.
fn peak_rss_kb() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    status.lines().find_map(|l| {
        l.strip_prefix("VmHWM:")?
            .trim()
            .trim_end_matches("kB")
            .trim()
            .parse()
            .ok()
    })
}

/// A deliberately small per-machine simulation (tiny platform, few
/// requests): the test measures the *engine's* memory behaviour, so the
/// per-cell cost is minimized and the machine count is the variable.
fn survey_cfg(machines: usize) -> FleetSurveyConfig {
    FleetSurveyConfig {
        machines,
        requests_per_machine: 6,
        seed: 29,
        platform_mix: vec![(1.0, Platform::monolithic("m4", 1, 4, 1))],
        population: 100,
        diurnal_period_ns: 500_000,
        rollout_stage: 2,
    }
}

#[test]
fn peak_rss_is_constant_in_machine_count() {
    let Some(baseline_kb) = peak_rss_kb() else {
        eprintln!("skipping: /proc/self/status unavailable");
        return;
    };
    let engine = Engine::new(1);
    let control = TcmallocConfig::baseline();
    let experiment = TcmallocConfig::optimized();

    let small = try_run_fleet_survey(&engine, control, experiment, &survey_cfg(1_000))
        .expect("no machine panics");
    assert_eq!(small.summary.cells, 1_000);
    let after_small = peak_rss_kb().expect("VmHWM read once already");

    let large = try_run_fleet_survey(&engine, control, experiment, &survey_cfg(10_000))
        .expect("no machine panics");
    assert_eq!(large.summary.cells, 10_000);
    let after_large = peak_rss_kb().expect("VmHWM read once already");

    assert!(
        after_large as f64 <= after_small as f64 * 1.2,
        "peak RSS grew with machine count: {after_small} kB at 10^3 machines, \
         {after_large} kB at 10^4 (startup peak {baseline_kb} kB) — \
         the fold is no longer constant-memory"
    );
}
