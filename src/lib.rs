//! # warehouse-alloc
//!
//! A from-scratch Rust reproduction of *Characterizing a Memory Allocator at
//! Warehouse Scale* (Zhou et al., ASPLOS 2024): a TCMalloc-class hierarchical
//! memory allocator, the paper's four warehouse-scale redesigns, and the full
//! measurement substrate — simulated kernel and hardware, calibrated workload
//! models, a fleet population, and the A/B experimentation framework — needed
//! to regenerate every table and figure of the paper's evaluation.
//!
//! This crate is the umbrella: it re-exports the workspace members.
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`tcmalloc`] | `wsc-tcmalloc` | the allocator: size classes, per-CPU caches, transfer caches, central free lists, hugepage-aware pageheap |
//! | [`sim_os`] | `wsc-sim-os` | mmap/THP/subrelease, rseq vCPU IDs, cpuset scheduler, simulated clock |
//! | [`sim_hw`] | `wsc-sim-hw` | CPU topology, NUCA latency, dTLB and LLC models, the Figure-4 cost model |
//! | [`workload`] | `wsc-workload` | workload models for every workload the paper names + the productivity driver |
//! | [`fleet`] | `wsc-fleet` | Zipf binary population, paired A/B experiments, rollout estimation |
//! | [`telemetry`] | `wsc-telemetry` | GWP-style sampling, histograms, CDFs, correlation statistics |
//! | [`sanitizer`] | `wsc-sanitizer` | shadow-state checker, cross-tier conservation audits, structured violation reports |
//! | [`parallel`] | `wsc-parallel` | deterministic work-stealing engine: thread-count-invariant parallel experiments |
//! | [`prng`] | `wsc-prng` | deterministic xoshiro256++ PRNG (the workspace's only randomness source) |
//!
//! # Example
//!
//! ```
//! use warehouse_alloc::tcmalloc::{Tcmalloc, TcmallocConfig};
//! use warehouse_alloc::sim_hw::topology::{CpuId, Platform};
//! use warehouse_alloc::sim_os::clock::Clock;
//!
//! let platform = Platform::chiplet("milan-like", 2, 4, 8, 2);
//! let mut tcm = Tcmalloc::new(TcmallocConfig::optimized(), platform, Clock::new());
//! let a = tcm.malloc(1024, CpuId(3));
//! tcm.free(a.addr, 1024, CpuId(3));
//! assert_eq!(tcm.live_bytes(), 0);
//! ```
//!
//! To regenerate the paper's evaluation:
//!
//! ```text
//! cargo run --release -p wsc-bench --bin repro -- all
//! ```

#![forbid(unsafe_code)]

pub use wsc_fleet as fleet;
pub use wsc_parallel as parallel;
pub use wsc_prng as prng;
pub use wsc_sanitizer as sanitizer;
pub use wsc_sim_hw as sim_hw;
pub use wsc_sim_os as sim_os;
pub use wsc_tcmalloc as tcmalloc;
pub use wsc_telemetry as telemetry;
pub use wsc_workload as workload;
