//! Record an allocation trace from a workload model, save it, and replay
//! the *identical* operation stream under two allocator configurations —
//! the cleanest possible A/B comparison.
//!
//! ```text
//! cargo run --release --example trace_replay
//! ```

use warehouse_alloc::sim_hw::topology::Platform;
use warehouse_alloc::sim_os::clock::Clock;
use warehouse_alloc::tcmalloc::{Tcmalloc, TcmallocConfig};
use warehouse_alloc::workload::profiles;
use warehouse_alloc::workload::trace::Trace;

fn main() {
    // 1. Record a trace from the disk workload (heavy I/O-buffer churn).
    let trace = Trace::record(&profiles::disk(), 30_000, 42);
    println!(
        "recorded trace '{}': {} events",
        trace.name,
        trace.events.len()
    );

    // 2. Round-trip through the portable text format.
    let text = trace.to_text();
    println!("serialized: {} bytes of text", text.len());
    let trace = Trace::from_text(&text).expect("round trip");

    // 3. Replay under baseline and optimized configurations.
    let platform = Platform::chiplet("chiplet-64c", 2, 4, 8, 2);
    println!(
        "\n{:<12} {:>10} {:>14} {:>14}",
        "config", "allocs", "malloc ms", "peak resident"
    );
    for (name, cfg) in [
        ("baseline", TcmallocConfig::baseline()),
        ("optimized", TcmallocConfig::optimized()),
    ] {
        let clock = Clock::new();
        let mut tcm = Tcmalloc::new(cfg, platform.clone(), clock.clone());
        let stats = trace.replay(&mut tcm, &clock);
        println!(
            "{name:<12} {:>10} {:>11.2} ms {:>11.1} MiB",
            stats.allocs,
            stats.malloc_ns / 1e6,
            stats.peak_resident_bytes as f64 / (1 << 20) as f64
        );
        assert_eq!(tcm.live_bytes(), 0, "replay must tear down cleanly");
    }
    println!("\nidentical op streams: any difference is the allocator's doing.");
}
