//! Build custom hardware platforms and see how topology changes what the
//! allocator should do — the §4.2 story: chiplet platforms have non-uniform
//! cache access, so the NUCA-aware transfer cache only pays off there.
//!
//! ```text
//! cargo run --release --example custom_platform
//! ```

use warehouse_alloc::fleet::experiment::run_workload_ab;
use warehouse_alloc::sim_hw::latency::{measure, LatencyModel};
use warehouse_alloc::sim_hw::topology::{fleet_generations, Platform};
use warehouse_alloc::tcmalloc::TcmallocConfig;
use warehouse_alloc::workload::profiles;

fn main() {
    // 1. Five platform generations: hyperthreads per server grew 4x (§4.1).
    println!("-- fleet platform generations --");
    for p in fleet_generations() {
        println!(
            "{:<18} {:>4} hyperthreads, {:>2} LLC domains, NUCA: {}",
            p.name(),
            p.num_cpus(),
            p.num_domains(),
            p.is_nuca()
        );
    }

    // 2. MLC-style latency sweep (Figure 11) on two custom platforms.
    println!("\n-- core-to-core transfer latency (Figure 11) --");
    let model = LatencyModel::production();
    for p in [
        Platform::monolithic("monolithic-28c", 2, 28, 2),
        Platform::chiplet("chiplet-64c", 2, 4, 8, 2),
    ] {
        let m = measure(&p, &model);
        match m.inter_domain_ns {
            Some(inter) => println!(
                "{:<18} intra {:.0} ns, inter {:.0} ns ({:.2}x)",
                p.name(),
                m.intra_domain_ns,
                inter,
                inter / m.intra_domain_ns
            ),
            None => println!(
                "{:<18} intra {:.0} ns (single cache domain per socket)",
                p.name(),
                m.intra_domain_ns
            ),
        }
    }

    // 3. The same NUCA-aware transfer cache change, A/B-tested on both
    //    platforms: it should help on the chiplet part and do nothing on the
    //    monolithic one.
    println!("\n-- NUCA transfer cache A/B per platform (disk workload) --");
    let base = TcmallocConfig::baseline();
    let exp = base.with_nuca_transfer();
    for p in [
        Platform::monolithic("monolithic-28c", 2, 28, 2),
        Platform::chiplet("chiplet-64c", 2, 4, 8, 2),
    ] {
        let c = run_workload_ab(&profiles::disk(), &p, base, exp, 20_000, 42);
        println!(
            "{:<18} throughput {:+.2}%  LLC MPKI {:.3} -> {:.3}",
            p.name(),
            c.throughput_pct(),
            c.control.llc_mpki,
            c.experiment.llc_mpki
        );
    }
    println!("\n(the paper rolls the change out fleet-wide; machines without");
    println!(" multiple LLC domains simply see no effect)");
}
