//! Characterize a production workload the way the paper's §3 does: run it
//! against the baseline allocator and read out the GWP-style telemetry —
//! size and lifetime distributions, malloc cycle share, fragmentation, and
//! span statistics.
//!
//! ```text
//! cargo run --release --example workload_characterization [workload]
//! ```
//!
//! `workload` is one of: fleet, spanner, monarch, bigtable, f1-query, disk,
//! redis, data-pipeline, image-processing, tensorflow, spec (default: fleet).

use warehouse_alloc::sim_hw::topology::Platform;
use warehouse_alloc::tcmalloc::TcmallocConfig;
use warehouse_alloc::workload::driver::{self, DriverConfig};
use warehouse_alloc::workload::profiles;

fn main() {
    let which = std::env::args().nth(1).unwrap_or_else(|| "fleet".into());
    let spec = match which.as_str() {
        "fleet" => profiles::fleet_mix(),
        "spanner" => profiles::spanner(),
        "monarch" => profiles::monarch(),
        "bigtable" => profiles::bigtable(),
        "f1-query" => profiles::f1_query(),
        "disk" => profiles::disk(),
        "redis" => profiles::redis(),
        "data-pipeline" => profiles::data_pipeline(),
        "image-processing" => profiles::image_processing(),
        "tensorflow" => profiles::tensorflow(),
        "spec" => profiles::spec_cpu(0),
        other => {
            eprintln!("unknown workload: {other}");
            std::process::exit(2);
        }
    };

    let platform = Platform::chiplet("chiplet-64c", 2, 4, 8, 2);
    let dcfg = DriverConfig::new(30_000, 42, &platform);
    println!("running {} for {} requests...", spec.name, dcfg.requests);
    let (report, tcm) = driver::run(&spec, &platform, TcmallocConfig::baseline(), &dcfg);

    println!("\n-- application productivity --");
    println!(
        "throughput:       {:>10.0} requests / CPU-second",
        report.throughput
    );
    println!("CPI:              {:>10.2}", report.cpi);
    println!("LLC MPKI:         {:>10.2}", report.llc_mpki);
    println!("dTLB walk cycles: {:>10.2}%", report.dtlb_walk_pct);
    println!(
        "malloc cycles:    {:>10.2}% (paper fleet-wide: 4.3%)",
        report.malloc_frac * 100.0
    );

    println!("\n-- memory --");
    println!(
        "avg resident:     {:>10.1} MiB",
        report.avg_resident_bytes / (1 << 20) as f64
    );
    println!(
        "peak resident:    {:>10.1} MiB",
        report.peak_resident_bytes as f64 / (1 << 20) as f64
    );
    println!(
        "hugepage coverage:{:>10.1}%",
        report.avg_hugepage_coverage * 100.0
    );
    let f = report.fragmentation;
    println!(
        "fragmentation:    {:>10.1}% of live bytes",
        f.ratio() * 100.0
    );

    println!("\n-- sampled allocation profile (Figures 7/8) --");
    let p = tcm.profile();
    println!(
        "objects < 1 KiB:  {:>10.1}% of allocations",
        p.size_by_count.fraction_below(1 << 10) * 100.0
    );
    println!(
        "bytes   > 8 KiB:  {:>10.1}% of allocated memory",
        p.size_by_bytes.fraction_at_or_above(8 << 10) * 100.0
    );

    println!("\n-- span statistics (Figures 13/16) --");
    let mut created = 0u64;
    let mut released = 0u64;
    for cl in 0..tcm.table().num_classes() {
        created += tcm.central(cl).spans_created;
        released += tcm.central(cl).spans_released;
    }
    println!("spans created:    {created:>10}");
    println!(
        "spans released:   {released:>10} ({:.1}%)",
        released as f64 / created.max(1) as f64 * 100.0
    );

    println!("\n-- worker threads (Figure 9a) --");
    println!(
        "min {:.0} / mean {:.1} / max {:.0}",
        report.threads_ts.min().unwrap_or(0.0),
        report.threads_ts.mean().unwrap_or(0.0),
        report.threads_ts.max().unwrap_or(0.0)
    );
}
