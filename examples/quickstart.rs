//! Quickstart: create a warehouse-scale allocator, allocate and free, and
//! inspect the telemetry the paper's characterization is built on.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use warehouse_alloc::sim_hw::topology::{CpuId, Platform};
use warehouse_alloc::sim_os::clock::Clock;
use warehouse_alloc::tcmalloc::{Tcmalloc, TcmallocConfig};

fn main() {
    // A chiplet server: 2 sockets x 4 LLC domains x 8 cores x 2 SMT.
    let platform = Platform::chiplet("milan-like", 2, 4, 8, 2);
    let clock = Clock::new();

    // The fully-optimized allocator: heterogeneous per-CPU caches,
    // NUCA-aware transfer caches, span prioritization, lifetime-aware
    // hugepage filler.
    let mut tcm = Tcmalloc::new(TcmallocConfig::optimized(), platform, clock.clone());

    // Allocate a mixed bag of objects from a few CPUs.
    let mut live = Vec::new();
    for i in 0..10_000u64 {
        let size = match i % 4 {
            0 => 24,        // tiny node
            1 => 320,       // record
            2 => 4 << 10,   // buffer
            _ => 512 << 10, // large allocation (bypasses the caches)
        };
        let cpu = CpuId((i % 16) as u32);
        let a = tcm.malloc(size, cpu);
        live.push((a.addr, size, cpu));
        clock.advance(1_000);
        // Free half of everything as we go.
        if i % 2 == 0 {
            let (addr, sz, cpu) = live.swap_remove((i as usize / 3) % live.len());
            tcm.free(addr, sz, cpu);
        }
        tcm.maintain();
    }

    println!("live bytes:        {:>12}", tcm.live_bytes());
    println!("resident bytes:    {:>12}", tcm.resident_bytes());
    println!(
        "hugepage coverage: {:>11.1}%",
        tcm.hugepage_coverage() * 100.0
    );

    let f = tcm.fragmentation();
    println!("\nfragmentation breakdown (the paper's Figure 6b):");
    println!("  internal:         {:>10} B", f.internal_bytes);
    println!("  per-CPU caches:   {:>10} B", f.percpu_bytes);
    println!("  transfer caches:  {:>10} B", f.transfer_bytes);
    println!("  central freelist: {:>10} B", f.central_bytes);
    println!("  pageheap:         {:>10} B", f.pageheap_bytes);
    println!("  ratio vs live:    {:>10.1}%", f.ratio() * 100.0);

    println!("\nmalloc cycle breakdown (the paper's Figure 6a):");
    for (cat, share) in tcm.cycles().breakdown() {
        println!("  {:<16} {:>5.1}%", cat.name(), share * 100.0);
    }

    // Clean teardown: everything back to the allocator.
    for (addr, sz, cpu) in live {
        tcm.free(addr, sz, cpu);
    }
    assert_eq!(tcm.live_bytes(), 0);
    println!("\nall objects freed; heap is clean.");
}
