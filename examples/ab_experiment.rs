//! Run a paired A/B experiment the way the paper's §2.2 framework does:
//! the same workload, machine, and seeds under two allocator configurations,
//! reporting the metric deltas of Tables 1/2 and Figures 10/14.
//!
//! ```text
//! cargo run --release --example ab_experiment [design]
//! ```
//!
//! `design` is one of: hetero, nuca, spanprio, lifetime, all (default: all).

use warehouse_alloc::fleet::experiment::run_workload_ab;
use warehouse_alloc::sim_hw::topology::Platform;
use warehouse_alloc::tcmalloc::TcmallocConfig;
use warehouse_alloc::workload::profiles;

fn main() {
    let design = std::env::args().nth(1).unwrap_or_else(|| "all".into());
    let base = TcmallocConfig::baseline();
    let (name, experiment) = match design.as_str() {
        "hetero" => (
            "heterogeneous per-CPU caches (§4.1)",
            base.with_heterogeneous_percpu(),
        ),
        "nuca" => (
            "NUCA-aware transfer caches (§4.2)",
            base.with_nuca_transfer(),
        ),
        "spanprio" => (
            "span prioritization (§4.3)",
            base.with_span_prioritization(),
        ),
        "lifetime" => (
            "lifetime-aware hugepage filler (§4.4)",
            base.with_lifetime_filler(),
        ),
        "all" => ("all four designs (§4.5)", TcmallocConfig::optimized()),
        other => {
            eprintln!("unknown design: {other} (hetero|nuca|spanprio|lifetime|all)");
            std::process::exit(2);
        }
    };
    println!("A/B experiment: baseline vs {name}\n");

    let platform = Platform::chiplet("chiplet-64c", 2, 4, 8, 2);
    println!(
        "{:<18} {:>8} {:>8} {:>8} {:>10} {:>10}",
        "workload", "thr %", "mem %", "CPI %", "dTLB miss", "coverage"
    );
    let mut specs = profiles::production_workloads();
    specs.extend(profiles::benchmark_workloads());
    for spec in specs {
        let c = run_workload_ab(&spec, &platform, base, experiment, 25_000, 42);
        println!(
            "{:<18} {:>+8.2} {:>+8.2} {:>+8.2} {:>4.3}->{:<4.3} {:>4.3}->{:<4.3}",
            spec.name,
            c.throughput_pct(),
            c.memory_pct(),
            c.cpi_pct(),
            c.control.dtlb_miss_rate,
            c.experiment.dtlb_miss_rate,
            c.control.hugepage_coverage,
            c.experiment.hugepage_coverage,
        );
    }
    println!("\npositive thr = experiment faster; negative mem = experiment leaner.");
}
