//! Ablate the design constants the paper calls out: the number of central-
//! free-list priority lists L ("our experiments show that L = 8 lists are
//! sufficient", §4.3) and the lifetime capacity threshold C ("our
//! experiments reveal C = 16 as an acceptable threshold", §4.4).
//!
//! ```text
//! cargo run --release --example allocator_tuning
//! ```

use warehouse_alloc::fleet::experiment::run_workload_ab;
use warehouse_alloc::sim_hw::topology::Platform;
use warehouse_alloc::tcmalloc::TcmallocConfig;
use warehouse_alloc::workload::profiles;

fn main() {
    let platform = Platform::chiplet("chiplet-64c", 2, 4, 8, 2);
    let base = TcmallocConfig::baseline();

    // --- L: central-free-list priority lists (§4.3) ---
    println!("-- span prioritization: sweeping L (monarch) --");
    println!("{:<6} {:>10} {:>12}", "L", "memory %", "frag %");
    for lists in [1usize, 2, 4, 8, 16] {
        let mut exp = base;
        exp.cfl_lists = lists;
        let c = run_workload_ab(&profiles::monarch(), &platform, base, exp, 25_000, 42);
        println!(
            "{:<6} {:>+10.2} {:>+12.2}",
            lists,
            c.memory_pct(),
            c.frag_pct()
        );
    }
    println!("(paper: L = 8 is sufficient to differentiate spans)\n");

    // --- C: lifetime capacity threshold (§4.4) ---
    println!("-- lifetime-aware filler: sweeping C (disk) --");
    println!(
        "{:<6} {:>10} {:>12} {:>12}",
        "C", "thr %", "dTLB miss", "coverage"
    );
    for threshold in [2u32, 8, 16, 64, 256] {
        let mut exp = base.with_lifetime_filler();
        exp.pageheap.capacity_threshold = threshold;
        let c = run_workload_ab(&profiles::disk(), &platform, base, exp, 25_000, 42);
        println!(
            "{:<6} {:>+10.2} {:>5.3}->{:<5.3} {:>5.3}->{:<5.3}",
            threshold,
            c.throughput_pct(),
            c.control.dtlb_miss_rate,
            c.experiment.dtlb_miss_rate,
            c.control.hugepage_coverage,
            c.experiment.hugepage_coverage,
        );
    }
    println!("(paper: C = 16 is an acceptable threshold)\n");

    // --- per-CPU cache budget (§4.1) ---
    println!("-- per-CPU cache budget sweep (fleet mix) --");
    println!("{:<12} {:>10} {:>10}", "budget", "thr %", "memory %");
    for shift in [0i32, -1, -2] {
        let mut exp = base;
        exp.percpu_max_bytes = if shift >= 0 {
            base.percpu_max_bytes << shift
        } else {
            base.percpu_max_bytes >> -shift
        };
        exp.dynamic_percpu = true;
        let c = run_workload_ab(&profiles::fleet_mix(), &platform, base, exp, 25_000, 42);
        println!(
            "{:<12} {:>+10.2} {:>+10.2}",
            format!("{} KiB", exp.percpu_max_bytes >> 10),
            c.throughput_pct(),
            c.memory_pct()
        );
    }
    println!("(paper: halving 3 MB to 1.5 MB with dynamic sizing: no perf impact)");
}
