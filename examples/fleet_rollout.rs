//! Simulate the paper's §4.5 longitudinal rollout: run a fleet-wide A/B of
//! each of the four designs, then compose their relative improvements the
//! way the paper estimates the aggregate impact.
//!
//! ```text
//! cargo run --release --example fleet_rollout
//! ```

use warehouse_alloc::fleet::experiment::{run_fleet_ab, FleetExperimentConfig};
use warehouse_alloc::fleet::rollout;
use warehouse_alloc::tcmalloc::TcmallocConfig;

fn main() {
    let base = TcmallocConfig::baseline();
    let designs = [
        (
            "heterogeneous per-CPU caches",
            base.with_heterogeneous_percpu(),
        ),
        ("NUCA-aware transfer caches", base.with_nuca_transfer()),
        ("span prioritization", base.with_span_prioritization()),
        (
            "lifetime-aware hugepage filler",
            base.with_lifetime_filler(),
        ),
    ];
    let cfg = FleetExperimentConfig {
        machines: 6,
        binaries_per_machine: 2,
        requests_per_binary: 10_000,
        seed: 7,
        platform_mix: warehouse_alloc::fleet::experiment::default_platform_mix(),
        population: 500,
    };

    println!("fleet A/B per design ({} machines/arm):\n", cfg.machines);
    let mut singles = Vec::new();
    for (name, exp) in designs {
        let r = run_fleet_ab(base, exp, &cfg);
        println!(
            "{:<32} thr {:+.2}%  mem {:+.2}%  CPI {:+.2}%",
            name,
            r.fleet.throughput_pct(),
            r.fleet.memory_pct(),
            r.fleet.cpi_pct()
        );
        singles.push(r.fleet);
    }

    let est = rollout::combine(&singles);
    println!(
        "\ncomposed rollout estimate: throughput {:+.2}%, memory {:+.2}%",
        est.throughput_pct, est.memory_pct
    );
    println!("paper (§4.5, two-year rollout): +1.4% throughput, -3.4% RAM");
}
