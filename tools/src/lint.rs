//! The determinism lint.
//!
//! Simulation results must be bit-identical given a seed: the paper's A/B
//! methodology (§3) rests on paired, reproducible runs, and the repo's test
//! thresholds encode exact expected behaviour. Three things silently break
//! that contract, and none of them is caught by rustc or clippy:
//!
//! 1. **Wall-clock time** — `std::time::Instant` / `SystemTime` instead of
//!    the simulated `Clock`.
//! 2. **Ambient randomness** — `thread_rng` (or any OS-seeded generator)
//!    instead of the seeded `wsc_prng::SmallRng`.
//! 3. **HashMap iteration order** — `HashMap` iteration is randomized per
//!    process by SipHash seeding, so any `.iter()`/`.keys()`/`.values()`
//!    over one leaks nondeterminism into whatever consumes the order.
//! 4. **HashMap declarations** — deny-by-default: every `HashMap` binding
//!    in the deterministic core must carry a `lint:allow(hashmap-decl)`
//!    annotation justifying why its order can never leak (key-indexed
//!    access only, no iteration exposed). Structures on hot lookup paths
//!    should prefer indexed arrays — the radix pagemap replaced the
//!    per-page map precisely so it passes this rule structurally, not by
//!    accident.
//! 5. **Direct attribution** — `CycleStats::charge` /
//!    `AllocationProfile::record_alloc` / `record_lifetime` calls outside
//!    the event-bus-sanctioned paths (`events.rs`, `stats.rs`, and the
//!    sanitizer/telemetry crates that *implement* the consumers). Cycle
//!    and profile attribution must flow through `AllocEvent` emission, so
//!    one stream stays the single source of truth; a tier charging stats
//!    by hand would silently drift from what the sinks derive.
//! 6. **Infallible OS** — deny-by-default: no direct `Vmm` construction or
//!    `Vmm`/`PageTable` mutation (`mmap`, `munmap`, `subrelease`,
//!    `reoccupy`, `collapse_huge`, `promote`, `on_mmap*`) outside the OS
//!    boundary itself (`crates/sim-os/`) and its sanctioned wrapper
//!    (`crates/tcmalloc/src/pageheap/`, home of `OsLayer`). Every kernel
//!    call must cross the fault injector so injected ENOMEM, THP denial,
//!    and the hard limit are enforced — a tier mapping memory directly
//!    would be invisible to the failure model and to the limit accounting.
//!
//! The lint scans the deterministic core (`sim-*`, `tcmalloc`, `fleet`,
//! `sanitizer`, `workload`, `telemetry`, `prng`) line by line. A finding on
//! a line carrying `lint:allow(<rule>)` — same line or the line above — is
//! suppressed; the escape hatch exists for provably order-independent
//! folds, and each use must justify itself in the comment.
//!
//! Run with `cargo run -p wsc-tools --bin lint`. Exits nonzero on findings,
//! so CI can gate on it.

use std::fmt;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// Crates whose behaviour must be deterministic. `bench` is deliberately
/// out of scope: its harness measures real wall-clock time.
const SCOPED_CRATES: &[&str] = &[
    "crates/sim-hw",
    "crates/sim-os",
    "crates/tcmalloc",
    "crates/fleet",
    "crates/sanitizer",
    "crates/workload",
    "crates/telemetry",
    "crates/prng",
    "crates/parallel",
];

/// Paths where direct `charge`/`record_alloc`/`record_lifetime` calls are
/// legitimate: the event sinks themselves, and the crates that implement
/// (and unit-test) the consumers the sinks drive.
const ATTRIBUTION_SANCTIONED: &[&str] = &[
    "crates/tcmalloc/src/events.rs",
    "crates/tcmalloc/src/stats.rs",
    "crates/sanitizer/",
    "crates/telemetry/",
];

/// Paths allowed to construct or mutate the kernel (`Vmm` / `PageTable`)
/// directly: the OS boundary itself, and the pageheap's `OsLayer` wrapper
/// that routes every call through the fault injector and the hard limit.
const OS_SANCTIONED: &[&str] = &["crates/sim-os/", "crates/tcmalloc/src/pageheap/"];

/// Calls that construct or mutate kernel state. `.mmap(` and `.munmap(`
/// also cover `OsLayer`'s own methods, which is intentional: outside the
/// sanctioned paths not even the wrapper may be driven directly — memory
/// must be requested from the pageheap.
const OS_MUTATION: &[&str] = &[
    "Vmm::new(",
    "Vmm::with_faults(",
    ".mmap(",
    ".munmap(",
    ".on_mmap(",
    ".on_mmap_backed(",
    ".on_munmap(",
    ".subrelease(",
    ".reoccupy(",
    ".collapse_huge(",
    ".promote(",
];

#[derive(Clone, Copy, PartialEq, Eq)]
enum Rule {
    WallClock,
    AmbientRng,
    HashMapIter,
    HashMapDecl,
    DirectAttribution,
    InfallibleOs,
}

impl Rule {
    fn name(self) -> &'static str {
        match self {
            Rule::WallClock => "wall-clock",
            Rule::AmbientRng => "ambient-rng",
            Rule::HashMapIter => "hashmap-iter",
            Rule::HashMapDecl => "hashmap-decl",
            Rule::DirectAttribution => "direct-attribution",
            Rule::InfallibleOs => "infallible-os",
        }
    }
}

struct Finding {
    file: PathBuf,
    line: usize,
    rule: Rule,
    excerpt: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file.display(),
            self.line,
            self.rule.name(),
            self.excerpt.trim()
        )
    }
}

fn main() -> ExitCode {
    let root = repo_root();
    let mut findings = Vec::new();
    let mut files_scanned = 0usize;
    for krate in SCOPED_CRATES {
        let dir = root.join(krate);
        if !dir.is_dir() {
            eprintln!("lint: missing crate dir {}", dir.display());
            return ExitCode::FAILURE;
        }
        for file in rust_files(&dir) {
            files_scanned += 1;
            match std::fs::read_to_string(&file) {
                Ok(src) => scan_file(&file, &src, &mut findings),
                Err(e) => {
                    eprintln!("lint: cannot read {}: {e}", file.display());
                    return ExitCode::FAILURE;
                }
            }
        }
    }
    if findings.is_empty() {
        println!("determinism lint: {files_scanned} files clean");
        ExitCode::SUCCESS
    } else {
        for f in &findings {
            eprintln!("{f}");
        }
        eprintln!("determinism lint: {} finding(s)", findings.len());
        ExitCode::FAILURE
    }
}

/// The workspace root: the manifest dir's parent when run via cargo, else
/// the current directory.
fn repo_root() -> PathBuf {
    match std::env::var_os("CARGO_MANIFEST_DIR") {
        Some(dir) => PathBuf::from(dir)
            .parent()
            .map_or_else(|| PathBuf::from("."), Path::to_path_buf),
        None => PathBuf::from("."),
    }
}

fn rust_files(dir: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    let mut stack = vec![dir.to_path_buf()];
    while let Some(d) = stack.pop() {
        let Ok(entries) = std::fs::read_dir(&d) else {
            continue;
        };
        for entry in entries.flatten() {
            let p = entry.path();
            if p.is_dir() {
                if p.file_name().is_some_and(|n| n == "target") {
                    continue;
                }
                stack.push(p);
            } else if p.extension().is_some_and(|e| e == "rs") {
                out.push(p);
            }
        }
    }
    out.sort();
    out
}

fn scan_file(path: &Path, src: &str, findings: &mut Vec<Finding>) {
    let lines: Vec<&str> = src.lines().collect();
    let hashmaps = hashmap_bindings(&lines);
    for (i, &line) in lines.iter().enumerate() {
        let code = strip_comment_and_strings(line);
        if code.trim().is_empty() {
            continue;
        }
        let mut hit = |rule: Rule| {
            if !allowed(&lines, i, rule) {
                findings.push(Finding {
                    file: path.to_path_buf(),
                    line: i + 1,
                    rule,
                    excerpt: line.to_string(),
                });
            }
        };
        if code.contains("std::time::Instant")
            || code.contains("std::time::SystemTime")
            || code.contains("Instant::now")
            || code.contains("SystemTime::now")
        {
            hit(Rule::WallClock);
        }
        if code.contains("thread_rng") || code.contains("from_entropy") {
            hit(Rule::AmbientRng);
        }
        for name in &hashmaps {
            if iterates_binding(&code, name) {
                hit(Rule::HashMapIter);
                break;
            }
        }
        if declares_hashmap(&code) {
            hit(Rule::HashMapDecl);
        }
        if !attribution_sanctioned(path)
            && (code.contains(".charge(")
                || code.contains(".record_alloc(")
                || code.contains(".record_lifetime("))
        {
            hit(Rule::DirectAttribution);
        }
        if !os_sanctioned(path) && OS_MUTATION.iter().any(|pat| code.contains(pat)) {
            hit(Rule::InfallibleOs);
        }
    }
}

/// Is this file allowed to construct or mutate kernel state directly?
fn os_sanctioned(path: &Path) -> bool {
    let p = path.to_string_lossy().replace('\\', "/");
    OS_SANCTIONED.iter().any(|s| p.contains(s))
}

/// Is this file allowed to call the attribution consumers directly?
fn attribution_sanctioned(path: &Path) -> bool {
    let p = path.to_string_lossy().replace('\\', "/");
    ATTRIBUTION_SANCTIONED.iter().any(|s| p.contains(s))
}

/// Does this line *declare* a `HashMap` binding (struct field or `let`)?
/// Construction inside a struct literal (`field: HashMap::new(),`) is the
/// declaration's responsibility, not a second finding.
fn declares_hashmap(code: &str) -> bool {
    code.contains(": HashMap<")
        || code.contains("::HashMap<")
        || (code.trim_start().starts_with("let ")
            && (code.contains("HashMap::new()") || code.contains("HashMap::with_capacity")))
}

/// Identifiers bound to a `HashMap` anywhere in the file: struct fields and
/// let-bindings of the form `name: HashMap<...>` or
/// `let [mut] name ... = HashMap::new()`.
fn hashmap_bindings(lines: &[&str]) -> Vec<String> {
    let mut out = Vec::new();
    for &line in lines {
        let code = strip_comment_and_strings(line);
        if let Some(pos) = code.find(": HashMap<") {
            if let Some(name) = ident_ending_at(&code, pos) {
                out.push(name);
            }
        }
        if code.contains("= HashMap::new()") || code.contains("= HashMap::with_capacity") {
            if let Some(rest) = code.trim_start().strip_prefix("let ") {
                let rest = rest.trim_start().trim_start_matches("mut ");
                let name: String = rest
                    .chars()
                    .take_while(|c| c.is_alphanumeric() || *c == '_')
                    .collect();
                if !name.is_empty() {
                    out.push(name);
                }
            }
        }
    }
    out.sort();
    out.dedup();
    out
}

/// The identifier whose last character sits just before byte `end`.
fn ident_ending_at(code: &str, end: usize) -> Option<String> {
    let head = &code[..end];
    let start = head
        .rfind(|c: char| !(c.is_alphanumeric() || c == '_'))
        .map_or(0, |p| p + 1);
    let name = &head[start..];
    (!name.is_empty() && !name.starts_with(|c: char| c.is_ascii_digit())).then(|| name.to_string())
}

/// Does this line iterate the binding (order-sensitive access)?
fn iterates_binding(code: &str, name: &str) -> bool {
    const ITERS: &[&str] = &[
        ".iter()",
        ".iter_mut()",
        ".keys()",
        ".values()",
        ".values_mut()",
        ".drain()",
        ".into_iter()",
        ".retain(",
    ];
    for call in ITERS {
        let needle = format!("{name}{call}");
        if code.contains(&needle) {
            return true;
        }
    }
    // `for x in &map` / `for x in map` / `for x in &mut map`.
    if let Some(pos) = code.find(" in ") {
        let tail = code[pos + 4..]
            .trim_start()
            .trim_start_matches('&')
            .trim_start_matches("mut ")
            .trim_start_matches("self.");
        let ident: String = tail
            .chars()
            .take_while(|c| c.is_alphanumeric() || *c == '_')
            .collect();
        if ident == name {
            let after = &tail[ident.len()..];
            // `for k in map.keys()` already matched above; a bare
            // `for x in map {` or `for x in &map` is the leak here.
            if after.trim_start().is_empty() || after.starts_with(' ') || after.starts_with('{') {
                return true;
            }
        }
    }
    false
}

/// Is the finding suppressed by `lint:allow(<rule>)` on this line or the
/// line above?
fn allowed(lines: &[&str], idx: usize, rule: Rule) -> bool {
    let tag = format!("lint:allow({})", rule.name());
    lines[idx].contains(&tag) || (idx > 0 && lines[idx - 1].contains(&tag))
}

/// Drops `//` comments and the contents of string literals, so identifiers
/// in docs or messages don't trip the scan. (Line-based; multi-line string
/// literals are rare enough in this workspace not to matter.)
fn strip_comment_and_strings(line: &str) -> String {
    let mut out = String::with_capacity(line.len());
    let mut chars = line.chars().peekable();
    let mut in_str = false;
    let mut prev = '\0';
    while let Some(c) = chars.next() {
        if in_str {
            if c == '"' && prev != '\\' {
                in_str = false;
                out.push('"');
            }
            prev = c;
            continue;
        }
        if c == '"' {
            in_str = true;
            out.push('"');
        } else if c == '/' && chars.peek() == Some(&'/') {
            break;
        } else {
            out.push(c);
        }
        prev = c;
    }
    out
}
