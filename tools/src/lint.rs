//! The `lint` binary: CLI over the token-aware static analyzer in
//! `wsc_tools::analyzer`.
//!
//! Usage:
//!
//! ```text
//! cargo run -p wsc-tools --bin lint                # human output, exit 1 on findings
//! cargo run -p wsc-tools --bin lint -- --json analysis.json
//! cargo run -p wsc-tools --bin lint -- --json analysis.json --baseline analysis_baseline.json
//! ```
//!
//! `--json PATH` writes the machine-readable report (deterministic:
//! byte-identical across runs on the same tree). `--baseline PATH` changes
//! the gate: exit 1 only on findings *new* versus the committed baseline,
//! so legacy debt can be frozen without letting fresh debt in. A missing
//! baseline file means everything is new.
//!
//! The rules themselves — what is checked and why — are documented in
//! `tools/src/analyzer/rules.rs` and DESIGN.md §"Static analysis".

use std::path::{Path, PathBuf};
use std::process::ExitCode;
use wsc_tools::analyzer;
use wsc_tools::analyzer::report::Finding;

fn main() -> ExitCode {
    let mut json_out: Option<PathBuf> = None;
    let mut baseline: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => match args.next() {
                Some(p) => json_out = Some(PathBuf::from(p)),
                None => return usage("--json requires a path"),
            },
            "--baseline" => match args.next() {
                Some(p) => baseline = Some(PathBuf::from(p)),
                None => return usage("--baseline requires a path"),
            },
            other => return usage(&format!("unknown argument `{other}`")),
        }
    }

    let root = repo_root();
    let analysis = match analyzer::analyze_workspace(&root) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("lint: failed to scan workspace at {}: {e}", root.display());
            return ExitCode::FAILURE;
        }
    };

    if let Some(path) = &json_out {
        if let Err(e) = std::fs::write(path, analysis.to_json()) {
            eprintln!("lint: failed to write {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
    }

    let gating: Vec<&Finding> = match &baseline {
        Some(path) => {
            let baseline_json = std::fs::read_to_string(path).unwrap_or_default();
            if baseline_json.is_empty() {
                eprintln!(
                    "lint: baseline {} missing or empty; treating all findings as new",
                    path.display()
                );
            }
            analysis.new_vs_baseline(&baseline_json)
        }
        None => analysis.findings.iter().collect(),
    };

    for f in &gating {
        println!(
            "{}:{}:{}: [{}] {}",
            f.file, f.line, f.col, f.rule, f.message
        );
        println!("    {}", f.excerpt.trim());
    }

    let label = if baseline.is_some() {
        "gating (new vs baseline)"
    } else {
        "gating"
    };
    println!(
        "lint: {} files scanned, {} finding(s), {} {label}",
        analysis.files_scanned,
        analysis.findings.len(),
        gating.len()
    );
    if gating.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn usage(err: &str) -> ExitCode {
    eprintln!("lint: {err}");
    eprintln!("usage: lint [--json PATH] [--baseline PATH]");
    ExitCode::FAILURE
}

/// The workspace root: the parent of this crate's manifest dir under
/// cargo, else the current directory (running the binary from a checkout).
fn repo_root() -> PathBuf {
    match std::env::var_os("CARGO_MANIFEST_DIR") {
        Some(dir) => Path::new(&dir)
            .parent()
            .map_or_else(|| PathBuf::from("."), Path::to_path_buf),
        None => PathBuf::from("."),
    }
}
