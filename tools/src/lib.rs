//! `wsc-tools`: in-tree developer tooling for the warehouse-scale
//! allocator study. The only resident today is the static analyzer; the
//! `lint` binary is a thin CLI over [`analyzer::analyze_workspace`].

pub mod analyzer;
