//! A lossless Rust lexer: every byte of the input belongs to exactly one
//! token, spans are byte ranges into the source, and lexing never fails.
//!
//! This is what kills the regex engine's false-positive classes: a pattern
//! like `Instant::now` inside a string literal, a doc comment, or a
//! multi-line expression is a [`TokenKind::Str`] / [`TokenKind::LineComment`]
//! token here, not code — rules only ever look at significant tokens.
//!
//! The lexer is deliberately total: malformed input (unterminated strings,
//! stray bytes) degrades to best-effort tokens instead of an error, because
//! the analyzer must never be the thing that blocks a build on a file it
//! merely failed to understand. Totality and span monotonicity are pinned
//! by the seeded property test in `tools/tests/lexer_props.rs`.

/// What a token is. Trivia (whitespace, comments) is kept in the stream so
/// the token list partitions the input; rules skip it via
/// [`TokenKind::is_trivia`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokenKind {
    /// Whitespace run.
    Ws,
    /// `// ...` through end of line (doc `///` and `//!` included).
    LineComment,
    /// `/* ... */`, nesting-aware.
    BlockComment,
    /// `"..."` or `b"..."`, escape-aware.
    Str,
    /// `r"..."` / `r#"..."#` / `br##"..."##`.
    RawStr,
    /// `'a'`, `'\n'`, `b'x'`.
    Char,
    /// `'ident` (not followed by a closing quote).
    Lifetime,
    /// Identifier or keyword.
    Ident,
    /// Numeric literal (never swallows a `..` range).
    Num,
    /// One punctuation byte (`::` is two `:` tokens).
    Punct,
    /// A byte (or UTF-8 scalar) the lexer has no category for.
    Unknown,
}

impl TokenKind {
    /// Whitespace and comments: skipped by every rule.
    pub fn is_trivia(self) -> bool {
        matches!(
            self,
            TokenKind::Ws | TokenKind::LineComment | TokenKind::BlockComment
        )
    }
}

/// One token: kind plus byte span and 1-based line/column of its start.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Token {
    /// Token category.
    pub kind: TokenKind,
    /// Byte offset of the first byte.
    pub start: usize,
    /// Byte offset one past the last byte.
    pub end: usize,
    /// 1-based line of `start`.
    pub line: u32,
    /// 1-based column (in bytes) of `start`.
    pub col: u32,
}

/// Lexes `src` into a total, span-monotone token stream.
pub fn lex(src: &str) -> Vec<Token> {
    Lexer {
        src,
        bytes: src.as_bytes(),
        pos: 0,
        line: 1,
        col: 1,
        out: Vec::with_capacity(src.len() / 4 + 8),
    }
    .run()
}

struct Lexer<'a> {
    src: &'a str,
    bytes: &'a [u8],
    pos: usize,
    line: u32,
    col: u32,
    out: Vec<Token>,
}

impl Lexer<'_> {
    fn run(mut self) -> Vec<Token> {
        while self.pos < self.bytes.len() {
            let start = self.pos;
            let (line, col) = (self.line, self.col);
            let kind = self.next_kind();
            debug_assert!(self.pos > start, "lexer must always advance");
            self.out.push(Token {
                kind,
                start,
                end: self.pos,
                line,
                col,
            });
        }
        self.out
    }

    fn peek(&self, ahead: usize) -> u8 {
        self.bytes.get(self.pos + ahead).copied().unwrap_or(0)
    }

    /// Advances one byte, maintaining line/col.
    fn bump(&mut self) {
        if self.bytes[self.pos] == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        self.pos += 1;
    }

    /// Advances `n` bytes.
    fn bump_n(&mut self, n: usize) {
        for _ in 0..n {
            if self.pos < self.bytes.len() {
                self.bump();
            }
        }
    }

    fn next_kind(&mut self) -> TokenKind {
        let c = self.peek(0);
        match c {
            b' ' | b'\t' | b'\r' | b'\n' => {
                while matches!(self.peek(0), b' ' | b'\t' | b'\r' | b'\n')
                    && self.pos < self.bytes.len()
                {
                    self.bump();
                }
                TokenKind::Ws
            }
            b'/' if self.peek(1) == b'/' => {
                while self.pos < self.bytes.len() && self.peek(0) != b'\n' {
                    self.bump();
                }
                TokenKind::LineComment
            }
            b'/' if self.peek(1) == b'*' => {
                self.bump_n(2);
                let mut depth = 1u32;
                while self.pos < self.bytes.len() && depth > 0 {
                    if self.peek(0) == b'/' && self.peek(1) == b'*' {
                        depth += 1;
                        self.bump_n(2);
                    } else if self.peek(0) == b'*' && self.peek(1) == b'/' {
                        depth -= 1;
                        self.bump_n(2);
                    } else {
                        self.bump();
                    }
                }
                TokenKind::BlockComment
            }
            b'"' => self.string(),
            b'r' | b'b' => self.maybe_prefixed_literal(),
            b'\'' => self.char_or_lifetime(),
            b'_' | b'a'..=b'z' | b'A'..=b'Z' => {
                self.ident();
                TokenKind::Ident
            }
            b'0'..=b'9' => self.number(),
            _ => {
                if c < 0x80 {
                    self.bump();
                    if c.is_ascii_punctuation() {
                        TokenKind::Punct
                    } else {
                        TokenKind::Unknown
                    }
                } else {
                    // Consume one whole UTF-8 scalar so spans stay on char
                    // boundaries.
                    let ch_len = self.src[self.pos..]
                        .chars()
                        .next()
                        .map_or(1, char::len_utf8);
                    self.bump_n(ch_len);
                    TokenKind::Unknown
                }
            }
        }
    }

    fn ident(&mut self) {
        while matches!(self.peek(0), b'_' | b'a'..=b'z' | b'A'..=b'Z' | b'0'..=b'9')
            && self.pos < self.bytes.len()
        {
            self.bump();
        }
    }

    /// `r"…"`, `r#"…"#`, `b"…"`, `br#"…"#`, `b'…'` — or a plain identifier
    /// starting with `r`/`b`.
    fn maybe_prefixed_literal(&mut self) -> TokenKind {
        let c0 = self.peek(0);
        let (c1, c2) = (self.peek(1), self.peek(2));
        if c0 == b'b' && c1 == b'\'' {
            self.bump();
            return self.char_body();
        }
        if c0 == b'b' && c1 == b'"' {
            self.bump();
            return self.string();
        }
        let raw_at = if c1 == b'"' || c1 == b'#' {
            1
        } else if c0 == b'b' && c1 == b'r' && (c2 == b'"' || c2 == b'#') {
            2
        } else {
            0
        };
        if (c0 == b'r' || c0 == b'b') && raw_at > 0 {
            // Count the `#`s; a raw-string start needs `#* "`.
            let mut hashes = 0usize;
            while self.peek(raw_at + hashes) == b'#' {
                hashes += 1;
            }
            if self.peek(raw_at + hashes) == b'"' {
                self.bump_n(raw_at + hashes + 1);
                loop {
                    if self.pos >= self.bytes.len() {
                        break; // unterminated: total anyway
                    }
                    if self.peek(0) == b'"' {
                        let mut ok = true;
                        for h in 0..hashes {
                            if self.peek(1 + h) != b'#' {
                                ok = false;
                                break;
                            }
                        }
                        if ok {
                            self.bump_n(1 + hashes);
                            break;
                        }
                    }
                    self.bump();
                }
                return TokenKind::RawStr;
            }
        }
        self.ident();
        TokenKind::Ident
    }

    /// A `"…"` body starting at the opening quote.
    fn string(&mut self) -> TokenKind {
        self.bump(); // opening quote
        while self.pos < self.bytes.len() {
            match self.peek(0) {
                b'\\' => self.bump_n(2),
                b'"' => {
                    self.bump();
                    break;
                }
                _ => self.bump(),
            }
        }
        TokenKind::Str
    }

    /// `'a'` / `'\n'` vs `'lifetime` — the classic disambiguation: after the
    /// quote, an identifier not followed by a closing quote is a lifetime.
    fn char_or_lifetime(&mut self) -> TokenKind {
        let c1 = self.peek(1);
        if (c1 == b'_' || c1.is_ascii_alphabetic()) && c1 != 0 {
            // Scan the identifier; if it ends with `'` it was a char like
            // 'a', otherwise a lifetime.
            let mut i = 1;
            while matches!(
                self.peek(i),
                b'_' | b'a'..=b'z' | b'A'..=b'Z' | b'0'..=b'9'
            ) {
                i += 1;
            }
            if self.peek(i) != b'\'' {
                self.bump(); // the quote
                self.ident();
                return TokenKind::Lifetime;
            }
        }
        self.char_body()
    }

    /// A char literal starting at the opening quote.
    fn char_body(&mut self) -> TokenKind {
        self.bump(); // opening quote
        let mut seen = 0usize;
        while self.pos < self.bytes.len() {
            match self.peek(0) {
                b'\\' => {
                    self.bump_n(2);
                    seen += 1;
                }
                b'\'' => {
                    self.bump();
                    return TokenKind::Char;
                }
                b'\n' => return TokenKind::Char, // malformed; stay total
                _ => {
                    self.bump();
                    seen += 1;
                }
            }
            if seen > 12 {
                // Runaway (an unterminated quote): stop, stay total.
                return TokenKind::Char;
            }
        }
        TokenKind::Char
    }

    /// Numeric literal. Consumes digits, `_`, alphanumerics (hex digits and
    /// suffixes like `u64`/`f32`), a decimal point followed by a digit, and
    /// an exponent sign — but never a `..` range operator.
    fn number(&mut self) -> TokenKind {
        while self.pos < self.bytes.len() {
            let c = self.peek(0);
            if matches!(c, b'0'..=b'9' | b'a'..=b'z' | b'A'..=b'Z' | b'_') {
                // `1e-3` / `1E+3`: let the sign ride along with the exponent.
                let exp = (c == b'e' || c == b'E')
                    && matches!(self.peek(1), b'+' | b'-')
                    && self.peek(2).is_ascii_digit();
                self.bump();
                if exp {
                    self.bump(); // the sign
                }
            } else if c == b'.' && self.peek(1).is_ascii_digit() {
                self.bump();
            } else {
                break;
            }
        }
        TokenKind::Num
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src)
            .into_iter()
            .filter(|t| !t.kind.is_trivia())
            .map(|t| t.kind)
            .collect()
    }

    fn texts(src: &str) -> Vec<String> {
        lex(src)
            .into_iter()
            .filter(|t| !t.kind.is_trivia())
            .map(|t| src[t.start..t.end].to_string())
            .collect()
    }

    #[test]
    fn partitions_the_input() {
        let src = "fn main() { let s = \"Instant::now()\"; } // trailing";
        let toks = lex(src);
        let mut pos = 0;
        for t in &toks {
            assert_eq!(t.start, pos, "gap before {t:?}");
            assert!(t.end > t.start);
            pos = t.end;
        }
        assert_eq!(pos, src.len());
    }

    #[test]
    fn strings_and_comments_are_opaque() {
        let src = "let a = \"thread_rng\"; // thread_rng\n/* thread_rng */ let b = 1;";
        let ids: Vec<_> = lex(src)
            .into_iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| src[t.start..t.end].to_string())
            .collect();
        assert_eq!(ids, ["let", "a", "let", "b"]);
    }

    #[test]
    fn raw_strings_with_hashes() {
        let src = r##"let x = r#"a "quoted" thing"#; y"##;
        let t = texts(src);
        assert!(t.contains(&r##"r#"a "quoted" thing"#"##.to_string()));
        assert_eq!(t.last().map(String::as_str), Some("y"));
    }

    #[test]
    fn lifetime_vs_char() {
        assert_eq!(
            kinds("&'a str 'x' b'y'"),
            [
                TokenKind::Punct,
                TokenKind::Lifetime,
                TokenKind::Ident,
                TokenKind::Char,
                TokenKind::Char,
            ]
        );
    }

    #[test]
    fn numbers_do_not_eat_ranges() {
        let t = texts("for i in 0..10 { v[i-1]; }");
        assert!(t.contains(&"0".to_string()));
        assert!(t.contains(&"10".to_string()));
        let dots = t.iter().filter(|s| s.as_str() == ".").count();
        assert_eq!(dots, 2, "{t:?}");
    }

    #[test]
    fn nested_block_comments() {
        let src = "/* outer /* inner */ still */ code";
        let t = texts(src);
        assert_eq!(t, ["code"]);
    }

    #[test]
    fn line_and_col_are_tracked() {
        let src = "ab\n  cd";
        let toks: Vec<_> = lex(src)
            .into_iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .collect();
        assert_eq!((toks[0].line, toks[0].col), (1, 1));
        assert_eq!((toks[1].line, toks[1].col), (2, 3));
    }
}
