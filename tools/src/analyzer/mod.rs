//! `wsc-analyzer`: the in-tree, zero-dependency static analysis framework.
//!
//! Layers, bottom up:
//!
//! * [`lexer`] — a lossless Rust lexer: every byte of the input lands in
//!   exactly one token, strings / chars / raw strings / comments are
//!   single tokens, and every token carries its byte span and line/col.
//!   Total on malformed input (unterminated literals run to EOF).
//! * [`items`] — the per-file item model: function boundaries (with
//!   receiver and visibility), `#[cfg(test)]` tracking, a name-based call
//!   list per function, the file's `use` paths, and the `lint:allow` /
//!   `lint:lock-order` annotations.
//! * [`rules`] — the ten rules (six re-hosted from the regex engine, four
//!   new), evaluated over the file models with cross-file passes for
//!   event-completeness and panic-surface reachability.
//! * [`report`] — findings, the deterministic `analysis.json` writer, and
//!   the committed-baseline diff.
//!
//! Entry points: [`analyze_workspace`] for the real tree,
//! [`analyze_files`] for tests feeding virtual files.

pub mod items;
pub mod lexer;
pub mod report;
pub mod rules;

use items::FileModel;
use report::Analysis;
use std::io;
use std::path::{Path, PathBuf};

/// Crate directories under `crates/` the analyzer scans. Everything the
/// deterministic pipeline touches is here; `tools/src` is appended so the
/// analyzer is subject to its own rules (its findings-corpus fixtures under
/// `tools/tests/corpus/` are deliberately *not* — they exist to violate
/// rules).
pub const SCOPED_CRATES: &[&str] = &[
    "fleet",
    "parallel",
    "prng",
    "sanitizer",
    "sim-hw",
    "sim-os",
    "tcmalloc",
    "telemetry",
    "workload",
];

/// Runs the full rule set over the workspace rooted at `root`.
pub fn analyze_workspace(root: &Path) -> io::Result<Analysis> {
    let mut paths: Vec<PathBuf> = Vec::new();
    for krate in SCOPED_CRATES {
        collect_rs(&root.join("crates").join(krate), &mut paths)?;
    }
    collect_rs(&root.join("tools").join("src"), &mut paths)?;
    paths.sort();

    let mut models = Vec::with_capacity(paths.len());
    for p in &paths {
        models.push(FileModel::load(root, p)?);
    }
    Ok(analyze_files(models))
}

/// Runs the full rule set over pre-built file models (virtual or real).
pub fn analyze_files(models: Vec<FileModel>) -> Analysis {
    let findings = rules::run_rules(&models);
    Analysis {
        files_scanned: models.len(),
        findings,
    }
}

/// Recursively collects `.rs` files under `dir`. A missing directory is
/// not an error (crates come and go across PRs); the sort in the caller
/// makes discovery order irrelevant.
fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}
