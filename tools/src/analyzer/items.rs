//! The item model: a per-file view of functions, modules, impl blocks,
//! imports, suppression annotations, and lock-order declarations, built
//! from the token stream.
//!
//! This is deliberately *not* a full parser. The analyzer needs exactly
//! four structural facts the line-regex engine could not recover:
//!
//! 1. **Function boundaries** — which tokens belong to which `fn` body, so
//!    a rule can say "this `panic!` lives in `try_free`'s reach" or "this
//!    `pub fn` never emits an event".
//! 2. **Receivers and visibility** — `pub fn f(&mut self, …)` is a
//!    state-mutating API surface; `fn helper()` is not.
//! 3. **Calls** — the per-file edge list (`callee name` granularity) that
//!    the cross-file call graph is assembled from. Name-based resolution
//!    over-approximates (every `free` is every other `free`), which is the
//!    safe direction for reachability rules.
//! 4. **Test context** — items inside `#[cfg(test)]` modules, `#[test]`
//!    functions, and files under `tests/`/`benches/` are exempt from the
//!    production-surface rules.
//!
//! Everything is assembled in one token walk with a brace-depth stack.

use super::lexer::{lex, Token, TokenKind};
use std::path::Path;

/// How a function takes `self`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Receiver {
    /// Free function or associated function (no `self`).
    None,
    /// `&self`.
    SelfRef,
    /// `&mut self`.
    SelfMut,
    /// `self` / `mut self` by value (builders).
    SelfVal,
}

/// One `fn` item.
#[derive(Clone, Debug)]
pub struct FnItem {
    /// Unqualified name.
    pub name: String,
    /// Any `pub` visibility (`pub`, `pub(crate)`, …).
    pub is_pub: bool,
    /// Self receiver.
    pub receiver: Receiver,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Significant-token index range of the body (exclusive of braces);
    /// empty for bodyless trait-method declarations.
    pub body: (usize, usize),
    /// Callee names invoked in the body: `name(…)`, `.name(…)`,
    /// `Path::name(…)` all contribute `name`; macros contribute `name!`.
    pub calls: Vec<String>,
    /// Inside `#[cfg(test)]`, marked `#[test]`, or in a test/bench file.
    pub in_test: bool,
}

/// A `lint:allow(tag)` site.
#[derive(Clone, Debug)]
pub struct AllowSite {
    /// The tag inside the parentheses.
    pub tag: String,
    /// 1-based line the annotation sits on.
    pub line: u32,
}

/// A `lint:lock-order(a, b, …)` declaration.
#[derive(Clone, Debug)]
pub struct LockOrderDecl {
    /// Receiver names in canonical acquisition order.
    pub order: Vec<String>,
    /// 1-based line of the declaration.
    pub line: u32,
}

/// One analyzed file: source, tokens, and the item model.
#[derive(Debug)]
pub struct FileModel {
    /// Repo-relative path with forward slashes (stable across platforms —
    /// it is the identity used in reports and baselines).
    pub rel: String,
    /// The source text.
    pub src: String,
    /// The full (lossless) token stream.
    pub tokens: Vec<Token>,
    /// Indices into `tokens` of the significant (non-trivia) tokens.
    pub sig: Vec<usize>,
    /// Functions, in source order.
    pub fns: Vec<FnItem>,
    /// Flattened `use` paths, e.g. `std::sync::Mutex` (groups expanded).
    pub uses: Vec<String>,
    /// Every `lint:allow(tag)` in the file.
    pub allows: Vec<AllowSite>,
    /// The file's `lint:lock-order(…)` declaration, if any.
    pub lock_order: Option<LockOrderDecl>,
    /// Whole file is test context (`tests/` or `benches/` directory).
    pub file_is_test: bool,
}

impl FileModel {
    /// Builds the model for one file.
    pub fn build(rel: String, src: String) -> Self {
        let tokens = lex(&src);
        let sig: Vec<usize> = tokens
            .iter()
            .enumerate()
            .filter(|(_, t)| !t.kind.is_trivia())
            .map(|(i, _)| i)
            .collect();
        let file_is_test = rel.contains("/tests/") || rel.contains("/benches/");
        let (allows, lock_order) = scan_annotations(&src, &tokens);
        let mut m = Self {
            rel,
            src,
            tokens,
            sig,
            fns: Vec::new(),
            uses: Vec::new(),
            allows,
            lock_order,
            file_is_test,
        };
        build_items(&mut m);
        m
    }

    /// Convenience: build from a real path under `root`.
    pub fn load(root: &Path, path: &Path) -> std::io::Result<Self> {
        let src = std::fs::read_to_string(path)?;
        let rel = path
            .strip_prefix(root)
            .unwrap_or(path)
            .to_string_lossy()
            .replace('\\', "/");
        Ok(Self::build(rel, src))
    }

    /// The text of the significant token at sig-index `i`.
    pub fn text(&self, i: usize) -> &str {
        let t = self.tokens[self.sig[i]];
        &self.src[t.start..t.end]
    }

    /// The token at sig-index `i`.
    pub fn tok(&self, i: usize) -> Token {
        self.tokens[self.sig[i]]
    }

    /// Number of significant tokens.
    pub fn len(&self) -> usize {
        self.sig.len()
    }

    /// Whether the file has no significant tokens.
    pub fn is_empty(&self) -> bool {
        self.sig.is_empty()
    }

    /// Does sig-index `i` hold exactly `s`?
    pub fn is(&self, i: usize, s: &str) -> bool {
        i < self.len() && self.text(i) == s
    }

    /// Does the token path starting at `i` match `pat`? `"::"` entries in
    /// `pat` match two consecutive `:` punct tokens.
    pub fn matches_path(&self, mut i: usize, pat: &[&str]) -> bool {
        for p in pat {
            if *p == "::" {
                if !(self.is(i, ":") && self.is(i + 1, ":")) {
                    return false;
                }
                i += 2;
            } else {
                if !self.is(i, p) {
                    return false;
                }
                i += 1;
            }
        }
        true
    }

    /// The source line (1-based) of sig-index `i`.
    pub fn line_of(&self, i: usize) -> u32 {
        self.tok(i).line
    }

    /// The trimmed source text of 1-based line `line`.
    pub fn line_text(&self, line: u32) -> &str {
        self.src
            .lines()
            .nth(line as usize - 1)
            .unwrap_or_default()
            .trim()
    }

    /// The function whose body contains sig-index `i`, if any.
    pub fn enclosing_fn(&self, i: usize) -> Option<&FnItem> {
        // Innermost wins: later fns in source order with a containing body
        // are more deeply nested.
        self.fns
            .iter()
            .rev()
            .find(|f| f.body.0 <= i && i < f.body.1)
    }
}

/// Scans comments for `lint:allow(tag)` and `lint:lock-order(a, b)`.
/// Doc comments (`///`, `//!`, `/**`, `/*!`) are skipped: they document
/// annotations, they don't place them — otherwise every mention of the
/// syntax in prose would register as a (stale) suppression site.
fn scan_annotations(src: &str, tokens: &[Token]) -> (Vec<AllowSite>, Option<LockOrderDecl>) {
    let mut allows = Vec::new();
    let mut lock_order = None;
    for t in tokens {
        if !matches!(t.kind, TokenKind::LineComment | TokenKind::BlockComment) {
            continue;
        }
        let text = &src[t.start..t.end];
        if text.starts_with("///")
            || text.starts_with("//!")
            || text.starts_with("/**")
            || text.starts_with("/*!")
        {
            continue;
        }
        let mut at = 0usize;
        while let Some(p) = text[at..].find("lint:allow(") {
            let open = at + p + "lint:allow(".len();
            if let Some(close) = text[open..].find(')') {
                allows.push(AllowSite {
                    tag: text[open..open + close].trim().to_string(),
                    line: t.line + text[..at + p].matches('\n').count() as u32,
                });
                at = open + close + 1;
            } else {
                break;
            }
        }
        if let Some(p) = text.find("lint:lock-order(") {
            let tail = &text[p + "lint:lock-order(".len()..];
            if let Some(close) = tail.find(')') {
                lock_order = Some(LockOrderDecl {
                    order: tail[..close]
                        .split(',')
                        .map(|s| s.trim().to_string())
                        .filter(|s| !s.is_empty())
                        .collect(),
                    line: t.line,
                });
            }
        }
    }
    (allows, lock_order)
}

/// Rust keywords that look like calls when followed by `(`.
pub(crate) const NOT_CALLS: &[&str] = &[
    "if", "match", "while", "for", "return", "fn", "in", "as", "loop", "move", "let", "else",
    "break", "continue", "unsafe", "where", "impl", "dyn",
];

/// One token walk: tracks brace depth, `#[cfg(test)]` module extents,
/// visibility runs, `use` statements, fn signatures/bodies, and call sites.
fn build_items(m: &mut FileModel) {
    let n = m.len();
    let mut i = 0usize;
    let mut depth = 0i32;
    // Stack of depths at which a test-context scope (a `#[cfg(test)]` mod
    // or any mod inside one) was opened.
    let mut test_depths: Vec<i32> = Vec::new();
    // Open fn bodies: (fn index in m.fns, closing depth).
    let mut open_fns: Vec<(usize, i32)> = Vec::new();
    let mut saw_pub = false;
    let mut pending_cfg_test = false;
    let mut pending_test_attr = false;

    while i < n {
        let tx = m.text(i).to_string();
        match tx.as_str() {
            "#" => {
                // Attribute: `#[ ... ]` — scan to the matching `]`, noting
                // cfg(test)/test markers for the item that follows.
                let mut j = i + 1;
                if m.is(j, "[") {
                    let mut bd = 0i32;
                    let mut body = String::new();
                    while j < n {
                        let t = m.text(j);
                        if t == "[" {
                            bd += 1;
                        } else if t == "]" {
                            bd -= 1;
                            if bd == 0 {
                                break;
                            }
                        } else {
                            body.push_str(t);
                            body.push(' ');
                        }
                        j += 1;
                    }
                    if body.contains("cfg ( test") || body.contains("cfg ( any ( test") {
                        pending_cfg_test = true;
                    }
                    if body.trim() == "test" || body.starts_with("test ") {
                        pending_test_attr = true;
                    }
                    i = j + 1;
                    continue;
                }
            }
            "pub" => {
                saw_pub = true;
                // Skip a `(crate)` / `(super)` restriction.
                if m.is(i + 1, "(") {
                    let mut j = i + 2;
                    while j < n && !m.is(j, ")") {
                        j += 1;
                    }
                    i = j + 1;
                    continue;
                }
            }
            "use" => {
                let (paths, next) = parse_use(m, i + 1);
                m.uses.extend(paths);
                saw_pub = false;
                i = next;
                continue;
            }
            "mod" => {
                // `mod name {` opens a scope; mark it if a cfg(test)
                // attribute was pending or we are already inside one.
                let mut j = i + 1;
                while j < n && !m.is(j, "{") && !m.is(j, ";") {
                    j += 1;
                }
                if m.is(j, "{") {
                    if pending_cfg_test || !test_depths.is_empty() {
                        test_depths.push(depth);
                    }
                    depth += 1;
                }
                pending_cfg_test = false;
                pending_test_attr = false;
                saw_pub = false;
                i = j + 1;
                continue;
            }
            "fn" => {
                let header_pub = saw_pub;
                let header_test = pending_test_attr
                    || !test_depths.is_empty()
                    || m.file_is_test
                    || pending_cfg_test;
                saw_pub = false;
                pending_test_attr = false;
                pending_cfg_test = false;
                let name = if i + 1 < n {
                    m.text(i + 1).to_string()
                } else {
                    String::new()
                };
                let line = m.line_of(i);
                // Find the parameter list `(`, skipping generics.
                let mut j = i + 2;
                if m.is(j, "<") {
                    let mut gd = 0i32;
                    while j < n {
                        let t = m.text(j);
                        if t == "<" {
                            gd += 1;
                        } else if t == ">" && !(j > 0 && m.is(j - 1, "-")) {
                            // The `-` guard keeps the `>` of a `->` in a
                            // `Fn(..) -> R` bound from closing the list.
                            gd -= 1;
                            if gd == 0 {
                                j += 1;
                                break;
                            }
                        }
                        j += 1;
                    }
                }
                let receiver = if m.is(j, "(") {
                    parse_receiver(m, j + 1)
                } else {
                    Receiver::None
                };
                // Walk to the body `{` or a terminating `;`, balancing
                // parens/brackets/angle-free (return types hold no `{`).
                let mut pd = 0i32;
                while j < n {
                    let t = m.text(j);
                    match t {
                        "(" | "[" => pd += 1,
                        ")" | "]" => pd -= 1,
                        "{" if pd == 0 => break,
                        ";" if pd == 0 => break,
                        _ => {}
                    }
                    j += 1;
                }
                if m.is(j, "{") {
                    let idx = m.fns.len();
                    m.fns.push(FnItem {
                        name,
                        is_pub: header_pub,
                        receiver,
                        line,
                        body: (j + 1, j + 1), // end patched at close
                        calls: Vec::new(),
                        in_test: header_test,
                    });
                    open_fns.push((idx, depth));
                    depth += 1;
                } else {
                    // Bodyless declaration (trait method): record with an
                    // empty body.
                    m.fns.push(FnItem {
                        name,
                        is_pub: header_pub,
                        receiver,
                        line,
                        body: (0, 0),
                        calls: Vec::new(),
                        in_test: header_test,
                    });
                }
                i = j + 1;
                continue;
            }
            "{" => {
                depth += 1;
            }
            "}" => {
                depth -= 1;
                if let Some(&(idx, d)) = open_fns.last() {
                    if d == depth {
                        m.fns[idx].body.1 = i;
                        open_fns.pop();
                    }
                }
                if test_depths.last() == Some(&depth) {
                    test_depths.pop();
                }
            }
            ";" | "=" => {
                saw_pub = false;
            }
            _ => {
                // A call site: `name (` — attribute to every open fn
                // (innermost resolution happens at query time via spans;
                // for the edge list, crediting all enclosing fns keeps
                // reachability an over-approximation).
                if m.is(i + 1, "(")
                    && m.tok(i).kind == TokenKind::Ident
                    && !NOT_CALLS.contains(&tx.as_str())
                {
                    if let Some(&(idx, _)) = open_fns.last() {
                        if !m.fns[idx].calls.contains(&tx) {
                            m.fns[idx].calls.push(tx.clone());
                        }
                    }
                }
                // A macro invocation: `name !`.
                if m.is(i + 1, "!") && m.tok(i).kind == TokenKind::Ident {
                    if let Some(&(idx, _)) = open_fns.last() {
                        let name = format!("{tx}!");
                        if !m.fns[idx].calls.contains(&name) {
                            m.fns[idx].calls.push(name);
                        }
                    }
                }
            }
        }
        i += 1;
    }
    // Any fn left open (unbalanced input) closes at EOF — totality again.
    for (idx, _) in open_fns {
        m.fns[idx].body.1 = n;
    }
}

/// Parses the receiver at the first token after the `(` of a param list.
fn parse_receiver(m: &FileModel, mut j: usize) -> Receiver {
    if m.is(j, "&") {
        j += 1;
        if m.tok(j).kind == TokenKind::Lifetime {
            j += 1;
        }
        if m.is(j, "mut") && m.is(j + 1, "self") {
            return Receiver::SelfMut;
        }
        if m.is(j, "self") {
            return Receiver::SelfRef;
        }
        return Receiver::None;
    }
    if m.is(j, "mut") && m.is(j + 1, "self") {
        return Receiver::SelfVal;
    }
    if m.is(j, "self") {
        return Receiver::SelfVal;
    }
    Receiver::None
}

/// Parses a `use` statement starting after the `use` keyword; returns the
/// flattened paths and the sig-index one past the closing `;`.
fn parse_use(m: &FileModel, start: usize) -> (Vec<String>, usize) {
    // Collect the raw token texts to the `;`, then expand `{…}` groups one
    // level at a time.
    let mut j = start;
    let mut toks: Vec<String> = Vec::new();
    while j < m.len() && !m.is(j, ";") {
        toks.push(m.text(j).to_string());
        j += 1;
    }
    let flat = expand_use(&toks.join(""));
    (flat, j + 1)
}

/// Expands `a::{b, c::{d, e}}` into `[a::b, a::c::d, a::c::e]`.
fn expand_use(s: &str) -> Vec<String> {
    let s = s.trim();
    if let Some(open) = s.find('{') {
        let prefix = &s[..open];
        // The group must close at the end (use statements do).
        let inner = s[open + 1..].strip_suffix('}').unwrap_or(&s[open + 1..]);
        let mut out = Vec::new();
        let mut depth = 0i32;
        let mut cur = String::new();
        for c in inner.chars() {
            match c {
                '{' => {
                    depth += 1;
                    cur.push(c);
                }
                '}' => {
                    depth -= 1;
                    cur.push(c);
                }
                ',' if depth == 0 => {
                    out.extend(expand_use(&format!("{prefix}{}", cur.trim())));
                    cur.clear();
                }
                _ => cur.push(c),
            }
        }
        if !cur.trim().is_empty() {
            out.extend(expand_use(&format!("{prefix}{}", cur.trim())));
        }
        out
    } else {
        vec![s.to_string()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model(src: &str) -> FileModel {
        FileModel::build("crates/x/src/lib.rs".to_string(), src.to_string())
    }

    #[test]
    fn fn_boundaries_and_receivers() {
        let m = model(
            "impl S {\n  pub fn a(&mut self, x: u64) { helper(x); }\n  fn b(&self) {}\n  pub fn c(mut self) -> Self { self }\n}\nfn helper(x: u64) {}\n",
        );
        let names: Vec<_> = m.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, ["a", "b", "c", "helper"]);
        assert_eq!(m.fns[0].receiver, Receiver::SelfMut);
        assert!(m.fns[0].is_pub);
        assert_eq!(m.fns[1].receiver, Receiver::SelfRef);
        assert!(!m.fns[1].is_pub);
        assert_eq!(m.fns[2].receiver, Receiver::SelfVal);
        assert_eq!(m.fns[0].calls, ["helper"]);
    }

    #[test]
    fn cfg_test_modules_are_test_context() {
        let m = model(
            "pub fn prod(&mut self) {}\n#[cfg(test)]\nmod tests {\n  pub fn helper(&mut self) {}\n  #[test]\n  fn case() {}\n}\n",
        );
        assert!(!m.fns[0].in_test);
        assert!(m.fns[1].in_test, "helper inside cfg(test) mod");
        assert!(m.fns[2].in_test);
    }

    #[test]
    fn use_groups_expand() {
        let m = model("use std::sync::{Mutex, atomic::{AtomicU64, Ordering}};\nuse std::fmt;\n");
        assert_eq!(
            m.uses,
            [
                "std::sync::Mutex",
                "std::sync::atomic::AtomicU64",
                "std::sync::atomic::Ordering",
                "std::fmt",
            ]
        );
    }

    #[test]
    fn annotations_are_collected() {
        let m =
            model("// lint:allow(hashmap-decl) keyed only\nlet x = 1;\n// lint:lock-order(a, b)\n");
        assert_eq!(m.allows.len(), 1);
        assert_eq!(m.allows[0].tag, "hashmap-decl");
        assert_eq!(m.allows[0].line, 1);
        let lo = m.lock_order.expect("declared");
        assert_eq!(lo.order, ["a", "b"]);
    }

    #[test]
    fn generic_fn_receiver_is_found() {
        let m = model("pub fn f<T: Ord, const N: usize>(&mut self, t: T) { t.g(); }\n");
        assert_eq!(m.fns[0].receiver, Receiver::SelfMut);
        assert_eq!(m.fns[0].calls, ["g"]);
    }

    #[test]
    fn macros_are_recorded_as_calls() {
        let m = model("fn f() { panic!(\"x\"); }\n");
        assert_eq!(m.fns[0].calls, ["panic!"]);
    }
}
