//! The ten analysis rules, evaluated over [`FileModel`]s.
//!
//! Six are re-hosted from the old line-regex engine (wall-clock,
//! ambient-rng, hashmap-iter, hashmap-decl, direct-attribution,
//! infallible-os) — now token-aware, so occurrences inside string
//! literals, doc comments, and block comments can no longer false-positive,
//! and multi-line expressions can no longer hide a call from a
//! single-line regex.
//!
//! Four are new and need the item model:
//!
//! * **concurrency-readiness** — `Mutex`/`RwLock`/`Arc`/`Condvar`/
//!   `thread::spawn` are denied outside the sanctioned concurrency modules
//!   (`crates/parallel/`, and the per-CPU shard code when it lands); every
//!   explicit atomic `Ordering::…` use needs a `lint:allow(atomic-ordering)`
//!   justification even inside them; and lock acquisition must follow the
//!   file's declared `lint:lock-order(a, b, …)` within each function body.
//! * **event-completeness** — every `pub fn (&mut self, …)` in a tier
//!   module of `crates/tcmalloc/src` must emit at least one `AllocEvent`,
//!   directly or through a callee (name-based transitive closure); and
//!   every variant of the `AllocEvent` catalog must have a construction
//!   site in tier code.
//! * **panic-surface** — `panic!`/`todo!`/`unimplemented!` and computed
//!   slice indexing (`v[i + 1]`, `v[lo..hi]`, `v[f(x)]` — anything beyond a
//!   plain identifier/field/literal/cast index) are findings inside
//!   functions reachable from the fallible entry points
//!   (`try_malloc`/`try_malloc_with_site`/`try_free`).
//! * **suppression-hygiene** — a `lint:allow(tag)` that suppressed nothing
//!   this run, names an unknown rule, or a `lint:lock-order` declaration in
//!   a file without lock acquisitions, is itself a finding. Suppressions
//!   can never go stale silently.
//!
//! A finding carries a *suppress tag* (usually the rule name;
//! `atomic-ordering` for the ordering sub-check). It is suppressed by a
//! `lint:allow(tag)` comment on the same line, or in the contiguous
//! comment block ending on the line above the finding.

use super::items::{FileModel, FnItem, Receiver, NOT_CALLS};
use super::lexer::TokenKind;
use super::report::Finding;
use std::collections::{BTreeMap, BTreeSet};

/// The rule set.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// Wall-clock time in the deterministic core.
    WallClock,
    /// OS-seeded randomness.
    AmbientRng,
    /// Iteration over a `HashMap` binding.
    HashMapIter,
    /// Unjustified `HashMap` declaration.
    HashMapDecl,
    /// Attribution consumer called outside the event bus.
    DirectAttribution,
    /// Kernel state constructed or mutated outside the OS boundary.
    InfallibleOs,
    /// Concurrency primitives outside sanctioned modules, unjustified
    /// atomic orderings, lock-order violations.
    Concurrency,
    /// Tier-state mutator that never emits an `AllocEvent`, or an
    /// `AllocEvent` variant with no tier construction site.
    EventCompleteness,
    /// Panic macros / computed indexing on the fallible allocator paths.
    PanicSurface,
    /// Stale or unknown suppression annotations.
    SuppressionHygiene,
}

/// All rules, in the order reports list them.
pub const ALL_RULES: [Rule; 10] = [
    Rule::WallClock,
    Rule::AmbientRng,
    Rule::HashMapIter,
    Rule::HashMapDecl,
    Rule::DirectAttribution,
    Rule::InfallibleOs,
    Rule::Concurrency,
    Rule::EventCompleteness,
    Rule::PanicSurface,
    Rule::SuppressionHygiene,
];

impl Rule {
    /// The rule's report name (also its default suppress tag).
    pub fn name(self) -> &'static str {
        match self {
            Rule::WallClock => "wall-clock",
            Rule::AmbientRng => "ambient-rng",
            Rule::HashMapIter => "hashmap-iter",
            Rule::HashMapDecl => "hashmap-decl",
            Rule::DirectAttribution => "direct-attribution",
            Rule::InfallibleOs => "infallible-os",
            Rule::Concurrency => "concurrency-readiness",
            Rule::EventCompleteness => "event-completeness",
            Rule::PanicSurface => "panic-surface",
            Rule::SuppressionHygiene => "suppression-hygiene",
        }
    }
}

/// Tags a `lint:allow(…)` may legitimately carry: every suppressible rule
/// plus the `atomic-ordering` sub-tag of concurrency-readiness.
/// `suppression-hygiene` itself is absent: hygiene findings cannot be
/// suppressed, or stale annotations could justify themselves.
pub const VALID_ALLOW_TAGS: [&str; 10] = [
    "wall-clock",
    "ambient-rng",
    "hashmap-iter",
    "hashmap-decl",
    "direct-attribution",
    "infallible-os",
    "concurrency-readiness",
    "atomic-ordering",
    "event-completeness",
    "panic-surface",
];

/// Paths where direct `charge`/`record_alloc`/`record_lifetime` calls are
/// legitimate: the event sinks themselves, and the crates that implement
/// (and unit-test) the consumers the sinks drive.
const ATTRIBUTION_SANCTIONED: &[&str] = &[
    "crates/tcmalloc/src/events.rs",
    "crates/tcmalloc/src/stats.rs",
    "crates/sanitizer/",
    "crates/telemetry/",
];

/// Paths allowed to construct or mutate the kernel (`Vmm` / `PageTable`)
/// directly: the OS boundary itself, and the pageheap's `OsLayer` wrapper
/// that routes every call through the fault injector and the hard limit.
const OS_SANCTIONED: &[&str] = &["crates/sim-os/", "crates/tcmalloc/src/pageheap/"];

/// Modules sanctioned to hold concurrency primitives: the experiment
/// engine, and the deferred cross-thread free module — the contention-real
/// piece of the allocator core (ROADMAP item 1), whose per-span lists and
/// message inboxes are the one place the simulated allocator legitimately
/// models shared mutable state. Everything else in the deterministic core
/// stays single-threaded.
const CONCURRENCY_SANCTIONED: &[&str] = &["crates/parallel/", "crates/tcmalloc/src/deferred"];

/// Method names that mutate kernel state (see [`OS_SANCTIONED`]).
const OS_MUTATION_METHODS: &[&str] = &[
    "mmap",
    "munmap",
    "on_mmap",
    "on_mmap_backed",
    "on_munmap",
    "subrelease",
    "reoccupy",
    "collapse_huge",
    "promote",
];

/// Tier modules of `crates/tcmalloc/src` covered by event-completeness.
const TIER_FILES: &[&str] = &[
    "crates/tcmalloc/src/alloc.rs",
    "crates/tcmalloc/src/percpu.rs",
    "crates/tcmalloc/src/transfer.rs",
    "crates/tcmalloc/src/central.rs",
    "crates/tcmalloc/src/pagemap.rs",
];

/// The fallible entry points panic-surface reachability starts from.
const FALLIBLE_ROOTS: &[&str] = &["try_malloc", "try_malloc_with_site", "try_free"];

/// Explicit atomic memory orderings (std::sync::atomic::Ordering variants —
/// `std::cmp::Ordering`'s variants differ, so no collision).
const ATOMIC_ORDERINGS: &[&str] = &["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];

/// `HashMap` iteration methods (order-sensitive access).
const MAP_ITERS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "into_iter",
    "retain",
];

/// One candidate finding, pre-suppression.
struct Candidate {
    rule: Rule,
    tag: &'static str,
    file: usize,
    line: u32,
    col: u32,
    message: String,
}

/// Evaluates every rule over the file set and returns the unsuppressed
/// findings, sorted by (file, line, col, rule).
pub fn run_rules(files: &[FileModel]) -> Vec<Finding> {
    let mut cands: Vec<Candidate> = Vec::new();
    for (fi, m) in files.iter().enumerate() {
        scan_tokens(fi, m, &mut cands);
        lock_order_rule(fi, m, &mut cands);
    }
    event_completeness(files, &mut cands);
    panic_surface(files, &mut cands);

    // Suppression pass: a candidate with tag T at line L is suppressed by
    // an allow annotation carrying T on line L itself, or in the
    // contiguous comment block ending on line L-1 (so a multi-line
    // justification still covers the code right under it). Each
    // suppression marks the annotation used.
    let mut used: BTreeSet<(usize, u32, String)> = BTreeSet::new();
    let mut findings: Vec<Finding> = Vec::new();
    for c in &cands {
        let m = &files[c.file];
        let site = m
            .allows
            .iter()
            .find(|a| a.tag == c.tag && allow_covers(m, a.line, c.line));
        if let Some(site) = site {
            used.insert((c.file, site.line, site.tag.clone()));
        } else {
            findings.push(to_finding(files, c));
        }
    }

    // Hygiene: unused or unknown annotations, and dead lock-order decls.
    for (fi, m) in files.iter().enumerate() {
        for a in &m.allows {
            let unknown = !VALID_ALLOW_TAGS.contains(&a.tag.as_str());
            let stale = !unknown && !used.contains(&(fi, a.line, a.tag.clone()));
            if unknown {
                push_hygiene(
                    files,
                    fi,
                    a.line,
                    format!("lint:allow({}) names an unknown rule", a.tag),
                    &mut findings,
                );
            } else if stale {
                push_hygiene(
                    files,
                    fi,
                    a.line,
                    format!("stale lint:allow({}): it suppresses nothing", a.tag),
                    &mut findings,
                );
            }
        }
        if let Some(decl) = &m.lock_order {
            if lock_acquisitions(m).is_empty() {
                push_hygiene(
                    files,
                    fi,
                    decl.line,
                    "lint:lock-order declared but the file acquires no locks".to_string(),
                    &mut findings,
                );
            }
        }
    }

    findings.sort_by(|a, b| {
        (&a.file, a.line, a.col, a.rule)
            .cmp(&(&b.file, b.line, b.col, b.rule))
            .then_with(|| a.message.cmp(&b.message))
    });
    findings.dedup_by(|a, b| {
        a.file == b.file && a.line == b.line && a.rule == b.rule && a.message == b.message
    });
    findings
}

fn to_finding(files: &[FileModel], c: &Candidate) -> Finding {
    let m = &files[c.file];
    Finding {
        rule: c.rule.name(),
        file: m.rel.clone(),
        line: c.line,
        col: c.col,
        message: c.message.clone(),
        excerpt: m.line_text(c.line).to_string(),
    }
}

fn push_hygiene(
    files: &[FileModel],
    fi: usize,
    line: u32,
    message: String,
    out: &mut Vec<Finding>,
) {
    let m = &files[fi];
    out.push(Finding {
        rule: Rule::SuppressionHygiene.name(),
        file: m.rel.clone(),
        line,
        col: 1,
        message,
        excerpt: m.line_text(line).to_string(),
    });
}

/// Does an allow annotation starting on `allow_line` cover a finding on
/// `finding_line`? Same line always; otherwise every line from the
/// annotation down to the line above the finding must be comment-only, so
/// the justification block and the code it excuses stay physically glued.
fn allow_covers(m: &FileModel, allow_line: u32, finding_line: u32) -> bool {
    if allow_line == finding_line {
        return true;
    }
    if allow_line > finding_line {
        return false;
    }
    (allow_line..finding_line).all(|ln| m.line_text(ln).trim_start().starts_with("//"))
}

fn concurrency_sanctioned(rel: &str) -> bool {
    CONCURRENCY_SANCTIONED.iter().any(|p| rel.starts_with(p))
}

fn attribution_sanctioned(rel: &str) -> bool {
    ATTRIBUTION_SANCTIONED.iter().any(|p| rel.starts_with(p))
}

fn os_sanctioned(rel: &str) -> bool {
    OS_SANCTIONED.iter().any(|p| rel.starts_with(p))
}

/// The single-pass token scan: wall-clock, ambient-rng, hashmap rules,
/// direct-attribution, infallible-os, concurrency primitives, atomic
/// orderings.
#[allow(clippy::too_many_lines)]
fn scan_tokens(fi: usize, m: &FileModel, out: &mut Vec<Candidate>) {
    let map_bindings = hashmap_bindings(m);
    let mut seen: BTreeSet<(Rule, u32)> = BTreeSet::new();
    let n = m.len();
    for i in 0..n {
        if m.tok(i).kind != TokenKind::Ident {
            continue;
        }
        let t = m.text(i);
        let line = m.line_of(i);
        let col = m.tok(i).col;
        let mut hit =
            |rule: Rule, tag: &'static str, message: String, seen: &mut BTreeSet<(Rule, u32)>| {
                if seen.insert((rule, line)) {
                    out.push(Candidate {
                        rule,
                        tag,
                        file: fi,
                        line,
                        col,
                        message,
                    });
                }
            };

        // --- wall-clock ---
        if (t == "Instant" || t == "SystemTime")
            && (m.matches_path(i + 1, &["::", "now"])
                || m.matches_path(i.wrapping_sub(6), &["std", "::", "time", "::"]))
        {
            hit(
                Rule::WallClock,
                "wall-clock",
                format!("`{t}` reads the wall clock; use the simulated `Clock`"),
                &mut seen,
            );
        }

        // --- ambient-rng ---
        if t == "thread_rng" || t == "from_entropy" {
            hit(
                Rule::AmbientRng,
                "ambient-rng",
                format!("`{t}` seeds from the OS; use `wsc_prng::SmallRng::seed_from_u64`"),
                &mut seen,
            );
        }

        // --- hashmap-decl ---
        // Type position (`: HashMap<…>`, `Vec<HashMap<…>>`) or a fresh
        // construction. A struct-literal field init (`field: HashMap::new()`)
        // is exempt: the field *declaration* is the annotated site, and
        // flagging the init too would demand the same justification twice.
        let constructed = m.matches_path(i + 1, &["::", "new"])
            || m.matches_path(i + 1, &["::", "with_capacity"]);
        let struct_literal_init =
            constructed && i > 0 && m.is(i - 1, ":") && !m.is_back(i - 1, ":");
        if t == "HashMap" && (m.is(i + 1, "<") || constructed) && !struct_literal_init {
            hit(
                Rule::HashMapDecl,
                "hashmap-decl",
                "HashMap declaration in the deterministic core requires a justification"
                    .to_string(),
                &mut seen,
            );
        }

        // --- hashmap-iter ---
        if map_bindings.contains(t) {
            let iterated = (m.is(i + 1, ".")
                && MAP_ITERS.contains(&m.text_or(i + 2))
                && m.is(i + 3, "("))
                // `for x in map {` / `for x in &map {` / `for x in &mut map {`
                // / `for x in &self.map {` — the bare-iteration forms.
                || (m.is(i + 1, "{")
                    && (m.is_back(i, "in")
                        || m.matches_back(i, &["in", "&"])
                        || m.matches_back(i, &["in", "&", "mut"])
                        || m.matches_back(i, &["in", "&", "self", "."])
                        || m.matches_back(i, &["in", "&", "mut", "self", "."])));
            if iterated {
                hit(
                    Rule::HashMapIter,
                    "hashmap-iter",
                    format!("iteration over HashMap binding `{t}` leaks SipHash order"),
                    &mut seen,
                );
            }
        }

        // --- direct-attribution ---
        if !attribution_sanctioned(&m.rel)
            && (t == "charge" || t == "record_alloc" || t == "record_lifetime")
            && m.is(i + 1, "(")
            && i > 0
            && m.is(i - 1, ".")
        {
            hit(
                Rule::DirectAttribution,
                "direct-attribution",
                format!("`.{t}(…)` bypasses the event bus; emit an AllocEvent instead"),
                &mut seen,
            );
        }

        // --- infallible-os ---
        if !os_sanctioned(&m.rel) {
            let direct_ctor = t == "Vmm"
                && (m.matches_path(i + 1, &["::", "new"])
                    || m.matches_path(i + 1, &["::", "with_faults"]));
            let mutation =
                OS_MUTATION_METHODS.contains(&t) && m.is(i + 1, "(") && i > 0 && m.is(i - 1, ".");
            if direct_ctor || mutation {
                hit(
                    Rule::InfallibleOs,
                    "infallible-os",
                    format!(
                        "`{t}` touches kernel state outside the OS boundary; go through the pageheap"
                    ),
                    &mut seen,
                );
            }
        }

        // --- concurrency-readiness: primitives ---
        if !concurrency_sanctioned(&m.rel) {
            let primitive = matches!(t, "Mutex" | "RwLock" | "Arc" | "Condvar" | "Barrier")
                || (t == "thread"
                    && (m.matches_path(i + 1, &["::", "spawn"])
                        || m.matches_path(i + 1, &["::", "scope"])));
            if primitive {
                hit(
                    Rule::Concurrency,
                    "concurrency-readiness",
                    format!(
                        "`{t}` is a concurrency primitive outside the sanctioned modules ({})",
                        CONCURRENCY_SANCTIONED.join(", ")
                    ),
                    &mut seen,
                );
            }
        }

        // --- concurrency-readiness: atomic orderings need justification
        // everywhere, sanctioned modules included ---
        if t == "Ordering" && m.is(i + 1, ":") && m.is(i + 2, ":") {
            let variant = m.text_or(i + 3);
            if ATOMIC_ORDERINGS.contains(&variant) {
                hit(
                    Rule::Concurrency,
                    "atomic-ordering",
                    format!("`Ordering::{variant}` must justify why this ordering is sufficient"),
                    &mut seen,
                );
            }
        }
    }
}

/// Names bound to a `HashMap` in this file: struct fields / let bindings of
/// `name: HashMap<…>` and `let [mut] name = HashMap::new()/with_capacity`.
fn hashmap_bindings(m: &FileModel) -> BTreeSet<&str> {
    let mut out = BTreeSet::new();
    for i in 0..m.len() {
        if m.text(i) != "HashMap" {
            continue;
        }
        if m.is(i + 1, "<") && i >= 2 && m.is(i - 1, ":") && m.tok(i - 2).kind == TokenKind::Ident {
            out.insert(m.text(i - 2));
        }
        if (m.matches_path(i + 1, &["::", "new"])
            || m.matches_path(i + 1, &["::", "with_capacity"]))
            && i >= 2
            && m.is(i - 1, "=")
            && m.tok(i - 2).kind == TokenKind::Ident
        {
            out.insert(m.text(i - 2));
        }
    }
    out
}

impl FileModel {
    /// `text(i)` or `""` past the end.
    fn text_or(&self, i: usize) -> &str {
        if i < self.len() {
            self.text(i)
        } else {
            ""
        }
    }

    /// Is the token *before* `i` exactly `s`?
    fn is_back(&self, i: usize, s: &str) -> bool {
        i >= 1 && self.is(i - 1, s)
    }

    /// Do the tokens immediately before `i` match `pat` (given in source
    /// order, i.e. `pat.last()` sits at `i - 1`)?
    fn matches_back(&self, i: usize, pat: &[&str]) -> bool {
        if i < pat.len() {
            return false;
        }
        pat.iter()
            .rev()
            .enumerate()
            .all(|(k, p)| self.is(i - 1 - k, p))
    }
}

/// One lock acquisition: `receiver.lock()/.read()/.write()`.
struct Acquisition {
    sig_index: usize,
    receiver: String,
    method: &'static str,
}

/// Lock acquisitions in a file, in token order. Only computed for files
/// that visibly hold locks (`Mutex`/`RwLock` tokens), so plain `read`/
/// `write` IO methods elsewhere never enter the lock rules.
fn lock_acquisitions(m: &FileModel) -> Vec<Acquisition> {
    let holds_locks = (0..m.len()).any(|i| matches!(m.text(i), "Mutex" | "RwLock"));
    if !holds_locks {
        return Vec::new();
    }
    let mut out = Vec::new();
    for i in 2..m.len() {
        let method = match m.text(i) {
            "lock" => "lock",
            "read" => "read",
            "write" => "write",
            _ => continue,
        };
        if !(m.is(i + 1, "(") && m.is(i - 1, ".")) {
            continue;
        }
        let prev = m.tok(i - 2);
        let receiver = if prev.kind == TokenKind::Ident {
            m.text(i - 2).to_string()
        } else {
            "<expr>".to_string()
        };
        out.push(Acquisition {
            sig_index: i,
            receiver,
            method,
        });
    }
    out
}

/// The lock-order check: acquisitions on declared receivers must be
/// rank-monotone within each function body; `.lock()` receivers missing
/// from an existing declaration are findings; two-plus distinct `.lock()`
/// receivers without any declaration demand one.
fn lock_order_rule(fi: usize, m: &FileModel, out: &mut Vec<Candidate>) {
    let acqs = lock_acquisitions(m);
    if acqs.is_empty() {
        return;
    }
    let decl = m.lock_order.as_ref();
    // Per function body, in token order.
    for f in &m.fns {
        if f.in_test || f.body.0 == f.body.1 {
            continue;
        }
        let in_body: Vec<&Acquisition> = acqs
            .iter()
            .filter(|a| f.body.0 <= a.sig_index && a.sig_index < f.body.1)
            .collect();
        if in_body.is_empty() {
            continue;
        }
        match decl {
            Some(decl) => {
                let rank = |r: &str| decl.order.iter().position(|o| o == r);
                let mut max_rank: Option<usize> = None;
                for a in &in_body {
                    match rank(&a.receiver) {
                        Some(r) => {
                            if max_rank.is_some_and(|mr| r < mr) {
                                out.push(Candidate {
                                    rule: Rule::Concurrency,
                                    tag: "concurrency-readiness",
                                    file: fi,
                                    line: m.line_of(a.sig_index),
                                    col: m.tok(a.sig_index).col,
                                    message: format!(
                                        "`{}.{}()` acquired out of canonical lock order ({})",
                                        a.receiver,
                                        a.method,
                                        decl.order.join(" -> ")
                                    ),
                                });
                            }
                            max_rank = Some(max_rank.map_or(r, |mr| mr.max(r)));
                        }
                        None if a.method == "lock" => out.push(Candidate {
                            rule: Rule::Concurrency,
                            tag: "concurrency-readiness",
                            file: fi,
                            line: m.line_of(a.sig_index),
                            col: m.tok(a.sig_index).col,
                            message: format!(
                                "lock receiver `{}` missing from lint:lock-order declaration",
                                a.receiver
                            ),
                        }),
                        None => {}
                    }
                }
            }
            None => {
                let distinct: BTreeSet<&str> = in_body
                    .iter()
                    .filter(|a| a.method == "lock")
                    .map(|a| a.receiver.as_str())
                    .collect();
                if distinct.len() >= 2 {
                    out.push(Candidate {
                        rule: Rule::Concurrency,
                        tag: "concurrency-readiness",
                        file: fi,
                        line: f.line,
                        col: 1,
                        message: format!(
                            "fn `{}` takes {} locks ({}) with no lint:lock-order declaration",
                            f.name,
                            distinct.len(),
                            distinct.into_iter().collect::<Vec<_>>().join(", ")
                        ),
                    });
                }
            }
        }
    }
}

/// Does this function's body directly emit an event: construct an
/// `AllocEvent::…`, or call `emit` / `malloc_done` / `free_done`?
fn emits_directly(m: &FileModel, f: &FnItem) -> bool {
    if f.calls
        .iter()
        .any(|c| c == "emit" || c == "malloc_done" || c == "free_done")
    {
        return true;
    }
    (f.body.0..f.body.1.min(m.len()))
        .any(|i| m.is(i, "AllocEvent") && m.is(i + 1, ":") && m.is(i + 2, ":"))
}

/// The event-completeness rule.
fn event_completeness(files: &[FileModel], out: &mut Vec<Candidate>) {
    // Transitive "emits" closure over the tcmalloc crate, name-based.
    let crate_files: Vec<(usize, &FileModel)> = files
        .iter()
        .enumerate()
        .filter(|(_, m)| m.rel.starts_with("crates/tcmalloc/src/"))
        .collect();
    if crate_files.is_empty() {
        return;
    }
    let mut emits: BTreeSet<&str> = BTreeSet::new();
    let mut edges: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
    for (_, m) in &crate_files {
        for f in &m.fns {
            if emits_directly(m, f) {
                emits.insert(&f.name);
            }
            for c in &f.calls {
                edges.entry(&f.name).or_default().insert(c);
            }
        }
    }
    // Fixpoint: a name emits if any callee name emits.
    loop {
        let mut grew = false;
        for (name, callees) in &edges {
            if !emits.contains(name) && callees.iter().any(|c| emits.contains(c)) {
                emits.insert(name);
                grew = true;
            }
        }
        if !grew {
            break;
        }
    }

    for (fi, m) in &crate_files {
        let is_tier = TIER_FILES.contains(&m.rel.as_str())
            || m.rel.starts_with("crates/tcmalloc/src/pageheap/");
        if !is_tier {
            continue;
        }
        for f in &m.fns {
            if f.is_pub
                && f.receiver == Receiver::SelfMut
                && !f.in_test
                && f.body.0 != f.body.1
                && !emits.contains(f.name.as_str())
            {
                out.push(Candidate {
                    rule: Rule::EventCompleteness,
                    tag: "event-completeness",
                    file: *fi,
                    line: f.line,
                    col: 1,
                    message: format!(
                        "pub fn `{}` mutates tier state (&mut self) but never emits an AllocEvent",
                        f.name
                    ),
                });
            }
        }
    }

    catalog_coverage(&crate_files, out);
}

/// Every variant of the `AllocEvent` catalog must be constructed somewhere
/// in tier code (outside `events.rs` itself, whose constructions are the
/// sink plumbing and its tests).
fn catalog_coverage(crate_files: &[(usize, &FileModel)], out: &mut Vec<Candidate>) {
    const EVENTS_RS: &str = "crates/tcmalloc/src/events.rs";
    let Some((ei, events)) = crate_files.iter().find(|(_, m)| m.rel == EVENTS_RS) else {
        return;
    };
    let variants = enum_variants(events, "AllocEvent");
    let mut constructed: BTreeSet<&str> = BTreeSet::new();
    for (_, m) in crate_files {
        if m.rel == EVENTS_RS {
            continue;
        }
        for i in 0..m.len() {
            if m.is(i, "AllocEvent") && m.is(i + 1, ":") && m.is(i + 2, ":") && i + 3 < m.len() {
                constructed.insert(m.text(i + 3));
            }
        }
    }
    for (name, line) in &variants {
        if !constructed.contains(name.as_str()) {
            out.push(Candidate {
                rule: Rule::EventCompleteness,
                tag: "event-completeness",
                file: *ei,
                line: *line,
                col: 1,
                message: format!(
                    "AllocEvent::{name} is in the catalog but no tier ever constructs it"
                ),
            });
        }
    }
}

/// The variants of `enum <name>`: idents at nesting depth 1 of the enum
/// body that start a variant (first token, or right after a `,` / a closed
/// variant payload).
fn enum_variants(m: &FileModel, enum_name: &str) -> Vec<(String, u32)> {
    let mut out = Vec::new();
    let n = m.len();
    let mut i = 0;
    while i < n {
        if m.is(i, "enum") && m.is(i + 1, enum_name) {
            // Find the opening brace, then walk the body.
            let mut j = i + 2;
            while j < n && !m.is(j, "{") {
                j += 1;
            }
            let mut depth = 0i32;
            let mut expect_variant = true;
            while j < n {
                let t = m.text(j);
                match t {
                    "{" | "(" => {
                        depth += 1;
                    }
                    "}" => {
                        depth -= 1;
                        if depth == 0 {
                            return out;
                        }
                        if depth == 1 {
                            expect_variant = true;
                        }
                    }
                    ")" => {
                        depth -= 1;
                    }
                    "," if depth == 1 => {
                        expect_variant = true;
                    }
                    "#" => {
                        // Attribute on a variant: skip `[…]`.
                        if m.is(j + 1, "[") {
                            let mut bd = 0i32;
                            j += 1;
                            while j < n {
                                if m.is(j, "[") {
                                    bd += 1;
                                } else if m.is(j, "]") {
                                    bd -= 1;
                                    if bd == 0 {
                                        break;
                                    }
                                }
                                j += 1;
                            }
                        }
                    }
                    _ => {
                        if depth == 1 && expect_variant && m.tok(j).kind == TokenKind::Ident {
                            out.push((t.to_string(), m.line_of(j)));
                            expect_variant = false;
                        }
                    }
                }
                j += 1;
            }
            return out;
        }
        i += 1;
    }
    out
}

/// The panic-surface rule: reachability from the fallible roots, then
/// panic macros and computed indexing inside reachable functions.
fn panic_surface(files: &[FileModel], out: &mut Vec<Candidate>) {
    let crate_files: Vec<(usize, &FileModel)> = files
        .iter()
        .enumerate()
        .filter(|(_, m)| m.rel.starts_with("crates/tcmalloc/src/"))
        .collect();
    if crate_files.is_empty() {
        return;
    }
    let mut edges: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
    let mut defined: BTreeSet<&str> = BTreeSet::new();
    for (_, m) in &crate_files {
        for f in &m.fns {
            if f.in_test {
                continue;
            }
            defined.insert(&f.name);
            for c in &f.calls {
                if !c.ends_with('!') {
                    edges.entry(&f.name).or_default().insert(c);
                }
            }
        }
    }
    let mut reach: BTreeSet<&str> = FALLIBLE_ROOTS
        .iter()
        .copied()
        .filter(|r| defined.contains(r))
        .collect();
    let mut frontier: Vec<&str> = reach.iter().copied().collect();
    while let Some(name) = frontier.pop() {
        if let Some(callees) = edges.get(name) {
            for c in callees {
                if defined.contains(c) && reach.insert(c) {
                    frontier.push(c);
                }
            }
        }
    }
    if reach.is_empty() {
        return;
    }

    for (fi, m) in &crate_files {
        for f in &m.fns {
            if f.in_test || f.body.0 == f.body.1 || !reach.contains(f.name.as_str()) {
                continue;
            }
            scan_fn_panic_surface(*fi, m, f, out);
        }
    }
}

/// Panic macros and computed indexing inside one reachable function body.
fn scan_fn_panic_surface(fi: usize, m: &FileModel, f: &FnItem, out: &mut Vec<Candidate>) {
    let end = f.body.1.min(m.len());
    let mut i = f.body.0;
    while i < end {
        let t = m.text(i);
        if matches!(t, "panic" | "todo" | "unimplemented") && m.is(i + 1, "!") {
            out.push(Candidate {
                rule: Rule::PanicSurface,
                tag: "panic-surface",
                file: fi,
                line: m.line_of(i),
                col: m.tok(i).col,
                message: format!(
                    "`{t}!` on the fallible path (reachable from {}); return a structured error",
                    FALLIBLE_ROOTS.join("/")
                ),
            });
        }
        // Computed indexing: `recv[ … ]` where `…` is more than a plain
        // identifier / field path / literal / cast. `recv` must be an
        // index-able expression tail (ident, `)`, `]`), which excludes
        // attributes (`#[…]`), array literals (`= […]`), and slice types.
        if t == "["
            && i > f.body.0
            && (m.tok(i - 1).kind == TokenKind::Ident || m.is(i - 1, ")") || m.is(i - 1, "]"))
            && !NOT_CALLS.contains(&m.text(i - 1))
        {
            let (computed, close) = computed_index(m, i, end);
            if computed {
                out.push(Candidate {
                    rule: Rule::PanicSurface,
                    tag: "panic-surface",
                    file: fi,
                    line: m.line_of(i),
                    col: m.tok(i).col,
                    message: "computed slice index on the fallible path; use `.get()` or justify the bound"
                        .to_string(),
                });
            }
            i = close;
            continue;
        }
        i += 1;
    }
}

/// Inspects an index expression starting at the `[` at sig-index `open`.
/// Returns (is-computed, sig-index of the matching `]`). "Computed" means
/// the index contains arithmetic, a range, or a call — anything whose
/// bounds the reader cannot check locally.
fn computed_index(m: &FileModel, open: usize, end: usize) -> (bool, usize) {
    let mut depth = 0i32;
    let mut computed = false;
    let mut i = open;
    while i < end {
        let t = m.text(i);
        match t {
            "[" => depth += 1,
            "]" => {
                depth -= 1;
                if depth == 0 {
                    return (computed, i);
                }
            }
            "+" | "-" | "*" | "/" | "%" | "(" | "<" | ">" | "&" | "|" | "^" => computed = true,
            // `..` (range) is computed; a lone `.` is field access.
            "." if m.is(i + 1, ".") => {
                computed = true;
                i += 1;
            }
            _ => {}
        }
        i += 1;
    }
    (computed, end)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model(rel: &str, src: &str) -> FileModel {
        FileModel::build(rel.to_string(), src.to_string())
    }

    fn run_one(rel: &str, src: &str) -> Vec<Finding> {
        run_rules(&[model(rel, src)])
    }

    #[test]
    fn string_and_comment_occurrences_do_not_fire() {
        let f = run_one(
            "crates/sim-os/src/x.rs",
            "fn f() {\n  let s = \"Instant::now() thread_rng HashMap<\";\n  // Instant::now() in a comment\n  /* SystemTime::now() */\n}\n",
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn wall_clock_fires_on_code() {
        let f = run_one(
            "crates/sim-os/src/x.rs",
            "fn f() { let t = Instant::now(); }\n",
        );
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "wall-clock");
    }

    #[test]
    fn concurrency_denied_outside_sanctioned() {
        let f = run_one(
            "crates/tcmalloc/src/span.rs",
            "use std::sync::Mutex;\nfn f() { let m = Mutex::new(0); }\n",
        );
        assert_eq!(f.len(), 2, "{f:?}"); // the use + the construction
        assert!(f.iter().all(|x| x.rule == "concurrency-readiness"));
    }

    #[test]
    fn concurrency_allowed_in_parallel_crate_but_orderings_need_tags() {
        let f = run_one(
            "crates/parallel/src/lib.rs",
            "use std::sync::atomic::{AtomicBool, Ordering};\nfn f(b: &std::sync::atomic::AtomicBool) {\n  b.store(true, Ordering::Release);\n}\n",
        );
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("Ordering::Release"));
        let suppressed = run_one(
            "crates/parallel/src/lib.rs",
            "fn f(b: &std::sync::atomic::AtomicBool) {\n  // lint:allow(atomic-ordering) release pairs with the Acquire load\n  b.store(true, Ordering::Release);\n}\n",
        );
        assert!(suppressed.is_empty(), "{suppressed:?}");
    }

    #[test]
    fn stale_allow_is_a_finding() {
        let f = run_one(
            "crates/sim-os/src/x.rs",
            "// lint:allow(wall-clock) nothing here needs it\nfn f() {}\n",
        );
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "suppression-hygiene");
        assert!(f[0].message.contains("stale"));
    }

    #[test]
    fn unknown_allow_tag_is_a_finding() {
        let f = run_one(
            "crates/sim-os/src/x.rs",
            "// lint:allow(panic-in-prod)\nfn f() {}\n",
        );
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("unknown rule"));
    }

    #[test]
    fn panic_surface_tracks_reachability() {
        let src = "pub fn try_malloc(&mut self) -> Result<u64, ()> { helper() }\nfn helper() -> Result<u64, ()> { panic!(\"no\") }\nfn unrelated() { panic!(\"fine: unreachable from try paths\") }\n";
        let f = run_one("crates/tcmalloc/src/alloc.rs", src);
        let panics: Vec<_> = f.iter().filter(|x| x.rule == "panic-surface").collect();
        assert_eq!(panics.len(), 1, "{f:?}");
        assert_eq!(panics[0].line, 2);
    }

    #[test]
    fn computed_index_vs_plain_index() {
        let src = "pub fn try_free(&mut self, i: usize) {\n  let a = self.xs[i];\n  let b = self.xs[i + 1];\n  let c = &self.xs[lo..hi];\n}\n";
        let f = run_one("crates/tcmalloc/src/alloc.rs", src);
        let idx: Vec<_> = f
            .iter()
            .filter(|x| x.message.contains("computed"))
            .collect();
        assert_eq!(idx.len(), 2, "{f:?}");
        assert_eq!(idx[0].line, 3);
        assert_eq!(idx[1].line, 4);
    }

    #[test]
    fn lock_order_violation_and_missing_decl() {
        let missing = run_one(
            "crates/parallel/src/lib.rs",
            "fn f(a: &Mutex<u32>, b: &Mutex<u32>) {\n  let _x = a.lock();\n  let _y = b.lock();\n}\n",
        );
        assert!(
            missing
                .iter()
                .any(|x| x.message.contains("no lint:lock-order")),
            "{missing:?}"
        );
        let out_of_order = run_one(
            "crates/parallel/src/lib.rs",
            "// lint:lock-order(a, b)\nfn f(a: &Mutex<u32>, b: &Mutex<u32>) {\n  let _y = b.lock();\n  let _x = a.lock();\n}\n",
        );
        assert!(
            out_of_order
                .iter()
                .any(|x| x.message.contains("out of canonical lock order")),
            "{out_of_order:?}"
        );
        let clean = run_one(
            "crates/parallel/src/lib.rs",
            "// lint:lock-order(a, b)\nfn f(a: &Mutex<u32>, b: &Mutex<u32>) {\n  let _x = a.lock();\n  let _y = b.lock();\n}\n",
        );
        assert!(clean.is_empty(), "{clean:?}");
    }

    #[test]
    fn event_completeness_flags_silent_mutators() {
        let src = "pub struct T;\nimpl T {\n  pub fn mutate(&mut self) { self.x += 1; }\n  pub fn emitting(&mut self, bus: &mut EventBus) { bus.emit(AllocEvent::PerCpuHit { vcpu: 0, class: 0 }); }\n  pub fn delegates(&mut self, bus: &mut EventBus) { self.emitting(bus); }\n  pub fn read_only(&self) -> u32 { 0 }\n}\n";
        let f = run_one("crates/tcmalloc/src/percpu.rs", src);
        let ec: Vec<_> = f
            .iter()
            .filter(|x| x.rule == "event-completeness")
            .collect();
        assert_eq!(ec.len(), 1, "{f:?}");
        assert!(ec[0].message.contains("`mutate`"));
    }

    #[test]
    fn catalog_coverage_reports_unconstructed_variants() {
        let events = model(
            "crates/tcmalloc/src/events.rs",
            "pub enum AllocEvent {\n  Used { a: u32 },\n  NeverBuilt { b: u32 },\n}\n",
        );
        let tier = model(
            "crates/tcmalloc/src/percpu.rs",
            "pub fn f(bus: &mut EventBus) { bus.emit(AllocEvent::Used { a: 1 }); }\n",
        );
        let f = run_rules(&[events, tier]);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("NeverBuilt"));
        assert_eq!(f[0].file, "crates/tcmalloc/src/events.rs");
    }

    #[test]
    fn multiline_expression_is_not_hidden() {
        // The old line-regex engine required the receiver and method on one
        // line; the token stream does not care.
        let f = run_one(
            "crates/fleet/src/x.rs",
            "fn f(s: &mut CycleStats) {\n  s\n    .charge(1.0);\n}\n",
        );
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "direct-attribution");
    }
}
