//! Findings, the machine-readable `analysis.json` writer, and the
//! committed-baseline diff.
//!
//! The JSON is hand-rolled (the workspace is hermetic — no serde) and
//! deterministic by construction: findings arrive pre-sorted from the rule
//! engine, per-rule counts live in a `BTreeMap`, and paths are
//! repo-relative with forward slashes. Two runs over the same tree must be
//! byte-identical; a regression test holds us to that.
//!
//! Baseline semantics: each finding carries a stable `key`
//! (`rule|file|normalized excerpt`) that survives unrelated edits moving
//! the line number. `--baseline analysis_baseline.json` fails only on
//! findings whose key is not in the baseline's key multiset, so a legacy
//! debt list can be frozen while new debt is still gated.

use std::collections::BTreeMap;

/// One finding: a rule violation at a source location.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Finding {
    /// Rule name, e.g. `"concurrency-readiness"`.
    pub rule: &'static str,
    /// Repo-relative path, forward slashes.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Human-readable description.
    pub message: String,
    /// The trimmed source line the finding sits on.
    pub excerpt: String,
}

impl Finding {
    /// A line-number-independent identity used for baseline diffing:
    /// moving a finding (unrelated edits above it) does not make it "new",
    /// but a second identical violation on the same file does.
    pub fn key(&self) -> String {
        let mut excerpt = self.excerpt.trim().to_string();
        excerpt.retain(|c| c != ' ' && c != '\t');
        format!("{}|{}|{}", self.rule, self.file, excerpt)
    }
}

/// A complete analyzer run.
#[derive(Debug)]
pub struct Analysis {
    /// How many files were lexed and modelled.
    pub files_scanned: usize,
    /// Unsuppressed findings, sorted by (file, line, col, rule).
    pub findings: Vec<Finding>,
}

impl Analysis {
    /// Per-rule finding counts over all ten rules (zeros included), sorted
    /// by rule name.
    pub fn rule_counts(&self) -> BTreeMap<&'static str, usize> {
        let mut counts: BTreeMap<&'static str, usize> = BTreeMap::new();
        for r in super::rules::ALL_RULES {
            counts.insert(r.name(), 0);
        }
        for f in &self.findings {
            *counts.entry(f.rule).or_insert(0) += 1;
        }
        counts
    }

    /// Serializes the run as `analysis.json`. Deterministic: no maps with
    /// randomized order, no timestamps, no absolute paths.
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(4096 + self.findings.len() * 256);
        s.push_str("{\n");
        s.push_str(&format!("  \"files_scanned\": {},\n", self.files_scanned));
        s.push_str(&format!("  \"total_findings\": {},\n", self.findings.len()));
        s.push_str("  \"rule_counts\": {\n");
        let counts = self.rule_counts();
        for (i, (rule, n)) in counts.iter().enumerate() {
            let comma = if i + 1 < counts.len() { "," } else { "" };
            s.push_str(&format!("    \"{rule}\": {n}{comma}\n"));
        }
        s.push_str("  },\n");
        s.push_str("  \"findings\": [");
        for (i, f) in self.findings.iter().enumerate() {
            let comma = if i + 1 < self.findings.len() { "," } else { "" };
            s.push_str("\n    {");
            s.push_str(&format!("\"rule\": \"{}\", ", esc(f.rule)));
            s.push_str(&format!("\"file\": \"{}\", ", esc(&f.file)));
            s.push_str(&format!("\"line\": {}, ", f.line));
            s.push_str(&format!("\"col\": {}, ", f.col));
            s.push_str(&format!("\"message\": \"{}\", ", esc(&f.message)));
            s.push_str(&format!("\"excerpt\": \"{}\", ", esc(f.excerpt.trim())));
            s.push_str(&format!("\"key\": \"{}\"", esc(&f.key())));
            s.push_str(&format!("}}{comma}"));
        }
        if !self.findings.is_empty() {
            s.push_str("\n  ");
        }
        s.push_str("]\n}\n");
        s
    }

    /// Findings whose key is not covered by the baseline's key multiset.
    /// Every occurrence in the baseline excuses exactly one finding, so a
    /// *second* copy of a baselined violation still gates.
    pub fn new_vs_baseline<'a>(&'a self, baseline_json: &str) -> Vec<&'a Finding> {
        let mut budget: BTreeMap<String, usize> = BTreeMap::new();
        for key in scan_baseline_keys(baseline_json) {
            *budget.entry(key).or_insert(0) += 1;
        }
        self.findings
            .iter()
            .filter(|f| {
                let key = f.key();
                match budget.get_mut(&key) {
                    Some(n) if *n > 0 => {
                        *n -= 1;
                        false
                    }
                    _ => true,
                }
            })
            .collect()
    }
}

/// JSON string escaping for the characters that can occur in Rust source
/// excerpts and messages.
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Extracts every `"key": "…"` value from a baseline file with a plain
/// string scan — the baseline is always analyzer output, so the shape is
/// known and a full JSON parser stays out of the dependency-free tree.
fn scan_baseline_keys(json: &str) -> Vec<String> {
    let mut out = Vec::new();
    let needle = "\"key\": \"";
    let mut rest = json;
    while let Some(p) = rest.find(needle) {
        rest = &rest[p + needle.len()..];
        let mut val = String::new();
        let mut chars = rest.char_indices();
        let mut consumed = 0;
        while let Some((i, c)) = chars.next() {
            consumed = i + c.len_utf8();
            match c {
                '"' => break,
                '\\' => {
                    if let Some((j, e)) = chars.next() {
                        consumed = j + e.len_utf8();
                        match e {
                            'n' => val.push('\n'),
                            't' => val.push('\t'),
                            'r' => val.push('\r'),
                            other => val.push(other),
                        }
                    }
                }
                c => val.push(c),
            }
        }
        out.push(val);
        rest = &rest[consumed..];
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(rule: &'static str, file: &str, line: u32, excerpt: &str) -> Finding {
        Finding {
            rule,
            file: file.to_string(),
            line,
            col: 1,
            message: format!("msg for {rule}"),
            excerpt: excerpt.to_string(),
        }
    }

    #[test]
    fn json_round_trips_keys_through_baseline_scan() {
        let a = Analysis {
            files_scanned: 2,
            findings: vec![
                finding(
                    "wall-clock",
                    "crates/x/src/a.rs",
                    3,
                    "let t = Instant::now();",
                ),
                finding("panic-surface", "crates/x/src/b.rs", 9, "panic!(\"boom\")"),
            ],
        };
        let json = a.to_json();
        let keys = scan_baseline_keys(&json);
        assert_eq!(keys.len(), 2);
        assert_eq!(keys[0], a.findings[0].key());
        assert_eq!(keys[1], a.findings[1].key());
    }

    #[test]
    fn baseline_excuses_old_findings_only() {
        let old = Analysis {
            files_scanned: 1,
            findings: vec![finding(
                "wall-clock",
                "crates/x/src/a.rs",
                3,
                "Instant::now()",
            )],
        };
        let baseline = old.to_json();
        // Same violation moved to another line: not new.
        let moved = Analysis {
            files_scanned: 1,
            findings: vec![finding(
                "wall-clock",
                "crates/x/src/a.rs",
                40,
                "Instant::now()",
            )],
        };
        assert!(moved.new_vs_baseline(&baseline).is_empty());
        // A second copy of it: one is excused, one gates.
        let doubled = Analysis {
            files_scanned: 1,
            findings: vec![
                finding("wall-clock", "crates/x/src/a.rs", 3, "Instant::now()"),
                finding("wall-clock", "crates/x/src/a.rs", 41, "Instant::now()"),
            ],
        };
        assert_eq!(doubled.new_vs_baseline(&baseline).len(), 1);
        // A different rule: new.
        let fresh = Analysis {
            files_scanned: 1,
            findings: vec![finding(
                "ambient-rng",
                "crates/x/src/a.rs",
                3,
                "thread_rng()",
            )],
        };
        assert_eq!(fresh.new_vs_baseline(&baseline).len(), 1);
    }

    #[test]
    fn rule_counts_cover_all_rules_with_zeros() {
        let a = Analysis {
            files_scanned: 0,
            findings: vec![],
        };
        assert_eq!(a.rule_counts().len(), 10);
        assert!(a.rule_counts().values().all(|&n| n == 0));
    }

    #[test]
    fn escaping_handles_quotes_and_backslashes() {
        assert_eq!(esc("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }
}
