//! The findings corpus: small Rust snippets with *expected* findings,
//! including the false-positive classes the old line-regex engine got
//! wrong (matches inside strings, doc comments, raw strings, and
//! multi-line expressions).
//!
//! Each `tools/tests/corpus/*.rs` file holds one or more virtual files:
//!
//! ```text
//! //@ file: crates/tcmalloc/src/alloc.rs
//! fn f() { let t = Instant::now(); } //~ wall-clock
//! ```
//!
//! `//@ file: <rel>` starts a section analyzed under that repo-relative
//! path (rules are path-sensitive: sanctioned dirs, tier modules). A
//! trailing `//~ <rule>` marker expects exactly one finding of that rule
//! on that line, counted within the section. The assertion is exact in
//! both directions: an unexpected finding fails the test just like a
//! missing one, which is what makes the false-positive snippets real
//! regression tests rather than documentation.

use std::collections::BTreeSet;
use std::path::{Path, PathBuf};
use wsc_tools::analyzer::{analyze_files, items::FileModel};

/// (virtual file, line within it, rule name).
type Key = (String, u32, String);

fn corpus_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/corpus")
}

/// Parses one corpus file into virtual file models + expected findings.
fn parse_corpus(src: &str, name: &str) -> (Vec<FileModel>, BTreeSet<Key>) {
    let mut models = Vec::new();
    let mut expected = BTreeSet::new();
    let mut rel: Option<String> = None;
    let mut body = String::new();
    let mut line_in_section = 0u32;

    let mut flush = |rel: &mut Option<String>, body: &mut String| {
        if let Some(r) = rel.take() {
            models.push(FileModel::build(r, std::mem::take(body)));
        } else {
            assert!(
                body.trim().is_empty(),
                "{name}: content before the first `//@ file:` header"
            );
            body.clear();
        }
    };

    for line in src.lines() {
        if let Some(r) = line.trim().strip_prefix("//@ file:") {
            flush(&mut rel, &mut body);
            rel = Some(r.trim().to_string());
            line_in_section = 0;
            continue;
        }
        line_in_section += 1;
        if let Some(p) = line.find("//~") {
            let rule = line[p + 3..].trim();
            assert!(!rule.is_empty(), "{name}: empty //~ marker");
            let r = rel
                .clone()
                .unwrap_or_else(|| panic!("{name}: //~ marker before any `//@ file:` header"));
            expected.insert((r, line_in_section, rule.to_string()));
        }
        body.push_str(line);
        body.push('\n');
    }
    flush(&mut rel, &mut body);
    (models, expected)
}

#[test]
fn corpus_findings_match_expectations() {
    let dir = corpus_dir();
    let mut entries: Vec<PathBuf> = std::fs::read_dir(&dir)
        .unwrap_or_else(|e| panic!("corpus dir {}: {e}", dir.display()))
        .map(|e| e.expect("dir entry").path())
        .filter(|p| p.extension().is_some_and(|x| x == "rs"))
        .collect();
    entries.sort();
    assert!(!entries.is_empty(), "empty corpus at {}", dir.display());

    for path in entries {
        let name = path
            .file_name()
            .expect("file name")
            .to_string_lossy()
            .into_owned();
        let src = std::fs::read_to_string(&path).expect("read corpus file");
        let (models, expected) = parse_corpus(&src, &name);
        let analysis = analyze_files(models);
        let actual: BTreeSet<Key> = analysis
            .findings
            .iter()
            .map(|f| (f.file.clone(), f.line, f.rule.to_string()))
            .collect();
        let missing: Vec<&Key> = expected.difference(&actual).collect();
        let surprise: Vec<&Key> = actual.difference(&expected).collect();
        assert!(
            missing.is_empty() && surprise.is_empty(),
            "{name}: corpus mismatch\n  expected but missing: {missing:?}\n  found but unexpected: {surprise:?}\n  all findings: {:#?}",
            analysis.findings
        );
    }
}
