//! Seeded property tests for the lexer: lexing is *total* (any byte soup
//! produces a token stream) and the spans *partition* the input (every
//! byte in exactly one token, in order, with monotone line/col tracking).
//!
//! The generator is deliberately adversarial: it mixes well-formed Rust
//! fragments with unterminated strings, half-open raw strings, stray
//! quotes, nested comment openers, and raw non-ASCII — the inputs where a
//! hand-rolled lexer either loops, panics, or drops bytes.

use wsc_prng::SmallRng;
use wsc_tools::analyzer::lexer::{lex, TokenKind};

/// Fragments the generator samples from. Unterminated constructs are the
/// interesting cases — totality means they lex to EOF, not to a hang.
const FRAGMENTS: &[&str] = &[
    "fn f() { let x = 1; }",
    "\"terminated\"",
    "\"unterminated",
    "\"escape \\\" inside\"",
    "r#\"raw\"#",
    "r##\"raw with # inside\"##",
    "r#\"unterminated raw",
    "'c'",
    "'\\n'",
    "'lifetime",
    "'a ",
    "// line comment\n",
    "/* block */",
    "/* nested /* deeper */ still */",
    "/* unterminated",
    "0x1f 1e-3 1_000 0.5 1..2",
    "ident _под_score λ",
    "::<>()[]{}#![]",
    "b\"bytes\" b'x' br#\"raw bytes\"#",
    "\n\n\t  ",
    "€",
    "\\",
];

fn soup(rng: &mut SmallRng, pieces: usize) -> String {
    let mut s = String::new();
    for _ in 0..pieces {
        s.push_str(FRAGMENTS[rng.gen_index(FRAGMENTS.len())]);
        if rng.gen_bool(0.3) {
            s.push(' ');
        }
    }
    s
}

#[test]
fn lexing_is_total_and_spans_partition() {
    let mut rng = SmallRng::seed_from_u64(0x1e5e_2024);
    for case in 0..500 {
        let src = soup(&mut rng, 1 + (case % 17));
        let tokens = lex(&src);

        // Partition: token spans tile [0, len) exactly, in order.
        let mut cursor = 0usize;
        for t in &tokens {
            assert_eq!(
                t.start, cursor,
                "gap or overlap at byte {cursor} in {src:?}"
            );
            assert!(t.end > t.start, "empty token at {} in {src:?}", t.start);
            cursor = t.end;
        }
        assert_eq!(cursor, src.len(), "tail bytes dropped in {src:?}");

        // Spans land on UTF-8 boundaries (slicing must never panic).
        for t in &tokens {
            let _ = &src[t.start..t.end];
        }

        // Line/col bookkeeping is monotone: lines never decrease, and
        // within a line columns strictly increase.
        let mut prev = (1u32, 0u32);
        for t in &tokens {
            assert!(
                t.line > prev.0 || (t.line == prev.0 && t.col > prev.1),
                "non-monotone position {}:{} after {}:{} in {src:?}",
                t.line,
                t.col,
                prev.0,
                prev.1
            );
            prev = (t.line, t.col);
        }
    }
}

#[test]
fn relexing_is_deterministic() {
    let mut rng = SmallRng::seed_from_u64(0xdead_beef);
    for _ in 0..100 {
        let src = soup(&mut rng, 9);
        let a = lex(&src);
        let b = lex(&src);
        assert_eq!(a, b);
    }
}

#[test]
fn trivia_and_significant_tokens_cover_known_kinds() {
    let src = "fn f<'a>() { /* c */ let s = r#\"x\"#; 'q' }";
    let tokens = lex(src);
    assert!(tokens.iter().any(|t| t.kind == TokenKind::BlockComment));
    assert!(tokens.iter().any(|t| t.kind == TokenKind::RawStr));
    assert!(tokens.iter().any(|t| t.kind == TokenKind::Char));
    assert!(tokens.iter().any(|t| t.kind == TokenKind::Lifetime));
    assert!(tokens.iter().filter(|t| !t.kind.is_trivia()).count() > 10);
}
