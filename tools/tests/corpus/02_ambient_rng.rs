//@ file: crates/workload/src/gen.rs
fn ok() {
    let note = "thread_rng is banned here"; // prose, not code
    let rng = wsc_prng::SmallRng::seed_from_u64(42);
    let _ = (note, rng);
}
fn bad() {
    let r = rand::thread_rng(); //~ ambient-rng
    let s = SmallRng::from_entropy(); //~ ambient-rng
    let _ = (r, s);
}
