//@ file: crates/sim-hw/src/quiet.rs
// lint:allow(wall-clock) stale: nothing below reads the clock //~ suppression-hygiene
fn quiet() {}
// lint:allow(panic-in-prod) renamed long ago //~ suppression-hygiene
fn also_quiet() {}
// A used annotation is not a finding:
fn uses_rng() {
    // lint:allow(ambient-rng) seeded upstream; this draw is derived
    let r = thread_rng();
    let _ = r;
}
//@ file: crates/parallel/src/dead_decl.rs
// lint:lock-order(a, b) //~ suppression-hygiene
fn no_locks_here() {}
