//@ file: crates/tcmalloc/src/span.rs
// The arena'd span registry is metadata storage, not a tier boundary:
// its `&mut self` mutators are sanctioned to stay silent on the event
// bus (the tier that calls them is the one crossing a boundary, and it
// emits), and the dense-pool indexing is suppressed exactly where the
// region carve bounds it — an unsuppressed computed index on a fallible
// path still counts.
pub struct SpanRegistry {
    spans: Vec<u64>,
    free_pool: Vec<u32>,
}
impl SpanRegistry {
    pub fn alloc_object(&mut self, id: usize) -> u64 {
        // lint:allow(panic-surface) top < free_off + region_cap by the
        // reset_region carve.
        let top = self.free_pool[id + 1];
        self.spans.push(top as u64);
        top as u64
    }
    pub fn peek_free(&self, id: usize) -> u32 {
        self.free_pool[id + 7] //~ panic-surface
    }
}

//@ file: crates/tcmalloc/src/central.rs
// Contrast: the same silent `pub fn (&mut self)` shape inside a tier
// module is a finding — only the arena module is sanctioned to mutate
// without emitting.
pub struct CentralFreeList {
    held: u64,
}
impl CentralFreeList {
    pub fn grow(&mut self) { //~ event-completeness
        self.held += 1;
    }
}

//@ file: crates/tcmalloc/src/alloc.rs
pub struct Tcmalloc {
    registry: SpanRegistry,
    bus: EventBus,
}
impl Tcmalloc {
    pub fn try_malloc(&mut self, id: usize) -> Result<u64, ()> {
        // Reaches the registry: the unsuppressed index in peek_free is on
        // this fallible path.
        let _ = self.registry.peek_free(id);
        let addr = self.registry.alloc_object(id);
        self.bus.emit(AllocEvent::MallocDone {});
        Ok(addr)
    }
}
