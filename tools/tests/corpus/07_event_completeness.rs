//@ file: crates/tcmalloc/src/events.rs
pub enum AllocEvent {
    Used { n: u64 },
    NeverBuilt { n: u64 }, //~ event-completeness
}
//@ file: crates/tcmalloc/src/percpu.rs
pub struct Cache {
    x: u64,
}
impl Cache {
    pub fn silent(&mut self) { //~ event-completeness
        self.x += 1;
    }
    pub fn emitting(&mut self, bus: &mut EventBus) {
        self.x += 1;
        bus.emit(AllocEvent::Used { n: self.x });
    }
    pub fn delegating(&mut self, bus: &mut EventBus) {
        self.emitting(bus);
    }
    pub fn read_only(&self) -> u64 {
        self.x
    }
    fn private_mutator(&mut self) {
        self.x -= 1;
    }
    // lint:allow(event-completeness) index maintenance; the caller emits
    pub fn justified(&mut self) {
        self.x = 0;
    }
}
