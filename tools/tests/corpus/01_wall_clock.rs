//@ file: crates/sim-hw/src/timer.rs
// False-positive classes the regex engine got wrong: occurrences inside
// string literals and comments must not fire.
fn ok() {
    let s = "Instant::now() inside a string";
    // Instant::now() inside a line comment
    /* SystemTime::now() inside a block comment */
    let _ = s;
}
fn bad() {
    let t = std::time::Instant::now(); //~ wall-clock
    let s = SystemTime::now(); //~ wall-clock
    let _ = (t, s);
}
