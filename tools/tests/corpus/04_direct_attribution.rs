//@ file: crates/fleet/src/cell.rs
fn ok_in_string() {
    let s = "stats.charge(1.0) in prose";
    let _ = s;
}
// The multi-line receiver the old single-line regex could not see.
fn multi_line(stats: &mut CycleStats) {
    stats
        .charge(1.0); //~ direct-attribution
}
fn profile(p: &mut AllocationProfile) {
    p.record_alloc(64); //~ direct-attribution
    p.record_lifetime(64, 1_000); //~ direct-attribution
}
//@ file: crates/sanitizer/src/consume.rs
// Sanctioned path: the sanitizer implements the consumers the bus drives.
fn consumer(stats: &mut CycleStats) {
    stats.charge(2.0);
}
