//@ file: crates/tcmalloc/src/core.rs
pub struct Core {
    xs: Vec<u64>,
}
impl Core {
    pub fn try_malloc(&mut self, i: usize) -> Result<u64, ()> {
        let plain = self.xs[i]; // bare identifier index: locally checkable
        let computed = self.xs[i + 1]; //~ panic-surface
        let range = &self.xs[..i]; //~ panic-surface
        let _ = (plain, computed, range);
        helper(&self.xs)
    }
    pub fn try_free(&mut self, i: usize) -> Result<(), ()> {
        // lint:allow(panic-surface) bound proven by the caller contract
        let _ = self.xs[i * 2];
        Ok(())
    }
}
fn helper(xs: &[u64]) -> Result<u64, ()> {
    if xs.is_empty() {
        panic!("boom"); //~ panic-surface
    }
    Ok(xs[0])
}
fn not_reachable() {
    panic!("fine: no path from the try roots leads here");
    todo!()
}
