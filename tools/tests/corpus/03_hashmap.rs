//@ file: crates/telemetry/src/agg.rs
struct Justified {
    // lint:allow(hashmap-decl) key-indexed access only; no iteration leaves
    by_id: HashMap<u64, u32>,
}
struct Bad {
    counts: HashMap<u64, u32>, //~ hashmap-decl
}
impl Justified {
    fn build() -> Self {
        // Struct-literal field init is exempt: the field declaration above
        // is the annotated site.
        Self { by_id: HashMap::new() }
    }
    fn bad_iter(&self) {
        for (k, v) in &self.by_id {} //~ hashmap-iter
    }
    fn ok_lookup(&self) -> Option<&u32> {
        self.by_id.get(&7)
    }
}
fn bad_let() {
    let tmp: HashMap<u32, u32> = HashMap::new(); //~ hashmap-decl
    for v in tmp.values() {} //~ hashmap-iter
}
fn ok_prose() {
    let s = "HashMap::new() and map.iter() in prose";
    let _ = s;
}
