//@ file: crates/tcmalloc/src/shard.rs
use std::sync::Mutex; //~ concurrency-readiness
fn bad() {
    let m = Mutex::new(0); //~ concurrency-readiness
    std::thread::spawn(|| {}); //~ concurrency-readiness
    let a = Arc::new(0); //~ concurrency-readiness
    let _ = (m, a);
}
fn ok_prose() {
    let s = "Mutex and RwLock in prose are fine";
    let _ = s;
}
//@ file: crates/parallel/src/pool.rs
// Sanctioned module: primitives are fine, but two locks in one body
// demand a canonical lock-order declaration.
fn single(a: &Mutex<u32>) {
    let _g = a.lock();
}
fn needs_decl(a: &Mutex<u32>, b: &Mutex<u32>) { //~ concurrency-readiness
    let _x = a.lock();
    let _y = b.lock();
}
//@ file: crates/parallel/src/pool2.rs
// lint:lock-order(a, b)
fn in_order(a: &Mutex<u32>, b: &Mutex<u32>) {
    let _x = a.lock();
    let _y = b.lock();
}
fn out_of_order(a: &Mutex<u32>, b: &Mutex<u32>) {
    let _y = b.lock();
    let _x = a.lock(); //~ concurrency-readiness
}
fn undeclared(c: &Mutex<u32>) {
    let _z = c.lock(); //~ concurrency-readiness
}
//@ file: crates/parallel/src/atomics.rs
fn store(b: &AtomicBool) {
    b.store(true, Ordering::Release); //~ concurrency-readiness
    // lint:allow(atomic-ordering) counter only; no other data published
    b.store(false, Ordering::Relaxed);
    let cmp = std::cmp::Ordering::Less; // cmp::Ordering variants never fire
    let _ = cmp;
}
//@ file: crates/tcmalloc/src/deferred.rs
// The deferred cross-thread free module is sanctioned: per-span lists and
// message inboxes are the allocator's one legitimate shared-state model.
// lint:lock-order(span_lists, inboxes)
fn park(span_lists: &Mutex<u32>, inboxes: &Mutex<u32>) {
    let _l = span_lists.lock();
    let _i = inboxes.lock();
}
fn counters(n: &AtomicU64) {
    // lint:allow(atomic-ordering) monotonic counter; no data published
    n.fetch_add(1, Ordering::Relaxed);
    n.fetch_add(1, Ordering::AcqRel); //~ concurrency-readiness
}
