//@ file: crates/workload/src/docs.rs
// The multi-line trap: a single-line scanner sees these lines without the
// surrounding raw-string/comment context and fires on every one of them.
fn ok() {
    let example = r#"
        let t = Instant::now();
        let r = thread_rng();
        let m: HashMap<u32, u32> = HashMap::new();
        stats.charge(1.0);
        vmm.mmap(0, 4096);
        std::thread::spawn(|| {});
    "#;
    let nested = /* block comment mentioning SystemTime::now() and
        panic!("over multiple lines") */
        42;
    let _ = (example, nested);
}
