//@ file: crates/tcmalloc/src/naughty.rs
fn bad(vmm: &mut Vmm) {
    let v = Vmm::new(16); //~ infallible-os
    vmm.mmap(0, 4096); //~ infallible-os
    vmm.subrelease(0, 4096); //~ infallible-os
    let _ = v;
}
fn ok_prose() {
    let doc = "route .mmap( calls through OsLayer";
    let _ = doc;
}
//@ file: crates/sim-os/src/vmm_test_helper.rs
// The OS boundary itself may construct and mutate kernel state.
fn fine(vmm: &mut Vmm) {
    let fresh = Vmm::new(16);
    vmm.munmap(0, 4096);
    let _ = fresh;
}
