//! The analyzer must pass its own rules: two runs over the workspace
//! produce byte-identical `analysis.json`. Findings are pre-sorted, counts
//! live in ordered maps, and paths are repo-relative — any HashMap-order
//! leakage or absolute path would show up here as a diff.

use std::path::Path;
use wsc_tools::analyzer::analyze_workspace;

fn repo_root() -> &'static Path {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .expect("tools/ sits under the workspace root")
}

#[test]
fn repeated_runs_are_byte_identical() {
    let a = analyze_workspace(repo_root()).expect("first run");
    let b = analyze_workspace(repo_root()).expect("second run");
    assert_eq!(a.files_scanned, b.files_scanned);
    assert_eq!(
        a.to_json(),
        b.to_json(),
        "analysis.json differs between runs"
    );
}

#[test]
fn workspace_is_clean_of_unsuppressed_findings() {
    // The acceptance gate in code form: the committed tree carries zero
    // unsuppressed findings across all ten rules.
    let a = analyze_workspace(repo_root()).expect("analyzer run");
    assert!(
        a.findings.is_empty(),
        "unsuppressed findings in the workspace: {:#?}",
        a.findings
    );
    assert!(a.files_scanned > 50, "suspiciously few files scanned");
}

#[test]
fn json_shape_is_stable() {
    let a = analyze_workspace(repo_root()).expect("analyzer run");
    let json = a.to_json();
    assert!(json.starts_with("{\n"));
    assert!(json.ends_with("}\n"));
    assert!(json.contains("\"rule_counts\""));
    assert!(json.contains("\"files_scanned\""));
    // All ten rules present in the counts block even at zero.
    for rule in [
        "wall-clock",
        "ambient-rng",
        "hashmap-iter",
        "hashmap-decl",
        "direct-attribution",
        "infallible-os",
        "concurrency-readiness",
        "event-completeness",
        "panic-surface",
        "suppression-hygiene",
    ] {
        assert!(json.contains(&format!("\"{rule}\"")), "missing {rule}");
    }
}
