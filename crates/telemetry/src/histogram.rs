//! Log2-bucketed weighted histograms.
//!
//! The allocator telemetry deals with values spanning ten orders of magnitude
//! (8-byte objects up to terabyte heaps, microsecond lifetimes up to weeks),
//! so linear bucketing is useless. [`LogHistogram`] uses one bucket per
//! power of two, subdivided into a fixed number of linear sub-buckets, which
//! matches how production TCMalloc telemetry bins sizes and lifetimes.

/// Number of linear sub-buckets per power-of-two bucket.
///
/// Four sub-buckets bounds the relative quantile error at 1/8 (12.5%), which
/// is plenty for distribution *shape* studies like the paper's Figures 7/8.
pub const SUB_BUCKETS: usize = 4;

/// Maximum supported exponent. Values at or above `2^MAX_EXP` saturate into
/// the last bucket. 2^50 ≈ 1 PiB / ~13 days in nanoseconds, beyond anything
/// the study records.
pub const MAX_EXP: usize = 50;

const NUM_SLOTS: usize = MAX_EXP * SUB_BUCKETS;

/// A weighted histogram with logarithmic buckets.
///
/// Weights are `f64` so a single histogram can hold either raw counts
/// (`weight = 1.0`) or byte-weighted tallies (`weight = size as f64`), which
/// is exactly the distinction between the two curves of the paper's Figure 7
/// ("Object Count" vs "Memory").
///
/// # Example
///
/// ```
/// use wsc_telemetry::histogram::LogHistogram;
///
/// let mut h = LogHistogram::new();
/// h.record(100, 1.0);
/// h.record(200, 1.0);
/// assert_eq!(h.count(), 2.0);
/// let med = h.quantile(0.5);
/// assert!((64..=256).contains(&med));
/// ```
#[derive(Clone, Debug)]
pub struct LogHistogram {
    slots: Vec<f64>,
    total_weight: f64,
    /// Sum of `value * weight`, for exact means.
    weighted_sum: f64,
    min: Option<u64>,
    max: Option<u64>,
}

impl LogHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self {
            slots: vec![0.0; NUM_SLOTS],
            total_weight: 0.0,
            weighted_sum: 0.0,
            min: None,
            max: None,
        }
    }

    fn slot_of(value: u64) -> usize {
        if value <= 1 {
            return 0;
        }
        let exp = 63 - value.leading_zeros() as usize; // floor(log2(value)) >= 1
        if exp >= MAX_EXP {
            return NUM_SLOTS - 1;
        }
        // Linear position of `value` within [2^exp, 2^(exp+1)).
        let base = 1u64 << exp;
        let frac = ((value - base) as u128 * SUB_BUCKETS as u128 / base as u128) as usize;
        exp * SUB_BUCKETS + frac.min(SUB_BUCKETS - 1)
    }

    /// Lower bound of the given slot.
    fn slot_lower(slot: usize) -> u64 {
        let exp = slot / SUB_BUCKETS;
        let sub = slot % SUB_BUCKETS;
        let base = 1u64 << exp;
        base + (base / SUB_BUCKETS as u64) * sub as u64
    }

    /// Records `value` with the given non-negative `weight`.
    ///
    /// # Panics
    ///
    /// Panics (debug builds) if `weight` is negative or non-finite.
    pub fn record(&mut self, value: u64, weight: f64) {
        debug_assert!(weight.is_finite() && weight >= 0.0, "bad weight {weight}");
        if weight == 0.0 {
            return;
        }
        self.slots[Self::slot_of(value)] += weight;
        self.total_weight += weight;
        self.weighted_sum += value as f64 * weight;
        self.min = Some(self.min.map_or(value, |m| m.min(value)));
        self.max = Some(self.max.map_or(value, |m| m.max(value)));
    }

    /// Total recorded weight.
    pub fn count(&self) -> f64 {
        self.total_weight
    }

    /// Weighted mean of recorded values, or `None` if empty.
    pub fn mean(&self) -> Option<f64> {
        (self.total_weight > 0.0).then(|| self.weighted_sum / self.total_weight)
    }

    /// Smallest recorded value, or `None` if empty.
    pub fn min(&self) -> Option<u64> {
        self.min
    }

    /// Largest recorded value, or `None` if empty.
    pub fn max(&self) -> Option<u64> {
        self.max
    }

    /// Weighted quantile: the smallest bucket lower-bound `v` such that at
    /// least `q` of the total weight lies at values `<= v`'s bucket.
    ///
    /// Returns 0 for an empty histogram. `q` is clamped to `[0, 1]`.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.total_weight <= 0.0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let target = q * self.total_weight;
        let mut acc = 0.0;
        for (i, w) in self.slots.iter().enumerate() {
            acc += w;
            if acc >= target && *w > 0.0 {
                return Self::slot_lower(i);
            }
        }
        self.max.unwrap_or(0)
    }

    /// Fraction of total weight recorded at values `< threshold`
    /// (bucket-granular). Returns 0 for an empty histogram.
    pub fn fraction_below(&self, threshold: u64) -> f64 {
        if self.total_weight <= 0.0 {
            return 0.0;
        }
        let cut = Self::slot_of(threshold);
        let below: f64 = self.slots[..cut].iter().sum();
        below / self.total_weight
    }

    /// Fraction of total weight recorded at values `>= threshold`
    /// (bucket-granular).
    pub fn fraction_at_or_above(&self, threshold: u64) -> f64 {
        if self.total_weight <= 0.0 {
            return 0.0;
        }
        1.0 - self.fraction_below(threshold)
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &LogHistogram) {
        for (a, b) in self.slots.iter_mut().zip(other.slots.iter()) {
            *a += *b;
        }
        self.total_weight += other.total_weight;
        self.weighted_sum += other.weighted_sum;
        if let Some(m) = other.min {
            self.min = Some(self.min.map_or(m, |s| s.min(m)));
        }
        if let Some(m) = other.max {
            self.max = Some(self.max.map_or(m, |s| s.max(m)));
        }
    }

    /// Iterates over non-empty buckets as `(bucket_lower_bound, weight)`.
    pub fn iter(&self) -> impl Iterator<Item = (u64, f64)> + '_ {
        self.slots
            .iter()
            .enumerate()
            .filter(|(_, w)| **w > 0.0)
            .map(|(i, w)| (Self::slot_lower(i), *w))
    }
}

impl Default for LogHistogram {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
// Tests may unwrap: a panic IS the failure report here.
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram() {
        let h = LogHistogram::new();
        assert_eq!(h.count(), 0.0);
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.mean(), None);
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
        assert_eq!(h.fraction_below(100), 0.0);
    }

    #[test]
    fn slot_lower_round_trips() {
        for v in [1u64, 2, 3, 7, 8, 100, 1024, 1 << 20, (1 << 30) + 12345] {
            let slot = LogHistogram::slot_of(v);
            let lower = LogHistogram::slot_lower(slot);
            assert!(lower <= v, "lower {lower} > value {v}");
            // Bucket relative width is 1/SUB_BUCKETS of the octave.
            assert!(v < lower * 2, "value {v} too far above lower {lower}");
        }
    }

    #[test]
    fn quantiles_bracket_data() {
        let mut h = LogHistogram::new();
        for v in 1..=1000u64 {
            h.record(v, 1.0);
        }
        let q10 = h.quantile(0.10);
        let q50 = h.quantile(0.50);
        let q90 = h.quantile(0.90);
        assert!(q10 <= q50 && q50 <= q90, "{q10} {q50} {q90}");
        assert!((64..=1024).contains(&q50), "median {q50}");
    }

    #[test]
    fn byte_weighting_shifts_distribution() {
        // Mirrors paper Fig. 7: many small objects, few huge ones.
        let mut count = LogHistogram::new();
        let mut bytes = LogHistogram::new();
        for _ in 0..1000 {
            count.record(64, 1.0);
            bytes.record(64, 64.0);
        }
        count.record(1 << 20, 1.0);
        bytes.record(1 << 20, (1u64 << 20) as f64);
        // By count the small objects dominate; by bytes the 1 MiB one does.
        assert!(count.fraction_below(1024) > 0.99);
        assert!(bytes.fraction_below(1024) < 0.1);
    }

    #[test]
    fn saturation_at_max_exp() {
        let mut h = LogHistogram::new();
        h.record(u64::MAX, 1.0);
        assert_eq!(h.count(), 1.0);
        assert!(h.quantile(1.0) > 0);
    }

    #[test]
    fn merge_adds_weight() {
        let mut a = LogHistogram::new();
        let mut b = LogHistogram::new();
        a.record(10, 2.0);
        b.record(1000, 3.0);
        a.merge(&b);
        assert_eq!(a.count(), 5.0);
        assert_eq!(a.min(), Some(10));
        assert_eq!(a.max(), Some(1000));
    }

    #[test]
    fn mean_is_exact() {
        let mut h = LogHistogram::new();
        h.record(10, 1.0);
        h.record(30, 3.0);
        let mean = h.mean().unwrap();
        assert!((mean - 25.0).abs() < 1e-9, "mean {mean}");
    }

    #[test]
    fn iter_covers_all_weight() {
        let mut h = LogHistogram::new();
        for v in [5u64, 50, 500, 5000] {
            h.record(v, 1.5);
        }
        let total: f64 = h.iter().map(|(_, w)| w).sum();
        assert!((total - h.count()).abs() < 1e-9);
    }

    #[test]
    fn fraction_below_min_is_zero() {
        // Boundary contract for Figures 7/8: nothing lies below the
        // smallest recorded value, bucket-granular or not.
        let mut h = LogHistogram::new();
        for v in [96u64, 500, 7000, 1 << 18] {
            h.record(v, 2.0);
        }
        let min = h.min().unwrap();
        assert_eq!(h.fraction_below(min), 0.0);
        assert_eq!(h.fraction_at_or_above(min), 1.0);
    }

    #[test]
    fn below_and_at_or_above_are_complementary_at_bucket_edges() {
        let mut h = LogHistogram::new();
        for v in 1..=4096u64 {
            h.record(v, 1.0);
        }
        // Exact powers of two and sub-bucket edges: the two fractions must
        // sum to 1 and each value must sit on the at-or-above side of its
        // own bucket edge.
        for edge in [1u64, 2, 8, 64, 80, 96, 1024, 4096] {
            let below = h.fraction_below(edge);
            let above = h.fraction_at_or_above(edge);
            assert!(
                ((below + above) - 1.0).abs() < 1e-12,
                "edge {edge}: {below} + {above} != 1"
            );
            // Bucket granularity: everything in edge's own bucket counts as
            // at-or-above, so `below` never exceeds the exact fraction of
            // values < edge.
            let exact = (edge - 1) as f64 / 4096.0;
            assert!(
                below <= exact + 1e-12,
                "edge {edge}: bucket-granular below {below} > exact {exact}"
            );
        }
    }

    #[test]
    fn quantile_extremes_return_occupied_bucket_bounds() {
        let mut h = LogHistogram::new();
        h.record(48, 1.0);
        h.record(3000, 5.0);
        h.record(1 << 22, 0.5);
        // q=0 is the smallest occupied bucket's lower bound; q=1 the
        // largest occupied bucket's lower bound.
        let lo = h.quantile(0.0);
        let hi = h.quantile(1.0);
        assert_eq!(lo, LogHistogram::slot_lower(LogHistogram::slot_of(48)));
        assert_eq!(hi, LogHistogram::slot_lower(LogHistogram::slot_of(1 << 22)));
        assert!(
            lo <= 48 && hi <= (1 << 22),
            "lower bounds never exceed data"
        );
        // Out-of-range q clamps rather than extrapolating.
        assert_eq!(h.quantile(-3.0), lo);
        assert_eq!(h.quantile(42.0), hi);
    }

    #[test]
    fn zero_weight_ignored() {
        let mut h = LogHistogram::new();
        h.record(42, 0.0);
        assert_eq!(h.count(), 0.0);
        assert_eq!(h.min(), None);
    }
}
