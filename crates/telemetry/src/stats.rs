//! Summary statistics and correlation coefficients.
//!
//! The paper's Figure 16 reports a Spearman rank correlation of −0.75 between
//! span capacity and span return rate; [`spearman`] reproduces that
//! computation (tie-aware, using average ranks).

/// Arithmetic mean of a slice, or `None` if empty.
pub fn mean(xs: &[f64]) -> Option<f64> {
    (!xs.is_empty()).then(|| xs.iter().sum::<f64>() / xs.len() as f64)
}

/// Population variance, or `None` if empty.
pub fn variance(xs: &[f64]) -> Option<f64> {
    let m = mean(xs)?;
    Some(xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64)
}

/// Population standard deviation, or `None` if empty.
pub fn std_dev(xs: &[f64]) -> Option<f64> {
    variance(xs).map(f64::sqrt)
}

/// Weighted mean, or `None` if total weight is not positive.
pub fn weighted_mean(pairs: &[(f64, f64)]) -> Option<f64> {
    let total: f64 = pairs.iter().map(|&(_, w)| w).sum();
    (total > 0.0).then(|| pairs.iter().map(|&(x, w)| x * w).sum::<f64>() / total)
}

/// Pearson linear correlation coefficient.
///
/// Returns `None` when the inputs have different lengths, fewer than two
/// points, or zero variance in either variable.
pub fn pearson(xs: &[f64], ys: &[f64]) -> Option<f64> {
    if xs.len() != ys.len() || xs.len() < 2 {
        return None;
    }
    let mx = mean(xs)?;
    let my = mean(ys)?;
    let mut cov = 0.0;
    let mut vx = 0.0;
    let mut vy = 0.0;
    for (x, y) in xs.iter().zip(ys) {
        let dx = x - mx;
        let dy = y - my;
        cov += dx * dy;
        vx += dx * dx;
        vy += dy * dy;
    }
    if vx <= 0.0 || vy <= 0.0 {
        return None;
    }
    Some(cov / (vx.sqrt() * vy.sqrt()))
}

/// Average ranks (1-based) with ties receiving the mean of their rank range.
fn ranks(xs: &[f64]) -> Vec<f64> {
    let mut idx: Vec<usize> = (0..xs.len()).collect();
    idx.sort_by(|&a, &b| xs[a].partial_cmp(&xs[b]).expect("non-finite value"));
    let mut out = vec![0.0; xs.len()];
    let mut i = 0;
    while i < idx.len() {
        let mut j = i;
        while j + 1 < idx.len() && xs[idx[j + 1]] == xs[idx[i]] {
            j += 1;
        }
        // Ranks i+1 ..= j+1 share the average rank.
        let avg = (i + 1 + j + 1) as f64 / 2.0;
        for k in i..=j {
            out[idx[k]] = avg;
        }
        i = j + 1;
    }
    out
}

/// Spearman rank correlation coefficient (tie-aware).
///
/// Returns `None` under the same conditions as [`pearson`].
///
/// # Example
///
/// ```
/// use wsc_telemetry::stats::spearman;
///
/// // A perfectly monotone decreasing relation has rho = -1.
/// let x = [1.0, 2.0, 3.0, 4.0];
/// let y = [100.0, 50.0, 20.0, 1.0];
/// assert!((spearman(&x, &y).unwrap() + 1.0).abs() < 1e-9);
/// ```
pub fn spearman(xs: &[f64], ys: &[f64]) -> Option<f64> {
    if xs.len() != ys.len() || xs.len() < 2 {
        return None;
    }
    pearson(&ranks(xs), &ranks(ys))
}

/// Linear-interpolated quantile of an unsorted slice, `q ∈ [0, 1]`.
///
/// Returns `None` if empty.
pub fn quantile(xs: &[f64], q: f64) -> Option<f64> {
    if xs.is_empty() {
        return None;
    }
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("non-finite value"));
    let q = q.clamp(0.0, 1.0);
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    Some(sorted[lo] * (1.0 - frac) + sorted[hi] * frac)
}

/// Relative change `(new - old) / old` in percent.
///
/// Returns 0 when `old` is 0, which is the right convention for reporting
/// experiment deltas over possibly-empty baselines.
pub fn percent_change(old: f64, new: f64) -> f64 {
    if old == 0.0 {
        0.0
    } else {
        (new - old) / old * 100.0
    }
}

#[cfg(test)]
// Tests may unwrap: a panic IS the failure report here.
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_variance() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&xs).unwrap() - 5.0).abs() < 1e-9);
        assert!((variance(&xs).unwrap() - 4.0).abs() < 1e-9);
        assert!((std_dev(&xs).unwrap() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn empty_inputs() {
        assert_eq!(mean(&[]), None);
        assert_eq!(variance(&[]), None);
        assert_eq!(pearson(&[], &[]), None);
        assert_eq!(spearman(&[1.0], &[1.0]), None);
        assert_eq!(quantile(&[], 0.5), None);
        assert_eq!(weighted_mean(&[]), None);
    }

    #[test]
    fn pearson_perfect_linear() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let y = [3.0, 5.0, 7.0, 9.0];
        assert!((pearson(&x, &y).unwrap() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn pearson_zero_variance_is_none() {
        assert_eq!(pearson(&[1.0, 1.0, 1.0], &[1.0, 2.0, 3.0]), None);
    }

    #[test]
    fn spearman_monotone_nonlinear() {
        // Monotone but nonlinear: Spearman sees 1, Pearson < 1.
        let x = [1.0, 2.0, 3.0, 4.0, 5.0];
        let y = [1.0, 8.0, 27.0, 64.0, 125.0];
        assert!((spearman(&x, &y).unwrap() - 1.0).abs() < 1e-9);
        assert!(pearson(&x, &y).unwrap() < 1.0);
    }

    #[test]
    fn spearman_handles_ties() {
        let x = [1.0, 2.0, 2.0, 3.0];
        let y = [10.0, 20.0, 20.0, 30.0];
        assert!((spearman(&x, &y).unwrap() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn ranks_average_ties() {
        let r = ranks(&[5.0, 1.0, 5.0]);
        assert_eq!(r, vec![2.5, 1.0, 2.5]);
    }

    #[test]
    fn quantile_interpolates() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert!((quantile(&xs, 0.0).unwrap() - 1.0).abs() < 1e-9);
        assert!((quantile(&xs, 1.0).unwrap() - 4.0).abs() < 1e-9);
        assert!((quantile(&xs, 0.5).unwrap() - 2.5).abs() < 1e-9);
    }

    #[test]
    fn percent_change_conventions() {
        assert!((percent_change(100.0, 101.4) - 1.4).abs() < 1e-9);
        assert!((percent_change(100.0, 96.6) + 3.4).abs() < 1e-9);
        assert_eq!(percent_change(0.0, 5.0), 0.0);
    }

    #[test]
    fn weighted_mean_basic() {
        let w = weighted_mean(&[(1.0, 1.0), (3.0, 3.0)]).unwrap();
        assert!((w - 2.5).abs() < 1e-9);
    }
}
