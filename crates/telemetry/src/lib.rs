//! GWP-style continuous-profiling primitives for the warehouse-scale
//! allocator study.
//!
//! The paper collects fleet statistics with Google-Wide Profiling (GWP): a
//! sampling profiler that picks a small fraction of machines each day and
//! records allocator telemetry. This crate provides the building blocks that
//! the rest of the workspace uses to reproduce those measurements:
//!
//! * [`histogram::LogHistogram`] — log2-bucketed weighted histograms used for
//!   object-size and lifetime distributions (paper Figures 7 and 8),
//! * [`cdf::Cdf`] — cumulative distributions (Figures 3 and 7),
//! * [`stats`] — summary statistics plus Pearson and Spearman correlation
//!   (the paper reports a Spearman coefficient of −0.75 in Figure 16),
//! * [`timeseries::TimeSeries`] — time-indexed samples (Figure 9a),
//! * [`summary::MetricSummary`] / [`summary::BucketSeries`] — constant-size,
//!   exactly-mergeable accumulators the streaming fleet engine folds
//!   per-cell telemetry into (any thread/shard partition reduces to the
//!   same bytes),
//! * [`metrics::MetricRegistry`] — named counters and gauges shared by the
//!   allocator and the workload driver,
//! * [`gwp`] — the byte-threshold allocation sampler (1 sample / 2 MiB, as in
//!   production TCMalloc) and profile aggregation across machines.
//!
//! # Example
//!
//! ```
//! use wsc_telemetry::histogram::LogHistogram;
//!
//! let mut sizes = LogHistogram::new();
//! for s in [8u64, 24, 24, 1024, 1 << 20] {
//!     sizes.record(s, 1.0);
//! }
//! assert_eq!(sizes.count(), 5.0);
//! assert!(sizes.quantile(0.5) <= 1024);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cdf;
pub mod gwp;
pub mod histogram;
pub mod metrics;
pub mod stats;
pub mod summary;
pub mod timeseries;

pub use cdf::Cdf;
pub use histogram::LogHistogram;
pub use metrics::MetricRegistry;
pub use summary::{BucketSeries, Coverage, MetricSummary};
pub use timeseries::TimeSeries;
