//! A small named-metric registry.
//!
//! The allocator, the OS model, and the workload driver all publish counters
//! and gauges here; the fleet experiment framework snapshots registries from
//! experiment and control machines and diffs them.

use std::collections::BTreeMap;

/// A snapshot of all metrics at a point in time.
pub type Snapshot = BTreeMap<String, f64>;

/// Registry of named counters (monotonic) and gauges (set-to-value).
///
/// Names are free-form dotted paths, e.g. `"tcmalloc.percpu.miss"`.
///
/// # Example
///
/// ```
/// use wsc_telemetry::metrics::MetricRegistry;
///
/// let mut m = MetricRegistry::new();
/// m.add("alloc.count", 2.0);
/// m.add("alloc.count", 3.0);
/// m.set("heap.bytes", 1024.0);
/// assert_eq!(m.get("alloc.count"), 5.0);
/// assert_eq!(m.get("heap.bytes"), 1024.0);
/// ```
#[derive(Clone, Debug, Default)]
pub struct MetricRegistry {
    values: BTreeMap<String, f64>,
}

impl MetricRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `delta` to the named counter (creating it at 0).
    pub fn add(&mut self, name: &str, delta: f64) {
        *self.values.entry(name.to_owned()).or_insert(0.0) += delta;
    }

    /// Sets the named gauge to `value`.
    pub fn set(&mut self, name: &str, value: f64) {
        self.values.insert(name.to_owned(), value);
    }

    /// Current value, or 0 if the metric has never been touched.
    pub fn get(&self, name: &str) -> f64 {
        self.values.get(name).copied().unwrap_or(0.0)
    }

    /// Snapshot of every metric.
    pub fn snapshot(&self) -> Snapshot {
        self.values.clone()
    }

    /// Merges (sums) another registry into this one — used when aggregating
    /// per-machine registries fleet-wide.
    pub fn merge(&mut self, other: &MetricRegistry) {
        for (k, v) in &other.values {
            *self.values.entry(k.clone()).or_insert(0.0) += *v;
        }
    }

    /// Iterates `(name, value)` pairs in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, f64)> + '_ {
        self.values.iter().map(|(k, v)| (k.as_str(), *v))
    }
}

#[cfg(test)]
// Tests may unwrap: a panic IS the failure report here.
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut m = MetricRegistry::new();
        m.add("a", 1.0);
        m.add("a", 2.5);
        assert_eq!(m.get("a"), 3.5);
        assert_eq!(m.get("missing"), 0.0);
    }

    #[test]
    fn gauges_overwrite() {
        let mut m = MetricRegistry::new();
        m.set("g", 1.0);
        m.set("g", 9.0);
        assert_eq!(m.get("g"), 9.0);
    }

    #[test]
    fn merge_sums() {
        let mut a = MetricRegistry::new();
        let mut b = MetricRegistry::new();
        a.add("x", 1.0);
        b.add("x", 2.0);
        b.add("y", 5.0);
        a.merge(&b);
        assert_eq!(a.get("x"), 3.0);
        assert_eq!(a.get("y"), 5.0);
    }

    #[test]
    fn snapshot_is_ordered() {
        let mut m = MetricRegistry::new();
        m.add("b", 1.0);
        m.add("a", 1.0);
        let keys: Vec<_> = m.snapshot().into_keys().collect();
        assert_eq!(keys, vec!["a".to_string(), "b".to_string()]);
    }
}
