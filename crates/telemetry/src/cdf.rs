//! Empirical cumulative distribution functions.
//!
//! Used to render the paper's CDF figures: Figure 3 (fraction of fleet malloc
//! cycles / allocated memory covered by the top-N binaries) and Figure 7
//! (fraction of objects / bytes below a size threshold).

/// An empirical weighted CDF over `u64` sample values.
///
/// Construction sorts the samples once; queries are `O(log n)`.
///
/// # Example
///
/// ```
/// use wsc_telemetry::cdf::Cdf;
///
/// let cdf = Cdf::from_samples(vec![(1, 1.0), (2, 1.0), (4, 2.0)]);
/// assert!((cdf.fraction_at_or_below(2) - 0.5).abs() < 1e-9);
/// assert_eq!(cdf.quantile(1.0), 4);
/// ```
#[derive(Clone, Debug)]
pub struct Cdf {
    /// Sorted `(value, cumulative_weight)` with strictly increasing values.
    points: Vec<(u64, f64)>,
    total: f64,
}

impl Cdf {
    /// Builds a CDF from weighted samples. Duplicate values are coalesced.
    ///
    /// Returns an empty CDF (all queries yield 0) when `samples` is empty or
    /// all weights are zero.
    pub fn from_samples(mut samples: Vec<(u64, f64)>) -> Self {
        samples.retain(|&(_, w)| w > 0.0);
        samples.sort_unstable_by_key(|&(v, _)| v);
        let mut points: Vec<(u64, f64)> = Vec::with_capacity(samples.len());
        let mut acc = 0.0;
        for (v, w) in samples {
            acc += w;
            match points.last_mut() {
                Some(last) if last.0 == v => last.1 = acc,
                _ => points.push((v, acc)),
            }
        }
        Self { points, total: acc }
    }

    /// Builds a CDF where every sample has weight 1.
    pub fn from_values<I: IntoIterator<Item = u64>>(values: I) -> Self {
        Self::from_samples(values.into_iter().map(|v| (v, 1.0)).collect())
    }

    /// Total weight.
    pub fn total(&self) -> f64 {
        self.total
    }

    /// Is the CDF empty?
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Fraction of total weight at values `<= x`. Returns 0 when empty.
    pub fn fraction_at_or_below(&self, x: u64) -> f64 {
        if self.total <= 0.0 {
            return 0.0;
        }
        match self.points.binary_search_by_key(&x, |&(v, _)| v) {
            Ok(i) => self.points[i].1 / self.total,
            Err(0) => 0.0,
            Err(i) => self.points[i - 1].1 / self.total,
        }
    }

    /// Smallest value `v` with `fraction_at_or_below(v) >= q`.
    ///
    /// `q` is clamped to `[0, 1]`. Returns 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.points.is_empty() {
            return 0;
        }
        let target = q.clamp(0.0, 1.0) * self.total;
        let idx = self.points.partition_point(|&(_, acc)| acc < target);
        self.points[idx.min(self.points.len() - 1)].0
    }

    /// Iterates `(value, cumulative_fraction)` points.
    pub fn iter(&self) -> impl Iterator<Item = (u64, f64)> + '_ {
        let total = self.total.max(f64::MIN_POSITIVE);
        self.points.iter().map(move |&(v, acc)| (v, acc / total))
    }
}

/// "Top-N coverage" curve: given per-item weights, what fraction of the total
/// do the heaviest `n` items cover, for each `n`?
///
/// This is the exact construction of the paper's Figure 3 (top 50 binaries
/// cover ≈50% of malloc cycles and ≈65% of allocated memory).
///
/// Returns a vector `c` with `c[n]` = coverage of the top `n` items
/// (`c[0] == 0.0`, `c[len] == 1.0` when weights are positive).
pub fn top_n_coverage(weights: &[f64]) -> Vec<f64> {
    let mut sorted: Vec<f64> = weights.iter().copied().filter(|w| *w > 0.0).collect();
    sorted.sort_unstable_by(|a, b| b.partial_cmp(a).expect("non-finite weight"));
    let total: f64 = sorted.iter().sum();
    let mut out = Vec::with_capacity(sorted.len() + 1);
    out.push(0.0);
    let mut acc = 0.0;
    for w in sorted {
        acc += w;
        out.push(if total > 0.0 { acc / total } else { 0.0 });
    }
    out
}

#[cfg(test)]
// Tests may unwrap: a panic IS the failure report here.
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn empty_cdf() {
        let cdf = Cdf::from_samples(vec![]);
        assert!(cdf.is_empty());
        assert_eq!(cdf.fraction_at_or_below(10), 0.0);
        assert_eq!(cdf.quantile(0.5), 0);
    }

    #[test]
    fn basic_fractions() {
        let cdf = Cdf::from_values([1, 2, 3, 4]);
        assert!((cdf.fraction_at_or_below(0) - 0.0).abs() < 1e-9);
        assert!((cdf.fraction_at_or_below(2) - 0.5).abs() < 1e-9);
        assert!((cdf.fraction_at_or_below(4) - 1.0).abs() < 1e-9);
        assert!((cdf.fraction_at_or_below(100) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn duplicates_coalesce() {
        let cdf = Cdf::from_values([5, 5, 5, 10]);
        assert!((cdf.fraction_at_or_below(5) - 0.75).abs() < 1e-9);
        assert_eq!(cdf.iter().count(), 2);
    }

    #[test]
    fn quantile_inverts_fraction() {
        let cdf = Cdf::from_values(1..=100);
        for q in [0.01, 0.25, 0.5, 0.75, 0.99, 1.0] {
            let v = cdf.quantile(q);
            assert!(cdf.fraction_at_or_below(v) >= q - 1e-9);
        }
    }

    #[test]
    fn weighted_quantile() {
        let cdf = Cdf::from_samples(vec![(1, 9.0), (100, 1.0)]);
        assert_eq!(cdf.quantile(0.5), 1);
        assert_eq!(cdf.quantile(0.95), 100);
    }

    #[test]
    fn top_n_coverage_shape() {
        // One dominant item and many small ones: steep then flat.
        let mut weights = vec![100.0];
        weights.extend(std::iter::repeat_n(1.0, 100));
        let cov = top_n_coverage(&weights);
        assert_eq!(cov[0], 0.0);
        assert!((cov[1] - 0.5).abs() < 1e-9);
        assert!((cov.last().unwrap() - 1.0).abs() < 1e-9);
        // Monotone non-decreasing.
        assert!(cov.windows(2).all(|w| w[0] <= w[1] + 1e-12));
    }

    #[test]
    fn top_n_ignores_zero_weights() {
        let cov = top_n_coverage(&[0.0, 2.0, 0.0, 2.0]);
        assert_eq!(cov.len(), 3);
        assert!((cov[1] - 0.5).abs() < 1e-9);
    }
}
