//! Time-indexed sample series.
//!
//! Used for the paper's Figure 9a (worker-thread count over 48 hours) and for
//! longitudinal memory-usage traces during A/B experiments.

/// A series of `(time_ns, value)` samples with non-decreasing timestamps.
///
/// # Example
///
/// ```
/// use wsc_telemetry::timeseries::TimeSeries;
///
/// let mut ts = TimeSeries::new("threads");
/// ts.push(0, 10.0);
/// ts.push(1_000_000_000, 14.0);
/// assert_eq!(ts.len(), 2);
/// assert!((ts.mean().unwrap() - 12.0).abs() < 1e-9);
/// ```
#[derive(Clone, Debug)]
pub struct TimeSeries {
    name: String,
    times: Vec<u64>,
    values: Vec<f64>,
}

impl TimeSeries {
    /// Creates an empty series with a descriptive name.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            times: Vec::new(),
            values: Vec::new(),
        }
    }

    /// The series name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Appends a sample.
    ///
    /// # Panics
    ///
    /// Panics if `time_ns` is smaller than the previous sample's timestamp.
    pub fn push(&mut self, time_ns: u64, value: f64) {
        if let Some(&last) = self.times.last() {
            assert!(time_ns >= last, "timestamps must be non-decreasing");
        }
        self.times.push(time_ns);
        self.values.push(value);
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.times.len()
    }

    /// Is the series empty?
    pub fn is_empty(&self) -> bool {
        self.times.is_empty()
    }

    /// Mean of the sampled values, or `None` if empty.
    pub fn mean(&self) -> Option<f64> {
        crate::stats::mean(&self.values)
    }

    /// Minimum sampled value, or `None` if empty.
    pub fn min(&self) -> Option<f64> {
        self.values.iter().copied().reduce(f64::min)
    }

    /// Maximum sampled value, or `None` if empty.
    pub fn max(&self) -> Option<f64> {
        self.values.iter().copied().reduce(f64::max)
    }

    /// Value of the most recent sample at or before `time_ns`, or `None` if
    /// the series starts later.
    pub fn value_at(&self, time_ns: u64) -> Option<f64> {
        let idx = self.times.partition_point(|&t| t <= time_ns);
        (idx > 0).then(|| self.values[idx - 1])
    }

    /// Iterates `(time_ns, value)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (u64, f64)> + '_ {
        self.times.iter().copied().zip(self.values.iter().copied())
    }

    /// Downsamples the series into `buckets` equal time windows, averaging
    /// values inside each window. Empty windows carry the previous value
    /// forward (or 0 before the first sample). Returns an empty vector when
    /// the series is empty or `buckets == 0`.
    pub fn resample(&self, buckets: usize) -> Vec<(u64, f64)> {
        if self.is_empty() || buckets == 0 {
            return Vec::new();
        }
        let start = self.times[0];
        let end = *self.times.last().expect("non-empty");
        let span = (end - start).max(1);
        let width = (span as f64 / buckets as f64).max(1.0);
        let mut out = Vec::with_capacity(buckets);
        let mut last = self.values[0];
        for b in 0..buckets {
            let lo = start + (b as f64 * width) as u64;
            let hi = start + ((b + 1) as f64 * width) as u64;
            let i0 = self.times.partition_point(|&t| t < lo);
            let i1 = self.times.partition_point(|&t| t < hi);
            if i1 > i0 {
                let m: f64 = self.values[i0..i1].iter().sum::<f64>() / (i1 - i0) as f64;
                last = m;
            }
            out.push((lo, last));
        }
        out
    }
}

#[cfg(test)]
// Tests may unwrap: a panic IS the failure report here.
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn push_and_query() {
        let mut ts = TimeSeries::new("x");
        ts.push(10, 1.0);
        ts.push(20, 2.0);
        ts.push(20, 3.0); // equal timestamps allowed
        assert_eq!(ts.len(), 3);
        assert_eq!(ts.value_at(5), None);
        assert_eq!(ts.value_at(10), Some(1.0));
        assert_eq!(ts.value_at(25), Some(3.0));
    }

    #[test]
    #[should_panic(expected = "non-decreasing")]
    fn rejects_time_travel() {
        let mut ts = TimeSeries::new("x");
        ts.push(10, 1.0);
        ts.push(5, 2.0);
    }

    #[test]
    fn stats() {
        let mut ts = TimeSeries::new("x");
        for (t, v) in [(0u64, 1.0), (1, 5.0), (2, 3.0)] {
            ts.push(t, v);
        }
        assert_eq!(ts.min(), Some(1.0));
        assert_eq!(ts.max(), Some(5.0));
        assert!((ts.mean().unwrap() - 3.0).abs() < 1e-9);
    }

    #[test]
    fn resample_preserves_levels() {
        let mut ts = TimeSeries::new("x");
        for t in 0..100u64 {
            ts.push(t, if t < 50 { 10.0 } else { 20.0 });
        }
        let rs = ts.resample(10);
        assert_eq!(rs.len(), 10);
        assert!((rs[0].1 - 10.0).abs() < 1e-9);
        assert!((rs[9].1 - 20.0).abs() < 1e-9);
    }

    #[test]
    fn resample_empty() {
        let ts = TimeSeries::new("x");
        assert!(ts.resample(10).is_empty());
    }
}
