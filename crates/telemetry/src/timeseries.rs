//! Time-indexed sample series.
//!
//! Used for the paper's Figure 9a (worker-thread count over 48 hours) and for
//! longitudinal memory-usage traces during A/B experiments.

/// A series of `(time_ns, value)` samples with non-decreasing timestamps.
///
/// # Example
///
/// ```
/// use wsc_telemetry::timeseries::TimeSeries;
///
/// let mut ts = TimeSeries::new("threads");
/// ts.push(0, 10.0);
/// ts.push(1_000_000_000, 14.0);
/// assert_eq!(ts.len(), 2);
/// assert!((ts.mean().unwrap() - 12.0).abs() < 1e-9);
/// ```
#[derive(Clone, Debug)]
pub struct TimeSeries {
    name: String,
    times: Vec<u64>,
    values: Vec<f64>,
}

impl TimeSeries {
    /// Creates an empty series with a descriptive name.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            times: Vec::new(),
            values: Vec::new(),
        }
    }

    /// The series name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Appends a sample.
    ///
    /// # Panics
    ///
    /// Panics if `time_ns` is smaller than the previous sample's timestamp.
    pub fn push(&mut self, time_ns: u64, value: f64) {
        if let Some(&last) = self.times.last() {
            assert!(time_ns >= last, "timestamps must be non-decreasing");
        }
        self.times.push(time_ns);
        self.values.push(value);
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.times.len()
    }

    /// Is the series empty?
    pub fn is_empty(&self) -> bool {
        self.times.is_empty()
    }

    /// Mean of the sampled values, or `None` if empty.
    pub fn mean(&self) -> Option<f64> {
        crate::stats::mean(&self.values)
    }

    /// Minimum sampled value, or `None` if empty.
    pub fn min(&self) -> Option<f64> {
        self.values.iter().copied().reduce(f64::min)
    }

    /// Maximum sampled value, or `None` if empty.
    pub fn max(&self) -> Option<f64> {
        self.values.iter().copied().reduce(f64::max)
    }

    /// Value of the most recent sample at or before `time_ns`, or `None` if
    /// the series starts later.
    pub fn value_at(&self, time_ns: u64) -> Option<f64> {
        let idx = self.times.partition_point(|&t| t <= time_ns);
        (idx > 0).then(|| self.values[idx - 1])
    }

    /// Iterates `(time_ns, value)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (u64, f64)> + '_ {
        self.times.iter().copied().zip(self.values.iter().copied())
    }

    /// Merges `other` into this series, interleaving samples by timestamp.
    ///
    /// The two series may have unequal lengths and disjoint, nested, or
    /// overlapping time ranges; the result is the sorted union of both
    /// sample sets. On equal timestamps, `self`'s samples order before
    /// `other`'s (stable), so merging is deterministic — the parallel
    /// experiment engine relies on that when it folds per-cell telemetry
    /// in canonical task order.
    pub fn merge(&mut self, other: &TimeSeries) {
        if other.is_empty() {
            return;
        }
        // Append fast path: when `other` starts at or after our last sample
        // (the common case when cells are merged in canonical time order),
        // extend in place instead of rebuilding both vectors. This is what
        // keeps repeated merges from churning one fresh allocation pair per
        // cell.
        if self.times.last().is_none_or(|&last| other.times[0] >= last) {
            self.times.reserve(other.len());
            self.values.reserve(other.len());
            self.times.extend_from_slice(&other.times);
            self.values.extend_from_slice(&other.values);
            return;
        }
        let n = self.len() + other.len();
        let mut times = Vec::with_capacity(n);
        let mut values = Vec::with_capacity(n);
        let (mut i, mut j) = (0usize, 0usize);
        while i < self.times.len() && j < other.times.len() {
            if self.times[i] <= other.times[j] {
                times.push(self.times[i]);
                values.push(self.values[i]);
                i += 1;
            } else {
                times.push(other.times[j]);
                values.push(other.values[j]);
                j += 1;
            }
        }
        times.extend_from_slice(&self.times[i..]);
        values.extend_from_slice(&self.values[i..]);
        times.extend_from_slice(&other.times[j..]);
        values.extend_from_slice(&other.values[j..]);
        self.times = times;
        self.values = values;
    }

    /// Downsamples the series into `buckets` equal time windows, averaging
    /// values inside each window. Empty windows carry the previous value
    /// forward (or 0 before the first sample). Returns an empty vector when
    /// the series is empty or `buckets == 0`.
    pub fn resample(&self, buckets: usize) -> Vec<(u64, f64)> {
        if self.is_empty() || buckets == 0 {
            return Vec::new();
        }
        let start = self.times[0];
        let end = *self.times.last().expect("non-empty");
        let span = (end - start).max(1);
        let width = (span as f64 / buckets as f64).max(1.0);
        let mut out = Vec::with_capacity(buckets);
        let mut last = self.values[0];
        for b in 0..buckets {
            let lo = start + (b as f64 * width) as u64;
            let i0 = self.times.partition_point(|&t| t < lo);
            // The final bucket is closed on the right: with an open bound
            // the samples at exactly `end` would fall past every bucket
            // and be dropped from the resample.
            let i1 = if b + 1 == buckets {
                self.times.len()
            } else {
                let hi = start + ((b + 1) as f64 * width) as u64;
                self.times.partition_point(|&t| t < hi)
            };
            if i1 > i0 {
                let m: f64 = self.values[i0..i1].iter().sum::<f64>() / (i1 - i0) as f64;
                last = m;
            }
            out.push((lo, last));
        }
        out
    }
}

#[cfg(test)]
// Tests may unwrap: a panic IS the failure report here.
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn push_and_query() {
        let mut ts = TimeSeries::new("x");
        ts.push(10, 1.0);
        ts.push(20, 2.0);
        ts.push(20, 3.0); // equal timestamps allowed
        assert_eq!(ts.len(), 3);
        assert_eq!(ts.value_at(5), None);
        assert_eq!(ts.value_at(10), Some(1.0));
        assert_eq!(ts.value_at(25), Some(3.0));
    }

    #[test]
    #[should_panic(expected = "non-decreasing")]
    fn rejects_time_travel() {
        let mut ts = TimeSeries::new("x");
        ts.push(10, 1.0);
        ts.push(5, 2.0);
    }

    #[test]
    fn stats() {
        let mut ts = TimeSeries::new("x");
        for (t, v) in [(0u64, 1.0), (1, 5.0), (2, 3.0)] {
            ts.push(t, v);
        }
        assert_eq!(ts.min(), Some(1.0));
        assert_eq!(ts.max(), Some(5.0));
        assert!((ts.mean().unwrap() - 3.0).abs() < 1e-9);
    }

    #[test]
    fn resample_preserves_levels() {
        let mut ts = TimeSeries::new("x");
        for t in 0..100u64 {
            ts.push(t, if t < 50 { 10.0 } else { 20.0 });
        }
        let rs = ts.resample(10);
        assert_eq!(rs.len(), 10);
        assert!((rs[0].1 - 10.0).abs() < 1e-9);
        assert!((rs[9].1 - 20.0).abs() < 1e-9);
    }

    #[test]
    fn resample_empty() {
        let ts = TimeSeries::new("x");
        assert!(ts.resample(10).is_empty());
        assert_eq!(ts.min(), None);
        assert_eq!(ts.mean(), None);
        assert_eq!(ts.max(), None);
    }

    #[test]
    fn resample_zero_buckets() {
        let mut ts = TimeSeries::new("x");
        ts.push(0, 1.0);
        assert!(ts.resample(0).is_empty());
    }

    #[test]
    fn resample_single_sample() {
        let mut ts = TimeSeries::new("x");
        ts.push(1_000, 7.5);
        let rs = ts.resample(4);
        assert_eq!(rs.len(), 4);
        // The lone sample lands in the first bucket and carries forward.
        for &(_, v) in &rs {
            assert!((v - 7.5).abs() < 1e-12);
        }
        assert_eq!(ts.min(), Some(7.5));
        assert_eq!(ts.max(), Some(7.5));
        assert!((ts.mean().unwrap() - 7.5).abs() < 1e-12);
    }

    #[test]
    fn resample_includes_final_sample() {
        // Regression: the last bucket's right bound used to be open, so a
        // level change at exactly t == end was silently dropped.
        let mut ts = TimeSeries::new("x");
        for t in 0..10u64 {
            ts.push(t, 1.0);
        }
        ts.push(10, 100.0);
        let rs = ts.resample(5);
        assert_eq!(rs.len(), 5);
        let last = rs.last().unwrap().1;
        assert!(last > 1.0, "final sample included in last bucket: {last}");
    }

    #[test]
    fn resample_bucket_count_exceeds_samples() {
        let mut ts = TimeSeries::new("x");
        ts.push(0, 1.0);
        ts.push(100, 3.0);
        let rs = ts.resample(10);
        assert_eq!(rs.len(), 10);
        assert!((rs[0].1 - 1.0).abs() < 1e-12);
        assert!((rs[9].1 - 3.0).abs() < 1e-12);
        // Empty middle windows carry the previous level forward.
        assert!((rs[5].1 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn merge_unequal_lengths_interleaves_sorted() {
        let mut a = TimeSeries::new("a");
        for (t, v) in [(0u64, 1.0), (10, 2.0), (20, 3.0), (30, 4.0)] {
            a.push(t, v);
        }
        let mut b = TimeSeries::new("b");
        b.push(15, 99.0);
        a.merge(&b);
        assert_eq!(a.len(), 5);
        let times: Vec<u64> = a.iter().map(|(t, _)| t).collect();
        assert_eq!(times, vec![0, 10, 15, 20, 30]);
        assert_eq!(a.value_at(15), Some(99.0));
        // Merged series still accepts pushes at/after its new end.
        a.push(30, 5.0);
        assert_eq!(a.len(), 6);
    }

    #[test]
    fn merge_with_empty_is_identity_both_ways() {
        let mut a = TimeSeries::new("a");
        a.push(5, 1.0);
        let empty = TimeSeries::new("e");
        a.merge(&empty);
        assert_eq!(a.len(), 1);
        let mut e = TimeSeries::new("e");
        e.merge(&a);
        assert_eq!(e.len(), 1);
        assert_eq!(e.value_at(5), Some(1.0));
    }

    #[test]
    fn merge_is_stable_on_equal_timestamps() {
        let mut a = TimeSeries::new("a");
        a.push(10, 1.0);
        let mut b = TimeSeries::new("b");
        b.push(10, 2.0);
        a.merge(&b);
        let vals: Vec<f64> = a.iter().map(|(_, v)| v).collect();
        assert_eq!(vals, vec![1.0, 2.0], "self's sample orders first");
    }

    #[test]
    fn merge_disjoint_ranges_concatenates() {
        let mut early = TimeSeries::new("early");
        early.push(0, 1.0);
        early.push(1, 2.0);
        let mut late = TimeSeries::new("late");
        late.push(100, 3.0);
        late.push(101, 4.0);
        // Merging the later range into the earlier works...
        let mut a = early.clone();
        a.merge(&late);
        assert_eq!(a.len(), 4);
        // ...and merging the earlier into the later re-sorts, which a
        // sequence of push() calls would reject.
        let mut b = late;
        b.merge(&early);
        let times: Vec<u64> = b.iter().map(|(t, _)| t).collect();
        assert_eq!(times, vec![0, 1, 100, 101]);
    }
}
