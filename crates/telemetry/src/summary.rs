//! Constant-size, exactly-mergeable metric summaries for streaming fleet
//! aggregation.
//!
//! The fleet engine folds 10⁵+ per-cell measurements online instead of
//! collecting them, so the accumulator it folds into must be (a) constant
//! size and (b) *exactly* associative and commutative under merge — any
//! partition of the cells across worker threads or shard processes must
//! reduce to the same bytes. Floating-point addition is neither, so every
//! accumulating field here is an integer:
//!
//! * values are quantized once, at record time, to signed fixed-point with
//!   [`Q_FRAC_BITS`] fraction bits (resolution 2⁻³² ≈ 2.3e-10),
//! * sums and weighted sums accumulate in `i128` (no overflow for any
//!   realistic fleet: |value| < 2⁴⁷, weight ≤ 1, 10⁸ cells still fit),
//! * min/max and log₂-histogram slots are order-independent by
//!   construction.
//!
//! Integer arithmetic is associative and commutative, so
//! `merge(a, merge(b, c)) == merge(merge(a, b), c)` holds *bit-for-bit*,
//! which is what lets `--threads N` and `--shards P` reproduce the serial
//! bytes (see `wsc_parallel`'s fold contract).
//!
//! [`BucketSeries`] applies the same idea to the longitudinal
//! resident-bytes trace: each cell's samples land in a fixed number of
//! normalized-time buckets, accumulating integer sums and counts, so the
//! fleet memory curve is O(1) per arm instead of O(samples × cells).

use crate::timeseries::TimeSeries;

/// Fixed-point fraction bits used by [`quantize`] (resolution 2⁻³²).
pub const Q_FRAC_BITS: u32 = 32;

/// Log₂-histogram slots: bit lengths 0..=95 of the quantized magnitude,
/// covering values up to 2⁶³ with fraction resolution intact.
pub const SUMMARY_HIST_SLOTS: usize = 96;

/// Normalized-time buckets in a [`BucketSeries`].
pub const SERIES_BUCKETS: usize = 64;

/// Quantizes a metric value to signed fixed-point (round-half-away), the
/// one lossy step in the pipeline. Everything after this is exact integer
/// arithmetic. Non-finite values clamp to the representable range (NaN
/// records as 0 — the driver never produces one, but a poisoned cell must
/// not poison the fold).
pub fn quantize(value: f64) -> i64 {
    let scaled = value * (1u64 << Q_FRAC_BITS) as f64;
    if scaled.is_nan() {
        0
    } else if scaled >= i64::MAX as f64 {
        i64::MAX
    } else if scaled <= i64::MIN as f64 {
        i64::MIN
    } else {
        scaled.round() as i64
    }
}

/// Inverse of [`quantize`] (to the nearest representable f64).
pub fn dequantize(q: i128) -> f64 {
    q as f64 / (1u64 << Q_FRAC_BITS) as f64
}

/// Streaming summary of one metric across fleet cells: count, sum, min,
/// max, a log₂ histogram, and cycle-weighted sums for the fleet aggregate.
/// Constant size; merge is exact (see module docs).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MetricSummary {
    count: u64,
    /// Σ qᵢ (unweighted, fixed-point).
    sum_q: i128,
    /// Σ wᵢ·qᵢ where wᵢ is the cell's quantized weight.
    wsum_q: i128,
    /// Σ wᵢ (quantized weights).
    weight_q: u128,
    min_q: i64,
    max_q: i64,
    /// Count per bit-length of the quantized magnitude.
    hist: [u64; SUMMARY_HIST_SLOTS],
}

impl Default for MetricSummary {
    fn default() -> Self {
        Self::new()
    }
}

impl MetricSummary {
    /// An empty summary (the fold identity: `merge(new(), x) == x`).
    pub fn new() -> Self {
        Self {
            count: 0,
            sum_q: 0,
            wsum_q: 0,
            weight_q: 0,
            min_q: i64::MAX,
            max_q: i64::MIN,
            hist: [0; SUMMARY_HIST_SLOTS],
        }
    }

    /// Records one cell's value with its quantized cycle weight (see
    /// [`quantize_weight`]).
    pub fn record(&mut self, value: f64, weight_q: u64) {
        let q = quantize(value);
        self.count += 1;
        self.sum_q += i128::from(q);
        self.wsum_q += i128::from(q) * i128::from(weight_q);
        self.weight_q += u128::from(weight_q);
        self.min_q = self.min_q.min(q);
        self.max_q = self.max_q.max(q);
        self.hist[Self::slot_of(q)] += 1;
    }

    /// The histogram slot (bit length of the magnitude, saturated).
    fn slot_of(q: i64) -> usize {
        let mag = q.unsigned_abs().max(1);
        ((64 - mag.leading_zeros()) as usize - 1).min(SUMMARY_HIST_SLOTS - 1)
    }

    /// Folds `other` in. Exactly associative and commutative.
    pub fn merge(&mut self, other: &MetricSummary) {
        self.count += other.count;
        self.sum_q += other.sum_q;
        self.wsum_q += other.wsum_q;
        self.weight_q += other.weight_q;
        self.min_q = self.min_q.min(other.min_q);
        self.max_q = self.max_q.max(other.max_q);
        for (a, b) in self.hist.iter_mut().zip(other.hist.iter()) {
            *a += b;
        }
    }

    /// Cells recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Unweighted mean, or `None` if empty.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| dequantize(self.sum_q) / self.count as f64)
    }

    /// Cycle-weighted mean (the fleet aggregate), or `None` if no weight.
    pub fn weighted_mean(&self) -> Option<f64> {
        if self.weight_q == 0 {
            return None;
        }
        // wsum_q carries 2·Q_FRAC_BITS fraction bits (weight × value),
        // weight_q carries Q_FRAC_BITS, so the quotient is back at
        // Q_FRAC_BITS — divide in integer space, dequantize once.
        Some(dequantize(self.wsum_q / self.weight_q as i128))
    }

    /// Minimum recorded value, or `None` if empty.
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then(|| dequantize(i128::from(self.min_q)))
    }

    /// Maximum recorded value, or `None` if empty.
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then(|| dequantize(i128::from(self.max_q)))
    }

    /// Approximate quantile from the log₂ histogram: the lower bound of the
    /// slot containing rank `p·count` (dispersion checks, not precision).
    pub fn quantile(&self, p: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let rank = (p.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (slot, &c) in self.hist.iter().enumerate() {
            seen += c;
            if seen >= rank {
                // Slot s holds magnitudes with bit length s+1: lower bound 2^s.
                return Some(dequantize(1i128 << slot));
            }
        }
        self.max()
    }

    /// Serializes to the little-endian wire layout (process-shard payload).
    pub fn encode_into(&self, buf: &mut Vec<u8>) {
        buf.extend_from_slice(&self.count.to_le_bytes());
        buf.extend_from_slice(&self.sum_q.to_le_bytes());
        buf.extend_from_slice(&self.wsum_q.to_le_bytes());
        buf.extend_from_slice(&self.weight_q.to_le_bytes());
        buf.extend_from_slice(&self.min_q.to_le_bytes());
        buf.extend_from_slice(&self.max_q.to_le_bytes());
        for slot in &self.hist {
            buf.extend_from_slice(&slot.to_le_bytes());
        }
    }

    /// Deserializes from [`encode_into`](Self::encode_into) bytes,
    /// consuming them from the front of `buf`.
    ///
    /// # Errors
    ///
    /// Returns a description when `buf` is shorter than the wire layout.
    pub fn decode_from(buf: &mut &[u8]) -> Result<Self, String> {
        let mut s = Self::new();
        s.count = take_u64(buf)?;
        s.sum_q = take_i128(buf)?;
        s.wsum_q = take_i128(buf)?;
        s.weight_q = take_u128(buf)?;
        s.min_q = take_i64(buf)?;
        s.max_q = take_i64(buf)?;
        for slot in &mut s.hist {
            *slot = take_u64(buf)?;
        }
        Ok(s)
    }
}

/// Quantizes a cell weight (a normalized fraction in `[0, 1]`) for
/// [`MetricSummary::record`]. Done once at sampling time so every
/// accumulation downstream is integer.
pub fn quantize_weight(w: f64) -> u64 {
    let scaled = w.clamp(0.0, 1.0) * (1u64 << Q_FRAC_BITS) as f64;
    scaled.round() as u64
}

/// Fixed-bucket longitudinal series: each recorded [`TimeSeries`] is folded
/// into [`SERIES_BUCKETS`] normalized-time buckets (integer value sums +
/// sample counts), so merging cells keeps the fleet memory curve at
/// constant size. Values are rounded to integers at record time (resident
/// *bytes* — already integral).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BucketSeries {
    counts: [u64; SERIES_BUCKETS],
    sums: [u128; SERIES_BUCKETS],
}

impl Default for BucketSeries {
    fn default() -> Self {
        Self::new()
    }
}

impl BucketSeries {
    /// An empty series (the fold identity).
    pub fn new() -> Self {
        Self {
            counts: [0; SERIES_BUCKETS],
            sums: [0; SERIES_BUCKETS],
        }
    }

    /// Folds one cell's samples in, normalizing sample times to the cell's
    /// own span so cells of different durations align bucket-for-bucket.
    pub fn record(&mut self, ts: &TimeSeries) {
        if ts.is_empty() {
            return;
        }
        let (t0, _) = ts.iter().next().expect("non-empty");
        let span = ts.iter().last().expect("non-empty").0.saturating_sub(t0);
        for (t, v) in ts.iter() {
            let b = if span == 0 {
                0
            } else {
                // Equal-width buckets over [t0, t_end]; the final sample
                // lands in the last bucket (closed on the right).
                (((t - t0) as u128 * SERIES_BUCKETS as u128 / (span as u128 + 1)) as usize)
                    .min(SERIES_BUCKETS - 1)
            };
            self.counts[b] += 1;
            self.sums[b] += v.max(0.0).round() as u128;
        }
    }

    /// Folds `other` in. Exactly associative and commutative.
    pub fn merge(&mut self, other: &BucketSeries) {
        for b in 0..SERIES_BUCKETS {
            self.counts[b] += other.counts[b];
            self.sums[b] += other.sums[b];
        }
    }

    /// Total samples folded in.
    pub fn samples(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Mean value in bucket `b`, or `None` if the bucket is empty.
    pub fn mean_at(&self, b: usize) -> Option<f64> {
        let c = *self.counts.get(b)?;
        (c > 0).then(|| self.sums[b] as f64 / c as f64)
    }

    /// Mean over all samples, or `None` if empty.
    pub fn mean(&self) -> Option<f64> {
        let n = self.samples();
        (n > 0).then(|| self.sums.iter().sum::<u128>() as f64 / n as f64)
    }

    /// Serializes to the little-endian wire layout.
    pub fn encode_into(&self, buf: &mut Vec<u8>) {
        for c in &self.counts {
            buf.extend_from_slice(&c.to_le_bytes());
        }
        for s in &self.sums {
            buf.extend_from_slice(&s.to_le_bytes());
        }
    }

    /// Deserializes, consuming from the front of `buf`.
    ///
    /// # Errors
    ///
    /// Returns a description when `buf` is shorter than the wire layout.
    pub fn decode_from(buf: &mut &[u8]) -> Result<Self, String> {
        let mut s = Self::new();
        for c in &mut s.counts {
            *c = take_u64(buf)?;
        }
        for v in &mut s.sums {
            *v = take_u128(buf)?;
        }
        Ok(s)
    }
}

/// Exact coverage accounting for a (possibly degraded) fold: how many
/// units were *planned* versus how many were actually *folded* into the
/// accumulator. A fault-tolerant fold that loses a span after exhausting
/// retries merges the surviving blocks and records the lost units here, so
/// a downstream report can state "97.3% of machines surveyed" instead of
/// silently presenting a partial aggregate as the whole population.
///
/// Merges like every other summary: integer adds, exactly associative and
/// commutative, so coverage reduces to identical bytes under any
/// partition.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Coverage {
    planned: u64,
    folded: u64,
}

impl Coverage {
    /// Empty coverage (nothing planned, nothing folded).
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one unit planned and folded (the healthy path).
    pub fn fold_one(&mut self) {
        self.planned += 1;
        self.folded += 1;
    }

    /// Records `n` units that were planned but lost (a span whose retries
    /// were exhausted).
    pub fn note_uncovered(&mut self, n: u64) {
        self.planned += n;
    }

    /// Folds `other` in. Exactly associative and commutative.
    pub fn merge(&mut self, other: &Coverage) {
        self.planned += other.planned;
        self.folded += other.folded;
    }

    /// Units planned (folded + lost).
    pub fn planned(&self) -> u64 {
        self.planned
    }

    /// Units actually folded into the accumulator.
    pub fn folded(&self) -> u64 {
        self.folded
    }

    /// Fraction of planned units folded, in `[0, 1]`. An empty fold is
    /// complete by convention (nothing was lost).
    pub fn fraction(&self) -> f64 {
        if self.planned == 0 {
            1.0
        } else {
            self.folded as f64 / self.planned as f64
        }
    }

    /// Did every planned unit fold?
    pub fn complete(&self) -> bool {
        self.folded == self.planned
    }

    /// Serializes to the little-endian wire layout.
    pub fn encode_into(&self, buf: &mut Vec<u8>) {
        buf.extend_from_slice(&self.planned.to_le_bytes());
        buf.extend_from_slice(&self.folded.to_le_bytes());
    }

    /// Deserializes, consuming from the front of `buf`.
    ///
    /// # Errors
    ///
    /// Returns a description when `buf` is shorter than the wire layout or
    /// claims more folded than planned units (a corrupt or hand-rolled
    /// payload — the healthy encoder can never produce it).
    pub fn decode_from(buf: &mut &[u8]) -> Result<Self, String> {
        let planned = take_u64(buf)?;
        let folded = take_u64(buf)?;
        if folded > planned {
            return Err(format!(
                "coverage claims {folded} folded of {planned} planned"
            ));
        }
        Ok(Self { planned, folded })
    }
}

fn take<const N: usize>(buf: &mut &[u8]) -> Result<[u8; N], String> {
    if buf.len() < N {
        return Err(format!(
            "summary payload truncated: need {N} bytes, have {}",
            buf.len()
        ));
    }
    let mut out = [0u8; N];
    out.copy_from_slice(&buf[..N]);
    *buf = &buf[N..];
    Ok(out)
}

fn take_u64(buf: &mut &[u8]) -> Result<u64, String> {
    take::<8>(buf).map(u64::from_le_bytes)
}

fn take_i64(buf: &mut &[u8]) -> Result<i64, String> {
    take::<8>(buf).map(i64::from_le_bytes)
}

fn take_u128(buf: &mut &[u8]) -> Result<u128, String> {
    take::<16>(buf).map(u128::from_le_bytes)
}

fn take_i128(buf: &mut &[u8]) -> Result<i128, String> {
    take::<16>(buf).map(i128::from_le_bytes)
}

#[cfg(test)]
// Tests may unwrap: a panic IS the failure report here.
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn merge_is_exactly_associative_and_commutative() {
        let mut rng = wsc_prng::SmallRng::seed_from_u64(11);
        let parts: Vec<MetricSummary> = (0..6)
            .map(|_| {
                let mut s = MetricSummary::new();
                for _ in 0..40 {
                    s.record(
                        rng.gen_range(-1.0e6..1.0e6),
                        quantize_weight(rng.gen::<f64>()),
                    );
                }
                s
            })
            .collect();
        // Left fold.
        let mut left = MetricSummary::new();
        for p in &parts {
            left.merge(p);
        }
        // Right-leaning tree, reversed order.
        let mut right = MetricSummary::new();
        for p in parts.iter().rev() {
            let mut pair = p.clone();
            pair.merge(&right);
            right = pair;
        }
        assert_eq!(left, right, "merge must be order-independent bit-for-bit");
    }

    #[test]
    fn mean_min_max_roundtrip() {
        let mut s = MetricSummary::new();
        for v in [1.0, 2.0, 3.0, 10.0] {
            s.record(v, quantize_weight(0.25));
        }
        assert_eq!(s.count(), 4);
        assert!((s.mean().unwrap() - 4.0).abs() < 1e-9);
        assert!((s.min().unwrap() - 1.0).abs() < 1e-9);
        assert!((s.max().unwrap() - 10.0).abs() < 1e-9);
        // Equal weights: weighted mean == unweighted mean.
        assert!((s.weighted_mean().unwrap() - 4.0).abs() < 1e-6);
    }

    #[test]
    fn weighted_mean_prefers_heavy_cells() {
        let mut s = MetricSummary::new();
        s.record(100.0, quantize_weight(0.9));
        s.record(0.0, quantize_weight(0.1));
        assert!((s.weighted_mean().unwrap() - 90.0).abs() < 1e-6);
    }

    #[test]
    fn quantile_tracks_magnitude() {
        let mut s = MetricSummary::new();
        for _ in 0..90 {
            s.record(1.0, 1);
        }
        for _ in 0..10 {
            s.record(1024.0, 1);
        }
        assert!(s.quantile(0.5).unwrap() <= 2.0);
        assert!(s.quantile(0.99).unwrap() >= 512.0);
    }

    #[test]
    fn quantization_resolution_holds_small_rates() {
        // dTLB miss rates are ~1e-4; the fixed point must hold ≥6
        // significant digits there.
        let mut s = MetricSummary::new();
        s.record(1.234567e-4, quantize_weight(1.0));
        assert!((s.mean().unwrap() - 1.234567e-4).abs() < 1e-9);
    }

    #[test]
    fn codec_roundtrip() {
        let mut s = MetricSummary::new();
        let mut rng = wsc_prng::SmallRng::seed_from_u64(3);
        for _ in 0..100 {
            s.record(
                rng.gen_range(-1.0e9..1.0e9),
                quantize_weight(rng.gen::<f64>()),
            );
        }
        let mut buf = Vec::new();
        s.encode_into(&mut buf);
        let mut rest = buf.as_slice();
        let back = MetricSummary::decode_from(&mut rest).unwrap();
        assert_eq!(s, back);
        assert!(rest.is_empty(), "decode consumes exactly the layout");
        // Truncation is an error, not a panic.
        let mut short = &buf[..buf.len() - 1];
        assert!(MetricSummary::decode_from(&mut short).is_err());
    }

    #[test]
    fn bucket_series_normalizes_time() {
        let mut fast = TimeSeries::new("fast");
        let mut slow = TimeSeries::new("slow");
        for i in 0..SERIES_BUCKETS as u64 {
            fast.push(i * 10, 100.0);
            slow.push(i * 1_000, 300.0);
        }
        let mut s = BucketSeries::new();
        s.record(&fast);
        s.record(&slow);
        assert_eq!(s.samples(), 2 * SERIES_BUCKETS as u64);
        // Both series span their own range, so every bucket holds one
        // sample from each and the mean is flat.
        for b in 0..SERIES_BUCKETS {
            assert_eq!(s.mean_at(b), Some(200.0), "bucket {b}");
        }
    }

    #[test]
    fn bucket_series_merge_matches_sequential_record() {
        let mut a = TimeSeries::new("a");
        let mut b = TimeSeries::new("b");
        for i in 0..100u64 {
            a.push(i * 7, (i * 3) as f64);
            b.push(i * 13, (i * 5) as f64);
        }
        let mut both = BucketSeries::new();
        both.record(&a);
        both.record(&b);
        let mut left = BucketSeries::new();
        left.record(&a);
        let mut right = BucketSeries::new();
        right.record(&b);
        left.merge(&right);
        assert_eq!(both, left);
        let mut buf = Vec::new();
        left.encode_into(&mut buf);
        let mut rest = buf.as_slice();
        assert_eq!(BucketSeries::decode_from(&mut rest).unwrap(), left);
    }

    #[test]
    fn empty_summary_is_merge_identity() {
        let mut s = MetricSummary::new();
        s.record(5.0, quantize_weight(0.5));
        let mut merged = MetricSummary::new();
        merged.merge(&s);
        assert_eq!(merged, s);
        assert_eq!(MetricSummary::new().mean(), None);
        assert_eq!(MetricSummary::new().weighted_mean(), None);
        assert_eq!(BucketSeries::new().mean(), None);
    }

    #[test]
    fn coverage_accounts_exactly() {
        let mut c = Coverage::new();
        assert!(c.complete());
        assert_eq!(c.fraction(), 1.0, "empty fold is complete by convention");
        for _ in 0..97 {
            c.fold_one();
        }
        c.note_uncovered(3);
        assert_eq!(c.planned(), 100);
        assert_eq!(c.folded(), 97);
        assert!(!c.complete());
        assert_eq!(c.fraction(), 0.97);
    }

    #[test]
    fn coverage_merge_is_partition_invariant() {
        let mut whole = Coverage::new();
        for _ in 0..10 {
            whole.fold_one();
        }
        whole.note_uncovered(5);
        let mut left = Coverage::new();
        for _ in 0..4 {
            left.fold_one();
        }
        let mut right = Coverage::new();
        for _ in 0..6 {
            right.fold_one();
        }
        right.note_uncovered(5);
        left.merge(&right);
        assert_eq!(left, whole);
    }

    #[test]
    fn coverage_codec_roundtrips_and_rejects_impossible_claims() {
        let mut c = Coverage::new();
        c.fold_one();
        c.fold_one();
        c.note_uncovered(1);
        let mut buf = Vec::new();
        c.encode_into(&mut buf);
        assert_eq!(buf.len(), 16);
        let mut rest = buf.as_slice();
        assert_eq!(Coverage::decode_from(&mut rest).unwrap(), c);
        assert!(rest.is_empty());
        // folded > planned can only come from corruption.
        let mut bad = Vec::new();
        bad.extend_from_slice(&1u64.to_le_bytes());
        bad.extend_from_slice(&2u64.to_le_bytes());
        assert!(Coverage::decode_from(&mut bad.as_slice()).is_err());
        assert!(Coverage::decode_from(&mut &buf[..7]).is_err(), "truncation");
    }
}
