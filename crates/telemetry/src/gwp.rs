//! Google-Wide-Profiling-style allocation sampling.
//!
//! Production TCMalloc samples one allocation per 2 MiB of allocated bytes
//! and records the call stack, object size, and (on free) lifetime. The paper
//! derives Figures 7 and 8 from exactly this sample stream. [`Sampler`]
//! implements the byte-threshold discipline; [`AllocationProfile`] aggregates
//! samples into the size and lifetime distributions the figures need.

use crate::histogram::{LogHistogram, MAX_EXP};

/// Default sampling period: one sampled allocation per 2 MiB allocated,
/// matching production TCMalloc ("TCMalloc samples an allocation request for
/// every 2 MB of memory allocations").
pub const DEFAULT_SAMPLE_PERIOD_BYTES: u64 = 2 << 20;

/// Deterministic byte-threshold sampler.
///
/// Accumulates allocated bytes and fires once per `period` bytes. A fired
/// sample statistically represents `period / size` allocations of that size,
/// which [`Sampler::sample_weight`] reports so that aggregated profiles are
/// unbiased.
///
/// Production uses an exponentially-distributed threshold to avoid phase
/// locking; the deterministic accumulator is equivalent in aggregate for the
/// distribution studies here and keeps replays bit-reproducible.
///
/// # Example
///
/// ```
/// use wsc_telemetry::gwp::Sampler;
///
/// let mut s = Sampler::new(1024);
/// assert!(!s.should_sample(512));
/// assert!(s.should_sample(512)); // crossed 1024 bytes
/// ```
#[derive(Clone, Debug)]
pub struct Sampler {
    period: u64,
    accumulated: u64,
}

impl Sampler {
    /// Creates a sampler firing once per `period_bytes` allocated.
    ///
    /// # Panics
    ///
    /// Panics if `period_bytes` is zero.
    pub fn new(period_bytes: u64) -> Self {
        assert!(period_bytes > 0, "sampling period must be positive");
        Self {
            period: period_bytes,
            accumulated: 0,
        }
    }

    /// Creates a sampler with the production default period (2 MiB).
    pub fn with_default_period() -> Self {
        Self::new(DEFAULT_SAMPLE_PERIOD_BYTES)
    }

    /// Accounts an allocation of `size` bytes; returns `true` when this
    /// allocation should be sampled.
    pub fn should_sample(&mut self, size: u64) -> bool {
        self.accumulated += size;
        if self.accumulated >= self.period {
            self.accumulated %= self.period;
            true
        } else {
            false
        }
    }

    /// Statistical weight of one sample of the given size: the number of
    /// same-sized allocations it represents.
    ///
    /// Allocations at least as large as the period are always sampled
    /// (`should_sample` fires on every period crossing), so their weight is
    /// exactly 1 — this keeps the byte-weighted profile unbiased for the
    /// huge-allocation tail of Figure 7.
    pub fn sample_weight(&self, size: u64) -> f64 {
        (self.period as f64 / size.max(1) as f64).max(1.0)
    }

    /// The configured period in bytes.
    pub fn period(&self) -> u64 {
        self.period
    }
}

/// One sampled allocation, completed by its observed lifetime on free.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Sample {
    /// Requested object size in bytes.
    pub size: u64,
    /// Allocation site identifier (stands in for the recorded call stack).
    pub site: u64,
    /// Allocation timestamp, ns.
    pub alloc_time_ns: u64,
    /// Statistical weight (allocations represented by this sample).
    pub weight: f64,
}

/// Aggregated allocation profile: the distributions behind Figures 7 and 8.
#[derive(Clone, Debug)]
pub struct AllocationProfile {
    /// Object-size distribution weighted by allocation count (Fig. 7 "Object
    /// Count" curve).
    pub size_by_count: LogHistogram,
    /// Object-size distribution weighted by bytes (Fig. 7 "Memory" curve).
    pub size_by_bytes: LogHistogram,
    /// Lifetime distribution per log2(size) bin, weighted by sampled
    /// allocation count (Fig. 8). Index = floor(log2(size)).
    lifetime_by_size_exp: Vec<LogHistogram>,
}

impl AllocationProfile {
    /// Creates an empty profile.
    pub fn new() -> Self {
        Self {
            size_by_count: LogHistogram::new(),
            size_by_bytes: LogHistogram::new(),
            lifetime_by_size_exp: (0..MAX_EXP).map(|_| LogHistogram::new()).collect(),
        }
    }

    fn size_exp(size: u64) -> usize {
        if size <= 1 {
            0
        } else {
            ((63 - size.leading_zeros()) as usize).min(MAX_EXP - 1)
        }
    }

    /// Records a sampled allocation (size only; call
    /// [`record_lifetime`](Self::record_lifetime) when it is freed).
    pub fn record_alloc(&mut self, sample: &Sample) {
        self.size_by_count.record(sample.size, sample.weight);
        self.size_by_bytes
            .record(sample.size, sample.weight * sample.size as f64);
    }

    /// Records the observed lifetime of a sampled allocation.
    pub fn record_lifetime(&mut self, size: u64, lifetime_ns: u64, weight: f64) {
        self.lifetime_by_size_exp[Self::size_exp(size)].record(lifetime_ns, weight);
    }

    /// Lifetime histogram for objects with `floor(log2(size)) == exp`.
    pub fn lifetime_for_size_exp(&self, exp: usize) -> &LogHistogram {
        &self.lifetime_by_size_exp[exp.min(MAX_EXP - 1)]
    }

    /// Iterates `(size_exp, histogram)` for non-empty lifetime bins.
    pub fn lifetime_bins(&self) -> impl Iterator<Item = (usize, &LogHistogram)> + '_ {
        self.lifetime_by_size_exp
            .iter()
            .enumerate()
            .filter(|(_, h)| h.count() > 0.0)
    }

    /// Merges another profile (e.g. from another machine) into this one.
    pub fn merge(&mut self, other: &AllocationProfile) {
        self.size_by_count.merge(&other.size_by_count);
        self.size_by_bytes.merge(&other.size_by_bytes);
        for (a, b) in self
            .lifetime_by_size_exp
            .iter_mut()
            .zip(&other.lifetime_by_size_exp)
        {
            a.merge(b);
        }
    }
}

impl Default for AllocationProfile {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
// Tests may unwrap: a panic IS the failure report here.
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn sampler_fires_once_per_period() {
        let mut s = Sampler::new(1000);
        let mut fired = 0;
        for _ in 0..100 {
            if s.should_sample(100) {
                fired += 1;
            }
        }
        assert_eq!(fired, 10);
    }

    #[test]
    fn sampler_large_alloc_always_fires() {
        let mut s = Sampler::new(1000);
        assert!(s.should_sample(10_000));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn sampler_rejects_zero_period() {
        let _ = Sampler::new(0);
    }

    #[test]
    fn sample_weight_inverse_to_size() {
        let s = Sampler::new(2 << 20);
        assert!(s.sample_weight(8) > s.sample_weight(1 << 20));
        assert!((s.sample_weight(2 << 20) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn profile_weighting_matches_fig7_shape() {
        // 100 sampled small allocations each stand for a full period of
        // bytes (2 MiB); 100 huge allocations are sampled with weight 1 and
        // carry their own bytes. Small dominate by count, huge by bytes.
        let mut p = AllocationProfile::new();
        let s = Sampler::new(2 << 20);
        for site in 0..100u64 {
            p.record_alloc(&Sample {
                size: 64,
                site,
                alloc_time_ns: 0,
                weight: s.sample_weight(64),
            });
            p.record_alloc(&Sample {
                size: 64 << 20,
                site,
                alloc_time_ns: 0,
                weight: s.sample_weight(64 << 20),
            });
        }
        assert!((s.sample_weight(64 << 20) - 1.0).abs() < 1e-12);
        assert!(p.size_by_count.fraction_below(1024) > 0.99);
        let by_bytes = p.size_by_bytes.fraction_below(1024);
        // 100 x 2 MiB vs 100 x 64 MiB: small objects carry ~3% of bytes.
        assert!(
            (by_bytes - 2.0 / 66.0).abs() < 0.01,
            "byte split {by_bytes}"
        );
    }

    #[test]
    fn lifetime_bins_by_size() {
        let mut p = AllocationProfile::new();
        p.record_lifetime(64, 1_000, 1.0); // small, short-lived
        p.record_lifetime(1 << 30, 86_400_000_000_000, 1.0); // huge, 1 day
        let small = p.lifetime_for_size_exp(6);
        let big = p.lifetime_for_size_exp(30);
        assert_eq!(small.count(), 1.0);
        assert_eq!(big.count(), 1.0);
        assert!(big.quantile(0.5) > small.quantile(0.5));
        assert_eq!(p.lifetime_bins().count(), 2);
    }

    #[test]
    fn profile_merge() {
        let mut a = AllocationProfile::new();
        let mut b = AllocationProfile::new();
        a.record_lifetime(64, 10, 1.0);
        b.record_lifetime(64, 10, 2.0);
        a.merge(&b);
        assert_eq!(a.lifetime_for_size_exp(6).count(), 3.0);
    }
}
