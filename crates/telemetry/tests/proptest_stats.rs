//! Property tests for the telemetry primitives.
//!
//! Deterministic seeded-loop properties (hermetic replacement for the
//! original proptest strategies).

use wsc_prng::SmallRng;
use wsc_telemetry::cdf::{top_n_coverage, Cdf};
use wsc_telemetry::histogram::LogHistogram;
use wsc_telemetry::stats::{pearson, spearman};
use wsc_telemetry::summary::{quantize_weight, MetricSummary};
use wsc_telemetry::timeseries::TimeSeries;

fn vec_u64(
    rng: &mut SmallRng,
    range: std::ops::Range<u64>,
    len: std::ops::Range<usize>,
) -> Vec<u64> {
    let n = rng.gen_range(len);
    (0..n).map(|_| rng.gen_range(range.clone())).collect()
}

#[test]
fn histogram_quantiles_are_monotone() {
    for case in 0..128u64 {
        let mut rng = SmallRng::seed_from_u64(0x7E10 + case);
        let values = vec_u64(&mut rng, 1..(1 << 40), 1..300);
        let mut h = LogHistogram::new();
        for v in &values {
            h.record(*v, 1.0);
        }
        let mut last = 0u64;
        for q in [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 1.0] {
            let cur = h.quantile(q);
            assert!(cur >= last, "quantile({q}) = {cur} < {last}");
            last = cur;
        }
        // Quantiles bracket the data (within bucket resolution).
        let min = *values.iter().min().expect("non-empty");
        let max = *values.iter().max().expect("non-empty");
        assert!(h.quantile(0.0) <= min);
        assert!(h.quantile(1.0) <= max);
        assert!(h.quantile(1.0) * 2 > max / 2);
    }
}

#[test]
fn histogram_fractions_partition() {
    for case in 0..128u64 {
        let mut rng = SmallRng::seed_from_u64(0x7E11 + case);
        let values = vec_u64(&mut rng, 1..(1 << 30), 1..200);
        let cut = rng.gen_range(1u64..(1 << 30));
        let mut h = LogHistogram::new();
        for v in &values {
            h.record(*v, 2.0);
        }
        let below = h.fraction_below(cut);
        let above = h.fraction_at_or_above(cut);
        assert!((below + above - 1.0).abs() < 1e-9);
        assert!((0.0..=1.0).contains(&below));
    }
}

#[test]
fn histogram_merge_is_additive() {
    for case in 0..128u64 {
        let mut rng = SmallRng::seed_from_u64(0x7E12 + case);
        let a = vec_u64(&mut rng, 1..(1 << 20), 1..100);
        let b = vec_u64(&mut rng, 1..(1 << 20), 1..100);
        let mut ha = LogHistogram::new();
        let mut hb = LogHistogram::new();
        let mut hall = LogHistogram::new();
        for v in &a {
            ha.record(*v, 1.0);
            hall.record(*v, 1.0);
        }
        for v in &b {
            hb.record(*v, 1.0);
            hall.record(*v, 1.0);
        }
        ha.merge(&hb);
        assert!((ha.count() - hall.count()).abs() < 1e-9);
        assert_eq!(ha.quantile(0.5), hall.quantile(0.5));
    }
}

#[test]
fn cdf_fraction_is_monotone() {
    for case in 0..128u64 {
        let mut rng = SmallRng::seed_from_u64(0x7E13 + case);
        let values = vec_u64(&mut rng, 0..10_000, 1..200);
        let cdf = Cdf::from_values(values);
        let mut last = 0.0;
        for x in (0..10_000).step_by(97) {
            let f = cdf.fraction_at_or_below(x);
            assert!(f >= last - 1e-12);
            assert!((0.0..=1.0).contains(&f));
            last = f;
        }
        assert!((cdf.fraction_at_or_below(10_000) - 1.0).abs() < 1e-9);
    }
}

#[test]
fn coverage_curve_is_monotone_and_complete() {
    for case in 0..128u64 {
        let mut rng = SmallRng::seed_from_u64(0x7E14 + case);
        let n = rng.gen_range(1usize..100);
        let weights: Vec<f64> = (0..n).map(|_| rng.gen_range(0.0f64..100.0)).collect();
        let cov = top_n_coverage(&weights);
        assert!(cov.windows(2).all(|w| w[0] <= w[1] + 1e-12));
        if weights.iter().any(|&w| w > 0.0) {
            let final_cov = cov.last().expect("non-empty coverage");
            assert!((final_cov - 1.0).abs() < 1e-9);
        }
    }
}

/// Reference merge: full sorted-union rebuild (the shape `merge` used for
/// every call before the append fast path existed).
fn naive_merge(a: &TimeSeries, b: &TimeSeries) -> Vec<(u64, f64)> {
    let mut out: Vec<(u64, f64, u8)> = a
        .iter()
        .map(|(t, v)| (t, v, 0u8))
        .chain(b.iter().map(|(t, v)| (t, v, 1u8)))
        .collect();
    // Stable on equal timestamps: `a` before `b`.
    out.sort_by_key(|&(t, _, src)| (t, src));
    out.into_iter().map(|(t, v, _)| (t, v)).collect()
}

#[test]
fn timeseries_merge_fast_path_matches_rebuild() {
    // The append fast path (unequal-length, in-order series — the fleet
    // fold's common case) must be byte-equivalent to the general
    // sorted-union rebuild, for every interleaving.
    for case in 0..128u64 {
        let mut rng = SmallRng::seed_from_u64(0x7E17 + case);
        let mut merged = TimeSeries::new("merged");
        let mut reference = TimeSeries::new("reference");
        let mut clock = 0u64;
        for _ in 0..rng.gen_range(1usize..12) {
            let mut cell = TimeSeries::new("cell");
            // Mostly in-order cells (append fast path), sometimes one that
            // rewinds (general path), with unequal lengths throughout.
            if rng.gen::<f64>() < 0.25 {
                clock = clock.saturating_sub(rng.gen_range(0u64..50));
            }
            for _ in 0..rng.gen_range(0usize..40) {
                clock += rng.gen_range(0u64..5);
                cell.push(clock, rng.gen_range(0.0f64..1e9));
            }
            let expect = naive_merge(&merged, &cell);
            merged.merge(&cell);
            assert_eq!(merged.iter().collect::<Vec<_>>(), expect, "case {case}");
            reference.merge(&cell);
        }
        assert_eq!(
            merged.iter().collect::<Vec<_>>(),
            reference.iter().collect::<Vec<_>>()
        );
    }
}

#[test]
fn metric_summary_merge_is_partition_invariant() {
    // Any partition of the records across summaries must fold to the same
    // bytes — the property the streaming fleet engine's thread/shard
    // determinism contract rests on.
    for case in 0..64u64 {
        let mut rng = SmallRng::seed_from_u64(0x7E18 + case);
        let records: Vec<(f64, u64)> = (0..rng.gen_range(1usize..200))
            .map(|_| {
                (
                    rng.gen_range(-1.0e8..1.0e8),
                    quantize_weight(rng.gen::<f64>()),
                )
            })
            .collect();
        let mut whole = MetricSummary::new();
        for &(v, w) in &records {
            whole.record(v, w);
        }
        let cut = rng.gen_range(0..=records.len());
        let mut left = MetricSummary::new();
        let mut right = MetricSummary::new();
        for &(v, w) in &records[..cut] {
            left.record(v, w);
        }
        for &(v, w) in &records[cut..] {
            right.record(v, w);
        }
        // Merge in *reverse* order: commutativity must hold exactly.
        right.merge(&left);
        assert_eq!(whole, right, "case {case} cut {cut}");
    }
}

#[test]
fn correlations_are_bounded() {
    for case in 0..128u64 {
        let mut rng = SmallRng::seed_from_u64(0x7E15 + case);
        let n = rng.gen_range(3usize..100);
        let xs: Vec<f64> = (0..n).map(|_| rng.gen_range(-100.0f64..100.0)).collect();
        let ys: Vec<f64> = (0..n).map(|_| rng.gen_range(-100.0f64..100.0)).collect();
        if let Some(r) = pearson(&xs, &ys) {
            assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&r));
        }
        if let Some(r) = spearman(&xs, &ys) {
            assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&r));
        }
    }
}

#[test]
fn spearman_detects_any_monotone_map() {
    for case in 0..128u64 {
        let mut rng = SmallRng::seed_from_u64(0x7E16 + case);
        let n = rng.gen_range(3usize..50);
        let mut xs: Vec<f64> = (0..n).map(|_| rng.gen_range(-1000.0f64..1000.0)).collect();
        // Deduplicate to get a strictly monotone relation.
        xs.sort_by(|a, b| a.partial_cmp(b).expect("finite floats"));
        xs.dedup();
        if xs.len() < 3 {
            continue;
        }
        let ys: Vec<f64> = xs.iter().map(|x| x.powi(3) + 2.0 * x).collect();
        let r = spearman(&xs, &ys).expect("enough points");
        assert!((r - 1.0).abs() < 1e-9);
    }
}
