//! Property tests for the telemetry primitives.

use proptest::prelude::*;
use wsc_telemetry::cdf::{top_n_coverage, Cdf};
use wsc_telemetry::histogram::LogHistogram;
use wsc_telemetry::stats::{pearson, spearman};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn histogram_quantiles_are_monotone(values in prop::collection::vec(1u64..(1 << 40), 1..300)) {
        let mut h = LogHistogram::new();
        for v in &values {
            h.record(*v, 1.0);
        }
        let mut last = 0u64;
        for q in [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 1.0] {
            let cur = h.quantile(q);
            prop_assert!(cur >= last, "quantile({q}) = {cur} < {last}");
            last = cur;
        }
        // Quantiles bracket the data (within bucket resolution).
        let min = *values.iter().min().unwrap();
        let max = *values.iter().max().unwrap();
        prop_assert!(h.quantile(0.0) <= min);
        prop_assert!(h.quantile(1.0) <= max);
        prop_assert!(h.quantile(1.0) * 2 > max / 2);
    }

    #[test]
    fn histogram_fractions_partition(values in prop::collection::vec(1u64..(1 << 30), 1..200), cut in 1u64..(1 << 30)) {
        let mut h = LogHistogram::new();
        for v in &values {
            h.record(*v, 2.0);
        }
        let below = h.fraction_below(cut);
        let above = h.fraction_at_or_above(cut);
        prop_assert!((below + above - 1.0).abs() < 1e-9);
        prop_assert!((0.0..=1.0).contains(&below));
    }

    #[test]
    fn histogram_merge_is_additive(a in prop::collection::vec(1u64..(1 << 20), 1..100),
                                   b in prop::collection::vec(1u64..(1 << 20), 1..100)) {
        let mut ha = LogHistogram::new();
        let mut hb = LogHistogram::new();
        let mut hall = LogHistogram::new();
        for v in &a { ha.record(*v, 1.0); hall.record(*v, 1.0); }
        for v in &b { hb.record(*v, 1.0); hall.record(*v, 1.0); }
        ha.merge(&hb);
        prop_assert!((ha.count() - hall.count()).abs() < 1e-9);
        prop_assert_eq!(ha.quantile(0.5), hall.quantile(0.5));
    }

    #[test]
    fn cdf_fraction_is_monotone(values in prop::collection::vec(0u64..10_000, 1..200)) {
        let cdf = Cdf::from_values(values);
        let mut last = 0.0;
        for x in (0..10_000).step_by(97) {
            let f = cdf.fraction_at_or_below(x);
            prop_assert!(f >= last - 1e-12);
            prop_assert!((0.0..=1.0).contains(&f));
            last = f;
        }
        prop_assert!((cdf.fraction_at_or_below(10_000) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn coverage_curve_is_monotone_and_complete(weights in prop::collection::vec(0.0f64..100.0, 1..100)) {
        let cov = top_n_coverage(&weights);
        prop_assert!(cov.windows(2).all(|w| w[0] <= w[1] + 1e-12));
        if weights.iter().any(|&w| w > 0.0) {
            prop_assert!((cov.last().unwrap() - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn correlations_are_bounded(pairs in prop::collection::vec((-100.0f64..100.0, -100.0f64..100.0), 3..100)) {
        let xs: Vec<f64> = pairs.iter().map(|p| p.0).collect();
        let ys: Vec<f64> = pairs.iter().map(|p| p.1).collect();
        if let Some(r) = pearson(&xs, &ys) {
            prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&r));
        }
        if let Some(r) = spearman(&xs, &ys) {
            prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&r));
        }
    }

    #[test]
    fn spearman_detects_any_monotone_map(xs in prop::collection::vec(-1000.0f64..1000.0, 3..50)) {
        // Deduplicate to get a strictly monotone relation.
        let mut xs = xs;
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        xs.dedup();
        prop_assume!(xs.len() >= 3);
        let ys: Vec<f64> = xs.iter().map(|x| x.powi(3) + 2.0 * x).collect();
        let r = spearman(&xs, &ys).unwrap();
        prop_assert!((r - 1.0).abs() < 1e-9);
    }
}
