//! Property tests for the allocator's component data structures.
//!
//! Deterministic seeded-loop properties (hermetic replacement for the
//! original proptest strategies).

use wsc_prng::SmallRng;
use wsc_sim_hw::cost::CostModel;
use wsc_sim_os::clock::Clock;
use wsc_tcmalloc::config::TcmallocConfig;
use wsc_tcmalloc::events::EventBus;
use wsc_tcmalloc::pageheap::{PageHeap, PageHeapConfig};
use wsc_tcmalloc::size_class::{SizeClassTable, MAX_SMALL_SIZE};
use wsc_tcmalloc::span::{Span, SpanRegistry};

// --- size classes ---

#[test]
fn size_class_roundup_is_sound() {
    let t = SizeClassTable::production();
    for case in 0..256u64 {
        let mut rng = SmallRng::seed_from_u64(0xC0A0 + case);
        // Half the cases sweep small requests densely; half range freely.
        let req = if case % 2 == 0 {
            rng.gen_range(0u64..=64)
        } else {
            rng.gen_range(0u64..=MAX_SMALL_SIZE)
        };
        let cl = t.class_for(req).expect("small request");
        let info = t.info(cl);
        // Sound: class size fits the request.
        assert!(info.size >= req);
        // Tight: the next-smaller class would not fit.
        if cl > 0 {
            assert!(t.info(cl - 1).size < req.max(1));
        }
        // Internal slack is bounded (absolute 8 B for tiny, 30% beyond).
        let slack = info.size - req;
        assert!(slack <= 8 || (slack as f64) < 0.30 * req as f64);
    }
}

#[test]
fn size_class_is_monotone() {
    let t = SizeClassTable::production();
    for case in 0..128u64 {
        let mut rng = SmallRng::seed_from_u64(0xC0A1 + case);
        let a = rng.gen_range(0u64..=MAX_SMALL_SIZE);
        let b = rng.gen_range(0u64..=MAX_SMALL_SIZE);
        let (lo, hi) = (a.min(b), a.max(b));
        let lo_cl = t.class_for(lo).expect("small request");
        let hi_cl = t.class_for(hi).expect("small request");
        assert!(lo_cl <= hi_cl);
    }
}

// --- spans ---

#[test]
fn span_alloc_free_sequences_preserve_counts() {
    let t = SizeClassTable::production();
    let cl = t.class_for(64).expect("64 B is a small size");
    for case in 0..128u64 {
        let mut rng = SmallRng::seed_from_u64(0xC0A2 + case);
        let mut reg = SpanRegistry::new();
        let id = reg.insert(Span::new_small(0x100000, cl as u16, t.info(cl)));
        let capacity = reg.get(id).capacity;
        let mut live: Vec<u64> = Vec::new();
        let ops = rng.gen_range(1usize..600);
        for i in 0..ops {
            if rng.gen::<bool>() && reg.get(id).free_count() > 0 {
                let addr = reg.alloc_object(id);
                assert!(!live.contains(&addr), "duplicate address");
                live.push(addr);
            } else if !live.is_empty() {
                let addr = live.swap_remove(i % live.len());
                reg.dealloc_object(id, addr);
            }
            let span = reg.get(id);
            assert_eq!(span.allocated as usize, live.len());
            assert_eq!(span.allocated + span.free_count(), capacity);
        }
    }
}

// --- span registry ---

#[test]
fn registry_ids_stay_distinct() {
    let t = SizeClassTable::production();
    let cl = t.class_for(16).expect("16 B is a small size");
    for case in 0..128u64 {
        let mut rng = SmallRng::seed_from_u64(0xC0A3 + case);
        let mut reg = SpanRegistry::new();
        let mut live = Vec::new();
        let churn = rng.gen_range(1usize..200);
        for i in 0..churn {
            if rng.gen::<bool>() || live.is_empty() {
                let id = reg.insert(Span::new_small((i as u64 + 1) << 20, cl as u16, t.info(cl)));
                assert!(!live.contains(&id));
                live.push(id);
            } else {
                let id = live.swap_remove(i % live.len());
                reg.remove(id);
            }
            assert_eq!(reg.len(), live.len());
        }
    }
}

// --- pageheap ---

fn bus() -> EventBus {
    EventBus::new(
        &TcmallocConfig::baseline(),
        CostModel::production(),
        Clock::new(),
    )
}

#[test]
fn pageheap_ranges_never_overlap() {
    for case in 0..128u64 {
        let mut rng = SmallRng::seed_from_u64(0xC0A4 + case);
        let mut ph = PageHeap::new(PageHeapConfig::default());
        let mut bus = bus();
        let mut live: Vec<(u64, u32)> = Vec::new();
        let reqs = rng.gen_range(1usize..60);
        for i in 0..reqs {
            let pages = rng.gen_range(1u32..600);
            let free_one = rng.gen::<bool>();
            let (addr, _) = ph.alloc(pages, 8, &mut bus).expect("infallible kernel");
            let bytes = pages as u64 * 8192;
            for &(start, p) in &live {
                let len = p as u64 * 8192;
                assert!(
                    addr + bytes <= start || start + len <= addr,
                    "pageheap handed out overlapping ranges"
                );
            }
            live.push((addr, pages));
            if free_one && live.len() > 1 {
                let (a, p) = live.swap_remove(i % live.len());
                ph.dealloc(a, p, &mut bus);
            }
        }
        // Everything deallocates cleanly.
        for (a, p) in live {
            ph.dealloc(a, p, &mut bus);
        }
        assert_eq!(ph.stats().total_used_bytes(), 0);
    }
}

#[test]
fn pageheap_release_is_safe_at_any_point() {
    for case in 0..128u64 {
        let mut rng = SmallRng::seed_from_u64(0xC0A5 + case);
        let mut ph = PageHeap::new(PageHeapConfig {
            free_pages_threshold: 0,
            release_rate_pages: 10_000,
            subrelease_grace_passes: 0,
            ..PageHeapConfig::default()
        });
        let mut bus = bus();
        let count = rng.gen_range(1usize..40);
        let release_at = rng.gen_range(0usize..40);
        let mut live = Vec::new();
        for i in 0..count {
            let p = rng.gen_range(1u32..255);
            let (addr, _) = ph.alloc(p, 8, &mut bus).expect("infallible kernel");
            live.push((addr, p));
            if i == release_at {
                // Free half, then force an aggressive release pass.
                for (a, pp) in live.split_off(live.len() / 2) {
                    ph.dealloc(a, pp, &mut bus);
                }
                ph.background_release(&mut bus);
            }
        }
        // Survivors are still intact and freeable.
        for (a, p) in live {
            ph.dealloc(a, p, &mut bus);
        }
        assert_eq!(ph.stats().total_used_bytes(), 0);
    }
}

// --- pagemaps (differential: radix vs masking vs oracle) ---

/// Races the radix [`PageMap`] and the address-masking [`MaskingPageMap`]
/// against a `BTreeMap<page, SpanId>` oracle over seeded
/// set/clear/lookup interleavings. The schedule is built to hit the
/// arms' sharp edges:
///
/// * **hit-cache staleness** — every clear first primes the one-entry
///   hit cache with a successful lookup inside the doomed span, then
///   asserts the lookup is `None` after the clear and that a remap of
///   the same pages under a fresh id is returned (not the stale cache);
/// * **segment-boundary addresses** — a quarter of placements are pinned
///   to straddle a `PAGES_PER_SEGMENT` boundary, and every case ends
///   with probes at each boundary ± 1 byte;
/// * **downward window growth** — odd cases map near the top of the
///   roamed extent first, so both arms must re-anchor their windows
///   below the first mapping.
#[test]
fn pagemap_arms_agree_with_btreemap_oracle() {
    use std::collections::BTreeMap;
    use wsc_sim_os::addr::TCMALLOC_PAGE_BYTES;
    use wsc_sim_os::vmm::HEAP_BASE;
    use wsc_tcmalloc::pagemap::{MaskingPageMap, PageMap, PAGES_PER_SEGMENT};
    use wsc_tcmalloc::span::SpanId;

    /// Page extent the cases roam over: 8 masking segments.
    const WINDOW_PAGES: u64 = 8 * PAGES_PER_SEGMENT;

    let addr_of = |page: u64| HEAP_BASE + page * TCMALLOC_PAGE_BYTES;
    for case in 0..64u64 {
        let mut rng = SmallRng::seed_from_u64(0x9A6E + case);
        let mut radix = PageMap::new();
        let mut mask = MaskingPageMap::new();
        let mut oracle: BTreeMap<u64, SpanId> = BTreeMap::new();
        let mut live: Vec<(u64, u32, SpanId)> = Vec::new();
        let mut next_id = 0u32;
        // Odd cases anchor the windows high first: every later mapping
        // grows the root/segment window downward.
        if case % 2 == 1 {
            let page = WINDOW_PAGES - 1;
            radix.set_range(addr_of(page), 1, SpanId(next_id));
            mask.set_range(addr_of(page), 1, SpanId(next_id));
            oracle.insert(page, SpanId(next_id));
            live.push((page, 1, SpanId(next_id)));
            next_id += 1;
        }
        for _ in 0..300 {
            match rng.gen_range(0u32..10) {
                0..=3 => {
                    // Map a fresh span; a quarter of placements straddle a
                    // segment boundary on purpose.
                    let len = rng.gen_range(1u32..=40);
                    let page = if rng.gen_range(0u32..4) == 0 {
                        let seg = rng.gen_range(1u64..WINDOW_PAGES / PAGES_PER_SEGMENT);
                        (seg * PAGES_PER_SEGMENT).saturating_sub(len as u64 / 2 + 1)
                    } else {
                        rng.gen_range(0..WINDOW_PAGES - len as u64)
                    };
                    if (page..page + len as u64).any(|p| oracle.contains_key(&p)) {
                        continue; // placement collides with a live span
                    }
                    let id = SpanId(next_id);
                    next_id += 1;
                    radix.set_range(addr_of(page), len, id);
                    mask.set_range(addr_of(page), len, id);
                    for p in page..page + len as u64 {
                        oracle.insert(p, id);
                    }
                    live.push((page, len, id));
                }
                4..=5 => {
                    // Clear a live span — after priming the hit caches with
                    // a successful lookup inside it.
                    if live.is_empty() {
                        continue;
                    }
                    let k = rng.gen_range(0..live.len());
                    let (page, len, id) = live.swap_remove(k);
                    let inside = addr_of(page) + rng.gen_range(0..len as u64 * TCMALLOC_PAGE_BYTES);
                    assert_eq!(radix.span_of(inside), Some(id));
                    assert_eq!(mask.span_of(inside), Some(id));
                    radix.clear_range(addr_of(page), len);
                    mask.clear_range(addr_of(page), len);
                    for p in page..page + len as u64 {
                        oracle.remove(&p);
                    }
                    // The primed hit cache must not resurrect the span.
                    assert_eq!(radix.span_of(inside), None, "stale radix hit cache");
                    assert_eq!(mask.span_of(inside), None, "stale masking hit cache");
                    // Remap the same pages under a fresh id: lookups must
                    // see the new owner, not the cached old one.
                    if rng.gen::<bool>() {
                        let id2 = SpanId(next_id);
                        next_id += 1;
                        radix.set_range(addr_of(page), len, id2);
                        mask.set_range(addr_of(page), len, id2);
                        for p in page..page + len as u64 {
                            oracle.insert(p, id2);
                        }
                        live.push((page, len, id2));
                        assert_eq!(radix.span_of(inside), Some(id2), "stale radix remap");
                        assert_eq!(mask.span_of(inside), Some(id2), "stale masking remap");
                    }
                }
                _ => {
                    // Random interior-pointer lookup, all three must agree.
                    let a = HEAP_BASE + rng.gen_range(0..WINDOW_PAGES * TCMALLOC_PAGE_BYTES);
                    let page = (a - HEAP_BASE) / TCMALLOC_PAGE_BYTES;
                    let want = oracle.get(&page).copied();
                    assert_eq!(radix.span_of(a), want, "radix vs oracle at {a:#x}");
                    assert_eq!(mask.span_of(a), want, "masking vs oracle at {a:#x}");
                }
            }
        }
        // Closing sweep: segment boundaries ± 1 byte, plus first/last byte
        // of every live span.
        let mut probes: Vec<u64> = Vec::new();
        for seg in 0..=WINDOW_PAGES / PAGES_PER_SEGMENT {
            let b = addr_of(seg * PAGES_PER_SEGMENT);
            probes.push(b);
            if seg > 0 {
                probes.push(b - 1);
            }
        }
        for &(page, len, _) in &live {
            probes.push(addr_of(page));
            probes.push(addr_of(page) + len as u64 * TCMALLOC_PAGE_BYTES - 1);
        }
        for a in probes {
            let page = (a - HEAP_BASE) / TCMALLOC_PAGE_BYTES;
            let want = oracle.get(&page).copied();
            assert_eq!(radix.span_of(a), want, "radix vs oracle at probe {a:#x}");
            assert_eq!(mask.span_of(a), want, "masking vs oracle at probe {a:#x}");
        }
        assert_eq!(radix.len(), mask.len(), "mapped-page counts diverge");
        assert_eq!(radix.len() as u64, oracle.len() as u64);
    }
}
