//! Property tests for the allocator's component data structures.
//!
//! Deterministic seeded-loop properties (hermetic replacement for the
//! original proptest strategies).

use wsc_prng::SmallRng;
use wsc_sim_hw::cost::CostModel;
use wsc_sim_os::clock::Clock;
use wsc_tcmalloc::config::TcmallocConfig;
use wsc_tcmalloc::events::EventBus;
use wsc_tcmalloc::pageheap::{PageHeap, PageHeapConfig};
use wsc_tcmalloc::size_class::{SizeClassTable, MAX_SMALL_SIZE};
use wsc_tcmalloc::span::{Span, SpanRegistry};

// --- size classes ---

#[test]
fn size_class_roundup_is_sound() {
    let t = SizeClassTable::production();
    for case in 0..256u64 {
        let mut rng = SmallRng::seed_from_u64(0xC0A0 + case);
        // Half the cases sweep small requests densely; half range freely.
        let req = if case % 2 == 0 {
            rng.gen_range(0u64..=64)
        } else {
            rng.gen_range(0u64..=MAX_SMALL_SIZE)
        };
        let cl = t.class_for(req).expect("small request");
        let info = t.info(cl);
        // Sound: class size fits the request.
        assert!(info.size >= req);
        // Tight: the next-smaller class would not fit.
        if cl > 0 {
            assert!(t.info(cl - 1).size < req.max(1));
        }
        // Internal slack is bounded (absolute 8 B for tiny, 30% beyond).
        let slack = info.size - req;
        assert!(slack <= 8 || (slack as f64) < 0.30 * req as f64);
    }
}

#[test]
fn size_class_is_monotone() {
    let t = SizeClassTable::production();
    for case in 0..128u64 {
        let mut rng = SmallRng::seed_from_u64(0xC0A1 + case);
        let a = rng.gen_range(0u64..=MAX_SMALL_SIZE);
        let b = rng.gen_range(0u64..=MAX_SMALL_SIZE);
        let (lo, hi) = (a.min(b), a.max(b));
        let lo_cl = t.class_for(lo).expect("small request");
        let hi_cl = t.class_for(hi).expect("small request");
        assert!(lo_cl <= hi_cl);
    }
}

// --- spans ---

#[test]
fn span_alloc_free_sequences_preserve_counts() {
    let t = SizeClassTable::production();
    let cl = t.class_for(64).expect("64 B is a small size");
    for case in 0..128u64 {
        let mut rng = SmallRng::seed_from_u64(0xC0A2 + case);
        let mut span = Span::new_small(0x100000, cl as u16, t.info(cl));
        let capacity = span.capacity;
        let mut live: Vec<u64> = Vec::new();
        let ops = rng.gen_range(1usize..600);
        for i in 0..ops {
            if rng.gen::<bool>() && span.free_count() > 0 {
                let addr = span.alloc_object();
                assert!(!live.contains(&addr), "duplicate address");
                live.push(addr);
            } else if !live.is_empty() {
                let addr = live.swap_remove(i % live.len());
                span.dealloc_object(addr);
            }
            assert_eq!(span.allocated as usize, live.len());
            assert_eq!(span.allocated + span.free_count(), capacity);
        }
    }
}

// --- span registry ---

#[test]
fn registry_ids_stay_distinct() {
    let t = SizeClassTable::production();
    let cl = t.class_for(16).expect("16 B is a small size");
    for case in 0..128u64 {
        let mut rng = SmallRng::seed_from_u64(0xC0A3 + case);
        let mut reg = SpanRegistry::new();
        let mut live = Vec::new();
        let churn = rng.gen_range(1usize..200);
        for i in 0..churn {
            if rng.gen::<bool>() || live.is_empty() {
                let id = reg.insert(Span::new_small((i as u64 + 1) << 20, cl as u16, t.info(cl)));
                assert!(!live.contains(&id));
                live.push(id);
            } else {
                let id = live.swap_remove(i % live.len());
                reg.remove(id);
            }
            assert_eq!(reg.len(), live.len());
        }
    }
}

// --- pageheap ---

fn bus() -> EventBus {
    EventBus::new(
        &TcmallocConfig::baseline(),
        CostModel::production(),
        Clock::new(),
    )
}

#[test]
fn pageheap_ranges_never_overlap() {
    for case in 0..128u64 {
        let mut rng = SmallRng::seed_from_u64(0xC0A4 + case);
        let mut ph = PageHeap::new(PageHeapConfig::default());
        let mut bus = bus();
        let mut live: Vec<(u64, u32)> = Vec::new();
        let reqs = rng.gen_range(1usize..60);
        for i in 0..reqs {
            let pages = rng.gen_range(1u32..600);
            let free_one = rng.gen::<bool>();
            let (addr, _) = ph.alloc(pages, 8, &mut bus).expect("infallible kernel");
            let bytes = pages as u64 * 8192;
            for &(start, p) in &live {
                let len = p as u64 * 8192;
                assert!(
                    addr + bytes <= start || start + len <= addr,
                    "pageheap handed out overlapping ranges"
                );
            }
            live.push((addr, pages));
            if free_one && live.len() > 1 {
                let (a, p) = live.swap_remove(i % live.len());
                ph.dealloc(a, p, &mut bus);
            }
        }
        // Everything deallocates cleanly.
        for (a, p) in live {
            ph.dealloc(a, p, &mut bus);
        }
        assert_eq!(ph.stats().total_used_bytes(), 0);
    }
}

#[test]
fn pageheap_release_is_safe_at_any_point() {
    for case in 0..128u64 {
        let mut rng = SmallRng::seed_from_u64(0xC0A5 + case);
        let mut ph = PageHeap::new(PageHeapConfig {
            free_pages_threshold: 0,
            release_rate_pages: 10_000,
            subrelease_grace_passes: 0,
            ..PageHeapConfig::default()
        });
        let mut bus = bus();
        let count = rng.gen_range(1usize..40);
        let release_at = rng.gen_range(0usize..40);
        let mut live = Vec::new();
        for i in 0..count {
            let p = rng.gen_range(1u32..255);
            let (addr, _) = ph.alloc(p, 8, &mut bus).expect("infallible kernel");
            live.push((addr, p));
            if i == release_at {
                // Free half, then force an aggressive release pass.
                for (a, pp) in live.split_off(live.len() / 2) {
                    ph.dealloc(a, pp, &mut bus);
                }
                ph.background_release(&mut bus);
            }
        }
        // Survivors are still intact and freeable.
        for (a, p) in live {
            ph.dealloc(a, p, &mut bus);
        }
        assert_eq!(ph.stats().total_used_bytes(), 0);
    }
}
