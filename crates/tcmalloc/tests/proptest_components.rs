//! Property tests for the allocator's component data structures.

use proptest::prelude::*;
use wsc_tcmalloc::pageheap::{PageHeap, PageHeapConfig};
use wsc_tcmalloc::size_class::{SizeClassTable, MAX_SMALL_SIZE};
use wsc_tcmalloc::span::{Span, SpanRegistry};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    // --- size classes ---

    #[test]
    fn size_class_roundup_is_sound(req in 0u64..=MAX_SMALL_SIZE) {
        let t = SizeClassTable::production();
        let cl = t.class_for(req).expect("small request");
        let info = t.info(cl);
        // Sound: class size fits the request.
        prop_assert!(info.size >= req);
        // Tight: the next-smaller class would not fit.
        if cl > 0 {
            prop_assert!(t.info(cl - 1).size < req.max(1));
        }
        // Internal slack is bounded (absolute 8 B for tiny, 30% beyond).
        let slack = info.size - req;
        prop_assert!(slack <= 8 || (slack as f64) < 0.30 * req as f64);
    }

    #[test]
    fn size_class_is_monotone(a in 0u64..=MAX_SMALL_SIZE, b in 0u64..=MAX_SMALL_SIZE) {
        let t = SizeClassTable::production();
        let (lo, hi) = (a.min(b), a.max(b));
        prop_assert!(t.class_for(lo).unwrap() <= t.class_for(hi).unwrap());
    }

    // --- spans ---

    #[test]
    fn span_alloc_free_sequences_preserve_counts(ops in prop::collection::vec(any::<bool>(), 1..600)) {
        let t = SizeClassTable::production();
        let cl = t.class_for(64).unwrap();
        let mut span = Span::new_small(0x100000, cl as u16, t.info(cl));
        let capacity = span.capacity;
        let mut live: Vec<u64> = Vec::new();
        for (i, alloc) in ops.into_iter().enumerate() {
            if alloc && span.free_count() > 0 {
                let addr = span.alloc_object();
                prop_assert!(!live.contains(&addr), "duplicate address");
                live.push(addr);
            } else if !live.is_empty() {
                let addr = live.swap_remove(i % live.len());
                span.dealloc_object(addr);
            }
            prop_assert_eq!(span.allocated as usize, live.len());
            prop_assert_eq!(span.allocated + span.free_count(), capacity);
        }
    }

    // --- span registry ---

    #[test]
    fn registry_ids_stay_distinct(churn in prop::collection::vec(any::<bool>(), 1..200)) {
        let t = SizeClassTable::production();
        let cl = t.class_for(16).unwrap();
        let mut reg = SpanRegistry::new();
        let mut live = Vec::new();
        for (i, insert) in churn.into_iter().enumerate() {
            if insert || live.is_empty() {
                let id = reg.insert(Span::new_small(
                    (i as u64 + 1) << 20,
                    cl as u16,
                    t.info(cl),
                ));
                prop_assert!(!live.contains(&id));
                live.push(id);
            } else {
                let id = live.swap_remove(i % live.len());
                reg.remove(id);
            }
            prop_assert_eq!(reg.len(), live.len());
        }
    }

    // --- pageheap ---

    #[test]
    fn pageheap_ranges_never_overlap(
        reqs in prop::collection::vec((1u32..600, any::<bool>()), 1..60)
    ) {
        let mut ph = PageHeap::new(PageHeapConfig::default());
        let mut live: Vec<(u64, u32)> = Vec::new();
        for (i, (pages, free_one)) in reqs.into_iter().enumerate() {
            let (addr, _) = ph.alloc(pages, 8);
            let bytes = pages as u64 * 8192;
            for &(start, p) in &live {
                let len = p as u64 * 8192;
                prop_assert!(
                    addr + bytes <= start || start + len <= addr,
                    "pageheap handed out overlapping ranges"
                );
            }
            live.push((addr, pages));
            if free_one && live.len() > 1 {
                let (a, p) = live.swap_remove(i % live.len());
                ph.dealloc(a, p);
            }
        }
        // Everything deallocates cleanly.
        for (a, p) in live {
            ph.dealloc(a, p);
        }
        prop_assert_eq!(ph.stats().total_used_bytes(), 0);
    }

    #[test]
    fn pageheap_release_is_safe_at_any_point(
        pages in prop::collection::vec(1u32..255, 1..40),
        release_at in 0usize..40
    ) {
        let mut ph = PageHeap::new(PageHeapConfig {
            free_pages_threshold: 0,
            release_rate_pages: 10_000,
            subrelease_grace_passes: 0,
            ..PageHeapConfig::default()
        });
        let mut live = Vec::new();
        for (i, p) in pages.iter().enumerate() {
            let (addr, _) = ph.alloc(*p, 8);
            live.push((addr, *p));
            if i == release_at {
                // Free half, then force an aggressive release pass.
                for (a, pp) in live.split_off(live.len() / 2) {
                    ph.dealloc(a, pp);
                }
                ph.background_release();
            }
        }
        // Survivors are still intact and freeable.
        for (a, p) in live {
            ph.dealloc(a, p);
        }
        prop_assert_eq!(ph.stats().total_used_bytes(), 0);
    }
}
