//! Adversarial and edge-case workloads against the full allocator: patterns
//! chosen to stress specific policies rather than look like production.

use wsc_sim_hw::topology::{CpuId, Platform};
use wsc_sim_os::clock::{Clock, NS_PER_SEC};
use wsc_tcmalloc::size_class::{SizeClassTable, MAX_SMALL_SIZE};
use wsc_tcmalloc::{Tcmalloc, TcmallocConfig};

fn alloc(cfg: TcmallocConfig) -> (Tcmalloc, Clock) {
    let clock = Clock::new();
    (
        Tcmalloc::new(cfg, Platform::chiplet("t", 1, 2, 4, 2), clock.clone()),
        clock,
    )
}

#[test]
fn class_boundary_sizes_round_trip() {
    // Every size-class boundary, one below, exactly at, one above.
    let (mut tcm, _) = alloc(TcmallocConfig::baseline());
    let table = SizeClassTable::production();
    let mut live = Vec::new();
    for info in table.iter() {
        for size in [info.size - 1, info.size, info.size + 1] {
            if size == 0 || size > MAX_SMALL_SIZE {
                continue;
            }
            let a = tcm.malloc(size, CpuId(0));
            assert!(a.actual_bytes >= size);
            live.push((a.addr, size));
        }
    }
    for (addr, size) in live {
        tcm.free(addr, size, CpuId(0));
    }
    assert_eq!(tcm.live_bytes(), 0);
}

#[test]
fn large_boundary_is_exact() {
    // MAX_SMALL_SIZE goes through the caches; one byte more bypasses them.
    let (mut tcm, _) = alloc(TcmallocConfig::baseline());
    let small = tcm.malloc(MAX_SMALL_SIZE, CpuId(0));
    let large = tcm.malloc(MAX_SMALL_SIZE + 1, CpuId(0));
    assert_eq!(small.actual_bytes, MAX_SMALL_SIZE);
    assert!(large.actual_bytes > MAX_SMALL_SIZE);
    tcm.free(small.addr, MAX_SMALL_SIZE, CpuId(0));
    tcm.free(large.addr, MAX_SMALL_SIZE + 1, CpuId(0));
    assert_eq!(tcm.live_bytes(), 0);
}

#[test]
fn lifo_stack_pattern() {
    // Deep alloc, then free in strict reverse order (stack discipline).
    let (mut tcm, _) = alloc(TcmallocConfig::optimized());
    let mut stack = Vec::new();
    for i in 0..20_000u64 {
        let size = 16 + (i % 37) * 8;
        stack.push((tcm.malloc(size, CpuId((i % 8) as u32)).addr, size));
    }
    while let Some((addr, size)) = stack.pop() {
        tcm.free(addr, size, CpuId(0));
    }
    assert_eq!(tcm.live_bytes(), 0);
}

#[test]
fn fifo_queue_pattern() {
    // Producer/consumer: free in allocation order from a different CPU —
    // maximal cross-CPU flow through the transfer tier.
    let (mut tcm, clock) = alloc(TcmallocConfig::baseline().with_nuca_transfer());
    let mut queue = std::collections::VecDeque::new();
    for i in 0..30_000u64 {
        let size = 64 + (i % 13) * 32;
        queue.push_back((tcm.malloc(size, CpuId(0)).addr, size));
        if queue.len() > 500 {
            let (addr, sz) = queue.pop_front().expect("non-empty");
            tcm.free(addr, sz, CpuId(15)); // other domain
        }
        if i % 512 == 0 {
            clock.advance(NS_PER_SEC / 50);
            tcm.maintain();
        }
    }
    for (addr, sz) in queue {
        tcm.free(addr, sz, CpuId(15));
    }
    assert_eq!(tcm.live_bytes(), 0);
    let f = tcm.fragmentation();
    assert_eq!(f.resident_bytes, f.total_bytes());
}

#[test]
fn sawtooth_heap_growth_releases_memory() {
    // Grow to ~64 MiB, free everything, repeat; background release must
    // return memory between peaks instead of ratcheting.
    let (mut tcm, clock) = alloc(TcmallocConfig::baseline());
    let mut peak_resident_after_drain = 0;
    for round in 0..4 {
        let mut live = Vec::new();
        for i in 0..8_000u64 {
            let size = 4096 + (i % 1024);
            live.push((tcm.malloc(size, CpuId((i % 4) as u32)).addr, size));
        }
        for (addr, size) in live {
            tcm.free(addr, size, CpuId(0));
        }
        // Let the background release catch up.
        for _ in 0..40 {
            clock.advance(NS_PER_SEC / 20);
            tcm.maintain();
        }
        if round > 0 {
            peak_resident_after_drain = peak_resident_after_drain.max(tcm.resident_bytes());
        }
    }
    assert!(
        peak_resident_after_drain < 24 << 20,
        "memory ratcheted: {peak_resident_after_drain} bytes still resident"
    );
}

#[test]
fn thundering_herd_on_one_class() {
    // All 16 vCPUs hammer one size class concurrently (interleaved).
    let (mut tcm, _) = alloc(TcmallocConfig::optimized());
    let mut per_cpu: Vec<Vec<u64>> = vec![Vec::new(); 16];
    for i in 0..60_000u64 {
        let cpu = (i % 16) as u32;
        per_cpu[cpu as usize].push(tcm.malloc(128, CpuId(cpu)).addr);
        if per_cpu[cpu as usize].len() > 100 {
            let addr = per_cpu[cpu as usize].remove(0);
            tcm.free(addr, 128, CpuId(cpu));
        }
    }
    for (cpu, addrs) in per_cpu.into_iter().enumerate() {
        for addr in addrs {
            tcm.free(addr, 128, CpuId(cpu as u32));
        }
    }
    assert_eq!(tcm.live_bytes(), 0);
}

#[test]
fn giant_allocations() {
    // Multi-hundred-MiB allocations exercise the hugepage cache's run
    // handling and donation.
    let (mut tcm, _) = alloc(TcmallocConfig::baseline());
    let sizes = [256 << 20, 100 << 20, (512 << 20) + 12345];
    let mut live = Vec::new();
    for &size in &sizes {
        let a = tcm.malloc(size, CpuId(0));
        assert!(a.actual_bytes >= size);
        live.push((a.addr, size));
    }
    // Interleave a small allocation to land on donated slack.
    let small = tcm.malloc(100, CpuId(0));
    for (addr, size) in live {
        tcm.free(addr, size, CpuId(0));
    }
    tcm.free(small.addr, 100, CpuId(0));
    assert_eq!(tcm.live_bytes(), 0);
}

#[test]
fn long_idle_period_then_burst() {
    // Hours of simulated idleness (maintenance only), then a burst: the
    // decayed caches must rebuild without corruption.
    let (mut tcm, clock) = alloc(TcmallocConfig::optimized());
    let warm = tcm.malloc(64, CpuId(0));
    tcm.free(warm.addr, 64, CpuId(0));
    for _ in 0..100 {
        clock.advance(36 * NS_PER_SEC);
        tcm.maintain();
    }
    let mut live = Vec::new();
    for i in 0..10_000u64 {
        live.push(tcm.malloc(64, CpuId((i % 8) as u32)).addr);
    }
    for addr in live {
        tcm.free(addr, 64, CpuId(0));
    }
    assert_eq!(tcm.live_bytes(), 0);
}

#[test]
fn every_config_combination_is_stable() {
    // All 16 on/off combinations of the four designs survive a mixed burst.
    for bits in 0u32..16 {
        let mut cfg = TcmallocConfig::baseline();
        if bits & 1 != 0 {
            cfg = cfg.with_heterogeneous_percpu();
        }
        if bits & 2 != 0 {
            cfg = cfg.with_nuca_transfer();
        }
        if bits & 4 != 0 {
            cfg = cfg.with_span_prioritization();
        }
        if bits & 8 != 0 {
            cfg = cfg.with_lifetime_filler();
        }
        let (mut tcm, clock) = alloc(cfg);
        let mut live = Vec::new();
        for i in 0..3_000u64 {
            let size = 8 << (i % 12);
            live.push((tcm.malloc(size, CpuId((i % 16) as u32)).addr, size));
            if i % 3 == 0 {
                let (addr, sz) = live.swap_remove(((i * 7) as usize) % live.len());
                tcm.free(addr, sz, CpuId(((i + 1) % 16) as u32));
            }
            if i % 256 == 0 {
                clock.advance(NS_PER_SEC / 10);
                tcm.maintain();
            }
        }
        for (addr, sz) in live {
            tcm.free(addr, sz, CpuId(0));
        }
        assert_eq!(tcm.live_bytes(), 0, "config bits {bits:#b}");
    }
}
