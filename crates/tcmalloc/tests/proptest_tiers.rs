//! Property tests for the cache tiers: the per-CPU front end, the transfer
//! tier, and the central free list, driven through their public APIs with
//! arbitrary operation sequences.
//!
//! Deterministic seeded-loop properties (hermetic replacement for the
//! original proptest strategies).

use wsc_prng::SmallRng;
use wsc_sim_hw::cost::CostModel;
use wsc_sim_os::clock::Clock;
use wsc_sim_os::rseq::VcpuId;
use wsc_tcmalloc::central::CentralFreeList;
use wsc_tcmalloc::config::TcmallocConfig;
use wsc_tcmalloc::events::EventBus;
use wsc_tcmalloc::pageheap::{PageHeap, PageHeapConfig};
use wsc_tcmalloc::pagemap::Pagemap;
use wsc_tcmalloc::percpu::{FreeOutcome, PerCpuCaches};
use wsc_tcmalloc::size_class::SizeClassTable;
use wsc_tcmalloc::span::SpanRegistry;
use wsc_tcmalloc::transfer::{TransferCaches, TransferConfig, TransferSharding};

fn bus() -> EventBus {
    EventBus::new(
        &TcmallocConfig::baseline(),
        CostModel::production(),
        Clock::new(),
    )
}

// --- central free list: random batch traffic, both L=1 and L=8 ---

#[test]
fn central_free_list_conserves_objects() {
    for case in 0..64u64 {
        let mut rng = SmallRng::seed_from_u64(0x7C40 + case);
        let lists = if case % 2 == 0 { 1 } else { 8 };
        let table = SizeClassTable::production();
        let cl = table.class_for(48).expect("48 B is a small size");
        let mut cfl = CentralFreeList::new(cl as u16, *table.info(cl), lists);
        let mut spans = SpanRegistry::new();
        let mut pagemap = Pagemap::default();
        let mut pageheap = PageHeap::new(PageHeapConfig::default());
        let mut bus = bus();
        let mut live: Vec<u64> = Vec::new();
        let ops = rng.gen_range(1usize..120);
        for i in 0..ops {
            let n = rng.gen_range(1usize..40);
            let alloc = rng.gen::<bool>();
            if alloc || live.is_empty() {
                let (objs, _) = cfl
                    .alloc_batch(n, &mut spans, &mut pagemap, &mut pageheap, &mut bus)
                    .expect("infallible kernel");
                assert_eq!(objs.len(), n, "batch always filled (grows)");
                for o in &objs {
                    assert!(!live.contains(o), "duplicate object");
                }
                live.extend(objs);
            } else {
                let k = (i * 31) % live.len();
                let addr = live.swap_remove(k);
                let id = pagemap.span_of(addr).expect("live object has a span");
                cfl.dealloc(addr, id, &mut spans, &mut pagemap, &mut pageheap, &mut bus);
            }
            // Conservation: live objects = sum of allocated over spans.
            let allocated: u64 = spans.iter().map(|(_, s)| s.allocated as u64).sum();
            assert_eq!(allocated as usize, live.len());
        }
        // Drain: every span must return to the pageheap.
        for addr in live {
            let id = pagemap.span_of(addr).expect("live object has a span");
            cfl.dealloc(addr, id, &mut spans, &mut pagemap, &mut pageheap, &mut bus);
        }
        assert_eq!(cfl.live_spans(), 0);
        assert_eq!(cfl.external_bytes(), 0);
        assert!(pagemap.is_empty());
        assert_eq!(pageheap.stats().total_used_bytes(), 0);
    }
}

// --- per-CPU caches: budget holds under arbitrary traffic ---

#[test]
fn percpu_budget_is_never_exceeded() {
    for case in 0..64u64 {
        let mut rng = SmallRng::seed_from_u64(0x7C41 + case);
        let budget = rng.gen_range(1024u64..(1 << 20));
        let table = SizeClassTable::production();
        let mut caches = PerCpuCaches::new(&table, budget);
        let mut bus = bus();
        let mut counter = 0u64;
        let ops = rng.gen_range(1usize..300);
        for _ in 0..ops {
            let vcpu = VcpuId(rng.gen_range(0u32..4));
            let cl = rng.gen_range(0usize..30) % table.num_classes();
            if rng.gen::<bool>() {
                if caches.alloc(vcpu, cl, &mut bus).is_none() {
                    counter += 1;
                    let objs: Vec<u64> = (0..8).map(|i| (counter * 100 + i) << 8).collect();
                    let _ = caches.refill(vcpu, cl, objs, &mut bus);
                }
            } else {
                counter += 1;
                match caches.free(vcpu, cl, counter << 8, &mut bus) {
                    FreeOutcome::Cached => {}
                    FreeOutcome::Overflow(objs) => assert!(!objs.is_empty()),
                }
            }
        }
        // The byte budget binds: cached bytes per vCPU stay under budget
        // plus one batch of slack for the largest class in flight.
        let slack = 256 << 10;
        assert!(
            caches.cached_bytes_total() <= (budget + slack) * 4,
            "cached {} vs budget {budget}",
            caches.cached_bytes_total()
        );
    }
}

// --- transfer tier: objects in == objects out, across sharding modes ---

#[test]
fn transfer_tier_conserves_objects() {
    const SHARDINGS: [TransferSharding; 3] = [
        TransferSharding::Central,
        TransferSharding::Domain,
        TransferSharding::Node,
    ];
    for case in 0..63u64 {
        let mut rng = SmallRng::seed_from_u64(0x7C42 + case);
        let sharding = SHARDINGS[(case % 3) as usize];
        let table = SizeClassTable::production();
        let cfg = TransferConfig {
            sharding,
            ..TransferConfig::default()
        };
        let mut tc = TransferCaches::new(&table, cfg);
        let mut bus = bus();
        let cl = table.class_for(128).expect("128 B is a small size");
        let mut in_tier = 0usize;
        let mut counter = 0u64;
        let ops = rng.gen_range(1usize..200);
        for _ in 0..ops {
            let shard = rng.gen_range(0usize..4);
            let n = rng.gen_range(1usize..20);
            if rng.gen::<bool>() {
                let objs: Vec<u64> = (0..n as u64)
                    .map(|i| {
                        counter += 1;
                        (counter + i) << 7
                    })
                    .collect();
                let overflow = tc.stash(shard, cl, objs, &mut bus);
                in_tier += n - overflow.len();
            } else {
                let got = tc.fetch(shard, cl, n, &mut bus);
                assert!(got.len() <= n);
                in_tier -= got.len();
            }
            let expected = in_tier as u64 * table.info(cl).size;
            assert_eq!(tc.cached_bytes(), expected);
        }
        // Flush accounts for everything still cached.
        let flushed: usize = tc.flush_all().iter().map(|(_, v)| v.len()).sum();
        assert_eq!(flushed, in_tier);
        assert_eq!(tc.cached_bytes(), 0);
    }
}
