//! Property tests for the cache tiers: the per-CPU front end, the transfer
//! tier, and the central free list, driven through their public APIs with
//! arbitrary operation sequences.

use proptest::prelude::*;
use wsc_tcmalloc::central::CentralFreeList;
use wsc_tcmalloc::pagemap::PageMap;
use wsc_tcmalloc::pageheap::{PageHeap, PageHeapConfig};
use wsc_tcmalloc::percpu::{FreeOutcome, PerCpuCaches};
use wsc_tcmalloc::size_class::SizeClassTable;
use wsc_tcmalloc::span::SpanRegistry;
use wsc_tcmalloc::transfer::{TransferCaches, TransferConfig, TransferSharding};
use wsc_sim_os::rseq::VcpuId;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // --- central free list: random batch traffic, both L=1 and L=8 ---

    #[test]
    fn central_free_list_conserves_objects(
        ops in prop::collection::vec((1usize..40, any::<bool>()), 1..120),
        lists in prop_oneof![Just(1usize), Just(8usize)],
    ) {
        let table = SizeClassTable::production();
        let cl = table.class_for(48).unwrap();
        let mut cfl = CentralFreeList::new(cl as u16, *table.info(cl), lists);
        let mut spans = SpanRegistry::new();
        let mut pagemap = PageMap::new();
        let mut pageheap = PageHeap::new(PageHeapConfig::default());
        let mut live: Vec<u64> = Vec::new();
        for (i, (n, alloc)) in ops.into_iter().enumerate() {
            if alloc || live.is_empty() {
                let (objs, _) = cfl.alloc_batch(n, &mut spans, &mut pagemap, &mut pageheap);
                prop_assert_eq!(objs.len(), n, "batch always filled (grows)");
                for o in &objs {
                    prop_assert!(!live.contains(o), "duplicate object");
                }
                live.extend(objs);
            } else {
                let k = (i * 31) % live.len();
                let addr = live.swap_remove(k);
                let id = pagemap.span_of(addr).expect("live object has a span");
                cfl.dealloc(addr, id, &mut spans, &mut pagemap, &mut pageheap);
            }
            // Conservation: live objects = sum of allocated over spans.
            let allocated: u64 = spans.iter().map(|(_, s)| s.allocated as u64).sum();
            prop_assert_eq!(allocated as usize, live.len());
        }
        // Drain: every span must return to the pageheap.
        for addr in live {
            let id = pagemap.span_of(addr).expect("live object has a span");
            cfl.dealloc(addr, id, &mut spans, &mut pagemap, &mut pageheap);
        }
        prop_assert_eq!(cfl.live_spans(), 0);
        prop_assert_eq!(cfl.external_bytes(), 0);
        prop_assert!(pagemap.is_empty());
        prop_assert_eq!(pageheap.stats().total_used_bytes(), 0);
    }

    // --- per-CPU caches: budget holds under arbitrary traffic ---

    #[test]
    fn percpu_budget_is_never_exceeded(
        ops in prop::collection::vec((0u8..4, 0usize..30, any::<bool>()), 1..300),
        budget in 1024u64..(1 << 20),
    ) {
        let table = SizeClassTable::production();
        let mut caches = PerCpuCaches::new(&table, budget);
        let mut counter = 0u64;
        for (vcpu, cl, is_alloc) in ops {
            let vcpu = VcpuId(vcpu as u32);
            let cl = cl % table.num_classes();
            if is_alloc {
                if caches.alloc(vcpu, cl).is_none() {
                    counter += 1;
                    let objs: Vec<u64> = (0..8).map(|i| (counter * 100 + i) << 8).collect();
                    let _ = caches.refill(vcpu, cl, objs);
                }
            } else {
                counter += 1;
                match caches.free(vcpu, cl, counter << 8) {
                    FreeOutcome::Cached => {}
                    FreeOutcome::Overflow(objs) => prop_assert!(!objs.is_empty()),
                }
            }
        }
        // The byte budget binds: cached bytes per vCPU stay under budget
        // plus one batch of slack for the largest class in flight.
        let slack = 256 << 10;
        prop_assert!(
            caches.cached_bytes_total() <= (budget + slack) * 4,
            "cached {} vs budget {budget}",
            caches.cached_bytes_total()
        );
    }

    // --- transfer tier: objects in == objects out, across sharding modes ---

    #[test]
    fn transfer_tier_conserves_objects(
        ops in prop::collection::vec((0usize..4, any::<bool>(), 1usize..20), 1..200),
        sharding in prop_oneof![
            Just(TransferSharding::Central),
            Just(TransferSharding::Domain),
            Just(TransferSharding::Node),
        ],
    ) {
        let table = SizeClassTable::production();
        let cfg = TransferConfig { sharding, ..TransferConfig::default() };
        let mut tc = TransferCaches::new(&table, cfg);
        let cl = table.class_for(128).unwrap();
        let mut in_tier = 0usize;
        let mut counter = 0u64;
        for (shard, is_stash, n) in ops {
            if is_stash {
                let objs: Vec<u64> = (0..n as u64).map(|i| {
                    counter += 1;
                    (counter + i) << 7
                }).collect();
                let overflow = tc.stash(shard, cl, objs);
                in_tier += n - overflow.len();
            } else {
                let got = tc.fetch(shard, cl, n);
                prop_assert!(got.len() <= n);
                in_tier -= got.len();
            }
            let expected = in_tier as u64 * table.info(cl).size;
            prop_assert_eq!(tc.cached_bytes(), expected);
        }
        // Flush accounts for everything still cached.
        let flushed: usize = tc.flush_all().iter().map(|(_, v)| v.len()).sum();
        prop_assert_eq!(flushed, in_tier);
        prop_assert_eq!(tc.cached_bytes(), 0);
    }
}
