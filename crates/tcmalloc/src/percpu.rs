//! The per-CPU front-end cache (§4.1).
//!
//! Each virtual CPU owns an array of per-size-class object stacks bounded by
//! a per-CPU byte budget (3 MB by default in production; 1.5 MB once the
//! heterogeneous design landed). Alloc/free on the fast path touch only this
//! slab — production does it in ~40 instructions under a restartable
//! sequence, at 3.1 ns (Figure 4).
//!
//! A *miss* is an allocation finding the stack empty (underflow) or a free
//! finding it full (overflow); both spill to the transfer cache. Miss counts
//! per vCPU are the telemetry of Figure 9b and the input to the
//! heterogeneous resizer: every 5 seconds the top-5 missing caches grow by
//! stealing byte budget from the quietest caches ("we prioritize shrinking
//! capacity for larger size classes, since the majority of allocations in
//! our workloads are smaller objects").

use crate::events::{AllocEvent, EventBus};
use crate::size_class::SizeClassTable;
use wsc_sim_os::rseq::VcpuId;

/// Result of a front-end free.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FreeOutcome {
    /// The object was absorbed by the per-CPU cache.
    Cached,
    /// Overflow miss: the cache was full; the returned batch (including the
    /// freed object) must go to the transfer cache.
    Overflow(Vec<u64>),
}

#[derive(Clone, Debug, Default)]
struct ClassSlab {
    objs: Vec<u64>,
    /// Object-count capacity currently granted to this class.
    capacity: u32,
    /// Was this class touched since the last decay pass?
    touched: bool,
}

/// One vCPU's slab.
#[derive(Clone, Debug)]
struct CpuSlab {
    classes: Vec<ClassSlab>,
    max_bytes: u64,
    /// Σ capacity × object size over classes.
    capacity_bytes: u64,
    /// Σ cached objects × object size.
    cached_bytes: u64,
    misses_total: u64,
    misses_interval: u64,
}

impl CpuSlab {
    fn new(num_classes: usize, max_bytes: u64) -> Self {
        Self {
            classes: vec![ClassSlab::default(); num_classes],
            max_bytes,
            capacity_bytes: 0,
            cached_bytes: 0,
            misses_total: 0,
            misses_interval: 0,
        }
    }
}

/// The array of per-CPU caches for one process.
#[derive(Clone, Debug)]
pub struct PerCpuCaches {
    slabs: Vec<Option<CpuSlab>>,
    sizes: Vec<u64>,
    batches: Vec<u32>,
    /// Per-class object-count cap (production limits per-class slabs).
    class_caps: Vec<u32>,
    default_max_bytes: u64,
}

impl PerCpuCaches {
    /// Creates the cache array. Slabs are populated lazily per vCPU — the
    /// point of virtual CPU IDs (§4.1).
    pub fn new(table: &SizeClassTable, default_max_bytes: u64) -> Self {
        Self {
            slabs: Vec::new(),
            sizes: table.iter().map(|c| c.size).collect(),
            batches: table.iter().map(|c| c.batch).collect(),
            class_caps: table
                .iter()
                .map(|c| {
                    // Clamp in the u64 domain *before* narrowing: `cap as
                    // u32` on the raw quotient would truncate a large value
                    // first and clamp the mangled number.
                    let cap = (256u64 << 10) / crate::config::CAPACITY_SCALE / c.size;
                    let cap = cap.clamp(2, 2048 / crate::config::CAPACITY_SCALE);
                    u32::try_from(cap).expect("class cap clamped within u32")
                })
                .collect(),
            default_max_bytes,
        }
    }

    fn slab_mut(&mut self, vcpu: VcpuId) -> &mut CpuSlab {
        let idx = vcpu.index();
        if idx >= self.slabs.len() {
            self.slabs.resize_with(idx + 1, || None);
        }
        let num_classes = self.sizes.len();
        let max = self.default_max_bytes;
        self.slabs[idx].get_or_insert_with(|| CpuSlab::new(num_classes, max))
    }

    /// Fast-path allocation: pops a cached object, or records an underflow
    /// miss and returns `None` (caller refills from the transfer cache).
    /// Emits the per-CPU hit/miss boundary event.
    pub fn alloc(&mut self, vcpu: VcpuId, class: usize, bus: &mut EventBus) -> Option<u64> {
        let size = self.sizes[class];
        let slab = self.slab_mut(vcpu);
        slab.classes[class].touched = true;
        match slab.classes[class].objs.pop() {
            Some(addr) => {
                slab.cached_bytes -= size;
                // Batched when the bus is in batched-emission mode; a
                // per-op PerCpuHit otherwise.
                bus.percpu_hit(vcpu.index(), class as u16);
                Some(addr)
            }
            None => {
                slab.misses_total += 1;
                slab.misses_interval += 1;
                bus.emit(AllocEvent::PerCpuMiss {
                    vcpu: vcpu.index(),
                    class: class as u16,
                });
                None
            }
        }
    }

    /// Grows `class`'s capacity by one batch if the byte budget allows,
    /// stealing *unused* capacity from the largest other class if needed
    /// (each steal emits [`AllocEvent::ResizerSteal`]). Returns whether the
    /// grant succeeded.
    fn try_grow(&mut self, vcpu: VcpuId, class: usize, bus: &mut EventBus) -> bool {
        let size = self.sizes[class];
        let batch = self.batches[class] as u64;
        let need = batch * size;
        let cap = self.class_caps[class];
        let sizes = self.sizes.clone();
        let slab = self.slab_mut(vcpu);
        if slab.classes[class].capacity + batch as u32 > cap {
            return false;
        }
        if slab.capacity_bytes + need <= slab.max_bytes {
            slab.classes[class].capacity += batch as u32;
            slab.capacity_bytes += need;
            return true;
        }
        // Steal unused capacity, preferring the largest size classes (most
        // bytes reclaimed per slot, and small classes dominate traffic).
        let mut reclaimed = 0u64;
        for cl in (0..sizes.len()).rev() {
            if cl == class || reclaimed >= need {
                continue;
            }
            let cslab = &mut slab.classes[cl];
            let unused = cslab.capacity.saturating_sub(cslab.objs.len() as u32);
            if unused == 0 {
                continue;
            }
            let take_bytes = (unused as u64 * sizes[cl]).min(need - reclaimed);
            // Stay in u64 until the `unused` bound proves the value fits:
            // a bare `as u32` would silently wrap for huge byte budgets.
            let take_slots = take_bytes.div_ceil(sizes[cl]).min(unused as u64);
            let take_slots = u32::try_from(take_slots).expect("slots bounded by unused: u32");
            cslab.capacity -= take_slots;
            let freed = take_slots as u64 * sizes[cl];
            slab.capacity_bytes -= freed;
            reclaimed += freed;
            bus.emit(AllocEvent::ResizerSteal {
                vcpu: vcpu.index(),
                victim_class: cl as u16,
                class: class as u16,
                bytes: freed,
            });
        }
        if slab.capacity_bytes + need <= slab.max_bytes {
            slab.classes[class].capacity += batch as u32;
            slab.capacity_bytes += need;
            true
        } else {
            false
        }
    }

    /// Refills `class` with a batch fetched from the middle tier after an
    /// underflow. Objects beyond the granted capacity are returned (and go
    /// back to the transfer cache).
    pub fn refill(
        &mut self,
        vcpu: VcpuId,
        class: usize,
        mut objs: Vec<u64>,
        bus: &mut EventBus,
    ) -> Vec<u64> {
        self.try_grow(vcpu, class, bus);
        let size = self.sizes[class];
        let slab = self.slab_mut(vcpu);
        let cslab = &mut slab.classes[class];
        cslab.touched = true;
        let room = (cslab.capacity as usize).saturating_sub(cslab.objs.len());
        let take = room.min(objs.len());
        let rest = objs.split_off(take);
        slab.cached_bytes += take as u64 * size;
        cslab.objs.extend(objs);
        rest
    }

    /// Fast-path free. On overflow the cache sheds one batch of this class
    /// (including the freed object) for the transfer cache, emitting the
    /// overflow boundary event.
    pub fn free(
        &mut self,
        vcpu: VcpuId,
        class: usize,
        addr: u64,
        bus: &mut EventBus,
    ) -> FreeOutcome {
        let size = self.sizes[class];
        let batch = self.batches[class] as usize;
        {
            let slab = self.slab_mut(vcpu);
            let cslab = &mut slab.classes[class];
            cslab.touched = true;
            if (cslab.objs.len() as u32) < cslab.capacity {
                cslab.objs.push(addr);
                slab.cached_bytes += size;
                return FreeOutcome::Cached;
            }
            slab.misses_total += 1;
            slab.misses_interval += 1;
        }
        // Overflow: try to grow; if granted, absorb the object after all.
        if self.try_grow(vcpu, class, bus) {
            let slab = self.slab_mut(vcpu);
            slab.classes[class].objs.push(addr);
            slab.cached_bytes += size;
            return FreeOutcome::Cached;
        }
        let slab = self.slab_mut(vcpu);
        let cslab = &mut slab.classes[class];
        let shed = (batch - 1).min(cslab.objs.len());
        let at = cslab.objs.len() - shed;
        let mut out = cslab.objs.split_off(at);
        slab.cached_bytes -= shed as u64 * size;
        out.push(addr);
        bus.emit(AllocEvent::PerCpuOverflow {
            vcpu: vcpu.index(),
            class: class as u16,
            shed: out.len() as u32,
        });
        FreeOutcome::Overflow(out)
    }

    /// Sets a vCPU's byte budget, evicting from the largest size classes
    /// first when shrinking. Returns evicted objects grouped by class.
    // lint:allow(event-completeness) the resizer that drives this emits
    // ResizerSteal/ResizerShrink with the outcome; emitting here too would
    // double-count the eviction.
    pub fn set_max_bytes(&mut self, vcpu: VcpuId, bytes: u64) -> Vec<(usize, Vec<u64>)> {
        let sizes = self.sizes.clone();
        let slab = self.slab_mut(vcpu);
        slab.max_bytes = bytes;
        let mut evicted = Vec::new();
        // Shrink larger size classes first (§4.1).
        for cl in (0..sizes.len()).rev() {
            if slab.capacity_bytes <= bytes {
                break;
            }
            let cslab = &mut slab.classes[cl];
            if cslab.capacity == 0 {
                continue;
            }
            let excess_bytes = slab.capacity_bytes - bytes;
            // u64-domain math, bounded by the class's own capacity before
            // narrowing — an unchecked `as u32` wraps for multi-GiB excess.
            let drop_slots = excess_bytes.div_ceil(sizes[cl]).min(cslab.capacity as u64);
            let drop_slots = u32::try_from(drop_slots).expect("slots bounded by capacity: u32");
            cslab.capacity -= drop_slots;
            slab.capacity_bytes -= drop_slots as u64 * sizes[cl];
            if cslab.objs.len() as u32 > cslab.capacity {
                let shed = cslab.objs.len() - cslab.capacity as usize;
                let at = cslab.objs.len() - shed;
                let objs = cslab.objs.split_off(at);
                slab.cached_bytes -= shed as u64 * sizes[cl];
                evicted.push((cl, objs));
            }
        }
        evicted
    }

    /// The heterogeneous resize step (§4.1): the `top_n` caches with the
    /// most misses this interval each try to grow by `step` bytes, stealing
    /// budget round-robin from the quietest caches (never below `floor`).
    /// Interval miss counters reset afterwards (each budget move emits a
    /// grow/shrink event pair). Returns evictions to forward to the
    /// transfer cache.
    pub fn rebalance(
        &mut self,
        top_n: usize,
        step: u64,
        floor: u64,
        bus: &mut EventBus,
    ) -> Vec<(usize, Vec<u64>)> {
        let mut populated: Vec<usize> = (0..self.slabs.len())
            .filter(|&i| self.slabs[i].is_some())
            .collect();
        populated.sort_by_key(|&i| {
            std::cmp::Reverse(self.slabs[i].as_ref().expect("populated").misses_interval)
        });
        let growers: Vec<usize> = populated
            .iter()
            .copied()
            .take(top_n)
            .filter(|&i| self.slabs[i].as_ref().expect("populated").misses_interval > 0)
            .collect();
        let mut donors: Vec<usize> = populated
            .iter()
            .copied()
            .filter(|i| !growers.contains(i))
            .collect();
        donors.reverse(); // quietest first
        let mut evicted = Vec::new();
        let mut donor_rr = 0usize;
        for &g in &growers {
            // Find a donor with at least `step` above the floor, round-robin.
            let mut found = None;
            for k in 0..donors.len() {
                let d = donors[(donor_rr + k) % donors.len()];
                let dmax = self.slabs[d].as_ref().expect("populated").max_bytes;
                if dmax >= floor + step {
                    found = Some((d, dmax));
                    donor_rr = (donor_rr + k + 1) % donors.len().max(1);
                    break;
                }
            }
            let Some((d, dmax)) = found else { continue };
            evicted.extend(self.set_max_bytes(VcpuId(d as u32), dmax - step));
            bus.emit(AllocEvent::ResizerShrink {
                vcpu: d,
                bytes: step,
            });
            let gmax = self.slabs[g].as_ref().expect("populated").max_bytes;
            self.slabs[g].as_mut().expect("populated").max_bytes = gmax + step;
            bus.emit(AllocEvent::ResizerGrow {
                vcpu: g,
                bytes: step,
            });
        }
        for slab in self.slabs.iter_mut().flatten() {
            slab.misses_interval = 0;
        }
        evicted
    }

    /// Lifetime miss count for one vCPU (Figure 9b).
    pub fn misses_total(&self, vcpu: VcpuId) -> u64 {
        self.slabs
            .get(vcpu.index())
            .and_then(|s| s.as_ref())
            .map_or(0, |s| s.misses_total)
    }

    /// Lifetime miss counts indexed by vCPU (0 for unpopulated slots) — the
    /// Figure 9b distribution.
    pub fn miss_counts(&self) -> Vec<u64> {
        self.slabs
            .iter()
            .map(|s| s.as_ref().map_or(0, |s| s.misses_total))
            .collect()
    }

    /// Current byte budget for one vCPU.
    pub fn max_bytes(&self, vcpu: VcpuId) -> u64 {
        self.slabs
            .get(vcpu.index())
            .and_then(|s| s.as_ref())
            .map_or(self.default_max_bytes, |s| s.max_bytes)
    }

    /// Bytes currently cached across all vCPUs (front-end external
    /// fragmentation).
    pub fn cached_bytes_total(&self) -> u64 {
        self.slabs.iter().flatten().map(|s| s.cached_bytes).sum()
    }

    /// Number of populated vCPU slabs.
    pub fn populated_count(&self) -> usize {
        self.slabs.iter().flatten().count()
    }

    /// Objects cached per size class across every vCPU slab (the per-CPU
    /// term of the sanitizer's object-conservation audit).
    pub fn cached_objects_by_class(&self) -> Vec<u64> {
        let mut counts = vec![0u64; self.sizes.len()];
        for slab in self.slabs.iter().flatten() {
            for (cl, cslab) in slab.classes.iter().enumerate() {
                counts[cl] += cslab.objs.len() as u64;
            }
        }
        counts
    }

    /// Background idle-cache decay: classes not touched since the previous
    /// pass return half their cached objects (and the matching capacity)
    /// toward the middle tier, modelling production TCMalloc's reclaim of
    /// idle per-CPU caches. Returns evictions grouped by class.
    pub fn decay(&mut self) -> Vec<(usize, Vec<u64>)> {
        let mut out: Vec<(usize, Vec<u64>)> = Vec::new();
        for slab in self.slabs.iter_mut().flatten() {
            for (cl, cslab) in slab.classes.iter_mut().enumerate() {
                if cslab.touched {
                    cslab.touched = false;
                    continue;
                }
                if cslab.objs.is_empty() {
                    // Idle and empty: release granted capacity too.
                    slab.capacity_bytes -= cslab.capacity as u64 * self.sizes[cl];
                    cslab.capacity = 0;
                    continue;
                }
                // Reclaim the *cold end* of the stack: the oldest objects
                // are the residue pinning otherwise-dead spans.
                let shed = cslab.objs.len().div_ceil(2);
                let objs: Vec<u64> = cslab.objs.drain(..shed).collect();
                slab.cached_bytes -= shed as u64 * self.sizes[cl];
                let cap_drop = (shed as u32).min(cslab.capacity);
                cslab.capacity -= cap_drop;
                slab.capacity_bytes -= cap_drop as u64 * self.sizes[cl];
                out.push((cl, objs));
            }
        }
        out
    }

    /// Flushes every cached object, grouped by class (used at teardown and
    /// by tests to drain the tier).
    // lint:allow(event-completeness) teardown drain: evicted objects are
    // handed back to the caller, whose reinsertion paths emit.
    pub fn flush_all(&mut self) -> Vec<(usize, Vec<u64>)> {
        let mut out = Vec::new();
        for slab in self.slabs.iter_mut().flatten() {
            for (cl, cslab) in slab.classes.iter_mut().enumerate() {
                if !cslab.objs.is_empty() {
                    slab.cached_bytes -= cslab.objs.len() as u64 * self.sizes[cl];
                    out.push((cl, std::mem::take(&mut cslab.objs)));
                }
            }
        }
        out
    }
}

#[cfg(test)]
// Tests may unwrap: a panic IS the failure report here.
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::config::TcmallocConfig;
    use wsc_sim_hw::cost::CostModel;
    use wsc_sim_os::clock::Clock;

    fn caches(max_bytes: u64) -> PerCpuCaches {
        PerCpuCaches::new(&SizeClassTable::production(), max_bytes)
    }

    fn bus() -> EventBus {
        EventBus::new(
            &TcmallocConfig::baseline(),
            CostModel::production(),
            Clock::new(),
        )
    }

    const V0: VcpuId = VcpuId(0);
    const V1: VcpuId = VcpuId(1);

    #[test]
    fn cold_alloc_misses_then_hits_after_refill() {
        let mut c = caches(3 << 20);
        let mut b = bus();
        assert_eq!(c.alloc(V0, 3, &mut b), None);
        assert_eq!(c.misses_total(V0), 1);
        let rest = c.refill(V0, 3, vec![0x1000, 0x2000, 0x3000], &mut b);
        assert!(rest.is_empty());
        assert_eq!(c.alloc(V0, 3, &mut b), Some(0x3000), "LIFO order");
        assert_eq!(c.alloc(V0, 3, &mut b), Some(0x2000));
    }

    #[test]
    fn free_caches_until_capacity() {
        let mut c = caches(3 << 20);
        let mut b = bus();
        // Establish capacity via a refill.
        c.refill(V0, 0, vec![8], &mut b);
        let batch = c.batches[0] as usize;
        let mut overflowed = false;
        for i in 0..10 * batch as u64 {
            match c.free(V0, 0, 0x100000 + i * 8, &mut b) {
                FreeOutcome::Cached => {}
                FreeOutcome::Overflow(objs) => {
                    assert_eq!(objs.len(), batch);
                    overflowed = true;
                    break;
                }
            }
        }
        // With a 3 MiB budget the cache keeps growing for a while; either
        // it absorbed everything or it eventually shed a batch.
        let _ = overflowed;
        assert!(c.cached_bytes_total() > 0);
    }

    #[test]
    fn tiny_budget_overflows() {
        let mut c = caches(64); // 64-byte budget: almost nothing fits
        let mut b = bus();
        c.refill(V0, 0, vec![8], &mut b);
        let mut saw_overflow = false;
        for i in 1..100u64 {
            if let FreeOutcome::Overflow(objs) = c.free(V0, 0, i * 8, &mut b) {
                assert!(!objs.is_empty());
                saw_overflow = true;
                break;
            }
        }
        assert!(saw_overflow);
        assert!(c.misses_total(V0) > 0);
    }

    #[test]
    fn budget_is_enforced() {
        let mut c = caches(4096);
        let mut b = bus();
        // Pump many classes; capacity bytes must never exceed the budget.
        for cl in 0..20 {
            let _ = c.alloc(V0, cl, &mut b);
            let addrs: Vec<u64> = (0..64u64).map(|i| 0x40000000 + i * 4096).collect();
            let _ = c.refill(V0, cl, addrs, &mut b);
        }
        let slab = c.slabs[0].as_ref().unwrap();
        assert!(
            slab.capacity_bytes <= 4096,
            "capacity {} > budget",
            slab.capacity_bytes
        );
    }

    #[test]
    fn shrink_evicts_larger_classes_first() {
        let mut c = caches(1 << 20);
        let mut b = bus();
        // Fill a small class and a large class.
        c.refill(V0, 0, (0..32u64).map(|i| i * 8).collect(), &mut b);
        let big_cl = c.sizes.len() - 5;
        let big_sz = c.sizes[big_cl];
        c.refill(
            V0,
            big_cl,
            (0..2u64).map(|i| 0x7000_0000 + i * big_sz).collect(),
            &mut b,
        );
        let evicted = c.set_max_bytes(V0, 512);
        assert!(!evicted.is_empty());
        // The first eviction must come from the larger class.
        assert_eq!(evicted[0].0, big_cl);
    }

    #[test]
    fn rebalance_moves_budget_to_hot_cache() {
        let mut c = caches(1 << 20);
        let mut b = bus();
        // V0 is hot (many misses); V1 is idle but populated.
        for _ in 0..100 {
            let _ = c.alloc(V0, 0, &mut b);
        }
        let _ = c.alloc(V1, 0, &mut b);
        c.slabs[1].as_mut().unwrap().misses_interval = 0; // force idle
        let before0 = c.max_bytes(V0);
        let before1 = c.max_bytes(V1);
        c.rebalance(5, 256 << 10, 128 << 10, &mut b);
        assert!(c.max_bytes(V0) > before0, "hot cache grew");
        assert!(c.max_bytes(V1) < before1, "idle cache shrank");
        // Budget conserved.
        assert_eq!(c.max_bytes(V0) + c.max_bytes(V1), before0 + before1);
    }

    #[test]
    fn rebalance_respects_floor() {
        let mut c = caches(200 << 10);
        let mut b = bus();
        for _ in 0..10 {
            let _ = c.alloc(V0, 0, &mut b);
        }
        let _ = c.alloc(V1, 0, &mut b);
        c.slabs[1].as_mut().unwrap().misses_interval = 0;
        // Donor has 200 KiB; floor 128 KiB; step 256 KiB cannot be met.
        c.rebalance(5, 256 << 10, 128 << 10, &mut b);
        assert_eq!(c.max_bytes(V1), 200 << 10, "donor untouched below floor");
    }

    #[test]
    fn interval_misses_reset_after_rebalance() {
        let mut c = caches(1 << 20);
        let mut b = bus();
        let _ = c.alloc(V0, 0, &mut b);
        assert_eq!(c.slabs[0].as_ref().unwrap().misses_interval, 1);
        c.rebalance(5, 64 << 10, 8 << 10, &mut b);
        assert_eq!(c.slabs[0].as_ref().unwrap().misses_interval, 0);
        assert_eq!(c.misses_total(V0), 1, "lifetime counter survives");
    }

    #[test]
    fn flush_returns_everything() {
        let mut c = caches(1 << 20);
        let mut b = bus();
        c.refill(V0, 2, vec![0x100, 0x200], &mut b);
        c.refill(V1, 4, vec![0x300], &mut b);
        let flushed = c.flush_all();
        let total: usize = flushed.iter().map(|(_, v)| v.len()).sum();
        assert_eq!(total, 3);
        assert_eq!(c.cached_bytes_total(), 0);
    }

    #[test]
    fn huge_byte_budget_does_not_wrap_slot_math() {
        // Regression for the lossy casts: a per-CPU budget large enough
        // that byte→slot conversions overflow u32 if computed narrowly
        // (e.g. 64 GiB / 8 B = 2^33 slots). All slot counts must stay
        // bounded by per-class caps, capacity bytes by the budget, and a
        // later shrink must not wrap when the excess is multi-GiB.
        let huge = 64u64 << 30;
        let mut c = caches(huge);
        let mut b = bus();
        for cl in [0usize, 3, 10] {
            let _ = c.alloc(V0, cl, &mut b);
            let addrs: Vec<u64> = (0..128u64).map(|i| 0x5000_0000 + i * (1 << 20)).collect();
            let _ = c.refill(V0, cl, addrs, &mut b);
        }
        {
            let slab = c.slabs[0].as_ref().unwrap();
            assert!(slab.capacity_bytes <= huge);
            for (cl, cslab) in slab.classes.iter().enumerate() {
                assert!(
                    cslab.capacity <= c.class_caps[cl],
                    "class {cl} capacity {} above cap {}",
                    cslab.capacity,
                    c.class_caps[cl]
                );
            }
        }
        // Shrinking from a 64 GiB budget to 1 KiB exercises the
        // excess_bytes.div_ceil path with a quotient far above u32::MAX.
        let _ = c.set_max_bytes(V0, 1024);
        let slab = c.slabs[0].as_ref().unwrap();
        assert!(
            slab.capacity_bytes <= 1024 || slab.classes.iter().all(|s| s.capacity == 0),
            "shrink left capacity {} over budget",
            slab.capacity_bytes
        );
    }

    #[test]
    fn lazy_population() {
        let mut c = caches(1 << 20);
        let mut b = bus();
        assert_eq!(c.populated_count(), 0);
        let _ = c.alloc(VcpuId(7), 0, &mut b);
        assert_eq!(c.populated_count(), 1, "only vCPU 7 populated");
    }
}
