//! A TCMalloc-class hierarchical memory allocator with the warehouse-scale
//! redesigns of *Characterizing a Memory Allocator at Warehouse Scale*
//! (ASPLOS '24).
//!
//! The allocator implements the full production architecture (Figure 1):
//!
//! * ~85 [size classes](size_class) up to 256 KiB,
//! * lock-free-style [per-CPU front-end caches](percpu) indexed by dense
//!   virtual CPU IDs, with the §4.1 **heterogeneous dynamic sizing**,
//! * a [transfer cache](transfer) tier with the §4.2 **NUCA-aware
//!   per-LLC-domain sharding**,
//! * per-class [central free lists](central) managing spans, with the §4.3
//!   **span prioritization** (L = 8 occupancy lists),
//! * a [hugepage-aware pageheap](pageheap) (filler / region / cache) with
//!   the §4.4 **lifetime-aware hugepage filler** (capacity threshold C = 16),
//! * production-style [allocation sampling](wsc_telemetry::gwp) (1 / 2 MiB)
//!   and complete [cycle and fragmentation accounting](stats).
//!
//! Memory itself is a *simulated* 64-bit address space provided by
//! [`wsc_sim_os`]; every placement decision, hugepage backing state, and
//! cache-tier latency is therefore observable — which is the point of the
//! reproduction. All policies, parameters, and data structures match the
//! paper (and the open-source TCMalloc where the paper defers to it).
//!
//! # Quick start
//!
//! ```
//! use wsc_tcmalloc::{Tcmalloc, TcmallocConfig};
//! use wsc_sim_hw::topology::{CpuId, Platform};
//! use wsc_sim_os::clock::Clock;
//!
//! let platform = Platform::chiplet("milan-like", 2, 4, 8, 2);
//! let mut tcm = Tcmalloc::new(TcmallocConfig::optimized(), platform, Clock::new());
//!
//! let alloc = tcm.malloc(1024, CpuId(3));
//! assert!(alloc.actual_bytes >= 1024);
//! tcm.free(alloc.addr, 1024, CpuId(3));
//!
//! let frag = tcm.fragmentation();
//! assert_eq!(frag.live_bytes, 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod alloc;
pub mod central;
pub mod config;
pub mod deferred;
pub mod events;
pub mod interleave;
pub mod memory;
pub mod pageheap;
pub mod pagemap;
pub mod percpu;
pub mod size_class;
pub mod span;
pub mod stats;
pub mod transfer;

pub use alloc::{AllocOutcome, FreeError, FreeOutcomeInfo, Tcmalloc};
pub use config::{FreeArm, PagemapArm, TcmallocConfig};
pub use deferred::{DeferredFrees, QueuedVia, MSG_BATCH};
pub use events::{AllocEvent, EventBus, EventSink, Off, Recorder, Tee, TraceRing};
pub use pageheap::{AllocError, OsLayer};
pub use span::{ArenaStats, SpanId};
pub use stats::{CycleCategory, CycleStats, FragmentationBreakdown, StatsView};
pub use wsc_sanitizer::{ErrorKind, SanitizeLevel, SanitizerReport};
