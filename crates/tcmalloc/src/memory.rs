//! A real-memory backend: store actual bytes behind the simulated heap.
//!
//! The allocator proper manages a *simulated* 64-bit address space so every
//! placement decision is observable. [`MemoryPool`] closes the loop for
//! downstream users who want a working allocator, not only a simulator: it
//! pairs a [`Tcmalloc`] instance with a backing store that materializes each
//! mapped hugepage as real memory, so the addresses `malloc` returns can be
//! read and written like a heap.
//!
//! # Example
//!
//! ```
//! use wsc_tcmalloc::memory::MemoryPool;
//! use wsc_tcmalloc::TcmallocConfig;
//! use wsc_sim_hw::topology::{CpuId, Platform};
//!
//! let platform = Platform::chiplet("m", 1, 2, 4, 2);
//! let mut pool = MemoryPool::new(TcmallocConfig::optimized(), platform);
//! let obj = pool.alloc(11, CpuId(0));
//! pool.write(obj, b"hello world");
//! assert_eq!(pool.read(obj, 11), b"hello world");
//! pool.free(obj, CpuId(0));
//! ```

use crate::alloc::Tcmalloc;
use crate::config::TcmallocConfig;
use std::collections::HashMap;
use wsc_sim_hw::topology::{CpuId, Platform};
use wsc_sim_os::addr::HUGE_PAGE_BYTES;
use wsc_sim_os::clock::Clock;

/// A handle to a live allocation in a [`MemoryPool`].
///
/// Carries the address and requested size so frees and accesses are checked.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct PoolPtr {
    addr: u64,
    size: u64,
}

impl PoolPtr {
    /// The simulated address (stable for the allocation's lifetime).
    pub fn addr(self) -> u64 {
        self.addr
    }

    /// The requested allocation size in bytes.
    pub fn size(self) -> u64 {
        self.size
    }
}

/// A [`Tcmalloc`] with real backing memory, materialized hugepage-by-
/// hugepage on first touch (like the kernel faulting pages in).
#[derive(Debug)]
pub struct MemoryPool {
    tcm: Tcmalloc,
    clock: Clock,
    /// hugepage index -> backing storage.
    // lint:allow(hashmap-decl) keyed by hugepage index; never iterated
    frames: HashMap<u64, Box<[u8]>>,
    // lint:allow(hashmap-decl) keyed by object address; never iterated
    live: HashMap<u64, u64>,
}

impl MemoryPool {
    /// Creates a pool over a fresh allocator.
    pub fn new(cfg: TcmallocConfig, platform: Platform) -> Self {
        let clock = Clock::new();
        Self {
            tcm: Tcmalloc::new(cfg, platform, clock.clone()),
            clock,
            frames: HashMap::new(),
            live: HashMap::new(),
        }
    }

    /// Allocates `size` bytes on behalf of a thread on `cpu`.
    pub fn alloc(&mut self, size: u64, cpu: CpuId) -> PoolPtr {
        let out = self.tcm.malloc(size, cpu);
        self.live.insert(out.addr, size);
        PoolPtr {
            addr: out.addr,
            size,
        }
    }

    /// Frees an allocation.
    ///
    /// # Panics
    ///
    /// Panics if `ptr` is not live (double free / forged handle).
    pub fn free(&mut self, ptr: PoolPtr, cpu: CpuId) {
        let recorded = self
            .live
            .remove(&ptr.addr)
            .expect("free of pointer that is not live");
        assert_eq!(recorded, ptr.size, "freed with a different size");
        self.tcm.free(ptr.addr, ptr.size, cpu);
    }

    fn check_access(&self, ptr: PoolPtr, len: usize) {
        let recorded = self
            .live
            .get(&ptr.addr)
            .expect("access to pointer that is not live");
        assert!(
            len as u64 <= *recorded,
            "access of {len} bytes exceeds allocation of {recorded}"
        );
    }

    fn frame(&mut self, hp: u64) -> &mut [u8] {
        self.frames
            .entry(hp)
            .or_insert_with(|| vec![0u8; HUGE_PAGE_BYTES as usize].into_boxed_slice())
    }

    /// Writes `data` at the start of the allocation.
    ///
    /// # Panics
    ///
    /// Panics if `ptr` is not live or `data` exceeds the allocation.
    pub fn write(&mut self, ptr: PoolPtr, data: &[u8]) {
        self.check_access(ptr, data.len());
        let mut addr = ptr.addr;
        let mut rest = data;
        while !rest.is_empty() {
            let hp = addr / HUGE_PAGE_BYTES;
            let off = (addr % HUGE_PAGE_BYTES) as usize;
            let room = HUGE_PAGE_BYTES as usize - off;
            let take = room.min(rest.len());
            self.frame(hp)[off..off + take].copy_from_slice(&rest[..take]);
            rest = &rest[take..];
            addr += take as u64;
        }
    }

    /// Reads `len` bytes from the start of the allocation.
    ///
    /// # Panics
    ///
    /// Panics if `ptr` is not live or `len` exceeds the allocation.
    pub fn read(&mut self, ptr: PoolPtr, len: usize) -> Vec<u8> {
        self.check_access(ptr, len);
        let mut out = Vec::with_capacity(len);
        let mut addr = ptr.addr;
        while out.len() < len {
            let hp = addr / HUGE_PAGE_BYTES;
            let off = (addr % HUGE_PAGE_BYTES) as usize;
            let room = HUGE_PAGE_BYTES as usize - off;
            let take = room.min(len - out.len());
            out.extend_from_slice(&self.frame(hp)[off..off + take]);
            addr += take as u64;
        }
        out
    }

    /// Advances the pool's clock and runs allocator maintenance.
    pub fn tick(&mut self, delta_ns: u64) {
        self.clock.advance(delta_ns);
        self.tcm.maintain();
    }

    /// The underlying allocator (telemetry access).
    pub fn allocator(&self) -> &Tcmalloc {
        &self.tcm
    }

    /// Live allocations.
    pub fn live_count(&self) -> usize {
        self.live.len()
    }

    /// Real bytes materialized for backing storage.
    pub fn backing_bytes(&self) -> u64 {
        self.frames.len() as u64 * HUGE_PAGE_BYTES
    }
}

#[cfg(test)]
// Tests may unwrap: a panic IS the failure report here.
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    fn pool() -> MemoryPool {
        MemoryPool::new(
            TcmallocConfig::baseline(),
            Platform::chiplet("t", 1, 2, 4, 2),
        )
    }

    #[test]
    fn data_round_trips() {
        let mut p = pool();
        let a = p.alloc(64, CpuId(0));
        p.write(a, &[7u8; 64]);
        assert_eq!(p.read(a, 64), vec![7u8; 64]);
        p.free(a, CpuId(0));
    }

    #[test]
    fn neighbouring_objects_do_not_clobber() {
        let mut p = pool();
        let ptrs: Vec<PoolPtr> = (0..100)
            .map(|i| {
                let ptr = p.alloc(32, CpuId(i % 8));
                p.write(ptr, &[i as u8; 32]);
                ptr
            })
            .collect();
        for (i, ptr) in ptrs.iter().enumerate() {
            assert_eq!(p.read(*ptr, 32), vec![i as u8; 32], "object {i} corrupted");
        }
    }

    #[test]
    fn data_survives_crossing_hugepage_boundaries() {
        let mut p = pool();
        // A 5 MiB allocation spans 3 hugepages.
        let big = p.alloc(5 << 20, CpuId(0));
        let pattern: Vec<u8> = (0..(5usize << 20)).map(|i| (i % 251) as u8).collect();
        p.write(big, &pattern);
        assert_eq!(p.read(big, 5 << 20), pattern);
        p.free(big, CpuId(0));
    }

    #[test]
    fn reuse_after_free_is_fresh_allocation() {
        let mut p = pool();
        let a = p.alloc(128, CpuId(0));
        p.write(a, &[0xAA; 128]);
        p.free(a, CpuId(0));
        let b = p.alloc(128, CpuId(0));
        // LIFO reuse gives the same address; the handle system still works.
        p.write(b, &[0xBB; 16]);
        assert_eq!(p.read(b, 16), vec![0xBB; 16]);
    }

    #[test]
    #[should_panic(expected = "not live")]
    fn double_free_is_caught() {
        let mut p = pool();
        let a = p.alloc(8, CpuId(0));
        p.free(a, CpuId(0));
        p.free(a, CpuId(0));
    }

    #[test]
    #[should_panic(expected = "exceeds allocation")]
    fn overread_is_caught() {
        let mut p = pool();
        let a = p.alloc(8, CpuId(0));
        let _ = p.read(a, 9);
    }

    #[test]
    fn backing_is_lazy() {
        let mut p = pool();
        let a = p.alloc(1 << 20, CpuId(0));
        // Nothing touched yet: no frames materialized.
        assert_eq!(p.backing_bytes(), 0);
        p.write(a, &[1]);
        assert!(p.backing_bytes() >= HUGE_PAGE_BYTES);
    }

    #[test]
    fn tick_runs_maintenance() {
        let mut p = pool();
        let a = p.alloc(64, CpuId(0));
        p.free(a, CpuId(0));
        p.tick(10 * wsc_sim_os::clock::NS_PER_SEC);
        assert_eq!(p.allocator().live_bytes(), 0);
    }
}
