//! Size-class table generation.
//!
//! §2.1: "allocations of small objects (< 256 KB) are rounded up to one of
//! 80–90 size classes", trading *internal* fragmentation (slack between the
//! requested size and the class) against *external* fragmentation (more
//! classes mean more per-class free lists caching unused memory). The table
//! here follows the production construction: fine 8-byte spacing for tiny
//! sizes, geometric ~1.15× growth with coarsening alignment above, spans
//! sized so that carving waste stays below 12.5%, and middle-tier batch
//! sizes of `clamp(64 KiB / size, 2, 32)` objects.

use wsc_sim_os::addr::TCMALLOC_PAGE_BYTES;

/// Largest "small" object: 256 KiB. Bigger requests bypass every cache tier
/// and go straight to the pageheap (§2.1).
pub const MAX_SMALL_SIZE: u64 = 256 << 10;

/// One size class.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SizeClassInfo {
    /// Object size in bytes (the rounded-up allocation size).
    pub size: u64,
    /// Span length for this class, in TCMalloc pages.
    pub pages: u32,
    /// Objects a full span yields (the *span capacity* of §4.4).
    pub objects_per_span: u32,
    /// Objects moved per middle-tier transaction (batch size).
    pub batch: u32,
}

/// The full size-class table.
///
/// # Example
///
/// ```
/// use wsc_tcmalloc::size_class::SizeClassTable;
///
/// let t = SizeClassTable::production();
/// let cl = t.class_for(100).unwrap();
/// assert!(t.info(cl).size >= 100);
/// assert!(t.class_for(300 << 10).is_none(), "large objects bypass classes");
/// ```
#[derive(Clone, Debug)]
pub struct SizeClassTable {
    classes: Vec<SizeClassInfo>,
    /// Dense O(1) lookup: `lut[(size + 7) >> 3]` → class index, for every
    /// `size <= MAX_SMALL_SIZE`. Valid because every class size is a
    /// multiple of 8, so all sizes in one 8-byte bucket share a class.
    lut: Vec<u16>,
}

/// Alignment required for a given size, mirroring the production table's
/// coarsening steps.
fn alignment_for(size: u64) -> u64 {
    match size {
        0..=512 => 8,
        513..=1024 => 64,
        1025..=4096 => 128,
        4097..=16384 => 512,
        16385..=65536 => 2048,
        _ => 4096,
    }
}

/// Picks the span length (in TCMalloc pages) for an object size: the
/// smallest span whose carving waste is below 12.5%, capped at 32 pages.
fn pages_for(size: u64) -> u32 {
    for pages in 1..=32u32 {
        let span_bytes = pages as u64 * TCMALLOC_PAGE_BYTES;
        if span_bytes < size {
            continue;
        }
        let waste = span_bytes % size;
        if (waste as f64) / (span_bytes as f64) < 0.125 {
            return pages;
        }
    }
    32
}

/// Middle-tier batch size: `clamp(64 KiB / size, 2, 32)` objects.
fn batch_for(size: u64) -> u32 {
    ((64 << 10) / size.max(1)).clamp(2, 32) as u32
}

impl SizeClassTable {
    /// Builds the production-style table (~85 classes up to 256 KiB).
    pub fn production() -> Self {
        let mut classes = Vec::new();
        let mut size = 8u64;
        while size <= MAX_SMALL_SIZE {
            let pages = pages_for(size);
            let objects = (pages as u64 * TCMALLOC_PAGE_BYTES / size) as u32;
            classes.push(SizeClassInfo {
                size,
                pages,
                objects_per_span: objects,
                batch: batch_for(size),
            });
            // Geometric growth with alignment coarsening; minimum one
            // alignment step so the table always advances.
            let grown = (size as f64 * 1.09) as u64;
            let align = alignment_for(grown);
            let next = grown.div_ceil(align) * align;
            size = next.max(size + alignment_for(size));
        }
        // Ensure the table tops out exactly at MAX_SMALL_SIZE.
        if classes.last().map(|c| c.size) != Some(MAX_SMALL_SIZE) {
            let pages = pages_for(MAX_SMALL_SIZE);
            classes.push(SizeClassInfo {
                size: MAX_SMALL_SIZE,
                pages,
                objects_per_span: (pages as u64 * TCMALLOC_PAGE_BYTES / MAX_SMALL_SIZE) as u32,
                batch: batch_for(MAX_SMALL_SIZE),
            });
        }
        Self::from_classes(classes)
    }

    /// Finishes table construction: checks the structural invariants the
    /// O(1) lookup depends on, then fills the dense table.
    fn from_classes(classes: Vec<SizeClassInfo>) -> Self {
        // Structural invariants (release-mode, not debug_assert): the
        // lookup table is only sound if the class list is strictly
        // increasing, 8-byte-granular, and tops out exactly at
        // MAX_SMALL_SIZE. A last-class size below MAX_SMALL_SIZE would turn
        // `class_for(MAX_SMALL_SIZE)` into an out-of-bounds class index.
        assert!(!classes.is_empty(), "empty size-class table");
        assert!(
            classes.windows(2).all(|w| w[0].size < w[1].size),
            "size classes must be strictly increasing"
        );
        assert!(
            classes.iter().all(|c| c.size % 8 == 0),
            "size classes must be multiples of 8"
        );
        // lint:allow(panic-surface) classes is asserted non-empty above.
        let largest = classes[classes.len() - 1].size;
        assert_eq!(
            largest, MAX_SMALL_SIZE,
            "largest size class must equal MAX_SMALL_SIZE"
        );
        assert!(
            classes.len() <= u16::MAX as usize,
            "class index must fit u16"
        );
        let buckets = ((MAX_SMALL_SIZE >> 3) + 1) as usize;
        let mut lut = vec![0u16; buckets];
        let mut class = 0usize;
        for (bucket, slot) in lut.iter_mut().enumerate() {
            // Largest size mapping to this bucket; bucket 0 is size 0,
            // which rounds up to the smallest class.
            let size = 8 * bucket as u64;
            while classes[class].size < size {
                class += 1;
            }
            *slot = class as u16;
        }
        Self { classes, lut }
    }

    /// Number of size classes.
    pub fn num_classes(&self) -> usize {
        self.classes.len()
    }

    /// The smallest class whose size fits `size`, or `None` when the request
    /// exceeds [`MAX_SMALL_SIZE`] (large allocations bypass the caches).
    /// Zero-byte requests round up to the smallest class.
    ///
    /// O(1): a single load from the dense table indexed by
    /// `(size + 7) >> 3`, as in production TCMalloc. In-bounds by
    /// construction — `from_classes` proves the largest class size equals
    /// [`MAX_SMALL_SIZE`], so every bucket holds a valid class index.
    pub fn class_for(&self, size: u64) -> Option<usize> {
        if size > MAX_SMALL_SIZE {
            return None;
        }
        // lint:allow(panic-surface) size <= MAX_SMALL_SIZE here, and the
        // LUT is sized for exactly that range (see from_classes).
        Some(self.lut[((size + 7) >> 3) as usize] as usize)
    }

    /// The binary-search classification the dense table replaced. Kept for
    /// the `hotpath` benchmark baseline and the exhaustive equivalence test.
    pub fn class_for_search(&self, size: u64) -> Option<usize> {
        if size > MAX_SMALL_SIZE {
            return None;
        }
        Some(self.classes.partition_point(|c| c.size < size))
    }

    /// Metadata for a class index.
    ///
    /// # Panics
    ///
    /// Panics if `class` is out of range.
    pub fn info(&self, class: usize) -> &SizeClassInfo {
        &self.classes[class]
    }

    /// Iterates all classes in ascending size order.
    pub fn iter(&self) -> impl Iterator<Item = &SizeClassInfo> {
        self.classes.iter()
    }
}

#[cfg(test)]
// Tests may unwrap: a panic IS the failure report here.
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    fn table() -> SizeClassTable {
        SizeClassTable::production()
    }

    #[test]
    fn class_count_matches_paper_range() {
        let n = table().num_classes();
        assert!((75..=95).contains(&n), "paper says 80-90 classes, got {n}");
    }

    #[test]
    fn sizes_strictly_increasing_up_to_max() {
        let t = table();
        let sizes: Vec<u64> = t.iter().map(|c| c.size).collect();
        assert!(sizes.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(*sizes.last().unwrap(), MAX_SMALL_SIZE);
        assert_eq!(sizes[0], 8);
    }

    #[test]
    fn class_for_rounds_up() {
        let t = table();
        for req in [0u64, 1, 8, 9, 100, 1024, 5000, 100_000, MAX_SMALL_SIZE] {
            let cl = t.class_for(req).unwrap();
            let info = t.info(cl);
            assert!(info.size >= req, "class {} < request {req}", info.size);
            if cl > 0 {
                assert!(
                    t.info(cl - 1).size < req.max(1),
                    "not the tightest class for {req}"
                );
            }
        }
    }

    #[test]
    fn large_requests_have_no_class() {
        let t = table();
        assert_eq!(t.class_for(MAX_SMALL_SIZE + 1), None);
        assert_eq!(t.class_for(1 << 30), None);
    }

    #[test]
    fn internal_fragmentation_bounded() {
        // Slack between request and class stays modest (< 30% above the
        // tiny sizes; absolute 8B below).
        let t = table();
        for req in (1..=MAX_SMALL_SIZE).step_by(97) {
            let info = *t.info(t.class_for(req).unwrap());
            let slack = info.size - req;
            assert!(
                slack <= 8 || (slack as f64) < 0.30 * req as f64,
                "req {req} -> class {} slack {slack}",
                info.size
            );
        }
    }

    #[test]
    fn span_carving_waste_bounded() {
        let t = table();
        for c in t.iter() {
            let span_bytes = c.pages as u64 * TCMALLOC_PAGE_BYTES;
            let used = c.objects_per_span as u64 * c.size;
            assert!(used <= span_bytes);
            let waste = span_bytes - used;
            assert!(
                (waste as f64) < 0.125 * span_bytes as f64 || c.pages == 32,
                "class {} wastes {waste} of {span_bytes}",
                c.size
            );
            assert!(c.objects_per_span >= 1);
        }
    }

    #[test]
    fn batch_sizes_match_rule() {
        let t = table();
        for c in t.iter() {
            assert_eq!(c.batch, ((64u64 << 10) / c.size).clamp(2, 32) as u32);
        }
    }

    #[test]
    fn small_classes_fill_whole_spans() {
        let t = table();
        let c8 = t.info(t.class_for(8).unwrap());
        assert_eq!(c8.objects_per_span, 1024, "8 KiB span / 8 B = 1024 (§4.3)");
        let c16 = t.info(t.class_for(16).unwrap());
        assert_eq!(c16.objects_per_span, 512, "512 16-byte objects (§4.3)");
    }

    #[test]
    fn lookup_table_matches_binary_search_exhaustively() {
        // The dense table and the retired partition_point search must agree
        // for every representable small size (plus the reject boundary).
        let t = table();
        for size in 0..=MAX_SMALL_SIZE + 1 {
            assert_eq!(
                t.class_for(size),
                t.class_for_search(size),
                "lut/search divergence at size {size}"
            );
        }
    }

    #[test]
    fn boundary_at_max_small_size() {
        // Release-mode boundary contract (the old debug_assert compiled
        // away): MAX_SMALL_SIZE classifies to the last class,
        // MAX_SMALL_SIZE + 1 is rejected, and the returned index is
        // in-bounds for info() even with debug assertions off.
        let t = table();
        let cl = t.class_for(MAX_SMALL_SIZE).unwrap();
        assert_eq!(cl, t.num_classes() - 1);
        assert_eq!(t.info(cl).size, MAX_SMALL_SIZE);
        assert_eq!(t.class_for(MAX_SMALL_SIZE + 1), None);
        assert_eq!(t.class_for_search(MAX_SMALL_SIZE + 1), None);
    }

    #[test]
    #[should_panic(expected = "largest size class must equal MAX_SMALL_SIZE")]
    fn construction_rejects_short_table() {
        // The invariant is structural: a table whose largest class drifted
        // below MAX_SMALL_SIZE fails at construction, not at lookup time.
        SizeClassTable::from_classes(vec![SizeClassInfo {
            size: 8,
            pages: 1,
            objects_per_span: 1024,
            batch: 32,
        }]);
    }

    #[test]
    fn capacity_one_classes_exist() {
        // §4.4: "the leftmost data points show spans allocating large size
        // classes that can only hold one object."
        let t = table();
        assert!(t.iter().any(|c| c.objects_per_span == 1));
    }
}
