//! Size-class table generation.
//!
//! §2.1: "allocations of small objects (< 256 KB) are rounded up to one of
//! 80–90 size classes", trading *internal* fragmentation (slack between the
//! requested size and the class) against *external* fragmentation (more
//! classes mean more per-class free lists caching unused memory). The table
//! here follows the production construction: fine 8-byte spacing for tiny
//! sizes, geometric ~1.15× growth with coarsening alignment above, spans
//! sized so that carving waste stays below 12.5%, and middle-tier batch
//! sizes of `clamp(64 KiB / size, 2, 32)` objects.

use wsc_sim_os::addr::TCMALLOC_PAGE_BYTES;

/// Largest "small" object: 256 KiB. Bigger requests bypass every cache tier
/// and go straight to the pageheap (§2.1).
pub const MAX_SMALL_SIZE: u64 = 256 << 10;

/// One size class.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SizeClassInfo {
    /// Object size in bytes (the rounded-up allocation size).
    pub size: u64,
    /// Span length for this class, in TCMalloc pages.
    pub pages: u32,
    /// Objects a full span yields (the *span capacity* of §4.4).
    pub objects_per_span: u32,
    /// Objects moved per middle-tier transaction (batch size).
    pub batch: u32,
}

/// The full size-class table.
///
/// # Example
///
/// ```
/// use wsc_tcmalloc::size_class::SizeClassTable;
///
/// let t = SizeClassTable::production();
/// let cl = t.class_for(100).unwrap();
/// assert!(t.info(cl).size >= 100);
/// assert!(t.class_for(300 << 10).is_none(), "large objects bypass classes");
/// ```
#[derive(Clone, Debug)]
pub struct SizeClassTable {
    classes: Vec<SizeClassInfo>,
}

/// Alignment required for a given size, mirroring the production table's
/// coarsening steps.
fn alignment_for(size: u64) -> u64 {
    match size {
        0..=512 => 8,
        513..=1024 => 64,
        1025..=4096 => 128,
        4097..=16384 => 512,
        16385..=65536 => 2048,
        _ => 4096,
    }
}

/// Picks the span length (in TCMalloc pages) for an object size: the
/// smallest span whose carving waste is below 12.5%, capped at 32 pages.
fn pages_for(size: u64) -> u32 {
    for pages in 1..=32u32 {
        let span_bytes = pages as u64 * TCMALLOC_PAGE_BYTES;
        if span_bytes < size {
            continue;
        }
        let waste = span_bytes % size;
        if (waste as f64) / (span_bytes as f64) < 0.125 {
            return pages;
        }
    }
    32
}

/// Middle-tier batch size: `clamp(64 KiB / size, 2, 32)` objects.
fn batch_for(size: u64) -> u32 {
    ((64 << 10) / size.max(1)).clamp(2, 32) as u32
}

impl SizeClassTable {
    /// Builds the production-style table (~85 classes up to 256 KiB).
    pub fn production() -> Self {
        let mut classes = Vec::new();
        let mut size = 8u64;
        while size <= MAX_SMALL_SIZE {
            let pages = pages_for(size);
            let objects = (pages as u64 * TCMALLOC_PAGE_BYTES / size) as u32;
            classes.push(SizeClassInfo {
                size,
                pages,
                objects_per_span: objects,
                batch: batch_for(size),
            });
            // Geometric growth with alignment coarsening; minimum one
            // alignment step so the table always advances.
            let grown = (size as f64 * 1.09) as u64;
            let align = alignment_for(grown);
            let next = grown.div_ceil(align) * align;
            size = next.max(size + alignment_for(size));
        }
        // Ensure the table tops out exactly at MAX_SMALL_SIZE.
        if classes.last().map(|c| c.size) != Some(MAX_SMALL_SIZE) {
            let pages = pages_for(MAX_SMALL_SIZE);
            classes.push(SizeClassInfo {
                size: MAX_SMALL_SIZE,
                pages,
                objects_per_span: (pages as u64 * TCMALLOC_PAGE_BYTES / MAX_SMALL_SIZE) as u32,
                batch: batch_for(MAX_SMALL_SIZE),
            });
        }
        Self { classes }
    }

    /// Number of size classes.
    pub fn num_classes(&self) -> usize {
        self.classes.len()
    }

    /// The smallest class whose size fits `size`, or `None` when the request
    /// exceeds [`MAX_SMALL_SIZE`] (large allocations bypass the caches).
    /// Zero-byte requests round up to the smallest class.
    pub fn class_for(&self, size: u64) -> Option<usize> {
        if size > MAX_SMALL_SIZE {
            return None;
        }
        let idx = self.classes.partition_point(|c| c.size < size);
        debug_assert!(idx < self.classes.len());
        Some(idx)
    }

    /// Metadata for a class index.
    ///
    /// # Panics
    ///
    /// Panics if `class` is out of range.
    pub fn info(&self, class: usize) -> &SizeClassInfo {
        &self.classes[class]
    }

    /// Iterates all classes in ascending size order.
    pub fn iter(&self) -> impl Iterator<Item = &SizeClassInfo> {
        self.classes.iter()
    }
}

#[cfg(test)]
// Tests may unwrap: a panic IS the failure report here.
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    fn table() -> SizeClassTable {
        SizeClassTable::production()
    }

    #[test]
    fn class_count_matches_paper_range() {
        let n = table().num_classes();
        assert!((75..=95).contains(&n), "paper says 80-90 classes, got {n}");
    }

    #[test]
    fn sizes_strictly_increasing_up_to_max() {
        let t = table();
        let sizes: Vec<u64> = t.iter().map(|c| c.size).collect();
        assert!(sizes.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(*sizes.last().unwrap(), MAX_SMALL_SIZE);
        assert_eq!(sizes[0], 8);
    }

    #[test]
    fn class_for_rounds_up() {
        let t = table();
        for req in [0u64, 1, 8, 9, 100, 1024, 5000, 100_000, MAX_SMALL_SIZE] {
            let cl = t.class_for(req).unwrap();
            let info = t.info(cl);
            assert!(info.size >= req, "class {} < request {req}", info.size);
            if cl > 0 {
                assert!(
                    t.info(cl - 1).size < req.max(1),
                    "not the tightest class for {req}"
                );
            }
        }
    }

    #[test]
    fn large_requests_have_no_class() {
        let t = table();
        assert_eq!(t.class_for(MAX_SMALL_SIZE + 1), None);
        assert_eq!(t.class_for(1 << 30), None);
    }

    #[test]
    fn internal_fragmentation_bounded() {
        // Slack between request and class stays modest (< 30% above the
        // tiny sizes; absolute 8B below).
        let t = table();
        for req in (1..=MAX_SMALL_SIZE).step_by(97) {
            let info = *t.info(t.class_for(req).unwrap());
            let slack = info.size - req;
            assert!(
                slack <= 8 || (slack as f64) < 0.30 * req as f64,
                "req {req} -> class {} slack {slack}",
                info.size
            );
        }
    }

    #[test]
    fn span_carving_waste_bounded() {
        let t = table();
        for c in t.iter() {
            let span_bytes = c.pages as u64 * TCMALLOC_PAGE_BYTES;
            let used = c.objects_per_span as u64 * c.size;
            assert!(used <= span_bytes);
            let waste = span_bytes - used;
            assert!(
                (waste as f64) < 0.125 * span_bytes as f64 || c.pages == 32,
                "class {} wastes {waste} of {span_bytes}",
                c.size
            );
            assert!(c.objects_per_span >= 1);
        }
    }

    #[test]
    fn batch_sizes_match_rule() {
        let t = table();
        for c in t.iter() {
            assert_eq!(c.batch, ((64u64 << 10) / c.size).clamp(2, 32) as u32);
        }
    }

    #[test]
    fn small_classes_fill_whole_spans() {
        let t = table();
        let c8 = t.info(t.class_for(8).unwrap());
        assert_eq!(c8.objects_per_span, 1024, "8 KiB span / 8 B = 1024 (§4.3)");
        let c16 = t.info(t.class_for(16).unwrap());
        assert_eq!(c16.objects_per_span, 512, "512 16-byte objects (§4.3)");
    }

    #[test]
    fn capacity_one_classes_exist() {
        // §4.4: "the leftmost data points show spans allocating large size
        // classes that can only hold one object."
        let t = table();
        assert!(t.iter().any(|c| c.objects_per_span == 1));
    }
}
