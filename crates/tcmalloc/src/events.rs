//! The unified allocator event bus — the attribution spine.
//!
//! The paper's core contribution is *attribution*: knowing where malloc's
//! cycles and bytes go across the per-CPU front end, the transfer cache,
//! the central free lists, and the hugepage-aware pageheap (§3, Figure 2).
//! Before this module, that attribution was smeared across the codebase:
//! `CycleStats::charge` calls, `AllocationProfile` updates, the sanitizer's
//! shadow feed, and the GWP sampler each hooked the tiers ad-hoc.
//!
//! Now every cross-tier boundary emits exactly one [`AllocEvent`] through
//! the [`EventBus`], and every consumer is a sink over that one stream:
//!
//! * [`StatsView`](crate::stats::StatsView) derives [`CycleStats`]
//!   (Figure 6a) and the GWP [`AllocationProfile`] — cost-model charging
//!   happens *at emission*, so cycle attribution is consistent by
//!   construction,
//! * the sanitizer's shadow state is fed from `MallocDone` / `SpanRetire`
//!   events instead of hand-placed calls,
//! * a bounded deterministic [`TraceRing`] exports Chrome trace-event JSON
//!   (`wsc-bench` `trace --events out.json`, viewable in `chrome://tracing`
//!   or Perfetto),
//! * a [`Recorder`] captures the raw stream for the determinism and
//!   conservation tests, and
//! * a fan-out [`Tee`] composes further [`EventSink`]s.
//!
//! Determinism: timestamps come from the *simulated* [`Clock`], the fan-out
//! order is fixed (stats → sanitizer → trace → recorder → extra sinks), and
//! nothing consults the wall clock or ambient randomness — so the event log
//! of a run is byte-identical across `--threads N` and the golden figures
//! stay bit-identical.
//!
//! The OS-boundary events (`HugepageFill` / `HugepageBreak` /
//! `HugepageRelease`) mirror every `mmap` / `reoccupy` / `subrelease` /
//! `munmap` the pageheap issues, in call order — replaying them into a fresh
//! [`wsc_sim_os::pagetable::PageTable`] reconstructs the kernel's resident
//! set exactly (the conservation test in `tests/event_stream.rs`).

use crate::config::TcmallocConfig;
use crate::stats::{CycleStats, StatsView};
use std::collections::VecDeque;
use wsc_sanitizer::Sanitizer;
use wsc_sim_hw::cost::{AllocPath, CostModel};
use wsc_sim_os::clock::Clock;
use wsc_telemetry::gwp::AllocationProfile;

/// Why objects left a transfer-cache shard.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EvictReason {
    /// Anti-stranding plunder of an over-full NUCA domain shard (§4.2).
    Plunder,
    /// Idle-cache decay reclaim.
    Decay,
}

impl EvictReason {
    /// Short display name.
    pub fn name(self) -> &'static str {
        match self {
            EvictReason::Plunder => "plunder",
            EvictReason::Decay => "decay",
        }
    }
}

/// Which OS call a fault or latency excursion hit.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OsOp {
    /// `mmap` of fresh hugepages.
    Mmap,
    /// `madvise(DONTNEED)` subrelease.
    Subrelease,
}

impl OsOp {
    /// Short display name.
    pub fn name(self) -> &'static str {
        match self {
            OsOp::Mmap => "mmap",
            OsOp::Subrelease => "subrelease",
        }
    }
}

/// Identity of the span an object lives on, carried by [`AllocEvent::MallocDone`]
/// for the sanitizer's shadow feed (populated only when sanitizing, so the
/// fast path never pays the pagemap lookup).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SpanRef {
    /// Span id (the registry index).
    pub id: u32,
    /// Span base address.
    pub start: u64,
    /// Span length in TCMalloc pages.
    pub pages: u32,
}

/// One cross-tier boundary crossing. Every tier emits through the
/// [`EventBus`] exactly once at each boundary; consumers subscribe as
/// [`EventSink`]s instead of instrumenting the tiers themselves.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum AllocEvent {
    // --- Per-CPU front end (§4.1) ---
    /// Fast-path hit in a per-CPU cache.
    // lint:allow(event-completeness) the per-CPU tier reports hits via
    // EventBus::percpu_hit so batching can coalesce them; the bus itself
    // constructs PerCpuHit when emission is per-op.
    PerCpuHit {
        /// Dense virtual CPU id.
        vcpu: usize,
        /// Size class.
        class: u16,
    },
    /// Fast-path miss: the request falls through to the transfer tier.
    PerCpuMiss {
        /// Dense virtual CPU id.
        vcpu: usize,
        /// Size class.
        class: u16,
    },
    /// A free overflowed the per-CPU cache; a batch is shed to the middle
    /// tiers.
    PerCpuOverflow {
        /// Dense virtual CPU id.
        vcpu: usize,
        /// Size class.
        class: u16,
        /// Objects shed (the overflow batch).
        shed: u32,
    },
    /// The per-slab resizer stole unused capacity from another size class
    /// of the same vCPU cache to let `class` grow (§4.1: "we prioritize
    /// shrinking capacity for larger size classes").
    ResizerSteal {
        /// Dense virtual CPU id.
        vcpu: usize,
        /// The class whose unused capacity was taken.
        victim_class: u16,
        /// The class that grows.
        class: u16,
        /// Capacity bytes moved.
        bytes: u64,
    },
    /// Periodic rebalance grew a heavy cache's budget.
    ResizerGrow {
        /// Dense virtual CPU id.
        vcpu: usize,
        /// Budget bytes added.
        bytes: u64,
    },
    /// Periodic rebalance shrank a donor cache's budget.
    ResizerShrink {
        /// Dense virtual CPU id.
        vcpu: usize,
        /// Budget bytes removed.
        bytes: u64,
    },

    // --- Transfer cache (§4.2) ---
    /// Objects fetched from a transfer-cache shard.
    TransferHit {
        /// NUCA shard index (0 for the singleton central shard).
        shard: usize,
        /// Size class.
        class: u16,
        /// Objects moved.
        count: u32,
    },
    /// Objects inserted into a transfer-cache shard.
    TransferInsert {
        /// NUCA shard index.
        shard: usize,
        /// Size class.
        class: u16,
        /// Objects moved.
        count: u32,
    },
    /// Objects evicted from a shard (plunder or decay).
    TransferEvict {
        /// NUCA shard index.
        shard: usize,
        /// Size class.
        class: u16,
        /// Objects evicted.
        count: u32,
        /// Why they left.
        reason: EvictReason,
    },

    // --- Central free lists (§4.3) ---
    /// The central free list refilled the tiers above with a batch.
    CentralRefill {
        /// Size class.
        class: u16,
        /// Objects handed up.
        count: u32,
    },
    /// A batch of objects returned to the central free list.
    CentralReturn {
        /// Size class.
        class: u16,
        /// Objects handed down.
        count: u32,
    },
    /// A span was carved from the pageheap.
    SpanAlloc {
        /// Span id.
        id: u32,
        /// Base address.
        start: u64,
        /// Length in TCMalloc pages.
        pages: u32,
        /// Size class, or `None` for a large span.
        class: Option<u16>,
    },
    /// A fully-idle span returned to the pageheap (feeds the sanitizer's
    /// page mirror).
    SpanRetire {
        /// Span id.
        id: u32,
        /// Base address.
        start: u64,
        /// Length in TCMalloc pages.
        pages: u32,
        /// Size class, or `None` for a large span.
        class: Option<u16>,
    },

    // --- Hugepage-aware pageheap (§4.4) ---
    /// The filler placed a small run on a (partially used) hugepage.
    FillerPlace {
        /// Run base address.
        addr: u64,
        /// Run length in TCMalloc pages.
        pages: u32,
    },
    /// The region allocator placed a medium run (> 1, < 2 hugepages).
    RegionPlace {
        /// Run base address.
        addr: u64,
        /// Run length in TCMalloc pages.
        pages: u32,
    },
    /// The hugepage cache placed a large run (whole hugepages).
    CachePlace {
        /// Run base address.
        addr: u64,
        /// Run length in TCMalloc pages.
        pages: u32,
    },

    // --- OS boundary (simulated kernel) ---
    /// Hugepages became resident: a fresh `mmap` (`reused: false`) or a
    /// `reoccupy` of previously subreleased pages (`reused: true`).
    HugepageFill {
        /// Base address.
        base: u64,
        /// Extent in bytes.
        bytes: u64,
        /// Whether this re-occupies an already-mapped extent.
        reused: bool,
    },
    /// Pages subreleased to the OS, breaking the backing hugepage.
    HugepageBreak {
        /// Base address of the subreleased run.
        base: u64,
        /// Extent in bytes.
        bytes: u64,
    },
    /// Hugepages unmapped back to the OS.
    HugepageRelease {
        /// Base address.
        base: u64,
        /// Extent in bytes.
        bytes: u64,
    },

    // --- OS faults & graceful degradation (§2, §5) ---
    /// The simulated kernel misbehaved: the call failed (ENOMEM / EAGAIN /
    /// EINVAL) or took an injected latency excursion.
    OsFault {
        /// Which operation was hit.
        op: OsOp,
        /// Whether the call failed outright (false = latency spike only).
        failed: bool,
        /// Injected latency beyond the nominal syscall cost, ns.
        latency_ns: u64,
    },
    /// `mmap` succeeded but THP compaction failed: the mapping came back
    /// 4 KiB-backed, lowering hugepage coverage until a collapse re-promotes
    /// it.
    BackingDenied {
        /// Base address of the denied mapping.
        base: u64,
        /// Extent in bytes.
        bytes: u64,
    },
    /// A configured memory limit was reached at the OS boundary.
    LimitHit {
        /// True for the hard limit (allocation fails), false for the soft
        /// limit (synchronous release + retry).
        hard: bool,
        /// Resident bytes at the moment of the hit.
        resident: u64,
        /// The limit, bytes.
        limit: u64,
    },
    /// Synchronous release-and-retry after ENOMEM or a limit hit.
    ReleaseRetry {
        /// Retry attempt number (0-based).
        attempt: u32,
        /// Bytes released back to the OS before retrying.
        released_bytes: u64,
    },
    /// The pageheap entered degraded mode: at least one injected OS fault
    /// or denied backing since the last healthy state.
    Degraded {
        /// 4 KiB-backed hugepages currently awaiting re-promotion.
        denied_hugepages: u64,
    },
    /// The pageheap recovered: every denied hugepage re-promoted and no
    /// faults observed since the last maintenance pass.
    Recovered {
        /// Hugepages re-promoted over the whole degraded episode.
        repromoted: u64,
    },

    // --- Pagemap ---
    /// A span's pages were entered into the pagemap.
    PagemapSet {
        /// First-page address.
        addr: u64,
        /// Pages covered.
        pages: u32,
    },
    /// A span's pages were cleared from the pagemap.
    PagemapClear {
        /// First-page address.
        addr: u64,
        /// Pages covered.
        pages: u32,
    },

    // --- Sampler / operation completion ---
    /// The GWP sampler picked this allocation (1 per ~2 MiB allocated).
    SamplerPick {
        /// Object address.
        addr: u64,
        /// Requested bytes.
        size: u64,
        /// Allocation-site hash.
        site: u64,
        /// Simulated time of the pick.
        now_ns: u64,
        /// Inverse sampling probability (objects represented).
        weight: f64,
    },
    /// A sampled object was freed; its lifetime is now known.
    SampledFree {
        /// Requested bytes at allocation.
        size: u64,
        /// Observed lifetime.
        lifetime_ns: u64,
        /// Sampling weight.
        weight: f64,
    },
    /// An allocation completed. Carries everything the derived views need:
    /// the satisfying tier for cycle charging, the shadow payload for the
    /// sanitizer, and the byte sizes for conservation.
    MallocDone {
        /// Tier that satisfied the request.
        path: AllocPath,
        /// Object address.
        addr: u64,
        /// Requested bytes.
        size: u64,
        /// Bytes actually reserved (size-class rounding).
        actual: u64,
        /// Whether the next-object prefetch was issued.
        prefetched: bool,
        /// Whether this allocation was sampled.
        sampled: bool,
        /// Size class (populated only when sanitizing).
        class: Option<u16>,
        /// Span identity (populated only when sanitizing).
        span: Option<SpanRef>,
    },
    /// A free completed.
    FreeDone {
        /// Tier that absorbed the free.
        path: AllocPath,
        /// Object address.
        addr: u64,
        /// Requested bytes at allocation.
        size: u64,
    },

    // --- Cross-thread frees (ownership & deferred lists) ---
    /// A free issued by a non-owner vCPU was queued onto the owning span's
    /// deferred list (atomic-list arm) or the owner's inbox (message-passing
    /// arm) instead of the local per-CPU cache.
    RemoteFreeQueued {
        /// The vCPU that issued the free.
        vcpu: usize,
        /// The vCPU that owns the object's span.
        owner: usize,
        /// Size class.
        class: u16,
        /// Object address.
        addr: u64,
    },
    /// A batch of deferred remote frees was adopted by the owning side at a
    /// deterministic drain point and returned to the middle tiers.
    RemoteFreeDrained {
        /// The vCPU performing the drain (the adopting side).
        vcpu: usize,
        /// Size class.
        class: u16,
        /// Objects drained.
        count: u32,
    },
    /// Synchronization cost charged for cross-thread traffic: a contended
    /// CAS, a message-batch handoff, or a deferred-list detach.
    ContentionCharged {
        /// The vCPU paying the cost.
        vcpu: usize,
        /// Cost-model nanoseconds charged.
        ns: f64,
    },

    // --- Batched fast-path emission (drain-point aggregates) ---
    /// Aggregate of fast-path [`AllocEvent::PerCpuHit`]s for one
    /// `(vcpu, class)`, flushed at a drain point while batched emission
    /// ([`TcmallocConfig::batch_fastpath_events`]) is engaged.
    // lint:allow(event-completeness) constructed by the bus's own flush
    // (sink plumbing by design): tiers report hits via
    // EventBus::percpu_hit, never by building the aggregate themselves.
    PerCpuHitBatch {
        /// Virtual CPU id.
        vcpu: usize,
        /// Size class.
        class: u16,
        /// Hits represented.
        count: u64,
    },
    /// Aggregate of fast-path operation completions flushed at a drain
    /// point while batched emission is engaged: `mallocs` unsampled
    /// per-CPU-path [`AllocEvent::MallocDone`]s and `frees` per-CPU-path
    /// [`AllocEvent::FreeDone`]s that were counted instead of emitted.
    FastPathFlush {
        /// Unsampled per-CPU-path allocations represented.
        mallocs: u64,
        /// How many of `mallocs` issued the next-object prefetch.
        prefetched: u64,
        /// Per-CPU-path frees represented.
        frees: u64,
    },
}

impl AllocEvent {
    /// Discriminant names, in declaration order — the event taxonomy.
    pub const KINDS: [&'static str; 36] = [
        "PerCpuHit",
        "PerCpuMiss",
        "PerCpuOverflow",
        "ResizerSteal",
        "ResizerGrow",
        "ResizerShrink",
        "TransferHit",
        "TransferInsert",
        "TransferEvict",
        "CentralRefill",
        "CentralReturn",
        "SpanAlloc",
        "SpanRetire",
        "FillerPlace",
        "RegionPlace",
        "CachePlace",
        "HugepageFill",
        "HugepageBreak",
        "HugepageRelease",
        "OsFault",
        "BackingDenied",
        "LimitHit",
        "ReleaseRetry",
        "Degraded",
        "Recovered",
        "PagemapSet",
        "PagemapClear",
        "SamplerPick",
        "SampledFree",
        "MallocDone",
        "FreeDone",
        "RemoteFreeQueued",
        "RemoteFreeDrained",
        "ContentionCharged",
        "PerCpuHitBatch",
        "FastPathFlush",
    ];

    /// This event's discriminant name (an entry of [`Self::KINDS`]).
    pub fn kind(&self) -> &'static str {
        match self {
            AllocEvent::PerCpuHit { .. } => "PerCpuHit",
            AllocEvent::PerCpuMiss { .. } => "PerCpuMiss",
            AllocEvent::PerCpuOverflow { .. } => "PerCpuOverflow",
            AllocEvent::ResizerSteal { .. } => "ResizerSteal",
            AllocEvent::ResizerGrow { .. } => "ResizerGrow",
            AllocEvent::ResizerShrink { .. } => "ResizerShrink",
            AllocEvent::TransferHit { .. } => "TransferHit",
            AllocEvent::TransferInsert { .. } => "TransferInsert",
            AllocEvent::TransferEvict { .. } => "TransferEvict",
            AllocEvent::CentralRefill { .. } => "CentralRefill",
            AllocEvent::CentralReturn { .. } => "CentralReturn",
            AllocEvent::SpanAlloc { .. } => "SpanAlloc",
            AllocEvent::SpanRetire { .. } => "SpanRetire",
            AllocEvent::FillerPlace { .. } => "FillerPlace",
            AllocEvent::RegionPlace { .. } => "RegionPlace",
            AllocEvent::CachePlace { .. } => "CachePlace",
            AllocEvent::HugepageFill { .. } => "HugepageFill",
            AllocEvent::HugepageBreak { .. } => "HugepageBreak",
            AllocEvent::HugepageRelease { .. } => "HugepageRelease",
            AllocEvent::OsFault { .. } => "OsFault",
            AllocEvent::BackingDenied { .. } => "BackingDenied",
            AllocEvent::LimitHit { .. } => "LimitHit",
            AllocEvent::ReleaseRetry { .. } => "ReleaseRetry",
            AllocEvent::Degraded { .. } => "Degraded",
            AllocEvent::Recovered { .. } => "Recovered",
            AllocEvent::PagemapSet { .. } => "PagemapSet",
            AllocEvent::PagemapClear { .. } => "PagemapClear",
            AllocEvent::SamplerPick { .. } => "SamplerPick",
            AllocEvent::SampledFree { .. } => "SampledFree",
            AllocEvent::MallocDone { .. } => "MallocDone",
            AllocEvent::FreeDone { .. } => "FreeDone",
            AllocEvent::RemoteFreeQueued { .. } => "RemoteFreeQueued",
            AllocEvent::RemoteFreeDrained { .. } => "RemoteFreeDrained",
            AllocEvent::ContentionCharged { .. } => "ContentionCharged",
            AllocEvent::PerCpuHitBatch { .. } => "PerCpuHitBatch",
            AllocEvent::FastPathFlush { .. } => "FastPathFlush",
        }
    }

    /// The tier (trace lane) an event belongs to.
    pub fn tier(&self) -> &'static str {
        match self {
            AllocEvent::PerCpuHit { .. }
            | AllocEvent::PerCpuMiss { .. }
            | AllocEvent::PerCpuOverflow { .. }
            | AllocEvent::ResizerSteal { .. }
            | AllocEvent::ResizerGrow { .. }
            | AllocEvent::ResizerShrink { .. }
            | AllocEvent::RemoteFreeQueued { .. }
            | AllocEvent::RemoteFreeDrained { .. }
            | AllocEvent::PerCpuHitBatch { .. } => "percpu",
            AllocEvent::TransferHit { .. }
            | AllocEvent::TransferInsert { .. }
            | AllocEvent::TransferEvict { .. } => "transfer",
            AllocEvent::CentralRefill { .. }
            | AllocEvent::CentralReturn { .. }
            | AllocEvent::SpanAlloc { .. }
            | AllocEvent::SpanRetire { .. } => "central",
            AllocEvent::FillerPlace { .. }
            | AllocEvent::RegionPlace { .. }
            | AllocEvent::CachePlace { .. } => "pageheap",
            AllocEvent::HugepageFill { .. }
            | AllocEvent::HugepageBreak { .. }
            | AllocEvent::HugepageRelease { .. }
            | AllocEvent::OsFault { .. }
            | AllocEvent::BackingDenied { .. }
            | AllocEvent::LimitHit { .. }
            | AllocEvent::ReleaseRetry { .. }
            | AllocEvent::Degraded { .. }
            | AllocEvent::Recovered { .. } => "os",
            AllocEvent::PagemapSet { .. } | AllocEvent::PagemapClear { .. } => "pagemap",
            AllocEvent::SamplerPick { .. }
            | AllocEvent::SampledFree { .. }
            | AllocEvent::MallocDone { .. }
            | AllocEvent::FreeDone { .. }
            | AllocEvent::ContentionCharged { .. }
            | AllocEvent::FastPathFlush { .. } => "op",
        }
    }

    /// The event payload as a Chrome trace-event `args` JSON object.
    pub fn args_json(&self) -> String {
        match *self {
            AllocEvent::PerCpuHit { vcpu, class } | AllocEvent::PerCpuMiss { vcpu, class } => {
                format!("{{\"vcpu\":{vcpu},\"class\":{class}}}")
            }
            AllocEvent::PerCpuOverflow { vcpu, class, shed } => {
                format!("{{\"vcpu\":{vcpu},\"class\":{class},\"shed\":{shed}}}")
            }
            AllocEvent::ResizerSteal {
                vcpu,
                victim_class,
                class,
                bytes,
            } => format!(
                "{{\"vcpu\":{vcpu},\"victim_class\":{victim_class},\"class\":{class},\"bytes\":{bytes}}}"
            ),
            AllocEvent::ResizerGrow { vcpu, bytes } | AllocEvent::ResizerShrink { vcpu, bytes } => {
                format!("{{\"vcpu\":{vcpu},\"bytes\":{bytes}}}")
            }
            AllocEvent::TransferHit {
                shard,
                class,
                count,
            }
            | AllocEvent::TransferInsert {
                shard,
                class,
                count,
            } => format!("{{\"shard\":{shard},\"class\":{class},\"count\":{count}}}"),
            AllocEvent::TransferEvict {
                shard,
                class,
                count,
                reason,
            } => format!(
                "{{\"shard\":{shard},\"class\":{class},\"count\":{count},\"reason\":\"{}\"}}",
                reason.name()
            ),
            AllocEvent::CentralRefill { class, count }
            | AllocEvent::CentralReturn { class, count } => {
                format!("{{\"class\":{class},\"count\":{count}}}")
            }
            AllocEvent::SpanAlloc {
                id,
                start,
                pages,
                class,
            }
            | AllocEvent::SpanRetire {
                id,
                start,
                pages,
                class,
            } => format!(
                "{{\"id\":{id},\"start\":{start},\"pages\":{pages},\"class\":{}}}",
                class.map_or_else(|| "null".to_string(), |c| c.to_string())
            ),
            AllocEvent::FillerPlace { addr, pages }
            | AllocEvent::RegionPlace { addr, pages }
            | AllocEvent::CachePlace { addr, pages } => {
                format!("{{\"addr\":{addr},\"pages\":{pages}}}")
            }
            AllocEvent::HugepageFill {
                base,
                bytes,
                reused,
            } => format!("{{\"base\":{base},\"bytes\":{bytes},\"reused\":{reused}}}"),
            AllocEvent::HugepageBreak { base, bytes }
            | AllocEvent::HugepageRelease { base, bytes }
            | AllocEvent::BackingDenied { base, bytes } => {
                format!("{{\"base\":{base},\"bytes\":{bytes}}}")
            }
            AllocEvent::OsFault {
                op,
                failed,
                latency_ns,
            } => format!(
                "{{\"op\":\"{}\",\"failed\":{failed},\"latency_ns\":{latency_ns}}}",
                op.name()
            ),
            AllocEvent::LimitHit {
                hard,
                resident,
                limit,
            } => format!("{{\"hard\":{hard},\"resident\":{resident},\"limit\":{limit}}}"),
            AllocEvent::ReleaseRetry {
                attempt,
                released_bytes,
            } => format!("{{\"attempt\":{attempt},\"released_bytes\":{released_bytes}}}"),
            AllocEvent::Degraded { denied_hugepages } => {
                format!("{{\"denied_hugepages\":{denied_hugepages}}}")
            }
            AllocEvent::Recovered { repromoted } => {
                format!("{{\"repromoted\":{repromoted}}}")
            }
            AllocEvent::PagemapSet { addr, pages } | AllocEvent::PagemapClear { addr, pages } => {
                format!("{{\"addr\":{addr},\"pages\":{pages}}}")
            }
            AllocEvent::SamplerPick {
                addr,
                size,
                site,
                now_ns,
                weight,
            } => format!(
                "{{\"addr\":{addr},\"size\":{size},\"site\":{site},\"now_ns\":{now_ns},\"weight\":{weight}}}"
            ),
            AllocEvent::SampledFree {
                size,
                lifetime_ns,
                weight,
            } => format!("{{\"size\":{size},\"lifetime_ns\":{lifetime_ns},\"weight\":{weight}}}"),
            AllocEvent::MallocDone {
                path,
                addr,
                size,
                actual,
                prefetched,
                sampled,
                ..
            } => format!(
                "{{\"path\":\"{}\",\"addr\":{addr},\"size\":{size},\"actual\":{actual},\"prefetched\":{prefetched},\"sampled\":{sampled}}}",
                path.name()
            ),
            AllocEvent::FreeDone { path, addr, size } => format!(
                "{{\"path\":\"{}\",\"addr\":{addr},\"size\":{size}}}",
                path.name()
            ),
            AllocEvent::RemoteFreeQueued {
                vcpu,
                owner,
                class,
                addr,
            } => format!("{{\"vcpu\":{vcpu},\"owner\":{owner},\"class\":{class},\"addr\":{addr}}}"),
            AllocEvent::RemoteFreeDrained { vcpu, class, count } => {
                format!("{{\"vcpu\":{vcpu},\"class\":{class},\"count\":{count}}}")
            }
            AllocEvent::ContentionCharged { vcpu, ns } => {
                format!("{{\"vcpu\":{vcpu},\"ns\":{ns}}}")
            }
            AllocEvent::PerCpuHitBatch { vcpu, class, count } => {
                format!("{{\"vcpu\":{vcpu},\"class\":{class},\"count\":{count}}}")
            }
            AllocEvent::FastPathFlush {
                mallocs,
                prefetched,
                frees,
            } => format!("{{\"mallocs\":{mallocs},\"prefetched\":{prefetched},\"frees\":{frees}}}"),
        }
    }
}

/// A consumer of the event stream. Sinks receive every event in emission
/// order with the simulated-clock timestamp; `Send` so an allocator (and
/// its bus) can move between engine worker threads.
pub trait EventSink: Send {
    /// Observes one event.
    fn on_event(&mut self, ts_ns: u64, ev: &AllocEvent);
}

/// The no-op sink: observability fully off.
#[derive(Clone, Copy, Debug, Default)]
pub struct Off;

impl EventSink for Off {
    fn on_event(&mut self, _ts_ns: u64, _ev: &AllocEvent) {}
}

/// Fan-out composition of two sinks; nest for more
/// (`Tee(a, Tee(b, c))`). `A` observes each event before `B`.
#[derive(Clone, Debug, Default)]
pub struct Tee<A: EventSink, B: EventSink>(pub A, pub B);

impl<A: EventSink, B: EventSink> EventSink for Tee<A, B> {
    fn on_event(&mut self, ts_ns: u64, ev: &AllocEvent) {
        self.0.on_event(ts_ns, ev);
        self.1.on_event(ts_ns, ev);
    }
}

/// Unbounded capture of the raw stream, for tests and tools. (Not for the
/// hot path of long runs — use [`TraceRing`] there.)
#[derive(Clone, Debug, Default)]
pub struct Recorder {
    events: Vec<AllocEvent>,
}

impl Recorder {
    /// An empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Everything recorded so far, in emission order.
    pub fn events(&self) -> &[AllocEvent] {
        &self.events
    }
}

impl EventSink for Recorder {
    fn on_event(&mut self, _ts_ns: u64, ev: &AllocEvent) {
        self.events.push(*ev);
    }
}

/// A bounded, deterministic ring over the tail of the event stream, with
/// Chrome trace-event JSON export. Oldest entries drop first; the drop
/// count is kept so truncation is never silent.
#[derive(Clone, Debug)]
pub struct TraceRing {
    capacity: usize,
    entries: VecDeque<(u64, AllocEvent)>,
    dropped: u64,
}

impl TraceRing {
    /// A ring keeping the last `capacity` events.
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity: capacity.max(1),
            entries: VecDeque::with_capacity(capacity.clamp(1, 1 << 16)),
            dropped: 0,
        }
    }

    /// Entries currently held (timestamp, event), oldest first.
    pub fn entries(&self) -> impl Iterator<Item = &(u64, AllocEvent)> {
        self.entries.iter()
    }

    /// Events currently held.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the ring is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Events dropped from the front because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Exports the ring as Chrome trace-event JSON (the "JSON Array
    /// Format" with a `traceEvents` wrapper): one instant event per
    /// allocator event, `ts` in microseconds of simulated time, one trace
    /// "thread" lane per tier. Loads in `chrome://tracing` and Perfetto.
    pub fn chrome_trace_json(&self) -> String {
        const LANES: [&str; 7] = [
            "percpu", "transfer", "central", "pageheap", "os", "pagemap", "op",
        ];
        let lane = |tier: &str| LANES.iter().position(|&l| l == tier).unwrap_or(0) + 1;
        let mut out = String::with_capacity(128 * (self.entries.len() + LANES.len()) + 64);
        out.push_str("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[");
        let mut first = true;
        for (i, name) in LANES.iter().enumerate() {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!(
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{},\"args\":{{\"name\":\"{name}\"}}}}",
                i + 1
            ));
        }
        for (ts, ev) in &self.entries {
            out.push(',');
            let us = *ts as f64 / 1000.0;
            out.push_str(&format!(
                "{{\"name\":\"{}\",\"ph\":\"i\",\"s\":\"t\",\"pid\":1,\"tid\":{},\"ts\":{us},\"cat\":\"{}\",\"args\":{}}}",
                ev.kind(),
                lane(ev.tier()),
                ev.tier(),
                ev.args_json()
            ));
        }
        out.push_str(&format!(
            "],\"otherData\":{{\"dropped\":{},\"captured\":{}}}}}",
            self.dropped,
            self.entries.len()
        ));
        out
    }
}

impl EventSink for TraceRing {
    fn on_event(&mut self, ts_ns: u64, ev: &AllocEvent) {
        if self.entries.len() == self.capacity {
            self.entries.pop_front();
            self.dropped += 1;
        }
        self.entries.push_back((ts_ns, *ev));
    }
}

/// Pending fast-path aggregates while batched emission
/// ([`TcmallocConfig::batch_fastpath_events`]) is engaged: per-(vcpu,
/// class) hit counts plus operation-completion totals, flushed as
/// [`AllocEvent::PerCpuHitBatch`] / [`AllocEvent::FastPathFlush`] at the
/// next drain point. Counting here instead of emitting is what takes the
/// per-op event fan-out off the per-CPU hit path.
#[derive(Clone, Debug, Default)]
struct FastPathBatcher {
    /// `hits[vcpu][class]`, grown on demand and drained in `(vcpu, class)`
    /// order so the flushed aggregate stream is deterministic.
    hits: Vec<Vec<u64>>,
    /// Total pending hit count (fast emptiness check).
    pending_hits: u64,
    /// Pending unsampled per-CPU-path `MallocDone`s.
    mallocs: u64,
    /// How many of `mallocs` issued the next-object prefetch.
    prefetched: u64,
    /// Pending per-CPU-path `FreeDone`s.
    frees: u64,
}

impl FastPathBatcher {
    fn record_hit(&mut self, vcpu: usize, class: u16) {
        if self.hits.len() <= vcpu {
            self.hits.resize(vcpu + 1, Vec::new());
        }
        let row = &mut self.hits[vcpu];
        let c = usize::from(class);
        if row.len() <= c {
            row.resize(c + 1, 0);
        }
        row[c] += 1;
        self.pending_hits += 1;
    }

    fn has_pending(&self) -> bool {
        self.pending_hits > 0 || self.mallocs > 0 || self.frees > 0
    }
}

/// The bus: owns the built-in consumers (derived stats view, sanitizer
/// shadow feed, optional trace ring and recorder) plus any attached
/// [`EventSink`]s, and fans every emitted event out to them in a fixed,
/// deterministic order.
///
/// The bus also *prices* operations: [`malloc_done`](Self::malloc_done) and
/// [`free_done`](Self::free_done) compute the operation's cost-model
/// nanoseconds in the same component order as [`StatsView`] charges them,
/// so the latency the allocator reports and the cycle attribution the
/// stats view derives can never drift apart.
pub struct EventBus {
    cost: CostModel,
    clock: Clock,
    stats_enabled: bool,
    stats: StatsView,
    sanitizer: Sanitizer,
    trace: Option<TraceRing>,
    recorder: Option<Recorder>,
    extra: Vec<Box<dyn EventSink>>,
    batch: Option<FastPathBatcher>,
}

impl std::fmt::Debug for EventBus {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventBus")
            .field("stats_enabled", &self.stats_enabled)
            .field("trace", &self.trace.as_ref().map(TraceRing::len))
            .field(
                "recorder",
                &self.recorder.as_ref().map(|r| r.events().len()),
            )
            .field("extra_sinks", &self.extra.len())
            .field("batching", &self.batch.is_some())
            .finish_non_exhaustive()
    }
}

impl EventBus {
    /// Builds the bus for one allocator instance: sink selection comes from
    /// `cfg` (`stats_sink`, `trace_capacity`, `record_events`, `sanitize`).
    pub fn new(cfg: &TcmallocConfig, cost: CostModel, clock: Clock) -> Self {
        Self {
            cost,
            clock,
            stats_enabled: cfg.stats_sink,
            stats: StatsView::new(cost),
            sanitizer: Sanitizer::new(cfg.sanitize),
            trace: (cfg.trace_capacity > 0).then(|| TraceRing::new(cfg.trace_capacity as usize)),
            recorder: cfg.record_events.then(Recorder::new),
            extra: Vec::new(),
            // Batched emission requires the sanitizer off: the shadow heap
            // is fed per-op MallocDone payloads an aggregate cannot carry.
            batch: (cfg.batch_fastpath_events && !cfg.sanitize.is_on())
                .then(FastPathBatcher::default),
        }
    }

    /// Whether batched fast-path emission is currently engaged.
    pub fn batching(&self) -> bool {
        self.batch.is_some()
    }

    /// Emits one event to every sink, in the fixed fan-out order. Any
    /// pending fast-path aggregates flush first, so batched counts always
    /// precede the slow-path event that interrupted them.
    pub fn emit(&mut self, ev: AllocEvent) {
        self.flush_fastpath();
        self.dispatch(ev);
    }

    /// Flushes pending fast-path aggregates (batched-emission mode) as
    /// [`AllocEvent::PerCpuHitBatch`] events in `(vcpu, class)` order
    /// followed by one [`AllocEvent::FastPathFlush`]. No-op when batching
    /// is disengaged or nothing is pending.
    pub fn flush_fastpath(&mut self) {
        let Some(b) = &mut self.batch else {
            return;
        };
        if !b.has_pending() {
            return;
        }
        let mut hits = std::mem::take(&mut b.hits);
        let (mallocs, prefetched, frees) = (b.mallocs, b.prefetched, b.frees);
        b.pending_hits = 0;
        b.mallocs = 0;
        b.prefetched = 0;
        b.frees = 0;
        for (vcpu, row) in hits.iter().enumerate() {
            for (class, &count) in row.iter().enumerate() {
                if count > 0 {
                    self.dispatch(AllocEvent::PerCpuHitBatch {
                        vcpu,
                        class: class as u16,
                        count,
                    });
                }
            }
        }
        if mallocs > 0 || frees > 0 {
            self.dispatch(AllocEvent::FastPathFlush {
                mallocs,
                prefetched,
                frees,
            });
        }
        // Hand the zeroed table back so row capacity is reused next round.
        if let Some(b) = &mut self.batch {
            for row in &mut hits {
                row.fill(0);
            }
            b.hits = hits;
        }
    }

    /// Records one per-CPU fast-path hit: counted for the next drain-point
    /// flush while batching is engaged, otherwise an immediate
    /// [`AllocEvent::PerCpuHit`] emission.
    pub fn percpu_hit(&mut self, vcpu: usize, class: u16) {
        if let Some(b) = &mut self.batch {
            b.record_hit(vcpu, class);
        } else {
            self.emit(AllocEvent::PerCpuHit { vcpu, class });
        }
    }

    /// The raw fan-out, without the flush-first preamble.
    fn dispatch(&mut self, ev: AllocEvent) {
        let ts = self.clock.now_ns();
        if self.stats_enabled {
            self.stats.on_event(ts, &ev);
        }
        match ev {
            AllocEvent::MallocDone {
                addr,
                actual,
                class,
                span: Some(span),
                ..
            } => self
                .sanitizer
                .record_alloc(addr, actual, class, span.id, span.start, span.pages),
            AllocEvent::SpanRetire { start, .. } => self.sanitizer.on_span_released(start),
            _ => {}
        }
        if let Some(t) = &mut self.trace {
            t.on_event(ts, &ev);
        }
        if let Some(r) = &mut self.recorder {
            r.on_event(ts, &ev);
        }
        for s in &mut self.extra {
            s.on_event(ts, &ev);
        }
    }

    /// Emits an allocation's [`AllocEvent::SamplerPick`] (if sampled) and
    /// [`AllocEvent::MallocDone`], returning the operation's cost-model
    /// nanoseconds: path + prefetch + other + sampling, in that order —
    /// the exact components [`StatsView`] charges.
    ///
    /// While batched emission is engaged, an unsampled per-CPU-path
    /// completion is *counted* instead of emitted (the aggregate flushes at
    /// the next drain point and charges identically); the returned
    /// nanoseconds never change. Sampled operations always emit per-op so
    /// the allocation profile sees every pick.
    ///
    /// # Panics
    ///
    /// Panics if `done` is not a `MallocDone` event.
    pub fn malloc_done(&mut self, pick: Option<AllocEvent>, done: AllocEvent) -> f64 {
        let AllocEvent::MallocDone {
            path,
            prefetched,
            sampled,
            ..
        } = done
        else {
            unreachable!("malloc_done requires a MallocDone event")
        };
        let mut ns = self.cost.alloc_path_ns(path);
        if prefetched {
            ns += self.cost.prefetch_ns;
        }
        ns += self.cost.other_ns;
        if sampled {
            ns += self.cost.sampled_alloc_ns;
        }
        if pick.is_none() && !sampled && matches!(path, AllocPath::PerCpu) {
            if let Some(b) = &mut self.batch {
                b.mallocs += 1;
                if prefetched {
                    b.prefetched += 1;
                }
                return ns;
            }
        }
        if let Some(pick) = pick {
            debug_assert!(matches!(pick, AllocEvent::SamplerPick { .. }));
            self.emit(pick);
        }
        self.emit(done);
        ns
    }

    /// Emits a free's [`AllocEvent::FreeDone`], returning the operation's
    /// cost-model nanoseconds (path + other). While batched emission is
    /// engaged, a per-CPU-path free is counted instead of emitted, exactly
    /// like [`malloc_done`](Self::malloc_done).
    ///
    /// # Panics
    ///
    /// Panics if `done` is not a `FreeDone` event.
    pub fn free_done(&mut self, done: AllocEvent) -> f64 {
        let AllocEvent::FreeDone { path, .. } = done else {
            unreachable!("free_done requires a FreeDone event")
        };
        let ns = self.cost.alloc_path_ns(path) + self.cost.other_ns;
        if matches!(path, AllocPath::PerCpu) {
            if let Some(b) = &mut self.batch {
                b.frees += 1;
                return ns;
            }
        }
        self.emit(done);
        ns
    }

    /// The cost model the bus prices operations with.
    pub fn cost(&self) -> &CostModel {
        &self.cost
    }

    /// Derived cycle attribution (Figure 6a view).
    pub fn cycles(&self) -> &CycleStats {
        self.stats.cycles()
    }

    /// Derived GWP allocation profile.
    pub fn profile(&self) -> &AllocationProfile {
        self.stats.profile()
    }

    /// The sanitizer (shadow state + audit bookkeeping).
    pub fn sanitizer(&self) -> &Sanitizer {
        &self.sanitizer
    }

    /// Mutable sanitizer access (free checks, audits, report draining).
    pub fn sanitizer_mut(&mut self) -> &mut Sanitizer {
        &mut self.sanitizer
    }

    /// The trace ring, when `trace_capacity > 0`.
    pub fn trace(&self) -> Option<&TraceRing> {
        self.trace.as_ref()
    }

    /// The recorded raw stream, when `record_events` is set (empty
    /// otherwise).
    pub fn recorded(&self) -> &[AllocEvent] {
        self.recorder.as_ref().map_or(&[], Recorder::events)
    }

    /// Attaches an additional sink; it observes every subsequent event
    /// after the built-in consumers. Attached sinks expect the per-op
    /// stream, so any pending fast-path aggregates flush first and batched
    /// emission disengages for the rest of this bus's life.
    pub fn attach(&mut self, sink: Box<dyn EventSink>) {
        self.flush_fastpath();
        self.batch = None;
        self.extra.push(sink);
    }
}

#[cfg(test)]
// Tests may unwrap: a panic IS the failure report here.
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use wsc_sanitizer::SanitizeLevel;

    fn bus(cfg: TcmallocConfig) -> EventBus {
        EventBus::new(&cfg, CostModel::production(), Clock::new())
    }

    fn hit() -> AllocEvent {
        AllocEvent::PerCpuHit { vcpu: 0, class: 3 }
    }

    fn done(prefetched: bool, sampled: bool) -> AllocEvent {
        AllocEvent::MallocDone {
            path: AllocPath::PerCpu,
            addr: 0x1000,
            size: 24,
            actual: 24,
            prefetched,
            sampled,
            class: None,
            span: None,
        }
    }

    #[test]
    fn malloc_done_prices_exactly_like_the_stats_view() {
        let c = CostModel::production();
        let mut b = bus(TcmallocConfig::optimized());
        let ns = b.malloc_done(None, done(true, false));
        assert_eq!(ns, c.percpu_hit_ns + c.prefetch_ns + c.other_ns);
        let charged = b.cycles().total_ns();
        assert!((charged - ns).abs() < 1e-9, "{charged} vs {ns}");
        let ns2 = b.free_done(AllocEvent::FreeDone {
            path: AllocPath::PerCpu,
            addr: 0x1000,
            size: 24,
        });
        assert_eq!(ns2, c.percpu_hit_ns + c.other_ns);
    }

    #[test]
    fn stats_sink_off_still_prices_operations() {
        let cfg = TcmallocConfig::optimized().with_stats_sink(false);
        let mut b = bus(cfg);
        let ns = b.malloc_done(None, done(false, true));
        assert!(ns > 5000.0, "sampled op priced: {ns}");
        assert_eq!(b.cycles().total_ns(), 0.0, "view stays zeroed");
    }

    #[test]
    fn recorder_captures_in_emission_order() {
        let cfg = TcmallocConfig::optimized().with_event_recorder();
        let mut b = bus(cfg);
        b.emit(hit());
        b.malloc_done(None, done(false, false));
        let kinds: Vec<_> = b.recorded().iter().map(AllocEvent::kind).collect();
        assert_eq!(kinds, ["PerCpuHit", "MallocDone"]);
    }

    #[test]
    fn sanitizer_is_fed_from_malloc_done_and_span_retire() {
        let cfg = TcmallocConfig::optimized().with_sanitize(SanitizeLevel::Full);
        let mut b = bus(cfg);
        b.emit(AllocEvent::MallocDone {
            path: AllocPath::PerCpu,
            addr: 0x10000,
            size: 16,
            actual: 16,
            prefetched: false,
            sampled: false,
            class: Some(1),
            span: Some(SpanRef {
                id: 0,
                start: 0x10000,
                pages: 1,
            }),
        });
        assert_eq!(b.sanitizer().shadow().live_count(), 1);
        b.emit(AllocEvent::SpanRetire {
            id: 0,
            start: 0x10000,
            pages: 1,
            class: Some(1),
        });
        // The span vanished with a live object on it: the shadow reports a
        // leak, and the object is forgotten.
        assert_eq!(b.sanitizer().shadow().live_count(), 0);
    }

    #[test]
    fn tee_fans_out_in_order() {
        let mut t = Tee(Recorder::new(), Recorder::new());
        t.on_event(5, &hit());
        assert_eq!(t.0.events(), t.1.events());
        assert_eq!(t.0.events().len(), 1);
    }

    #[test]
    fn trace_ring_bounds_and_counts_drops() {
        let mut r = TraceRing::new(2);
        for i in 0..5u64 {
            r.on_event(i, &hit());
        }
        assert_eq!(r.len(), 2);
        assert_eq!(r.dropped(), 3);
        let ts: Vec<u64> = r.entries().map(|(t, _)| *t).collect();
        assert_eq!(ts, [3, 4], "oldest dropped first");
    }

    #[test]
    fn chrome_trace_json_is_well_formed() {
        let mut r = TraceRing::new(16);
        r.on_event(1500, &hit());
        r.on_event(
            2500,
            &AllocEvent::HugepageFill {
                base: 0x7f00_0000_0000,
                bytes: 2 << 20,
                reused: false,
            },
        );
        let json = r.chrome_trace_json();
        assert!(json.starts_with("{\"displayTimeUnit\""));
        assert!(json.contains("\"traceEvents\":["));
        assert!(json.contains("\"name\":\"PerCpuHit\""));
        assert!(json.contains("\"ts\":1.5"), "{json}");
        assert!(json.contains("\"reused\":false"));
        assert!(json.contains("\"dropped\":0"));
        assert!(json.ends_with('}'));
        // Brace/bracket balance — cheap structural validity check.
        let (mut depth, mut sq) = (0i64, 0i64);
        let mut in_str = false;
        for c in json.chars() {
            match c {
                '"' => in_str = !in_str,
                '{' if !in_str => depth += 1,
                '}' if !in_str => depth -= 1,
                '[' if !in_str => sq += 1,
                ']' if !in_str => sq -= 1,
                _ => {}
            }
        }
        assert_eq!((depth, sq), (0, 0));
    }

    #[test]
    fn every_kind_is_covered_by_the_taxonomy() {
        assert_eq!(AllocEvent::KINDS.len(), 36);
        assert!(AllocEvent::KINDS.contains(&hit().kind()));
        for fault in [
            AllocEvent::OsFault {
                op: OsOp::Mmap,
                failed: true,
                latency_ns: 0,
            },
            AllocEvent::BackingDenied {
                base: 0,
                bytes: 2 << 20,
            },
            AllocEvent::LimitHit {
                hard: false,
                resident: 10,
                limit: 5,
            },
            AllocEvent::ReleaseRetry {
                attempt: 0,
                released_bytes: 4096,
            },
            AllocEvent::Degraded {
                denied_hugepages: 1,
            },
            AllocEvent::Recovered { repromoted: 1 },
        ] {
            assert!(AllocEvent::KINDS.contains(&fault.kind()), "{fault:?}");
            assert_eq!(fault.tier(), "os");
            assert!(fault.args_json().starts_with('{'));
        }
    }

    #[test]
    fn remote_free_kinds_join_the_taxonomy() {
        let queued = AllocEvent::RemoteFreeQueued {
            vcpu: 3,
            owner: 0,
            class: 7,
            addr: 0x2000,
        };
        let drained = AllocEvent::RemoteFreeDrained {
            vcpu: 0,
            class: 7,
            count: 4,
        };
        let charged = AllocEvent::ContentionCharged { vcpu: 3, ns: 10.0 };
        for ev in [queued, drained, charged] {
            assert!(AllocEvent::KINDS.contains(&ev.kind()), "{ev:?}");
            assert!(ev.args_json().starts_with('{'));
        }
        // Queue/drain traffic belongs to the front-end lane (it replaces
        // per-CPU frees); the synchronization charge is an op-level cost.
        assert_eq!(queued.tier(), "percpu");
        assert_eq!(drained.tier(), "percpu");
        assert_eq!(charged.tier(), "op");
        assert!(queued.args_json().contains("\"owner\":0"));
    }

    #[test]
    fn batch_kinds_join_the_taxonomy() {
        let hits = AllocEvent::PerCpuHitBatch {
            vcpu: 1,
            class: 3,
            count: 128,
        };
        let flush = AllocEvent::FastPathFlush {
            mallocs: 80,
            prefetched: 80,
            frees: 48,
        };
        for ev in [hits, flush] {
            assert!(AllocEvent::KINDS.contains(&ev.kind()), "{ev:?}");
            assert!(ev.args_json().starts_with('{'));
        }
        // Aggregates live in the lane of the events they stand for.
        assert_eq!(hits.tier(), "percpu");
        assert_eq!(flush.tier(), "op");
        assert!(hits.args_json().contains("\"count\":128"));
        assert!(flush.args_json().contains("\"frees\":48"));
    }

    #[test]
    fn batched_fastpath_charges_identical_cycle_totals() {
        let per_op = TcmallocConfig::optimized();
        let batched = per_op.with_batched_fastpath_events(true);
        let mut a = bus(per_op);
        let mut b = bus(batched);
        assert!(!a.batching());
        assert!(b.batching());
        for i in 0..137u64 {
            let prefetched = i % 3 != 0;
            for bus in [&mut a, &mut b] {
                bus.percpu_hit((i % 4) as usize, (i % 7) as u16);
                let ns_a = bus.malloc_done(None, done(prefetched, false));
                assert!(ns_a > 0.0);
                if i % 2 == 0 {
                    bus.free_done(AllocEvent::FreeDone {
                        path: AllocPath::PerCpu,
                        addr: 0x1000 + i,
                        size: 24,
                    });
                }
            }
        }
        // Mid-stream the batched view lags; at the drain point the integer
        // picosecond ledgers are bit-identical, ops counts included.
        b.flush_fastpath();
        assert_eq!(a.cycles(), b.cycles());
    }

    #[test]
    fn batched_mode_flushes_aggregates_before_slow_path_events() {
        let cfg = TcmallocConfig::optimized()
            .with_event_recorder()
            .with_batched_fastpath_events(true);
        let mut b = bus(cfg);
        b.percpu_hit(0, 3);
        b.percpu_hit(0, 3);
        b.percpu_hit(1, 5);
        b.malloc_done(None, done(true, false));
        b.free_done(AllocEvent::FreeDone {
            path: AllocPath::PerCpu,
            addr: 0x1000,
            size: 24,
        });
        // A slow-path event interrupts: pending aggregates must land first,
        // in (vcpu, class) order.
        b.emit(AllocEvent::CentralRefill { class: 3, count: 8 });
        let kinds: Vec<_> = b.recorded().iter().map(AllocEvent::kind).collect();
        assert_eq!(
            kinds,
            [
                "PerCpuHitBatch",
                "PerCpuHitBatch",
                "FastPathFlush",
                "CentralRefill"
            ]
        );
        assert_eq!(
            b.recorded()[0],
            AllocEvent::PerCpuHitBatch {
                vcpu: 0,
                class: 3,
                count: 2
            }
        );
        assert_eq!(
            b.recorded()[2],
            AllocEvent::FastPathFlush {
                mallocs: 1,
                prefetched: 1,
                frees: 1
            }
        );
    }

    #[test]
    fn sampled_operations_bypass_the_batcher() {
        let cfg = TcmallocConfig::optimized()
            .with_event_recorder()
            .with_batched_fastpath_events(true);
        let mut b = bus(cfg);
        b.percpu_hit(0, 3);
        let pick = AllocEvent::SamplerPick {
            addr: 0x1000,
            size: 24,
            site: 7,
            now_ns: 0,
            weight: 1.0,
        };
        b.malloc_done(Some(pick), done(false, true));
        let kinds: Vec<_> = b.recorded().iter().map(AllocEvent::kind).collect();
        // The pending hit flushes ahead of the sampled op's per-op events,
        // and the profile still sees the pick.
        assert_eq!(kinds, ["PerCpuHitBatch", "SamplerPick", "MallocDone"]);
        assert_eq!(b.profile().size_by_count.count(), 1.0);
    }

    #[test]
    fn attaching_a_sink_disengages_batching() {
        let cfg = TcmallocConfig::optimized()
            .with_event_recorder()
            .with_batched_fastpath_events(true);
        let mut b = bus(cfg);
        b.percpu_hit(0, 3);
        assert!(b.batching());
        b.attach(Box::new(Off));
        assert!(!b.batching());
        b.percpu_hit(0, 3);
        let kinds: Vec<_> = b.recorded().iter().map(AllocEvent::kind).collect();
        // The pre-attach hit flushed as an aggregate; afterwards the stream
        // is per-op again.
        assert_eq!(kinds, ["PerCpuHitBatch", "PerCpuHit"]);
    }

    #[test]
    fn sanitizer_keeps_emission_per_op() {
        let cfg = TcmallocConfig::optimized()
            .with_sanitize(SanitizeLevel::Full)
            .with_batched_fastpath_events(true);
        let b = bus(cfg);
        assert!(!b.batching(), "shadow feed needs per-op payloads");
    }
}
