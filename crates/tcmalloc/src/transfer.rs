//! The middle-tier transfer cache (§4.2), legacy and NUCA-aware.
//!
//! The transfer cache holds flat arrays of free-object pointers per size
//! class, letting memory "flow rapidly between CPUs" — an object freed on
//! CPU 0 can be handed to CPU 1 without touching spans. On chiplet platforms
//! that very property hurts: the new owner sits in a different LLC domain
//! and must pull the object's cache lines across the fabric at 2.07× the
//! local latency (Figure 11).
//!
//! The NUCA-aware redesign (Figure 12) shards the cache per LLC domain, with
//! the legacy central cache retained as a backing tier, and periodically
//! *plunders* idle domain caches back into the central one to prevent
//! stranding. Domain caches are activated lazily, "only as many ... as the
//! application is scheduled on".

use crate::events::{AllocEvent, EventBus, EvictReason};
use crate::size_class::SizeClassTable;

#[derive(Clone, Debug)]
struct ClassArray {
    objs: Vec<u64>,
    max_objs: usize,
    /// Minimum occupancy since the last reclaim pass: objects below the
    /// low-water mark were provably unused for a whole interval.
    low_water: usize,
}

impl ClassArray {
    fn insert(&mut self, mut objs: Vec<u64>) -> Vec<u64> {
        let room = self.max_objs.saturating_sub(self.objs.len());
        let take = room.min(objs.len());
        let rest = objs.split_off(take);
        self.objs.extend(objs);
        rest
    }

    fn remove(&mut self, n: usize) -> Vec<u64> {
        let take = n.min(self.objs.len());
        let out = self.objs.split_off(self.objs.len() - take);
        self.low_water = self.low_water.min(self.objs.len());
        out
    }

    /// Takes the unused residue (the low-water mark) from the cold end and
    /// resets the mark.
    fn reclaim(&mut self) -> Vec<u64> {
        let shed = self.low_water.min(self.objs.len());
        let out: Vec<u64> = self.objs.drain(..shed).collect();
        self.low_water = self.objs.len();
        out
    }
}

/// Builds one tier's arrays: capacity is `batches_capacity` batches per
/// class, additionally byte-capped at `byte_cap` per class so large size
/// classes do not strand megabytes (production transfer caches are
/// byte-limited the same way).
fn new_tier(table_sizes: &[(u64, u32)], batches_capacity: u32, byte_cap: u64) -> Vec<ClassArray> {
    table_sizes
        .iter()
        .map(|&(size, batch)| {
            let by_batches = (batch as u64) * batches_capacity as u64;
            let by_bytes = (byte_cap / size).max(1);
            ClassArray {
                objs: Vec::new(),
                max_objs: by_batches.min(by_bytes) as usize,
                low_water: 0,
            }
        })
        .collect()
}

/// How the transfer-cache tier is sharded across the machine.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum TransferSharding {
    /// One central cache (the legacy design).
    #[default]
    Central,
    /// One cache per LLC domain, backed by the central cache — the §4.2
    /// NUCA-aware design.
    Domain,
    /// One cache per NUMA node (the §5 "NUMA architecture and beyond"
    /// extension): coarser than per-domain, but keeps allocations
    /// node-local on multi-socket parts without per-CCX sharding.
    Node,
}

/// Transfer-cache configuration.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TransferConfig {
    /// Sharding mode for the tier.
    pub sharding: TransferSharding,
    /// Central (legacy) capacity, in batches per size class.
    pub central_batches: u32,
    /// Per-shard capacity, in batches per size class (Domain/Node modes).
    pub domain_batches: u32,
}

impl TransferConfig {
    /// Is a sharded (non-central) tier active?
    pub fn is_sharded(&self) -> bool {
        self.sharding != TransferSharding::Central
    }
}

impl Default for TransferConfig {
    fn default() -> Self {
        Self {
            sharding: TransferSharding::Central,
            central_batches: 4,
            domain_batches: 1,
        }
    }
}

/// The transfer-cache tier: a legacy central cache, optionally fronted by
/// per-LLC-domain (or per-NUMA-node) shard caches.
///
/// # Example
///
/// ```
/// use wsc_tcmalloc::size_class::SizeClassTable;
/// use wsc_tcmalloc::transfer::{TransferCaches, TransferConfig, TransferSharding};
///
/// let table = SizeClassTable::production();
/// let cfg = TransferConfig {
///     sharding: TransferSharding::Domain,
///     ..TransferConfig::default()
/// };
/// let mut tc = TransferCaches::new(&table, cfg);
/// # use wsc_tcmalloc::{EventBus, TcmallocConfig};
/// # use wsc_sim_hw::cost::CostModel;
/// # use wsc_sim_os::clock::Clock;
/// # let mut bus = EventBus::new(&TcmallocConfig::baseline(), CostModel::production(), Clock::new());
/// let spill = tc.stash(0, 3, vec![0x1000, 0x2000], &mut bus);
/// assert!(spill.is_empty());
/// // The same shard gets its own objects back (cache-domain locality).
/// assert_eq!(tc.fetch(0, 3, 2, &mut bus).len(), 2);
/// ```
#[derive(Clone, Debug)]
pub struct TransferCaches {
    central: Vec<ClassArray>,
    domains: Vec<Option<Vec<ClassArray>>>,
    sizes_batches: Vec<(u64, u32)>,
    cfg: TransferConfig,
}

impl TransferCaches {
    /// Creates the tier for a size-class table.
    pub fn new(table: &SizeClassTable, cfg: TransferConfig) -> Self {
        let sizes_batches: Vec<(u64, u32)> = table.iter().map(|c| (c.size, c.batch)).collect();
        Self {
            central: new_tier(&sizes_batches, cfg.central_batches, 256 << 10),
            domains: Vec::new(),
            sizes_batches,
            cfg,
        }
    }

    fn shard_tier(&mut self, shard: usize) -> &mut Vec<ClassArray> {
        if shard >= self.domains.len() {
            self.domains.resize_with(shard + 1, || None);
        }
        let sizes = &self.sizes_batches;
        let batches = self.cfg.domain_batches;
        self.domains[shard].get_or_insert_with(|| new_tier(sizes, batches, 4 << 10))
    }

    /// Takes up to `n` objects for `class`, preferring the caller's shard
    /// (LLC domain or NUMA node) in sharded modes. May return fewer than `n`
    /// (caller goes to the central free list for the remainder). A non-empty
    /// result emits one [`AllocEvent::TransferHit`].
    pub fn fetch(&mut self, shard: usize, class: usize, n: usize, bus: &mut EventBus) -> Vec<u64> {
        let mut out = if self.cfg.is_sharded() {
            self.shard_tier(shard)[class].remove(n)
        } else {
            Vec::new()
        };
        if out.len() < n {
            let need = n - out.len();
            out.extend(self.central[class].remove(need));
        }
        if !out.is_empty() {
            bus.emit(AllocEvent::TransferHit {
                shard,
                class: class as u16,
                count: out.len() as u32,
            });
        }
        out
    }

    /// Deposits freed objects for `class`. Returns the overflow that did not
    /// fit anywhere (caller pushes it down to the central free list). Any
    /// absorbed objects emit one [`AllocEvent::TransferInsert`] tagged with
    /// the depositing shard.
    pub fn stash(
        &mut self,
        shard: usize,
        class: usize,
        objs: Vec<u64>,
        bus: &mut EventBus,
    ) -> Vec<u64> {
        let total = objs.len();
        let rest = if self.cfg.is_sharded() {
            self.shard_tier(shard)[class].insert(objs)
        } else {
            objs
        };
        let spill = if rest.is_empty() {
            rest
        } else {
            self.central[class].insert(rest)
        };
        let kept = total - spill.len();
        if kept > 0 {
            bus.emit(AllocEvent::TransferInsert {
                shard,
                class: class as u16,
                count: kept as u32,
            });
        }
        spill
    }

    /// Deposits objects directly into the central (legacy) cache, bypassing
    /// any domain tier — used for background evictions that have no owning
    /// CPU (the insert event is tagged shard 0). Returns the overflow.
    pub fn stash_central(&mut self, class: usize, objs: Vec<u64>, bus: &mut EventBus) -> Vec<u64> {
        let total = objs.len();
        let spill = self.central[class].insert(objs);
        let kept = total - spill.len();
        if kept > 0 {
            bus.emit(AllocEvent::TransferInsert {
                shard: 0,
                class: class as u16,
                count: kept as u32,
            });
        }
        spill
    }

    /// Periodic anti-stranding pass (§4.2: "we periodically release unused
    /// free objects in these transfer caches"): each domain cache returns
    /// its low-water residue — objects provably unused for a whole interval
    /// — to the central cache. Returns objects that did not fit centrally
    /// (to be returned to the central free list), grouped by class. Each
    /// plundered (shard, class) emits one [`AllocEvent::TransferEvict`].
    pub fn plunder(&mut self, bus: &mut EventBus) -> Vec<(usize, Vec<u64>)> {
        let mut overflow = Vec::new();
        if !self.cfg.is_sharded() {
            return overflow;
        }
        for (shard, tier) in self.domains.iter_mut().enumerate() {
            let Some(tier) = tier else { continue };
            for (cl, arr) in tier.iter_mut().enumerate() {
                let moved = arr.reclaim();
                if moved.is_empty() {
                    continue;
                }
                bus.emit(AllocEvent::TransferEvict {
                    shard,
                    class: cl as u16,
                    count: moved.len() as u32,
                    reason: EvictReason::Plunder,
                });
                let rest = self.central[cl].insert(moved);
                if !rest.is_empty() {
                    overflow.push((cl, rest));
                }
            }
        }
        overflow
    }

    /// Low-water reclaim for the central arrays: objects unused for a whole
    /// interval return to the central free list. Returns the evicted objects
    /// grouped by class; each evicted class emits one
    /// [`AllocEvent::TransferEvict`] (tagged shard 0 — the central arrays).
    pub fn decay(&mut self, bus: &mut EventBus) -> Vec<(usize, Vec<u64>)> {
        let mut out: Vec<(usize, Vec<u64>)> = Vec::new();
        for (cl, arr) in self.central.iter_mut().enumerate() {
            let objs = arr.reclaim();
            if !objs.is_empty() {
                bus.emit(AllocEvent::TransferEvict {
                    shard: 0,
                    class: cl as u16,
                    count: objs.len() as u32,
                    reason: EvictReason::Decay,
                });
                out.push((cl, objs));
            }
        }
        out
    }

    /// Bytes cached across the whole tier (external fragmentation of the
    /// transfer cache, Figure 6b).
    pub fn cached_bytes(&self) -> u64 {
        let central: u64 = self
            .central
            .iter()
            .zip(&self.sizes_batches)
            .map(|(a, &(size, _))| a.objs.len() as u64 * size)
            .sum();
        let domain: u64 = self
            .domains
            .iter()
            .flatten()
            .map(|tier| {
                tier.iter()
                    .zip(&self.sizes_batches)
                    .map(|(a, &(size, _))| a.objs.len() as u64 * size)
                    .sum::<u64>()
            })
            .sum();
        central + domain
    }

    /// Bytes cached in the central (legacy) arrays only.
    pub fn central_cached_bytes(&self) -> u64 {
        self.central
            .iter()
            .zip(&self.sizes_batches)
            .map(|(a, &(size, _))| a.objs.len() as u64 * size)
            .sum()
    }

    /// Number of domain caches activated so far.
    pub fn active_domains(&self) -> usize {
        self.domains.iter().flatten().count()
    }

    /// Objects cached per size class across the central arrays and every
    /// domain shard (the transfer term of the sanitizer's
    /// object-conservation audit).
    pub fn cached_objects_by_class(&self) -> Vec<u64> {
        let mut counts: Vec<u64> = self.central.iter().map(|a| a.objs.len() as u64).collect();
        for tier in self.domains.iter().flatten() {
            for (cl, arr) in tier.iter().enumerate() {
                counts[cl] += arr.objs.len() as u64;
            }
        }
        counts
    }

    /// Drains every cached object, grouped by class.
    // lint:allow(event-completeness) teardown drain: evicted objects are
    // handed back to the caller, whose reinsertion paths emit.
    pub fn flush_all(&mut self) -> Vec<(usize, Vec<u64>)> {
        let mut out: Vec<(usize, Vec<u64>)> = Vec::new();
        for (cl, arr) in self.central.iter_mut().enumerate() {
            if !arr.objs.is_empty() {
                out.push((cl, std::mem::take(&mut arr.objs)));
            }
        }
        for tier in self.domains.iter_mut().flatten() {
            for (cl, arr) in tier.iter_mut().enumerate() {
                if !arr.objs.is_empty() {
                    out.push((cl, std::mem::take(&mut arr.objs)));
                }
            }
        }
        out
    }
}

#[cfg(test)]
// Tests may unwrap: a panic IS the failure report here.
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::config::TcmallocConfig;
    use wsc_sim_hw::cost::CostModel;
    use wsc_sim_os::clock::Clock;

    fn table() -> SizeClassTable {
        SizeClassTable::production()
    }

    fn bus() -> EventBus {
        EventBus::new(
            &TcmallocConfig::baseline(),
            CostModel::production(),
            Clock::new(),
        )
    }

    fn legacy() -> TransferCaches {
        TransferCaches::new(&table(), TransferConfig::default())
    }

    fn nuca() -> TransferCaches {
        TransferCaches::new(
            &table(),
            TransferConfig {
                sharding: TransferSharding::Domain,
                ..TransferConfig::default()
            },
        )
    }

    #[test]
    fn legacy_round_trip() {
        let mut tc = legacy();
        let mut b = bus();
        assert!(tc.stash(0, 1, vec![1, 2, 3], &mut b).is_empty());
        let got = tc.fetch(1, 1, 3, &mut b);
        assert_eq!(got.len(), 3, "legacy cache is shared across domains");
        assert!(tc.fetch(0, 1, 1, &mut b).is_empty());
    }

    #[test]
    fn nuca_prefers_local_domain() {
        let mut tc = nuca();
        let mut b = bus();
        tc.stash(0, 1, vec![10], &mut b);
        tc.stash(1, 1, vec![20], &mut b);
        // Domain 0 gets its own object first.
        assert_eq!(tc.fetch(0, 1, 1, &mut b), vec![10]);
        assert_eq!(tc.fetch(1, 1, 1, &mut b), vec![20]);
    }

    #[test]
    fn nuca_falls_back_to_central() {
        let mut tc = nuca();
        let mut b = bus();
        // Overfill domain 0 so the excess lands centrally.
        let cfg = TransferConfig::default();
        let batch = table().info(1).batch as usize;
        let cap = batch * cfg.domain_batches as usize;
        let objs: Vec<u64> = (0..(cap + 5) as u64).collect();
        let spill = tc.stash(0, 1, objs, &mut b);
        assert!(spill.is_empty(), "central absorbs the domain overflow");
        // Domain 1 has nothing local but can still pull from central.
        let got = tc.fetch(1, 1, 3, &mut b);
        assert_eq!(got.len(), 3);
    }

    #[test]
    fn overflow_to_caller_when_everything_full() {
        let mut tc = legacy();
        let mut b = bus();
        let batch = table().info(1).batch as usize;
        let central_cap = batch * TransferConfig::default().central_batches as usize;
        let spill = tc.stash(0, 1, (0..(central_cap + 7) as u64).collect(), &mut b);
        assert_eq!(spill.len(), 7, "beyond capacity goes to the caller");
    }

    #[test]
    fn fetch_may_return_fewer() {
        let mut tc = legacy();
        let mut b = bus();
        tc.stash(0, 2, vec![1, 2], &mut b);
        assert_eq!(tc.fetch(0, 2, 10, &mut b).len(), 2);
    }

    #[test]
    fn plunder_moves_half_of_idle_classes() {
        let mut tc = nuca();
        let mut b = bus();
        tc.stash(0, 1, (0..8u64).collect(), &mut b);
        // First pass only clears the "touched" mark (the class was active).
        assert!(tc.plunder(&mut b).is_empty());
        // Second pass finds the class idle and moves half centrally.
        assert!(tc.plunder(&mut b).is_empty());
        let got = tc.fetch(3, 1, 4, &mut b);
        assert_eq!(got.len(), 4, "idle half is reachable from other domains");
    }

    #[test]
    fn plunder_is_noop_for_legacy() {
        let mut tc = legacy();
        let mut b = bus();
        tc.stash(0, 1, vec![1, 2, 3, 4], &mut b);
        assert!(tc.plunder(&mut b).is_empty());
        assert_eq!(tc.fetch(0, 1, 4, &mut b).len(), 4);
    }

    #[test]
    fn lazy_domain_activation() {
        let mut tc = nuca();
        let mut b = bus();
        assert_eq!(tc.active_domains(), 0);
        tc.stash(5, 0, vec![1], &mut b);
        assert_eq!(tc.active_domains(), 1, "only the used domain activates");
    }

    #[test]
    fn cached_bytes_accounting() {
        let mut tc = nuca();
        let mut b = bus();
        let size = table().info(4).size;
        tc.stash(0, 4, vec![1, 2, 3], &mut b);
        assert_eq!(tc.cached_bytes(), 3 * size);
        let _ = tc.fetch(0, 4, 2, &mut b);
        assert_eq!(tc.cached_bytes(), size);
    }

    #[test]
    fn decay_reclaims_low_water_residue() {
        let mut tc = legacy();
        let mut b = bus();
        tc.stash(0, 2, (0..8u64).collect(), &mut b);
        // First pass: the low-water mark was 0 (array was empty at the
        // start of the interval), so nothing is reclaimable yet.
        assert!(tc.decay(&mut b).is_empty());
        // Touch 3 objects during the interval: low water = 5.
        let _ = tc.fetch(0, 2, 3, &mut b);
        tc.stash(0, 2, vec![90, 91, 92], &mut b);
        let evicted = tc.decay(&mut b);
        assert_eq!(evicted.len(), 1);
        assert_eq!(evicted[0].0, 2);
        assert_eq!(evicted[0].1.len(), 5, "unused residue returned");
        // Fully-idle interval: everything left is residue.
        let evicted = tc.decay(&mut b);
        assert_eq!(evicted[0].1.len(), 3);
        assert_eq!(tc.cached_bytes(), 0);
    }

    #[test]
    fn evict_events_carry_shard_and_reason() {
        let mut tc = nuca();
        let mut b = EventBus::new(
            &TcmallocConfig::baseline().with_event_recorder(),
            CostModel::production(),
            Clock::new(),
        );
        tc.stash(2, 1, (0..8u64).collect(), &mut b);
        let _ = tc.plunder(&mut b); // clears the touched mark
        let _ = tc.plunder(&mut b); // moves the idle residue
        let evicts: Vec<_> = b
            .recorded()
            .iter()
            .filter(|e| matches!(e, AllocEvent::TransferEvict { .. }))
            .copied()
            .collect();
        assert!(
            evicts.iter().any(|e| matches!(
                e,
                AllocEvent::TransferEvict {
                    shard: 2,
                    class: 1,
                    reason: EvictReason::Plunder,
                    ..
                }
            )),
            "plunder evict tagged with the source shard: {evicts:?}"
        );
    }

    #[test]
    fn flush_drains_everything() {
        let mut tc = nuca();
        let mut b = bus();
        tc.stash(0, 1, vec![1, 2], &mut b);
        tc.stash(2, 3, vec![4], &mut b);
        let drained: usize = tc.flush_all().iter().map(|(_, v)| v.len()).sum();
        assert_eq!(drained, 3);
        assert_eq!(tc.cached_bytes(), 0);
    }
}
