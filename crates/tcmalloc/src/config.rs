//! Allocator configuration: the baseline and the four §4 redesigns.
//!
//! Every optimization the paper evaluates is an independent toggle so the
//! fleet A/B framework can measure each one (Figures 10/14, Tables 1/2) and
//! their combination (§4.5).

use crate::pageheap::PageHeapConfig;
use crate::transfer::{TransferConfig, TransferSharding};
use wsc_sanitizer::SanitizeLevel;
use wsc_sim_os::clock::NS_PER_SEC;
use wsc_sim_os::FaultPlan;

/// Capacity scale factor between production and the simulation.
///
/// A production process runs on ~100 hyperthreads with a multi-GiB heap; the
/// simulation runs ~16 vCPUs with a 50–500 MiB heap. To preserve the ratio
/// of cache capacity to heap churn — which is what determines how much
/// object traffic reaches the central free lists and the pageheap — every
/// byte-capacity knob is divided by this factor. The paper's production
/// values are documented next to each field.
pub const CAPACITY_SCALE: u64 = 8;

/// How a free issued by a thread that does not own the object's span is
/// handled (the cross-thread free mechanism).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum FreeArm {
    /// Every free is treated as local, whatever CPU issues it — the
    /// pre-ownership behaviour, and the byte-identical default.
    #[default]
    OwnerOnly,
    /// rpmalloc-style per-span deferred lists: each remote free pushes the
    /// object onto the owning span's list with one contended CAS; the
    /// owner adopts whole lists at central-refill and plunder drain points.
    AtomicList,
    /// snmalloc-style batched message passing: remote frees accumulate in
    /// a sender-side batch and are posted to the owner's inbox when full;
    /// the owner drains its inbox on a per-CPU cache miss and at plunder.
    MessagePassing,
}

impl FreeArm {
    /// Short display name (bench/report labels).
    pub fn name(self) -> &'static str {
        match self {
            FreeArm::OwnerOnly => "owner-only",
            FreeArm::AtomicList => "atomic-list",
            FreeArm::MessagePassing => "message-passing",
        }
    }
}

/// Which pagemap structure backs the page-index → span lookup.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum PagemapArm {
    /// Two-level radix tree over page numbers — production TCMalloc's
    /// layout. Kept fully selectable for comparison runs.
    Radix,
    /// Aligned-segment address masking (`ptr & SEGMENT_MASK` → slot),
    /// rpmalloc/mimalloc-style: one flat segment-aligned window, a lookup
    /// is pure address arithmetic plus a single bounds-checked load. The
    /// default: fleet A/B confirmed it simulation-identical to the radix
    /// arm (byte-equal run reports across configs and workloads) at lower
    /// bookkeeping cost.
    #[default]
    Masking,
}

impl PagemapArm {
    /// Short display name (bench/report labels).
    pub fn name(self) -> &'static str {
        match self {
            PagemapArm::Radix => "radix",
            PagemapArm::Masking => "masking",
        }
    }
}

/// Complete allocator configuration.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TcmallocConfig {
    /// Per-CPU cache byte budget (3 MB baseline; 1.5 MB with the
    /// heterogeneous design, §4.1).
    pub percpu_max_bytes: u64,
    /// Enable usage-based dynamic per-CPU cache sizing (§4.1).
    pub dynamic_percpu: bool,
    /// Resize interval (5 s in production).
    pub resize_interval_ns: u64,
    /// Caches grown per interval (the paper's "top five").
    pub resize_top_n: usize,
    /// Bytes moved per donor/grower pair per interval.
    pub resize_step_bytes: u64,
    /// Donors never shrink below this.
    pub resize_floor_bytes: u64,
    /// Transfer-cache tier configuration (NUCA sharding, §4.2).
    pub transfer: TransferConfig,
    /// Anti-stranding plunder interval for NUCA domain caches.
    pub plunder_interval_ns: u64,
    /// Central-free-list span lists: 1 = legacy, 8 = span prioritization
    /// (§4.3).
    pub cfl_lists: usize,
    /// Pageheap policy, including the lifetime-aware filler (§4.4).
    pub pageheap: PageHeapConfig,
    /// Allocation sampling period (2 MiB in production).
    pub sample_period_bytes: u64,
    /// Issue the next-object prefetch on every small allocation.
    pub prefetch: bool,
    /// Background OS-release interval.
    pub release_interval_ns: u64,
    /// Idle-cache decay interval (per-CPU and transfer-tier reclaim).
    pub decay_interval_ns: u64,
    /// Sanitizer level: shadow-state checking on every operation and
    /// cross-tier conservation audits (Off for benches, Full for tests).
    pub sanitize: SanitizeLevel,
    /// Feed the event stream into the derived stats view (cycle
    /// attribution + GWP profile). On by default; benches measuring raw
    /// allocator throughput turn it off for a true `Off`-sink run.
    pub stats_sink: bool,
    /// Keep the last N events in a bounded [`TraceRing`]
    /// (crate::events::TraceRing) for Chrome-trace export. 0 = off.
    pub trace_capacity: u32,
    /// Record the complete raw event stream (tests and tools only — the
    /// log is unbounded).
    pub record_events: bool,
    /// Soft memory limit: when resident bytes exceed it, background
    /// maintenance synchronously releases free pages back toward the limit
    /// (TCMalloc's soft-limit semantics). `None` = unlimited.
    pub soft_limit: Option<u64>,
    /// Hard memory limit: an mmap that would push resident bytes past it
    /// fails with [`AllocError::HardLimit`](crate::alloc::AllocError)
    /// instead of growing the heap. `None` = unlimited.
    pub hard_limit: Option<u64>,
    /// Deterministic OS fault plan (ENOMEM, THP denial, flaky madvise,
    /// latency spikes). `None` = the kernel never fails, which reproduces
    /// every golden figure byte-identically.
    pub os_faults: Option<FaultPlan>,
    /// Cross-thread free mechanism. [`FreeArm::OwnerOnly`] (the default)
    /// keeps the pre-ownership behaviour byte-identical.
    pub free_arm: FreeArm,
    /// Pagemap structure for the address → span lookup. Both arms are
    /// contract-identical; [`PagemapArm::Masking`] is the default, with
    /// the radix arm selectable via
    /// [`with_pagemap_arm`](Self::with_pagemap_arm).
    pub pagemap_arm: PagemapArm,
    /// Batch fast-path event emission: per-CPU hit counters and fast-path
    /// completion charges accumulate in the bus and flush as aggregate
    /// events at drain points, instead of one `emit` per operation.
    /// Batching only engages while no sink observes individual events
    /// (no trace ring, no recorder, no extra sinks, sanitizer off), so any
    /// recorded event stream — and therefore replay byte-identity — is
    /// unchanged. Off by default.
    pub batch_fastpath_events: bool,
}

impl TcmallocConfig {
    /// The pre-redesign production baseline: static 3 MB per-CPU caches, a
    /// singleton transfer cache, a single span list, and the
    /// most-allocated-first filler of Hunter et al. (OSDI '21).
    ///
    /// Background intervals are time-compressed ~10× relative to production
    /// (the simulation also compresses its diurnal load cycles from hours to
    /// tens of seconds), so a multi-second simulated run exercises the same
    /// number of maintenance passes a production process sees over minutes.
    pub fn baseline() -> Self {
        Self {
            percpu_max_bytes: (3 << 20) / CAPACITY_SCALE, // production: 3 MB
            dynamic_percpu: false,
            resize_interval_ns: NS_PER_SEC / 5, // production: 5 s
            resize_top_n: 5,
            resize_step_bytes: (256 << 10) / CAPACITY_SCALE,
            resize_floor_bytes: (256 << 10) / CAPACITY_SCALE,
            transfer: TransferConfig::default(),
            plunder_interval_ns: NS_PER_SEC / 20,
            cfl_lists: 1,
            pageheap: PageHeapConfig::default(),
            sample_period_bytes: 2 << 20,
            prefetch: true,
            release_interval_ns: NS_PER_SEC / 20,
            decay_interval_ns: NS_PER_SEC / 10, // production: ~1 s
            sanitize: SanitizeLevel::Off,
            stats_sink: true,
            trace_capacity: 0,
            record_events: false,
            soft_limit: None,
            hard_limit: None,
            os_faults: None,
            free_arm: FreeArm::OwnerOnly,
            pagemap_arm: PagemapArm::Masking,
            batch_fastpath_events: false,
        }
    }

    /// All four §4 redesigns enabled (the §4.5 configuration).
    pub fn optimized() -> Self {
        Self::baseline()
            .with_heterogeneous_percpu()
            .with_nuca_transfer()
            .with_span_prioritization()
            .with_lifetime_filler()
    }

    /// Enables §4.1: dynamic per-CPU cache sizing, with the default budget
    /// halved from 3 MB to 1.5 MB as in the paper's evaluation.
    pub fn with_heterogeneous_percpu(mut self) -> Self {
        self.dynamic_percpu = true;
        // Production halves 3 MB to 1.5 MB; scaled equivalently here.
        self.percpu_max_bytes = (3 << 19) / CAPACITY_SCALE;
        self
    }

    /// Enables §4.2: NUCA-aware per-LLC-domain transfer caches.
    pub fn with_nuca_transfer(mut self) -> Self {
        self.transfer.sharding = TransferSharding::Domain;
        self
    }

    /// Enables the §5 NUMA extension: transfer caches sharded per NUMA node
    /// instead of per LLC domain.
    pub fn with_numa_transfer(mut self) -> Self {
        self.transfer.sharding = TransferSharding::Node;
        self
    }

    /// Enables §4.3: span prioritization with L = 8 lists.
    pub fn with_span_prioritization(mut self) -> Self {
        self.cfl_lists = 8;
        self
    }

    /// Enables §4.4: the lifetime-aware hugepage filler with C = 16.
    pub fn with_lifetime_filler(mut self) -> Self {
        self.pageheap.lifetime_aware_filler = true;
        self.pageheap.capacity_threshold = 16;
        self
    }

    /// Sets the sanitizer level (shadow checks + conservation audits).
    pub fn with_sanitize(mut self, level: SanitizeLevel) -> Self {
        self.sanitize = level;
        self
    }

    /// Enables or disables the derived stats view (cycles + GWP profile).
    pub fn with_stats_sink(mut self, on: bool) -> Self {
        self.stats_sink = on;
        self
    }

    /// Keeps the last `capacity` events in the trace ring for Chrome-trace
    /// export (`wsc-bench` `trace --events`).
    pub fn with_trace(mut self, capacity: u32) -> Self {
        self.trace_capacity = capacity;
        self
    }

    /// Records the complete raw event stream (unbounded; tests/tools).
    pub fn with_event_recorder(mut self) -> Self {
        self.record_events = true;
        self
    }

    /// Sets the soft memory limit (synchronous release-and-retry in
    /// background maintenance when resident bytes exceed it).
    pub fn with_soft_limit(mut self, bytes: u64) -> Self {
        self.soft_limit = Some(bytes);
        self
    }

    /// Sets the hard memory limit (mmap past it fails with a structured
    /// allocation error instead of growing the heap).
    pub fn with_hard_limit(mut self, bytes: u64) -> Self {
        self.hard_limit = Some(bytes);
        self
    }

    /// Attaches a deterministic OS fault plan to the simulated kernel.
    pub fn with_os_faults(mut self, plan: FaultPlan) -> Self {
        self.os_faults = Some(plan);
        self
    }

    /// Selects the cross-thread free mechanism (see [`FreeArm`]).
    pub fn with_free_arm(mut self, arm: FreeArm) -> Self {
        self.free_arm = arm;
        self
    }

    /// Selects the pagemap structure (see [`PagemapArm`]).
    pub fn with_pagemap_arm(mut self, arm: PagemapArm) -> Self {
        self.pagemap_arm = arm;
        self
    }

    /// Enables or disables batched fast-path event emission.
    pub fn with_batched_fastpath_events(mut self, on: bool) -> Self {
        self.batch_fastpath_events = on;
        self
    }
}

impl Default for TcmallocConfig {
    fn default() -> Self {
        Self::baseline()
    }
}

#[cfg(test)]
// Tests may unwrap: a panic IS the failure report here.
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn baseline_has_everything_off() {
        let c = TcmallocConfig::baseline();
        assert!(!c.dynamic_percpu);
        assert!(!c.transfer.is_sharded());
        assert_eq!(c.cfl_lists, 1);
        assert!(!c.pageheap.lifetime_aware_filler);
        assert_eq!(c.percpu_max_bytes, (3 << 20) / CAPACITY_SCALE);
        assert_eq!(c.sample_period_bytes, 2 << 20);
        // Sink defaults: attribution on, trace/recorder off.
        assert!(c.stats_sink);
        assert_eq!(c.trace_capacity, 0);
        assert!(!c.record_events);
        // Failure-model defaults: no limits, no faults — golden figures
        // depend on the kernel never failing unless explicitly asked to.
        assert_eq!(c.soft_limit, None);
        assert_eq!(c.hard_limit, None);
        assert_eq!(c.os_faults, None);
        // Ownership routing defaults to pass-through: remote frees behave
        // exactly like local ones unless an arm is opted into.
        assert_eq!(c.free_arm, FreeArm::OwnerOnly);
        // Hot-path structure defaults: the masking pagemap (verified
        // simulation-identical to the radix arm) and per-op emission.
        assert_eq!(c.pagemap_arm, PagemapArm::Masking);
        assert!(!c.batch_fastpath_events);
    }

    #[test]
    fn pagemap_arm_builder_and_names() {
        let c = TcmallocConfig::optimized().with_pagemap_arm(PagemapArm::Radix);
        assert_eq!(c.pagemap_arm, PagemapArm::Radix, "radix stays selectable");
        assert_eq!(
            TcmallocConfig::optimized().pagemap_arm,
            PagemapArm::Masking,
            "optimized() follows the (masking) default lookup structure"
        );
        assert_eq!(PagemapArm::Radix.name(), "radix");
        assert_eq!(PagemapArm::Masking.name(), "masking");
        let b = TcmallocConfig::baseline().with_batched_fastpath_events(true);
        assert!(b.batch_fastpath_events);
        assert!(!TcmallocConfig::optimized().batch_fastpath_events);
    }

    #[test]
    fn free_arm_builder_and_names() {
        let c = TcmallocConfig::optimized().with_free_arm(FreeArm::AtomicList);
        assert_eq!(c.free_arm, FreeArm::AtomicList);
        assert_eq!(
            TcmallocConfig::optimized().free_arm,
            FreeArm::OwnerOnly,
            "optimized() must not silently change free semantics"
        );
        assert_eq!(FreeArm::OwnerOnly.name(), "owner-only");
        assert_eq!(FreeArm::AtomicList.name(), "atomic-list");
        assert_eq!(FreeArm::MessagePassing.name(), "message-passing");
    }

    #[test]
    fn limit_and_fault_builders() {
        let c = TcmallocConfig::baseline()
            .with_soft_limit(64 << 20)
            .with_hard_limit(128 << 20)
            .with_os_faults(FaultPlan::off().with_seed(7));
        assert_eq!(c.soft_limit, Some(64 << 20));
        assert_eq!(c.hard_limit, Some(128 << 20));
        assert!(c.os_faults.unwrap().is_off());
    }

    #[test]
    fn sink_builders_compose() {
        let c = TcmallocConfig::optimized()
            .with_stats_sink(false)
            .with_trace(4096)
            .with_event_recorder();
        assert!(!c.stats_sink);
        assert_eq!(c.trace_capacity, 4096);
        assert!(c.record_events);
    }

    #[test]
    fn optimized_has_everything_on() {
        let c = TcmallocConfig::optimized();
        assert!(c.dynamic_percpu);
        assert_eq!(c.transfer.sharding, TransferSharding::Domain);
        assert_eq!(c.cfl_lists, 8);
        assert!(c.pageheap.lifetime_aware_filler);
        assert_eq!(c.pageheap.capacity_threshold, 16);
        assert_eq!(
            c.percpu_max_bytes,
            (3 << 19) / CAPACITY_SCALE,
            "halved from the baseline"
        );
    }

    #[test]
    fn toggles_are_independent() {
        let c = TcmallocConfig::baseline().with_span_prioritization();
        assert_eq!(c.cfl_lists, 8);
        assert!(!c.dynamic_percpu && !c.transfer.is_sharded());
        assert!(!c.pageheap.lifetime_aware_filler);
    }
}
