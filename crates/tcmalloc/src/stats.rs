//! Allocator-internal accounting: malloc cycles by component (Figure 6a)
//! and the fragmentation breakdown (Figures 5b and 6b).

use wsc_sim_hw::cost::AllocPath;

/// Where allocator time goes — the categories of Figure 6a.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CycleCategory {
    /// Per-CPU cache fast path.
    CpuCache,
    /// Transfer cache.
    TransferCache,
    /// Central free list.
    CentralFreeList,
    /// Pageheap (including OS refills).
    PageHeap,
    /// Sampled-allocation stack recording.
    Sampled,
    /// Next-object prefetching.
    Prefetch,
    /// Unclassified bookkeeping.
    Other,
}

impl CycleCategory {
    /// All categories in the paper's display order.
    pub const ALL: [CycleCategory; 7] = [
        CycleCategory::CpuCache,
        CycleCategory::TransferCache,
        CycleCategory::CentralFreeList,
        CycleCategory::PageHeap,
        CycleCategory::Sampled,
        CycleCategory::Prefetch,
        CycleCategory::Other,
    ];

    /// Display name matching the paper's figure legend.
    pub fn name(self) -> &'static str {
        match self {
            CycleCategory::CpuCache => "CPUCache",
            CycleCategory::TransferCache => "TransferCache",
            CycleCategory::CentralFreeList => "CentralFreeList",
            CycleCategory::PageHeap => "PageHeap",
            CycleCategory::Sampled => "Sampled",
            CycleCategory::Prefetch => "Prefetch",
            CycleCategory::Other => "Other",
        }
    }

    fn index(self) -> usize {
        match self {
            CycleCategory::CpuCache => 0,
            CycleCategory::TransferCache => 1,
            CycleCategory::CentralFreeList => 2,
            CycleCategory::PageHeap => 3,
            CycleCategory::Sampled => 4,
            CycleCategory::Prefetch => 5,
            CycleCategory::Other => 6,
        }
    }
}

impl From<AllocPath> for CycleCategory {
    fn from(path: AllocPath) -> Self {
        match path {
            AllocPath::PerCpu => CycleCategory::CpuCache,
            AllocPath::TransferCache => CycleCategory::TransferCache,
            AllocPath::CentralFreeList => CycleCategory::CentralFreeList,
            AllocPath::PageHeap | AllocPath::Mmap => CycleCategory::PageHeap,
        }
    }
}

/// Nanoseconds and operation counts per category.
#[derive(Clone, Debug, Default)]
pub struct CycleStats {
    ns: [f64; 7],
    ops: [u64; 7],
}

impl CycleStats {
    /// Creates zeroed stats.
    pub fn new() -> Self {
        Self::default()
    }

    /// Charges `ns` to a category.
    pub fn charge(&mut self, cat: CycleCategory, ns: f64) {
        self.ns[cat.index()] += ns;
        self.ops[cat.index()] += 1;
    }

    /// Nanoseconds attributed to a category.
    pub fn ns(&self, cat: CycleCategory) -> f64 {
        self.ns[cat.index()]
    }

    /// Operations attributed to a category.
    pub fn ops(&self, cat: CycleCategory) -> u64 {
        self.ops[cat.index()]
    }

    /// Total allocator nanoseconds.
    pub fn total_ns(&self) -> f64 {
        self.ns.iter().sum()
    }

    /// Fraction of allocator time per category (Figure 6a). Zero when idle.
    pub fn breakdown(&self) -> Vec<(CycleCategory, f64)> {
        let total = self.total_ns();
        CycleCategory::ALL
            .iter()
            .map(|&c| {
                let f = if total > 0.0 { self.ns(c) / total } else { 0.0 };
                (c, f)
            })
            .collect()
    }

    /// Merges another stats block.
    pub fn merge(&mut self, other: &CycleStats) {
        for i in 0..self.ns.len() {
            self.ns[i] += other.ns[i];
            self.ops[i] += other.ops[i];
        }
    }
}

/// Fragmentation snapshot — the decomposition behind Figures 5b and 6b.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct FragmentationBreakdown {
    /// Application-requested live bytes.
    pub live_bytes: u64,
    /// Internal fragmentation: slack between request and size class.
    pub internal_bytes: u64,
    /// External: objects cached in per-CPU caches.
    pub percpu_bytes: u64,
    /// External: objects cached in transfer caches.
    pub transfer_bytes: u64,
    /// External: free objects + carving slack on central-free-list spans.
    pub central_bytes: u64,
    /// External: resident free pages held by the pageheap.
    pub pageheap_bytes: u64,
    /// Resident heap bytes per the (simulated) kernel.
    pub resident_bytes: u64,
}

impl FragmentationBreakdown {
    /// Total external fragmentation.
    pub fn external_bytes(&self) -> u64 {
        self.percpu_bytes + self.transfer_bytes + self.central_bytes + self.pageheap_bytes
    }

    /// Total fragmentation (internal + external).
    pub fn total_bytes(&self) -> u64 {
        self.external_bytes() + self.internal_bytes
    }

    /// Fragmentation ratio: fragmented / live (Figure 5b). Zero when empty.
    pub fn ratio(&self) -> f64 {
        if self.live_bytes == 0 {
            0.0
        } else {
            self.total_bytes() as f64 / self.live_bytes as f64
        }
    }

    /// Shares of total fragmentation per source, in the Figure 6b order:
    /// `[CPUCache, TransferCache, CentralFreeList, PageHeap, Internal]`.
    pub fn shares(&self) -> [f64; 5] {
        let total = self.total_bytes().max(1) as f64;
        [
            self.percpu_bytes as f64 / total,
            self.transfer_bytes as f64 / total,
            self.central_bytes as f64 / total,
            self.pageheap_bytes as f64 / total,
            self.internal_bytes as f64 / total,
        ]
    }
}

#[cfg(test)]
// Tests may unwrap: a panic IS the failure report here.
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn charge_and_breakdown() {
        let mut s = CycleStats::new();
        s.charge(CycleCategory::CpuCache, 53.0);
        s.charge(CycleCategory::Prefetch, 16.0);
        s.charge(CycleCategory::CentralFreeList, 31.0);
        assert!((s.total_ns() - 100.0).abs() < 1e-9);
        let b = s.breakdown();
        let cpu = b
            .iter()
            .find(|(c, _)| *c == CycleCategory::CpuCache)
            .unwrap()
            .1;
        assert!((cpu - 0.53).abs() < 1e-9);
        assert_eq!(s.ops(CycleCategory::CpuCache), 1);
    }

    #[test]
    fn alloc_path_maps_to_category() {
        assert_eq!(
            CycleCategory::from(AllocPath::Mmap),
            CycleCategory::PageHeap
        );
        assert_eq!(
            CycleCategory::from(AllocPath::PerCpu),
            CycleCategory::CpuCache
        );
    }

    #[test]
    fn merge_sums() {
        let mut a = CycleStats::new();
        let mut b = CycleStats::new();
        a.charge(CycleCategory::Other, 1.0);
        b.charge(CycleCategory::Other, 2.0);
        a.merge(&b);
        assert!((a.ns(CycleCategory::Other) - 3.0).abs() < 1e-9);
        assert_eq!(a.ops(CycleCategory::Other), 2);
    }

    #[test]
    fn fragmentation_ratio_and_shares() {
        let f = FragmentationBreakdown {
            live_bytes: 1000,
            internal_bytes: 34,
            percpu_bytes: 30,
            transfer_bytes: 10,
            central_bytes: 64,
            pageheap_bytes: 84,
            resident_bytes: 1222,
        };
        assert_eq!(f.external_bytes(), 188);
        assert!((f.ratio() - 0.222).abs() < 1e-9);
        let shares = f.shares();
        assert!((shares.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(shares[3] > shares[2], "pageheap dominates CFL here");
    }

    #[test]
    fn empty_breakdown_is_zero() {
        let s = CycleStats::new();
        assert_eq!(s.total_ns(), 0.0);
        assert!(s.breakdown().iter().all(|(_, f)| *f == 0.0));
        assert_eq!(FragmentationBreakdown::default().ratio(), 0.0);
    }
}
