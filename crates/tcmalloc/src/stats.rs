//! Allocator-internal accounting: malloc cycles by component (Figure 6a)
//! and the fragmentation breakdown (Figures 5b and 6b).
//!
//! Since the event-bus refactor these are *derived views*: [`StatsView`]
//! subscribes to the [`AllocEvent`](crate::events::AllocEvent) stream and
//! charges the cost model at emission, so cycle attribution cannot drift
//! from what the allocator actually reported per operation.

use crate::events::{AllocEvent, EventSink};
use wsc_sim_hw::cost::{AllocPath, CostModel};
use wsc_telemetry::gwp::{AllocationProfile, Sample};

/// Where allocator time goes — the categories of Figure 6a.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CycleCategory {
    /// Per-CPU cache fast path.
    CpuCache,
    /// Transfer cache.
    TransferCache,
    /// Central free list.
    CentralFreeList,
    /// Pageheap (including OS refills).
    PageHeap,
    /// Sampled-allocation stack recording.
    Sampled,
    /// Next-object prefetching.
    Prefetch,
    /// Unclassified bookkeeping.
    Other,
    /// Cross-thread free synchronization: contended CAS pushes, message
    /// batch handoffs, deferred-list detaches. Appended after the paper's
    /// seven Figure-6a categories so their order (and every golden figure
    /// derived from it) is untouched.
    Contention,
}

/// The single source of truth for the category list: every `(category,
/// display name)` pair, in the paper's display order. [`CycleCategory::ALL`],
/// [`CycleCategory::name`], and the [`CycleStats`] array width all derive
/// from this catalog, so adding a category cannot silently miss one of them
/// (the `catalog_is_exhaustive` test closes the loop with an exhaustive
/// match).
pub const CATALOG: [(CycleCategory, &str); CycleCategory::COUNT] = [
    (CycleCategory::CpuCache, "CPUCache"),
    (CycleCategory::TransferCache, "TransferCache"),
    (CycleCategory::CentralFreeList, "CentralFreeList"),
    (CycleCategory::PageHeap, "PageHeap"),
    (CycleCategory::Sampled, "Sampled"),
    (CycleCategory::Prefetch, "Prefetch"),
    (CycleCategory::Other, "Other"),
    (CycleCategory::Contention, "Contention"),
];

impl CycleCategory {
    /// Number of categories.
    pub const COUNT: usize = 8;

    /// All categories in the paper's display order (derived from
    /// [`CATALOG`]).
    pub const ALL: [CycleCategory; Self::COUNT] = {
        let mut all = [CycleCategory::CpuCache; Self::COUNT];
        let mut i = 0;
        while i < Self::COUNT {
            all[i] = CATALOG[i].0;
            i += 1;
        }
        all
    };

    /// Display name matching the paper's figure legend (derived from
    /// [`CATALOG`]).
    pub fn name(self) -> &'static str {
        CATALOG[self.index()].1
    }

    /// Position in [`CATALOG`] — the exhaustive match that anchors the
    /// catalog order to the enum.
    const fn index(self) -> usize {
        match self {
            CycleCategory::CpuCache => 0,
            CycleCategory::TransferCache => 1,
            CycleCategory::CentralFreeList => 2,
            CycleCategory::PageHeap => 3,
            CycleCategory::Sampled => 4,
            CycleCategory::Prefetch => 5,
            CycleCategory::Other => 6,
            CycleCategory::Contention => 7,
        }
    }
}

impl From<AllocPath> for CycleCategory {
    fn from(path: AllocPath) -> Self {
        match path {
            AllocPath::PerCpu => CycleCategory::CpuCache,
            AllocPath::TransferCache => CycleCategory::TransferCache,
            AllocPath::CentralFreeList => CycleCategory::CentralFreeList,
            AllocPath::PageHeap | AllocPath::Mmap => CycleCategory::PageHeap,
        }
    }
}

/// Time and operation counts per category.
///
/// Accumulation is **order-independent**: time is stored as integer
/// picoseconds and converted to nanoseconds only at the query boundary, so
/// merging per-cell stats from a parallel run yields bit-identical totals
/// whatever the merge order (f64 summation would not).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CycleStats {
    ps: [u64; CycleCategory::COUNT],
    ops: [u64; CycleCategory::COUNT],
}

impl CycleStats {
    /// Creates zeroed stats.
    pub fn new() -> Self {
        Self::default()
    }

    /// Charges `ns` to a category (stored with picosecond resolution).
    pub fn charge(&mut self, cat: CycleCategory, ns: f64) {
        // lint:allow(panic-surface) cat.index() enumerates CycleCategory,
        // and both arrays are sized CycleCategory::COUNT.
        self.ps[cat.index()] += (ns * 1000.0).round() as u64;
        // lint:allow(panic-surface) same enum-sized bound as the line above.
        self.ops[cat.index()] += 1;
    }

    /// Charges `n` operations of `ns` nanoseconds each in one step —
    /// exactly equivalent to `n` [`charge`](Self::charge) calls, because
    /// the ledger is integral picoseconds: `n * round(ns * 1000)` is the
    /// same total the per-op path accumulates. This is how batched
    /// fast-path aggregates land without drifting from per-op pricing.
    pub fn charge_n(&mut self, cat: CycleCategory, ns: f64, n: u64) {
        if n == 0 {
            return;
        }
        // lint:allow(panic-surface) cat.index() enumerates CycleCategory,
        // and both arrays are sized CycleCategory::COUNT.
        self.ps[cat.index()] += n * (ns * 1000.0).round() as u64;
        // lint:allow(panic-surface) same enum-sized bound as the line above.
        self.ops[cat.index()] += n;
    }

    /// Nanoseconds attributed to a category.
    pub fn ns(&self, cat: CycleCategory) -> f64 {
        self.ps[cat.index()] as f64 / 1000.0
    }

    /// Operations attributed to a category.
    pub fn ops(&self, cat: CycleCategory) -> u64 {
        self.ops[cat.index()]
    }

    /// Total allocator nanoseconds.
    pub fn total_ns(&self) -> f64 {
        self.ps.iter().sum::<u64>() as f64 / 1000.0
    }

    /// Fraction of allocator time per category (Figure 6a). Zero when idle.
    pub fn breakdown(&self) -> Vec<(CycleCategory, f64)> {
        let total = self.total_ns();
        CycleCategory::ALL
            .iter()
            .map(|&c| {
                let f = if total > 0.0 { self.ns(c) / total } else { 0.0 };
                (c, f)
            })
            .collect()
    }

    /// Merges another stats block. Integer addition — commutative and
    /// associative, so parallel cells can merge in any order.
    pub fn merge(&mut self, other: &CycleStats) {
        for i in 0..self.ps.len() {
            self.ps[i] += other.ps[i];
            self.ops[i] += other.ops[i];
        }
    }
}

/// The derived attribution view: one [`EventSink`] producing the Figure 6a
/// cycle breakdown and the GWP allocation profile from the event stream.
///
/// Charging lives here, *at emission*: `MallocDone` / `FreeDone` carry the
/// satisfying tier and the per-op flags, and the view prices them against
/// its own copy of the [`CostModel`] in the exact component order the bus
/// used to price the operation — so the `ns` the allocator returned and the
/// cycles attributed here are identical by construction.
#[derive(Clone, Debug)]
pub struct StatsView {
    cost: CostModel,
    cycles: CycleStats,
    profile: AllocationProfile,
}

impl StatsView {
    /// A zeroed view pricing against `cost`.
    pub fn new(cost: CostModel) -> Self {
        Self {
            cost,
            cycles: CycleStats::new(),
            profile: AllocationProfile::new(),
        }
    }

    /// The derived cycle attribution.
    pub fn cycles(&self) -> &CycleStats {
        &self.cycles
    }

    /// The derived allocation profile.
    pub fn profile(&self) -> &AllocationProfile {
        &self.profile
    }
}

impl EventSink for StatsView {
    fn on_event(&mut self, _ts_ns: u64, ev: &AllocEvent) {
        match *ev {
            AllocEvent::MallocDone {
                path,
                prefetched,
                sampled,
                ..
            } => {
                self.cycles
                    .charge(path.into(), self.cost.alloc_path_ns(path));
                if prefetched {
                    self.cycles
                        .charge(CycleCategory::Prefetch, self.cost.prefetch_ns);
                }
                self.cycles.charge(CycleCategory::Other, self.cost.other_ns);
                if sampled {
                    self.cycles
                        .charge(CycleCategory::Sampled, self.cost.sampled_alloc_ns);
                }
            }
            AllocEvent::FreeDone { path, .. } => {
                self.cycles
                    .charge(path.into(), self.cost.alloc_path_ns(path));
                self.cycles.charge(CycleCategory::Other, self.cost.other_ns);
            }
            AllocEvent::ContentionCharged { ns, .. } => {
                self.cycles.charge(CycleCategory::Contention, ns);
            }
            AllocEvent::FastPathFlush {
                mallocs,
                prefetched,
                frees,
            } => {
                // The drain-point aggregate of unsampled per-CPU-path
                // completions: charge the identical components the per-op
                // arms above would have, `mallocs + frees` times.
                self.cycles.charge_n(
                    CycleCategory::CpuCache,
                    self.cost.alloc_path_ns(AllocPath::PerCpu),
                    mallocs + frees,
                );
                self.cycles
                    .charge_n(CycleCategory::Prefetch, self.cost.prefetch_ns, prefetched);
                self.cycles
                    .charge_n(CycleCategory::Other, self.cost.other_ns, mallocs + frees);
            }
            AllocEvent::OsFault { latency_ns, .. } if latency_ns > 0 => {
                // Injected kernel latency (THP compaction stall, flaky
                // madvise) is allocator time spent waiting on the OS —
                // charge it where the paper books mmap cost.
                self.cycles
                    .charge(CycleCategory::PageHeap, latency_ns as f64);
            }
            AllocEvent::SamplerPick {
                size,
                site,
                now_ns,
                weight,
                ..
            } => self.profile.record_alloc(&Sample {
                size,
                site,
                alloc_time_ns: now_ns,
                weight,
            }),
            AllocEvent::SampledFree {
                size,
                lifetime_ns,
                weight,
            } => self.profile.record_lifetime(size, lifetime_ns, weight),
            _ => {}
        }
    }
}

/// Fragmentation snapshot — the decomposition behind Figures 5b and 6b.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct FragmentationBreakdown {
    /// Application-requested live bytes.
    pub live_bytes: u64,
    /// Internal fragmentation: slack between request and size class.
    pub internal_bytes: u64,
    /// External: objects cached in per-CPU caches.
    pub percpu_bytes: u64,
    /// External: objects cached in transfer caches.
    pub transfer_bytes: u64,
    /// External: free objects + carving slack on central-free-list spans.
    pub central_bytes: u64,
    /// External: resident free pages held by the pageheap.
    pub pageheap_bytes: u64,
    /// External: objects freed remotely and still parked on deferred lists
    /// or inboxes (in-flight cross-thread frees, zero under owner-only).
    pub deferred_bytes: u64,
    /// Resident heap bytes per the (simulated) kernel.
    pub resident_bytes: u64,
}

impl FragmentationBreakdown {
    /// Total external fragmentation.
    pub fn external_bytes(&self) -> u64 {
        self.percpu_bytes
            + self.transfer_bytes
            + self.central_bytes
            + self.pageheap_bytes
            + self.deferred_bytes
    }

    /// Total fragmentation (internal + external).
    pub fn total_bytes(&self) -> u64 {
        self.external_bytes() + self.internal_bytes
    }

    /// Fragmentation ratio: fragmented / live (Figure 5b). Zero when empty.
    pub fn ratio(&self) -> f64 {
        if self.live_bytes == 0 {
            0.0
        } else {
            self.total_bytes() as f64 / self.live_bytes as f64
        }
    }

    /// Shares of total fragmentation per source, in the Figure 6b order:
    /// `[CPUCache, TransferCache, CentralFreeList, PageHeap, Internal]`.
    /// Deferred remote-free bytes are front-end-cached objects in spirit
    /// (they await adoption by the owner's caches), so they fold into the
    /// CPUCache share rather than widening the figure.
    pub fn shares(&self) -> [f64; 5] {
        let total = self.total_bytes().max(1) as f64;
        [
            (self.percpu_bytes + self.deferred_bytes) as f64 / total,
            self.transfer_bytes as f64 / total,
            self.central_bytes as f64 / total,
            self.pageheap_bytes as f64 / total,
            self.internal_bytes as f64 / total,
        ]
    }
}

#[cfg(test)]
// Tests may unwrap: a panic IS the failure report here.
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use wsc_prng::SmallRng;

    #[test]
    fn charge_and_breakdown() {
        let mut s = CycleStats::new();
        s.charge(CycleCategory::CpuCache, 53.0);
        s.charge(CycleCategory::Prefetch, 16.0);
        s.charge(CycleCategory::CentralFreeList, 31.0);
        assert!((s.total_ns() - 100.0).abs() < 1e-9);
        let b = s.breakdown();
        let cpu = b
            .iter()
            .find(|(c, _)| *c == CycleCategory::CpuCache)
            .unwrap()
            .1;
        assert!((cpu - 0.53).abs() < 1e-9);
        assert_eq!(s.ops(CycleCategory::CpuCache), 1);
    }

    #[test]
    fn alloc_path_maps_to_category() {
        assert_eq!(
            CycleCategory::from(AllocPath::Mmap),
            CycleCategory::PageHeap
        );
        assert_eq!(
            CycleCategory::from(AllocPath::PerCpu),
            CycleCategory::CpuCache
        );
    }

    #[test]
    fn merge_sums() {
        let mut a = CycleStats::new();
        let mut b = CycleStats::new();
        a.charge(CycleCategory::Other, 1.0);
        b.charge(CycleCategory::Other, 2.0);
        a.merge(&b);
        assert!((a.ns(CycleCategory::Other) - 3.0).abs() < 1e-9);
        assert_eq!(a.ops(CycleCategory::Other), 2);
    }

    #[test]
    fn catalog_is_exhaustive() {
        // Every category appears in the catalog at its own index, with the
        // name the exhaustive `name_of` match below expects. Adding a
        // variant without extending CATALOG fails to compile (COUNT
        // mismatch); reordering fails here.
        fn name_of(c: CycleCategory) -> &'static str {
            match c {
                CycleCategory::CpuCache => "CPUCache",
                CycleCategory::TransferCache => "TransferCache",
                CycleCategory::CentralFreeList => "CentralFreeList",
                CycleCategory::PageHeap => "PageHeap",
                CycleCategory::Sampled => "Sampled",
                CycleCategory::Prefetch => "Prefetch",
                CycleCategory::Other => "Other",
                CycleCategory::Contention => "Contention",
            }
        }
        for (i, (cat, name)) in CATALOG.iter().enumerate() {
            assert_eq!(cat.index(), i, "catalog order matches index()");
            assert_eq!(cat.name(), *name);
            assert_eq!(*name, name_of(*cat));
            assert_eq!(CycleCategory::ALL[i], *cat);
        }
        assert_eq!(CycleCategory::ALL.len(), CycleCategory::COUNT);
    }

    /// Satellite: merge across cells is order-independent — integer
    /// picoseconds cannot drift the way float summation order can.
    #[test]
    fn merge_order_property() {
        let mut rng = SmallRng::seed_from_u64(0x5EED);
        for _ in 0..200 {
            let cells: Vec<CycleStats> = (0..8)
                .map(|_| {
                    let mut s = CycleStats::new();
                    for _ in 0..rng.gen_range(1..20u32) {
                        let cat = CycleCategory::ALL
                            [rng.gen_range(0..CycleCategory::COUNT as u64) as usize];
                        // Tenths of ns, like the cost model's calibration.
                        let ns = rng.gen_range(1..130_000u64) as f64 / 10.0;
                        s.charge(cat, ns);
                    }
                    s
                })
                .collect();
            let mut forward = CycleStats::new();
            for c in &cells {
                forward.merge(c);
            }
            let mut backward = CycleStats::new();
            for c in cells.iter().rev() {
                backward.merge(c);
            }
            // Pairwise tree merge, a third order.
            let mut tree: Vec<CycleStats> = cells.clone();
            while tree.len() > 1 {
                let mut next = Vec::new();
                for pair in tree.chunks(2) {
                    let mut m = pair[0].clone();
                    if let Some(b) = pair.get(1) {
                        m.merge(b);
                    }
                    next.push(m);
                }
                tree = next;
            }
            assert_eq!(forward, backward, "merge order must not matter");
            assert_eq!(forward, tree[0], "tree merge identical too");
            assert_eq!(forward.total_ns(), backward.total_ns());
        }
    }

    #[test]
    fn picosecond_storage_is_exact_for_cost_model_values() {
        // All calibrated constants are tenths of ns; ps storage is exact.
        let mut s = CycleStats::new();
        s.charge(CycleCategory::CpuCache, 3.1);
        s.charge(CycleCategory::CpuCache, 3.1);
        assert_eq!(s.ns(CycleCategory::CpuCache), 6.2);
        s.charge(CycleCategory::PageHeap, 12_916.7);
        assert_eq!(s.ns(CycleCategory::PageHeap), 12_916.7);
    }

    #[test]
    fn fragmentation_ratio_and_shares() {
        let f = FragmentationBreakdown {
            live_bytes: 1000,
            internal_bytes: 34,
            percpu_bytes: 30,
            transfer_bytes: 10,
            central_bytes: 64,
            pageheap_bytes: 84,
            deferred_bytes: 0,
            resident_bytes: 1222,
        };
        assert_eq!(f.external_bytes(), 188);
        assert!((f.ratio() - 0.222).abs() < 1e-9);
        let shares = f.shares();
        assert!((shares.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(shares[3] > shares[2], "pageheap dominates CFL here");
    }

    #[test]
    fn deferred_bytes_count_as_front_end_fragmentation() {
        let f = FragmentationBreakdown {
            live_bytes: 1000,
            internal_bytes: 34,
            percpu_bytes: 30,
            transfer_bytes: 10,
            central_bytes: 64,
            pageheap_bytes: 84,
            deferred_bytes: 16,
            resident_bytes: 1238,
        };
        assert_eq!(f.external_bytes(), 204);
        let shares = f.shares();
        assert!((shares.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(
            (shares[0] - 46.0 / f.total_bytes() as f64).abs() < 1e-9,
            "deferred folds into the CPUCache share"
        );
    }

    #[test]
    fn contention_charges_flow_into_their_own_category() {
        let mut v = StatsView::new(CostModel::production());
        v.on_event(0, &AllocEvent::ContentionCharged { vcpu: 2, ns: 10.0 });
        v.on_event(0, &AllocEvent::ContentionCharged { vcpu: 0, ns: 45.0 });
        assert_eq!(v.cycles().ns(CycleCategory::Contention), 55.0);
        assert_eq!(v.cycles().ops(CycleCategory::Contention), 2);
        assert_eq!(v.cycles().ns(CycleCategory::Other), 0.0);
    }

    #[test]
    fn empty_breakdown_is_zero() {
        let s = CycleStats::new();
        assert_eq!(s.total_ns(), 0.0);
        assert!(s.breakdown().iter().all(|(_, f)| *f == 0.0));
        assert_eq!(FragmentationBreakdown::default().ratio(), 0.0);
    }
}
