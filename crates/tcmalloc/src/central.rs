//! The central free list (§4.3), with span prioritization.
//!
//! One central free list per size class manages that class's spans and
//! serves batch requests from the transfer cache. A span can only return to
//! the pageheap when *all* its objects are free, so *which span* serves an
//! allocation decides fragmentation: the legacy singleton list hands out
//! objects "from spans with the fewest live allocations that are most likely
//! to be released, just because they happen to lie in the front of the
//! linked list".
//!
//! The redesign keeps `L` lists (L = 8 in production and here): a span with
//! `A` live allocations sits on list `max(0, L-1-⌊log2 A⌋)`, so nearly-full
//! spans (A ≥ 128) share list 0 and nearly-empty spans spread across the
//! high-indexed lists ("spans with 132 or 255 live allocations ... can be
//! mapped in the same list"). Allocations are served from the lowest-indexed
//! non-empty list — densifying full spans and letting empty ones drain.
//!
//! The module also gathers the paper's span telemetry: the Figure 13
//! release-probability-vs-occupancy curve and the Figure 16 per-class span
//! creation/return counts.

use crate::events::{AllocEvent, EventBus};
use crate::pageheap::{AllocError, PageHeap};
use crate::pagemap::Pagemap;
use crate::size_class::SizeClassInfo;
use crate::span::{Span, SpanId, SpanRegistry, SpanState};
use wsc_sim_hw::cost::AllocPath;

/// Observation table for Figure 13: for each occupancy `A`, how many
/// observations resolved as "span released before next allocation".
#[derive(Clone, Debug)]
pub struct SpanReturnObs {
    /// `(released, total)` per live-allocation count (index clamped).
    buckets: Vec<(u64, u64)>,
}

impl SpanReturnObs {
    fn new(capacity: u32) -> Self {
        Self {
            buckets: vec![(0, 0); capacity as usize + 1],
        }
    }

    fn record(&mut self, live: u32, released: bool) {
        let idx = (live as usize).min(self.buckets.len() - 1);
        self.buckets[idx].1 += 1;
        if released {
            self.buckets[idx].0 += 1;
        }
    }

    /// Release probability for spans observed at `live` allocations, or
    /// `None` without observations.
    pub fn return_rate(&self, live: u32) -> Option<f64> {
        let (rel, tot) = self.buckets[(live as usize).min(self.buckets.len() - 1)];
        (tot > 0).then(|| rel as f64 / tot as f64)
    }

    /// Iterates `(live_allocations, release_rate, observations)` for
    /// occupancies with data.
    pub fn iter(&self) -> impl Iterator<Item = (u32, f64, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &(_, tot))| tot > 0)
            .map(|(a, &(rel, tot))| (a as u32, rel as f64 / tot as f64, tot))
    }
}

/// The central free list for one size class.
#[derive(Clone, Debug)]
pub struct CentralFreeList {
    class: u16,
    info: SizeClassInfo,
    lists: Vec<Vec<SpanId>>,
    /// Free objects across spans on the lists (running counter).
    free_objects: u64,
    /// Live spans of this class (on lists or full).
    live_spans: u64,
    /// Spans ever requested from the pageheap (Figure 16 denominator).
    pub spans_created: u64,
    /// Spans ever returned to the pageheap (Figure 16 numerator).
    pub spans_released: u64,
    /// Figure 13 observations.
    pub obs: SpanReturnObs,
}

impl CentralFreeList {
    /// Creates the free list with `num_lists` priority lists (1 = legacy
    /// singleton, 8 = span prioritization).
    ///
    /// # Panics
    ///
    /// Panics if `num_lists` is zero.
    pub fn new(class: u16, info: SizeClassInfo, num_lists: usize) -> Self {
        assert!(num_lists > 0, "need at least one span list");
        Self {
            class,
            info,
            lists: vec![Vec::new(); num_lists],
            free_objects: 0,
            live_spans: 0,
            spans_created: 0,
            spans_released: 0,
            obs: SpanReturnObs::new(info.objects_per_span),
        }
    }

    /// List index for a span with `allocated` live objects:
    /// `max(0, L-1-⌊log2 A⌋)`, with brand-new spans (A = 0) at the top.
    fn list_for(&self, allocated: u32) -> usize {
        let top = self.lists.len() - 1;
        if allocated == 0 {
            return top;
        }
        let log2 = 31 - allocated.leading_zeros() as usize;
        top.saturating_sub(log2)
    }

    fn list_insert(&mut self, spans: &mut SpanRegistry, id: SpanId) {
        let allocated = spans.get(id).allocated;
        let list = self.list_for(allocated);
        let pos = self.lists[list].len() as u32;
        self.lists[list].push(id);
        spans.get_mut(id).state = SpanState::InFreeList {
            list: list as u8,
            pos,
        };
    }

    fn list_remove(&mut self, spans: &mut SpanRegistry, id: SpanId) {
        let SpanState::InFreeList { list, pos } = spans.get(id).state else {
            // lint:allow(panic-surface) free-list/span-state disagreement
            // is allocator-internal corruption, not a recoverable
            // allocation failure; aborting preserves the crime scene.
            panic!("span not on a list");
        };
        let (list, pos) = (list as usize, pos as usize);
        self.lists[list].swap_remove(pos);
        if pos < self.lists[list].len() {
            let moved = self.lists[list][pos];
            let SpanState::InFreeList { list: ml, pos: _ } = spans.get(moved).state else {
                // lint:allow(panic-surface) same internal invariant as
                // above, for the span displaced by swap_remove.
                panic!("moved span not on a list");
            };
            debug_assert_eq!(ml as usize, list);
            spans.get_mut(moved).state = SpanState::InFreeList {
                list: list as u8,
                pos: pos as u32,
            };
        }
    }

    /// Re-slots a span after its occupancy changed.
    fn list_update(&mut self, spans: &mut SpanRegistry, id: SpanId) {
        let (current, allocated, has_free) = {
            let s = spans.get(id);
            let cur = match s.state {
                SpanState::InFreeList { list, .. } => Some(list as usize),
                _ => None,
            };
            (cur, s.allocated, s.free_count() > 0)
        };
        let target = has_free.then(|| self.list_for(allocated));
        match (current, target) {
            (Some(c), Some(t)) if c == t => {}
            (Some(_), Some(_)) => {
                self.list_remove(spans, id);
                self.list_insert(spans, id);
            }
            (Some(_), None) => {
                self.list_remove(spans, id);
                spans.get_mut(id).state = SpanState::Full;
            }
            (None, Some(_)) => self.list_insert(spans, id),
            (None, None) => {}
        }
    }

    /// Resolves a pending Figure-13 observation run on `id`.
    fn resolve_obs(&mut self, spans: &mut SpanRegistry, id: SpanId, released: bool) {
        let span = spans.get_mut(id);
        if let Some(pending) = span.pending_obs.take() {
            let lo = if released { 1 } else { span.allocated.max(1) };
            for a in lo..=pending {
                self.obs.record(a, released);
            }
        }
    }

    /// Extracts up to `n` objects, growing from the pageheap when every span
    /// is exhausted. Returns the objects and the deepest tier touched. The
    /// batch emits one [`AllocEvent::CentralRefill`]; each fresh span emits
    /// [`AllocEvent::SpanAlloc`] plus its pagemap registration.
    ///
    /// # Errors
    ///
    /// When the pageheap cannot grow (ENOMEM / hard limit) and *no* objects
    /// were gathered, the error is surfaced. If some objects were already
    /// extracted before the refusal, the partial batch is returned — memory
    /// in hand beats an error the caller would retry anyway.
    pub fn alloc_batch(
        &mut self,
        n: usize,
        spans: &mut SpanRegistry,
        pagemap: &mut Pagemap,
        pageheap: &mut PageHeap,
        bus: &mut EventBus,
    ) -> Result<(Vec<u64>, AllocPath), AllocError> {
        let mut out = Vec::with_capacity(n);
        let mut deepest = AllocPath::CentralFreeList;
        while out.len() < n {
            // Lowest-indexed non-empty list: the fullest spans.
            let id = self.lists.iter().find_map(|l| l.last().copied());
            let id = match id {
                Some(id) => id,
                None => {
                    // Grow: request a fresh span from the pageheap.
                    let (addr, path) =
                        match pageheap.alloc(self.info.pages, self.info.objects_per_span, bus) {
                            Ok(placed) => placed,
                            Err(e) if out.is_empty() => return Err(e),
                            Err(_) => break, // serve the partial batch
                        };
                    deepest = match (deepest, path) {
                        (_, AllocPath::Mmap) | (AllocPath::Mmap, _) => AllocPath::Mmap,
                        _ => AllocPath::PageHeap,
                    };
                    let span = Span::new_small(addr, self.class, &self.info);
                    let id = spans.insert(span);
                    bus.emit(AllocEvent::SpanAlloc {
                        id: id.0,
                        start: addr,
                        pages: self.info.pages,
                        class: Some(self.class),
                    });
                    pagemap.set_range_traced(addr, self.info.pages, id, bus);
                    self.spans_created += 1;
                    self.live_spans += 1;
                    self.free_objects += self.info.objects_per_span as u64;
                    self.list_insert(spans, id);
                    id
                }
            };
            self.resolve_obs(spans, id, false);
            let take = (n - out.len()).min(spans.get(id).free_count() as usize);
            for _ in 0..take {
                out.push(spans.alloc_object(id));
            }
            self.free_objects -= take as u64;
            self.list_update(spans, id);
        }
        bus.emit(AllocEvent::CentralRefill {
            class: self.class,
            count: out.len() as u32,
        });
        Ok((out, deepest))
    }

    /// Returns one object to its span. When the span drains completely it is
    /// released to the pageheap (emitting [`AllocEvent::SpanRetire`], which
    /// also feeds the sanitizer's page mirror); returns `true` in that case.
    pub fn dealloc(
        &mut self,
        addr: u64,
        id: SpanId,
        spans: &mut SpanRegistry,
        pagemap: &mut Pagemap,
        pageheap: &mut PageHeap,
        bus: &mut EventBus,
    ) -> bool {
        debug_assert_eq!(
            spans.get(id).size_class,
            Some(self.class),
            "span class mismatch"
        );
        spans.dealloc_object(id, addr);
        let allocated_after = {
            let span = spans.get_mut(id);
            let a = span.allocated;
            span.pending_obs = Some(span.pending_obs.map_or(a.max(1), |p| p.max(a.max(1))));
            a
        };
        self.free_objects += 1;
        if allocated_after == 0 {
            // Release the span to the pageheap.
            self.resolve_obs(spans, id, true);
            if matches!(spans.get(id).state, SpanState::InFreeList { .. }) {
                self.list_remove(spans, id);
            }
            let span = spans.remove(id);
            bus.emit(AllocEvent::SpanRetire {
                id: id.0,
                start: span.start,
                pages: span.pages,
                class: Some(self.class),
            });
            pagemap.clear_range_traced(span.start, span.pages, bus);
            pageheap.dealloc(span.start, span.pages, bus);
            self.spans_released += 1;
            self.live_spans -= 1;
            self.free_objects -= span.capacity as u64;
            true
        } else {
            self.list_update(spans, id);
            false
        }
    }

    /// External fragmentation held by this class: free objects on live spans
    /// plus the per-span carving slack.
    pub fn external_bytes(&self) -> u64 {
        let carve = self.info.pages as u64 * wsc_sim_os::addr::TCMALLOC_PAGE_BYTES
            - self.info.objects_per_span as u64 * self.info.size;
        self.free_objects * self.info.size + self.live_spans * carve
    }

    /// Live spans of this class.
    pub fn live_spans(&self) -> u64 {
        self.live_spans
    }

    /// The running free-object counter (the central term of the sanitizer's
    /// object-conservation audit; must equal the spans' summed free counts).
    pub fn free_objects(&self) -> u64 {
        self.free_objects
    }

    /// Per-class span return rate (Figure 16): released / created, or `None`
    /// before any span was created.
    pub fn span_return_rate(&self) -> Option<f64> {
        (self.spans_created > 0).then(|| self.spans_released as f64 / self.spans_created as f64)
    }

    /// The class's static metadata.
    pub fn info(&self) -> &SizeClassInfo {
        &self.info
    }
}

#[cfg(test)]
// Tests may unwrap: a panic IS the failure report here.
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::config::TcmallocConfig;
    use crate::pageheap::PageHeapConfig;
    use crate::size_class::SizeClassTable;
    use wsc_sim_hw::cost::CostModel;
    use wsc_sim_os::clock::Clock;

    struct Fixture {
        cfl: CentralFreeList,
        spans: SpanRegistry,
        pagemap: Pagemap,
        pageheap: PageHeap,
        bus: EventBus,
    }

    fn fixture(num_lists: usize) -> Fixture {
        let table = SizeClassTable::production();
        let cl = table.class_for(16).unwrap();
        Fixture {
            cfl: CentralFreeList::new(cl as u16, *table.info(cl), num_lists),
            spans: SpanRegistry::new(),
            pagemap: Pagemap::default(),
            pageheap: PageHeap::new(PageHeapConfig::default()),
            bus: EventBus::new(
                &TcmallocConfig::baseline(),
                CostModel::production(),
                Clock::new(),
            ),
        }
    }

    impl Fixture {
        fn alloc(&mut self, n: usize) -> Vec<u64> {
            self.cfl
                .alloc_batch(
                    n,
                    &mut self.spans,
                    &mut self.pagemap,
                    &mut self.pageheap,
                    &mut self.bus,
                )
                .unwrap()
                .0
        }

        fn free(&mut self, addr: u64) -> bool {
            let id = self.pagemap.span_of(addr).expect("address not mapped");
            self.cfl.dealloc(
                addr,
                id,
                &mut self.spans,
                &mut self.pagemap,
                &mut self.pageheap,
                &mut self.bus,
            )
        }
    }

    #[test]
    fn batch_alloc_and_free_round_trip() {
        let mut f = fixture(8);
        let objs = f.alloc(100);
        assert_eq!(objs.len(), 100);
        assert_eq!(f.cfl.spans_created, 1, "one 512-object span suffices");
        for &o in &objs[..99] {
            assert!(!f.free(o));
        }
        assert!(f.free(objs[99]), "last free releases the span");
        assert_eq!(f.cfl.spans_released, 1);
        assert_eq!(f.cfl.live_spans(), 0);
        assert_eq!(f.cfl.external_bytes(), 0);
    }

    #[test]
    fn list_index_math_matches_paper() {
        let f = fixture(8);
        // A=1 -> 7; A=2..3 -> 6; A>=128 -> 0; 132 and 255 share a list.
        assert_eq!(f.cfl.list_for(0), 7);
        assert_eq!(f.cfl.list_for(1), 7);
        assert_eq!(f.cfl.list_for(2), 6);
        assert_eq!(f.cfl.list_for(3), 6);
        assert_eq!(f.cfl.list_for(4), 5);
        assert_eq!(f.cfl.list_for(127), 1);
        assert_eq!(f.cfl.list_for(128), 0);
        assert_eq!(f.cfl.list_for(132), f.cfl.list_for(255));
        assert_eq!(f.cfl.list_for(512), 0);
    }

    #[test]
    fn prioritization_picks_fullest_span() {
        let mut f = fixture(8);
        // Create two spans: drain one batch from span 1 so a second span is
        // created, then free most of span 1 so it is nearly empty.
        let a = f.alloc(512); // span 1 fully allocated (Full)
        let b = f.alloc(10); // span 2: 10 live
        for &o in &a[..500] {
            f.free(o); // span 1: 12 live, nearly empty
        }
        // Span 2 (10 live) is on list 4; span 1 (12 live) on list 4 too?
        // 10 -> log2=3 -> list 4; 12 -> log2=3 -> list 4. Free more to push
        // span 1 to a higher list.
        for &o in &a[500..508] {
            f.free(o); // span 1: 4 live -> list 5
        }
        // Next allocation must come from span 2's span (list 4 < list 5):
        // its objects are at lower addresses within span2's page range.
        let next = f.alloc(1)[0];
        let span2 = f.pagemap.span_of(b[0]).unwrap();
        assert_eq!(f.pagemap.span_of(next), Some(span2));
    }

    #[test]
    fn legacy_single_list_mode() {
        let mut f = fixture(1);
        let objs = f.alloc(20);
        assert_eq!(f.cfl.list_for(1), 0);
        assert_eq!(f.cfl.list_for(500), 0);
        for &o in &objs {
            f.free(o);
        }
        assert_eq!(f.cfl.spans_released, 1);
    }

    #[test]
    fn fig13_observations_decrease_with_occupancy() {
        let mut f = fixture(8);
        // Spans observed nearly-empty release often; nearly-full never.
        // Round 1: allocate 2, free both -> observed at A=1, released.
        let objs = f.alloc(2);
        f.free(objs[0]);
        f.free(objs[1]);
        // Round 2: allocate many, free a few, allocate again (resolving the
        // pending observation as "not released").
        let objs = f.alloc(300);
        for &o in &objs[..5] {
            f.free(o);
        }
        let _more = f.alloc(5);
        let low = f.cfl.obs.return_rate(1).unwrap();
        let high = f.cfl.obs.return_rate(295).unwrap();
        assert!(low > high, "low occupancy {low} vs high {high}");
        assert_eq!(high, 0.0);
    }

    #[test]
    fn span_return_rate_counts() {
        let mut f = fixture(8);
        let objs = f.alloc(512);
        for &o in &objs {
            f.free(o);
        }
        let _second = f.alloc(1);
        assert_eq!(f.cfl.spans_created, 2);
        assert_eq!(f.cfl.spans_released, 1);
        assert!((f.cfl.span_return_rate().unwrap() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn external_bytes_tracks_free_objects() {
        let mut f = fixture(8);
        let objs = f.alloc(10);
        // One span of 512 objects: 502 free remain cached.
        assert_eq!(f.cfl.external_bytes(), 502 * 16);
        f.free(objs[0]);
        assert_eq!(f.cfl.external_bytes(), 503 * 16);
    }

    #[test]
    fn exhausting_one_span_grows_another() {
        let mut f = fixture(8);
        let objs = f.alloc(513);
        assert_eq!(objs.len(), 513);
        assert_eq!(f.cfl.spans_created, 2);
        // All addresses distinct.
        let mut sorted = objs.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 513);
    }
}
