//! The pagemap: TCMalloc-page index → owning span.
//!
//! `free(ptr)` carries no size, so the allocator must recover the owning
//! span from the address alone. Production TCMalloc uses a 2–3 level radix
//! tree over page numbers; the simulation uses a hash map with the same
//! page-granular contract.

use crate::span::SpanId;
use std::collections::HashMap;
use wsc_sim_os::addr::tcmalloc_page_index;

/// Page-index → span mapping.
///
/// # Example
///
/// ```
/// use wsc_tcmalloc::pagemap::PageMap;
/// use wsc_tcmalloc::span::SpanId;
///
/// let mut pm = PageMap::new();
/// pm.set_range(0x10000, 4, SpanId(7));
/// assert_eq!(pm.span_of(0x10000 + 100), Some(SpanId(7)));
/// ```
#[derive(Clone, Debug, Default)]
pub struct PageMap {
    pages: HashMap<u64, SpanId>,
}

impl PageMap {
    /// Creates an empty pagemap.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers `num_pages` TCMalloc pages starting at `addr` as belonging
    /// to `span`.
    ///
    /// # Panics
    ///
    /// Panics if any page is already registered (overlapping spans are a
    /// heap-corruption bug).
    pub fn set_range(&mut self, addr: u64, num_pages: u32, span: SpanId) {
        let first = tcmalloc_page_index(addr);
        for p in first..first + num_pages as u64 {
            let prev = self.pages.insert(p, span);
            assert!(prev.is_none(), "page {p} already owned by {prev:?}");
        }
    }

    /// Unregisters the pages of a span being returned to the pageheap.
    ///
    /// # Panics
    ///
    /// Panics if a page was not registered.
    pub fn clear_range(&mut self, addr: u64, num_pages: u32) {
        let first = tcmalloc_page_index(addr);
        for p in first..first + num_pages as u64 {
            assert!(
                self.pages.remove(&p).is_some(),
                "clearing unregistered page {p}"
            );
        }
    }

    /// The span owning `addr`, if any.
    pub fn span_of(&self, addr: u64) -> Option<SpanId> {
        self.pages.get(&tcmalloc_page_index(addr)).copied()
    }

    /// Number of registered pages.
    pub fn len(&self) -> usize {
        self.pages.len()
    }

    /// Is the map empty?
    pub fn is_empty(&self) -> bool {
        self.pages.is_empty()
    }
}

#[cfg(test)]
// Tests may unwrap: a panic IS the failure report here.
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use wsc_sim_os::addr::TCMALLOC_PAGE_BYTES;

    #[test]
    fn range_lookup() {
        let mut pm = PageMap::new();
        pm.set_range(0, 2, SpanId(1));
        pm.set_range(2 * TCMALLOC_PAGE_BYTES, 1, SpanId(2));
        assert_eq!(pm.span_of(0), Some(SpanId(1)));
        assert_eq!(pm.span_of(TCMALLOC_PAGE_BYTES + 5), Some(SpanId(1)));
        assert_eq!(pm.span_of(2 * TCMALLOC_PAGE_BYTES), Some(SpanId(2)));
        assert_eq!(pm.span_of(3 * TCMALLOC_PAGE_BYTES), None);
    }

    #[test]
    #[should_panic(expected = "already owned")]
    fn overlap_detected() {
        let mut pm = PageMap::new();
        pm.set_range(0, 2, SpanId(1));
        pm.set_range(TCMALLOC_PAGE_BYTES, 1, SpanId(2));
    }

    #[test]
    fn clear_then_reuse() {
        let mut pm = PageMap::new();
        pm.set_range(0, 4, SpanId(1));
        pm.clear_range(0, 4);
        assert!(pm.is_empty());
        pm.set_range(0, 4, SpanId(9));
        assert_eq!(pm.span_of(0), Some(SpanId(9)));
    }

    #[test]
    #[should_panic(expected = "unregistered")]
    fn clear_unregistered_detected() {
        let mut pm = PageMap::new();
        pm.clear_range(0, 1);
    }
}
