//! The pagemap: TCMalloc-page index → owning span.
//!
//! `free(ptr)` carries no size information beyond the sized-delete hint, so
//! the allocator must recover the owning span from the address alone — the
//! single most-executed lookup in the middle and back tiers. Production
//! TCMalloc resolves it through a 2–3 level radix tree over page numbers;
//! the simulation now uses the same structure: a two-level radix tree
//! ([`PageMap`]) whose root is indexed by the high bits of the TCMalloc page
//! number and whose leaves each cover a fixed run of
//! [`PAGES_PER_LEAF`] pages (256 MiB of address space), with
//!
//! * a one-entry **last-span hit cache** in front of the tree (span-local
//!   free bursts resolve without touching the root),
//! * **batched** `set_range`/`clear_range` that write whole leaf slices
//!   instead of performing one map operation per page, and
//! * per-leaf **occupancy counters** the sanitizer audits against the span
//!   inventory.
//!
//! One sim-scale substitution (documented in DESIGN.md §6): production pins
//! a fixed-size root by bounding the virtual address space at 48 bits; the
//! simulation instead *windows* the root over the observed root-index range.
//! The `Vmm` bump-allocates from a canonical heap base, so the window stays
//! a handful of entries while remaining O(1) — index arithmetic, no search.
//!
//! The previous per-page `HashMap` implementation survives as
//! [`HashPageMap`]: it is the baseline the `hotpath` benchmark compares
//! against and the oracle its same-run agreement assertion checks, and it
//! deliberately exposes no iteration order.
//!
//! A second production-shaped arm, [`MaskingPageMap`], resolves the same
//! lookup rpmalloc/mimalloc-style: addresses are grouped into
//! **aligned segments** (`addr & SEGMENT_MASK` names the segment base) and
//! the map keeps one flat, segment-aligned window of per-page slots, so a
//! lookup is pure address arithmetic plus a single bounds-checked load —
//! no root indirection. [`Pagemap`] is the config-selected dispatch the
//! allocator tiers hold; `benches/hotpath.rs` races the two arms against
//! each other (and the hash baseline) with an every-pointer agreement
//! assertion.

use crate::config::PagemapArm;
use crate::span::SpanId;
use std::cell::Cell;
use std::collections::HashMap;
use wsc_sim_os::addr::{tcmalloc_page_index, TCMALLOC_PAGE_BYTES};

/// log2 of the pages covered by one radix leaf.
pub const LEAF_BITS: u32 = 15;

/// TCMalloc pages covered by one radix leaf (32 768 pages = 256 MiB).
pub const PAGES_PER_LEAF: u64 = 1 << LEAF_BITS;

/// Ceiling on the root window, in leaves. 2^22 leaves cover 1 PiB of
/// address-space *spread*; a wider spread indicates address corruption, not
/// a bigger heap.
const MAX_ROOT_WINDOW: u64 = 1 << 22;

/// Sentinel marking an unregistered page inside a leaf.
const EMPTY: u32 = u32::MAX;

/// One radix leaf: span ids for a fixed, aligned run of pages.
#[derive(Clone, Debug)]
struct Leaf {
    /// `PAGES_PER_LEAF` slots; `EMPTY` = unregistered.
    slots: Vec<u32>,
    /// Registered pages in this leaf (the sanitizer's occupancy term).
    used: u32,
}

impl Leaf {
    fn new() -> Self {
        Self {
            slots: vec![EMPTY; PAGES_PER_LEAF as usize],
            used: 0,
        }
    }
}

/// Occupancy of one radix leaf, exported for the sanitizer's pagemap audit.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LeafOccupancy {
    /// First page number the leaf covers (aligned to [`PAGES_PER_LEAF`]).
    pub base_page: u64,
    /// Registered pages within the leaf.
    pub pages_used: u64,
}

/// Two-level radix-tree page-index → span mapping.
///
/// # Example
///
/// ```
/// use wsc_tcmalloc::pagemap::PageMap;
/// use wsc_tcmalloc::span::SpanId;
///
/// let mut pm = PageMap::new();
/// pm.set_range(0x10000, 4, SpanId(7));
/// assert_eq!(pm.span_of(0x10000 + 100), Some(SpanId(7)));
/// ```
#[derive(Clone, Debug, Default)]
pub struct PageMap {
    /// Leaves, indexed by `root_index - root_base`.
    root: Vec<Option<Box<Leaf>>>,
    /// Root index of `root[0]`; meaningful once `root` is non-empty.
    root_base: u64,
    /// Registered pages across all leaves.
    pages: u64,
    /// Last-span hit cache: `(first_page, last_page, span_id)`. Purely an
    /// accelerator — never changes lookup results.
    hit: Cell<Option<(u64, u64, SpanId)>>,
}

impl PageMap {
    /// Creates an empty pagemap.
    pub fn new() -> Self {
        Self::default()
    }

    /// The leaf covering `root_idx`, if the window reaches it and the leaf
    /// was ever populated.
    fn leaf(&self, root_idx: u64) -> Option<&Leaf> {
        if self.root.is_empty() || root_idx < self.root_base {
            return None;
        }
        let off = (root_idx - self.root_base) as usize;
        self.root.get(off)?.as_deref()
    }

    /// The leaf covering `root_idx`, growing the root window and allocating
    /// the leaf on demand.
    fn leaf_mut(&mut self, root_idx: u64) -> &mut Leaf {
        if self.root.is_empty() {
            self.root_base = root_idx;
        }
        if root_idx < self.root_base {
            // Extend the window downward, shifting existing leaves.
            let grow = (self.root_base - root_idx) as usize;
            let window = self.root.len() as u64 + grow as u64;
            assert!(window <= MAX_ROOT_WINDOW, "pagemap root window blow-up");
            let mut fresh: Vec<Option<Box<Leaf>>> = Vec::with_capacity(self.root.len() + grow);
            fresh.resize_with(grow, || None);
            fresh.append(&mut self.root);
            self.root = fresh;
            self.root_base = root_idx;
        }
        let off = (root_idx - self.root_base) as usize;
        if off >= self.root.len() {
            assert!(
                (off as u64) < MAX_ROOT_WINDOW,
                "pagemap root window blow-up"
            );
            self.root.resize_with(off + 1, || None);
        }
        self.root[off].get_or_insert_with(|| Box::new(Leaf::new()))
    }

    /// Registers `num_pages` TCMalloc pages starting at `addr` as belonging
    /// to `span`, writing whole leaf slices per iteration.
    ///
    /// # Panics
    ///
    /// Panics if any page is already registered (overlapping spans are a
    /// heap-corruption bug) or if `span` carries the reserved id.
    // lint:allow(event-completeness) the pagemap is a lookup index, not an
    // owning tier: the pageheap emits the SpanAlloc covering this range.
    pub fn set_range(&mut self, addr: u64, num_pages: u32, span: SpanId) {
        assert_ne!(span.0, EMPTY, "span id {EMPTY:#x} is reserved");
        let first = tcmalloc_page_index(addr);
        let last = first + num_pages as u64;
        let mut page = first;
        while page < last {
            let leaf_end = (page | (PAGES_PER_LEAF - 1)) + 1;
            let chunk_end = leaf_end.min(last);
            let leaf = self.leaf_mut(page >> LEAF_BITS);
            let lo = (page & (PAGES_PER_LEAF - 1)) as usize;
            let hi = lo + (chunk_end - page) as usize;
            // lint:allow(panic-surface) lo < hi <= PAGES_PER_LEAF by the
            // leaf_end clamp two lines up.
            for (i, slot) in leaf.slots[lo..hi].iter_mut().enumerate() {
                assert!(
                    *slot == EMPTY,
                    "page {} already owned by Some(SpanId({}))",
                    page + i as u64,
                    *slot
                );
                *slot = span.0;
            }
            leaf.used += (hi - lo) as u32;
            page = chunk_end;
        }
        self.pages += num_pages as u64;
        self.hit.set(Some((first, last - 1, span)));
    }

    /// Unregisters the pages of a span being returned to the pageheap,
    /// clearing whole leaf slices per iteration. Invalidates the hit cache.
    ///
    /// # Panics
    ///
    /// Panics if a page was not registered.
    // lint:allow(event-completeness) index maintenance; the pageheap emits
    // the SpanDealloc covering this range.
    pub fn clear_range(&mut self, addr: u64, num_pages: u32) {
        let first = tcmalloc_page_index(addr);
        let last = first + num_pages as u64;
        let mut page = first;
        while page < last {
            let leaf_end = (page | (PAGES_PER_LEAF - 1)) + 1;
            let chunk_end = leaf_end.min(last);
            let root_idx = page >> LEAF_BITS;
            let covered = self.leaf(root_idx).is_some();
            assert!(covered, "clearing unregistered page {page}");
            let leaf = self.leaf_mut(root_idx);
            let lo = (page & (PAGES_PER_LEAF - 1)) as usize;
            let hi = lo + (chunk_end - page) as usize;
            // lint:allow(panic-surface) same leaf_end clamp as set_range.
            for (i, slot) in leaf.slots[lo..hi].iter_mut().enumerate() {
                assert!(
                    *slot != EMPTY,
                    "clearing unregistered page {}",
                    page + i as u64
                );
                *slot = EMPTY;
            }
            leaf.used -= (hi - lo) as u32;
            page = chunk_end;
        }
        self.pages -= num_pages as u64;
        self.hit.set(None);
    }

    /// [`set_range`](Self::set_range) plus the
    /// [`PagemapSet`](crate::events::AllocEvent::PagemapSet) boundary event —
    /// the form the allocator tiers use. The raw method stays public for
    /// benchmarks and property tests that exercise the radix structure in
    /// isolation.
    pub fn set_range_traced(
        &mut self,
        addr: u64,
        num_pages: u32,
        span: SpanId,
        bus: &mut crate::events::EventBus,
    ) {
        self.set_range(addr, num_pages, span);
        bus.emit(crate::events::AllocEvent::PagemapSet {
            addr,
            pages: num_pages,
        });
    }

    /// [`clear_range`](Self::clear_range) plus the
    /// [`PagemapClear`](crate::events::AllocEvent::PagemapClear) boundary
    /// event.
    pub fn clear_range_traced(
        &mut self,
        addr: u64,
        num_pages: u32,
        bus: &mut crate::events::EventBus,
    ) {
        self.clear_range(addr, num_pages);
        bus.emit(crate::events::AllocEvent::PagemapClear {
            addr,
            pages: num_pages,
        });
    }

    /// The span owning `addr`, if any. Hits the one-entry span cache first;
    /// otherwise two indexed loads (root, leaf).
    pub fn span_of(&self, addr: u64) -> Option<SpanId> {
        let page = tcmalloc_page_index(addr);
        if let Some((first, last, span)) = self.hit.get() {
            if (first..=last).contains(&page) {
                return Some(span);
            }
        }
        let leaf = self.leaf(page >> LEAF_BITS)?;
        // lint:allow(panic-surface) the mask keeps the index < PAGES_PER_LEAF.
        let slot = leaf.slots[(page & (PAGES_PER_LEAF - 1)) as usize];
        if slot == EMPTY {
            return None;
        }
        let span = SpanId(slot);
        self.hit.set(Some((page, page, span)));
        Some(span)
    }

    /// Number of registered pages.
    pub fn len(&self) -> usize {
        self.pages as usize
    }

    /// Is the map empty?
    pub fn is_empty(&self) -> bool {
        self.pages == 0
    }

    /// Occupancy of every populated leaf in ascending `base_page` order —
    /// the per-leaf counts the sanitizer proves against the span inventory.
    pub fn leaf_occupancy(&self) -> Vec<LeafOccupancy> {
        self.root
            .iter()
            .enumerate()
            .filter_map(|(off, leaf)| {
                leaf.as_deref().map(|l| LeafOccupancy {
                    base_page: (self.root_base + off as u64) << LEAF_BITS,
                    pages_used: l.used as u64,
                })
            })
            .filter(|l| l.pages_used > 0)
            .collect()
    }
}

/// log2 of the pages in one masking segment. Kept equal to [`LEAF_BITS`] on
/// purpose: a masking segment and a radix leaf then cover identical aligned
/// page runs, so [`MaskingPageMap::leaf_occupancy`] reports the exact shape
/// the sanitizer's per-leaf audit already proves — the arms differ only in
/// how a lookup reaches the slot.
pub const SEGMENT_BITS: u32 = LEAF_BITS;

/// TCMalloc pages per masking segment (32 768 pages = 256 MiB).
pub const PAGES_PER_SEGMENT: u64 = 1 << SEGMENT_BITS;

/// Address mask selecting the aligned-segment base of a pointer:
/// `addr & SEGMENT_MASK` is the first byte of the segment that owns `addr`,
/// rpmalloc/mimalloc-style. The slot lookup below is the page-granular form
/// of the same arithmetic.
pub const SEGMENT_MASK: u64 = !(PAGES_PER_SEGMENT * TCMALLOC_PAGE_BYTES - 1);

/// Ceiling on the masking window, in segments. 2^12 segments cover 1 TiB of
/// address-space *spread*, far beyond what the bump-allocating `Vmm` ever
/// produces; a wider spread indicates address corruption.
const MAX_SEGMENT_WINDOW: u64 = 1 << 12;

/// Aligned-segment address-masking pagemap: one flat, segment-aligned window
/// of per-page slots.
///
/// Where the radix arm walks root → leaf, this arm masks the address down to
/// its segment (`addr & SEGMENT_MASK`) and indexes a single contiguous slot
/// array whose base is segment-aligned, so `span_of` is subtract, compare,
/// load. The trade is contiguity: the window spans the whole observed
/// segment range, so a sparse heap pays O(spread) memory where the radix
/// tree pays O(touched leaves). The `Vmm` bump-allocates densely, which is
/// exactly the regime this layout is built for.
///
/// Contract-identical to [`PageMap`]: same overlap/unregistered panics, same
/// reserved-id assert, same one-entry hit-cache semantics, same
/// [`LeafOccupancy`] export (see [`SEGMENT_BITS`]).
///
/// # Example
///
/// ```
/// use wsc_tcmalloc::pagemap::MaskingPageMap;
/// use wsc_tcmalloc::span::SpanId;
///
/// let mut pm = MaskingPageMap::new();
/// pm.set_range(0x10000, 4, SpanId(7));
/// assert_eq!(pm.span_of(0x10000 + 100), Some(SpanId(7)));
/// ```
#[derive(Clone, Debug, Default)]
pub struct MaskingPageMap {
    /// Per-page slots for the covered window; `EMPTY` = unregistered.
    slots: Vec<u32>,
    /// First page of the window, aligned to [`PAGES_PER_SEGMENT`];
    /// meaningful once `slots` is non-empty.
    base_page: u64,
    /// Registered pages per segment (the sanitizer's occupancy term),
    /// `slots.len() / PAGES_PER_SEGMENT` entries.
    seg_used: Vec<u32>,
    /// Registered pages across the window.
    pages: u64,
    /// Last-span hit cache, identical semantics to [`PageMap::span_of`]'s.
    hit: Cell<Option<(u64, u64, SpanId)>>,
}

impl MaskingPageMap {
    /// Creates an empty pagemap.
    pub fn new() -> Self {
        Self::default()
    }

    /// Grows the window (in whole segments, either direction) to cover
    /// pages `[first, last)`.
    fn ensure_window(&mut self, first: u64, last: u64) {
        let lo = first & !(PAGES_PER_SEGMENT - 1);
        let hi = ((last - 1) | (PAGES_PER_SEGMENT - 1)) + 1;
        if self.slots.is_empty() {
            self.base_page = lo;
        }
        let new_lo = lo.min(self.base_page);
        let new_hi = hi.max(self.base_page + self.slots.len() as u64);
        let segments = (new_hi - new_lo) >> SEGMENT_BITS;
        assert!(
            segments <= MAX_SEGMENT_WINDOW,
            "masking pagemap window blow-up"
        );
        if new_lo < self.base_page {
            // Extend downward: prepend empty segments, shifting the window.
            let grow = (self.base_page - new_lo) as usize;
            let mut fresh = vec![EMPTY; grow + self.slots.len()];
            // lint:allow(panic-surface) fresh was sized grow + len one
            // line up.
            fresh[grow..].copy_from_slice(&self.slots);
            self.slots = fresh;
            let seg_grow = grow >> SEGMENT_BITS;
            let mut seg_fresh = vec![0u32; seg_grow + self.seg_used.len()];
            // lint:allow(panic-surface) same sizing for the segment
            // counters.
            seg_fresh[seg_grow..].copy_from_slice(&self.seg_used);
            self.seg_used = seg_fresh;
            self.base_page = new_lo;
        }
        let want = (new_hi - self.base_page) as usize;
        if want > self.slots.len() {
            self.slots.resize(want, EMPTY);
            self.seg_used.resize(want >> SEGMENT_BITS, 0);
        }
    }

    /// Registers `num_pages` TCMalloc pages starting at `addr` as belonging
    /// to `span`, writing one contiguous slot slice.
    ///
    /// # Panics
    ///
    /// Panics if any page is already registered (overlapping spans are a
    /// heap-corruption bug) or if `span` carries the reserved id.
    // lint:allow(event-completeness) lookup index, not an owning tier: the
    // pageheap emits the SpanAlloc covering this range.
    pub fn set_range(&mut self, addr: u64, num_pages: u32, span: SpanId) {
        assert_ne!(span.0, EMPTY, "span id {EMPTY:#x} is reserved");
        let first = tcmalloc_page_index(addr);
        let last = first + num_pages as u64;
        self.ensure_window(first, last);
        let lo = (first - self.base_page) as usize;
        let hi = (last - self.base_page) as usize;
        // lint:allow(panic-surface) ensure_window covers [first, last).
        for (i, slot) in self.slots[lo..hi].iter_mut().enumerate() {
            assert!(
                *slot == EMPTY,
                "page {} already owned by Some(SpanId({}))",
                first + i as u64,
                *slot
            );
            *slot = span.0;
        }
        for page in first..last {
            // lint:allow(panic-surface) seg index < window segments.
            self.seg_used[((page - self.base_page) >> SEGMENT_BITS) as usize] += 1;
        }
        self.pages += num_pages as u64;
        self.hit.set(Some((first, last - 1, span)));
    }

    /// Unregisters the pages of a span being returned to the pageheap.
    /// Invalidates the hit cache.
    ///
    /// # Panics
    ///
    /// Panics if a page was not registered.
    // lint:allow(event-completeness) index maintenance; the pageheap emits
    // the SpanDealloc covering this range.
    pub fn clear_range(&mut self, addr: u64, num_pages: u32) {
        let first = tcmalloc_page_index(addr);
        let last = first + num_pages as u64;
        let end = self.base_page + self.slots.len() as u64;
        assert!(
            !self.slots.is_empty() && first >= self.base_page && last <= end,
            "clearing unregistered page {first}"
        );
        let lo = (first - self.base_page) as usize;
        let hi = (last - self.base_page) as usize;
        // lint:allow(panic-surface) bounds proved by the assert above.
        for (i, slot) in self.slots[lo..hi].iter_mut().enumerate() {
            assert!(
                *slot != EMPTY,
                "clearing unregistered page {}",
                first + i as u64
            );
            *slot = EMPTY;
        }
        for page in first..last {
            // lint:allow(panic-surface) seg index < window segments.
            self.seg_used[((page - self.base_page) >> SEGMENT_BITS) as usize] -= 1;
        }
        self.pages -= num_pages as u64;
        self.hit.set(None);
    }

    /// The span owning `addr`, if any: hit cache, then window-relative
    /// arithmetic and a single bounds-checked load.
    pub fn span_of(&self, addr: u64) -> Option<SpanId> {
        let page = tcmalloc_page_index(addr);
        if let Some((first, last, span)) = self.hit.get() {
            if (first..=last).contains(&page) {
                return Some(span);
            }
        }
        let off = page.wrapping_sub(self.base_page);
        let slot = *self.slots.get(off as usize)?;
        if slot == EMPTY {
            return None;
        }
        let span = SpanId(slot);
        self.hit.set(Some((page, page, span)));
        Some(span)
    }

    /// Number of registered pages.
    pub fn len(&self) -> usize {
        self.pages as usize
    }

    /// Is the map empty?
    pub fn is_empty(&self) -> bool {
        self.pages == 0
    }

    /// Occupancy of every non-empty segment in ascending `base_page` order.
    /// Segments alias radix leaves exactly (see [`SEGMENT_BITS`]), so the
    /// sanitizer audits this output unchanged.
    pub fn leaf_occupancy(&self) -> Vec<LeafOccupancy> {
        self.seg_used
            .iter()
            .enumerate()
            .filter(|(_, used)| **used > 0)
            .map(|(i, used)| LeafOccupancy {
                base_page: self.base_page + ((i as u64) << SEGMENT_BITS),
                pages_used: *used as u64,
            })
            .collect()
    }
}

/// The config-selected pagemap arm the allocator tiers hold: the two-level
/// radix tree or the aligned-segment masking map, one predictable branch in
/// front of contract-identical implementations.
#[derive(Clone, Debug)]
pub enum Pagemap {
    /// Two-level radix tree ([`PageMap`]).
    Radix(PageMap),
    /// Aligned-segment address masking ([`MaskingPageMap`]).
    Masking(MaskingPageMap),
}

impl Pagemap {
    /// Creates the arm named by `arm`.
    pub fn new(arm: PagemapArm) -> Self {
        match arm {
            PagemapArm::Radix => Self::Radix(PageMap::new()),
            PagemapArm::Masking => Self::Masking(MaskingPageMap::new()),
        }
    }

    /// The configured arm.
    pub fn arm(&self) -> PagemapArm {
        match self {
            Self::Radix(_) => PagemapArm::Radix,
            Self::Masking(_) => PagemapArm::Masking,
        }
    }

    /// Registers `num_pages` pages starting at `addr` as owned by `span`.
    // lint:allow(event-completeness) arm dispatch over lookup indexes; the
    // pageheap emits the SpanAlloc covering this range.
    pub fn set_range(&mut self, addr: u64, num_pages: u32, span: SpanId) {
        match self {
            Self::Radix(pm) => pm.set_range(addr, num_pages, span),
            Self::Masking(pm) => pm.set_range(addr, num_pages, span),
        }
    }

    /// Unregisters the pages of a span.
    // lint:allow(event-completeness) arm dispatch over lookup indexes; the
    // pageheap emits the SpanRetire covering this range.
    pub fn clear_range(&mut self, addr: u64, num_pages: u32) {
        match self {
            Self::Radix(pm) => pm.clear_range(addr, num_pages),
            Self::Masking(pm) => pm.clear_range(addr, num_pages),
        }
    }

    /// [`set_range`](Self::set_range) plus the
    /// [`PagemapSet`](crate::events::AllocEvent::PagemapSet) boundary event.
    pub fn set_range_traced(
        &mut self,
        addr: u64,
        num_pages: u32,
        span: SpanId,
        bus: &mut crate::events::EventBus,
    ) {
        self.set_range(addr, num_pages, span);
        bus.emit(crate::events::AllocEvent::PagemapSet {
            addr,
            pages: num_pages,
        });
    }

    /// [`clear_range`](Self::clear_range) plus the
    /// [`PagemapClear`](crate::events::AllocEvent::PagemapClear) boundary
    /// event.
    pub fn clear_range_traced(
        &mut self,
        addr: u64,
        num_pages: u32,
        bus: &mut crate::events::EventBus,
    ) {
        self.clear_range(addr, num_pages);
        bus.emit(crate::events::AllocEvent::PagemapClear {
            addr,
            pages: num_pages,
        });
    }

    /// The span owning `addr`, if any.
    #[inline]
    pub fn span_of(&self, addr: u64) -> Option<SpanId> {
        match self {
            Self::Radix(pm) => pm.span_of(addr),
            Self::Masking(pm) => pm.span_of(addr),
        }
    }

    /// Number of registered pages.
    pub fn len(&self) -> usize {
        match self {
            Self::Radix(pm) => pm.len(),
            Self::Masking(pm) => pm.len(),
        }
    }

    /// Is the map empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Occupancy of every populated leaf/segment in ascending `base_page`
    /// order (identical shape under both arms; see [`SEGMENT_BITS`]).
    pub fn leaf_occupancy(&self) -> Vec<LeafOccupancy> {
        match self {
            Self::Radix(pm) => pm.leaf_occupancy(),
            Self::Masking(pm) => pm.leaf_occupancy(),
        }
    }
}

impl Default for Pagemap {
    fn default() -> Self {
        Self::new(PagemapArm::default())
    }
}

/// The retired per-page `HashMap` pagemap, kept as the `hotpath`
/// benchmark's baseline and same-run oracle. Same contract as [`PageMap`];
/// exposes no iteration, so map order can never leak into results.
#[derive(Clone, Debug, Default)]
pub struct HashPageMap {
    // lint:allow(hashmap-decl) key-indexed only; no iteration is exposed
    pages: HashMap<u64, SpanId>,
}

impl HashPageMap {
    /// Creates an empty map.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers `num_pages` pages starting at `addr`, one hash insert per
    /// page (the cost the radix tree's batched writes eliminate).
    ///
    /// # Panics
    ///
    /// Panics if any page is already registered.
    // lint:allow(event-completeness) comparison-baseline index (same
    // contract as the radix pagemap above).
    pub fn set_range(&mut self, addr: u64, num_pages: u32, span: SpanId) {
        let first = tcmalloc_page_index(addr);
        for p in first..first + num_pages as u64 {
            let prev = self.pages.insert(p, span);
            assert!(prev.is_none(), "page {p} already owned by {prev:?}");
        }
    }

    /// Unregisters the pages of a span.
    ///
    /// # Panics
    ///
    /// Panics if a page was not registered.
    // lint:allow(event-completeness) comparison-baseline index (same
    // contract as the radix pagemap above).
    pub fn clear_range(&mut self, addr: u64, num_pages: u32) {
        let first = tcmalloc_page_index(addr);
        for p in first..first + num_pages as u64 {
            assert!(
                self.pages.remove(&p).is_some(),
                "clearing unregistered page {p}"
            );
        }
    }

    /// The span owning `addr`, if any.
    pub fn span_of(&self, addr: u64) -> Option<SpanId> {
        self.pages.get(&tcmalloc_page_index(addr)).copied()
    }

    /// Number of registered pages.
    pub fn len(&self) -> usize {
        self.pages.len()
    }

    /// Is the map empty?
    pub fn is_empty(&self) -> bool {
        self.pages.is_empty()
    }
}

#[cfg(test)]
// Tests may unwrap: a panic IS the failure report here.
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use wsc_sim_os::addr::TCMALLOC_PAGE_BYTES;

    #[test]
    fn range_lookup() {
        let mut pm = PageMap::new();
        pm.set_range(0, 2, SpanId(1));
        pm.set_range(2 * TCMALLOC_PAGE_BYTES, 1, SpanId(2));
        assert_eq!(pm.span_of(0), Some(SpanId(1)));
        assert_eq!(pm.span_of(TCMALLOC_PAGE_BYTES + 5), Some(SpanId(1)));
        assert_eq!(pm.span_of(2 * TCMALLOC_PAGE_BYTES), Some(SpanId(2)));
        assert_eq!(pm.span_of(3 * TCMALLOC_PAGE_BYTES), None);
    }

    #[test]
    #[should_panic(expected = "already owned")]
    fn overlap_detected() {
        let mut pm = PageMap::new();
        pm.set_range(0, 2, SpanId(1));
        pm.set_range(TCMALLOC_PAGE_BYTES, 1, SpanId(2));
    }

    #[test]
    fn clear_then_reuse() {
        let mut pm = PageMap::new();
        pm.set_range(0, 4, SpanId(1));
        pm.clear_range(0, 4);
        assert!(pm.is_empty());
        pm.set_range(0, 4, SpanId(9));
        assert_eq!(pm.span_of(0), Some(SpanId(9)));
    }

    #[test]
    #[should_panic(expected = "unregistered")]
    fn clear_unregistered_detected() {
        let mut pm = PageMap::new();
        pm.clear_range(0, 1);
    }

    #[test]
    #[should_panic(expected = "unregistered")]
    fn clear_unregistered_in_populated_leaf_detected() {
        let mut pm = PageMap::new();
        pm.set_range(0, 1, SpanId(1));
        pm.clear_range(4 * TCMALLOC_PAGE_BYTES, 1);
    }

    #[test]
    fn leaf_boundary_straddling_span() {
        // A span whose page run crosses a leaf boundary must resolve on
        // both sides and clear cleanly.
        let start_page = PAGES_PER_LEAF - 3;
        let addr = start_page * TCMALLOC_PAGE_BYTES;
        let mut pm = PageMap::new();
        pm.set_range(addr, 8, SpanId(5));
        assert_eq!(pm.len(), 8);
        for p in 0..8u64 {
            assert_eq!(
                pm.span_of(addr + p * TCMALLOC_PAGE_BYTES),
                Some(SpanId(5)),
                "page {p} of the straddling span"
            );
        }
        assert_eq!(pm.span_of(addr - TCMALLOC_PAGE_BYTES), None);
        assert_eq!(pm.span_of(addr + 8 * TCMALLOC_PAGE_BYTES), None);
        let occ = pm.leaf_occupancy();
        assert_eq!(occ.len(), 2, "two leaves populated");
        assert_eq!(occ[0].base_page, 0);
        assert_eq!(occ[0].pages_used, 3);
        assert_eq!(occ[1].base_page, PAGES_PER_LEAF);
        assert_eq!(occ[1].pages_used, 5);
        pm.clear_range(addr, 8);
        assert!(pm.is_empty());
        assert!(pm.leaf_occupancy().is_empty());
    }

    #[test]
    fn hit_cache_invalidated_on_clear_range() {
        let mut pm = PageMap::new();
        pm.set_range(0, 4, SpanId(1));
        // Prime the cache via a lookup, then clear: the cached range must
        // not survive into the next lookup.
        assert_eq!(pm.span_of(TCMALLOC_PAGE_BYTES), Some(SpanId(1)));
        pm.clear_range(0, 4);
        assert_eq!(pm.span_of(TCMALLOC_PAGE_BYTES), None);
        // Remap under a different span: lookups see the new owner, not a
        // stale cache entry.
        pm.set_range(0, 4, SpanId(2));
        assert_eq!(pm.span_of(TCMALLOC_PAGE_BYTES), Some(SpanId(2)));
    }

    #[test]
    fn root_window_grows_downward() {
        // First touch high, then low: the window must extend backwards
        // without disturbing existing leaves.
        let high = 40 * PAGES_PER_LEAF * TCMALLOC_PAGE_BYTES;
        let mut pm = PageMap::new();
        pm.set_range(high, 2, SpanId(1));
        pm.set_range(0, 2, SpanId(2));
        assert_eq!(pm.span_of(high), Some(SpanId(1)));
        assert_eq!(pm.span_of(0), Some(SpanId(2)));
        assert_eq!(pm.len(), 4);
    }

    #[test]
    fn heap_base_addresses_resolve() {
        // The Vmm hands out addresses from the canonical heap base; the
        // root window must land there without preallocating 2^36 entries.
        let base = wsc_sim_os::vmm::HEAP_BASE;
        let mut pm = PageMap::new();
        pm.set_range(base, 256, SpanId(3));
        assert_eq!(pm.span_of(base + 1000), Some(SpanId(3)));
        assert_eq!(pm.len(), 256);
        pm.clear_range(base, 256);
        assert!(pm.is_empty());
    }

    #[test]
    fn masking_range_lookup() {
        let mut pm = MaskingPageMap::new();
        pm.set_range(0, 2, SpanId(1));
        pm.set_range(2 * TCMALLOC_PAGE_BYTES, 1, SpanId(2));
        assert_eq!(pm.span_of(0), Some(SpanId(1)));
        assert_eq!(pm.span_of(TCMALLOC_PAGE_BYTES + 5), Some(SpanId(1)));
        assert_eq!(pm.span_of(2 * TCMALLOC_PAGE_BYTES), Some(SpanId(2)));
        assert_eq!(pm.span_of(3 * TCMALLOC_PAGE_BYTES), None);
    }

    #[test]
    #[should_panic(expected = "already owned")]
    fn masking_overlap_detected() {
        let mut pm = MaskingPageMap::new();
        pm.set_range(0, 2, SpanId(1));
        pm.set_range(TCMALLOC_PAGE_BYTES, 1, SpanId(2));
    }

    #[test]
    #[should_panic(expected = "unregistered")]
    fn masking_clear_unregistered_detected() {
        let mut pm = MaskingPageMap::new();
        pm.clear_range(0, 1);
    }

    #[test]
    #[should_panic(expected = "unregistered")]
    fn masking_clear_unregistered_in_window_detected() {
        let mut pm = MaskingPageMap::new();
        pm.set_range(0, 1, SpanId(1));
        pm.clear_range(4 * TCMALLOC_PAGE_BYTES, 1);
    }

    #[test]
    fn masking_segment_boundary_straddling_span() {
        // Same scenario as the radix leaf-straddle test: segments alias
        // leaves, so the occupancy export must match shape-for-shape.
        let start_page = PAGES_PER_SEGMENT - 3;
        let addr = start_page * TCMALLOC_PAGE_BYTES;
        let mut pm = MaskingPageMap::new();
        pm.set_range(addr, 8, SpanId(5));
        assert_eq!(pm.len(), 8);
        for p in 0..8u64 {
            assert_eq!(
                pm.span_of(addr + p * TCMALLOC_PAGE_BYTES),
                Some(SpanId(5)),
                "page {p} of the straddling span"
            );
        }
        assert_eq!(pm.span_of(addr - TCMALLOC_PAGE_BYTES), None);
        assert_eq!(pm.span_of(addr + 8 * TCMALLOC_PAGE_BYTES), None);
        let occ = pm.leaf_occupancy();
        assert_eq!(occ.len(), 2, "two segments populated");
        assert_eq!(occ[0].base_page, 0);
        assert_eq!(occ[0].pages_used, 3);
        assert_eq!(occ[1].base_page, PAGES_PER_SEGMENT);
        assert_eq!(occ[1].pages_used, 5);
        pm.clear_range(addr, 8);
        assert!(pm.is_empty());
        assert!(pm.leaf_occupancy().is_empty());
    }

    #[test]
    fn masking_hit_cache_invalidated_on_clear_range() {
        let mut pm = MaskingPageMap::new();
        pm.set_range(0, 4, SpanId(1));
        assert_eq!(pm.span_of(TCMALLOC_PAGE_BYTES), Some(SpanId(1)));
        pm.clear_range(0, 4);
        assert_eq!(pm.span_of(TCMALLOC_PAGE_BYTES), None);
        pm.set_range(0, 4, SpanId(2));
        assert_eq!(pm.span_of(TCMALLOC_PAGE_BYTES), Some(SpanId(2)));
    }

    #[test]
    fn masking_window_grows_downward() {
        // First touch high, then low: the flat window must extend backwards
        // in whole segments without disturbing existing slots.
        let high = 40 * PAGES_PER_SEGMENT * TCMALLOC_PAGE_BYTES;
        let mut pm = MaskingPageMap::new();
        pm.set_range(high, 2, SpanId(1));
        pm.set_range(0, 2, SpanId(2));
        assert_eq!(pm.span_of(high), Some(SpanId(1)));
        assert_eq!(pm.span_of(0), Some(SpanId(2)));
        assert_eq!(pm.len(), 4);
    }

    #[test]
    fn masking_heap_base_addresses_resolve() {
        let base = wsc_sim_os::vmm::HEAP_BASE;
        let mut pm = MaskingPageMap::new();
        pm.set_range(base, 256, SpanId(3));
        assert_eq!(pm.span_of(base + 1000), Some(SpanId(3)));
        assert_eq!(pm.len(), 256);
        pm.clear_range(base, 256);
        assert!(pm.is_empty());
    }

    #[test]
    fn segment_mask_names_the_segment_base() {
        // The documented pointer arithmetic: addr & SEGMENT_MASK is the
        // first byte of the 256 MiB segment owning addr.
        let seg_bytes = PAGES_PER_SEGMENT * TCMALLOC_PAGE_BYTES;
        let base = wsc_sim_os::vmm::HEAP_BASE;
        assert_eq!(base & SEGMENT_MASK, base - base % seg_bytes);
        assert_eq!((base + seg_bytes - 1) & SEGMENT_MASK, base & SEGMENT_MASK);
        assert_eq!(
            (base + seg_bytes) & SEGMENT_MASK,
            (base & SEGMENT_MASK) + seg_bytes
        );
    }

    #[test]
    fn dispatch_wrapper_selects_arm() {
        for arm in [PagemapArm::Radix, PagemapArm::Masking] {
            let mut pm = Pagemap::new(arm);
            assert_eq!(pm.arm(), arm);
            pm.set_range(0, 4, SpanId(1));
            assert_eq!(pm.span_of(2 * TCMALLOC_PAGE_BYTES), Some(SpanId(1)));
            assert_eq!(pm.len(), 4);
            assert_eq!(pm.leaf_occupancy().len(), 1);
            pm.clear_range(0, 4);
            assert!(pm.is_empty());
        }
    }

    #[test]
    fn hash_pagemap_matches_contract() {
        let mut pm = HashPageMap::new();
        pm.set_range(0, 2, SpanId(1));
        assert_eq!(pm.span_of(TCMALLOC_PAGE_BYTES), Some(SpanId(1)));
        assert_eq!(pm.span_of(2 * TCMALLOC_PAGE_BYTES), None);
        assert_eq!(pm.len(), 2);
        pm.clear_range(0, 2);
        assert!(pm.is_empty());
    }
}
