//! Spans: the unit of memory the central free list manages.
//!
//! §2.1: "A span is a collection of contiguous fixed-size regions, aligned
//! to an 8 KB TCMalloc page... a span contains multiple objects of the same
//! size class." A span is carved out of hugepages by the pageheap, hands
//! objects to the central free list, and can only return to the pageheap
//! when *every* object on it has been freed — the root cause of central-
//! free-list fragmentation (§4.3).
//!
//! # Arena-backed metadata
//!
//! A span's variable-size metadata — the free-object stack and the
//! double-free bitmap — does not live inside [`Span`]. Both are carved from
//! dense pools owned by the [`SpanRegistry`]'s [`SlabArena`], indexed by
//! `SpanId`-addressed regions. This removes two heap allocations (and two
//! frees) from every span's create/release cycle and keeps the per-object
//! hot path (`alloc_object` / `dealloc_object`) inside two flat arrays
//! instead of chasing per-span `Vec` headers. Regions are recycled with
//! their span id: a recycled id whose region capacity suffices reuses its
//! storage in place, so steady-state churn performs no pool growth at all.
//!
//! The free stack preserves exact `Vec`-push/pop LIFO semantics (stack top
//! at the high end of the live prefix), so object address reuse — which the
//! golden figures depend on — is bit-for-bit unchanged. The invariant
//! `free stack length == capacity - allocated` holds at every step, which
//! is why [`Span`] needs no separate free-count field and the sanitizer can
//! audit the arena against the span inventory (see
//! [`SpanRegistry::arena_stats`]).

use crate::size_class::SizeClassInfo;
use wsc_sim_os::addr::TCMALLOC_PAGE_BYTES;

/// Identifier of a span inside a [`SpanRegistry`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SpanId(pub u32);

impl SpanId {
    /// Raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Where a span currently lives.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SpanState {
    /// On a central-free-list list (has free objects, may have live ones).
    InFreeList {
        /// Which priority list (0 = fullest, §4.3).
        list: u8,
        /// Position within that list's vector (for O(1) removal).
        pos: u32,
    },
    /// All objects allocated; not on any list.
    Full,
    /// A large (>256 KiB) allocation served directly by the pageheap.
    Large,
    /// Returned to the pageheap (terminal; id will be recycled).
    Released,
}

/// One span: a run of TCMalloc pages carved into equal-size objects.
///
/// Pure scalar record — the free stack and bitmap live in the registry's
/// [`SlabArena`], so object alloc/free goes through
/// [`SpanRegistry::alloc_object`] / [`SpanRegistry::dealloc_object`].
#[derive(Clone, Copy, Debug)]
pub struct Span {
    /// Base address (TCMalloc-page aligned).
    pub start: u64,
    /// Length in TCMalloc pages.
    pub pages: u32,
    /// Size class index, or `None` for large allocations.
    pub size_class: Option<u16>,
    /// Object size in bytes (class size, or the rounded large size).
    pub object_size: u64,
    /// Total objects this span can hold (span capacity, §4.4).
    pub capacity: u32,
    /// Currently allocated (live) objects.
    pub allocated: u32,
    /// Current bookkeeping state.
    pub state: SpanState,
    /// Owning vCPU: the simulated thread that most recently refilled its
    /// per-CPU cache from this span. `None` until claimed (or always, under
    /// the owner-only free arm, which never tags ownership).
    pub owner: Option<u32>,
    /// Pending Figure-13 observation: the live-allocation count recorded at
    /// the last deallocation, resolved when the span is next allocated from
    /// (not released) or released.
    pub pending_obs: Option<u32>,
}

impl Span {
    /// Creates a small-object span for a size class.
    pub fn new_small(start: u64, class: u16, info: &SizeClassInfo) -> Self {
        Self {
            start,
            pages: info.pages,
            size_class: Some(class),
            object_size: info.size,
            capacity: info.objects_per_span,
            allocated: 0,
            state: SpanState::Full, // caller places it on a list
            owner: None,
            pending_obs: None,
        }
    }

    /// Creates a large-allocation span covering `pages` TCMalloc pages.
    pub fn new_large(start: u64, pages: u32) -> Self {
        Self {
            start,
            pages,
            size_class: None,
            object_size: pages as u64 * TCMALLOC_PAGE_BYTES,
            capacity: 1,
            allocated: 1,
            state: SpanState::Large,
            owner: None,
            pending_obs: None,
        }
    }

    /// Span length in bytes.
    pub fn bytes(&self) -> u64 {
        self.pages as u64 * TCMALLOC_PAGE_BYTES
    }

    /// Free objects currently on the span. Derived from the scalar
    /// invariant `free stack length == capacity - allocated`, so reading it
    /// never touches the arena.
    pub fn free_count(&self) -> u32 {
        self.capacity - self.allocated
    }

    /// Bytes of free objects cached on this span (external fragmentation
    /// attributable to the central free list).
    pub fn free_object_bytes(&self) -> u64 {
        self.free_count() as u64 * self.object_size
    }

    /// Carving slack: span bytes not covered by any object slot.
    pub fn carve_waste_bytes(&self) -> u64 {
        self.bytes() - self.capacity as u64 * self.object_size
    }

    /// True when every object has been returned (span may be released).
    pub fn is_idle(&self) -> bool {
        self.allocated == 0
    }
}

/// A `SpanId`-indexed region descriptor into the [`SlabArena`] pools. The
/// descriptor outlives the span: when an id is recycled, a region whose
/// capacity suffices is reused in place.
#[derive(Clone, Copy, Debug, Default)]
struct SlabSlot {
    /// First entry of this span's free-stack region in `free_pool`.
    free_off: u32,
    /// First word of this span's bitmap region in `bm_pool`.
    bm_off: u32,
    /// Object capacity the region was carved for (reuse threshold).
    region_cap: u32,
}

/// Dense slab storage for span metadata: one pool of free-stack entries and
/// one pool of bitmap words, tiled exactly by the per-id regions described
/// in `slots` (the conservation law [`SpanRegistry::arena_stats`] exports).
#[derive(Clone, Debug, Default)]
struct SlabArena {
    /// Free-object-stack storage for every region, back to back.
    free_pool: Vec<u32>,
    /// Double-free-bitmap storage for every region, back to back.
    bm_pool: Vec<u64>,
    /// Region descriptor per span-id slot.
    slots: Vec<SlabSlot>,
    /// Free-pool entries stranded by regions re-carved at a larger
    /// capacity (the abandoned storage the conservation audit must still
    /// account for).
    retired_entries: u64,
    /// Bitmap-pool words stranded the same way.
    retired_words: u64,
}

impl SlabArena {
    /// Words a region of `cap` objects needs in the bitmap pool.
    fn words_for(cap: u32) -> usize {
        (cap as usize).div_ceil(64)
    }

    /// Ensures slot `idx` owns a region of at least `cap` objects, carving
    /// fresh pool storage only when the recycled region is too small, then
    /// resets the region for a new span of `cap` objects: a full descending
    /// free stack (`Vec`-identical pop order 0, 1, 2, …) and a zeroed
    /// bitmap.
    fn reset_region(&mut self, idx: usize, cap: u32) {
        if idx >= self.slots.len() {
            self.slots.resize(idx + 1, SlabSlot::default());
        }
        if self.slots[idx].region_cap < cap {
            // An undersized region is abandoned in place, not compacted:
            // record its storage so the pools stay fully accounted.
            self.retired_entries += self.slots[idx].region_cap as u64;
            self.retired_words += Self::words_for(self.slots[idx].region_cap) as u64;
            let free_off = self.free_pool.len();
            let bm_off = self.bm_pool.len();
            assert!(
                free_off + cap as usize <= u32::MAX as usize,
                "slab arena free pool overflow"
            );
            self.free_pool.resize(free_off + cap as usize, 0);
            self.bm_pool.resize(bm_off + Self::words_for(cap), 0);
            self.slots[idx] = SlabSlot {
                free_off: free_off as u32,
                bm_off: bm_off as u32,
                region_cap: cap,
            };
        }
        let slot = self.slots[idx];
        let lo = slot.free_off as usize;
        // Stack layout: position i holds index capacity-1-i, so the stack
        // top (the live prefix's last entry) pops object 0 first — exactly
        // the retired `(0..capacity).rev().collect()` Vec.
        for i in 0..cap {
            // lint:allow(panic-surface) lo + cap <= free_pool.len() by the
            // region carve above.
            self.free_pool[lo + i as usize] = cap - 1 - i;
        }
        let wlo = slot.bm_off as usize;
        // lint:allow(panic-surface) the carve sized bm_pool to wlo +
        // words_for(region_cap).
        for w in &mut self.bm_pool[wlo..wlo + Self::words_for(slot.region_cap)] {
            *w = 0;
        }
    }

    fn bit(&self, slot: SlabSlot, idx: u32) -> bool {
        // lint:allow(panic-surface) idx < region_cap; the region is sized
        // at reset_region time.
        self.bm_pool[slot.bm_off as usize + idx as usize / 64] >> (idx % 64) & 1 == 1
    }

    fn set_bit(&mut self, slot: SlabSlot, idx: u32, v: bool) {
        let w = slot.bm_off as usize + idx as usize / 64;
        if v {
            // Same region bound as bit().
            self.bm_pool[w] |= 1 << (idx % 64);
        } else {
            self.bm_pool[w] &= !(1 << (idx % 64));
        }
    }
}

/// Occupancy of the registry's slab arena, exported for the sanitizer's
/// conservation audit: the pools must be tiled exactly by the carved
/// regions, and live spans must fit the regions their ids own.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ArenaStats {
    /// Span-id slots ever minted (live + recyclable).
    pub slots_total: u64,
    /// Live spans occupying their slots.
    pub slots_live: u64,
    /// Entries in the free-stack pool.
    pub free_pool_entries: u64,
    /// Words in the bitmap pool.
    pub bitmap_pool_words: u64,
    /// Σ region capacity over all slots. Together with `retired_entries`
    /// this must equal `free_pool_entries`.
    pub reserved_entries: u64,
    /// Σ region bitmap words over all slots. Together with `retired_words`
    /// this must equal `bitmap_pool_words`.
    pub reserved_words: u64,
    /// Pool entries stranded by regions re-carved at a larger capacity.
    pub retired_entries: u64,
    /// Pool words stranded the same way.
    pub retired_words: u64,
}

/// Arena of spans with id recycling and slab-pooled metadata.
#[derive(Clone, Debug, Default)]
pub struct SpanRegistry {
    spans: Vec<Option<Span>>,
    free_ids: Vec<SpanId>,
    arena: SlabArena,
    /// Total spans ever created and released, per the Figure 16 telemetry.
    pub created: u64,
    /// Total spans returned to the pageheap.
    pub released: u64,
}

impl SpanRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts a span, returning its id. Carves (or reuses) the id's arena
    /// region and initializes its free stack and bitmap from the span's
    /// scalar state (`new_small`: all free; `new_large`: the single object
    /// already allocated).
    pub fn insert(&mut self, span: Span) -> SpanId {
        debug_assert!(
            span.allocated == 0 || (span.size_class.is_none() && span.allocated == span.capacity),
            "inserted spans are freshly carved"
        );
        self.created += 1;
        let id = if let Some(id) = self.free_ids.pop() {
            // lint:allow(panic-surface) ids on the free list were minted
            // by push below, so they index inside the vec.
            self.spans[id.index()] = Some(span);
            id
        } else {
            self.spans.push(Some(span));
            SpanId(self.spans.len() as u32 - 1)
        };
        self.arena.reset_region(id.index(), span.capacity);
        if span.allocated > 0 {
            // Large span: capacity 1, already allocated — mark it.
            // lint:allow(panic-surface) reset_region just sized slots for
            // this id.
            let slot = self.arena.slots[id.index()];
            self.arena.set_bit(slot, 0, true);
        }
        id
    }

    /// Removes a span (it returned to the pageheap), yielding its scalar
    /// record. The arena region stays with the id for reuse.
    ///
    /// # Panics
    ///
    /// Panics if the id is stale.
    pub fn remove(&mut self, id: SpanId) -> Span {
        self.released += 1;
        // lint:allow(panic-surface) documented panic: a stale id is
        // registry corruption, caught by the expect either way.
        let span = self.spans[id.index()].take().expect("stale span id");
        self.free_ids.push(id);
        span
    }

    /// Borrows a live span.
    ///
    /// # Panics
    ///
    /// Panics if the id is stale.
    pub fn get(&self, id: SpanId) -> &Span {
        // lint:allow(panic-surface) documented panic, as in remove().
        self.spans[id.index()].as_ref().expect("stale span id")
    }

    /// Mutably borrows a live span.
    ///
    /// # Panics
    ///
    /// Panics if the id is stale.
    pub fn get_mut(&mut self, id: SpanId) -> &mut Span {
        // lint:allow(panic-surface) documented panic, as in remove().
        self.spans[id.index()].as_mut().expect("stale span id")
    }

    /// Pops one free object off span `id`, returning its address: one read
    /// from the free-stack pool, one bit set, two scalar bumps.
    ///
    /// # Panics
    ///
    /// Panics if the id is stale or the span has no free objects (caller
    /// must check).
    pub fn alloc_object(&mut self, id: SpanId) -> u64 {
        // lint:allow(panic-surface) documented panic, as in get().
        let span = self.spans[id.index()].as_mut().expect("stale span id");
        assert!(
            span.allocated < span.capacity,
            "alloc_object on exhausted span"
        );
        // lint:allow(panic-surface) live ids always own a slot: insert()
        // carves one per id.
        let slot = self.arena.slots[id.index()];
        let top = slot.free_off as usize + span.free_count() as usize - 1;
        // top < free_off + region_cap.
        let idx = self.arena.free_pool[top];
        debug_assert!(!self.arena.bit(slot, idx), "object {idx} already allocated");
        span.allocated += 1;
        let addr = span.start + idx as u64 * span.object_size;
        self.arena.set_bit(slot, idx, true);
        addr
    }

    /// Peeks the object index on top of span `id`'s free stack without
    /// popping it (`None` when the span is exhausted). This is the
    /// read-only arena probe the hot-path benches race against the retired
    /// per-span `Vec` layout: one dense `spans` read plus one dense
    /// `free_pool` read, no per-span heap chase.
    ///
    /// # Panics
    ///
    /// Panics if the id is stale.
    pub fn peek_free(&self, id: SpanId) -> Option<u32> {
        // Documented panic, as in get().
        let span = self.spans[id.index()].as_ref().expect("stale span id");
        if span.free_count() == 0 {
            return None;
        }
        let slot = self.arena.slots[id.index()];
        let top = slot.free_off as usize + span.free_count() as usize - 1;
        // top < free_off + region_cap.
        Some(self.arena.free_pool[top])
    }

    /// Returns an object to span `id`.
    ///
    /// # Panics
    ///
    /// Panics if the id is stale, on addresses outside the span, unaligned
    /// addresses, or double free.
    pub fn dealloc_object(&mut self, id: SpanId, addr: u64) {
        // lint:allow(panic-surface) documented panic, as in get().
        let span = self.spans[id.index()].as_mut().expect("stale span id");
        assert!(
            addr >= span.start && addr < span.start + span.bytes(),
            "address {addr:#x} outside span at {:#x}",
            span.start
        );
        let off = addr - span.start;
        assert!(
            off.is_multiple_of(span.object_size),
            "misaligned free at offset {off} (object size {})",
            span.object_size
        );
        let idx = (off / span.object_size) as u32;
        assert!(idx < span.capacity, "object index {idx} out of range");
        // lint:allow(panic-surface) live ids always own a slot: insert()
        // carves one per id.
        let slot = self.arena.slots[id.index()];
        assert!(self.arena.bit(slot, idx), "double free of object {idx}");
        assert!(span.allocated > 0);
        span.allocated -= 1;
        let top = slot.free_off as usize + span.free_count() as usize - 1;
        // free_count <= capacity <= region_cap.
        self.arena.free_pool[top] = idx;
        self.arena.set_bit(slot, idx, false);
    }

    /// Number of live spans.
    pub fn len(&self) -> usize {
        self.spans.len() - self.free_ids.len()
    }

    /// Any live spans?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Iterates live spans.
    pub fn iter(&self) -> impl Iterator<Item = (SpanId, &Span)> {
        self.spans
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.as_ref().map(|s| (SpanId(i as u32), s)))
    }

    /// Arena occupancy for the sanitizer's conservation audit: pool sizes
    /// and the per-slot reservations that must tile them exactly.
    pub fn arena_stats(&self) -> ArenaStats {
        let (mut entries, mut words) = (0u64, 0u64);
        for slot in &self.arena.slots {
            entries += slot.region_cap as u64;
            words += SlabArena::words_for(slot.region_cap) as u64;
        }
        ArenaStats {
            slots_total: self.spans.len() as u64,
            slots_live: self.len() as u64,
            free_pool_entries: self.arena.free_pool.len() as u64,
            bitmap_pool_words: self.arena.bm_pool.len() as u64,
            reserved_entries: entries,
            reserved_words: words,
            retired_entries: self.arena.retired_entries,
            retired_words: self.arena.retired_words,
        }
    }
}

#[cfg(test)]
// Tests may unwrap: a panic IS the failure report here.
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::size_class::SizeClassTable;

    fn small_span() -> Span {
        let t = SizeClassTable::production();
        let cl = t.class_for(16).unwrap();
        Span::new_small(0x10000, cl as u16, t.info(cl))
    }

    /// Registry with one small span, the fixture most tests drive.
    fn registry_with_span() -> (SpanRegistry, SpanId) {
        let mut reg = SpanRegistry::new();
        let id = reg.insert(small_span());
        (reg, id)
    }

    #[test]
    fn carve_and_return_all() {
        let (mut reg, id) = registry_with_span();
        assert_eq!(reg.get(id).capacity, 512);
        let mut addrs = Vec::new();
        for _ in 0..reg.get(id).capacity {
            addrs.push(reg.alloc_object(id));
        }
        assert_eq!(reg.get(id).free_count(), 0);
        assert_eq!(reg.get(id).allocated, 512);
        // Addresses are distinct and within the span.
        let mut sorted = addrs.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 512);
        for a in &addrs {
            reg.dealloc_object(id, *a);
        }
        assert!(reg.get(id).is_idle());
        assert_eq!(reg.get(id).free_count(), 512);
    }

    #[test]
    fn lifo_reuse_order_is_vec_identical() {
        // The arena stack must pop objects in ascending-index order from a
        // fresh span, and return the most recently freed object first —
        // the exact semantics of the retired per-span Vec (address reuse
        // determinism the golden figures depend on).
        let (mut reg, id) = registry_with_span();
        let a0 = reg.alloc_object(id);
        let a1 = reg.alloc_object(id);
        let base = reg.get(id).start;
        let osize = reg.get(id).object_size;
        assert_eq!(a0, base, "fresh span hands out object 0 first");
        assert_eq!(a1, base + osize, "then object 1");
        reg.dealloc_object(id, a0);
        assert_eq!(reg.alloc_object(id), a0, "LIFO: last freed, first reused");
    }

    #[test]
    fn peek_free_tracks_the_stack_top_without_popping() {
        let (mut reg, id) = registry_with_span();
        assert_eq!(reg.peek_free(id), Some(0), "fresh span: object 0 on top");
        assert_eq!(reg.peek_free(id), Some(0), "peeking does not pop");
        let a0 = reg.alloc_object(id);
        assert_eq!(reg.peek_free(id), Some(1), "after popping 0, 1 is next");
        for _ in 1..reg.get(id).capacity {
            reg.alloc_object(id);
        }
        assert_eq!(reg.peek_free(id), None, "exhausted span has no top");
        reg.dealloc_object(id, a0);
        assert_eq!(reg.peek_free(id), Some(0), "freed object returns on top");
    }

    #[test]
    #[should_panic(expected = "double free")]
    fn double_free_detected() {
        let (mut reg, id) = registry_with_span();
        let a = reg.alloc_object(id);
        reg.dealloc_object(id, a);
        reg.dealloc_object(id, a);
    }

    #[test]
    #[should_panic(expected = "misaligned")]
    fn misaligned_free_detected() {
        let (mut reg, id) = registry_with_span();
        let a = reg.alloc_object(id);
        reg.dealloc_object(id, a + 1);
    }

    #[test]
    #[should_panic(expected = "outside span")]
    fn foreign_free_detected() {
        let (mut reg, id) = registry_with_span();
        reg.dealloc_object(id, 0xdead0000);
    }

    #[test]
    #[should_panic(expected = "exhausted")]
    fn exhausted_alloc_panics() {
        let t = SizeClassTable::production();
        let cl = t.class_for(256 << 10).unwrap();
        let mut reg = SpanRegistry::new();
        let id = reg.insert(Span::new_small(0, cl as u16, t.info(cl)));
        for _ in 0..=reg.get(id).capacity {
            reg.alloc_object(id);
        }
    }

    #[test]
    fn large_span_is_single_object() {
        let mut reg = SpanRegistry::new();
        let id = reg.insert(Span::new_large(0x8000, 100));
        let s = *reg.get(id);
        assert_eq!(s.capacity, 1);
        assert_eq!(s.allocated, 1);
        assert_eq!(s.size_class, None);
        assert!(!s.is_idle());
        // The single object frees and double-free-detects through the
        // arena bitmap like any other.
        reg.dealloc_object(id, 0x8000);
        assert!(reg.get(id).is_idle());
    }

    #[test]
    fn registry_recycles_ids_and_regions() {
        let mut reg = SpanRegistry::new();
        let a = reg.insert(small_span());
        let b = reg.insert(small_span());
        assert_ne!(a, b);
        assert_eq!(reg.len(), 2);
        let before = reg.arena_stats();
        reg.remove(a);
        assert_eq!(reg.len(), 1);
        let c = reg.insert(small_span());
        assert_eq!(c, a, "id recycled");
        assert_eq!(reg.created, 3);
        assert_eq!(reg.released, 1);
        // Same capacity through the same slot: the arena reused the region
        // in place, no pool growth.
        assert_eq!(
            reg.arena_stats().free_pool_entries,
            before.free_pool_entries
        );
        assert_eq!(
            reg.arena_stats().bitmap_pool_words,
            before.bitmap_pool_words
        );
        // A reused region starts clean: full carve works again.
        for _ in 0..reg.get(c).capacity {
            reg.alloc_object(c);
        }
        assert_eq!(reg.get(c).free_count(), 0);
    }

    #[test]
    fn undersized_region_is_recarved() {
        // Recycle a capacity-1 (large) span's id into a 512-object small
        // span: the region must grow, and the conservation law must keep
        // holding.
        let mut reg = SpanRegistry::new();
        let a = reg.insert(Span::new_large(0x8000, 100));
        reg.dealloc_object(a, 0x8000);
        reg.remove(a);
        let b = reg.insert(small_span());
        assert_eq!(b, a, "id recycled");
        for _ in 0..512 {
            reg.alloc_object(b);
        }
        let stats = reg.arena_stats();
        assert_eq!(stats.retired_entries, 1, "capacity-1 region abandoned");
        assert_eq!(
            stats.free_pool_entries,
            stats.reserved_entries + stats.retired_entries
        );
        assert_eq!(
            stats.bitmap_pool_words,
            stats.reserved_words + stats.retired_words
        );
    }

    #[test]
    #[should_panic(expected = "stale")]
    fn stale_id_detected() {
        let mut reg = SpanRegistry::new();
        let a = reg.insert(small_span());
        reg.remove(a);
        let _ = reg.get(a);
    }

    #[test]
    fn fragmentation_accounting() {
        let (mut reg, id) = registry_with_span();
        let total = reg.get(id).bytes();
        let _ = reg.alloc_object(id);
        let s = reg.get(id);
        assert_eq!(s.free_object_bytes(), (s.capacity as u64 - 1) * 16);
        assert_eq!(s.carve_waste_bytes(), total - s.capacity as u64 * 16);
    }

    #[test]
    fn arena_stats_conservation() {
        let mut reg = SpanRegistry::new();
        assert_eq!(reg.arena_stats(), ArenaStats::default());
        let a = reg.insert(small_span());
        let _b = reg.insert(Span::new_large(0x9000_0000, 4));
        let stats = reg.arena_stats();
        assert_eq!(stats.slots_total, 2);
        assert_eq!(stats.slots_live, 2);
        assert_eq!(stats.free_pool_entries, 512 + 1);
        assert_eq!(stats.reserved_entries, 512 + 1);
        assert_eq!(stats.bitmap_pool_words, 8 + 1);
        assert_eq!(stats.reserved_words, 8 + 1);
        reg.remove(a);
        let stats = reg.arena_stats();
        assert_eq!(stats.slots_live, 1, "region stays reserved for reuse");
        assert_eq!(stats.free_pool_entries, stats.reserved_entries);
    }
}
