//! Spans: the unit of memory the central free list manages.
//!
//! §2.1: "A span is a collection of contiguous fixed-size regions, aligned
//! to an 8 KB TCMalloc page... a span contains multiple objects of the same
//! size class." A span is carved out of hugepages by the pageheap, hands
//! objects to the central free list, and can only return to the pageheap
//! when *every* object on it has been freed — the root cause of central-
//! free-list fragmentation (§4.3).

use crate::size_class::SizeClassInfo;
use wsc_sim_os::addr::TCMALLOC_PAGE_BYTES;

/// Identifier of a span inside a [`SpanRegistry`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SpanId(pub u32);

impl SpanId {
    /// Raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Where a span currently lives.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SpanState {
    /// On a central-free-list list (has free objects, may have live ones).
    InFreeList {
        /// Which priority list (0 = fullest, §4.3).
        list: u8,
        /// Position within that list's vector (for O(1) removal).
        pos: u32,
    },
    /// All objects allocated; not on any list.
    Full,
    /// A large (>256 KiB) allocation served directly by the pageheap.
    Large,
    /// Returned to the pageheap (terminal; id will be recycled).
    Released,
}

/// One span: a run of TCMalloc pages carved into equal-size objects.
#[derive(Clone, Debug)]
pub struct Span {
    /// Base address (TCMalloc-page aligned).
    pub start: u64,
    /// Length in TCMalloc pages.
    pub pages: u32,
    /// Size class index, or `None` for large allocations.
    pub size_class: Option<u16>,
    /// Object size in bytes (class size, or the rounded large size).
    pub object_size: u64,
    /// Total objects this span can hold (span capacity, §4.4).
    pub capacity: u32,
    /// Currently allocated (live) objects.
    pub allocated: u32,
    /// Stack of free object indices.
    free_objects: Vec<u32>,
    /// Allocation bitmap for double-free detection.
    bitmap: Vec<u64>,
    /// Current bookkeeping state.
    pub state: SpanState,
    /// Owning vCPU: the simulated thread that most recently refilled its
    /// per-CPU cache from this span. `None` until claimed (or always, under
    /// the owner-only free arm, which never tags ownership).
    pub owner: Option<u32>,
    /// Pending Figure-13 observation: the live-allocation count recorded at
    /// the last deallocation, resolved when the span is next allocated from
    /// (not released) or released.
    pub pending_obs: Option<u32>,
}

impl Span {
    /// Creates a small-object span for a size class.
    pub fn new_small(start: u64, class: u16, info: &SizeClassInfo) -> Self {
        let capacity = info.objects_per_span;
        Self {
            start,
            pages: info.pages,
            size_class: Some(class),
            object_size: info.size,
            capacity,
            allocated: 0,
            free_objects: (0..capacity).rev().collect(),
            bitmap: vec![0u64; (capacity as usize).div_ceil(64)],
            state: SpanState::Full, // caller places it on a list
            owner: None,
            pending_obs: None,
        }
    }

    /// Creates a large-allocation span covering `pages` TCMalloc pages.
    pub fn new_large(start: u64, pages: u32) -> Self {
        Self {
            start,
            pages,
            size_class: None,
            object_size: pages as u64 * TCMALLOC_PAGE_BYTES,
            capacity: 1,
            allocated: 1,
            free_objects: Vec::new(),
            bitmap: vec![1u64],
            state: SpanState::Large,
            owner: None,
            pending_obs: None,
        }
    }

    /// Span length in bytes.
    pub fn bytes(&self) -> u64 {
        self.pages as u64 * TCMALLOC_PAGE_BYTES
    }

    /// Free objects currently on the span.
    pub fn free_count(&self) -> u32 {
        self.free_objects.len() as u32
    }

    /// Bytes of free objects cached on this span (external fragmentation
    /// attributable to the central free list).
    pub fn free_object_bytes(&self) -> u64 {
        self.free_count() as u64 * self.object_size
    }

    /// Carving slack: span bytes not covered by any object slot.
    pub fn carve_waste_bytes(&self) -> u64 {
        self.bytes() - self.capacity as u64 * self.object_size
    }

    fn bit(&self, idx: u32) -> bool {
        // lint:allow(panic-surface) idx < capacity; the bitmap is sized
        // capacity/64 at carve time.
        self.bitmap[idx as usize / 64] >> (idx % 64) & 1 == 1
    }

    fn set_bit(&mut self, idx: u32, v: bool) {
        if v {
            // lint:allow(panic-surface) same carve-time bound as bit().
            self.bitmap[idx as usize / 64] |= 1 << (idx % 64);
        } else {
            // lint:allow(panic-surface) same carve-time bound as bit().
            self.bitmap[idx as usize / 64] &= !(1 << (idx % 64));
        }
    }

    /// Pops one free object, returning its address.
    ///
    /// # Panics
    ///
    /// Panics if the span has no free objects (caller must check).
    pub fn alloc_object(&mut self) -> u64 {
        let idx = self
            .free_objects
            .pop()
            .expect("alloc_object on exhausted span");
        debug_assert!(!self.bit(idx), "object {idx} already allocated");
        self.set_bit(idx, true);
        self.allocated += 1;
        self.start + idx as u64 * self.object_size
    }

    /// Returns an object to the span.
    ///
    /// # Panics
    ///
    /// Panics on addresses outside the span, unaligned addresses, or double
    /// free.
    pub fn dealloc_object(&mut self, addr: u64) {
        assert!(
            addr >= self.start && addr < self.start + self.bytes(),
            "address {addr:#x} outside span at {:#x}",
            self.start
        );
        let off = addr - self.start;
        assert!(
            off.is_multiple_of(self.object_size),
            "misaligned free at offset {off} (object size {})",
            self.object_size
        );
        let idx = (off / self.object_size) as u32;
        assert!(idx < self.capacity, "object index {idx} out of range");
        assert!(self.bit(idx), "double free of object {idx}");
        assert!(self.allocated > 0);
        self.set_bit(idx, false);
        self.allocated -= 1;
        self.free_objects.push(idx);
    }

    /// True when every object has been returned (span may be released).
    pub fn is_idle(&self) -> bool {
        self.allocated == 0
    }
}

/// Arena of spans with id recycling.
#[derive(Clone, Debug, Default)]
pub struct SpanRegistry {
    spans: Vec<Option<Span>>,
    free_ids: Vec<SpanId>,
    /// Total spans ever created and released, per the Figure 16 telemetry.
    pub created: u64,
    /// Total spans returned to the pageheap.
    pub released: u64,
}

impl SpanRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts a span, returning its id.
    pub fn insert(&mut self, span: Span) -> SpanId {
        self.created += 1;
        if let Some(id) = self.free_ids.pop() {
            // lint:allow(panic-surface) ids on the free list were minted
            // by push below, so they index inside the vec.
            self.spans[id.index()] = Some(span);
            id
        } else {
            self.spans.push(Some(span));
            SpanId(self.spans.len() as u32 - 1)
        }
    }

    /// Removes a span (it returned to the pageheap), yielding it.
    ///
    /// # Panics
    ///
    /// Panics if the id is stale.
    pub fn remove(&mut self, id: SpanId) -> Span {
        self.released += 1;
        // lint:allow(panic-surface) documented panic: a stale id is
        // registry corruption, caught by the expect either way.
        let span = self.spans[id.index()].take().expect("stale span id");
        self.free_ids.push(id);
        span
    }

    /// Borrows a live span.
    ///
    /// # Panics
    ///
    /// Panics if the id is stale.
    pub fn get(&self, id: SpanId) -> &Span {
        // lint:allow(panic-surface) documented panic, as in remove().
        self.spans[id.index()].as_ref().expect("stale span id")
    }

    /// Mutably borrows a live span.
    ///
    /// # Panics
    ///
    /// Panics if the id is stale.
    pub fn get_mut(&mut self, id: SpanId) -> &mut Span {
        // lint:allow(panic-surface) documented panic, as in remove().
        self.spans[id.index()].as_mut().expect("stale span id")
    }

    /// Number of live spans.
    pub fn len(&self) -> usize {
        self.spans.len() - self.free_ids.len()
    }

    /// Any live spans?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Iterates live spans.
    pub fn iter(&self) -> impl Iterator<Item = (SpanId, &Span)> {
        self.spans
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.as_ref().map(|s| (SpanId(i as u32), s)))
    }
}

#[cfg(test)]
// Tests may unwrap: a panic IS the failure report here.
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::size_class::SizeClassTable;

    fn small_span() -> Span {
        let t = SizeClassTable::production();
        let cl = t.class_for(16).unwrap();
        Span::new_small(0x10000, cl as u16, t.info(cl))
    }

    #[test]
    fn carve_and_return_all() {
        let mut s = small_span();
        assert_eq!(s.capacity, 512);
        let mut addrs = Vec::new();
        for _ in 0..s.capacity {
            addrs.push(s.alloc_object());
        }
        assert_eq!(s.free_count(), 0);
        assert_eq!(s.allocated, 512);
        // Addresses are distinct and within the span.
        let mut sorted = addrs.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 512);
        for a in &addrs {
            s.dealloc_object(*a);
        }
        assert!(s.is_idle());
        assert_eq!(s.free_count(), 512);
    }

    #[test]
    #[should_panic(expected = "double free")]
    fn double_free_detected() {
        let mut s = small_span();
        let a = s.alloc_object();
        s.dealloc_object(a);
        s.dealloc_object(a);
    }

    #[test]
    #[should_panic(expected = "misaligned")]
    fn misaligned_free_detected() {
        let mut s = small_span();
        let a = s.alloc_object();
        s.dealloc_object(a + 1);
    }

    #[test]
    #[should_panic(expected = "outside span")]
    fn foreign_free_detected() {
        let mut s = small_span();
        s.dealloc_object(0xdead0000);
    }

    #[test]
    #[should_panic(expected = "exhausted")]
    fn exhausted_alloc_panics() {
        let t = SizeClassTable::production();
        let cl = t.class_for(256 << 10).unwrap();
        let mut s = Span::new_small(0, cl as u16, t.info(cl));
        for _ in 0..=s.capacity {
            s.alloc_object();
        }
    }

    #[test]
    fn large_span_is_single_object() {
        let s = Span::new_large(0x8000, 100);
        assert_eq!(s.capacity, 1);
        assert_eq!(s.allocated, 1);
        assert_eq!(s.size_class, None);
        assert!(!s.is_idle());
    }

    #[test]
    fn registry_recycles_ids() {
        let mut reg = SpanRegistry::new();
        let a = reg.insert(small_span());
        let b = reg.insert(small_span());
        assert_ne!(a, b);
        assert_eq!(reg.len(), 2);
        reg.remove(a);
        assert_eq!(reg.len(), 1);
        let c = reg.insert(small_span());
        assert_eq!(c, a, "id recycled");
        assert_eq!(reg.created, 3);
        assert_eq!(reg.released, 1);
    }

    #[test]
    #[should_panic(expected = "stale")]
    fn stale_id_detected() {
        let mut reg = SpanRegistry::new();
        let a = reg.insert(small_span());
        reg.remove(a);
        let _ = reg.get(a);
    }

    #[test]
    fn fragmentation_accounting() {
        let mut s = small_span();
        let total = s.bytes();
        let _ = s.alloc_object();
        assert_eq!(s.free_object_bytes(), (s.capacity as u64 - 1) * 16);
        assert_eq!(s.carve_waste_bytes(), total - s.capacity as u64 * 16);
    }
}
