//! Seeded interleaving schedules for cross-thread free testing.
//!
//! The simulation is single-threaded by construction (one `Tcmalloc` per
//! run, a simulated [`Clock`]), so "concurrency" here means *interleaving*:
//! which simulated CPU issues each operation, and in what order. This
//! module turns a seed into an explicit [`Schedule`] — a fully materialized
//! operation list — and [`replay`]s it against an allocator, producing a
//! [`ReplayOutcome`] that fingerprints the complete event stream.
//!
//! Because the schedule is data, not timing, every replay of the same
//! `(seed, config, platform)` triple is byte-identical — across processes,
//! thread counts of the experiment [`Engine`](wsc_parallel), and free-arm
//! A/B comparisons. That is the property the cross-thread tests lean on:
//! replay twice and compare fingerprints, or replay the same schedule under
//! different [`FreeArm`](crate::config::FreeArm)s and compare final heaps.
//!
//! Two canonical schedule shapes mirror the workloads the paper's fleet
//! profiles surface:
//!
//! * [`Schedule::producer_consumer`] — a set of producer CPUs allocate,
//!   a disjoint set of consumer CPUs free: every free is remote once an
//!   ownership arm is active (the classic pipeline pattern).
//! * [`Schedule::thread_churn`] — every CPU allocates and frees at random:
//!   ownership migrates as spans refill, and a fraction of frees land on
//!   non-owner CPUs (the thread-migration pattern).

use crate::alloc::Tcmalloc;
use crate::config::TcmallocConfig;
use wsc_prng::SmallRng;
use wsc_sim_hw::topology::{CpuId, Platform};
use wsc_sim_os::clock::Clock;

/// One step of an interleaving schedule.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SchedOp {
    /// Allocate `size` bytes from simulated CPU `cpu`.
    Malloc {
        /// Issuing CPU (taken modulo the platform's CPU count at replay).
        cpu: u32,
        /// Request size in bytes.
        size: u64,
    },
    /// Free the `slot % live`-th live object from simulated CPU `cpu`.
    Free {
        /// Index into the live-object list (modulo its length).
        slot: u32,
        /// Issuing CPU — remote if it differs from the span owner.
        cpu: u32,
    },
    /// Advance the simulated clock by `ns` and run background maintenance
    /// (which includes the plunder-point deferred drain).
    Tick {
        /// Nanoseconds of simulated time to advance.
        ns: u64,
    },
    /// Explicit full-barrier drain of every deferred remote free.
    Drain,
}

/// A materialized interleaving: the seed it was derived from plus the
/// explicit operation list. Equality of schedules implies equality of
/// replays (given the same config and platform).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Schedule {
    /// The seed the schedule was derived from (for labelling/repro).
    pub seed: u64,
    /// The operations, in program order.
    pub ops: Vec<SchedOp>,
}

impl Schedule {
    /// Producer→consumer pipeline: `producers` allocate, `consumers` free.
    ///
    /// Under a deferred arm every free is a cross-thread free (consumers
    /// never own spans — they never take the central-refill path that
    /// claims ownership). Sizes stay in the small-class range so traffic
    /// exercises the per-CPU → deferred → central circuit. The schedule
    /// ends with a settling [`SchedOp::Tick`] and [`SchedOp::Drain`] so
    /// "no remote free left behind" is assertable.
    pub fn producer_consumer(seed: u64, producers: &[u32], consumers: &[u32], ops: usize) -> Self {
        assert!(!producers.is_empty() && !consumers.is_empty());
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut out = Vec::with_capacity(ops + 2);
        let mut backlog = 0u64; // objects allocated but not yet freed
        for _ in 0..ops {
            // Keep a rolling backlog: mostly allocate until ~32 objects are
            // live, then mostly free — a steady producer/consumer pipeline.
            let want_alloc = backlog < 8 || (backlog < 48 && rng.gen_range(0u32..10) < 5);
            if want_alloc {
                let p = producers[rng.gen_range(0..producers.len())];
                out.push(SchedOp::Malloc {
                    cpu: p,
                    size: rng.gen_range(16u64..2048),
                });
                backlog += 1;
            } else {
                let c = consumers[rng.gen_range(0..consumers.len())];
                out.push(SchedOp::Free {
                    slot: rng.gen::<u32>(),
                    cpu: c,
                });
                backlog -= 1;
            }
            if rng.gen_range(0u32..32) == 0 {
                out.push(SchedOp::Tick {
                    ns: rng.gen_range(1_000_000u64..20_000_000),
                });
            }
        }
        out.push(SchedOp::Tick { ns: 100_000_000 });
        out.push(SchedOp::Drain);
        Self { seed, ops: out }
    }

    /// Thread churn: every CPU in `0..cpus` both allocates and frees at
    /// random, so span ownership migrates with each central refill and a
    /// fraction of frees are remote. Periodic ticks run the plunder drain;
    /// occasional explicit drains model owner CPUs catching up.
    pub fn thread_churn(seed: u64, cpus: u32, ops: usize) -> Self {
        assert!(cpus > 0);
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut out = Vec::with_capacity(ops + 2);
        let mut backlog = 0u64;
        for _ in 0..ops {
            match rng.gen_range(0u32..10) {
                0..=4 => {
                    let size = match rng.gen_range(0u32..8) {
                        0..=5 => rng.gen_range(16u64..4096),
                        6 => rng.gen_range(4096u64..(64 << 10)),
                        _ => rng.gen_range(64u64 << 10..(512 << 10)),
                    };
                    out.push(SchedOp::Malloc {
                        cpu: rng.gen_range(0..cpus),
                        size,
                    });
                    backlog += 1;
                }
                5..=8 if backlog > 0 => {
                    out.push(SchedOp::Free {
                        slot: rng.gen::<u32>(),
                        cpu: rng.gen_range(0..cpus),
                    });
                    backlog -= 1;
                }
                5..=8 => {} // nothing live to free; skip
                _ => {
                    if rng.gen_range(0u32..4) == 0 {
                        out.push(SchedOp::Drain);
                    } else {
                        out.push(SchedOp::Tick {
                            ns: rng.gen_range(1_000_000u64..50_000_000),
                        });
                    }
                }
            }
        }
        out.push(SchedOp::Tick { ns: 100_000_000 });
        out.push(SchedOp::Drain);
        Self { seed, ops: out }
    }
}

/// Everything a replay observed, reduced to comparable values.
#[derive(Clone, Debug, PartialEq)]
pub struct ReplayOutcome {
    /// FNV-1a fingerprint of the complete recorded event stream as
    /// `(event_count, hash)`. Byte-identical replays agree exactly.
    pub fingerprint: (usize, u64),
    /// Live objects at end of schedule, per the allocator's accounting.
    pub live_objects: u64,
    /// Live bytes at end of schedule, per the allocator's accounting.
    pub live_bytes: u64,
    /// Sorted multiset of the requested sizes still live (the oracle view
    /// a free-arm A/B must agree on).
    pub live_sizes: Vec<u64>,
    /// Resident bytes at end of schedule.
    pub resident_bytes: u64,
    /// Remote frees queued through the deferred module.
    pub queued: u64,
    /// Remote frees drained back to their owners.
    pub drained: u64,
    /// Remote frees still parked (0 after the schedules' final drain).
    pub in_flight: u64,
    /// Sanitizer reports accumulated plus a final explicit audit's
    /// findings (0 on a clean run; always 0 when the sanitizer is off).
    pub sanitizer_findings: usize,
}

/// FNV-1a offset basis (64-bit).
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a prime (64-bit).
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Replays `schedule` against a fresh allocator built from `cfg` on
/// `platform`, with the raw event recorder forced on (the fingerprint
/// covers the complete stream). Returns the observed [`ReplayOutcome`].
///
/// Replay is deterministic: the same `(cfg, platform, schedule)` triple
/// produces the same outcome, fingerprint included, on every call.
pub fn replay(cfg: TcmallocConfig, platform: Platform, schedule: &Schedule) -> ReplayOutcome {
    let sanitized = cfg.sanitize.is_on();
    let cpus = platform.num_cpus() as u32;
    let clock = Clock::new();
    let mut tcm = Tcmalloc::new(cfg.with_event_recorder(), platform, clock.clone());
    let mut live: Vec<(u64, u64)> = Vec::new();
    for op in &schedule.ops {
        match *op {
            SchedOp::Malloc { cpu, size } => {
                let out = tcm.malloc(size, CpuId(cpu % cpus));
                live.push((out.addr, size));
            }
            SchedOp::Free { slot, cpu } => {
                if live.is_empty() {
                    continue;
                }
                let idx = slot as usize % live.len();
                let (addr, size) = live.swap_remove(idx);
                tcm.free(addr, size, CpuId(cpu % cpus));
            }
            SchedOp::Tick { ns } => {
                clock.advance(ns);
                tcm.maintain();
            }
            SchedOp::Drain => tcm.drain_deferred(),
        }
    }
    let mut live_sizes: Vec<u64> = live.iter().map(|&(_, s)| s).collect();
    live_sizes.sort_unstable();
    let sanitizer_findings = if sanitized {
        tcm.audit_now();
        tcm.take_sanitizer_reports().len()
    } else {
        0
    };
    let mut hash = FNV_OFFSET;
    let mut count = 0usize;
    for e in tcm.recorded_events() {
        for b in format!("{e:?}").bytes() {
            hash = (hash ^ u64::from(b)).wrapping_mul(FNV_PRIME);
        }
        count += 1;
    }
    ReplayOutcome {
        fingerprint: (count, hash),
        live_objects: tcm.live_objects(),
        live_bytes: tcm.live_bytes(),
        live_sizes,
        resident_bytes: tcm.resident_bytes(),
        queued: tcm.deferred().queued_total(),
        drained: tcm.deferred().drained_total(),
        in_flight: tcm.deferred().in_flight(),
        sanitizer_findings,
    }
}

#[cfg(test)]
// Tests may unwrap: a panic IS the failure report here.
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::config::FreeArm;

    fn platform() -> Platform {
        Platform::chiplet("t", 2, 2, 4, 2)
    }

    #[test]
    fn schedules_are_seed_deterministic() {
        let a = Schedule::producer_consumer(7, &[0, 1], &[2, 3], 200);
        let b = Schedule::producer_consumer(7, &[0, 1], &[2, 3], 200);
        assert_eq!(a, b);
        assert_ne!(a, Schedule::producer_consumer(8, &[0, 1], &[2, 3], 200));
        let c = Schedule::thread_churn(7, 8, 200);
        assert_eq!(c, Schedule::thread_churn(7, 8, 200));
    }

    #[test]
    fn schedules_end_settled() {
        let s = Schedule::producer_consumer(3, &[0], &[1], 50);
        assert_eq!(s.ops.last(), Some(&SchedOp::Drain));
        let s = Schedule::thread_churn(3, 4, 50);
        assert_eq!(s.ops.last(), Some(&SchedOp::Drain));
    }

    #[test]
    fn replay_is_bit_identical() {
        let sched = Schedule::thread_churn(0x1E_AF, 8, 300);
        for arm in [
            FreeArm::OwnerOnly,
            FreeArm::AtomicList,
            FreeArm::MessagePassing,
        ] {
            let cfg = TcmallocConfig::optimized().with_free_arm(arm);
            let a = replay(cfg, platform(), &sched);
            let b = replay(cfg, platform(), &sched);
            assert_eq!(a, b, "replay diverged under {arm:?}");
        }
    }

    #[test]
    fn producer_consumer_routes_remote_frees() {
        let sched = Schedule::producer_consumer(0xFEED, &[0, 1], &[4, 5], 400);
        let cfg = TcmallocConfig::optimized().with_free_arm(FreeArm::AtomicList);
        let out = replay(cfg, platform(), &sched);
        assert!(out.queued > 0, "pipeline frees must go remote");
        assert_eq!(out.in_flight, 0, "final drain must adopt everything");
        assert_eq!(out.queued, out.drained);
    }

    #[test]
    fn owner_only_never_defers() {
        let sched = Schedule::producer_consumer(0xFEED, &[0, 1], &[4, 5], 400);
        let out = replay(TcmallocConfig::optimized(), platform(), &sched);
        assert_eq!(out.queued, 0);
        assert_eq!(out.drained, 0);
    }
}
