//! Hugepage regions: allocations that slightly exceed a hugepage (§4.4
//! component 2).
//!
//! An allocation of, say, 2.1 MiB placed on its own pair of hugepages would
//! strand almost a whole hugepage of slack. The hugepage region instead
//! packs such mid-size allocations end-to-end on a contiguous run of
//! hugepages, ignoring hugepage boundaries.

use super::os::{AllocError, OsLayer};
use crate::events::{AllocEvent, EventBus};
use std::collections::BTreeMap;
use wsc_sim_os::addr::{HUGE_PAGE_BYTES, TCMALLOC_PAGES_PER_HUGE, TCMALLOC_PAGE_BYTES};

/// Hugepages per region (4 → 8 MiB of virtual space per region; production
/// uses 1 GiB regions against TiB heaps — scaled like the cache capacities).
pub const REGION_HUGEPAGES: u64 = 4;

/// TCMalloc pages per region.
pub const REGION_PAGES: u32 = (REGION_HUGEPAGES * TCMALLOC_PAGES_PER_HUGE) as u32;

const WORDS: usize = REGION_PAGES as usize / 64;

#[derive(Clone, Debug)]
struct Region {
    base: u64,
    bitmap: [u64; WORDS],
    used_pages: u32,
}

impl Region {
    fn new(base: u64) -> Self {
        Self {
            base,
            bitmap: [0; WORDS],
            used_pages: 0,
        }
    }

    fn bit(&self, i: u32) -> bool {
        // lint:allow(panic-surface) i < REGION_PAGES; the bitmap is sized
        // REGION_PAGES/64 at construction.
        self.bitmap[i as usize / 64] >> (i % 64) & 1 == 1
    }

    fn set_range(&mut self, start: u32, n: u32, v: bool) {
        for i in start..start + n {
            let (w, b) = (i as usize / 64, i % 64);
            if v {
                debug_assert!(self.bitmap[w] >> b & 1 == 0);
                self.bitmap[w] |= 1 << b;
            } else {
                debug_assert!(self.bitmap[w] >> b & 1 == 1);
                self.bitmap[w] &= !(1 << b);
            }
        }
        if v {
            self.used_pages += n;
        } else {
            self.used_pages -= n;
        }
    }

    /// First-fit scan for `n` consecutive free pages.
    fn find_fit(&self, n: u32) -> Option<u32> {
        let mut run = 0u32;
        for i in 0..REGION_PAGES {
            if self.bit(i) {
                run = 0;
            } else {
                run += 1;
                if run == n {
                    return Some(i + 1 - n);
                }
            }
        }
        None
    }
}

/// The set of active hugepage regions.
#[derive(Clone, Debug, Default)]
pub struct HugeRegionSet {
    regions: Vec<Region>,
    /// page-range base address -> (region index, page offset, length) for
    /// deallocation routing.
    live: BTreeMap<u64, (usize, u32, u32)>,
}

impl HugeRegionSet {
    /// Creates an empty region set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Allocates `pages` TCMalloc pages, first-fit across regions, mapping a
    /// new region when needed (emitting one [`AllocEvent::HugepageFill`]).
    /// Returns `(addr, mmapped)`.
    ///
    /// # Errors
    ///
    /// Propagates the OS layer's refusal when a new region must be mapped;
    /// the region set is unchanged in that case.
    ///
    /// # Panics
    ///
    /// Panics if `pages` exceeds a region.
    pub fn alloc(
        &mut self,
        pages: u32,
        os: &mut OsLayer,
        bus: &mut EventBus,
    ) -> Result<(u64, bool), AllocError> {
        assert!(
            (1..=REGION_PAGES).contains(&pages),
            "region allocation of {pages} pages out of range"
        );
        for (idx, region) in self.regions.iter_mut().enumerate() {
            if let Some(off) = region.find_fit(pages) {
                region.set_range(off, pages, true);
                let addr = region.base + off as u64 * TCMALLOC_PAGE_BYTES;
                self.live.insert(addr, (idx, off, pages));
                return Ok((addr, false));
            }
        }
        let base = os.mmap(REGION_HUGEPAGES * HUGE_PAGE_BYTES, bus)?;
        bus.emit(AllocEvent::HugepageFill {
            base,
            bytes: REGION_HUGEPAGES * HUGE_PAGE_BYTES,
            reused: false,
        });
        let mut region = Region::new(base);
        region.set_range(0, pages, true);
        self.regions.push(region);
        self.live.insert(base, (self.regions.len() - 1, 0, pages));
        Ok((base, true))
    }

    /// Frees a range previously returned by [`alloc`](Self::alloc). Fully
    /// free regions are unmapped (emitting one
    /// [`AllocEvent::HugepageRelease`]).
    ///
    /// # Panics
    ///
    /// Panics if `addr` is not a live region allocation or `pages` mismatches.
    pub fn dealloc(&mut self, addr: u64, pages: u32, os: &mut OsLayer, bus: &mut EventBus) {
        let (idx, off, len) = self
            .live
            .remove(&addr)
            .expect("dealloc of unknown region range");
        assert_eq!(len, pages, "region dealloc length mismatch");
        let region = &mut self.regions[idx];
        region.set_range(off, len, false);
        if region.used_pages == 0 {
            os.munmap(region.base, REGION_HUGEPAGES * HUGE_PAGE_BYTES);
            bus.emit(AllocEvent::HugepageRelease {
                base: region.base,
                bytes: REGION_HUGEPAGES * HUGE_PAGE_BYTES,
            });
            // Swap-remove; fix up live entries pointing at the moved region.
            let last = self.regions.len() - 1;
            self.regions.swap_remove(idx);
            if idx != last {
                for entry in self.live.values_mut() {
                    if entry.0 == last {
                        entry.0 = idx;
                    }
                }
            }
        }
    }

    /// Bytes in live allocations.
    pub fn used_bytes(&self) -> u64 {
        self.regions
            .iter()
            .map(|r| r.used_pages as u64 * TCMALLOC_PAGE_BYTES)
            .sum()
    }

    /// Free (fragmented) bytes inside mapped regions (Figure 15).
    pub fn free_bytes(&self) -> u64 {
        self.regions.len() as u64 * REGION_HUGEPAGES * HUGE_PAGE_BYTES - self.used_bytes()
    }

    /// Number of mapped regions.
    pub fn num_regions(&self) -> usize {
        self.regions.len()
    }
}

#[cfg(test)]
// Tests may unwrap: a panic IS the failure report here.
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::config::TcmallocConfig;
    use wsc_sim_hw::cost::CostModel;
    use wsc_sim_os::clock::Clock;

    fn bus() -> EventBus {
        EventBus::new(
            &TcmallocConfig::baseline(),
            CostModel::production(),
            Clock::new(),
        )
    }

    #[test]
    fn packs_end_to_end() {
        let mut rs = HugeRegionSet::new();
        let mut os = OsLayer::infallible();
        let mut bs = bus();
        // 2.1 MiB ≈ 269 pages; three of them fit in one 16-hugepage region.
        let (a, mmapped) = rs.alloc(269, &mut os, &mut bs).unwrap();
        assert!(mmapped);
        let (b, m2) = rs.alloc(269, &mut os, &mut bs).unwrap();
        let (c, m3) = rs.alloc(269, &mut os, &mut bs).unwrap();
        assert!(!m2 && !m3, "same region reused");
        assert_eq!(b, a + 269 * TCMALLOC_PAGE_BYTES, "end-to-end packing");
        assert_eq!(c, b + 269 * TCMALLOC_PAGE_BYTES);
        assert_eq!(rs.num_regions(), 1);
    }

    #[test]
    fn slack_is_smaller_than_dedicated_hugepages() {
        // The design point: a 2.1 MiB allocation on dedicated hugepages
        // wastes ~1.9 MiB; in a shared region the per-allocation share of
        // region slack is far smaller once a few allocations pack together.
        let mut rs = HugeRegionSet::new();
        let mut os = OsLayer::infallible();
        let mut bs = bus();
        for _ in 0..15 {
            rs.alloc(269, &mut os, &mut bs).unwrap();
        }
        let free = rs.free_bytes();
        let per_alloc_slack = free as f64 / 15.0;
        assert!(
            per_alloc_slack < 0.5 * HUGE_PAGE_BYTES as f64,
            "per-allocation slack {per_alloc_slack} too big"
        );
    }

    #[test]
    fn dealloc_reuses_space() {
        let mut rs = HugeRegionSet::new();
        let mut os = OsLayer::infallible();
        let mut bs = bus();
        let (a, _) = rs.alloc(300, &mut os, &mut bs).unwrap();
        let (_b, _) = rs.alloc(300, &mut os, &mut bs).unwrap();
        rs.dealloc(a, 300, &mut os, &mut bs);
        let (c, mmapped) = rs.alloc(300, &mut os, &mut bs).unwrap();
        assert!(!mmapped);
        assert_eq!(c, a, "first-fit reuses the hole");
    }

    #[test]
    fn empty_region_unmaps() {
        let mut rs = HugeRegionSet::new();
        let mut os = OsLayer::infallible();
        let mut bs = bus();
        let (a, _) = rs.alloc(400, &mut os, &mut bs).unwrap();
        let mapped = os.vmm().mapped_bytes();
        rs.dealloc(a, 400, &mut os, &mut bs);
        assert_eq!(rs.num_regions(), 0);
        assert_eq!(
            os.vmm().mapped_bytes(),
            mapped - REGION_HUGEPAGES * HUGE_PAGE_BYTES
        );
    }

    #[test]
    #[should_panic(expected = "unknown region range")]
    fn unknown_dealloc_panics() {
        let mut rs = HugeRegionSet::new();
        let mut os = OsLayer::infallible();
        let mut bs = bus();
        rs.dealloc(0x1234, 300, &mut os, &mut bs);
    }

    #[test]
    fn swap_remove_fixes_indices() {
        let mut rs = HugeRegionSet::new();
        let mut os = OsLayer::infallible();
        let mut bs = bus();
        // Fill two regions.
        let (a, _) = rs.alloc(REGION_PAGES, &mut os, &mut bs).unwrap();
        let (b, _) = rs.alloc(REGION_PAGES, &mut os, &mut bs).unwrap();
        assert_eq!(rs.num_regions(), 2);
        // Drop the first; the second's live entry must stay valid.
        rs.dealloc(a, REGION_PAGES, &mut os, &mut bs);
        rs.dealloc(b, REGION_PAGES, &mut os, &mut bs);
        assert_eq!(rs.num_regions(), 0);
    }
}
