//! The hugepage filler (§4.4): packing spans into hugepages.
//!
//! The filler serves every page-heap request smaller than a hugepage by
//! carving it out of partially-filled 2 MiB hugepages. It manages "83.6% of
//! the total in-use memory and accounts for 94.4% of the page heap
//! fragmentation" (Figure 15), so its packing policy decides both RAM waste
//! and hugepage coverage:
//!
//! * **Baseline** (Hunter et al., OSDI '21): satisfy a request from the
//!   hugepage with the *smallest longest-free-range* that still fits,
//!   breaking ties toward the *most allocations* — densify so that sparse
//!   hugepages drain and can be returned whole.
//! * **Lifetime-aware** (§4.4 redesign): additionally segregate spans by
//!   their statically-known *capacity* (objects per span), a zero-overhead
//!   proxy for span lifetime (Figure 16, Spearman ≈ −0.75): spans with
//!   capacity < C (few, large objects — short-lived) get dedicated
//!   hugepages, away from high-capacity long-lived spans, so their
//!   hugepages become totally free and are released to the OS *intact*.
//!
//! The filler also implements *subrelease* — breaking a partially-free
//! hugepage to return its free tail to the OS — which trades RAM for TLB
//! reach (§2.1, Figure 17).

use super::cache::HugeCache;
use super::os::{AllocError, OsLayer};
use crate::events::{AllocEvent, EventBus};
use std::collections::HashMap;
use wsc_sim_os::addr::{HUGE_PAGE_BYTES, TCMALLOC_PAGES_PER_HUGE, TCMALLOC_PAGE_BYTES};

/// TCMalloc pages per hugepage (256).
pub const HP_PAGES: u32 = TCMALLOC_PAGES_PER_HUGE as u32;

const WORDS: usize = HP_PAGES as usize / 64;

/// Lifetime bucket a span is assigned to (lifetime-aware mode).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LifetimeSet {
    /// High-capacity spans (capacity ≥ C) and donated large-allocation
    /// tails: expected long-lived.
    Long,
    /// Low-capacity spans (capacity < C): expected short-lived; packed on
    /// dedicated hugepages that can drain and release whole.
    Short,
}

#[derive(Clone, Debug)]
struct PageTracker {
    base: u64,
    used_mask: [u64; WORDS],
    released_mask: [u64; WORDS],
    used: u32,
    /// Live span-allocations on this hugepage.
    allocations: u32,
    donated: bool,
    set: usize,
    /// Consecutive release passes this tracker has been an idle subrelease
    /// candidate (adaptive subrelease, Maas et al. \[49\]: give a draining
    /// hugepage time to become completely free before breaking it).
    idle_passes: u8,
    /// Cached longest free run (in pages); list index.
    lfr: u32,
    /// Position within `lists[set][lfr]`.
    pos: u32,
}

impl PageTracker {
    fn new(base: u64, set: usize) -> Self {
        Self {
            base,
            used_mask: [0; WORDS],
            released_mask: [0; WORDS],
            used: 0,
            allocations: 0,
            donated: false,
            set,
            idle_passes: 0,
            lfr: HP_PAGES,
            pos: 0,
        }
    }

    fn used_bit(&self, i: u32) -> bool {
        // lint:allow(panic-surface) i < HP_PAGES by construction, and the
        // mask is sized HP_PAGES/64 at tracker creation.
        self.used_mask[i as usize / 64] >> (i % 64) & 1 == 1
    }

    fn set_used(&mut self, start: u32, n: u32, v: bool) {
        for i in start..start + n {
            let (w, b) = (i as usize / 64, i % 64);
            if v {
                debug_assert!(self.used_mask[w] >> b & 1 == 0, "page {i} already used");
                self.used_mask[w] |= 1 << b;
            } else {
                debug_assert!(self.used_mask[w] >> b & 1 == 1, "page {i} not used");
                self.used_mask[w] &= !(1 << b);
            }
        }
        if v {
            self.used += n;
        } else {
            self.used -= n;
        }
    }

    fn released_bit(&self, i: u32) -> bool {
        // lint:allow(panic-surface) same fixed-size mask bound as used_bit.
        self.released_mask[i as usize / 64] >> (i % 64) & 1 == 1
    }

    fn longest_free_range(&self) -> u32 {
        let mut best = 0u32;
        let mut run = 0u32;
        for i in 0..HP_PAGES {
            if self.used_bit(i) {
                run = 0;
            } else {
                run += 1;
                best = best.max(run);
            }
        }
        best
    }

    fn find_fit(&self, n: u32) -> Option<u32> {
        let mut run = 0u32;
        for i in 0..HP_PAGES {
            if self.used_bit(i) {
                run = 0;
            } else {
                run += 1;
                if run == n {
                    return Some(i + 1 - n);
                }
            }
        }
        None
    }

    fn free_pages(&self) -> u32 {
        HP_PAGES - self.used
    }

    fn released_pages(&self) -> u32 {
        self.released_mask.iter().map(|w| w.count_ones()).sum()
    }
}

/// Counters exposed for Figure 15/16/17 telemetry.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FillerStats {
    /// Pages in live span allocations.
    pub used_pages: u64,
    /// Free pages inside partially-filled hugepages (fragmentation).
    pub free_pages: u64,
    /// Of those free pages, how many are subreleased (not resident).
    pub released_pages: u64,
    /// Tracked (partially-filled) hugepages.
    pub hugepages: u64,
    /// Hugepages ever returned whole to the cache.
    pub freed_whole: u64,
    /// Pages ever subreleased (cumulative).
    pub subreleased_total: u64,
}

/// The hugepage filler.
#[derive(Clone, Debug)]
pub struct HugePageFiller {
    trackers: Vec<Option<PageTracker>>,
    free_ids: Vec<usize>,
    /// Iteration goes through `lists`/`trackers`, never this map.
    // lint:allow(hashmap-decl) keyed by hugepage base; never iterated
    by_hugepage: HashMap<u64, usize>,
    /// `lists[set][lfr]` = tracker ids with that longest free range.
    lists: Vec<Vec<Vec<usize>>>,
    lifetime_aware: bool,
    capacity_threshold: u32,
    freed_whole: u64,
    subreleased_total: u64,
}

impl HugePageFiller {
    /// Creates a filler. With `lifetime_aware`, spans whose capacity is
    /// below `capacity_threshold` (the paper's C = 16) are placed on a
    /// dedicated set of hugepages.
    pub fn new(lifetime_aware: bool, capacity_threshold: u32) -> Self {
        Self {
            trackers: Vec::new(),
            free_ids: Vec::new(),
            by_hugepage: HashMap::new(),
            lists: vec![vec![Vec::new(); HP_PAGES as usize + 1]; 2],
            lifetime_aware,
            capacity_threshold,
            freed_whole: 0,
            subreleased_total: 0,
        }
    }

    fn set_for(&self, span_capacity: u32) -> usize {
        if self.lifetime_aware && span_capacity < self.capacity_threshold {
            1 // Short-lived set
        } else {
            0
        }
    }

    /// The lifetime set a span of the given capacity maps to.
    pub fn lifetime_set_for(&self, span_capacity: u32) -> LifetimeSet {
        if self.set_for(span_capacity) == 1 {
            LifetimeSet::Short
        } else {
            LifetimeSet::Long
        }
    }

    fn tracker(&self, id: usize) -> &PageTracker {
        self.trackers[id].as_ref().expect("stale tracker id")
    }

    fn tracker_mut(&mut self, id: usize) -> &mut PageTracker {
        self.trackers[id].as_mut().expect("stale tracker id")
    }

    fn list_remove(&mut self, id: usize) {
        let (set, lfr, pos) = {
            let t = self.tracker(id);
            (t.set, t.lfr, t.pos as usize)
        };
        let list = &mut self.lists[set][lfr as usize];
        list.swap_remove(pos);
        if pos < list.len() {
            let moved = list[pos];
            self.tracker_mut(moved).pos = pos as u32;
        }
    }

    fn list_insert(&mut self, id: usize) {
        let (set, lfr) = {
            let t = self.tracker(id);
            (t.set, t.longest_free_range())
        };
        let pos = self.lists[set][lfr as usize].len() as u32;
        self.lists[set][lfr as usize].push(id);
        let t = self.tracker_mut(id);
        t.lfr = lfr;
        t.pos = pos;
    }

    fn new_tracker(&mut self, base: u64, set: usize) -> usize {
        let tracker = PageTracker::new(base, set);
        let id = if let Some(id) = self.free_ids.pop() {
            self.trackers[id] = Some(tracker);
            id
        } else {
            self.trackers.push(Some(tracker));
            self.trackers.len() - 1
        };
        self.by_hugepage.insert(base / HUGE_PAGE_BYTES, id);
        id
    }

    /// Allocates `pages` (< 256) for a span of the given capacity.
    /// Returns `(addr, mmapped)` — `mmapped` true when a fresh hugepage came
    /// from the OS.
    ///
    /// # Errors
    ///
    /// Propagates the OS layer's refusal when a fresh hugepage is needed;
    /// filler state is unchanged in that case.
    ///
    /// # Panics
    ///
    /// Panics if `pages` is 0 or ≥ a hugepage.
    pub fn alloc(
        &mut self,
        pages: u32,
        span_capacity: u32,
        cache: &mut HugeCache,
        os: &mut OsLayer,
        bus: &mut EventBus,
    ) -> Result<(u64, bool), AllocError> {
        assert!(
            (1..HP_PAGES).contains(&pages),
            "filler alloc of {pages} pages"
        );
        let set = self.set_for(span_capacity);
        // Baseline policy: smallest longest-free-range that fits, then most
        // allocations within that list.
        let mut chosen: Option<usize> = None;
        for lfr in pages..=HP_PAGES {
            let list = &self.lists[set][lfr as usize];
            if list.is_empty() {
                continue;
            }
            chosen = list
                .iter()
                .copied()
                .max_by_key(|&id| self.tracker(id).allocations);
            break;
        }
        let (id, mmapped) = match chosen {
            Some(id) => (id, false),
            None => {
                let (base, from_os) = cache.alloc_run(1, os, bus)?;
                if !from_os {
                    // Reused address range: fault it back in.
                    os.reoccupy(base, HUGE_PAGE_BYTES);
                    bus.emit(AllocEvent::HugepageFill {
                        base,
                        bytes: HUGE_PAGE_BYTES,
                        reused: true,
                    });
                }
                let id = self.new_tracker(base, set);
                self.list_insert(id);
                (id, from_os)
            }
        };
        self.list_remove(id);
        let t = self.tracker_mut(id);
        let off = t.find_fit(pages).expect("chosen tracker must fit");
        t.set_used(off, pages, true);
        t.allocations += 1;
        t.idle_passes = 0;
        let addr = t.base + off as u64 * TCMALLOC_PAGE_BYTES;
        // Fault back any subreleased pages we just allocated over.
        let mut cleared = 0u32;
        for i in off..off + pages {
            if t.released_bit(i) {
                // lint:allow(panic-surface) i < HP_PAGES: the allocation
                // was just placed inside this tracker's hugepage.
                t.released_mask[i as usize / 64] &= !(1 << (i % 64));
                cleared += 1;
            }
        }
        if cleared > 0 {
            os.reoccupy(addr, pages as u64 * TCMALLOC_PAGE_BYTES);
            bus.emit(AllocEvent::HugepageFill {
                base: addr,
                bytes: pages as u64 * TCMALLOC_PAGE_BYTES,
                reused: true,
            });
        }
        self.list_insert(id);
        Ok((addr, mmapped))
    }

    /// Donates the tail of a large allocation's last hugepage to the filler
    /// (§4.4: "slack ... is then donated to the hugepage filler"). The head
    /// `head_pages` are occupied by the large allocation itself.
    // lint:allow(event-completeness) the owning pageheap emits the
    // SpanAlloc for the large allocation this donation is the tail of;
    // a second event here would double-count the hugepage.
    pub fn donate(&mut self, base: u64, head_pages: u32) {
        assert!(base.is_multiple_of(HUGE_PAGE_BYTES) && (1..HP_PAGES).contains(&head_pages));
        let id = self.new_tracker(base, 0);
        let t = self.tracker_mut(id);
        t.donated = true;
        t.set_used(0, head_pages, true);
        t.allocations = 1;
        self.list_insert(id);
    }

    /// Releases the donated head when its large allocation is freed.
    /// The tracker survives if filler allocations still live on the tail.
    pub fn free_donated_head(
        &mut self,
        base: u64,
        head_pages: u32,
        cache: &mut HugeCache,
        os: &mut OsLayer,
        bus: &mut EventBus,
    ) {
        let id = *self
            .by_hugepage
            .get(&(base / HUGE_PAGE_BYTES))
            .expect("donated hugepage not tracked");
        self.list_remove(id);
        let t = self.tracker_mut(id);
        assert!(t.donated, "hugepage was not donated");
        t.set_used(0, head_pages, false);
        t.allocations -= 1;
        if t.used == 0 {
            self.retire(id, cache, os, bus);
        } else {
            self.list_insert(id);
        }
    }

    /// Returns span pages to the filler. A fully-drained hugepage is
    /// returned *whole* to the hugepage cache (keeping it intact for THP).
    ///
    /// # Panics
    ///
    /// Panics if the range is not a live filler allocation.
    pub fn dealloc(
        &mut self,
        addr: u64,
        pages: u32,
        cache: &mut HugeCache,
        os: &mut OsLayer,
        bus: &mut EventBus,
    ) {
        let hp = addr / HUGE_PAGE_BYTES;
        let id = *self
            .by_hugepage
            .get(&hp)
            // lint:allow(panic-surface) an untracked hugepage here means
            // the pageheap's own bookkeeping is corrupt; abort loudly.
            .unwrap_or_else(|| panic!("dealloc of untracked hugepage {hp:#x}"));
        self.list_remove(id);
        let t = self.tracker_mut(id);
        let off = ((addr % HUGE_PAGE_BYTES) / TCMALLOC_PAGE_BYTES) as u32;
        t.set_used(off, pages, false);
        t.allocations -= 1;
        // Note: a dealloc does NOT reset `idle_passes` — a draining
        // hugepage is the best candidate to eventually release whole.
        if t.used == 0 {
            self.retire(id, cache, os, bus);
        } else {
            self.list_insert(id);
        }
    }

    /// Removes a fully-free tracker. An intact hugepage goes to the cache
    /// for reuse; a *broken* one (subreleased pages, THP backing lost) is
    /// returned to the OS directly — a fresh `mmap` later yields a pristine
    /// hugepage, whereas caching the broken one would strand its holes.
    fn retire(&mut self, id: usize, cache: &mut HugeCache, os: &mut OsLayer, bus: &mut EventBus) {
        let t = self.trackers[id].take().expect("stale tracker id");
        self.free_ids.push(id);
        self.by_hugepage.remove(&(t.base / HUGE_PAGE_BYTES));
        if t.released_pages() > 0 {
            os.munmap(t.base, HUGE_PAGE_BYTES);
            bus.emit(AllocEvent::HugepageRelease {
                base: t.base,
                bytes: HUGE_PAGE_BYTES,
            });
        } else {
            self.freed_whole += 1;
            cache.free_run(t.base, 1, os, bus);
        }
    }

    /// Subreleases up to `target_pages` free pages back to the OS, starting
    /// from the *emptiest* hugepages (highest longest-free-range), skipping
    /// donated hugepages. Breaking a hugepage sacrifices its THP backing,
    /// so a tracker must have been an idle candidate for `grace_passes`
    /// consecutive passes first (adaptive subrelease, Maas et al. \[49\]) — a
    /// is actively draining gets the chance to become completely free and be
    /// released *whole* instead. Returns the number of pages released.
    pub fn subrelease(
        &mut self,
        target_pages: u64,
        grace_passes: u8,
        os: &mut OsLayer,
        bus: &mut EventBus,
    ) -> u64 {
        let mut released = 0u64;
        // Short-set hugepages (set 1) get an 8x longer grace: they exist
        // precisely because they drain completely and release *whole*, and
        // breaking one just before it drains destroys that benefit. The
        // price is that holes pinned by a mispredicted long-lived span stay
        // resident longer — negligible against production heaps, visible at
        // simulation scale (see EXPERIMENTS.md).
        'outer: for set in 0..self.lists.len() {
            let required = if set == 0 {
                grace_passes
            } else {
                grace_passes.saturating_mul(8).max(8)
            };
            for lfr in (1..=HP_PAGES as usize).rev() {
                // Collect ids first: subreleasing does not move lists
                // (used_mask is untouched), so iteration stays valid.
                let ids: Vec<usize> = self.lists[set][lfr].clone();
                for id in ids {
                    if released >= target_pages {
                        break 'outer;
                    }
                    {
                        let t = self.tracker_mut(id);
                        if t.idle_passes < required {
                            t.idle_passes = t.idle_passes.saturating_add(1);
                            continue;
                        }
                    }
                    let budget = (target_pages - released) as u32;
                    let (base, to_release) = {
                        let t = self.tracker_mut(id);
                        if t.donated {
                            continue;
                        }
                        // Release free, not-yet-released pages up to budget.
                        let mut pages_left = budget;
                        let mut run: Option<(u32, u32)> = None;
                        let mut to_release: Vec<(u32, u32)> = Vec::new();
                        for i in 0..HP_PAGES {
                            if pages_left == 0 {
                                break;
                            }
                            if !t.used_bit(i) && !t.released_bit(i) {
                                match run {
                                    Some((s, ref mut n)) if s + *n == i => *n += 1,
                                    _ => {
                                        if let Some(r) = run.take() {
                                            to_release.push(r);
                                        }
                                        run = Some((i, 1));
                                    }
                                }
                                pages_left -= 1;
                            } else if let Some(r) = run.take() {
                                to_release.push(r);
                            }
                        }
                        if let Some(r) = run {
                            to_release.push(r);
                        }
                        (t.base, to_release)
                    };
                    for (s, n) in to_release {
                        // Commit the released bits only after the kernel
                        // accepted the madvise — a failed subrelease leaves
                        // the pages resident, and marking them released
                        // anyway would break conservation (resident ==
                        // live + fragmentation).
                        if os
                            .subrelease(
                                base + s as u64 * TCMALLOC_PAGE_BYTES,
                                n as u64 * TCMALLOC_PAGE_BYTES,
                                bus,
                            )
                            .is_err()
                        {
                            // Flaky madvise: skipped this pass, retried on
                            // the next one.
                            continue;
                        }
                        let t = self.tracker_mut(id);
                        for i in s..s + n {
                            // lint:allow(panic-surface) s + n <= HP_PAGES:
                            // free ranges never cross a hugepage.
                            t.released_mask[i as usize / 64] |= 1 << (i % 64);
                        }
                        bus.emit(AllocEvent::HugepageBreak {
                            base: base + s as u64 * TCMALLOC_PAGE_BYTES,
                            bytes: n as u64 * TCMALLOC_PAGE_BYTES,
                        });
                        released += n as u64;
                        self.subreleased_total += n as u64;
                    }
                }
            }
        }
        released
    }

    /// Current counters.
    pub fn stats(&self) -> FillerStats {
        let mut s = FillerStats {
            freed_whole: self.freed_whole,
            subreleased_total: self.subreleased_total,
            ..FillerStats::default()
        };
        for t in self.trackers.iter().flatten() {
            s.used_pages += t.used as u64;
            s.free_pages += t.free_pages() as u64;
            s.released_pages += t.released_pages() as u64;
            s.hugepages += 1;
        }
        s
    }

    /// Bytes in live filler allocations.
    pub fn used_bytes(&self) -> u64 {
        self.stats().used_pages * TCMALLOC_PAGE_BYTES
    }

    /// Resident free bytes inside tracked hugepages (the filler's
    /// fragmentation contribution, Figure 15).
    pub fn free_resident_bytes(&self) -> u64 {
        let s = self.stats();
        (s.free_pages - s.released_pages) * TCMALLOC_PAGE_BYTES
    }

    /// Per-hugepage page accounting for the sanitizer's backing audit:
    /// `(base, used, free, released, used_and_released)` per tracker.
    pub fn hugepage_accounting(&self) -> Vec<(u64, u32, u32, u32, u32)> {
        self.trackers
            .iter()
            .flatten()
            .map(|t| {
                let overlap = t
                    .used_mask
                    .iter()
                    .zip(&t.released_mask)
                    .map(|(u, r)| (u & r).count_ones())
                    .sum();
                (t.base, t.used, t.free_pages(), t.released_pages(), overlap)
            })
            .collect()
    }

    /// Number of live allocations per tracked hugepage (for telemetry).
    pub fn allocations_per_hugepage(&self) -> Vec<u32> {
        self.trackers
            .iter()
            .flatten()
            .map(|t| t.allocations)
            .collect()
    }
}

#[cfg(test)]
// Tests may unwrap: a panic IS the failure report here.
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::config::TcmallocConfig;
    use wsc_sim_hw::cost::CostModel;
    use wsc_sim_os::clock::Clock;

    fn setup() -> (HugePageFiller, HugeCache, OsLayer, EventBus) {
        (
            HugePageFiller::new(false, 16),
            HugeCache::new(0), // no caching: frees go straight to the OS
            OsLayer::infallible(),
            EventBus::new(
                &TcmallocConfig::baseline(),
                CostModel::production(),
                Clock::new(),
            ),
        )
    }

    #[test]
    fn first_alloc_mmaps_then_packs() {
        let (mut f, mut c, mut os, mut b) = setup();
        let (a, mmapped) = f.alloc(10, 100, &mut c, &mut os, &mut b).unwrap();
        assert!(mmapped);
        let (b2, mmapped2) = f.alloc(10, 100, &mut c, &mut os, &mut b).unwrap();
        assert!(!mmapped2, "same hugepage reused");
        assert_eq!(b2, a + 10 * TCMALLOC_PAGE_BYTES);
        assert_eq!(f.stats().hugepages, 1);
        assert_eq!(f.stats().used_pages, 20);
    }

    #[test]
    fn dense_packing_prefers_fullest() {
        let (mut f, mut c, mut os, mut b) = setup();
        // Build two hugepages: a dense one (251/256 used, lfr 5) and a
        // sparse one (100/256 used, lfr 156).
        let (a1, _) = f.alloc(200, 100, &mut c, &mut os, &mut b).unwrap();
        let (a2, _) = f.alloc(251, 100, &mut c, &mut os, &mut b).unwrap(); // no fit on hp1 -> hp2
        let (_a3, _) = f.alloc(30, 100, &mut c, &mut os, &mut b).unwrap(); // hp1: 230 used
        f.dealloc(a1, 200, &mut c, &mut os, &mut b); // hp1: 30 used, sparse
                                                     // A 4-page request must go to the dense hp2 (smallest fitting lfr).
        let (a4, mm) = f.alloc(4, 100, &mut c, &mut os, &mut b).unwrap();
        assert!(!mm);
        assert_eq!(a4 / HUGE_PAGE_BYTES, a2 / HUGE_PAGE_BYTES);
    }

    #[test]
    fn drained_hugepage_returns_whole() {
        let (mut f, mut c, mut os, mut b) = setup();
        let (a, _) = f.alloc(50, 100, &mut c, &mut os, &mut b).unwrap();
        let (b2, _) = f.alloc(60, 100, &mut c, &mut os, &mut b).unwrap();
        f.dealloc(a, 50, &mut c, &mut os, &mut b);
        assert_eq!(f.stats().hugepages, 1);
        f.dealloc(b2, 60, &mut c, &mut os, &mut b);
        assert_eq!(f.stats().hugepages, 0);
        assert_eq!(f.stats().freed_whole, 1);
        // Cache limit 0 → hugepage munmapped back to the OS intact.
        assert_eq!(os.vmm().mapped_bytes(), 0);
        assert_eq!(os.stats().madvise_calls, 0, "no subrelease needed");
    }

    #[test]
    fn lifetime_sets_segregate() {
        let mut f = HugePageFiller::new(true, 16);
        let (_, mut c, mut os, mut b) = setup();
        // capacity 512 (small objects, long-lived) vs capacity 1 (huge
        // objects, short-lived) must land on different hugepages.
        let (a, _) = f.alloc(4, 512, &mut c, &mut os, &mut b).unwrap();
        let (b2, _) = f.alloc(4, 1, &mut c, &mut os, &mut b).unwrap();
        assert_ne!(a / HUGE_PAGE_BYTES, b2 / HUGE_PAGE_BYTES);
        assert_eq!(f.lifetime_set_for(512), LifetimeSet::Long);
        assert_eq!(f.lifetime_set_for(1), LifetimeSet::Short);
        assert_eq!(f.stats().hugepages, 2);
    }

    #[test]
    fn baseline_mixes_capacities() {
        let (mut f, mut c, mut os, mut b) = setup();
        let (a, _) = f.alloc(4, 512, &mut c, &mut os, &mut b).unwrap();
        let (b2, _) = f.alloc(4, 1, &mut c, &mut os, &mut b).unwrap();
        assert_eq!(a / HUGE_PAGE_BYTES, b2 / HUGE_PAGE_BYTES, "baseline shares");
    }

    #[test]
    fn donation_and_head_free() {
        let (mut f, mut c, mut os, mut b) = setup();
        let base = os.mmap(HUGE_PAGE_BYTES, &mut b).unwrap();
        f.donate(base, 64);
        assert_eq!(f.stats().used_pages, 64);
        // Filler can allocate from the donated tail.
        let (a, mm) = f.alloc(10, 100, &mut c, &mut os, &mut b).unwrap();
        assert!(!mm);
        assert_eq!(a / HUGE_PAGE_BYTES, base / HUGE_PAGE_BYTES);
        // Free the head; tracker survives because of the tail allocation.
        f.free_donated_head(base, 64, &mut c, &mut os, &mut b);
        assert_eq!(f.stats().hugepages, 1);
        f.dealloc(a, 10, &mut c, &mut os, &mut b);
        assert_eq!(f.stats().hugepages, 0);
    }

    #[test]
    fn subrelease_breaks_hugepages_and_frees_ram() {
        let (mut f, mut c, mut os, mut b) = setup();
        let (a, _) = f.alloc(50, 100, &mut c, &mut os, &mut b).unwrap();
        let _keep = f.alloc(6, 100, &mut c, &mut os, &mut b).unwrap();
        f.dealloc(a, 50, &mut c, &mut os, &mut b);
        let resident_before = os.page_table().resident_bytes();
        let released = f.subrelease(1000, 0, &mut os, &mut b);
        assert_eq!(released, 250, "all free pages released");
        assert_eq!(
            os.page_table().resident_bytes(),
            resident_before - 250 * TCMALLOC_PAGE_BYTES
        );
        assert!(!os.page_table().is_huge_backed(a), "hugepage broken");
        // Released pages remain allocatable; realloc faults them back.
        let (b2, mm) = f.alloc(50, 100, &mut c, &mut os, &mut b).unwrap();
        assert!(!mm);
        assert_eq!(b2 / HUGE_PAGE_BYTES, a / HUGE_PAGE_BYTES);
        assert!(os.page_table().resident_bytes() > resident_before - 250 * TCMALLOC_PAGE_BYTES);
        // The remaining free pages are all already released: nothing to do.
        assert_eq!(f.subrelease(1000, 0, &mut os, &mut b), 0);
    }

    #[test]
    fn subrelease_skips_donated() {
        let (mut f, _c, mut os, mut b) = setup();
        let base = os.mmap(HUGE_PAGE_BYTES, &mut b).unwrap();
        f.donate(base, 64);
        assert_eq!(f.subrelease(1000, 0, &mut os, &mut b), 0);
        assert!(os.page_table().is_huge_backed(base));
    }

    #[test]
    #[should_panic(expected = "untracked hugepage")]
    fn foreign_dealloc_panics() {
        let (mut f, mut c, mut os, mut b) = setup();
        f.dealloc(0x123 * HUGE_PAGE_BYTES, 1, &mut c, &mut os, &mut b);
    }

    #[test]
    fn stats_consistency() {
        let (mut f, mut c, mut os, mut b) = setup();
        let (_a, _) = f.alloc(100, 32, &mut c, &mut os, &mut b).unwrap();
        let (_b, _) = f.alloc(30, 32, &mut c, &mut os, &mut b).unwrap();
        let s = f.stats();
        assert_eq!(s.used_pages + s.free_pages, s.hugepages * HP_PAGES as u64);
        assert_eq!(f.used_bytes(), 130 * TCMALLOC_PAGE_BYTES);
        assert_eq!(
            f.free_resident_bytes(),
            (s.hugepages * 256 - 130) * TCMALLOC_PAGE_BYTES
        );
    }
}
