//! The hugepage-aware pageheap (§4.4): back-end of the allocator.
//!
//! Requests are dispatched to three components (Figure 15):
//!
//! * [`filler::HugePageFiller`] — anything smaller than a hugepage,
//! * [`region::HugeRegionSet`] — allocations that slightly exceed a
//!   hugepage (e.g. 2.1 MiB) which would otherwise strand large slack,
//! * [`cache::HugeCache`] — hugepage-multiple allocations; the unused tail
//!   of the last hugepage is *donated* to the filler.
//!
//! The pageheap periodically releases memory to the OS "either by releasing
//! hugepages that are completely free, or by breaking partially-filled
//! hugepages into smaller pages and subreleasing them" (§2.1) — the former
//! preserves hugepage coverage, the latter sacrifices it.

pub mod cache;
pub mod filler;
mod origin;
pub mod os;
pub mod region;

use crate::events::{AllocEvent, EventBus};
use cache::HugeCache;
use filler::HugePageFiller;
use origin::{Origin, OriginTable};
pub use os::{AllocError, OsLayer};
use region::HugeRegionSet;
use wsc_sim_hw::cost::AllocPath;
use wsc_sim_os::addr::{HUGE_PAGE_BYTES, TCMALLOC_PAGES_PER_HUGE, TCMALLOC_PAGE_BYTES};
use wsc_sim_os::vmm::Vmm;

const HP_PAGES: u64 = TCMALLOC_PAGES_PER_HUGE; // 256

/// Pageheap policy knobs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PageHeapConfig {
    /// Enable the §4.4 lifetime-aware filler.
    pub lifetime_aware_filler: bool,
    /// The capacity threshold C separating short- from long-lived spans.
    pub capacity_threshold: u32,
    /// HugeCache bound; fully-free hugepages beyond this are unmapped.
    pub cache_limit_bytes: u64,
    /// Background release triggers when resident free filler pages exceed
    /// this many TCMalloc pages.
    pub free_pages_threshold: u64,
    /// Maximum pages subreleased per background pass (gradual release,
    /// §3: "TCMalloc prioritizes keeping hugepages intact by releasing
    /// memory gradually").
    pub release_rate_pages: u64,
    /// Release passes a hugepage must sit idle before it may be broken
    /// (adaptive subrelease, Maas et al. \[49\]).
    pub subrelease_grace_passes: u8,
}

impl Default for PageHeapConfig {
    fn default() -> Self {
        Self {
            lifetime_aware_filler: false,
            capacity_threshold: 16,
            cache_limit_bytes: 16 << 20,
            // Memory-pressure regime: the fleet runs hot, so free pages are
            // returned to the OS promptly — the continuous gradual release
            // that erodes hugepage coverage in the §4.4 baseline.
            free_pages_threshold: 128, // 1 MiB of idle filler pages
            release_rate_pages: 4096,  // 32 MiB per pass
            subrelease_grace_passes: 1,
        }
    }
}

/// Component-level usage snapshot (Figure 15).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PageHeapStats {
    /// Live bytes placed by the filler.
    pub filler_used_bytes: u64,
    /// Resident free bytes stranded in partially-filled hugepages.
    pub filler_free_bytes: u64,
    /// Live bytes placed in hugepage regions.
    pub region_used_bytes: u64,
    /// Free bytes inside mapped regions.
    pub region_free_bytes: u64,
    /// Live bytes in hugepage-multiple (cache-served) allocations.
    pub large_used_bytes: u64,
    /// Bytes of fully-free hugepages held in the cache.
    pub cache_bytes: u64,
}

impl PageHeapStats {
    /// Total resident free (fragmented) bytes in the pageheap.
    pub fn total_free_bytes(&self) -> u64 {
        self.filler_free_bytes + self.region_free_bytes + self.cache_bytes
    }

    /// Total live bytes the pageheap has placed.
    pub fn total_used_bytes(&self) -> u64 {
        self.filler_used_bytes + self.region_used_bytes + self.large_used_bytes
    }
}

/// The hugepage-aware pageheap.
///
/// # Example
///
/// ```
/// use wsc_tcmalloc::pageheap::{PageHeap, PageHeapConfig};
/// # use wsc_tcmalloc::{config::TcmallocConfig, events::EventBus};
/// # use wsc_sim_hw::cost::CostModel;
/// # use wsc_sim_os::clock::Clock;
/// # let mut bus = EventBus::new(
/// #     &TcmallocConfig::baseline(), CostModel::production(), Clock::new());
///
/// let mut ph = PageHeap::new(PageHeapConfig::default());
/// let (addr, _path) = ph.alloc(4, 512, &mut bus).expect("infallible kernel");
/// ph.dealloc(addr, 4, &mut bus);
/// ```
#[derive(Clone, Debug)]
pub struct PageHeap {
    os: OsLayer,
    filler: HugePageFiller,
    region: HugeRegionSet,
    cache: HugeCache,
    origin: OriginTable,
    cfg: PageHeapConfig,
    large_used_pages: u64,
}

/// Release-and-retry attempts after a refused backing request before the
/// failure is surfaced as an [`AllocError`] (bounded backoff: each retry is
/// preceded by a synchronous emergency release).
const ENOMEM_RETRIES: u32 = 3;

impl PageHeap {
    /// Creates a pageheap on an infallible, unlimited kernel.
    pub fn new(cfg: PageHeapConfig) -> Self {
        Self::with_kernel(cfg, OsLayer::infallible())
    }

    /// Creates a pageheap on the given OS layer (fault plan and/or hard
    /// limit attached).
    pub fn with_kernel(cfg: PageHeapConfig, os: OsLayer) -> Self {
        Self {
            os,
            filler: HugePageFiller::new(cfg.lifetime_aware_filler, cfg.capacity_threshold),
            region: HugeRegionSet::new(),
            cache: HugeCache::new(cfg.cache_limit_bytes),
            origin: OriginTable::default(),
            cfg,
            large_used_pages: 0,
        }
    }

    /// Allocates `pages` TCMalloc pages for a span whose class capacity is
    /// `span_capacity` (large allocations pass 1). Returns the address and
    /// the deepest path hit ([`AllocPath::Mmap`] when the OS was involved,
    /// [`AllocPath::PageHeap`] otherwise). Emits one placement event
    /// ([`AllocEvent::FillerPlace`], [`AllocEvent::RegionPlace`], or
    /// [`AllocEvent::CachePlace`]) plus any OS-boundary events the chosen
    /// component produces.
    ///
    /// When the OS refuses a backing request (injected ENOMEM or the hard
    /// limit), the pageheap synchronously releases everything it can spare
    /// — the hugepage cache, then the filler's free tails — and retries, up
    /// to [`ENOMEM_RETRIES`] times (each retry emits one
    /// [`AllocEvent::ReleaseRetry`]).
    ///
    /// # Errors
    ///
    /// The final refusal is returned as the [`AllocError`] of the last
    /// attempt; pageheap state is consistent (nothing placed).
    ///
    /// # Panics
    ///
    /// Panics if `pages` is zero.
    pub fn alloc(
        &mut self,
        pages: u32,
        span_capacity: u32,
        bus: &mut EventBus,
    ) -> Result<(u64, AllocPath), AllocError> {
        assert!(pages > 0, "zero-page allocation");
        let mut attempt = 0u32;
        loop {
            match self.place(pages, span_capacity, bus) {
                Ok(placed) => return Ok(placed),
                Err(err) => {
                    if attempt >= ENOMEM_RETRIES {
                        return Err(err);
                    }
                    attempt += 1;
                    let released_bytes = self.emergency_release(bus);
                    bus.emit(AllocEvent::ReleaseRetry {
                        attempt,
                        released_bytes,
                    });
                    // Against a hard limit, a retry without reclaimed bytes
                    // cannot succeed; injected ENOMEM is transient, so the
                    // bounded retry stands on its own.
                    if released_bytes == 0 && matches!(err, AllocError::HardLimit { .. }) {
                        return Err(err);
                    }
                }
            }
        }
    }

    /// One placement attempt (no retry).
    fn place(
        &mut self,
        pages: u32,
        span_capacity: u32,
        bus: &mut EventBus,
    ) -> Result<(u64, AllocPath), AllocError> {
        let (addr, mmapped, origin) = if (pages as u64) < HP_PAGES {
            let (addr, mm) =
                self.filler
                    .alloc(pages, span_capacity, &mut self.cache, &mut self.os, bus)?;
            bus.emit(AllocEvent::FillerPlace { addr, pages });
            (addr, mm, Origin::Filler { pages })
        } else if (pages as u64) > HP_PAGES && (pages as u64) < 2 * HP_PAGES {
            let (addr, mm) = self.region.alloc(pages, &mut self.os, bus)?;
            bus.emit(AllocEvent::RegionPlace { addr, pages });
            (addr, mm, Origin::Region { pages })
        } else {
            let hp = (pages as u64).div_ceil(HP_PAGES);
            let (addr, from_os) = self.cache.alloc_run(hp, &mut self.os, bus)?;
            if !from_os {
                self.os.reoccupy(addr, hp * HUGE_PAGE_BYTES);
                bus.emit(AllocEvent::HugepageFill {
                    base: addr,
                    bytes: hp * HUGE_PAGE_BYTES,
                    reused: true,
                });
            }
            let tail = (hp * HP_PAGES - pages as u64) as u32;
            if tail > 0 {
                let last_hp = addr + (hp - 1) * HUGE_PAGE_BYTES;
                self.filler.donate(last_hp, HP_PAGES as u32 - tail);
            }
            self.large_used_pages += pages as u64;
            bus.emit(AllocEvent::CachePlace { addr, pages });
            (addr, from_os, Origin::Large { pages, tail })
        };
        // Invariant, not resource exhaustion: two live spans at one address
        // mean corrupted bookkeeping, so this must stay fatal.
        let fresh = self.origin.insert(addr, origin);
        assert!(fresh, "pageheap double allocation at {addr:#x}");
        let path = if mmapped {
            AllocPath::Mmap
        } else {
            AllocPath::PageHeap
        };
        Ok((addr, path))
    }

    /// Returns `pages` at `addr` (as handed out by [`alloc`](Self::alloc)).
    ///
    /// # Panics
    ///
    /// Panics if the range is not a live pageheap allocation or the length
    /// mismatches.
    pub fn dealloc(&mut self, addr: u64, pages: u32, bus: &mut EventBus) {
        let origin = self
            .origin
            .remove(addr)
            // lint:allow(panic-surface) documented panic: an unknown range
            // is caller heap corruption, and the sanitizer intercepts
            // invalid frees before they descend this far.
            .unwrap_or_else(|| panic!("pageheap dealloc of unknown range {addr:#x}"));
        match origin {
            Origin::Filler { pages: p } => {
                // Invariant asserts: a length mismatch is caller corruption
                // (free with the wrong size), never an OOM-reachable state.
                assert_eq!(p, pages, "filler dealloc length mismatch");
                self.filler
                    .dealloc(addr, pages, &mut self.cache, &mut self.os, bus);
            }
            Origin::Region { pages: p } => {
                assert_eq!(p, pages, "region dealloc length mismatch");
                self.region.dealloc(addr, pages, &mut self.os, bus);
            }
            Origin::Large { pages: p, tail } => {
                assert_eq!(p, pages, "large dealloc length mismatch");
                let hp = (pages as u64).div_ceil(HP_PAGES);
                self.large_used_pages -= pages as u64;
                if tail > 0 {
                    let full = hp - 1;
                    if full > 0 {
                        self.cache.free_run(addr, full, &mut self.os, bus);
                    }
                    self.filler.free_donated_head(
                        addr + full * HUGE_PAGE_BYTES,
                        HP_PAGES as u32 - tail,
                        &mut self.cache,
                        &mut self.os,
                        bus,
                    );
                } else {
                    self.cache.free_run(addr, hp, &mut self.os, bus);
                }
            }
        }
    }

    /// Background release pass (§2.1): fully-free hugepages already went to
    /// the bounded cache; when resident free pages stranded in the filler
    /// exceed the threshold, subrelease up to the configured rate. Also runs
    /// the khugepaged re-promotion pass over denied-backing hugepages, so
    /// coverage recovers once THP pressure clears.
    /// Returns bytes released this pass.
    pub fn background_release(&mut self, bus: &mut EventBus) -> u64 {
        self.os.promote_denied(bus);
        let stats = self.filler.stats();
        let resident_free = stats.free_pages - stats.released_pages;
        if resident_free <= self.cfg.free_pages_threshold {
            return 0;
        }
        let excess = resident_free - self.cfg.free_pages_threshold;
        let target = excess.min(self.cfg.release_rate_pages);
        self.filler
            .subrelease(target, self.cfg.subrelease_grace_passes, &mut self.os, bus)
            * TCMALLOC_PAGE_BYTES
    }

    /// Soft-limit enforcement (TCMalloc semantics): when resident bytes
    /// exceed `limit`, synchronously release free memory back toward it with
    /// bounded backoff — whole cached hugepages first (coverage-preserving),
    /// then filler subrelease. Emits one [`AllocEvent::LimitHit`] with
    /// `hard: false` plus one [`AllocEvent::ReleaseRetry`] per attempt.
    /// Returns bytes released.
    pub fn enforce_soft_limit(&mut self, limit: u64, bus: &mut EventBus) -> u64 {
        let resident = self.os.page_table().resident_bytes();
        if resident <= limit {
            return 0;
        }
        bus.emit(AllocEvent::LimitHit {
            hard: false,
            resident,
            limit,
        });
        let mut total = 0u64;
        for attempt in 1..=ENOMEM_RETRIES {
            let excess = self.os.page_table().resident_bytes().saturating_sub(limit);
            if excess == 0 {
                break;
            }
            let mut released =
                self.cache
                    .release_upto(excess.div_ceil(HUGE_PAGE_BYTES), &mut self.os, bus)
                    * HUGE_PAGE_BYTES;
            let excess = self.os.page_table().resident_bytes().saturating_sub(limit);
            if excess > 0 {
                released += self.filler.subrelease(
                    excess.div_ceil(TCMALLOC_PAGE_BYTES),
                    0, // soft-limit pressure overrides the subrelease grace
                    &mut self.os,
                    bus,
                ) * TCMALLOC_PAGE_BYTES;
            }
            bus.emit(AllocEvent::ReleaseRetry {
                attempt,
                released_bytes: released,
            });
            total += released;
            if released == 0 {
                break; // nothing left to give back
            }
        }
        total
    }

    /// Emergency synchronous release on a refused backing request: drop the
    /// whole hugepage cache, then subrelease every free filler page
    /// (grace-free — staying alive beats preserving THP backing). Returns
    /// bytes released.
    fn emergency_release(&mut self, bus: &mut EventBus) -> u64 {
        let cached = self.cache.cached_bytes();
        self.cache.release_all(&mut self.os, bus);
        cached + self.filler.subrelease(u64::MAX, 0, &mut self.os, bus) * TCMALLOC_PAGE_BYTES
    }

    /// Component-level snapshot (Figure 15).
    pub fn stats(&self) -> PageHeapStats {
        PageHeapStats {
            filler_used_bytes: self.filler.used_bytes(),
            filler_free_bytes: self.filler.free_resident_bytes(),
            region_used_bytes: self.region.used_bytes(),
            region_free_bytes: self.region.free_bytes(),
            large_used_bytes: self.large_used_pages * TCMALLOC_PAGE_BYTES,
            cache_bytes: self.cache.cached_bytes(),
        }
    }

    /// The filler (telemetry access).
    pub fn filler(&self) -> &HugePageFiller {
        &self.filler
    }

    /// The underlying virtual memory manager (read-only).
    pub fn vmm(&self) -> &Vmm {
        self.os.vmm()
    }

    /// The OS boundary layer (degradation state, fault counters).
    pub fn os(&self) -> &OsLayer {
        &self.os
    }

    /// The active configuration.
    pub fn config(&self) -> &PageHeapConfig {
        &self.cfg
    }
}

#[cfg(test)]
// Tests may unwrap: a panic IS the failure report here.
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::config::TcmallocConfig;
    use wsc_sim_hw::cost::CostModel;
    use wsc_sim_os::clock::Clock;

    fn heap() -> (PageHeap, EventBus) {
        (
            PageHeap::new(PageHeapConfig::default()),
            EventBus::new(
                &TcmallocConfig::baseline(),
                CostModel::production(),
                Clock::new(),
            ),
        )
    }

    #[test]
    fn small_goes_to_filler() {
        let (mut ph, mut bus) = heap();
        let (addr, path) = ph.alloc(10, 512, &mut bus).unwrap();
        assert_eq!(path, AllocPath::Mmap, "cold heap touches the OS");
        let (addr2, path2) = ph.alloc(10, 512, &mut bus).unwrap();
        assert_eq!(path2, AllocPath::PageHeap, "warm filler");
        assert_eq!(addr / HUGE_PAGE_BYTES, addr2 / HUGE_PAGE_BYTES);
        let s = ph.stats();
        assert_eq!(s.filler_used_bytes, 20 * TCMALLOC_PAGE_BYTES);
    }

    #[test]
    fn mid_size_goes_to_region() {
        let (mut ph, mut bus) = heap();
        // 2.1 MiB ≈ 269 pages.
        let (_addr, _) = ph.alloc(269, 1, &mut bus).unwrap();
        let s = ph.stats();
        assert_eq!(s.region_used_bytes, 269 * TCMALLOC_PAGE_BYTES);
        assert_eq!(s.filler_used_bytes, 0);
    }

    #[test]
    fn large_with_donation() {
        let (mut ph, mut bus) = heap();
        // 4.5 MiB = 576 pages = 3 hugepages with a 192-page donated tail
        // (the paper's own example: 1.5 MB slack from a 4.5 MB allocation).
        let (addr, _) = ph.alloc(576, 1, &mut bus).unwrap();
        let s = ph.stats();
        assert_eq!(s.large_used_bytes, 576 * TCMALLOC_PAGE_BYTES);
        // Donated tail shows up as filler free space.
        assert_eq!(s.filler_free_bytes, 192 * TCMALLOC_PAGE_BYTES);
        // The filler can place a span on the donated tail.
        let (span_addr, path) = ph.alloc(20, 512, &mut bus).unwrap();
        assert_eq!(path, AllocPath::PageHeap);
        assert_eq!(
            span_addr / HUGE_PAGE_BYTES,
            (addr + 2 * HUGE_PAGE_BYTES) / HUGE_PAGE_BYTES
        );
        // Free the large allocation; the donated hugepage survives.
        ph.dealloc(addr, 576, &mut bus);
        assert_eq!(ph.stats().large_used_bytes, 0);
        ph.dealloc(span_addr, 20, &mut bus);
    }

    #[test]
    fn exact_hugepage_no_donation() {
        let (mut ph, mut bus) = heap();
        let (addr, _) = ph.alloc(256, 1, &mut bus).unwrap();
        assert_eq!(ph.stats().filler_free_bytes, 0, "no tail to donate");
        ph.dealloc(addr, 256, &mut bus);
        // Freed run parks in the cache (within limit) rather than unmapping.
        assert_eq!(ph.stats().cache_bytes, HUGE_PAGE_BYTES);
    }

    #[test]
    fn cache_reuse_after_large_free() {
        let (mut ph, mut bus) = heap();
        let (a, _) = ph.alloc(512, 1, &mut bus).unwrap();
        ph.dealloc(a, 512, &mut bus);
        let (b, path) = ph.alloc(512, 1, &mut bus).unwrap();
        assert_eq!(path, AllocPath::PageHeap, "served from hugepage cache");
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "unknown range")]
    fn unknown_dealloc_panics() {
        let (mut ph, mut bus) = heap();
        ph.dealloc(0x1000, 1, &mut bus);
    }

    #[test]
    fn background_release_respects_threshold_and_rate() {
        let mut ph = PageHeap::new(PageHeapConfig {
            free_pages_threshold: 100,
            release_rate_pages: 50,
            subrelease_grace_passes: 0,
            ..PageHeapConfig::default()
        });
        let (_, mut bus) = heap();
        // Strand ~250 free pages in one hugepage.
        let (a, _) = ph.alloc(250, 512, &mut bus).unwrap();
        let (b, _) = ph.alloc(5, 512, &mut bus).unwrap();
        ph.dealloc(a, 250, &mut bus);
        let released = ph.background_release(&mut bus);
        assert_eq!(released, 50 * TCMALLOC_PAGE_BYTES, "rate-limited");
        // Eventually it stops at the threshold.
        let mut total = released;
        for _ in 0..10 {
            total += ph.background_release(&mut bus);
        }
        let s = ph.filler.stats();
        assert!(s.free_pages - s.released_pages >= 100);
        assert!(total > 0);
        ph.dealloc(b, 5, &mut bus);
    }

    #[test]
    fn stats_components_are_disjoint() {
        let (mut ph, mut bus) = heap();
        let (_f, _) = ph.alloc(10, 512, &mut bus).unwrap();
        let (_r, _) = ph.alloc(300, 1, &mut bus).unwrap();
        let (_l, _) = ph.alloc(512, 1, &mut bus).unwrap();
        let s = ph.stats();
        assert!(s.filler_used_bytes > 0);
        assert!(s.region_used_bytes > 0);
        assert!(s.large_used_bytes > 0);
        assert_eq!(s.total_used_bytes(), (10 + 300 + 512) * TCMALLOC_PAGE_BYTES);
    }
}
