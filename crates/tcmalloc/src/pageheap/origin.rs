//! Page-indexed origin tracker: which pageheap component placed each live
//! range, without a hash map on the dealloc path.
//!
//! Every pageheap deallocation must recover *where* the range came from
//! (filler / region / hugepage cache) from its base address alone. The
//! retired implementation probed a `HashMap<u64, Origin>` per call; this
//! tracker is arena-shaped like the rest of the metadata path: a flat,
//! chunk-aligned window of per-page slots (same windowing discipline as the
//! pagemap, growing in whole chunks both directions over the observed page
//! range) pointing into a dense slab of [`Origin`] records with free-index
//! recycling. Insert and remove are index arithmetic plus one slab access —
//! no hashing, no per-op allocation once the window is warm.

use wsc_sim_os::addr::tcmalloc_page_index;

/// Sentinel marking a page with no origin record.
const EMPTY: u32 = u32::MAX;

/// log2 of the pages per window-growth chunk (32 768 pages = 256 MiB,
/// matching the pagemap's leaf/segment granularity).
const CHUNK_BITS: u32 = 15;

/// Pages per window-growth chunk.
const CHUNK_PAGES: u64 = 1 << CHUNK_BITS;

/// Ceiling on the window, in chunks (1 TiB of address-space spread; more
/// indicates corruption, not a bigger heap).
const MAX_WINDOW_CHUNKS: u64 = 1 << 12;

/// Which pageheap component placed a range, and its extent.
#[derive(Clone, Copy, Debug)]
pub(super) enum Origin {
    /// Placed by the hugepage filler.
    Filler {
        /// Length in TCMalloc pages.
        pages: u32,
    },
    /// Placed in a hugepage region.
    Region {
        /// Length in TCMalloc pages.
        pages: u32,
    },
    /// Hugepage-multiple allocation served by the cache.
    Large {
        /// Length in TCMalloc pages.
        pages: u32,
        /// Donated tail pages in the final hugepage (0 = none).
        tail: u32,
    },
}

/// The page-indexed origin store.
#[derive(Clone, Debug, Default)]
pub(super) struct OriginTable {
    /// Per-page record indices for the covered window; `EMPTY` = none.
    slots: Vec<u32>,
    /// First page of the window, aligned to [`CHUNK_PAGES`]; meaningful
    /// once `slots` is non-empty.
    base_page: u64,
    /// Dense record slab, indexed by slot values.
    recs: Vec<Origin>,
    /// Recyclable slab indices.
    free_recs: Vec<u32>,
}

impl OriginTable {
    /// Grows the window (whole chunks, either direction) to cover `page`.
    // lint:allow(event-completeness) index maintenance; the pageheap emits
    // the placement events covering these ranges.
    fn ensure(&mut self, page: u64) {
        let lo = page & !(CHUNK_PAGES - 1);
        if self.slots.is_empty() {
            self.base_page = lo;
        }
        let new_lo = lo.min(self.base_page);
        let new_hi = (lo + CHUNK_PAGES).max(self.base_page + self.slots.len() as u64);
        assert!(
            (new_hi - new_lo) >> CHUNK_BITS <= MAX_WINDOW_CHUNKS,
            "origin table window blow-up"
        );
        if new_lo < self.base_page {
            let grow = (self.base_page - new_lo) as usize;
            let mut fresh = vec![EMPTY; grow + self.slots.len()];
            // lint:allow(panic-surface) fresh was sized grow + len one
            // line up.
            fresh[grow..].copy_from_slice(&self.slots);
            self.slots = fresh;
            self.base_page = new_lo;
        }
        let want = (new_hi - self.base_page) as usize;
        if want > self.slots.len() {
            self.slots.resize(want, EMPTY);
        }
    }

    /// Records `origin` for the range based at `addr`. Returns `false` if
    /// the base page already carried a record (the caller's
    /// double-allocation invariant), leaving the table unchanged.
    #[must_use]
    // lint:allow(event-completeness) index maintenance; the pageheap emits
    // the placement events covering these ranges.
    pub(super) fn insert(&mut self, addr: u64, origin: Origin) -> bool {
        let page = tcmalloc_page_index(addr);
        self.ensure(page);
        let slot = (page - self.base_page) as usize;
        // ensure() covers the page.
        if self.slots[slot] != EMPTY {
            return false;
        }
        let idx = if let Some(idx) = self.free_recs.pop() {
            self.recs[idx as usize] = origin;
            idx
        } else {
            assert!(
                self.recs.len() < EMPTY as usize,
                "origin record slab overflow"
            );
            self.recs.push(origin);
            self.recs.len() as u32 - 1
        };
        self.slots[slot] = idx;
        true
    }

    /// Takes the record for the range based at `addr`, if one exists. The
    /// slab index is recycled.
    // lint:allow(event-completeness) index maintenance; the pageheap emits
    // the placement events covering these ranges.
    pub(super) fn remove(&mut self, addr: u64) -> Option<Origin> {
        let page = tcmalloc_page_index(addr);
        let off = page.wrapping_sub(self.base_page);
        let slot = self.slots.get_mut(off as usize)?;
        let idx = *slot;
        if idx == EMPTY {
            return None;
        }
        *slot = EMPTY;
        self.free_recs.push(idx);
        Some(self.recs[idx as usize])
    }
}

#[cfg(test)]
// Tests may unwrap: a panic IS the failure report here.
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use wsc_sim_os::addr::TCMALLOC_PAGE_BYTES;

    #[test]
    fn insert_remove_round_trip() {
        let mut t = OriginTable::default();
        assert!(t.insert(0x10000, Origin::Filler { pages: 4 }));
        assert!(matches!(
            t.remove(0x10000),
            Some(Origin::Filler { pages: 4 })
        ));
        assert!(t.remove(0x10000).is_none(), "record consumed");
    }

    #[test]
    fn double_insert_rejected() {
        let mut t = OriginTable::default();
        assert!(t.insert(0x10000, Origin::Filler { pages: 4 }));
        assert!(!t.insert(0x10000, Origin::Region { pages: 300 }));
        // The original record survives the rejected insert.
        assert!(matches!(
            t.remove(0x10000),
            Some(Origin::Filler { pages: 4 })
        ));
    }

    #[test]
    fn record_indices_recycle() {
        let mut t = OriginTable::default();
        for round in 0..3u64 {
            for i in 0..10u64 {
                let addr = (round * 10 + i + 1) * 64 * TCMALLOC_PAGE_BYTES;
                assert!(t.insert(
                    addr,
                    Origin::Large {
                        pages: 512,
                        tail: 0
                    }
                ));
            }
            for i in 0..10u64 {
                let addr = (round * 10 + i + 1) * 64 * TCMALLOC_PAGE_BYTES;
                assert!(t.remove(addr).is_some());
            }
        }
        assert_eq!(t.recs.len(), 10, "slab stops growing once warm");
    }

    #[test]
    fn window_grows_both_directions() {
        let mut t = OriginTable::default();
        let high = 40 * CHUNK_PAGES * TCMALLOC_PAGE_BYTES;
        assert!(t.insert(high, Origin::Filler { pages: 1 }));
        assert!(t.insert(0, Origin::Filler { pages: 2 }));
        assert!(matches!(t.remove(high), Some(Origin::Filler { pages: 1 })));
        assert!(matches!(t.remove(0), Some(Origin::Filler { pages: 2 })));
    }

    #[test]
    fn unknown_address_is_none() {
        let mut t = OriginTable::default();
        assert!(t.remove(0xdead_beef_0000).is_none());
        assert!(t.insert(0x10000, Origin::Filler { pages: 1 }));
        assert!(t.remove(0x20000).is_none(), "in-window miss");
        assert!(t.remove(0x7f00_0000_0000).is_none(), "out-of-window miss");
    }
}
