//! The pageheap's OS boundary: the *only* sanctioned path to the simulated
//! kernel ([`Vmm`]).
//!
//! Every `mmap`/`munmap`/`madvise` the pageheap issues flows through
//! [`OsLayer`], which is where the failure model of the fault-injecting
//! kernel meets allocator policy:
//!
//! * **Hard memory limit** — an `mmap` that would push resident bytes past
//!   the configured limit fails with [`AllocError::HardLimit`] *before*
//!   reaching the kernel (TCMalloc's hard-limit semantics: the limit is
//!   enforced by the allocator, not the OS).
//! * **ENOMEM** — a denied `mmap` surfaces as [`AllocError::OsEnomem`]; the
//!   pageheap reacts with synchronous release-and-retry.
//! * **THP denial** — when compaction fails and a mapping comes back
//!   4 KiB-backed, the affected hugepages are tracked in a *denied set* and
//!   the layer enters a degraded state
//!   ([`AllocEvent::Degraded`]); background maintenance retries a
//!   khugepaged-style collapse ([`OsLayer::promote_denied`]) and emits
//!   [`AllocEvent::Recovered`] as coverage is rebuilt.
//!
//! Each boundary crossing is reported on the event bus ([`AllocEvent::OsFault`],
//! [`AllocEvent::BackingDenied`], [`AllocEvent::LimitHit`]), so telemetry,
//! traces, and the sanitizer see the same failure stream the allocator acted
//! on. The `infallible-os` lint (tools) denies direct [`Vmm`] construction
//! or mutation outside this module and the sim-os crate itself.

use crate::events::{AllocEvent, EventBus, OsOp};
use std::collections::BTreeSet;
use std::fmt;
use wsc_sim_os::addr::{align_up, HUGE_PAGE_BYTES};
use wsc_sim_os::pagetable::PageTable;
use wsc_sim_os::vmm::{Vmm, VmmStats};
use wsc_sim_os::{FaultStats, OsError};

/// A structured allocation failure: the pageheap could not satisfy a
/// request. Surfaced through
/// [`Tcmalloc::try_malloc`](crate::Tcmalloc::try_malloc) instead of a panic.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AllocError {
    /// The (simulated) kernel denied the backing `mmap` with ENOMEM and
    /// release-and-retry could not free enough memory.
    OsEnomem,
    /// The configured hard memory limit would be exceeded.
    HardLimit {
        /// Resident bytes at the time of the refused request.
        resident: u64,
        /// The configured hard limit.
        limit: u64,
    },
}

impl fmt::Display for AllocError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AllocError::OsEnomem => write!(f, "mmap failed with ENOMEM after retries"),
            AllocError::HardLimit { resident, limit } => {
                write!(f, "hard memory limit: resident {resident} B of {limit} B")
            }
        }
    }
}

impl std::error::Error for AllocError {}

/// The sanctioned wrapper around the simulated kernel.
#[derive(Clone, Debug)]
pub struct OsLayer {
    vmm: Vmm,
    hard_limit: Option<u64>,
    /// Hugepage base addresses whose THP backing was denied at `mmap` time
    /// and not yet rebuilt. Ordered so promotion passes are deterministic.
    denied: BTreeSet<u64>,
    degraded: bool,
}

impl OsLayer {
    /// Wraps a kernel, enforcing `hard_limit` (bytes) on resident growth.
    pub fn new(vmm: Vmm, hard_limit: Option<u64>) -> Self {
        Self {
            vmm,
            hard_limit,
            denied: BTreeSet::new(),
            degraded: false,
        }
    }

    /// An infallible kernel with no limit — the pre-failure-model behaviour.
    pub fn infallible() -> Self {
        Self::new(Vmm::new(), None)
    }

    /// Maps `len` bytes (hugepage-rounded), enforcing the hard limit and
    /// reporting kernel faults on the bus.
    ///
    /// # Errors
    ///
    /// [`AllocError::HardLimit`] when the mapping would push residency past
    /// the limit (emits [`AllocEvent::LimitHit`]); [`AllocError::OsEnomem`]
    /// when the kernel denies the call (emits [`AllocEvent::OsFault`]).
    pub fn mmap(&mut self, len: u64, bus: &mut EventBus) -> Result<u64, AllocError> {
        let rounded = align_up(len, HUGE_PAGE_BYTES);
        if let Some(limit) = self.hard_limit {
            let resident = self.vmm.page_table().resident_bytes();
            if resident + rounded > limit {
                bus.emit(AllocEvent::LimitHit {
                    hard: true,
                    resident,
                    limit,
                });
                return Err(AllocError::HardLimit { resident, limit });
            }
        }
        match self.vmm.mmap(len) {
            Ok(grant) => {
                if grant.latency_ns > 0 {
                    bus.emit(AllocEvent::OsFault {
                        op: OsOp::Mmap,
                        failed: false,
                        latency_ns: grant.latency_ns,
                    });
                }
                if !grant.huge_backed {
                    bus.emit(AllocEvent::BackingDenied {
                        base: grant.addr,
                        bytes: rounded,
                    });
                    for hp in 0..rounded / HUGE_PAGE_BYTES {
                        self.denied.insert(grant.addr + hp * HUGE_PAGE_BYTES);
                    }
                    if !self.degraded {
                        self.degraded = true;
                        bus.emit(AllocEvent::Degraded {
                            denied_hugepages: self.denied.len() as u64,
                        });
                    }
                }
                Ok(grant.addr)
            }
            Err(_) => {
                bus.emit(AllocEvent::OsFault {
                    op: OsOp::Mmap,
                    failed: true,
                    latency_ns: 0,
                });
                Err(AllocError::OsEnomem)
            }
        }
    }

    /// Unmaps a hugepage-granular range and forgets any denied-backing
    /// bookkeeping for it.
    // lint:allow(event-completeness) munmap cannot fail in the fault
    // model; the caller emits the SpanDealloc/Release event for the same
    // range, so an OsFault here would be noise.
    pub fn munmap(&mut self, addr: u64, len: u64) {
        for hp in 0..align_up(len, HUGE_PAGE_BYTES) / HUGE_PAGE_BYTES {
            self.denied.remove(&(addr + hp * HUGE_PAGE_BYTES));
        }
        self.vmm.munmap(addr, len);
    }

    /// Subreleases a range, reporting injected failures and latency on the
    /// bus. Residency is unchanged on error — the caller must not mark the
    /// pages released.
    ///
    /// # Errors
    ///
    /// Propagates the kernel's [`OsError`] (flaky `madvise` or a stray
    /// subrelease of an unmapped range).
    pub fn subrelease(&mut self, addr: u64, len: u64, bus: &mut EventBus) -> Result<(), OsError> {
        match self.vmm.subrelease(addr, len) {
            Ok(latency_ns) => {
                // A subreleased hugepage is broken for good — the kernel
                // never rebuilds subrelease-broken backings — so it stops
                // being a *denied* hugepage awaiting re-promotion and
                // becomes ordinary small-backed memory.
                let first = addr - addr % HUGE_PAGE_BYTES;
                let last = align_up(addr + len, HUGE_PAGE_BYTES);
                for hp in (first..last).step_by(HUGE_PAGE_BYTES as usize) {
                    self.denied.remove(&hp);
                }
                if latency_ns > 0 {
                    bus.emit(AllocEvent::OsFault {
                        op: OsOp::Subrelease,
                        failed: false,
                        latency_ns,
                    });
                }
                Ok(())
            }
            Err(err) => {
                bus.emit(AllocEvent::OsFault {
                    op: OsOp::Subrelease,
                    failed: true,
                    latency_ns: 0,
                });
                Err(err)
            }
        }
    }

    /// Faults a subreleased range back in.
    // lint:allow(event-completeness) infallible in the fault model; the
    // filler emits HugepageFill { reused: true } for exactly this range.
    pub fn reoccupy(&mut self, addr: u64, len: u64) {
        self.vmm.reoccupy(addr, len);
    }

    /// Background khugepaged pass: attempt to collapse every denied-backing
    /// hugepage back to huge. Emits [`AllocEvent::Recovered`] when any
    /// backing is rebuilt; leaves vetoed candidates for the next pass.
    /// Returns the number of hugepages re-promoted.
    pub fn promote_denied(&mut self, bus: &mut EventBus) -> u64 {
        let mut repromoted = 0u64;
        let candidates: Vec<u64> = self.denied.iter().copied().collect();
        for base in candidates {
            if self.vmm.collapse_huge(base) {
                self.denied.remove(&base);
                repromoted += 1;
            } else if !self.vmm.page_table().is_mapped(base) {
                // Unmapped since it was denied; nothing left to promote.
                self.denied.remove(&base);
            }
        }
        if repromoted > 0 {
            bus.emit(AllocEvent::Recovered { repromoted });
        }
        if self.degraded && self.denied.is_empty() {
            self.degraded = false;
        }
        repromoted
    }

    /// True while denied-backing hugepages are outstanding.
    pub fn is_degraded(&self) -> bool {
        self.degraded
    }

    /// Denied-backing hugepages still awaiting re-promotion.
    pub fn denied_hugepages(&self) -> u64 {
        self.denied.len() as u64
    }

    /// The configured hard limit, bytes.
    pub fn hard_limit(&self) -> Option<u64> {
        self.hard_limit
    }

    /// The process page table (backing/residency state).
    pub fn page_table(&self) -> &PageTable {
        self.vmm.page_table()
    }

    /// The wrapped kernel (read-only; mutation must go through this layer).
    pub fn vmm(&self) -> &Vmm {
        &self.vmm
    }

    /// Syscall counters.
    pub fn stats(&self) -> VmmStats {
        self.vmm.stats()
    }

    /// Fault-injection counters (zero without a plan).
    pub fn fault_stats(&self) -> FaultStats {
        self.vmm.fault_stats()
    }
}

impl Default for OsLayer {
    fn default() -> Self {
        Self::infallible()
    }
}

#[cfg(test)]
// Tests may unwrap: a panic IS the failure report here.
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::config::TcmallocConfig;
    use wsc_sim_hw::cost::CostModel;
    use wsc_sim_os::clock::Clock;
    use wsc_sim_os::faults::{FaultPlan, PPM};

    fn bus() -> EventBus {
        EventBus::new(
            &TcmallocConfig::baseline().with_event_recorder(),
            CostModel::production(),
            Clock::new(),
        )
    }

    #[test]
    fn hard_limit_refuses_before_the_kernel() {
        let mut os = OsLayer::new(Vmm::new(), Some(2 * HUGE_PAGE_BYTES));
        let mut b = bus();
        os.mmap(HUGE_PAGE_BYTES, &mut b).unwrap();
        os.mmap(HUGE_PAGE_BYTES, &mut b).unwrap();
        let err = os.mmap(HUGE_PAGE_BYTES, &mut b).unwrap_err();
        assert_eq!(
            err,
            AllocError::HardLimit {
                resident: 2 * HUGE_PAGE_BYTES,
                limit: 2 * HUGE_PAGE_BYTES,
            }
        );
        // The refused call never reached the kernel.
        assert_eq!(os.stats().mmap_calls, 2);
        let hits = b
            .recorded()
            .iter()
            .filter(|e| matches!(e, AllocEvent::LimitHit { hard: true, .. }))
            .count();
        assert_eq!(hits, 1);
    }

    #[test]
    fn enomem_is_reported_and_structured() {
        let plan = FaultPlan {
            enomem_ppm: PPM,
            ..FaultPlan::off()
        };
        let mut os = OsLayer::new(Vmm::with_faults(plan, Clock::new()), None);
        let mut b = bus();
        assert_eq!(os.mmap(HUGE_PAGE_BYTES, &mut b), Err(AllocError::OsEnomem));
        assert!(b.recorded().iter().any(|e| matches!(
            e,
            AllocEvent::OsFault {
                op: OsOp::Mmap,
                failed: true,
                ..
            }
        )));
    }

    #[test]
    fn denied_backing_degrades_then_promotion_recovers() {
        let plan = FaultPlan {
            deny_huge_ppm: PPM,
            ..FaultPlan::off()
        }
        .with_storm(0, 1_000);
        let clock = Clock::new();
        let mut os = OsLayer::new(Vmm::with_faults(plan, clock.clone()), None);
        let mut b = bus();
        let addr = os.mmap(2 * HUGE_PAGE_BYTES, &mut b).unwrap();
        assert!(os.is_degraded());
        assert_eq!(os.denied_hugepages(), 2);
        assert_eq!(os.page_table().hugepage_coverage(), 0.0);
        assert!(b
            .recorded()
            .iter()
            .any(|e| matches!(e, AllocEvent::BackingDenied { base, bytes }
                if *base == addr && *bytes == 2 * HUGE_PAGE_BYTES)));
        assert!(b.recorded().iter().any(|e| matches!(
            e,
            AllocEvent::Degraded {
                denied_hugepages: 2
            }
        )));

        // Storm over: the khugepaged pass rebuilds both hugepages.
        clock.advance(2_000);
        assert_eq!(os.promote_denied(&mut b), 2);
        assert!(!os.is_degraded());
        assert_eq!(os.denied_hugepages(), 0);
        assert!((os.page_table().hugepage_coverage() - 1.0).abs() < 1e-12);
        assert!(b
            .recorded()
            .iter()
            .any(|e| matches!(e, AllocEvent::Recovered { repromoted: 2 })));
        // Idempotent once healthy.
        assert_eq!(os.promote_denied(&mut b), 0);
    }

    #[test]
    fn munmap_forgets_denied_entries() {
        let plan = FaultPlan {
            deny_huge_ppm: PPM,
            ..FaultPlan::off()
        };
        let mut os = OsLayer::new(Vmm::with_faults(plan, Clock::new()), None);
        let mut b = bus();
        let addr = os.mmap(HUGE_PAGE_BYTES, &mut b).unwrap();
        assert_eq!(os.denied_hugepages(), 1);
        os.munmap(addr, HUGE_PAGE_BYTES);
        assert_eq!(os.denied_hugepages(), 0);
        assert_eq!(os.promote_denied(&mut b), 0);
    }

    #[test]
    fn subrelease_failure_keeps_residency() {
        let plan = FaultPlan {
            subrelease_fail_ppm: PPM,
            ..FaultPlan::off()
        };
        let mut os = OsLayer::new(Vmm::with_faults(plan, Clock::new()), None);
        let mut b = bus();
        let addr = os.mmap(HUGE_PAGE_BYTES, &mut b).unwrap();
        let before = os.page_table().resident_bytes();
        assert!(os.subrelease(addr, 8192, &mut b).is_err());
        assert_eq!(os.page_table().resident_bytes(), before);
        assert!(b.recorded().iter().any(|e| matches!(
            e,
            AllocEvent::OsFault {
                op: OsOp::Subrelease,
                failed: true,
                ..
            }
        )));
    }
}
