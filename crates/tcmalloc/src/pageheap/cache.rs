//! The hugepage cache: fully-free hugepage runs (§4.4 component 3).
//!
//! Large allocations (≥ a hugepage) are served from cached runs of free
//! hugepages; fully-freed filler hugepages also land here. The cache is
//! bounded — beyond its limit, runs are `munmap`ed back to the OS, which is
//! how "releasing hugepages that are completely free" (§2.1) keeps them
//! intact (no TLB-hostile subrelease).

use super::os::{AllocError, OsLayer};
use crate::events::{AllocEvent, EventBus};
use std::collections::BTreeMap;
use wsc_sim_os::addr::HUGE_PAGE_BYTES;

/// A cache of free hugepage runs with coalescing and a byte limit.
#[derive(Clone, Debug)]
pub struct HugeCache {
    /// `base address -> run length in hugepages`, coalesced.
    runs: BTreeMap<u64, u64>,
    cached_hp: u64,
    limit_hp: u64,
    /// Runs ever served without an mmap (cache hits).
    pub hits: u64,
    /// Runs that required a fresh mmap.
    pub fills: u64,
}

impl HugeCache {
    /// Creates a cache bounded at `limit_bytes` (rounded down to hugepages).
    pub fn new(limit_bytes: u64) -> Self {
        Self {
            runs: BTreeMap::new(),
            cached_hp: 0,
            limit_hp: limit_bytes / HUGE_PAGE_BYTES,
            hits: 0,
            fills: 0,
        }
    }

    /// Allocates a run of `n` hugepages. Returns `(base_addr, from_os)`
    /// where `from_os` is true when the run had to be mmap'd (emitting one
    /// [`AllocEvent::HugepageFill`]).
    ///
    /// # Errors
    ///
    /// Propagates the OS layer's refusal (ENOMEM or the hard limit) when a
    /// fresh mapping is needed; the cache is unchanged in that case.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn alloc_run(
        &mut self,
        n: u64,
        os: &mut OsLayer,
        bus: &mut EventBus,
    ) -> Result<(u64, bool), AllocError> {
        assert!(n > 0, "empty run requested");
        // Best fit: smallest run that satisfies the request.
        let best = self
            .runs
            .iter()
            .filter(|&(_, &len)| len >= n)
            .min_by_key(|&(_, &len)| len)
            .map(|(&addr, &len)| (addr, len));
        if let Some((addr, len)) = best {
            self.runs.remove(&addr);
            if len > n {
                self.runs.insert(addr + n * HUGE_PAGE_BYTES, len - n);
            }
            self.cached_hp -= n;
            self.hits += 1;
            Ok((addr, false))
        } else {
            let base = os.mmap(n * HUGE_PAGE_BYTES, bus)?;
            self.fills += 1;
            bus.emit(AllocEvent::HugepageFill {
                base,
                bytes: n * HUGE_PAGE_BYTES,
                reused: false,
            });
            Ok((base, true))
        }
    }

    /// Returns a run of `n` hugepages to the cache, coalescing with
    /// neighbours, then trims the cache to its limit by unmapping.
    pub fn free_run(&mut self, addr: u64, n: u64, os: &mut OsLayer, bus: &mut EventBus) {
        assert!(n > 0 && addr.is_multiple_of(HUGE_PAGE_BYTES), "bad run");
        let mut addr = addr;
        let mut n = n;
        // Coalesce with predecessor.
        if let Some((&paddr, &plen)) = self.runs.range(..addr).next_back() {
            if paddr + plen * HUGE_PAGE_BYTES == addr {
                self.runs.remove(&paddr);
                addr = paddr;
                n += plen;
            }
        }
        // Coalesce with successor.
        let end = addr + n * HUGE_PAGE_BYTES;
        if let Some(&slen) = self.runs.get(&end) {
            self.runs.remove(&end);
            n += slen;
        }
        self.runs.insert(addr, n);
        self.cached_hp = self.runs.values().sum();
        self.trim_to(self.limit_hp, os, bus);
    }

    /// Unmaps runs until at most `limit_hp` hugepages remain cached
    /// (largest-run first — whole hugepages go back to the OS intact, each
    /// unmap emitting one [`AllocEvent::HugepageRelease`]). Returns the
    /// number of hugepages released.
    fn trim_to(&mut self, limit_hp: u64, os: &mut OsLayer, bus: &mut EventBus) -> u64 {
        let mut dropped = 0u64;
        while self.cached_hp > limit_hp {
            let (&addr, &len) = self
                .runs
                .iter()
                .max_by_key(|&(_, &len)| len)
                .expect("cached_hp > 0 implies runs exist");
            let excess = self.cached_hp - limit_hp;
            let drop = excess.min(len);
            // Unmap the tail of the largest run.
            let keep = len - drop;
            os.munmap(addr + keep * HUGE_PAGE_BYTES, drop * HUGE_PAGE_BYTES);
            bus.emit(AllocEvent::HugepageRelease {
                base: addr + keep * HUGE_PAGE_BYTES,
                bytes: drop * HUGE_PAGE_BYTES,
            });
            self.runs.remove(&addr);
            if keep > 0 {
                self.runs.insert(addr, keep);
            }
            self.cached_hp -= drop;
            dropped += drop;
        }
        dropped
    }

    /// Releases up to `n` cached hugepages back to the OS (memory-pressure
    /// response; hugepages stay intact). Returns hugepages released.
    pub fn release_upto(&mut self, n: u64, os: &mut OsLayer, bus: &mut EventBus) -> u64 {
        let target = self.cached_hp.saturating_sub(n);
        self.trim_to(target, os, bus)
    }

    /// Releases every cached run to the OS immediately (aggressive release).
    pub fn release_all(&mut self, os: &mut OsLayer, bus: &mut EventBus) {
        for (addr, len) in std::mem::take(&mut self.runs) {
            os.munmap(addr, len * HUGE_PAGE_BYTES);
            bus.emit(AllocEvent::HugepageRelease {
                base: addr,
                bytes: len * HUGE_PAGE_BYTES,
            });
        }
        self.cached_hp = 0;
    }

    /// Bytes of hugepages held by the cache (pageheap external fragmentation
    /// attributable to `HugeCache`, Figure 15).
    pub fn cached_bytes(&self) -> u64 {
        self.cached_hp * HUGE_PAGE_BYTES
    }

    /// The configured limit, bytes.
    pub fn limit_bytes(&self) -> u64 {
        self.limit_hp * HUGE_PAGE_BYTES
    }
}

#[cfg(test)]
// Tests may unwrap: a panic IS the failure report here.
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::config::TcmallocConfig;
    use wsc_sim_hw::cost::CostModel;
    use wsc_sim_os::clock::Clock;

    fn setup(limit_hp: u64) -> (HugeCache, OsLayer, EventBus) {
        (
            HugeCache::new(limit_hp * HUGE_PAGE_BYTES),
            OsLayer::infallible(),
            EventBus::new(
                &TcmallocConfig::baseline(),
                CostModel::production(),
                Clock::new(),
            ),
        )
    }

    #[test]
    fn alloc_mmaps_when_empty() {
        let (mut c, mut os, mut b) = setup(8);
        let (addr, from_os) = c.alloc_run(2, &mut os, &mut b).unwrap();
        assert!(from_os);
        assert_eq!(addr % HUGE_PAGE_BYTES, 0);
        assert_eq!(c.fills, 1);
    }

    #[test]
    fn free_then_alloc_hits_cache() {
        let (mut c, mut os, mut b) = setup(8);
        let (addr, _) = c.alloc_run(4, &mut os, &mut b).unwrap();
        c.free_run(addr, 4, &mut os, &mut b);
        assert_eq!(c.cached_bytes(), 4 * HUGE_PAGE_BYTES);
        let (addr2, from_os) = c.alloc_run(2, &mut os, &mut b).unwrap();
        assert!(!from_os, "served from cache");
        assert_eq!(addr2, addr, "best-fit split from the front");
        assert_eq!(c.cached_bytes(), 2 * HUGE_PAGE_BYTES);
    }

    #[test]
    fn coalescing_merges_neighbours() {
        let (mut c, mut os, mut b) = setup(16);
        let (addr, _) = c.alloc_run(6, &mut os, &mut b).unwrap();
        // Free middle, then sides; all must merge into one run of 6.
        c.free_run(addr + 2 * HUGE_PAGE_BYTES, 2, &mut os, &mut b);
        c.free_run(addr, 2, &mut os, &mut b);
        c.free_run(addr + 4 * HUGE_PAGE_BYTES, 2, &mut os, &mut b);
        assert_eq!(c.runs.len(), 1);
        assert_eq!(c.runs[&addr], 6);
        // A 6-run alloc succeeds from cache.
        let (a, from_os) = c.alloc_run(6, &mut os, &mut b).unwrap();
        assert!(!from_os);
        assert_eq!(a, addr);
    }

    #[test]
    fn trim_unmaps_beyond_limit() {
        let (mut c, mut os, mut b) = setup(2);
        let (addr, _) = c.alloc_run(5, &mut os, &mut b).unwrap();
        let mapped_before = os.vmm().mapped_bytes();
        c.free_run(addr, 5, &mut os, &mut b);
        assert_eq!(c.cached_bytes(), 2 * HUGE_PAGE_BYTES, "trimmed to limit");
        assert_eq!(
            os.vmm().mapped_bytes(),
            mapped_before - 3 * HUGE_PAGE_BYTES,
            "3 hugepages unmapped"
        );
    }

    #[test]
    fn release_all_empties_cache() {
        let (mut c, mut os, mut b) = setup(8);
        let (addr, _) = c.alloc_run(3, &mut os, &mut b).unwrap();
        c.free_run(addr, 3, &mut os, &mut b);
        c.release_all(&mut os, &mut b);
        assert_eq!(c.cached_bytes(), 0);
        assert_eq!(os.vmm().mapped_bytes(), 0);
    }

    #[test]
    fn best_fit_prefers_smallest() {
        let (mut c, mut os, mut b) = setup(64);
        let (a1, _) = c.alloc_run(8, &mut os, &mut b).unwrap();
        let (_spacer, _) = c.alloc_run(1, &mut os, &mut b).unwrap(); // keeps runs non-adjacent
        let (a2, _) = c.alloc_run(2, &mut os, &mut b).unwrap();
        c.free_run(a1, 8, &mut os, &mut b);
        c.free_run(a2, 2, &mut os, &mut b);
        // Request 2: must take the 2-run, not split the 8-run.
        let (got, from_os) = c.alloc_run(2, &mut os, &mut b).unwrap();
        assert!(!from_os);
        assert_eq!(got, a2);
    }
}
