//! The allocator façade: `malloc` / `free` across the full cache hierarchy.
//!
//! [`Tcmalloc`] wires the tiers of Figure 1 together: per-CPU caches →
//! transfer cache → central free lists → hugepage-aware pageheap → simulated
//! OS. Every operation reports which tier satisfied it and the nanoseconds
//! it cost (Figure 4 calibration), so the workload driver can attribute both
//! allocator time (Figure 6a) and the downstream locality effects.

use crate::central::CentralFreeList;
use crate::config::{FreeArm, TcmallocConfig};
use crate::deferred::{DeferredFrees, QueuedVia};
use crate::events::{AllocEvent, EventBus, EventSink, SpanRef, TraceRing};
use crate::pageheap::{AllocError, OsLayer, PageHeap};
use crate::pagemap::Pagemap;
use crate::percpu::{FreeOutcome, PerCpuCaches};
use crate::size_class::SizeClassTable;
use crate::span::{Span, SpanRegistry, SpanState};
use crate::stats::{CycleStats, FragmentationBreakdown};
use crate::transfer::{TransferCaches, TransferSharding};
use std::collections::HashMap;
use wsc_sanitizer::{
    ClassTierSnapshot, HugepageSnapshot, PagemapLeafSnapshot, SanitizerReport, Snapshot,
    SpanPlacement, SpanSnapshot,
};
use wsc_sim_hw::cost::{AllocPath, CostModel};
use wsc_sim_hw::topology::{CpuId, Platform};
use wsc_sim_os::addr::TCMALLOC_PAGE_BYTES;
use wsc_sim_os::clock::Clock;
use wsc_sim_os::rseq::VcpuRegistry;
use wsc_sim_os::vmm::Vmm;
use wsc_telemetry::gwp::{AllocationProfile, Sampler};

/// Result of a [`Tcmalloc::malloc`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AllocOutcome {
    /// Address of the allocated object.
    pub addr: u64,
    /// Bytes actually reserved (size class, or page-rounded for large).
    pub actual_bytes: u64,
    /// Deepest tier the request hit.
    pub path: AllocPath,
    /// Allocator nanoseconds consumed (including prefetch/sampling).
    pub ns: f64,
}

/// Result of a [`Tcmalloc::free`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FreeOutcomeInfo {
    /// Deepest tier the operation touched.
    pub path: AllocPath,
    /// Allocator nanoseconds consumed.
    pub ns: f64,
}

/// A structurally invalid free detected by [`Tcmalloc::try_free`]: the
/// address is not a live allocation of the given size. (Real TCMalloc
/// aborts here; [`Tcmalloc::free`] keeps that behaviour by panicking.)
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FreeError {
    /// `addr` does not name a live large allocation's base address.
    InvalidFree {
        /// The offending address.
        addr: u64,
    },
}

impl std::fmt::Display for FreeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::InvalidFree { addr } => {
                write!(f, "invalid free of {addr:#x}: not a live allocation")
            }
        }
    }
}

impl std::error::Error for FreeError {}

/// The warehouse-scale memory allocator.
///
/// # Example
///
/// ```
/// use wsc_tcmalloc::{Tcmalloc, TcmallocConfig};
/// use wsc_sim_hw::topology::{CpuId, Platform};
/// use wsc_sim_os::clock::Clock;
///
/// let platform = Platform::chiplet("test", 1, 2, 4, 2);
/// let mut tcm = Tcmalloc::new(TcmallocConfig::optimized(), platform, Clock::new());
/// let a = tcm.malloc(100, CpuId(0));
/// assert!(a.actual_bytes >= 100);
/// tcm.free(a.addr, 100, CpuId(0));
/// ```
#[derive(Debug)]
pub struct Tcmalloc {
    cfg: TcmallocConfig,
    table: SizeClassTable,
    platform: Platform,
    clock: Clock,
    vcpus: VcpuRegistry,
    percpu: PerCpuCaches,
    transfer: TransferCaches,
    central: Vec<CentralFreeList>,
    spans: SpanRegistry,
    pagemap: Pagemap,
    pageheap: PageHeap,
    sampler: Sampler,
    deferred: DeferredFrees,
    bus: EventBus,
    // lint:allow(hashmap-decl) keyed by sampled address; never iterated
    live_samples: HashMap<u64, (u64, u64, f64)>,
    live_requested_bytes: u64,
    live_objects: u64,
    internal_frag_bytes: u64,
    next_resize_ns: u64,
    next_plunder_ns: u64,
    next_release_ns: u64,
    next_decay_ns: u64,
}

impl Tcmalloc {
    /// Creates an allocator for one process on the given platform. The
    /// config's fault plan and hard limit (if any) are attached to the
    /// simulated kernel here; with both absent the OS layer is infallible
    /// and the allocator behaves byte-identically to the pre-fault builds.
    pub fn new(cfg: TcmallocConfig, platform: Platform, clock: Clock) -> Self {
        let table = SizeClassTable::production();
        let percpu = PerCpuCaches::new(&table, cfg.percpu_max_bytes);
        let transfer = TransferCaches::new(&table, cfg.transfer);
        let central = (0..table.num_classes())
            .map(|cl| CentralFreeList::new(cl as u16, *table.info(cl), cfg.cfl_lists))
            .collect();
        let now = clock.now_ns();
        // Sole kernel construction point in the allocator: the Vmm goes
        // straight into OsLayer and is never driven directly again.
        let vmm = cfg
            .os_faults
            // lint:allow(infallible-os)
            .map_or_else(Vmm::new, |p| Vmm::with_faults(p, clock.clone()));
        Self {
            percpu,
            transfer,
            central,
            spans: SpanRegistry::new(),
            pagemap: Pagemap::new(cfg.pagemap_arm),
            pageheap: PageHeap::with_kernel(cfg.pageheap, OsLayer::new(vmm, cfg.hard_limit)),
            sampler: Sampler::new(cfg.sample_period_bytes),
            deferred: DeferredFrees::new(cfg.free_arm, table.num_classes()),
            bus: EventBus::new(&cfg, CostModel::production(), clock.clone()),
            live_samples: HashMap::new(),
            live_requested_bytes: 0,
            live_objects: 0,
            internal_frag_bytes: 0,
            next_resize_ns: now + cfg.resize_interval_ns,
            next_plunder_ns: now + cfg.plunder_interval_ns,
            next_release_ns: now + cfg.release_interval_ns,
            next_decay_ns: now + cfg.decay_interval_ns,
            table,
            platform,
            clock,
            vcpus: VcpuRegistry::new(),
            cfg,
        }
    }

    /// Overrides the cost model (platform calibration). Rebuilds the event
    /// bus, so call it before any allocation.
    pub fn with_cost_model(mut self, cost: CostModel) -> Self {
        self.bus = EventBus::new(&self.cfg, cost, self.clock.clone());
        self
    }

    /// Allocates `size` bytes on behalf of a thread running on `cpu`.
    ///
    /// # Panics
    ///
    /// Panics when the simulated kernel refuses the backing memory (hard
    /// limit or an exhausted fault storm) — like real `malloc` returning
    /// null to a caller that never checks. Fault-aware callers use
    /// [`try_malloc`](Self::try_malloc).
    pub fn malloc(&mut self, size: u64, cpu: CpuId) -> AllocOutcome {
        self.malloc_with_site(size, cpu, 0)
    }

    /// Fallible [`malloc`](Self::malloc): surfaces OS refusal as a
    /// structured [`AllocError`] instead of panicking.
    ///
    /// # Errors
    ///
    /// [`AllocError::OsEnomem`] when injected ENOMEM persisted through the
    /// pageheap's release-and-retry; [`AllocError::HardLimit`] when the
    /// configured hard limit blocks growth. Allocator state is unchanged on
    /// error (no events emitted, no accounting moved).
    pub fn try_malloc(&mut self, size: u64, cpu: CpuId) -> Result<AllocOutcome, AllocError> {
        self.try_malloc_with_site(size, cpu, 0)
    }

    /// Like [`malloc`](Self::malloc), tagging sampled allocations with an
    /// allocation-site id (stands in for the recorded call stack).
    ///
    /// # Panics
    ///
    /// Panics on OS refusal; see [`malloc`](Self::malloc).
    pub fn malloc_with_site(&mut self, size: u64, cpu: CpuId, site: u64) -> AllocOutcome {
        match self.try_malloc_with_site(size, cpu, site) {
            Ok(outcome) => outcome,
            // lint:allow(panic-surface) the infallible façade over
            // try_malloc: callers that opted out of fault handling get the
            // abort real TCMalloc performs when memory is unobtainable.
            Err(e) => panic!("malloc of {size} bytes failed: {e}"),
        }
    }

    /// Fallible [`malloc_with_site`](Self::malloc_with_site).
    ///
    /// # Errors
    ///
    /// See [`try_malloc`](Self::try_malloc).
    pub fn try_malloc_with_site(
        &mut self,
        size: u64,
        cpu: CpuId,
        site: u64,
    ) -> Result<AllocOutcome, AllocError> {
        let (addr, actual, path) = match self.table.class_for(size) {
            Some(cl) => self.malloc_small(cl, cpu)?,
            None => self.malloc_large(size)?,
        };
        let prefetched = self.cfg.prefetch && size <= crate::size_class::MAX_SMALL_SIZE;
        let sampled = self.sampler.should_sample(size.max(1));
        let pick = if sampled {
            let weight = self.sampler.sample_weight(size.max(1));
            let now = self.clock.now_ns();
            self.live_samples.insert(addr, (size, now, weight));
            Some(AllocEvent::SamplerPick {
                addr,
                size,
                site,
                now_ns: now,
                weight,
            })
        } else {
            None
        };
        self.live_requested_bytes += size;
        self.live_objects += 1;
        self.internal_frag_bytes += actual - size;
        // Shadow payload: populated only when sanitizing, so the fast path
        // never pays the pagemap lookup.
        let (class, span) = if self.cfg.sanitize.is_on() {
            let class = self.table.class_for(size).map(|cl| cl as u16);
            let span = self.pagemap.span_of(addr).map(|id| {
                let s = self.spans.get(id);
                SpanRef {
                    id: id.0,
                    start: s.start,
                    pages: s.pages,
                }
            });
            (class, span)
        } else {
            (None, None)
        };
        let ns = self.bus.malloc_done(
            pick,
            AllocEvent::MallocDone {
                path,
                addr,
                size,
                actual,
                prefetched,
                sampled,
                class,
                span,
            },
        );
        if self.cfg.sanitize.is_on() && self.bus.sanitizer_mut().audit_due() {
            self.audit_now();
        }
        Ok(AllocOutcome {
            addr,
            actual_bytes: actual,
            path,
            ns,
        })
    }

    /// The transfer-cache shard for a CPU under the active sharding mode.
    fn shard_of(&self, cpu: CpuId) -> usize {
        match self.cfg.transfer.sharding {
            TransferSharding::Central => 0,
            TransferSharding::Domain => self.platform.domain_of(cpu).index(),
            TransferSharding::Node => self.platform.node_of(cpu).index(),
        }
    }

    fn malloc_small(&mut self, cl: usize, cpu: CpuId) -> Result<(u64, u64, AllocPath), AllocError> {
        let vcpu = self.vcpus.vcpu_of(cpu);
        let shard = self.shard_of(cpu);
        let info = *self.table.info(cl);
        if let Some(addr) = self.percpu.alloc(vcpu, cl, &mut self.bus) {
            return Ok((addr, info.size, AllocPath::PerCpu));
        }
        // Per-CPU miss: the first deterministic drain point. The missing
        // vCPU adopts every batch posted to its inbox before refilling.
        if self.cfg.free_arm == FreeArm::MessagePassing {
            let inbound = self.deferred.drain_inbox(vcpu.index() as u32);
            for (class, objs) in inbound {
                self.adopt_drained(vcpu.index(), shard, class as usize, objs);
            }
        }
        let batch = info.batch as usize;
        let mut objs = self.transfer.fetch(shard, cl, batch, &mut self.bus);
        let mut path = AllocPath::TransferCache;
        if objs.len() < batch {
            // Central refill: the second drain point. Deferred objects of
            // this class rejoin the middle tiers before the pageheap is
            // asked for fresh spans.
            if self.cfg.free_arm != FreeArm::OwnerOnly {
                let drained = self.deferred.drain_class(cl as u16);
                self.adopt_drained(vcpu.index(), shard, cl, drained);
            }
            let need = batch - objs.len();
            match self.central[cl].alloc_batch(
                need,
                &mut self.spans,
                &mut self.pagemap,
                &mut self.pageheap,
                &mut self.bus,
            ) {
                Ok((more, deep)) => {
                    if self.cfg.free_arm != FreeArm::OwnerOnly {
                        self.claim_spans(&more, vcpu.index() as u32);
                    }
                    objs.extend(more);
                    path = deep;
                }
                // The pageheap could not grow. Degrade gracefully: any
                // objects the transfer cache already surrendered still
                // serve the request; only a truly empty hierarchy errors.
                Err(e) if objs.is_empty() => return Err(e),
                Err(_) => {}
            }
        }
        let addr = objs.pop().expect("refill batch is never empty");
        let leftover = self.percpu.refill(vcpu, cl, objs, &mut self.bus);
        self.return_objects(shard, cl, leftover, true);
        Ok((addr, info.size, path))
    }

    fn malloc_large(&mut self, size: u64) -> Result<(u64, u64, AllocPath), AllocError> {
        let pages = size.div_ceil(TCMALLOC_PAGE_BYTES).max(1) as u32;
        let (addr, path) = self.pageheap.alloc(pages, 1, &mut self.bus)?;
        let span = Span::new_large(addr, pages);
        let id = self.spans.insert(span);
        self.bus.emit(AllocEvent::SpanAlloc {
            id: id.0,
            start: addr,
            pages,
            class: None,
        });
        self.pagemap
            .set_range_traced(addr, pages, id, &mut self.bus);
        Ok((addr, pages as u64 * TCMALLOC_PAGE_BYTES, path))
    }

    /// Frees `addr`, which was allocated with the given requested `size`
    /// (sized delete) by a thread running on `cpu`.
    ///
    /// # Panics
    ///
    /// With the sanitizer off, panics on double frees, foreign addresses, or
    /// a size that maps to a different class than the allocation's. With the
    /// sanitizer on, those invalid frees are rejected instead: the operation
    /// becomes a no-op and a [`SanitizerReport`] is queued (retrieve it with
    /// [`take_sanitizer_reports`](Self::take_sanitizer_reports)).
    pub fn free(&mut self, addr: u64, size: u64, cpu: CpuId) -> FreeOutcomeInfo {
        match self.try_free(addr, size, cpu) {
            Ok(info) => info,
            // lint:allow(panic-surface) invalid free = heap corruption
            // from the caller's side; real TCMalloc aborts, and so does
            // the infallible façade.
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible [`free`](Self::free): structurally invalid large frees
    /// (unknown address, interior pointer, double free) come back as
    /// [`FreeError::InvalidFree`] with the allocator state untouched.
    ///
    /// # Errors
    ///
    /// [`FreeError::InvalidFree`] as above. Small-object corruption is still
    /// caught by the per-tier invariant checks (panics) or, with the
    /// sanitizer on, rejected with a queued report.
    pub fn try_free(
        &mut self,
        addr: u64,
        size: u64,
        cpu: CpuId,
    ) -> Result<FreeOutcomeInfo, FreeError> {
        if self.cfg.sanitize.is_on() {
            let expected = self.table.class_for(size).map(|cl| cl as u16);
            if self
                .bus
                .sanitizer_mut()
                .check_free(addr, expected)
                .is_some()
            {
                // Invalid free: rejected, reported, and charged nothing.
                return Ok(FreeOutcomeInfo {
                    path: AllocPath::PerCpu,
                    ns: 0.0,
                });
            }
        }
        if self.table.class_for(size).is_none() {
            // Validate before any mutation so an invalid large free is a
            // clean no-op at the Err return. (With the sanitizer on the
            // shadow check above already rejected and reported it.)
            let Some(id) = self.pagemap.span_of(addr) else {
                return Err(FreeError::InvalidFree { addr });
            };
            let span = self.spans.get(id);
            if span.state != SpanState::Large || span.start != addr {
                return Err(FreeError::InvalidFree { addr });
            }
        }
        // The emptiness check keeps the common case (nothing sampled live)
        // off the hash probe entirely.
        if !self.live_samples.is_empty() {
            if let Some((sz, t, weight)) = self.live_samples.remove(&addr) {
                let lifetime = self.clock.now_ns().saturating_sub(t);
                self.bus.emit(AllocEvent::SampledFree {
                    size: sz,
                    lifetime_ns: lifetime,
                    weight,
                });
            }
        }
        let (actual, path) = match self.table.class_for(size) {
            Some(cl) => {
                debug_assert_eq!(
                    self.pagemap
                        .span_of(addr)
                        .map(|id| self.spans.get(id).size_class),
                    Some(Some(cl as u16)),
                    "free size does not match the allocation's class"
                );
                let vcpu = self.vcpus.vcpu_of(cpu);
                let shard = self.shard_of(cpu);
                let info = *self.table.info(cl);
                // Ownership check: a free issued against a span another
                // vCPU refilled from is routed through the deferred-free
                // arm instead of the local cache.
                let remote = if self.cfg.free_arm == FreeArm::OwnerOnly {
                    None
                } else {
                    self.pagemap.span_of(addr).and_then(|id| {
                        let s = self.spans.get(id);
                        s.owner
                            .filter(|&o| o != vcpu.index() as u32)
                            .map(|o| (id.0, o))
                    })
                };
                let path = if let Some((span_id, owner)) = remote {
                    let via = self.deferred.queue_remote(
                        vcpu.index() as u32,
                        owner,
                        cl as u16,
                        span_id,
                        addr,
                    );
                    self.bus.emit(AllocEvent::RemoteFreeQueued {
                        vcpu: vcpu.index(),
                        owner: owner as usize,
                        class: cl as u16,
                        addr,
                    });
                    let sync_ns = match via {
                        QueuedVia::Cas => self.bus.cost().atomic_cas_ns,
                        QueuedVia::Batched => self.bus.cost().msg_batch_ns,
                        QueuedVia::Buffered => 0.0,
                    };
                    if sync_ns > 0.0 {
                        self.bus.emit(AllocEvent::ContentionCharged {
                            vcpu: vcpu.index(),
                            ns: sync_ns,
                        });
                    }
                    AllocPath::PerCpu
                } else {
                    match self.percpu.free(vcpu, cl, addr, &mut self.bus) {
                        FreeOutcome::Cached => AllocPath::PerCpu,
                        FreeOutcome::Overflow(batch) => {
                            self.return_objects(shard, cl, batch, false)
                        }
                    }
                };
                (info.size, path)
            }
            None => {
                // Validated above: the lookup cannot fail here.
                let id = self
                    .pagemap
                    .span_of(addr)
                    .expect("validated large free lost its span");
                let pages = self.spans.get(id).pages;
                let span = self.spans.remove(id);
                debug_assert!(span.size_class.is_none());
                // SpanRetire feeds the sanitizer's page mirror via the bus.
                self.bus.emit(AllocEvent::SpanRetire {
                    id: id.0,
                    start: addr,
                    pages,
                    class: None,
                });
                self.pagemap.clear_range_traced(addr, pages, &mut self.bus);
                self.pageheap.dealloc(addr, pages, &mut self.bus);
                (pages as u64 * TCMALLOC_PAGE_BYTES, AllocPath::PageHeap)
            }
        };
        let ns = self
            .bus
            .free_done(AllocEvent::FreeDone { path, addr, size });
        self.live_requested_bytes -= size;
        self.live_objects -= 1;
        self.internal_frag_bytes -= actual - size;
        if self.cfg.sanitize.is_on() && self.bus.sanitizer_mut().audit_due() {
            self.audit_now();
        }
        Ok(FreeOutcomeInfo { path, ns })
    }

    /// Tags the spans backing `objs` with the refilling vCPU (latest
    /// refiller wins) — the ownership the remote-free router consults.
    fn claim_spans(&mut self, objs: &[u64], vcpu: u32) {
        for &addr in objs {
            if let Some(id) = self.pagemap.span_of(addr) {
                self.spans.get_mut(id).owner = Some(vcpu);
            }
        }
    }

    /// Adopts one class's batch of drained remote frees: emits the drain
    /// event, charges the list-detach cost, and returns the objects to the
    /// middle tiers.
    fn adopt_drained(&mut self, vcpu: usize, shard: usize, cl: usize, objs: Vec<u64>) {
        if objs.is_empty() {
            return;
        }
        self.bus.emit(AllocEvent::RemoteFreeDrained {
            vcpu,
            class: cl as u16,
            count: objs.len() as u32,
        });
        let detach_ns = self.bus.cost().contended_lock_ns;
        self.bus.emit(AllocEvent::ContentionCharged {
            vcpu,
            ns: detach_ns,
        });
        self.return_objects(shard, cl, objs, true);
    }

    /// Drains every deferred remote free — partial message batches
    /// included — back into the middle tiers: the full-barrier drain the
    /// transfer-plunder pass runs, also available to tests and shutdown
    /// paths. A no-op under the owner-only arm.
    pub fn drain_deferred(&mut self) {
        if self.cfg.free_arm == FreeArm::OwnerOnly {
            return;
        }
        let batches = self.deferred.flush_outbox();
        if batches > 0 {
            let ns = self.bus.cost().msg_batch_ns * batches as f64;
            self.bus.emit(AllocEvent::ContentionCharged { vcpu: 0, ns });
        }
        let drained = self.deferred.drain_all();
        for (class, objs) in drained {
            self.adopt_drained(0, 0, class as usize, objs);
        }
    }

    /// Pushes surplus objects down the hierarchy (transfer cache, then the
    /// central free list). Returns the deepest tier touched.
    fn return_objects(
        &mut self,
        shard: usize,
        cl: usize,
        objs: Vec<u64>,
        central_only: bool,
    ) -> AllocPath {
        if objs.is_empty() {
            return AllocPath::TransferCache;
        }
        let rest = if central_only {
            self.transfer.stash_central(cl, objs, &mut self.bus)
        } else {
            self.transfer.stash(shard, cl, objs, &mut self.bus)
        };
        if rest.is_empty() {
            return AllocPath::TransferCache;
        }
        self.bus.emit(AllocEvent::CentralReturn {
            class: cl as u16,
            count: rest.len() as u32,
        });
        let mut released = false;
        for addr in rest {
            let id = self
                .pagemap
                .span_of(addr)
                .expect("cached object lost its span");
            // A full drain emits SpanRetire inside, feeding the sanitizer.
            released |= self.central[cl].dealloc(
                addr,
                id,
                &mut self.spans,
                &mut self.pagemap,
                &mut self.pageheap,
                &mut self.bus,
            );
        }
        if released {
            AllocPath::PageHeap
        } else {
            AllocPath::CentralFreeList
        }
    }

    /// Runs due background maintenance: the §4.1 cache resizer, the §4.2
    /// transfer-cache plunder, and the pageheap's gradual OS release. The
    /// workload driver calls this as simulated time advances.
    pub fn maintain(&mut self) {
        // Maintenance is a drain point: any fast-path aggregates the bus is
        // holding (batched-emission mode) land before background events.
        self.bus.flush_fastpath();
        let now = self.clock.now_ns();
        if self.cfg.dynamic_percpu && now >= self.next_resize_ns {
            self.next_resize_ns = now + self.cfg.resize_interval_ns;
            let evicted = self.percpu.rebalance(
                self.cfg.resize_top_n,
                self.cfg.resize_step_bytes,
                self.cfg.resize_floor_bytes,
                &mut self.bus,
            );
            for (cl, objs) in evicted {
                self.return_objects(0, cl, objs, true);
            }
        }
        if self.cfg.transfer.is_sharded() && now >= self.next_plunder_ns {
            self.next_plunder_ns = now + self.cfg.plunder_interval_ns;
            let overflow = self.transfer.plunder(&mut self.bus);
            for (cl, objs) in overflow {
                self.return_objects(0, cl, objs, true);
            }
            // Plunder: the third drain point — a full-barrier adoption of
            // everything still parked, partial batches included.
            self.drain_deferred();
        }
        if now >= self.next_decay_ns {
            self.next_decay_ns = now + self.cfg.decay_interval_ns;
            // Idle-cache reclaim: per-CPU caches shed to the transfer tier,
            // the transfer tier sheds to the central free lists.
            let evicted = self.percpu.decay();
            for (cl, objs) in evicted {
                self.return_objects(0, cl, objs, true);
            }
            let evicted = self.transfer.decay(&mut self.bus);
            for (cl, objs) in evicted {
                self.bus.emit(AllocEvent::CentralReturn {
                    class: cl as u16,
                    count: objs.len() as u32,
                });
                for addr in objs {
                    let id = self
                        .pagemap
                        .span_of(addr)
                        .expect("cached object lost its span");
                    self.central[cl].dealloc(
                        addr,
                        id,
                        &mut self.spans,
                        &mut self.pagemap,
                        &mut self.pageheap,
                        &mut self.bus,
                    );
                }
            }
        }
        if now >= self.next_release_ns {
            self.next_release_ns = now + self.cfg.release_interval_ns;
            self.pageheap.background_release(&mut self.bus);
            if let Some(limit) = self.cfg.soft_limit {
                // Soft limit: synchronously push resident bytes back toward
                // the limit (bounded release-and-retry inside).
                self.pageheap.enforce_soft_limit(limit, &mut self.bus);
            }
        }
    }

    /// Builds a cross-tier state dump for the sanitizer's conservation
    /// audit: per-class cached-object counts, every live span with its
    /// occupancy-list placement, pagemap extent, filler hugepage bitmaps,
    /// and the byte-accounting terms.
    fn build_snapshot(&self) -> Snapshot {
        let percpu = self.percpu.cached_objects_by_class();
        let transfer = self.transfer.cached_objects_by_class();
        let deferred = self.deferred.in_flight_by_class();
        let classes = (0..self.table.num_classes())
            .map(|cl| ClassTierSnapshot {
                class: cl as u16,
                object_size: self.table.info(cl).size,
                percpu_objects: percpu[cl],
                transfer_objects: transfer[cl],
                deferred_objects: deferred[cl],
                central_free_objects: self.central[cl].free_objects(),
            })
            .collect();
        let spans = self
            .spans
            .iter()
            .map(|(id, s)| SpanSnapshot {
                id: id.0,
                start: s.start,
                pages: s.pages,
                size_class: s.size_class,
                capacity: s.capacity,
                allocated: s.allocated,
                free_count: s.free_count(),
                placement: match s.state {
                    SpanState::InFreeList { list, .. } => SpanPlacement::Freelist { list },
                    SpanState::Full | SpanState::Released => SpanPlacement::Full,
                    SpanState::Large => SpanPlacement::Large,
                },
            })
            .collect();
        let hugepages = self
            .pageheap
            .filler()
            .hugepage_accounting()
            .into_iter()
            .map(|(base, used, free, released, both)| HugepageSnapshot {
                base,
                used_pages: used,
                free_pages: free,
                released_pages: released,
                used_and_released: both,
            })
            .collect();
        let frag = self.fragmentation();
        Snapshot {
            classes,
            spans,
            occupancy_lists: self.cfg.cfl_lists,
            pagemap_pages: self.pagemap.len() as u64,
            pages_per_leaf: crate::pagemap::PAGES_PER_LEAF,
            pagemap_leaves: self
                .pagemap
                .leaf_occupancy()
                .into_iter()
                .map(|l| PagemapLeafSnapshot {
                    base_page: l.base_page,
                    pages_used: l.pages_used,
                })
                .collect(),
            pages_per_hugepage: wsc_sim_os::addr::TCMALLOC_PAGES_PER_HUGE as u32,
            hugepages,
            resident_bytes: frag.resident_bytes,
            live_bytes: frag.live_bytes,
            fragmentation_bytes: frag.total_bytes(),
            arena: {
                let a = self.spans.arena_stats();
                wsc_sanitizer::ArenaSnapshot {
                    slots_total: a.slots_total,
                    slots_live: a.slots_live,
                    free_pool_entries: a.free_pool_entries,
                    bitmap_pool_words: a.bitmap_pool_words,
                    reserved_entries: a.reserved_entries,
                    reserved_words: a.reserved_words,
                    retired_entries: a.retired_entries,
                    retired_words: a.retired_words,
                }
            },
        }
    }

    /// Runs a cross-tier conservation audit immediately, regardless of the
    /// sampling cadence. Returns the number of new violations found (also
    /// queued as [`SanitizerReport`]s).
    // lint:allow(event-completeness) the audit *consumes* the event-derived
    // snapshot; emitting from here would feed the auditor its own output.
    pub fn audit_now(&mut self) -> usize {
        let snap = self.build_snapshot();
        self.bus.sanitizer_mut().run_audit(&snap)
    }

    /// Sanitizer reports accumulated so far (shadow violations + audit
    /// findings), in detection order.
    pub fn sanitizer_reports(&self) -> &[SanitizerReport] {
        self.bus.sanitizer().reports()
    }

    /// Drains and returns the accumulated sanitizer reports.
    // lint:allow(event-completeness) drains a sink's output queue; no
    // allocator tier state changes.
    pub fn take_sanitizer_reports(&mut self) -> Vec<SanitizerReport> {
        self.bus.sanitizer_mut().take_reports()
    }

    /// Number of cross-tier audits run (sampled cadence + explicit calls).
    pub fn audits_run(&self) -> u64 {
        self.bus.sanitizer().audits_run()
    }

    /// Fragmentation snapshot (Figures 5b and 6b).
    pub fn fragmentation(&self) -> FragmentationBreakdown {
        let deferred_bytes = self
            .deferred
            .in_flight_by_class()
            .iter()
            .enumerate()
            .map(|(cl, &n)| n * self.table.info(cl).size)
            .sum();
        FragmentationBreakdown {
            live_bytes: self.live_requested_bytes,
            internal_bytes: self.internal_frag_bytes,
            percpu_bytes: self.percpu.cached_bytes_total(),
            transfer_bytes: self.transfer.cached_bytes(),
            central_bytes: self.central.iter().map(|c| c.external_bytes()).sum(),
            pageheap_bytes: self.pageheap.stats().total_free_bytes(),
            deferred_bytes,
            resident_bytes: self.pageheap.vmm().page_table().resident_bytes(),
        }
    }

    /// The deferred-free state: in-flight counts and queue/drain totals
    /// for the cross-thread free arms.
    pub fn deferred(&self) -> &DeferredFrees {
        &self.deferred
    }

    /// Application-requested live bytes.
    pub fn live_bytes(&self) -> u64 {
        self.live_requested_bytes
    }

    /// Live object count.
    pub fn live_objects(&self) -> u64 {
        self.live_objects
    }

    /// Resident heap bytes (the RAM metric of the fleet experiments).
    pub fn resident_bytes(&self) -> u64 {
        self.pageheap.vmm().page_table().resident_bytes()
    }

    /// Hugepage coverage of the heap (Figure 17a).
    pub fn hugepage_coverage(&self) -> f64 {
        self.pageheap.vmm().page_table().hugepage_coverage()
    }

    /// Injected-fault counters from the simulated kernel (all zero without
    /// a fault plan).
    pub fn fault_stats(&self) -> wsc_sim_os::FaultStats {
        self.pageheap.os().fault_stats()
    }

    /// True while hugepage backing has been denied for part of the heap and
    /// the khugepaged re-promotion pass has not yet recovered it.
    pub fn os_degraded(&self) -> bool {
        self.pageheap.os().is_degraded()
    }

    /// Allocator cycle accounting (Figure 6a) — derived from the event
    /// stream by the bus's [`StatsView`](crate::stats::StatsView).
    ///
    /// Under batched fast-path emission
    /// ([`TcmallocConfig::batch_fastpath_events`]) counts charged since the
    /// last drain point are still pending; call
    /// [`flush_events`](Self::flush_events) (or [`maintain`](Self::maintain))
    /// first for exact totals.
    pub fn cycles(&self) -> &CycleStats {
        self.bus.cycles()
    }

    /// Flushes any pending batched fast-path aggregates to the event
    /// sinks. A no-op unless `batch_fastpath_events` is engaged; call
    /// before reading [`cycles`](Self::cycles) mid-run.
    // Bus plumbing: drains already-attributed counts, touches no tier
    // state itself.
    pub fn flush_events(&mut self) {
        self.bus.flush_fastpath();
    }

    /// The sampled allocation profile (Figures 7 and 8) — derived from
    /// `SamplerPick` / `SampledFree` events.
    pub fn profile(&self) -> &AllocationProfile {
        self.bus.profile()
    }

    /// The raw event stream, when the config enabled the
    /// [`Recorder`](crate::events::Recorder) (empty otherwise).
    pub fn recorded_events(&self) -> &[AllocEvent] {
        self.bus.recorded()
    }

    /// The bounded trace ring, when `trace_capacity > 0`.
    pub fn trace(&self) -> Option<&TraceRing> {
        self.bus.trace()
    }

    /// Attaches an additional [`EventSink`]; it observes every subsequent
    /// event after the built-in consumers.
    // Bus plumbing: registers an observer, touches no tier state to
    // attribute.
    pub fn attach_sink(&mut self, sink: Box<dyn EventSink>) {
        self.bus.attach(sink);
    }

    /// Per-vCPU miss counts (Figure 9b).
    pub fn percpu_miss_counts(&self) -> Vec<u64> {
        self.percpu.miss_counts()
    }

    /// Per-vCPU cache byte budget (inspects the §4.1 resizer's work).
    pub fn percpu_budget(&self, vcpu: wsc_sim_os::rseq::VcpuId) -> u64 {
        self.percpu.max_bytes(vcpu)
    }

    /// The central free list for a class (span telemetry, Figures 13/16).
    pub fn central(&self, class: usize) -> &CentralFreeList {
        &self.central[class]
    }

    /// The size-class table.
    pub fn table(&self) -> &SizeClassTable {
        &self.table
    }

    /// The pageheap (Figure 15 telemetry).
    pub fn pageheap(&self) -> &PageHeap {
        &self.pageheap
    }

    /// The platform this allocator instance runs on.
    pub fn platform(&self) -> &Platform {
        &self.platform
    }

    /// The active configuration.
    pub fn config(&self) -> &TcmallocConfig {
        &self.cfg
    }

    /// The cost model in effect.
    pub fn cost_model(&self) -> &CostModel {
        self.bus.cost()
    }

    /// The shared simulated clock.
    pub fn clock(&self) -> &Clock {
        &self.clock
    }

    /// Bytes cached in the central transfer arrays (diagnostics).
    pub fn transfer_central_bytes(&self) -> u64 {
        self.transfer.central_cached_bytes()
    }

    /// Number of domain-sharded transfer caches activated (§4.2).
    pub fn active_transfer_domains(&self) -> usize {
        self.transfer.active_domains()
    }
}

#[cfg(test)]
// Tests may unwrap: a panic IS the failure report here.
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::stats::CycleCategory;

    fn alloc(cfg: TcmallocConfig) -> Tcmalloc {
        Tcmalloc::new(cfg, Platform::chiplet("t", 1, 2, 4, 2), Clock::new())
    }

    #[test]
    fn malloc_free_round_trip() {
        let mut t = alloc(TcmallocConfig::baseline());
        let a = t.malloc(100, CpuId(0));
        assert!(a.actual_bytes >= 100);
        assert!(a.ns > 0.0);
        assert_eq!(t.live_bytes(), 100);
        t.free(a.addr, 100, CpuId(0));
        assert_eq!(t.live_bytes(), 0);
        assert_eq!(t.live_objects(), 0);
    }

    #[test]
    fn first_alloc_cold_then_warm() {
        let mut t = alloc(TcmallocConfig::baseline());
        let a = t.malloc(64, CpuId(0));
        assert_eq!(a.path, AllocPath::Mmap, "cold start reaches the OS");
        let b = t.malloc(64, CpuId(0));
        assert_eq!(b.path, AllocPath::PerCpu, "refilled batch serves the rest");
        assert!(b.ns < a.ns);
    }

    #[test]
    fn free_then_alloc_reuses_object() {
        let mut t = alloc(TcmallocConfig::baseline());
        let a = t.malloc(64, CpuId(0));
        let _b = t.malloc(64, CpuId(0));
        t.free(a.addr, 64, CpuId(0));
        let c = t.malloc(64, CpuId(0));
        assert_eq!(c.addr, a.addr, "LIFO reuse through the per-CPU cache");
        assert_eq!(c.path, AllocPath::PerCpu);
    }

    #[test]
    fn large_allocation_bypasses_caches() {
        let mut t = alloc(TcmallocConfig::baseline());
        let a = t.malloc(1 << 20, CpuId(0));
        assert!(matches!(a.path, AllocPath::Mmap | AllocPath::PageHeap));
        assert_eq!(a.actual_bytes, 1 << 20);
        t.free(a.addr, 1 << 20, CpuId(0));
        assert_eq!(t.live_bytes(), 0);
        // A second large allocation of the same size reuses the cached run.
        let b = t.malloc(1 << 20, CpuId(0));
        assert_eq!(b.path, AllocPath::PageHeap);
        t.free(b.addr, 1 << 20, CpuId(0));
    }

    #[test]
    #[should_panic]
    fn double_free_large_panics() {
        let mut t = alloc(TcmallocConfig::baseline());
        let a = t.malloc(1 << 20, CpuId(0));
        t.free(a.addr, 1 << 20, CpuId(0));
        t.free(a.addr, 1 << 20, CpuId(0));
    }

    #[test]
    fn batched_emission_changes_no_observable_numbers() {
        // The same churn under per-op and batched emission: every returned
        // address and priced ns must match op-for-op, and after a drain
        // point the integer cycle ledgers must be bit-identical.
        let mut per_op = alloc(TcmallocConfig::optimized());
        let mut batched = alloc(TcmallocConfig::optimized().with_batched_fastpath_events(true));
        let mut live = Vec::new();
        for i in 0..3000u64 {
            let size = 16 + (i % 40) * 24;
            let cpu = CpuId((i % 4) as u32);
            let a = per_op.malloc(size, cpu);
            let b = batched.malloc(size, cpu);
            assert_eq!((a.addr, a.path), (b.addr, b.path));
            assert_eq!(a.ns, b.ns, "pricing drifted at op {i}");
            live.push((a.addr, size, cpu));
            if i % 3 == 0 {
                let (addr, sz, c) = live.swap_remove((i as usize * 7) % live.len());
                let fa = per_op.free(addr, sz, c);
                let fb = batched.free(addr, sz, c);
                assert_eq!(fa.ns, fb.ns);
            }
        }
        batched.flush_events();
        assert_eq!(per_op.cycles(), batched.cycles());
        assert_eq!(per_op.live_bytes(), batched.live_bytes());
        assert_eq!(per_op.resident_bytes(), batched.resident_bytes());
        assert!(
            batched.cycles().ops(CycleCategory::CpuCache) > 1000,
            "churn exercised the fast path"
        );
    }

    #[test]
    fn accounting_identity_holds() {
        let mut t = alloc(TcmallocConfig::baseline());
        let mut live = Vec::new();
        for i in 0..2000u64 {
            let size = 16 + (i % 50) * 24;
            let a = t.malloc(size, CpuId((i % 8) as u32));
            live.push((a.addr, size));
            if i % 3 == 0 {
                let (addr, sz) = live.swap_remove((i as usize * 7) % live.len());
                t.free(addr, sz, CpuId((i % 8) as u32));
            }
        }
        let f = t.fragmentation();
        let accounted = f.live_bytes + f.total_bytes();
        // Resident = live + fragmentation, up to hugepages parked in the
        // bounded HugeCache whose residency is page-table-tracked.
        assert_eq!(f.resident_bytes, accounted, "byte accounting identity");
        for (addr, sz) in live {
            t.free(addr, sz, CpuId(0));
        }
        assert_eq!(t.live_bytes(), 0);
        let f = t.fragmentation();
        assert_eq!(f.internal_bytes, 0);
    }

    #[test]
    fn cycle_categories_populated() {
        let mut t = alloc(TcmallocConfig::baseline());
        for i in 0..1000u64 {
            let a = t.malloc(64, CpuId(0));
            if i % 2 == 0 {
                t.free(a.addr, 64, CpuId(0));
            }
        }
        let c = t.cycles();
        assert!(c.ns(CycleCategory::CpuCache) > 0.0);
        assert!(c.ns(CycleCategory::Prefetch) > 0.0);
        assert!(c.ns(CycleCategory::PageHeap) > 0.0);
        // Fast path dominates op counts.
        assert!(c.ops(CycleCategory::CpuCache) > c.ops(CycleCategory::PageHeap));
    }

    #[test]
    fn sampling_records_sizes_and_lifetimes() {
        let cfg = TcmallocConfig {
            sample_period_bytes: 1024,
            ..TcmallocConfig::baseline()
        };
        let mut t = alloc(cfg);
        let clock = t.clock().clone();
        let mut addrs = Vec::new();
        for _ in 0..100 {
            addrs.push(t.malloc(256, CpuId(0)).addr);
        }
        clock.advance(5_000);
        for a in addrs {
            t.free(a, 256, CpuId(0));
        }
        assert!(t.profile().size_by_count.count() > 0.0);
        let lifetimes = t.profile().lifetime_for_size_exp(8);
        assert!(lifetimes.count() > 0.0);
        assert_eq!(lifetimes.quantile(0.5), 4096, "5 µs bucket");
    }

    #[test]
    fn nuca_activates_domains_lazily() {
        let mut t = alloc(TcmallocConfig::baseline().with_nuca_transfer());
        // CPUs 0 and 8 are in different domains on this chiplet platform.
        let a = t.malloc(64, CpuId(0));
        t.free(a.addr, 64, CpuId(0));
        assert!(t.active_transfer_domains() <= 1);
    }

    #[test]
    fn maintain_runs_resizer() {
        let mut t = alloc(TcmallocConfig::baseline().with_heterogeneous_percpu());
        let clock = t.clock().clone();
        // Make vCPU 0 hot and vCPU 1 idle.
        for _ in 0..1000 {
            let a = t.malloc(64, CpuId(0));
            t.free(a.addr, 64, CpuId(0));
        }
        let _ = t.malloc(64, CpuId(1));
        let before = t.percpu_budget(wsc_sim_os::rseq::VcpuId(0));
        clock.advance(6 * wsc_sim_os::clock::NS_PER_SEC);
        t.maintain();
        // Budget may or may not move depending on miss pattern, but maintain
        // must not corrupt anything; allocate again to verify.
        let a = t.malloc(64, CpuId(0));
        t.free(a.addr, 64, CpuId(0));
        let _ = before;
    }

    #[test]
    fn zero_size_malloc_is_valid() {
        let mut t = alloc(TcmallocConfig::baseline());
        let a = t.malloc(0, CpuId(0));
        assert!(a.actual_bytes >= 1);
        t.free(a.addr, 0, CpuId(0));
        assert_eq!(t.live_bytes(), 0);
    }
}
