//! Deferred cross-thread frees: the two "remote free" mechanisms.
//!
//! When a thread frees an object whose span is owned by another vCPU, the
//! free cannot go into the local per-CPU cache without un-sharding the
//! front end. Real allocators solve this two ways, and this module models
//! both behind [`FreeArm`](crate::config::FreeArm):
//!
//! * **Atomic list** (rpmalloc): each remote free pushes the object onto
//!   the owning *span's* deferred list with one contended CAS; the owner
//!   adopts whole lists at drain points by detaching them atomically.
//! * **Message passing** (snmalloc): remote frees accumulate in a
//!   sender-side batch and are posted to the owner's inbox once the batch
//!   fills ([`MSG_BATCH`] objects), amortizing one handoff per batch; the
//!   owner drains its inbox on its next per-CPU cache miss.
//!
//! The simulator is deterministic, so the "atomics" here are charged via
//! the cost model (`atomic_cas_ns` / `msg_batch_ns` / `contended_lock_ns`)
//! rather than raced: all containers are `BTreeMap`s (deterministic
//! iteration order) behind mutexes, and counters are atomics only so the
//! `&self` snapshot paths can read them. Drain points are deterministic —
//! per-CPU miss, central refill, transfer plunder — so the whole event
//! stream stays byte-identical for a given schedule.

// lint:lock-order(span_lists, outbox, inboxes) — canonical acquisition
// order for this file's three mutexes: the per-span deferred lists first,
// then the sender-side outbox, then the owner inboxes (the flush path
// moves batches outbox -> inbox, and nothing may hold an inbox while
// acquiring either earlier lock).

use crate::config::FreeArm;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Sender-side batch size of the message-passing arm: remote frees buffer
/// locally and one handoff posts [`MSG_BATCH`] objects to the owner
/// (snmalloc posts whole batches for the same amortization).
pub const MSG_BATCH: usize = 8;

/// How [`DeferredFrees::queue_remote`] parked the object — tells the
/// caller which synchronization cost to charge.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum QueuedVia {
    /// One contended CAS onto the owning span's deferred list.
    Cas,
    /// Buffered in the sender's local outbox; no synchronization yet.
    Buffered,
    /// The push filled a batch that was handed to the owner's inbox.
    Batched,
}

/// The deferred-free state for one allocator instance: both arms'
/// containers plus the in-flight accounting the conservation audit reads.
#[derive(Debug)]
pub struct DeferredFrees {
    arm: FreeArm,
    /// Atomic-list arm: objects parked per `(class, span id)`.
    span_lists: Mutex<BTreeMap<(u16, u32), Vec<u64>>>,
    /// Message-passing arm: sender-side partial batches, keyed
    /// `(sender vcpu, owner vcpu, class)`.
    outbox: Mutex<BTreeMap<(u32, u32, u16), Vec<u64>>>,
    /// Message-passing arm: full batches awaiting the owner, keyed
    /// `(owner vcpu, class)`.
    inboxes: Mutex<BTreeMap<(u32, u16), Vec<u64>>>,
    /// Remote frees ever queued.
    queued_total: AtomicU64,
    /// Remote frees ever drained back into the tiers.
    drained_total: AtomicU64,
    /// Objects currently parked (queued, not yet drained), per class.
    in_flight_by_class: Vec<AtomicU64>,
}

impl DeferredFrees {
    /// Empty deferred state for `classes` size classes under `arm`.
    pub fn new(arm: FreeArm, classes: usize) -> Self {
        Self {
            arm,
            span_lists: Mutex::new(BTreeMap::new()),
            outbox: Mutex::new(BTreeMap::new()),
            inboxes: Mutex::new(BTreeMap::new()),
            queued_total: AtomicU64::new(0),
            drained_total: AtomicU64::new(0),
            in_flight_by_class: (0..classes).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// The active free arm.
    pub fn arm(&self) -> FreeArm {
        self.arm
    }

    /// Parks a remote free issued by `sender` against a span owned by
    /// `owner`. Returns how the object was parked so the caller can charge
    /// the matching synchronization cost.
    pub fn queue_remote(
        &self,
        sender: u32,
        owner: u32,
        class: u16,
        span: u32,
        addr: u64,
    ) -> QueuedVia {
        // lint:allow(atomic-ordering) Relaxed: monotone counters guarding
        // no data; readers only need eventual totals.
        self.queued_total.fetch_add(1, Ordering::Relaxed);
        // lint:allow(atomic-ordering) Relaxed: same counter-only contract.
        self.in_flight_by_class[class as usize].fetch_add(1, Ordering::Relaxed);
        match self.arm {
            // Owner-only never routes here (the allocator short-circuits
            // remote detection), so the atomic-list path doubles as the
            // defensive default.
            FreeArm::OwnerOnly | FreeArm::AtomicList => {
                self.span_lists
                    .lock()
                    .expect("span_lists mutex poisoned")
                    .entry((class, span))
                    .or_default()
                    .push(addr);
                QueuedVia::Cas
            }
            FreeArm::MessagePassing => {
                let mut outbox = self.outbox.lock().expect("outbox mutex poisoned");
                let buf = outbox.entry((sender, owner, class)).or_default();
                buf.push(addr);
                if buf.len() >= MSG_BATCH {
                    let batch = std::mem::take(buf);
                    drop(outbox);
                    self.inboxes
                        .lock()
                        .expect("inboxes mutex poisoned")
                        .entry((owner, class))
                        .or_default()
                        .extend(batch);
                    QueuedVia::Batched
                } else {
                    QueuedVia::Buffered
                }
            }
        }
    }

    /// Drains every batch posted to `owner`'s inbox (message-passing arm;
    /// empty under the others). The per-CPU-miss drain point.
    pub fn drain_inbox(&self, owner: u32) -> Vec<(u16, Vec<u64>)> {
        if self.arm != FreeArm::MessagePassing {
            return Vec::new();
        }
        let mut inboxes = self.inboxes.lock().expect("inboxes mutex poisoned");
        let keys: Vec<(u32, u16)> = inboxes
            .range((owner, 0)..=(owner, u16::MAX))
            .map(|(k, _)| *k)
            .collect();
        let mut out = Vec::new();
        for k in keys {
            if let Some(objs) = inboxes.remove(&k) {
                self.note_drained(k.1, objs.len());
                out.push((k.1, objs));
            }
        }
        out
    }

    /// Drains everything parked for one size class — span lists under the
    /// atomic arm, posted inboxes under message passing. The central-refill
    /// drain point.
    pub fn drain_class(&self, class: u16) -> Vec<u64> {
        let mut out = Vec::new();
        match self.arm {
            FreeArm::OwnerOnly => {}
            FreeArm::AtomicList => {
                let mut lists = self.span_lists.lock().expect("span_lists mutex poisoned");
                let keys: Vec<(u16, u32)> = lists
                    .range((class, 0)..=(class, u32::MAX))
                    .map(|(k, _)| *k)
                    .collect();
                for k in keys {
                    if let Some(objs) = lists.remove(&k) {
                        out.extend(objs);
                    }
                }
            }
            FreeArm::MessagePassing => {
                let mut inboxes = self.inboxes.lock().expect("inboxes mutex poisoned");
                let keys: Vec<(u32, u16)> =
                    inboxes.keys().filter(|k| k.1 == class).copied().collect();
                for k in keys {
                    if let Some(objs) = inboxes.remove(&k) {
                        out.extend(objs);
                    }
                }
            }
        }
        if !out.is_empty() {
            self.note_drained(class, out.len());
        }
        out
    }

    /// Posts every partial sender-side batch to its owner's inbox,
    /// returning the number of (partial) batches handed over. A no-op
    /// outside the message-passing arm.
    pub fn flush_outbox(&self) -> usize {
        if self.arm != FreeArm::MessagePassing {
            return 0;
        }
        let pending = std::mem::take(&mut *self.outbox.lock().expect("outbox mutex poisoned"));
        if pending.is_empty() {
            return 0;
        }
        let mut inboxes = self.inboxes.lock().expect("inboxes mutex poisoned");
        let mut batches = 0;
        for ((_sender, owner, class), objs) in pending {
            if objs.is_empty() {
                continue;
            }
            batches += 1;
            inboxes.entry((owner, class)).or_default().extend(objs);
        }
        batches
    }

    /// Detaches every deferred list and posted inbox, grouped by class —
    /// the full-barrier drain of the transfer-plunder pass. Partial
    /// outboxes are NOT flushed here; callers that want a complete drain
    /// call [`flush_outbox`](Self::flush_outbox) first (and charge its
    /// batch handoffs).
    pub fn drain_all(&self) -> Vec<(u16, Vec<u64>)> {
        let mut by_class: BTreeMap<u16, Vec<u64>> = BTreeMap::new();
        for ((class, _span), objs) in
            std::mem::take(&mut *self.span_lists.lock().expect("span_lists mutex poisoned"))
        {
            by_class.entry(class).or_default().extend(objs);
        }
        for ((_owner, class), objs) in
            std::mem::take(&mut *self.inboxes.lock().expect("inboxes mutex poisoned"))
        {
            by_class.entry(class).or_default().extend(objs);
        }
        for (class, objs) in &by_class {
            self.note_drained(*class, objs.len());
        }
        by_class.into_iter().collect()
    }

    /// Objects currently parked across all classes.
    pub fn in_flight(&self) -> u64 {
        self.in_flight_by_class
            .iter()
            // lint:allow(atomic-ordering) Relaxed: counter snapshot; the
            // simulator is single-threaded per allocator instance.
            .map(|c| c.load(Ordering::Relaxed))
            .sum()
    }

    /// Objects currently parked, per class (the conservation audit's
    /// `deferred` term).
    pub fn in_flight_by_class(&self) -> Vec<u64> {
        self.in_flight_by_class
            .iter()
            // lint:allow(atomic-ordering) Relaxed: same snapshot contract.
            .map(|c| c.load(Ordering::Relaxed))
            .collect()
    }

    /// Remote frees ever queued.
    pub fn queued_total(&self) -> u64 {
        // lint:allow(atomic-ordering) Relaxed: monotone counter read.
        self.queued_total.load(Ordering::Relaxed)
    }

    /// Remote frees ever drained.
    pub fn drained_total(&self) -> u64 {
        // lint:allow(atomic-ordering) Relaxed: monotone counter read.
        self.drained_total.load(Ordering::Relaxed)
    }

    fn note_drained(&self, class: u16, count: usize) {
        let n = count as u64;
        // lint:allow(atomic-ordering) Relaxed: counter-only, as in queue.
        self.drained_total.fetch_add(n, Ordering::Relaxed);
        // lint:allow(atomic-ordering) Relaxed: same contract; queue always
        // precedes drain in program order, so this never underflows.
        self.in_flight_by_class[class as usize].fetch_sub(n, Ordering::Relaxed);
    }
}

#[cfg(test)]
// Tests may unwrap: a panic IS the failure report here.
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn atomic_list_parks_per_span_and_drains_per_class() {
        let d = DeferredFrees::new(FreeArm::AtomicList, 4);
        assert_eq!(d.queue_remote(1, 0, 2, 7, 0x100), QueuedVia::Cas);
        assert_eq!(d.queue_remote(1, 0, 2, 7, 0x110), QueuedVia::Cas);
        assert_eq!(d.queue_remote(2, 0, 2, 9, 0x200), QueuedVia::Cas);
        assert_eq!(d.queue_remote(1, 0, 3, 7, 0x300), QueuedVia::Cas);
        assert_eq!(d.in_flight(), 4);
        assert_eq!(d.in_flight_by_class(), vec![0, 0, 3, 1]);
        let mut drained = d.drain_class(2);
        drained.sort_unstable();
        assert_eq!(drained, vec![0x100, 0x110, 0x200]);
        assert_eq!(d.in_flight(), 1, "class 3 still parked");
        assert_eq!(d.drain_class(2), Vec::<u64>::new(), "idempotent");
        assert_eq!(d.queued_total(), 4);
        assert_eq!(d.drained_total(), 3);
    }

    #[test]
    fn message_passing_batches_before_posting() {
        let d = DeferredFrees::new(FreeArm::MessagePassing, 2);
        for i in 0..(MSG_BATCH as u64 - 1) {
            assert_eq!(
                d.queue_remote(1, 0, 1, 5, 0x1000 + i * 16),
                QueuedVia::Buffered
            );
        }
        // Nothing posted yet: the owner's inbox drain sees nothing.
        assert!(d.drain_inbox(0).is_empty());
        assert_eq!(d.in_flight(), MSG_BATCH as u64 - 1);
        // The batch-completing push hands the whole batch over.
        assert_eq!(d.queue_remote(1, 0, 1, 5, 0x2000), QueuedVia::Batched);
        let drained = d.drain_inbox(0);
        assert_eq!(drained.len(), 1);
        assert_eq!(drained[0].0, 1);
        assert_eq!(drained[0].1.len(), MSG_BATCH);
        assert_eq!(d.in_flight(), 0);
    }

    #[test]
    fn flush_outbox_posts_partial_batches() {
        let d = DeferredFrees::new(FreeArm::MessagePassing, 2);
        d.queue_remote(1, 0, 0, 1, 0x10);
        d.queue_remote(2, 0, 0, 2, 0x20);
        d.queue_remote(1, 3, 1, 4, 0x30);
        assert!(d.drain_inbox(0).is_empty(), "partials are sender-local");
        assert_eq!(d.flush_outbox(), 3, "three (sender, owner, class) keys");
        assert_eq!(d.flush_outbox(), 0, "second flush finds nothing");
        let to_zero = d.drain_inbox(0);
        assert_eq!(to_zero.iter().map(|(_, o)| o.len()).sum::<usize>(), 2);
        let to_three = d.drain_inbox(3);
        assert_eq!(to_three, vec![(1u16, vec![0x30u64])]);
        assert_eq!(d.in_flight(), 0);
    }

    #[test]
    fn drain_all_covers_both_arms_containers() {
        let d = DeferredFrees::new(FreeArm::AtomicList, 3);
        d.queue_remote(1, 0, 0, 1, 0x10);
        d.queue_remote(1, 0, 2, 2, 0x20);
        let all = d.drain_all();
        assert_eq!(all.len(), 2);
        assert_eq!(all[0].0, 0, "classes come out in order");
        assert_eq!(all[1].0, 2);
        assert_eq!(d.in_flight(), 0);

        let m = DeferredFrees::new(FreeArm::MessagePassing, 3);
        m.queue_remote(1, 0, 0, 1, 0x10);
        m.flush_outbox();
        assert_eq!(m.drain_all(), vec![(0u16, vec![0x10u64])]);
        assert_eq!(m.drained_total(), 1);
    }

    #[test]
    fn owner_only_drains_are_empty() {
        let d = DeferredFrees::new(FreeArm::OwnerOnly, 2);
        assert!(d.drain_inbox(0).is_empty());
        assert!(d.drain_class(0).is_empty());
        assert!(d.drain_all().is_empty());
        assert_eq!(d.flush_outbox(), 0);
        assert_eq!(d.in_flight(), 0);
    }
}
