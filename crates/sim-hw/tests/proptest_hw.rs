//! Property tests for the hardware models.
//!
//! Deterministic seeded-loop properties (hermetic replacement for the
//! original proptest strategies): each case derives its inputs from a
//! [`wsc_prng::SmallRng`] stream seeded with the case index, so every run
//! explores the same input set and failures reproduce exactly.

use wsc_prng::SmallRng;
use wsc_sim_hw::cache::LlcModel;
use wsc_sim_hw::latency::LatencyModel;
use wsc_sim_hw::tlb::{PageSize, TlbGeometry, TlbSim};
use wsc_sim_hw::topology::{CpuId, DomainId, Platform};

#[test]
fn every_cpu_maps_into_valid_topology() {
    for case in 0..96u64 {
        let mut rng = SmallRng::seed_from_u64(0x11A0 + case);
        let sockets = rng.gen_range(1u32..3);
        let domains = rng.gen_range(1u32..5);
        let cores = rng.gen_range(1u32..9);
        let smt = rng.gen_range(1u32..3);
        let p = Platform::chiplet("t", sockets, domains, cores, smt);
        for cpu in p.cpus() {
            let d = p.domain_of(cpu);
            assert!(d.index() < p.num_domains());
            assert!(p.cpus_in_domain(d).any(|c| c == cpu));
            assert!(p.socket_of(cpu).index() < p.num_sockets());
        }
        assert_eq!(p.num_cpus(), (sockets * domains * cores * smt) as usize);
    }
}

#[test]
fn latency_is_symmetric_and_positive() {
    let p = Platform::chiplet("t", 2, 4, 4, 2);
    let m = LatencyModel::production();
    for case in 0..96u64 {
        let mut rng = SmallRng::seed_from_u64(0x11A1 + case);
        let a = CpuId(rng.gen_range(0u32..64) % p.num_cpus() as u32);
        let b = CpuId(rng.gen_range(0u32..64) % p.num_cpus() as u32);
        let ab = m.core_to_core_ns(&p, a, b);
        assert!(ab > 0.0);
        assert_eq!(ab, m.core_to_core_ns(&p, b, a));
    }
}

#[test]
fn tlb_stats_always_consistent() {
    for case in 0..96u64 {
        let mut rng = SmallRng::seed_from_u64(0x11A2 + case);
        let mut tlb = TlbSim::new(TlbGeometry::server());
        let n = rng.gen_range(1usize..400);
        for _ in 0..n {
            let addr = rng.gen_range(0u64..1 << 24);
            let size = if rng.gen::<bool>() {
                PageSize::Huge2M
            } else {
                PageSize::Base4K
            };
            tlb.access(addr << 12, size);
        }
        let s = tlb.stats();
        assert_eq!(s.l1_hits + s.l2_hits + s.walks, s.accesses);
        assert!(s.walk_rate() >= 0.0 && s.walk_rate() <= 1.0);
        assert!(s.miss_rate() >= s.walk_rate());
    }
}

#[test]
fn repeated_access_to_same_page_never_walks_twice() {
    for case in 0..96u64 {
        let mut rng = SmallRng::seed_from_u64(0x11A3 + case);
        let addr = rng.gen_range(0u64..1 << 40);
        let mut tlb = TlbSim::new(TlbGeometry::server());
        tlb.access(addr, PageSize::Base4K);
        for _ in 0..10 {
            tlb.access(addr, PageSize::Base4K);
        }
        assert_eq!(tlb.stats().walks, 1);
    }
}

#[test]
fn llc_hits_plus_misses_equal_accesses() {
    for case in 0..96u64 {
        let mut rng = SmallRng::seed_from_u64(0x11A4 + case);
        let mut llc = LlcModel::new(4, 64 << 10);
        let n = rng.gen_range(1usize..500);
        for _ in 0..n {
            let dom = rng.gen_range(0u32..4);
            let block = rng.gen_range(0u64..64);
            let bytes = rng.gen_range(1u64..4096);
            llc.access(DomainId(dom), block, bytes);
        }
        let s = llc.stats();
        assert_eq!(s.hits + s.misses(), s.accesses);
        assert!(s.miss_rate() <= 1.0);
    }
}

#[test]
fn llc_second_access_from_same_domain_hits() {
    for case in 0..96u64 {
        let mut rng = SmallRng::seed_from_u64(0x11A5 + case);
        let block = rng.gen_range(0u64..1000);
        let bytes = rng.gen_range(1u64..1024);
        let mut llc = LlcModel::new(2, 1 << 20);
        llc.access(DomainId(0), block, bytes);
        let out = llc.access(DomainId(0), block, bytes);
        assert_eq!(out, wsc_sim_hw::cache::LlcAccess::Hit);
    }
}
