//! Property tests for the hardware models.

use proptest::prelude::*;
use wsc_sim_hw::cache::LlcModel;
use wsc_sim_hw::latency::LatencyModel;
use wsc_sim_hw::tlb::{PageSize, TlbGeometry, TlbSim};
use wsc_sim_hw::topology::{CpuId, DomainId, Platform};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn every_cpu_maps_into_valid_topology(
        sockets in 1u32..3, domains in 1u32..5, cores in 1u32..9, smt in 1u32..3
    ) {
        let p = Platform::chiplet("t", sockets, domains, cores, smt);
        for cpu in p.cpus() {
            let d = p.domain_of(cpu);
            prop_assert!(d.index() < p.num_domains());
            prop_assert!(p.cpus_in_domain(d).any(|c| c == cpu));
            prop_assert!(p.socket_of(cpu).index() < p.num_sockets());
        }
        prop_assert_eq!(
            p.num_cpus(),
            (sockets * domains * cores * smt) as usize
        );
    }

    #[test]
    fn latency_is_symmetric_and_positive(
        a in 0u32..64, b in 0u32..64
    ) {
        let p = Platform::chiplet("t", 2, 4, 4, 2);
        let m = LatencyModel::production();
        let (a, b) = (CpuId(a % p.num_cpus() as u32), CpuId(b % p.num_cpus() as u32));
        let ab = m.core_to_core_ns(&p, a, b);
        prop_assert!(ab > 0.0);
        prop_assert_eq!(ab, m.core_to_core_ns(&p, b, a));
    }

    #[test]
    fn tlb_stats_always_consistent(accesses in prop::collection::vec((0u64..1 << 24, any::<bool>()), 1..400)) {
        let mut tlb = TlbSim::new(TlbGeometry::server());
        for (addr, huge) in accesses {
            let size = if huge { PageSize::Huge2M } else { PageSize::Base4K };
            tlb.access(addr << 12, size);
        }
        let s = tlb.stats();
        prop_assert_eq!(s.l1_hits + s.l2_hits + s.walks, s.accesses);
        prop_assert!(s.walk_rate() >= 0.0 && s.walk_rate() <= 1.0);
        prop_assert!(s.miss_rate() >= s.walk_rate());
    }

    #[test]
    fn repeated_access_to_same_page_never_walks_twice(addr in 0u64..(1 << 40)) {
        let mut tlb = TlbSim::new(TlbGeometry::server());
        tlb.access(addr, PageSize::Base4K);
        for _ in 0..10 {
            tlb.access(addr, PageSize::Base4K);
        }
        prop_assert_eq!(tlb.stats().walks, 1);
    }

    #[test]
    fn llc_hits_plus_misses_equal_accesses(
        ops in prop::collection::vec((0u32..4, 0u64..64, 1u64..4096), 1..500)
    ) {
        let mut llc = LlcModel::new(4, 64 << 10);
        for (dom, block, bytes) in ops {
            llc.access(DomainId(dom), block, bytes);
        }
        let s = llc.stats();
        prop_assert_eq!(s.hits + s.misses(), s.accesses);
        prop_assert!(s.miss_rate() <= 1.0);
    }

    #[test]
    fn llc_second_access_from_same_domain_hits(block in 0u64..1000, bytes in 1u64..1024) {
        let mut llc = LlcModel::new(2, 1 << 20);
        llc.access(DomainId(0), block, bytes);
        let out = llc.access(DomainId(0), block, bytes);
        prop_assert_eq!(out, wsc_sim_hw::cache::LlcAccess::Hit);
    }
}
