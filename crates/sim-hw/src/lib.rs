//! Simulated warehouse-scale server hardware.
//!
//! The paper's evaluation metrics — CPI, LLC load MPKI (Table 1), dTLB load
//! walk cycles (Table 2), inter-cache-domain transfer latency (Figure 11) —
//! come from hardware performance counters on heterogeneous production
//! platforms. This crate provides the simulated equivalents:
//!
//! * [`topology::Platform`] — sockets / NUMA nodes / last-level-cache (LLC)
//!   domains / cores / SMT, including chiplet platforms with multiple LLC
//!   domains per socket (the NUCA platforms of §4.2),
//! * [`latency::LatencyModel`] — core-to-core data-transfer latency with the
//!   2.07× inter- vs intra-domain ratio the paper measures with Intel MLC,
//! * [`tlb::TlbSim`] — a two-level set-associative LRU dTLB with separate
//!   4 KiB and 2 MiB entries, used to turn hugepage coverage into walk cycles,
//! * [`cache::LlcModel`] — per-domain LLC occupancy with cross-domain
//!   transfer tracking, used to turn allocator placement into LLC misses,
//! * [`cost::CostModel`] — the cycle/nanosecond constants of Figure 4.
//!
//! # Example
//!
//! ```
//! use wsc_sim_hw::topology::Platform;
//!
//! let p = Platform::chiplet("milan-like", 2, 4, 8, 2);
//! assert_eq!(p.num_cpus(), 2 * 4 * 8 * 2);
//! assert_eq!(p.num_domains(), 2 * 4);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod cost;
pub mod latency;
pub mod tlb;
pub mod topology;

pub use cost::CostModel;
pub use topology::{CpuId, DomainId, NodeId, Platform, SocketId};
