//! Core-to-core data-transfer latency (the paper's Figure 11).
//!
//! The paper measures, with Intel MLC, that transferring cache lines between
//! cores in *different* LLC domains of a chiplet socket costs 2.07× the
//! intra-domain latency. [`LatencyModel`] encodes that structure and
//! [`measure`] reproduces the MLC-style measurement over a [`Platform`].

use crate::topology::{CpuId, Platform};

/// Nanoseconds for a cache-to-cache transfer between two logical CPUs,
/// stratified by their topological distance.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LatencyModel {
    /// Same physical core (SMT siblings share L1/L2).
    pub smt_sibling_ns: f64,
    /// Same LLC domain, different core.
    pub intra_domain_ns: f64,
    /// Different LLC domain, same socket — the NUCA penalty.
    pub inter_domain_ns: f64,
    /// Different socket.
    pub inter_socket_ns: f64,
}

impl LatencyModel {
    /// The production-platform calibration: intra-domain 40 ns and the
    /// paper's 2.07× inter-domain ratio (Figure 11), ~130 ns cross-socket.
    pub fn production() -> Self {
        Self {
            smt_sibling_ns: 12.0,
            intra_domain_ns: 40.0,
            inter_domain_ns: 40.0 * 2.07,
            inter_socket_ns: 130.0,
        }
    }

    /// Latency between two logical CPUs on `platform`.
    pub fn core_to_core_ns(&self, platform: &Platform, a: CpuId, b: CpuId) -> f64 {
        if platform.same_core(a, b) {
            self.smt_sibling_ns
        } else if platform.same_domain(a, b) {
            self.intra_domain_ns
        } else if platform.socket_of(a) == platform.socket_of(b) {
            self.inter_domain_ns
        } else {
            self.inter_socket_ns
        }
    }

    /// Ratio of inter- to intra-domain latency (the paper reports 2.07×).
    pub fn nuca_ratio(&self) -> f64 {
        self.inter_domain_ns / self.intra_domain_ns
    }
}

impl Default for LatencyModel {
    fn default() -> Self {
        Self::production()
    }
}

/// Result of an MLC-style core-to-core sweep on a platform.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MlcMeasurement {
    /// Mean latency between distinct cores sharing an LLC domain, ns.
    pub intra_domain_ns: f64,
    /// Mean latency between cores of different LLC domains on one socket, ns.
    /// `None` on monolithic platforms (no such pair exists).
    pub inter_domain_ns: Option<f64>,
}

/// Sweeps all ordered CPU pairs (like `mlc --c2c_latency`) and averages by
/// stratum. Reproduces Figure 11 when run on a chiplet platform.
pub fn measure(platform: &Platform, model: &LatencyModel) -> MlcMeasurement {
    let mut intra = (0.0, 0u64);
    let mut inter = (0.0, 0u64);
    for a in platform.cpus() {
        for b in platform.cpus() {
            if a == b || platform.same_core(a, b) {
                continue;
            }
            let ns = model.core_to_core_ns(platform, a, b);
            if platform.same_domain(a, b) {
                intra.0 += ns;
                intra.1 += 1;
            } else if platform.socket_of(a) == platform.socket_of(b) {
                inter.0 += ns;
                inter.1 += 1;
            }
        }
    }
    MlcMeasurement {
        intra_domain_ns: if intra.1 > 0 {
            intra.0 / intra.1 as f64
        } else {
            0.0
        },
        inter_domain_ns: (inter.1 > 0).then(|| inter.0 / inter.1 as f64),
    }
}

#[cfg(test)]
// Tests may unwrap: a panic IS the failure report here.
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn strata_ordering() {
        let p = Platform::chiplet("x", 2, 4, 4, 2);
        let m = LatencyModel::production();
        let smt = m.core_to_core_ns(&p, CpuId(0), CpuId(1));
        let intra = m.core_to_core_ns(&p, CpuId(0), CpuId(2));
        let inter = m.core_to_core_ns(&p, CpuId(0), CpuId(8));
        let socket = m.core_to_core_ns(&p, CpuId(0), CpuId(32));
        assert!(smt < intra && intra < inter && inter < socket);
    }

    #[test]
    fn production_matches_paper_ratio() {
        let m = LatencyModel::production();
        assert!((m.nuca_ratio() - 2.07).abs() < 1e-9);
    }

    #[test]
    fn mlc_sweep_on_chiplet() {
        let p = Platform::chiplet("x", 1, 2, 2, 2);
        let meas = measure(&p, &LatencyModel::production());
        assert!((meas.intra_domain_ns - 40.0).abs() < 1e-9);
        let inter = meas
            .inter_domain_ns
            .expect("chiplet has inter-domain pairs");
        assert!((inter / meas.intra_domain_ns - 2.07).abs() < 1e-9);
    }

    #[test]
    fn mlc_sweep_on_monolithic_has_no_inter_domain() {
        let p = Platform::monolithic("x", 1, 4, 2);
        let meas = measure(&p, &LatencyModel::production());
        assert_eq!(meas.inter_domain_ns, None);
        assert!(meas.intra_domain_ns > 0.0);
    }

    #[test]
    fn latency_is_symmetric() {
        let p = Platform::chiplet("x", 2, 2, 2, 2);
        let m = LatencyModel::production();
        for a in p.cpus() {
            for b in p.cpus() {
                assert_eq!(m.core_to_core_ns(&p, a, b), m.core_to_core_ns(&p, b, a));
            }
        }
    }
}
