//! Last-level-cache occupancy model with cross-domain transfer tracking.
//!
//! Table 1 of the paper attributes the NUCA-aware transfer cache's throughput
//! win to a lower LLC load miss rate: when the allocator hands a core an
//! object that was last touched in *another* LLC domain, the first accesses
//! must fetch the data across the on-die fabric. [`LlcModel`] keeps one
//! byte-capacity LRU per cache domain and classifies every access as a local
//! hit, a remote-domain transfer, or a memory miss — which is all the driver
//! needs to charge realistic stall cycles and report MPKI.

use crate::topology::DomainId;
use std::collections::HashMap;

/// Outcome of an LLC access.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LlcAccess {
    /// The block was resident in the accessing domain's LLC.
    Hit,
    /// The block was resident in a *different* domain's LLC and had to be
    /// transferred (the NUCA penalty of Figure 11).
    MissRemote,
    /// The block came from memory.
    MissMemory,
}

/// LLC access counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LlcStats {
    /// Total accesses.
    pub accesses: u64,
    /// Local hits.
    pub hits: u64,
    /// Cross-domain transfers.
    pub remote_misses: u64,
    /// Memory misses.
    pub memory_misses: u64,
}

impl LlcStats {
    /// Total misses (remote + memory).
    pub fn misses(&self) -> u64 {
        self.remote_misses + self.memory_misses
    }

    /// Miss fraction, 0 when no accesses.
    pub fn miss_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses() as f64 / self.accesses as f64
        }
    }
}

/// An intrusive byte-capacity LRU keyed by block id.
#[derive(Clone, Debug)]
struct LruBytes {
    capacity: u64,
    used: u64,
    /// key -> node index; order lives in the intrusive head/tail links
    // lint:allow(hashmap-decl) keyed lookup only; never iterated
    index: HashMap<u64, usize>,
    nodes: Vec<Node>,
    head: usize, // most recent; usize::MAX when empty
    tail: usize, // least recent
    free: Vec<usize>,
}

#[derive(Clone, Copy, Debug)]
struct Node {
    key: u64,
    bytes: u64,
    prev: usize,
    next: usize,
}

const NIL: usize = usize::MAX;

impl LruBytes {
    fn new(capacity: u64) -> Self {
        Self {
            capacity,
            used: 0,
            index: HashMap::new(),
            nodes: Vec::new(),
            head: NIL,
            tail: NIL,
            free: Vec::new(),
        }
    }

    fn unlink(&mut self, i: usize) {
        let (prev, next) = (self.nodes[i].prev, self.nodes[i].next);
        if prev != NIL {
            self.nodes[prev].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.nodes[next].prev = prev;
        } else {
            self.tail = prev;
        }
    }

    fn push_front(&mut self, i: usize) {
        self.nodes[i].prev = NIL;
        self.nodes[i].next = self.head;
        if self.head != NIL {
            self.nodes[self.head].prev = i;
        }
        self.head = i;
        if self.tail == NIL {
            self.tail = i;
        }
    }

    /// Returns true (and refreshes recency) if `key` is resident.
    fn touch(&mut self, key: u64) -> bool {
        if let Some(&i) = self.index.get(&key) {
            if self.head != i {
                self.unlink(i);
                self.push_front(i);
            }
            true
        } else {
            false
        }
    }

    /// Inserts `key`; evicts LRU entries until it fits. Oversized blocks are
    /// clamped to capacity (streaming a block larger than the LLC just
    /// flushes it).
    fn insert(&mut self, key: u64, bytes: u64) {
        if self.touch(key) {
            return;
        }
        let bytes = bytes.min(self.capacity).max(1);
        while self.used + bytes > self.capacity && self.tail != NIL {
            let victim = self.tail;
            let vkey = self.nodes[victim].key;
            self.used -= self.nodes[victim].bytes;
            self.unlink(victim);
            self.index.remove(&vkey);
            self.free.push(victim);
        }
        let node = Node {
            key,
            bytes,
            prev: NIL,
            next: NIL,
        };
        let i = if let Some(i) = self.free.pop() {
            self.nodes[i] = node;
            i
        } else {
            self.nodes.push(node);
            self.nodes.len() - 1
        };
        self.index.insert(key, i);
        self.used += bytes;
        self.push_front(i);
    }

    fn remove(&mut self, key: u64) {
        if let Some(i) = self.index.remove(&key) {
            self.used -= self.nodes[i].bytes;
            self.unlink(i);
            self.free.push(i);
        }
    }

    fn contains(&self, key: u64) -> bool {
        self.index.contains_key(&key)
    }
}

/// Per-domain LLC model for one machine.
///
/// Blocks are identified by an opaque `u64` key (the workload driver uses the
/// object's base address rounded to a cache-friendly granule).
///
/// # Example
///
/// ```
/// use wsc_sim_hw::cache::{LlcAccess, LlcModel};
/// use wsc_sim_hw::topology::DomainId;
///
/// let mut llc = LlcModel::new(2, 1 << 20);
/// assert_eq!(llc.access(DomainId(0), 42, 64), LlcAccess::MissMemory);
/// assert_eq!(llc.access(DomainId(0), 42, 64), LlcAccess::Hit);
/// // Domain 1 touching the same block pays a cross-domain transfer.
/// assert_eq!(llc.access(DomainId(1), 42, 64), LlcAccess::MissRemote);
/// ```
#[derive(Clone, Debug)]
pub struct LlcModel {
    domains: Vec<LruBytes>,
    stats: LlcStats,
}

impl LlcModel {
    /// Creates a model with `num_domains` LLC domains of `bytes_per_domain`
    /// capacity each.
    ///
    /// # Panics
    ///
    /// Panics if `num_domains` is zero or capacity is zero.
    pub fn new(num_domains: usize, bytes_per_domain: u64) -> Self {
        assert!(num_domains > 0, "need at least one domain");
        assert!(bytes_per_domain > 0, "LLC capacity must be positive");
        Self {
            domains: (0..num_domains)
                .map(|_| LruBytes::new(bytes_per_domain))
                .collect(),
            stats: LlcStats::default(),
        }
    }

    /// Performs one access from `domain` to `block` of `bytes` and
    /// classifies it.
    ///
    /// # Panics
    ///
    /// Panics if `domain` is out of range.
    pub fn access(&mut self, domain: DomainId, block: u64, bytes: u64) -> LlcAccess {
        let d = domain.index();
        assert!(d < self.domains.len(), "domain {domain} out of range");
        self.stats.accesses += 1;
        if self.domains[d].touch(block) {
            self.stats.hits += 1;
            return LlcAccess::Hit;
        }
        // Not local: is any other domain holding it?
        let remote = self
            .domains
            .iter()
            .enumerate()
            .any(|(i, dom)| i != d && dom.contains(block));
        if remote {
            // Transfer: the line moves to the accessing domain.
            for (i, dom) in self.domains.iter_mut().enumerate() {
                if i != d {
                    dom.remove(block);
                }
            }
            self.domains[d].insert(block, bytes);
            self.stats.remote_misses += 1;
            LlcAccess::MissRemote
        } else {
            self.domains[d].insert(block, bytes);
            self.stats.memory_misses += 1;
            LlcAccess::MissMemory
        }
    }

    /// Evicts a block everywhere (the backing memory was unmapped).
    pub fn evict(&mut self, block: u64) {
        for dom in &mut self.domains {
            dom.remove(block);
        }
    }

    /// Counters so far.
    pub fn stats(&self) -> LlcStats {
        self.stats
    }

    /// Resets counters (cache contents stay warm).
    pub fn reset_stats(&mut self) {
        self.stats = LlcStats::default();
    }

    /// Number of modeled domains.
    pub fn num_domains(&self) -> usize {
        self.domains.len()
    }
}

#[cfg(test)]
// Tests may unwrap: a panic IS the failure report here.
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn hit_after_insert() {
        let mut llc = LlcModel::new(1, 1024);
        assert_eq!(llc.access(DomainId(0), 1, 100), LlcAccess::MissMemory);
        assert_eq!(llc.access(DomainId(0), 1, 100), LlcAccess::Hit);
        assert_eq!(llc.stats().hits, 1);
        assert_eq!(llc.stats().memory_misses, 1);
    }

    #[test]
    fn capacity_eviction_is_lru() {
        let mut llc = LlcModel::new(1, 300);
        llc.access(DomainId(0), 1, 100);
        llc.access(DomainId(0), 2, 100);
        llc.access(DomainId(0), 3, 100);
        llc.access(DomainId(0), 1, 100); // refresh 1
        llc.access(DomainId(0), 4, 100); // evicts 2 (LRU)
        assert_eq!(llc.access(DomainId(0), 1, 100), LlcAccess::Hit);
        assert_eq!(llc.access(DomainId(0), 2, 100), LlcAccess::MissMemory);
    }

    #[test]
    fn cross_domain_transfer() {
        let mut llc = LlcModel::new(2, 1024);
        llc.access(DomainId(0), 7, 64);
        assert_eq!(llc.access(DomainId(1), 7, 64), LlcAccess::MissRemote);
        // Line moved: now local to domain 1, gone from domain 0.
        assert_eq!(llc.access(DomainId(1), 7, 64), LlcAccess::Hit);
        assert_eq!(llc.access(DomainId(0), 7, 64), LlcAccess::MissRemote);
    }

    #[test]
    fn evict_removes_everywhere() {
        let mut llc = LlcModel::new(2, 1024);
        llc.access(DomainId(0), 9, 64);
        llc.evict(9);
        assert_eq!(llc.access(DomainId(0), 9, 64), LlcAccess::MissMemory);
    }

    #[test]
    fn oversized_block_clamped() {
        let mut llc = LlcModel::new(1, 100);
        assert_eq!(llc.access(DomainId(0), 1, 1000), LlcAccess::MissMemory);
        assert_eq!(llc.access(DomainId(0), 1, 1000), LlcAccess::Hit);
    }

    #[test]
    fn stats_miss_rate() {
        let mut llc = LlcModel::new(1, 1024);
        llc.access(DomainId(0), 1, 10);
        llc.access(DomainId(0), 1, 10);
        llc.access(DomainId(0), 2, 10);
        let s = llc.stats();
        assert_eq!(s.accesses, 3);
        assert_eq!(s.misses(), 2);
        assert!((s.miss_rate() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_domain_panics() {
        let mut llc = LlcModel::new(1, 1024);
        llc.access(DomainId(5), 1, 10);
    }

    #[test]
    fn many_blocks_consistency() {
        // Stress the intrusive list: interleave inserts/touches/removes.
        let mut llc = LlcModel::new(2, 4096);
        for i in 0..1000u64 {
            llc.access(DomainId((i % 2) as u32), i % 97, 64);
            if i % 13 == 0 {
                llc.evict(i % 97);
            }
        }
        let s = llc.stats();
        assert_eq!(s.accesses, 1000);
        assert_eq!(s.hits + s.misses(), 1000);
    }
}
