//! Two-level data-TLB simulation.
//!
//! Table 2 of the paper reports "dTLB load walk (%)" — the fraction of cycles
//! spent walking the page table without hitting the second-level TLB — and
//! Figure 17b reports an 8.1% reduction in dTLB misses from the
//! lifetime-aware hugepage filler. The mechanism is hugepage coverage: a
//! 2 MiB page occupies one TLB entry where 512 base pages would occupy many.
//! [`TlbSim`] models a typical server dTLB (split L1 with dedicated 2 MiB
//! entries, unified L2) with set-associative LRU replacement, so hugepage
//! coverage produced by the allocator translates directly into walk counts.

/// Page sizes the TLB distinguishes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum PageSize {
    /// 4 KiB native page.
    Base4K,
    /// 2 MiB huge page.
    Huge2M,
}

impl PageSize {
    /// log2 of the page size in bytes.
    pub fn shift(self) -> u32 {
        match self {
            PageSize::Base4K => 12,
            PageSize::Huge2M => 21,
        }
    }

    /// Page size in bytes.
    pub fn bytes(self) -> u64 {
        1 << self.shift()
    }
}

/// Where a TLB access was satisfied.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TlbOutcome {
    /// First-level hit (free).
    L1Hit,
    /// Second-level hit (small cost, not a "walk").
    L2Hit,
    /// Full page-table walk.
    Walk,
}

/// A set-associative LRU translation buffer.
#[derive(Clone, Debug)]
struct SetAssocTlb {
    /// `sets[set][way] = Some((tag, last_used_tick))`.
    sets: Vec<Vec<Option<(u64, u64)>>>,
    tick: u64,
}

impl SetAssocTlb {
    fn new(entries: usize, ways: usize) -> Self {
        assert!(
            entries.is_multiple_of(ways),
            "entries must divide into ways"
        );
        let num_sets = (entries / ways).max(1);
        Self {
            sets: vec![vec![None; ways]; num_sets],
            tick: 0,
        }
    }

    fn set_of(&self, key: u64) -> usize {
        (key % self.sets.len() as u64) as usize
    }

    /// Looks up `key`, refreshing LRU state on hit.
    fn lookup(&mut self, key: u64) -> bool {
        self.tick += 1;
        let tick = self.tick;
        let set = self.set_of(key);
        for (tag, used) in self.sets[set].iter_mut().flatten() {
            if *tag == key {
                *used = tick;
                return true;
            }
        }
        false
    }

    /// Inserts `key`, evicting the LRU way if the set is full.
    fn insert(&mut self, key: u64) {
        self.tick += 1;
        let tick = self.tick;
        let set = self.set_of(key);
        let ways = &mut self.sets[set];
        // Prefer an empty way.
        if let Some(slot) = ways.iter_mut().find(|s| s.is_none()) {
            *slot = Some((key, tick));
            return;
        }
        let victim = ways
            .iter_mut()
            .min_by_key(|s| s.map_or(0, |(_, used)| used))
            .expect("ways is non-empty");
        *victim = Some((key, tick));
    }

    fn invalidate(&mut self, key: u64) {
        let set = self.set_of(key);
        for slot in &mut self.sets[set] {
            if matches!(slot, Some((tag, _)) if *tag == key) {
                *slot = None;
            }
        }
    }

    fn flush(&mut self) {
        for set in &mut self.sets {
            for slot in set {
                *slot = None;
            }
        }
    }
}

/// Access counters for a [`TlbSim`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TlbStats {
    /// Total accesses.
    pub accesses: u64,
    /// First-level hits.
    pub l1_hits: u64,
    /// Second-level hits.
    pub l2_hits: u64,
    /// Page-table walks.
    pub walks: u64,
}

impl TlbStats {
    /// Walk fraction (walks / accesses), 0 when no accesses.
    pub fn walk_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.walks as f64 / self.accesses as f64
        }
    }

    /// dTLB miss rate: fraction of accesses missing the first level.
    pub fn miss_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            (self.accesses - self.l1_hits) as f64 / self.accesses as f64
        }
    }
}

/// Geometry of a [`TlbSim`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TlbGeometry {
    /// L1 dTLB entries for 4 KiB pages.
    pub l1_base_entries: usize,
    /// L1 dTLB entries for 2 MiB pages.
    pub l1_huge_entries: usize,
    /// Unified second-level TLB entries.
    pub l2_entries: usize,
    /// Associativity used for every level.
    pub ways: usize,
}

impl TlbGeometry {
    /// A typical x86 server dTLB (Skylake-class): 64 base + 32 huge L1
    /// entries, 1536-entry unified STLB.
    pub fn server() -> Self {
        Self {
            l1_base_entries: 64,
            l1_huge_entries: 32,
            l2_entries: 1536,
            ways: 4,
        }
    }
}

/// The dTLB simulator: split L1 (per page size), unified L2.
///
/// # Example
///
/// ```
/// use wsc_sim_hw::tlb::{PageSize, TlbGeometry, TlbOutcome, TlbSim};
///
/// let mut tlb = TlbSim::new(TlbGeometry::server());
/// let first = tlb.access(0x1000, PageSize::Base4K);
/// let second = tlb.access(0x1000, PageSize::Base4K);
/// assert_eq!(first, TlbOutcome::Walk);
/// assert_eq!(second, TlbOutcome::L1Hit);
/// ```
#[derive(Clone, Debug)]
pub struct TlbSim {
    l1_base: SetAssocTlb,
    l1_huge: SetAssocTlb,
    l2: SetAssocTlb,
    stats: TlbStats,
}

impl TlbSim {
    /// Creates a TLB with the given geometry.
    pub fn new(geom: TlbGeometry) -> Self {
        Self {
            l1_base: SetAssocTlb::new(geom.l1_base_entries, geom.ways),
            l1_huge: SetAssocTlb::new(geom.l1_huge_entries, geom.ways),
            l2: SetAssocTlb::new(geom.l2_entries, geom.ways),
            stats: TlbStats::default(),
        }
    }

    fn key(vaddr: u64, size: PageSize) -> u64 {
        // Keep base/huge translations distinct in the unified L2.
        let vpn = vaddr >> size.shift();
        (vpn << 1) | matches!(size, PageSize::Huge2M) as u64
    }

    /// Performs one data access to `vaddr`, translated at the given page
    /// size, and returns where the translation was found.
    pub fn access(&mut self, vaddr: u64, size: PageSize) -> TlbOutcome {
        self.stats.accesses += 1;
        let key = Self::key(vaddr, size);
        let l1 = match size {
            PageSize::Base4K => &mut self.l1_base,
            PageSize::Huge2M => &mut self.l1_huge,
        };
        if l1.lookup(key) {
            self.stats.l1_hits += 1;
            return TlbOutcome::L1Hit;
        }
        if self.l2.lookup(key) {
            self.stats.l2_hits += 1;
            l1.insert(key);
            return TlbOutcome::L2Hit;
        }
        self.stats.walks += 1;
        self.l2.insert(key);
        l1.insert(key);
        TlbOutcome::Walk
    }

    /// Drops the translation for one page (e.g. after the kernel splits a
    /// hugepage during subrelease).
    pub fn invalidate(&mut self, vaddr: u64, size: PageSize) {
        let key = Self::key(vaddr, size);
        match size {
            PageSize::Base4K => self.l1_base.invalidate(key),
            PageSize::Huge2M => self.l1_huge.invalidate(key),
        }
        self.l2.invalidate(key);
    }

    /// Flushes every translation (context switch between processes).
    pub fn flush(&mut self) {
        self.l1_base.flush();
        self.l1_huge.flush();
        self.l2.flush();
    }

    /// Counters so far.
    pub fn stats(&self) -> TlbStats {
        self.stats
    }

    /// Resets counters (translations stay warm).
    pub fn reset_stats(&mut self) {
        self.stats = TlbStats::default();
    }
}

#[cfg(test)]
// Tests may unwrap: a panic IS the failure report here.
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    fn sim() -> TlbSim {
        TlbSim::new(TlbGeometry::server())
    }

    #[test]
    fn cold_access_walks_then_hits() {
        let mut t = sim();
        assert_eq!(t.access(0x4000, PageSize::Base4K), TlbOutcome::Walk);
        assert_eq!(t.access(0x4000, PageSize::Base4K), TlbOutcome::L1Hit);
        assert_eq!(t.access(0x4FFF, PageSize::Base4K), TlbOutcome::L1Hit);
        assert_eq!(t.stats().walks, 1);
        assert_eq!(t.stats().accesses, 3);
    }

    #[test]
    fn hugepage_covers_512_base_pages() {
        // Touch 2 MiB of memory with base pages vs one hugepage.
        let mut base = sim();
        let mut huge = sim();
        for _ in 0..2 {
            for off in (0..(2u64 << 20)).step_by(4096) {
                base.access(off, PageSize::Base4K);
                huge.access(off, PageSize::Huge2M);
            }
        }
        assert_eq!(huge.stats().walks, 1);
        assert_eq!(base.stats().walks, 512);
        assert!(base.stats().miss_rate() > huge.stats().miss_rate());
    }

    #[test]
    fn l2_catches_l1_evictions() {
        let mut t = sim();
        // Touch 128 distinct base pages: overflows the 64-entry L1 but fits
        // in the 1536-entry L2.
        for p in 0..128u64 {
            t.access(p << 12, PageSize::Base4K);
        }
        let walks_cold = t.stats().walks;
        assert_eq!(walks_cold, 128);
        for p in 0..128u64 {
            t.access(p << 12, PageSize::Base4K);
        }
        let s = t.stats();
        assert_eq!(s.walks, 128, "second pass must not walk");
        assert!(s.l2_hits > 0, "some second-pass accesses come from L2");
    }

    #[test]
    fn invalidate_forces_walk() {
        let mut t = sim();
        t.access(0x200000, PageSize::Huge2M);
        t.invalidate(0x200000, PageSize::Huge2M);
        assert_eq!(t.access(0x200000, PageSize::Huge2M), TlbOutcome::Walk);
    }

    #[test]
    fn flush_clears_everything() {
        let mut t = sim();
        t.access(0x1000, PageSize::Base4K);
        t.flush();
        assert_eq!(t.access(0x1000, PageSize::Base4K), TlbOutcome::Walk);
    }

    #[test]
    fn base_and_huge_translations_are_distinct() {
        let mut t = sim();
        t.access(0, PageSize::Base4K);
        // Same address as hugepage is a different translation.
        assert_eq!(t.access(0, PageSize::Huge2M), TlbOutcome::Walk);
    }

    #[test]
    fn stats_rates() {
        let s = TlbStats {
            accesses: 100,
            l1_hits: 90,
            l2_hits: 7,
            walks: 3,
        };
        assert!((s.walk_rate() - 0.03).abs() < 1e-12);
        assert!((s.miss_rate() - 0.10).abs() < 1e-12);
        assert_eq!(TlbStats::default().walk_rate(), 0.0);
    }
}
