//! CPU topology: sockets, NUMA nodes, LLC (cache) domains, cores, SMT.
//!
//! The paper (§4.2) observes that chiplet platforms expose multiple last-
//! level-cache domains per socket ("Non-Uniform Cache Access", NUCA) and that
//! the fleet has seen a 4× increase in hyperthreads per server over five
//! platform generations (§4.1). [`Platform`] captures exactly the structure
//! the allocator cares about: which logical CPUs share an LLC domain and a
//! NUMA node.

use std::fmt;

macro_rules! id_newtype {
    ($(#[$doc:meta])* $name:ident) => {
        $(#[$doc])*
        #[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
        pub struct $name(pub u32);

        impl $name {
            /// The raw index.
            pub fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!(stringify!($name), "({})"), self.0)
            }
        }

        impl From<u32> for $name {
            fn from(v: u32) -> Self {
                Self(v)
            }
        }
    };
}

id_newtype!(
    /// A logical CPU (hardware thread). Two SMT siblings share a core.
    CpuId
);
id_newtype!(
    /// A last-level-cache domain (one CCX/chiplet on AMD-style parts, the
    /// whole socket on monolithic parts).
    DomainId
);
id_newtype!(
    /// A NUMA node.
    NodeId
);
id_newtype!(
    /// A physical socket.
    SocketId
);

/// A server platform: the hardware topology one machine exposes.
///
/// Logical CPU numbering is dense: CPUs `[0, num_cpus)` are laid out socket-
/// major, then NUMA node, then domain, then core, then SMT sibling — so all
/// CPUs of a domain are contiguous.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Platform {
    name: String,
    sockets: u32,
    nodes_per_socket: u32,
    domains_per_node: u32,
    cores_per_domain: u32,
    smt: u32,
    /// LLC capacity per cache domain, bytes.
    llc_bytes_per_domain: u64,
}

impl Platform {
    /// Builds an arbitrary platform.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    pub fn new(
        name: impl Into<String>,
        sockets: u32,
        nodes_per_socket: u32,
        domains_per_node: u32,
        cores_per_domain: u32,
        smt: u32,
        llc_bytes_per_domain: u64,
    ) -> Self {
        assert!(
            sockets > 0
                && nodes_per_socket > 0
                && domains_per_node > 0
                && cores_per_domain > 0
                && smt > 0,
            "all topology dimensions must be positive"
        );
        Self {
            name: name.into(),
            sockets,
            nodes_per_socket,
            domains_per_node,
            cores_per_domain,
            smt,
            llc_bytes_per_domain,
        }
    }

    /// A monolithic-die platform: one LLC domain per socket (Intel-style).
    ///
    /// `sockets` sockets × `cores` cores × `smt` threads; 33 MiB LLC.
    pub fn monolithic(name: impl Into<String>, sockets: u32, cores: u32, smt: u32) -> Self {
        Self::new(name, sockets, 1, 1, cores, smt, 33 << 20)
    }

    /// A chiplet platform: several LLC domains (CCXs) per NUMA node
    /// (AMD-style), giving non-uniform cache access within a socket.
    ///
    /// `sockets` × `domains_per_socket` CCXs × `cores_per_domain` cores ×
    /// `smt`; 32 MiB LLC per CCX.
    pub fn chiplet(
        name: impl Into<String>,
        sockets: u32,
        domains_per_socket: u32,
        cores_per_domain: u32,
        smt: u32,
    ) -> Self {
        Self::new(
            name,
            sockets,
            1,
            domains_per_socket,
            cores_per_domain,
            smt,
            32 << 20,
        )
    }

    /// The platform name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Total logical CPUs.
    pub fn num_cpus(&self) -> usize {
        (self.sockets
            * self.nodes_per_socket
            * self.domains_per_node
            * self.cores_per_domain
            * self.smt) as usize
    }

    /// Total LLC domains.
    pub fn num_domains(&self) -> usize {
        (self.sockets * self.nodes_per_socket * self.domains_per_node) as usize
    }

    /// Total NUMA nodes.
    pub fn num_nodes(&self) -> usize {
        (self.sockets * self.nodes_per_socket) as usize
    }

    /// Total sockets.
    pub fn num_sockets(&self) -> usize {
        self.sockets as usize
    }

    /// Logical CPUs per LLC domain.
    pub fn cpus_per_domain(&self) -> usize {
        (self.cores_per_domain * self.smt) as usize
    }

    /// LLC capacity of one cache domain, in bytes.
    pub fn llc_bytes_per_domain(&self) -> u64 {
        self.llc_bytes_per_domain
    }

    /// Does this platform have multiple LLC domains within a socket (NUCA)?
    pub fn is_nuca(&self) -> bool {
        self.nodes_per_socket * self.domains_per_node > 1
    }

    /// The LLC domain a logical CPU belongs to.
    ///
    /// # Panics
    ///
    /// Panics if `cpu` is out of range.
    pub fn domain_of(&self, cpu: CpuId) -> DomainId {
        assert!(cpu.index() < self.num_cpus(), "cpu {cpu} out of range");
        DomainId((cpu.index() / self.cpus_per_domain()) as u32)
    }

    /// The NUMA node a logical CPU belongs to.
    ///
    /// # Panics
    ///
    /// Panics if `cpu` is out of range.
    pub fn node_of(&self, cpu: CpuId) -> NodeId {
        assert!(cpu.index() < self.num_cpus(), "cpu {cpu} out of range");
        let cpus_per_node = self.cpus_per_domain() * self.domains_per_node as usize;
        NodeId((cpu.index() / cpus_per_node) as u32)
    }

    /// The socket a logical CPU belongs to.
    ///
    /// # Panics
    ///
    /// Panics if `cpu` is out of range.
    pub fn socket_of(&self, cpu: CpuId) -> SocketId {
        let node = self.node_of(cpu);
        SocketId(node.0 / self.nodes_per_socket)
    }

    /// The NUMA node containing an LLC domain.
    pub fn node_of_domain(&self, domain: DomainId) -> NodeId {
        NodeId(domain.0 / self.domains_per_node)
    }

    /// The logical CPUs in the given LLC domain.
    pub fn cpus_in_domain(&self, domain: DomainId) -> impl Iterator<Item = CpuId> {
        let per = self.cpus_per_domain();
        let start = domain.index() * per;
        (start..start + per).map(|i| CpuId(i as u32))
    }

    /// Whether two CPUs share an LLC domain.
    pub fn same_domain(&self, a: CpuId, b: CpuId) -> bool {
        self.domain_of(a) == self.domain_of(b)
    }

    /// Whether two CPUs are SMT siblings on the same physical core.
    pub fn same_core(&self, a: CpuId, b: CpuId) -> bool {
        a.index() / self.smt as usize == b.index() / self.smt as usize
    }

    /// All logical CPUs.
    pub fn cpus(&self) -> impl Iterator<Item = CpuId> {
        (0..self.num_cpus() as u32).map(CpuId)
    }
}

/// The five fleet platform generations of §4.1: hyperthreads per server grew
/// 4× over five generations. Useful for the vCPU scalability studies.
pub fn fleet_generations() -> Vec<Platform> {
    vec![
        Platform::monolithic("gen1-mono-18c", 2, 18, 2),
        Platform::monolithic("gen2-mono-24c", 2, 24, 2),
        Platform::monolithic("gen3-mono-28c", 2, 28, 2),
        Platform::chiplet("gen4-chiplet-48c", 2, 6, 8, 2),
        Platform::chiplet("gen5-chiplet-72c", 2, 9, 8, 2),
    ]
}

#[cfg(test)]
// Tests may unwrap: a panic IS the failure report here.
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn monolithic_layout() {
        let p = Platform::monolithic("intel-like", 2, 28, 2);
        assert_eq!(p.num_cpus(), 112);
        assert_eq!(p.num_domains(), 2);
        assert_eq!(p.num_nodes(), 2);
        assert!(!p.is_nuca());
        assert_eq!(p.domain_of(CpuId(0)), DomainId(0));
        assert_eq!(p.domain_of(CpuId(55)), DomainId(0));
        assert_eq!(p.domain_of(CpuId(56)), DomainId(1));
    }

    #[test]
    fn chiplet_layout() {
        let p = Platform::chiplet("amd-like", 2, 8, 8, 2);
        assert_eq!(p.num_cpus(), 256);
        assert_eq!(p.num_domains(), 16);
        assert!(p.is_nuca());
        assert_eq!(p.cpus_per_domain(), 16);
        // CPU 16 is in the second CCX but the first socket.
        assert_eq!(p.domain_of(CpuId(16)), DomainId(1));
        assert_eq!(p.socket_of(CpuId(16)), SocketId(0));
        assert_eq!(p.socket_of(CpuId(128)), SocketId(1));
    }

    #[test]
    fn domain_cpu_round_trip() {
        let p = Platform::chiplet("x", 1, 4, 4, 2);
        for d in 0..p.num_domains() as u32 {
            for cpu in p.cpus_in_domain(DomainId(d)) {
                assert_eq!(p.domain_of(cpu), DomainId(d));
            }
        }
    }

    #[test]
    fn smt_siblings() {
        let p = Platform::monolithic("x", 1, 4, 2);
        assert!(p.same_core(CpuId(0), CpuId(1)));
        assert!(!p.same_core(CpuId(1), CpuId(2)));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn domain_of_rejects_bad_cpu() {
        let p = Platform::monolithic("x", 1, 2, 1);
        let _ = p.domain_of(CpuId(99));
    }

    #[test]
    fn generations_grow_hyperthreads() {
        let gens = fleet_generations();
        let first = gens.first().unwrap().num_cpus();
        let last = gens.last().unwrap().num_cpus();
        assert_eq!(first, 72);
        assert_eq!(last, 288);
        assert!(last as f64 / first as f64 >= 4.0, "paper reports 4x growth");
    }

    #[test]
    fn node_of_domain_consistent() {
        let p = Platform::new("2-node", 1, 2, 3, 2, 2, 32 << 20);
        for cpu in p.cpus() {
            assert_eq!(p.node_of(cpu), p.node_of_domain(p.domain_of(cpu)));
        }
    }
}
