//! The cycle/nanosecond cost model (the paper's Figure 4).
//!
//! Figure 4 measures the mean allocation latency of hitting each tier of the
//! TCMalloc cache hierarchy: 3.1 ns for the per-CPU fast path (~40 x86
//! instructions under a restartable sequence), 137 ns for the pageheap, and
//! 12 916.7 ns for refilling the pageheap with an `mmap` system call.
//! [`CostModel`] holds those constants plus the memory-system costs (LLC and
//! TLB) that convert allocator *placement* decisions into application stall
//! cycles — the paper's central argument being that the latter dwarf the
//! former.

/// Which allocator tier ultimately satisfied an allocation request.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum AllocPath {
    /// Per-CPU front-end cache fast path.
    PerCpu,
    /// Middle-tier transfer cache.
    TransferCache,
    /// Middle-tier central free list (span manipulation).
    CentralFreeList,
    /// Back-end hugepage-aware pageheap.
    PageHeap,
    /// Pageheap refill from the OS (`mmap` of a zeroed hugepage).
    Mmap,
}

impl AllocPath {
    /// All paths, front-end first.
    pub const ALL: [AllocPath; 5] = [
        AllocPath::PerCpu,
        AllocPath::TransferCache,
        AllocPath::CentralFreeList,
        AllocPath::PageHeap,
        AllocPath::Mmap,
    ];

    /// Human-readable tier name as used in the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            AllocPath::PerCpu => "CPUCache",
            AllocPath::TransferCache => "TransferCache",
            AllocPath::CentralFreeList => "CentralFreeList",
            AllocPath::PageHeap => "PageHeap",
            AllocPath::Mmap => "mmap",
        }
    }
}

/// Calibrated latency and cost constants for one platform.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CostModel {
    /// Core clock, GHz (cycles per nanosecond).
    pub freq_ghz: f64,

    // --- Allocation-path latencies (Figure 4), nanoseconds ---
    /// Per-CPU cache hit (restartable-sequence fast path).
    pub percpu_hit_ns: f64,
    /// Transfer cache hit (one mutex + array move).
    pub transfer_cache_ns: f64,
    /// Central free list hit (mutex + linked-list span carving).
    pub central_freelist_ns: f64,
    /// Pageheap hit (hugepage tracker manipulation).
    pub pageheap_ns: f64,
    /// `mmap` of a zeroed 2 MiB hugepage from the OS.
    pub mmap_ns: f64,

    // --- Per-operation overheads ---
    /// Next-object prefetch issued on every allocation (16% of fleet malloc
    /// cycles per Figure 6a, but key to data-cache locality).
    pub prefetch_ns: f64,
    /// Extra cost of a *sampled* allocation (stack unwind + recording).
    pub sampled_alloc_ns: f64,
    /// Unclassified bookkeeping per operation (the "Other" slice).
    pub other_ns: f64,

    // --- Cross-thread free synchronization costs, nanoseconds ---
    /// One compare-and-swap push onto a remote span's deferred free list
    /// (the rpmalloc-style atomic-list arm pays this per remote free; the
    /// cache line is owned by another core, so this is contended-CAS cost,
    /// not the uncontended ~1 ns).
    pub atomic_cas_ns: f64,
    /// Handing one batched remote-free message between threads (the
    /// snmalloc-style message-passing arm pays this once per batch on send
    /// and the owner pays it once per batch on receive).
    pub msg_batch_ns: f64,
    /// Acquiring a contended lock (or performing the atomic exchange) that
    /// detaches a whole deferred list at a drain point.
    pub contended_lock_ns: f64,

    // --- Memory-system costs, nanoseconds ---
    /// LLC hit.
    pub llc_hit_ns: f64,
    /// LLC miss served from local memory.
    pub mem_ns: f64,
    /// Extra cost when the block must transfer from another LLC domain
    /// (on top of nothing — this is the full remote-transfer latency).
    pub remote_llc_ns: f64,
    /// Second-level TLB hit (L1 TLB miss).
    pub l2_tlb_hit_ns: f64,
    /// Full page-table walk.
    pub tlb_walk_ns: f64,
}

impl CostModel {
    /// The production-platform calibration used throughout the reproduction.
    ///
    /// Figure 4 anchors: per-CPU 3.1 ns, pageheap 137 ns, mmap 12 916.7 ns.
    /// The transfer cache and central free list sit between the front-end and
    /// the pageheap (both mutex-protected; the central free list additionally
    /// walks span lists), calibrated at 24.9 ns and 81.4 ns.
    pub fn production() -> Self {
        Self {
            freq_ghz: 2.0,
            percpu_hit_ns: 3.1,
            transfer_cache_ns: 24.9,
            central_freelist_ns: 81.4,
            pageheap_ns: 137.0,
            mmap_ns: 12_916.7,
            prefetch_ns: 1.9,
            sampled_alloc_ns: 5_500.0,
            other_ns: 0.5,
            // Contended CAS ≈ one cross-core line transfer; batch handoff
            // ≈ transfer-cache mutex traffic; list detach ≈ half a central
            // free-list visit. All sit between the per-CPU fast path and
            // the central free list, like the locks they model.
            atomic_cas_ns: 10.0,
            msg_batch_ns: 30.0,
            contended_lock_ns: 45.0,
            llc_hit_ns: 14.0,
            mem_ns: 100.0,
            remote_llc_ns: 82.8, // 2.07x the 40 ns intra-domain transfer
            l2_tlb_hit_ns: 7.0,
            tlb_walk_ns: 30.0,
        }
    }

    /// Latency of an allocation satisfied at `path`, ns.
    pub fn alloc_path_ns(&self, path: AllocPath) -> f64 {
        match path {
            AllocPath::PerCpu => self.percpu_hit_ns,
            AllocPath::TransferCache => self.transfer_cache_ns,
            AllocPath::CentralFreeList => self.central_freelist_ns,
            AllocPath::PageHeap => self.pageheap_ns,
            AllocPath::Mmap => self.mmap_ns,
        }
    }

    /// Converts nanoseconds to core cycles.
    pub fn ns_to_cycles(&self, ns: f64) -> f64 {
        ns * self.freq_ghz
    }

    /// Converts core cycles to nanoseconds.
    pub fn cycles_to_ns(&self, cycles: f64) -> f64 {
        cycles / self.freq_ghz
    }
}

impl Default for CostModel {
    fn default() -> Self {
        Self::production()
    }
}

#[cfg(test)]
// Tests may unwrap: a panic IS the failure report here.
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn figure4_anchors() {
        let c = CostModel::production();
        assert!((c.alloc_path_ns(AllocPath::PerCpu) - 3.1).abs() < 1e-9);
        assert!((c.alloc_path_ns(AllocPath::PageHeap) - 137.0).abs() < 1e-9);
        assert!((c.alloc_path_ns(AllocPath::Mmap) - 12_916.7).abs() < 1e-9);
    }

    #[test]
    fn tiers_strictly_slower_down_the_hierarchy() {
        let c = CostModel::production();
        let lat: Vec<f64> = AllocPath::ALL.iter().map(|&p| c.alloc_path_ns(p)).collect();
        assert!(lat.windows(2).all(|w| w[0] < w[1]), "{lat:?}");
    }

    #[test]
    fn contention_costs_sit_between_fast_path_and_central() {
        // A remote free must cost more than a local fast-path free (the
        // whole point of ownership) but less than a central free-list
        // visit (or deferring would never pay off); batching amortizes:
        // one batch handoff is cheaper than a CAS per object at any batch
        // size above three.
        let c = CostModel::production();
        assert!(c.atomic_cas_ns > c.percpu_hit_ns);
        assert!(c.msg_batch_ns > c.atomic_cas_ns);
        assert!(c.contended_lock_ns < c.central_freelist_ns);
        assert!(c.msg_batch_ns < 4.0 * c.atomic_cas_ns);
    }

    #[test]
    fn mmap_orders_of_magnitude_slower() {
        // The paper highlights that an OS refill is orders of magnitude more
        // expensive than any cache hit — the reason userspace caching exists.
        let c = CostModel::production();
        assert!(c.mmap_ns / c.percpu_hit_ns > 1000.0);
    }

    #[test]
    fn cycle_conversions_round_trip() {
        let c = CostModel::production();
        let ns = 123.4;
        assert!((c.cycles_to_ns(c.ns_to_cycles(ns)) - ns).abs() < 1e-9);
        assert!((c.ns_to_cycles(1.0) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn path_names_match_paper() {
        assert_eq!(AllocPath::PerCpu.name(), "CPUCache");
        assert_eq!(AllocPath::Mmap.name(), "mmap");
    }
}
