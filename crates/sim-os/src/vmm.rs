//! The `mmap` interface between the allocator and the simulated kernel.
//!
//! TCMalloc's pageheap requests zero-initialized, hugepage-aligned blocks
//! from the OS — the paper measures this refill at 12 916.7 ns (Figure 4),
//! orders of magnitude above any cache hit, "highlighting the need for
//! caching in a userspace allocator". [`Vmm`] hands out hugepage-aligned
//! virtual ranges, keeps the [`PageTable`] in sync, and counts syscalls so
//! the cost model can charge them.

use crate::addr::{align_up, HUGE_PAGE_BYTES};
use crate::clock::Clock;
use crate::faults::{FaultInjector, FaultPlan, FaultStats, OsError};
use crate::pagetable::PageTable;
use std::collections::BTreeSet;

/// Syscall counters for one process.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct VmmStats {
    /// `mmap` calls.
    pub mmap_calls: u64,
    /// `munmap` calls.
    pub munmap_calls: u64,
    /// `madvise(DONTNEED)` (subrelease) calls.
    pub madvise_calls: u64,
    /// Total bytes ever requested via `mmap`.
    pub mmap_bytes: u64,
}

/// A successful `mmap`: the granted range plus how the kernel actually
/// behaved — whether THP backed it with hugepages and any injected latency
/// excursion (charged through the cost model by the caller).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MmapGrant {
    /// Hugepage-aligned base address of the mapping.
    pub addr: u64,
    /// True if every 2 MiB of the mapping is hugepage-backed; false means
    /// THP compaction failed and the range came back 4 KiB-backed.
    pub huge_backed: bool,
    /// Injected syscall latency beyond the nominal `mmap` cost, ns.
    pub latency_ns: u64,
}

/// Simulated per-process virtual memory manager.
///
/// Virtual addresses start at a canonical heap base and grow upward;
/// `munmap`ed ranges are not recycled (matching how TCMalloc treats its
/// address space as plentiful on 64-bit). A [`FaultInjector`] can ride
/// along ([`Vmm::with_faults`]) to deny or degrade calls deterministically;
/// without one every call succeeds, exactly as before.
///
/// # Example
///
/// ```
/// use wsc_sim_os::vmm::Vmm;
/// use wsc_sim_os::addr::HUGE_PAGE_BYTES;
///
/// let mut vmm = Vmm::new();
/// let a = vmm.mmap(10).expect("no fault plan attached"); // rounded up to one hugepage
/// let b = vmm.mmap(3 * HUGE_PAGE_BYTES).expect("no fault plan attached");
/// assert_ne!(a.addr, b.addr);
/// assert!(a.huge_backed);
/// assert_eq!(vmm.mapped_bytes(), 4 * HUGE_PAGE_BYTES);
/// ```
#[derive(Clone, Debug)]
pub struct Vmm {
    next_addr: u64,
    mapped: BTreeSet<u64>, // hugepage indices
    page_table: PageTable,
    stats: VmmStats,
    faults: Option<FaultInjector>,
}

/// Base of the simulated heap (an arbitrary canonical user-space address).
pub const HEAP_BASE: u64 = 0x7f00_0000_0000;

impl Vmm {
    /// Creates an empty address space with an infallible kernel.
    pub fn new() -> Self {
        Self {
            next_addr: HEAP_BASE,
            mapped: BTreeSet::new(),
            page_table: PageTable::new(),
            stats: VmmStats::default(),
            faults: None,
        }
    }

    /// Creates an empty address space whose kernel injects faults per
    /// `plan`, judging storm windows against the simulation `clock`.
    pub fn with_faults(plan: FaultPlan, clock: Clock) -> Self {
        let mut vmm = Self::new();
        vmm.faults = Some(FaultInjector::new(plan, clock));
        vmm
    }

    /// Injection counters, if a fault plan is attached.
    pub fn fault_stats(&self) -> FaultStats {
        self.faults
            .as_ref()
            .map(FaultInjector::stats)
            .unwrap_or_default()
    }

    /// Maps `len` bytes (rounded up to whole hugepages), hugepage-aligned
    /// and zero-initialized.
    ///
    /// # Errors
    ///
    /// Returns [`OsError::Enomem`] when the fault plan denies the call; the
    /// address space is unchanged. Without a plan the call always succeeds.
    ///
    /// # Panics
    ///
    /// Panics if `len` is zero.
    pub fn mmap(&mut self, len: u64) -> Result<MmapGrant, OsError> {
        assert!(len > 0, "mmap of zero bytes");
        let (huge_backed, latency_ns) = match self.faults.as_mut() {
            Some(inj) => {
                let d = inj.on_mmap();
                if d.deny {
                    // A failed syscall is still a syscall.
                    self.stats.mmap_calls += 1;
                    return Err(OsError::Enomem);
                }
                (d.huge_backed, d.latency_ns)
            }
            None => (true, 0),
        };
        let len = align_up(len, HUGE_PAGE_BYTES);
        let addr = self.next_addr;
        self.next_addr += len;
        for hp in (addr / HUGE_PAGE_BYTES)..((addr + len) / HUGE_PAGE_BYTES) {
            let inserted = self.mapped.insert(hp);
            debug_assert!(inserted, "bump allocator never reuses addresses");
        }
        self.page_table.on_mmap_backed(addr, len, huge_backed);
        self.stats.mmap_calls += 1;
        self.stats.mmap_bytes += len;
        Ok(MmapGrant {
            addr,
            huge_backed,
            latency_ns,
        })
    }

    /// Unmaps a hugepage-granular range previously returned by [`mmap`].
    ///
    /// # Panics
    ///
    /// Panics if any part of the range is not currently mapped or the range
    /// is misaligned.
    ///
    /// [`mmap`]: Self::mmap
    pub fn munmap(&mut self, addr: u64, len: u64) {
        assert!(
            addr.is_multiple_of(HUGE_PAGE_BYTES) && len.is_multiple_of(HUGE_PAGE_BYTES) && len > 0,
            "munmap must be hugepage-granular"
        );
        for hp in (addr / HUGE_PAGE_BYTES)..((addr + len) / HUGE_PAGE_BYTES) {
            assert!(self.mapped.remove(&hp), "munmap of unmapped hugepage {hp}");
        }
        self.page_table.on_munmap(addr, len);
        self.stats.munmap_calls += 1;
    }

    /// Subreleases (`madvise(DONTNEED)`) a TCMalloc-page-granular range:
    /// memory is returned to the OS but the mapping stays, with any touched
    /// hugepages broken into base pages. On success, returns any injected
    /// latency (ns) for the caller to charge.
    ///
    /// # Errors
    ///
    /// Returns [`OsError::SubreleaseFailed`] when the fault plan fails the
    /// call, or [`OsError::UnmappedRange`] for a stray subrelease of an
    /// unmapped range; residency is unchanged in both cases.
    pub fn subrelease(&mut self, addr: u64, len: u64) -> Result<u64, OsError> {
        let latency_ns = match self.faults.as_mut() {
            Some(inj) => {
                let d = inj.on_subrelease();
                if d.fail {
                    self.stats.madvise_calls += 1;
                    return Err(OsError::SubreleaseFailed);
                }
                d.latency_ns
            }
            None => 0,
        };
        self.page_table.subrelease(addr, len)?;
        self.stats.madvise_calls += 1;
        Ok(latency_ns)
    }

    /// Marks a range as touched again after subrelease (page-fault back in).
    pub fn reoccupy(&mut self, addr: u64, len: u64) {
        self.page_table.reoccupy(addr, len);
    }

    /// khugepaged-style collapse attempt on the (denied, fully resident)
    /// hugepage region containing `addr`. The fault plan may veto it;
    /// returns whether hugepage backing was rebuilt.
    pub fn collapse_huge(&mut self, addr: u64) -> bool {
        if !self.page_table.is_denied(addr) || !self.page_table.is_fully_resident(addr) {
            return false;
        }
        let allowed = self.faults.as_mut().is_none_or(FaultInjector::on_collapse);
        allowed && self.page_table.promote(addr)
    }

    /// Currently mapped bytes.
    pub fn mapped_bytes(&self) -> u64 {
        self.mapped.len() as u64 * HUGE_PAGE_BYTES
    }

    /// The process page table (backing/residency state).
    pub fn page_table(&self) -> &PageTable {
        &self.page_table
    }

    /// Syscall counters.
    pub fn stats(&self) -> VmmStats {
        self.stats
    }
}

impl Default for Vmm {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
// Tests may unwrap: a panic IS the failure report here.
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::faults::PPM;

    /// mmap that must succeed (fault-free or between storms).
    fn mmap_ok(vmm: &mut Vmm, len: u64) -> u64 {
        vmm.mmap(len).expect("mmap granted").addr
    }

    #[test]
    fn mmap_alignment_and_rounding() {
        let mut vmm = Vmm::new();
        let a = mmap_ok(&mut vmm, 1);
        assert_eq!(a % HUGE_PAGE_BYTES, 0);
        assert_eq!(vmm.mapped_bytes(), HUGE_PAGE_BYTES);
        assert_eq!(vmm.stats().mmap_calls, 1);
        assert_eq!(vmm.stats().mmap_bytes, HUGE_PAGE_BYTES);
    }

    #[test]
    fn mappings_never_overlap() {
        let mut vmm = Vmm::new();
        let mut ranges = Vec::new();
        for len in [1u64, HUGE_PAGE_BYTES, 5 * HUGE_PAGE_BYTES, 100] {
            let a = mmap_ok(&mut vmm, len);
            let l = align_up(len, HUGE_PAGE_BYTES);
            for &(b, bl) in &ranges {
                assert!(a + l <= b || b + bl <= a, "overlap");
            }
            ranges.push((a, l));
        }
    }

    #[test]
    fn munmap_releases() {
        let mut vmm = Vmm::new();
        let a = mmap_ok(&mut vmm, 2 * HUGE_PAGE_BYTES);
        vmm.munmap(a, HUGE_PAGE_BYTES);
        assert_eq!(vmm.mapped_bytes(), HUGE_PAGE_BYTES);
        assert!(!vmm.page_table().is_mapped(a));
        assert!(vmm.page_table().is_mapped(a + HUGE_PAGE_BYTES));
    }

    #[test]
    #[should_panic(expected = "unmapped")]
    fn double_munmap_panics() {
        let mut vmm = Vmm::new();
        let a = mmap_ok(&mut vmm, HUGE_PAGE_BYTES);
        vmm.munmap(a, HUGE_PAGE_BYTES);
        vmm.munmap(a, HUGE_PAGE_BYTES);
    }

    #[test]
    fn subrelease_counts_and_breaks() {
        let mut vmm = Vmm::new();
        let a = mmap_ok(&mut vmm, HUGE_PAGE_BYTES);
        vmm.subrelease(a, 8192).expect("mapped range");
        assert_eq!(vmm.stats().madvise_calls, 1);
        assert!(!vmm.page_table().is_huge_backed(a));
    }

    #[test]
    fn stray_subrelease_is_an_error_not_a_panic() {
        // Regression for the old `panic!("subrelease of unmapped hugepage")`:
        // a stray madvise is reported as EINVAL and changes nothing.
        let mut vmm = Vmm::new();
        let a = mmap_ok(&mut vmm, HUGE_PAGE_BYTES);
        let stray = a + 64 * HUGE_PAGE_BYTES;
        let err = vmm.subrelease(stray, 8192).expect_err("unmapped range");
        assert_eq!(err, OsError::UnmappedRange(stray / HUGE_PAGE_BYTES));
        assert_eq!(vmm.stats().madvise_calls, 0, "failed call not counted");
        assert!(vmm.page_table().is_huge_backed(a), "mapped state untouched");
        assert_eq!(vmm.page_table().resident_bytes(), HUGE_PAGE_BYTES);
    }

    #[test]
    fn enomem_denial_leaves_address_space_unchanged() {
        let plan = FaultPlan {
            enomem_ppm: PPM,
            ..FaultPlan::off()
        };
        let mut vmm = Vmm::with_faults(plan, Clock::new());
        assert_eq!(vmm.mmap(HUGE_PAGE_BYTES), Err(OsError::Enomem));
        assert_eq!(vmm.mapped_bytes(), 0);
        assert_eq!(vmm.stats().mmap_bytes, 0);
        assert_eq!(vmm.stats().mmap_calls, 1, "the failed syscall counts");
        assert_eq!(vmm.fault_stats().enomem_injected, 1);
    }

    #[test]
    fn denied_backing_then_collapse_recovers_coverage() {
        let plan = FaultPlan {
            deny_huge_ppm: PPM,
            ..FaultPlan::off()
        }
        .with_storm(0, 1_000);
        let clock = Clock::new();
        let mut vmm = Vmm::with_faults(plan, clock.clone());
        let g = vmm.mmap(HUGE_PAGE_BYTES).expect("granted");
        assert!(!g.huge_backed, "THP compaction failed");
        assert!(!vmm.page_table().is_huge_backed(g.addr));
        assert_eq!(vmm.page_table().resident_bytes(), HUGE_PAGE_BYTES);
        assert_eq!(vmm.page_table().hugepage_coverage(), 0.0);

        // During the storm the collapse is vetoed only by collapse_fail_ppm
        // (zero here), so it succeeds; but prove the storm-window version
        // too: after the storm, collapse always succeeds.
        clock.advance(2_000);
        assert!(vmm.collapse_huge(g.addr), "khugepaged rebuilds the backing");
        assert!(vmm.page_table().is_huge_backed(g.addr));
        assert!((vmm.page_table().hugepage_coverage() - 1.0).abs() < 1e-12);
        assert!(!vmm.collapse_huge(g.addr), "already huge: nothing to do");
    }

    #[test]
    fn subrelease_broken_hugepage_never_collapses() {
        let mut vmm = Vmm::new();
        let a = mmap_ok(&mut vmm, HUGE_PAGE_BYTES);
        vmm.subrelease(a, 8192).expect("mapped");
        vmm.reoccupy(a, 8192);
        assert!(
            !vmm.collapse_huge(a),
            "kernel does not rebuild subrelease-broken hugepages (§3)"
        );
        assert!(!vmm.page_table().is_huge_backed(a));
    }
}
