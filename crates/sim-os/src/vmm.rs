//! The `mmap` interface between the allocator and the simulated kernel.
//!
//! TCMalloc's pageheap requests zero-initialized, hugepage-aligned blocks
//! from the OS — the paper measures this refill at 12 916.7 ns (Figure 4),
//! orders of magnitude above any cache hit, "highlighting the need for
//! caching in a userspace allocator". [`Vmm`] hands out hugepage-aligned
//! virtual ranges, keeps the [`PageTable`] in sync, and counts syscalls so
//! the cost model can charge them.

use crate::addr::{align_up, HUGE_PAGE_BYTES};
use crate::pagetable::PageTable;
use std::collections::BTreeSet;

/// Syscall counters for one process.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct VmmStats {
    /// `mmap` calls.
    pub mmap_calls: u64,
    /// `munmap` calls.
    pub munmap_calls: u64,
    /// `madvise(DONTNEED)` (subrelease) calls.
    pub madvise_calls: u64,
    /// Total bytes ever requested via `mmap`.
    pub mmap_bytes: u64,
}

/// Simulated per-process virtual memory manager.
///
/// Virtual addresses start at a canonical heap base and grow upward;
/// `munmap`ed ranges are not recycled (matching how TCMalloc treats its
/// address space as plentiful on 64-bit).
///
/// # Example
///
/// ```
/// use wsc_sim_os::vmm::Vmm;
/// use wsc_sim_os::addr::HUGE_PAGE_BYTES;
///
/// let mut vmm = Vmm::new();
/// let a = vmm.mmap(10); // rounded up to one hugepage
/// let b = vmm.mmap(3 * HUGE_PAGE_BYTES);
/// assert_ne!(a, b);
/// assert_eq!(vmm.mapped_bytes(), 4 * HUGE_PAGE_BYTES);
/// ```
#[derive(Clone, Debug)]
pub struct Vmm {
    next_addr: u64,
    mapped: BTreeSet<u64>, // hugepage indices
    page_table: PageTable,
    stats: VmmStats,
}

/// Base of the simulated heap (an arbitrary canonical user-space address).
pub const HEAP_BASE: u64 = 0x7f00_0000_0000;

impl Vmm {
    /// Creates an empty address space.
    pub fn new() -> Self {
        Self {
            next_addr: HEAP_BASE,
            mapped: BTreeSet::new(),
            page_table: PageTable::new(),
            stats: VmmStats::default(),
        }
    }

    /// Maps `len` bytes (rounded up to whole hugepages), hugepage-aligned
    /// and zero-initialized. Returns the base address.
    ///
    /// # Panics
    ///
    /// Panics if `len` is zero.
    pub fn mmap(&mut self, len: u64) -> u64 {
        assert!(len > 0, "mmap of zero bytes");
        let len = align_up(len, HUGE_PAGE_BYTES);
        let addr = self.next_addr;
        self.next_addr += len;
        for hp in (addr / HUGE_PAGE_BYTES)..((addr + len) / HUGE_PAGE_BYTES) {
            let inserted = self.mapped.insert(hp);
            debug_assert!(inserted, "bump allocator never reuses addresses");
        }
        self.page_table.on_mmap(addr, len);
        self.stats.mmap_calls += 1;
        self.stats.mmap_bytes += len;
        addr
    }

    /// Unmaps a hugepage-granular range previously returned by [`mmap`].
    ///
    /// # Panics
    ///
    /// Panics if any part of the range is not currently mapped or the range
    /// is misaligned.
    ///
    /// [`mmap`]: Self::mmap
    pub fn munmap(&mut self, addr: u64, len: u64) {
        assert!(
            addr.is_multiple_of(HUGE_PAGE_BYTES) && len.is_multiple_of(HUGE_PAGE_BYTES) && len > 0,
            "munmap must be hugepage-granular"
        );
        for hp in (addr / HUGE_PAGE_BYTES)..((addr + len) / HUGE_PAGE_BYTES) {
            assert!(self.mapped.remove(&hp), "munmap of unmapped hugepage {hp}");
        }
        self.page_table.on_munmap(addr, len);
        self.stats.munmap_calls += 1;
    }

    /// Subreleases (`madvise(DONTNEED)`) a TCMalloc-page-granular range:
    /// memory is returned to the OS but the mapping stays, with any touched
    /// hugepages broken into base pages.
    pub fn subrelease(&mut self, addr: u64, len: u64) {
        self.page_table.subrelease(addr, len);
        self.stats.madvise_calls += 1;
    }

    /// Marks a range as touched again after subrelease (page-fault back in).
    pub fn reoccupy(&mut self, addr: u64, len: u64) {
        self.page_table.reoccupy(addr, len);
    }

    /// Currently mapped bytes.
    pub fn mapped_bytes(&self) -> u64 {
        self.mapped.len() as u64 * HUGE_PAGE_BYTES
    }

    /// The process page table (backing/residency state).
    pub fn page_table(&self) -> &PageTable {
        &self.page_table
    }

    /// Syscall counters.
    pub fn stats(&self) -> VmmStats {
        self.stats
    }
}

impl Default for Vmm {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
// Tests may unwrap: a panic IS the failure report here.
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn mmap_alignment_and_rounding() {
        let mut vmm = Vmm::new();
        let a = vmm.mmap(1);
        assert_eq!(a % HUGE_PAGE_BYTES, 0);
        assert_eq!(vmm.mapped_bytes(), HUGE_PAGE_BYTES);
        assert_eq!(vmm.stats().mmap_calls, 1);
        assert_eq!(vmm.stats().mmap_bytes, HUGE_PAGE_BYTES);
    }

    #[test]
    fn mappings_never_overlap() {
        let mut vmm = Vmm::new();
        let mut ranges = Vec::new();
        for len in [1u64, HUGE_PAGE_BYTES, 5 * HUGE_PAGE_BYTES, 100] {
            let a = vmm.mmap(len);
            let l = align_up(len, HUGE_PAGE_BYTES);
            for &(b, bl) in &ranges {
                assert!(a + l <= b || b + bl <= a, "overlap");
            }
            ranges.push((a, l));
        }
    }

    #[test]
    fn munmap_releases() {
        let mut vmm = Vmm::new();
        let a = vmm.mmap(2 * HUGE_PAGE_BYTES);
        vmm.munmap(a, HUGE_PAGE_BYTES);
        assert_eq!(vmm.mapped_bytes(), HUGE_PAGE_BYTES);
        assert!(!vmm.page_table().is_mapped(a));
        assert!(vmm.page_table().is_mapped(a + HUGE_PAGE_BYTES));
    }

    #[test]
    #[should_panic(expected = "unmapped")]
    fn double_munmap_panics() {
        let mut vmm = Vmm::new();
        let a = vmm.mmap(HUGE_PAGE_BYTES);
        vmm.munmap(a, HUGE_PAGE_BYTES);
        vmm.munmap(a, HUGE_PAGE_BYTES);
    }

    #[test]
    fn subrelease_counts_and_breaks() {
        let mut vmm = Vmm::new();
        let a = vmm.mmap(HUGE_PAGE_BYTES);
        vmm.subrelease(a, 8192);
        assert_eq!(vmm.stats().madvise_calls, 1);
        assert!(!vmm.page_table().is_huge_backed(a));
    }
}
