//! Virtual CPU (vCPU) IDs via restartable sequences.
//!
//! §4.1: platforms keep growing hyperthread counts (4× over five
//! generations), but a co-located WSC application only runs on its cpuset.
//! Populating a per-CPU cache for every *physical* CPU ID wastes memory, so
//! the kernel's rseq extension assigns each process a **dense, process-
//! private vCPU number space**: "if an application runs on two CPU cores,
//! virtual CPUs always expose IDs 0 and 1, irrespective of which physical
//! cores the application threads are scheduled on."
//!
//! [`VcpuRegistry`] implements that assignment discipline.

use std::collections::HashMap;
use wsc_sim_hw::topology::CpuId;

/// A dense virtual CPU identifier, private to one process.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VcpuId(pub u32);

impl VcpuId {
    /// The raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for VcpuId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "vCPU{}", self.0)
    }
}

/// Per-process physical-CPU → dense-vCPU mapping.
///
/// vCPU IDs are assigned in first-use order, so an application that mostly
/// runs few threads keeps its activity concentrated on low-numbered vCPUs —
/// the usage skew of Figure 9b.
///
/// # Example
///
/// ```
/// use wsc_sim_os::rseq::VcpuRegistry;
/// use wsc_sim_hw::topology::CpuId;
///
/// let mut reg = VcpuRegistry::new();
/// assert_eq!(reg.vcpu_of(CpuId(57)).0, 0); // first CPU seen gets vCPU 0
/// assert_eq!(reg.vcpu_of(CpuId(3)).0, 1);
/// assert_eq!(reg.vcpu_of(CpuId(57)).0, 0); // stable thereafter
/// ```
#[derive(Clone, Debug, Default)]
pub struct VcpuRegistry {
    // lint:allow(hashmap-decl) keyed by CpuId; never iterated
    map: HashMap<CpuId, VcpuId>,
}

impl VcpuRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the vCPU ID for a physical CPU, assigning the next dense ID
    /// on first use.
    pub fn vcpu_of(&mut self, cpu: CpuId) -> VcpuId {
        let next = VcpuId(self.map.len() as u32);
        *self.map.entry(cpu).or_insert(next)
    }

    /// The vCPU ID for a physical CPU, if already assigned.
    pub fn get(&self, cpu: CpuId) -> Option<VcpuId> {
        self.map.get(&cpu).copied()
    }

    /// Number of vCPUs assigned so far (= number of distinct physical CPUs
    /// the process has run on).
    pub fn num_vcpus(&self) -> usize {
        self.map.len()
    }
}

#[cfg(test)]
// Tests may unwrap: a panic IS the failure report here.
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn dense_first_use_assignment() {
        let mut reg = VcpuRegistry::new();
        let a = reg.vcpu_of(CpuId(100));
        let b = reg.vcpu_of(CpuId(7));
        let c = reg.vcpu_of(CpuId(55));
        assert_eq!((a.0, b.0, c.0), (0, 1, 2));
        assert_eq!(reg.num_vcpus(), 3);
    }

    #[test]
    fn mapping_is_stable() {
        let mut reg = VcpuRegistry::new();
        let first = reg.vcpu_of(CpuId(9));
        for _ in 0..10 {
            assert_eq!(reg.vcpu_of(CpuId(9)), first);
        }
        assert_eq!(reg.num_vcpus(), 1);
    }

    #[test]
    fn get_without_assign() {
        let mut reg = VcpuRegistry::new();
        assert_eq!(reg.get(CpuId(1)), None);
        reg.vcpu_of(CpuId(1));
        assert_eq!(reg.get(CpuId(1)), Some(VcpuId(0)));
    }

    #[test]
    fn two_core_app_uses_ids_0_and_1() {
        // The paper's example: an app on two cores sees vCPUs {0, 1} no
        // matter which physical cores it landed on.
        let mut reg = VcpuRegistry::new();
        let ids: Vec<u32> = [CpuId(250), CpuId(13)]
            .into_iter()
            .map(|c| reg.vcpu_of(c).0)
            .collect();
        assert_eq!(ids, vec![0, 1]);
    }
}
