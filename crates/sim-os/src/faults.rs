//! Deterministic OS fault injection: the kernel that *doesn't* cooperate.
//!
//! The paper's warehouse-scale behaviour (§2, §5) only emerges when the
//! kernel misbehaves: `mmap` returns `ENOMEM` on machines running at their
//! memory limit, THP compaction fails and a mapping comes back backed by
//! base pages (collapsing the hugepage-coverage telemetry of Figure 17a),
//! `madvise(DONTNEED)` stalls or fails under reclaim pressure, and any
//! syscall can take a latency excursion. [`FaultPlan`] describes such a
//! regime as pure data — integer per-million rates plus an optional storm
//! window in simulated nanoseconds — and [`FaultInjector`] draws every
//! decision from a dedicated seeded [`SmallRng`], so a plan is bit-identical
//! across `--threads N` and across reruns.
//!
//! Rates are integers (parts per million) rather than `f64` so plans stay
//! `Copy + Eq` (they ride inside `TcmallocConfig`) and so the same plan can
//! never dither across platforms.

use crate::clock::Clock;
use wsc_prng::SmallRng;

/// One million: the denominator of every [`FaultPlan`] rate.
pub const PPM: u32 = 1_000_000;

/// Structured errors from the simulated kernel. These replace panics on
/// every OS-reachable failure path: callers degrade gracefully instead of
/// crashing the process.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OsError {
    /// `mmap` denied: the machine is out of memory.
    Enomem,
    /// `madvise(DONTNEED)` failed (EAGAIN under compaction/reclaim).
    SubreleaseFailed,
    /// An operation named a hugepage the kernel has no mapping for (EINVAL).
    /// Carries the offending hugepage index.
    UnmappedRange(u64),
}

impl OsError {
    /// Short stable name for telemetry and event payloads.
    pub fn name(self) -> &'static str {
        match self {
            OsError::Enomem => "ENOMEM",
            OsError::SubreleaseFailed => "EAGAIN",
            OsError::UnmappedRange(_) => "EINVAL",
        }
    }
}

impl std::fmt::Display for OsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OsError::Enomem => write!(f, "mmap denied: out of memory (ENOMEM)"),
            OsError::SubreleaseFailed => write!(f, "madvise(DONTNEED) failed (EAGAIN)"),
            OsError::UnmappedRange(hp) => write!(f, "operation on unmapped hugepage {hp} (EINVAL)"),
        }
    }
}

/// A declarative, deterministic fault regime. All rates are in parts per
/// million of the corresponding syscalls; `storm` restricts injection to a
/// half-open simulated-time window (`None` = always active).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultPlan {
    /// Seed for the injector's private RNG stream.
    pub seed: u64,
    /// Rate at which `mmap` fails outright with [`OsError::Enomem`].
    pub enomem_ppm: u32,
    /// Rate at which `mmap` succeeds but THP compaction fails: the mapping
    /// comes back 4 KiB-backed instead of hugepage-backed.
    pub deny_huge_ppm: u32,
    /// Rate at which subrelease fails with [`OsError::SubreleaseFailed`].
    pub subrelease_fail_ppm: u32,
    /// Rate at which an otherwise-successful syscall takes a latency spike.
    pub latency_spike_ppm: u32,
    /// Size of an injected latency spike, nanoseconds.
    pub latency_spike_ns: u64,
    /// Half-open `[start_ns, end_ns)` window of simulated time during which
    /// faults are injected. `None` = the whole run.
    pub storm: Option<(u64, u64)>,
    /// Rate at which a khugepaged-style collapse attempt on a 4 KiB-backed
    /// region fails (re-promotion pressure; drawn once per attempt).
    pub collapse_fail_ppm: u32,
}

impl FaultPlan {
    /// A plan that injects nothing. A [`FaultInjector`] driven by it draws
    /// no randomness at all, so behaviour is byte-identical to having no
    /// injector attached.
    pub const fn off() -> Self {
        Self {
            seed: 0,
            enomem_ppm: 0,
            deny_huge_ppm: 0,
            subrelease_fail_ppm: 0,
            latency_spike_ppm: 0,
            latency_spike_ns: 0,
            storm: None,
            collapse_fail_ppm: 0,
        }
    }

    /// True if no fault can ever fire under this plan.
    pub fn is_off(&self) -> bool {
        self.enomem_ppm == 0
            && self.deny_huge_ppm == 0
            && self.subrelease_fail_ppm == 0
            && self.latency_spike_ppm == 0
            && self.collapse_fail_ppm == 0
    }

    /// Restricts injection to the simulated-time window `[start_ns, end_ns)`.
    pub fn with_storm(mut self, start_ns: u64, end_ns: u64) -> Self {
        self.storm = Some((start_ns, end_ns));
        self
    }

    /// Sets the injector seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// The named storm catalog used by `repro` and the docs: each is a
    /// recognizable production incident.
    pub const NAMED: [&'static str; 4] = [
        "enomem-storm",
        "thp-outage",
        "subrelease-flaky",
        "latency-spikes",
    ];

    /// Looks up a named fault regime. Rates are chosen so quick-scale runs
    /// visibly degrade yet survive:
    ///
    /// * `enomem-storm` — 1% of `mmap`s fail with ENOMEM,
    /// * `thp-outage` — 50% of mappings come back 4 KiB-backed and half of
    ///   collapse attempts fail (hugepage coverage craters, then recovers),
    /// * `subrelease-flaky` — 20% of `madvise(DONTNEED)` calls fail,
    /// * `latency-spikes` — 1% of syscalls take a 100 µs excursion.
    pub fn named(name: &str, seed: u64) -> Option<Self> {
        let base = Self::off().with_seed(seed);
        match name {
            "enomem-storm" => Some(Self {
                enomem_ppm: 10_000,
                ..base
            }),
            "thp-outage" => Some(Self {
                deny_huge_ppm: 500_000,
                collapse_fail_ppm: 500_000,
                ..base
            }),
            "subrelease-flaky" => Some(Self {
                subrelease_fail_ppm: 200_000,
                ..base
            }),
            "latency-spikes" => Some(Self {
                latency_spike_ppm: 10_000,
                latency_spike_ns: 100_000,
                ..base
            }),
            _ => None,
        }
    }
}

impl Default for FaultPlan {
    fn default() -> Self {
        Self::off()
    }
}

/// Counters of injected faults, for telemetry and tests.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// `mmap`s denied with ENOMEM.
    pub enomem_injected: u64,
    /// `mmap`s granted without hugepage backing.
    pub huge_denied: u64,
    /// Subreleases failed.
    pub subrelease_failed: u64,
    /// Latency spikes injected.
    pub latency_spikes: u64,
    /// khugepaged collapse attempts failed.
    pub collapse_failed: u64,
}

/// The outcome of consulting the injector at an `mmap`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MmapDecision {
    /// Deny the call with [`OsError::Enomem`].
    pub deny: bool,
    /// Back the mapping with hugepages (false = THP compaction failed).
    pub huge_backed: bool,
    /// Extra injected latency, ns.
    pub latency_ns: u64,
}

/// The outcome of consulting the injector at a subrelease.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SubreleaseDecision {
    /// Fail the call with [`OsError::SubreleaseFailed`].
    pub fail: bool,
    /// Extra injected latency, ns.
    pub latency_ns: u64,
}

/// Draws fault decisions for one simulated process from a private seeded
/// RNG stream. Decisions depend only on the plan, the seed, and the *order*
/// of OS calls — which the deterministic simulation fixes — so a faulted
/// run is exactly reproducible at any engine thread count.
#[derive(Clone, Debug)]
pub struct FaultInjector {
    plan: FaultPlan,
    rng: SmallRng,
    clock: Clock,
    stats: FaultStats,
}

impl FaultInjector {
    /// Creates an injector for `plan`, judging storm windows against
    /// `clock` (the simulation clock, so windows are deterministic too).
    pub fn new(plan: FaultPlan, clock: Clock) -> Self {
        Self {
            plan,
            rng: SmallRng::seed_from_u64(plan.seed),
            clock,
            stats: FaultStats::default(),
        }
    }

    /// The plan this injector draws from.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Injection counters so far.
    pub fn stats(&self) -> FaultStats {
        self.stats
    }

    /// Is the plan active right now (inside the storm window, if any)?
    pub fn active(&self) -> bool {
        match self.plan.storm {
            None => true,
            Some((start, end)) => {
                let now = self.clock.now_ns();
                now >= start && now < end
            }
        }
    }

    /// One Bernoulli draw at `ppm` parts per million. Zero-rate draws
    /// consume no randomness, so an all-zero plan is behaviour-identical
    /// to no plan at all.
    fn draw(&mut self, ppm: u32) -> bool {
        ppm > 0 && self.rng.gen_range(0..PPM) < ppm
    }

    /// Consults the plan at an `mmap` call.
    pub fn on_mmap(&mut self) -> MmapDecision {
        if !self.active() {
            return MmapDecision {
                deny: false,
                huge_backed: true,
                latency_ns: 0,
            };
        }
        if self.draw(self.plan.enomem_ppm) {
            self.stats.enomem_injected += 1;
            return MmapDecision {
                deny: true,
                huge_backed: false,
                latency_ns: 0,
            };
        }
        let huge_backed = if self.draw(self.plan.deny_huge_ppm) {
            self.stats.huge_denied += 1;
            false
        } else {
            true
        };
        MmapDecision {
            deny: false,
            huge_backed,
            latency_ns: self.spike(),
        }
    }

    /// Consults the plan at a subrelease call.
    pub fn on_subrelease(&mut self) -> SubreleaseDecision {
        if !self.active() {
            return SubreleaseDecision {
                fail: false,
                latency_ns: 0,
            };
        }
        if self.draw(self.plan.subrelease_fail_ppm) {
            self.stats.subrelease_failed += 1;
            return SubreleaseDecision {
                fail: true,
                latency_ns: 0,
            };
        }
        SubreleaseDecision {
            fail: false,
            latency_ns: self.spike(),
        }
    }

    /// Consults the plan at a khugepaged-style collapse attempt on a fully
    /// resident 4 KiB-backed region. Returns true if the collapse succeeds.
    pub fn on_collapse(&mut self) -> bool {
        if self.active() && self.draw(self.plan.collapse_fail_ppm) {
            self.stats.collapse_failed += 1;
            false
        } else {
            true
        }
    }

    fn spike(&mut self) -> u64 {
        if self.draw(self.plan.latency_spike_ppm) {
            self.stats.latency_spikes += 1;
            self.plan.latency_spike_ns
        } else {
            0
        }
    }
}

#[cfg(test)]
// Tests may unwrap: a panic IS the failure report here.
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    fn always_enomem() -> FaultPlan {
        FaultPlan {
            enomem_ppm: PPM,
            ..FaultPlan::off()
        }
    }

    #[test]
    fn off_plan_never_fires_and_draws_nothing() {
        let clock = Clock::new();
        let mut a = FaultInjector::new(FaultPlan::off(), clock.clone());
        let mut probe = FaultInjector::new(
            FaultPlan {
                seed: 0,
                enomem_ppm: PPM,
                ..FaultPlan::off()
            },
            clock,
        );
        for _ in 0..100 {
            let d = a.on_mmap();
            assert!(!d.deny && d.huge_backed && d.latency_ns == 0);
            assert!(!a.on_subrelease().fail);
            assert!(a.on_collapse());
        }
        assert_eq!(a.stats(), FaultStats::default());
        // Same seed: the probe (rate = 1) fires on its very first draw,
        // proving the off plan consumed no randomness above.
        assert!(probe.on_mmap().deny);
    }

    #[test]
    fn full_rate_always_fires() {
        let mut inj = FaultInjector::new(always_enomem(), Clock::new());
        for _ in 0..50 {
            assert!(inj.on_mmap().deny);
        }
        assert_eq!(inj.stats().enomem_injected, 50);
    }

    #[test]
    fn same_seed_same_decisions() {
        let plan = FaultPlan {
            seed: 42,
            enomem_ppm: 300_000,
            deny_huge_ppm: 300_000,
            subrelease_fail_ppm: 300_000,
            latency_spike_ppm: 300_000,
            latency_spike_ns: 1_000,
            ..FaultPlan::off()
        };
        let mut a = FaultInjector::new(plan, Clock::new());
        let mut b = FaultInjector::new(plan, Clock::new());
        for i in 0..500 {
            match i % 3 {
                0 => assert_eq!(a.on_mmap(), b.on_mmap()),
                1 => assert_eq!(a.on_subrelease(), b.on_subrelease()),
                _ => assert_eq!(a.on_collapse(), b.on_collapse()),
            }
        }
        assert_eq!(a.stats(), b.stats());
    }

    #[test]
    fn storm_window_gates_injection() {
        let clock = Clock::new();
        let plan = always_enomem().with_storm(1_000, 2_000);
        let mut inj = FaultInjector::new(plan, clock.clone());
        assert!(!inj.on_mmap().deny, "before the storm");
        clock.advance(1_000);
        assert!(inj.on_mmap().deny, "inside the storm");
        clock.advance(1_000);
        assert!(!inj.on_mmap().deny, "after the storm (half-open window)");
        assert_eq!(inj.stats().enomem_injected, 1);
    }

    #[test]
    fn deny_huge_grants_base_pages() {
        let plan = FaultPlan {
            deny_huge_ppm: PPM,
            ..FaultPlan::off()
        };
        let mut inj = FaultInjector::new(plan, Clock::new());
        let d = inj.on_mmap();
        assert!(!d.deny, "the call itself succeeds");
        assert!(!d.huge_backed, "but THP compaction failed");
        assert_eq!(inj.stats().huge_denied, 1);
    }

    #[test]
    fn named_storms_resolve_and_unknown_does_not() {
        for name in FaultPlan::NAMED {
            let plan = FaultPlan::named(name, 7).unwrap();
            assert!(!plan.is_off(), "{name} must inject something");
            assert_eq!(plan.seed, 7);
        }
        assert_eq!(FaultPlan::named("fine-weather", 7), None);
    }

    #[test]
    fn error_names_are_stable() {
        assert_eq!(OsError::Enomem.name(), "ENOMEM");
        assert_eq!(OsError::SubreleaseFailed.name(), "EAGAIN");
        assert_eq!(OsError::UnmappedRange(3).name(), "EINVAL");
        assert!(OsError::UnmappedRange(3).to_string().contains("3"));
    }
}
