//! Cpuset scheduler for one co-located process.
//!
//! The control plane constrains each WSC application to a subset of the
//! machine's CPUs, and the application varies its worker-thread count with
//! load (Figure 9a: constant fluctuation from load spikes and diurnal
//! cycles). The kernel packs runnable threads onto the lowest-indexed CPUs
//! of the cpuset first — which, combined with dense vCPU IDs, concentrates
//! allocator traffic on low-numbered vCPUs and leaves higher-numbered
//! per-CPU caches cold but still sized (the Figure 9b skew that motivates
//! heterogeneous per-CPU caches).

use wsc_sim_hw::topology::CpuId;

/// Thread-to-CPU placement for one process over a fixed cpuset.
///
/// Thread *slots* are dense indices `0..active_threads`; slot `i` runs on
/// `cpuset[i % cpuset.len()]`, so the first `cpuset.len()` threads get
/// dedicated CPUs and further threads share.
///
/// # Example
///
/// ```
/// use wsc_sim_os::sched::Scheduler;
/// use wsc_sim_hw::topology::CpuId;
///
/// let mut s = Scheduler::new(vec![CpuId(4), CpuId(5), CpuId(6)]);
/// s.set_active_threads(2);
/// assert_eq!(s.cpu_for_thread(0), CpuId(4));
/// assert_eq!(s.active_cpus().count(), 2); // CPU 6 idle at this load
/// ```
#[derive(Clone, Debug)]
pub struct Scheduler {
    cpuset: Vec<CpuId>,
    active_threads: usize,
}

impl Scheduler {
    /// Creates a scheduler over a cpuset.
    ///
    /// # Panics
    ///
    /// Panics if the cpuset is empty.
    pub fn new(cpuset: Vec<CpuId>) -> Self {
        assert!(!cpuset.is_empty(), "cpuset must be non-empty");
        Self {
            cpuset,
            active_threads: 1,
        }
    }

    /// Updates the number of runnable worker threads (load change).
    /// Clamped to at least 1.
    pub fn set_active_threads(&mut self, n: usize) {
        self.active_threads = n.max(1);
    }

    /// Current runnable worker threads.
    pub fn active_threads(&self) -> usize {
        self.active_threads
    }

    /// The cpuset this process is constrained to.
    pub fn cpuset(&self) -> &[CpuId] {
        &self.cpuset
    }

    /// The CPU a given thread slot runs on.
    ///
    /// # Panics
    ///
    /// Panics if `slot >= active_threads`.
    pub fn cpu_for_thread(&self, slot: usize) -> CpuId {
        assert!(
            slot < self.active_threads,
            "thread slot {slot} >= active threads {}",
            self.active_threads
        );
        self.cpuset[slot % self.cpuset.len()]
    }

    /// CPUs with at least one runnable thread at the current load.
    pub fn active_cpus(&self) -> impl Iterator<Item = CpuId> + '_ {
        self.cpuset
            .iter()
            .copied()
            .take(self.active_threads.min(self.cpuset.len()))
    }
}

#[cfg(test)]
// Tests may unwrap: a panic IS the failure report here.
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    fn cpus(n: u32) -> Vec<CpuId> {
        (0..n).map(CpuId).collect()
    }

    #[test]
    fn packs_low_cpus_first() {
        let mut s = Scheduler::new(cpus(8));
        s.set_active_threads(3);
        let active: Vec<_> = s.active_cpus().collect();
        assert_eq!(active, vec![CpuId(0), CpuId(1), CpuId(2)]);
    }

    #[test]
    fn oversubscription_wraps() {
        let mut s = Scheduler::new(cpus(2));
        s.set_active_threads(5);
        assert_eq!(s.cpu_for_thread(0), CpuId(0));
        assert_eq!(s.cpu_for_thread(1), CpuId(1));
        assert_eq!(s.cpu_for_thread(2), CpuId(0));
        assert_eq!(s.active_cpus().count(), 2);
    }

    #[test]
    #[should_panic(expected = "thread slot")]
    fn out_of_range_slot_panics() {
        let s = Scheduler::new(cpus(2));
        let _ = s.cpu_for_thread(1); // default is 1 active thread
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_cpuset_panics() {
        let _ = Scheduler::new(vec![]);
    }

    #[test]
    fn load_fluctuation_changes_active_set() {
        let mut s = Scheduler::new(cpus(16));
        s.set_active_threads(16);
        assert_eq!(s.active_cpus().count(), 16);
        s.set_active_threads(2);
        assert_eq!(s.active_cpus().count(), 2);
        s.set_active_threads(0); // clamped
        assert_eq!(s.active_threads(), 1);
    }
}
