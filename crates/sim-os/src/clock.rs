//! The shared simulated clock.
//!
//! Every layer — the allocator's background maintenance (the 5-second cache
//! resizer of §4.1), lifetime telemetry (Figure 8), and the workload driver —
//! reads the same monotonic nanosecond clock. Only the driver advances it.

use std::sync::atomic::{AtomicU64, Ordering};
// lint:allow(concurrency-readiness) Arc is shared ownership of the single
// clock word, not synchronization: the driver is the only writer, and every
// reader tolerates any interleaving of whole-word updates.
use std::sync::Arc;

/// A cheaply-cloneable handle to a monotonic simulated clock (nanoseconds).
///
/// # Example
///
/// ```
/// use wsc_sim_os::clock::Clock;
///
/// let clock = Clock::new();
/// let view = clock.clone();
/// clock.advance(1_500);
/// assert_eq!(view.now_ns(), 1_500);
/// ```
#[derive(Clone, Debug, Default)]
pub struct Clock {
    // lint:allow(concurrency-readiness) see the import note: shared
    // ownership of one atomic word, no locking.
    ns: Arc<AtomicU64>,
}

/// Nanoseconds per second.
pub const NS_PER_SEC: u64 = 1_000_000_000;

/// Nanoseconds per millisecond.
pub const NS_PER_MS: u64 = 1_000_000;

impl Clock {
    /// Creates a clock at time 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current simulated time, ns.
    pub fn now_ns(&self) -> u64 {
        // lint:allow(atomic-ordering) Relaxed: the clock word carries no
        // other data; readers only need some whole-word value.
        self.ns.load(Ordering::Relaxed)
    }

    /// Advances the clock by `delta_ns` and returns the new time.
    pub fn advance(&self, delta_ns: u64) -> u64 {
        // lint:allow(atomic-ordering) Relaxed: fetch_add is atomic per
        // word; time ordering comes from the single-writer driver.
        self.ns.fetch_add(delta_ns, Ordering::Relaxed) + delta_ns
    }

    /// Moves the clock forward to `t_ns` if it is ahead of now; no-op
    /// otherwise (the clock never goes backwards).
    pub fn advance_to(&self, t_ns: u64) {
        // lint:allow(atomic-ordering) Relaxed: fetch_max is idempotent and
        // monotone; no ordering with other memory is implied.
        self.ns.fetch_max(t_ns, Ordering::Relaxed);
    }
}

#[cfg(test)]
// Tests may unwrap: a panic IS the failure report here.
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn starts_at_zero_and_advances() {
        let c = Clock::new();
        assert_eq!(c.now_ns(), 0);
        assert_eq!(c.advance(10), 10);
        assert_eq!(c.now_ns(), 10);
    }

    #[test]
    fn clones_share_time() {
        let a = Clock::new();
        let b = a.clone();
        a.advance(5);
        assert_eq!(b.now_ns(), 5);
    }

    #[test]
    fn advance_to_is_monotonic() {
        let c = Clock::new();
        c.advance_to(100);
        c.advance_to(50);
        assert_eq!(c.now_ns(), 100);
    }
}
