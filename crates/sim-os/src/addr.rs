//! Address-space constants and alignment helpers.
//!
//! Three page granularities matter in the paper (§2.1, footnote 1):
//!
//! * the 4 KiB **native** x86 page,
//! * the 8 KiB **TCMalloc page** (two native pages) — the unit spans are
//!   made of,
//! * the 2 MiB **hugepage** — the unit the pageheap manages and the kernel's
//!   THP machinery covers with a single TLB entry.

/// Native (base) page size: 4 KiB.
pub const BASE_PAGE_BYTES: u64 = 4 << 10;

/// TCMalloc page size: 8 KiB (two native x86 pages).
pub const TCMALLOC_PAGE_BYTES: u64 = 8 << 10;

/// Hugepage size: 2 MiB.
pub const HUGE_PAGE_BYTES: u64 = 2 << 20;

/// TCMalloc pages per hugepage (256).
pub const TCMALLOC_PAGES_PER_HUGE: u64 = HUGE_PAGE_BYTES / TCMALLOC_PAGE_BYTES;

/// Rounds `v` up to a multiple of `align`.
///
/// # Panics
///
/// Panics if `align` is not a power of two.
pub fn align_up(v: u64, align: u64) -> u64 {
    assert!(align.is_power_of_two(), "alignment must be a power of two");
    (v + align - 1) & !(align - 1)
}

/// Rounds `v` down to a multiple of `align`.
///
/// # Panics
///
/// Panics if `align` is not a power of two.
pub fn align_down(v: u64, align: u64) -> u64 {
    assert!(align.is_power_of_two(), "alignment must be a power of two");
    v & !(align - 1)
}

/// Is `v` aligned to `align`?
pub fn is_aligned(v: u64, align: u64) -> bool {
    align_down(v, align) == v
}

/// Index of the hugepage containing `addr`.
pub fn hugepage_index(addr: u64) -> u64 {
    addr / HUGE_PAGE_BYTES
}

/// Index of the TCMalloc page containing `addr`.
pub fn tcmalloc_page_index(addr: u64) -> u64 {
    addr / TCMALLOC_PAGE_BYTES
}

#[cfg(test)]
// Tests may unwrap: a panic IS the failure report here.
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn constants_are_consistent() {
        assert_eq!(TCMALLOC_PAGE_BYTES, 2 * BASE_PAGE_BYTES);
        assert_eq!(TCMALLOC_PAGES_PER_HUGE, 256);
    }

    #[test]
    fn align_up_basic() {
        assert_eq!(align_up(0, 8), 0);
        assert_eq!(align_up(1, 8), 8);
        assert_eq!(align_up(8, 8), 8);
        assert_eq!(align_up(9, 8), 16);
    }

    #[test]
    fn align_down_basic() {
        assert_eq!(align_down(0, 8), 0);
        assert_eq!(align_down(7, 8), 0);
        assert_eq!(align_down(8, 8), 8);
        assert_eq!(align_down(15, 8), 8);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_power_of_two() {
        let _ = align_up(5, 3);
    }

    #[test]
    fn page_indices() {
        assert_eq!(hugepage_index(0), 0);
        assert_eq!(hugepage_index(HUGE_PAGE_BYTES - 1), 0);
        assert_eq!(hugepage_index(HUGE_PAGE_BYTES), 1);
        assert_eq!(tcmalloc_page_index(TCMALLOC_PAGE_BYTES * 3 + 5), 3);
    }

    #[test]
    fn is_aligned_checks() {
        assert!(is_aligned(HUGE_PAGE_BYTES, HUGE_PAGE_BYTES));
        assert!(!is_aligned(HUGE_PAGE_BYTES + 1, HUGE_PAGE_BYTES));
    }
}
