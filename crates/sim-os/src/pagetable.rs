//! Page-table backing state: which regions are hugepage-backed.
//!
//! The kernel's transparent-hugepage (THP) machinery backs an aligned,
//! fully-mapped 2 MiB region with a single hugepage. TCMalloc's pageheap can
//! *subrelease* a partially-free hugepage (`madvise(DONTNEED)` on a
//! sub-range), which forces the kernel to split it into base pages — freeing
//! memory but permanently degrading TLB reach for the survivors (§3, §4.4).
//! [`PageTable`] tracks that state and computes the **hugepage coverage**
//! metric of Figure 17a: the fraction of resident heap bytes backed by
//! hugepages.

use crate::addr::{HUGE_PAGE_BYTES, TCMALLOC_PAGES_PER_HUGE, TCMALLOC_PAGE_BYTES};
use crate::faults::OsError;
use std::collections::BTreeMap;
use wsc_sim_hw::tlb::PageSize;

/// Words of the per-hugepage released-page bitmask (256 TCMalloc pages).
const MASK_WORDS: usize = (TCMALLOC_PAGES_PER_HUGE as usize) / 64;

/// Backing state of one mapped hugepage-sized region.
#[derive(Clone, Debug, PartialEq, Eq)]
struct HugeState {
    /// Still backed by a single 2 MiB hugepage?
    huge: bool,
    /// THP compaction failed at `mmap` time: the region has always been
    /// 4 KiB-backed and is eligible for khugepaged-style collapse once it
    /// is fully resident. Subrelease-broken hugepages (`denied == false`,
    /// `huge == false`) are *not* eligible — the kernel never transparently
    /// rebuilds those, which is the §3 degradation story.
    denied: bool,
    /// For broken hugepages: bitmask of *released* (non-resident) TCMalloc
    /// pages. All-zero while `huge` is true.
    released: [u64; MASK_WORDS],
}

impl HugeState {
    fn new_huge() -> Self {
        Self {
            huge: true,
            denied: false,
            released: [0; MASK_WORDS],
        }
    }

    fn new_denied() -> Self {
        Self {
            huge: false,
            denied: true,
            released: [0; MASK_WORDS],
        }
    }

    fn released_pages(&self) -> u32 {
        self.released.iter().map(|w| w.count_ones()).sum()
    }

    fn resident_bytes(&self) -> u64 {
        HUGE_PAGE_BYTES - self.released_pages() as u64 * TCMALLOC_PAGE_BYTES
    }
}

/// Tracks the backing (huge vs base pages, residency) of every mapped
/// hugepage-sized region in a process.
///
/// # Example
///
/// ```
/// use wsc_sim_os::pagetable::PageTable;
/// use wsc_sim_os::addr::HUGE_PAGE_BYTES;
///
/// let mut pt = PageTable::new();
/// pt.on_mmap(0, HUGE_PAGE_BYTES);
/// assert!(pt.is_huge_backed(0));
/// assert!((pt.hugepage_coverage() - 1.0).abs() < 1e-12);
/// pt.subrelease(0, 8 * 1024).expect("range is mapped"); // break the hugepage
/// assert!(!pt.is_huge_backed(0));
/// assert!(pt.hugepage_coverage() < 1.0);
/// ```
#[derive(Clone, Debug, Default)]
pub struct PageTable {
    regions: BTreeMap<u64, HugeState>,
}

impl PageTable {
    /// Creates an empty page table.
    pub fn new() -> Self {
        Self::default()
    }

    fn for_each_hugepage(addr: u64, len: u64) -> impl Iterator<Item = u64> {
        assert!(
            addr.is_multiple_of(HUGE_PAGE_BYTES) && len.is_multiple_of(HUGE_PAGE_BYTES),
            "mmap/munmap must be hugepage-granular: addr={addr:#x} len={len:#x}"
        );
        (addr / HUGE_PAGE_BYTES)..((addr + len) / HUGE_PAGE_BYTES)
    }

    /// Registers a new hugepage-aligned mapping; THP backs every 2 MiB of it
    /// with a hugepage.
    ///
    /// # Panics
    ///
    /// Panics on misaligned arguments or double-mapping.
    pub fn on_mmap(&mut self, addr: u64, len: u64) {
        self.on_mmap_backed(addr, len, true);
    }

    /// Registers a new hugepage-aligned mapping with explicit backing:
    /// `huge = false` models THP compaction failure, where the kernel grants
    /// the mapping but backs it with base pages (fully resident, zero
    /// hugepage coverage) until a later collapse [`promote`]s it.
    ///
    /// # Panics
    ///
    /// Panics on misaligned arguments or double-mapping.
    ///
    /// [`promote`]: Self::promote
    pub fn on_mmap_backed(&mut self, addr: u64, len: u64, huge: bool) {
        for hp in Self::for_each_hugepage(addr, len) {
            let state = if huge {
                HugeState::new_huge()
            } else {
                HugeState::new_denied()
            };
            let prev = self.regions.insert(hp, state);
            assert!(prev.is_none(), "double mmap of hugepage {hp}");
        }
    }

    /// Removes a mapping entirely.
    ///
    /// # Panics
    ///
    /// Panics on misaligned arguments or unmapping an absent region.
    pub fn on_munmap(&mut self, addr: u64, len: u64) {
        for hp in Self::for_each_hugepage(addr, len) {
            assert!(
                self.regions.remove(&hp).is_some(),
                "munmap of unmapped hugepage {hp}"
            );
        }
    }

    /// `madvise(DONTNEED)` on a TCMalloc-page-granular sub-range: every
    /// touched hugepage is split into base pages and the range becomes
    /// non-resident.
    ///
    /// # Errors
    ///
    /// Returns [`OsError::UnmappedRange`] (naming the first offending
    /// hugepage) if any part of the range is not mapped; nothing is applied
    /// in that case, so a stray subrelease is reportable, not fatal.
    ///
    /// # Panics
    ///
    /// Panics on misaligned arguments (an allocator bug, not an OS outcome).
    pub fn subrelease(&mut self, addr: u64, len: u64) -> Result<(), OsError> {
        assert!(
            addr.is_multiple_of(TCMALLOC_PAGE_BYTES) && len.is_multiple_of(TCMALLOC_PAGE_BYTES),
            "subrelease must be TCMalloc-page-granular"
        );
        let first = addr / TCMALLOC_PAGE_BYTES;
        let last = (addr + len) / TCMALLOC_PAGE_BYTES;
        // Validate the whole range before touching anything: EINVAL leaves
        // the page table exactly as it was.
        for page in first..last {
            let hp = page / TCMALLOC_PAGES_PER_HUGE;
            if !self.regions.contains_key(&hp) {
                return Err(OsError::UnmappedRange(hp));
            }
        }
        for page in first..last {
            let hp = page / TCMALLOC_PAGES_PER_HUGE;
            let state = self.regions.get_mut(&hp).expect("validated above");
            state.huge = false;
            let bit = (page % TCMALLOC_PAGES_PER_HUGE) as usize;
            state.released[bit / 64] |= 1 << (bit % 64);
        }
        Ok(())
    }

    /// The application touches a previously-subreleased range again: the
    /// kernel faults base pages back in. The hugepage stays broken — the
    /// kernel does not transparently rebuild it, which is exactly the
    /// "subrelease leads to performance degradation" effect of §3.
    pub fn reoccupy(&mut self, addr: u64, len: u64) {
        let first = addr / TCMALLOC_PAGE_BYTES;
        let last = (addr + len).div_ceil(TCMALLOC_PAGE_BYTES);
        for page in first..last {
            let hp = page / TCMALLOC_PAGES_PER_HUGE;
            if let Some(state) = self.regions.get_mut(&hp) {
                let bit = (page % TCMALLOC_PAGES_PER_HUGE) as usize;
                state.released[bit / 64] &= !(1 << (bit % 64));
            }
        }
    }

    /// khugepaged-style collapse: rebuilds hugepage backing for the region
    /// containing `addr`, but only if the region was *denied* hugepage
    /// backing at `mmap` time and is currently fully resident. Returns
    /// whether the promotion happened. Subrelease-broken hugepages never
    /// promote (the kernel does not rebuild those, §3).
    pub fn promote(&mut self, addr: u64) -> bool {
        match self.regions.get_mut(&(addr / HUGE_PAGE_BYTES)) {
            Some(s) if s.denied && s.released_pages() == 0 => {
                s.huge = true;
                s.denied = false;
                true
            }
            _ => false,
        }
    }

    /// Was the hugepage containing `addr` denied hugepage backing at `mmap`
    /// time (and not yet collapsed back)?
    pub fn is_denied(&self, addr: u64) -> bool {
        self.regions
            .get(&(addr / HUGE_PAGE_BYTES))
            .is_some_and(|s| s.denied)
    }

    /// Is every TCMalloc page of the hugepage containing `addr` resident?
    pub fn is_fully_resident(&self, addr: u64) -> bool {
        self.regions
            .get(&(addr / HUGE_PAGE_BYTES))
            .is_some_and(|s| s.released_pages() == 0)
    }

    /// Number of mapped hugepage regions currently denied hugepage backing.
    pub fn denied_hugepages(&self) -> u64 {
        self.regions.values().filter(|s| s.denied).count() as u64
    }

    /// Is the hugepage containing `addr` still backed by a real hugepage?
    pub fn is_huge_backed(&self, addr: u64) -> bool {
        self.regions
            .get(&(addr / HUGE_PAGE_BYTES))
            .is_some_and(|s| s.huge)
    }

    /// Is `addr` mapped at all?
    pub fn is_mapped(&self, addr: u64) -> bool {
        self.regions.contains_key(&(addr / HUGE_PAGE_BYTES))
    }

    /// Translation page size for `addr`, for feeding the TLB simulator.
    /// Unmapped or broken regions translate at base-page granularity.
    pub fn page_size_of(&self, addr: u64) -> PageSize {
        if self.is_huge_backed(addr) {
            PageSize::Huge2M
        } else {
            PageSize::Base4K
        }
    }

    /// Total mapped bytes.
    pub fn mapped_bytes(&self) -> u64 {
        self.regions.len() as u64 * HUGE_PAGE_BYTES
    }

    /// Resident bytes (mapped minus subreleased).
    pub fn resident_bytes(&self) -> u64 {
        self.regions.values().map(HugeState::resident_bytes).sum()
    }

    /// Resident bytes backed by hugepages.
    pub fn huge_backed_bytes(&self) -> u64 {
        self.regions
            .values()
            .filter(|s| s.huge)
            .map(HugeState::resident_bytes)
            .sum()
    }

    /// Hugepage coverage: fraction of resident bytes backed by hugepages
    /// (Figure 17a). 0 when nothing is resident.
    pub fn hugepage_coverage(&self) -> f64 {
        let resident = self.resident_bytes();
        if resident == 0 {
            0.0
        } else {
            self.huge_backed_bytes() as f64 / resident as f64
        }
    }
}

#[cfg(test)]
// Tests may unwrap: a panic IS the failure report here.
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    const HP: u64 = HUGE_PAGE_BYTES;
    const TP: u64 = TCMALLOC_PAGE_BYTES;

    #[test]
    fn mmap_is_huge_backed() {
        let mut pt = PageTable::new();
        pt.on_mmap(HP * 4, HP * 2);
        assert!(pt.is_huge_backed(HP * 4));
        assert!(pt.is_huge_backed(HP * 5 + 12345));
        assert!(!pt.is_mapped(HP * 6));
        assert_eq!(pt.mapped_bytes(), 2 * HP);
        assert_eq!(pt.resident_bytes(), 2 * HP);
        assert!((pt.hugepage_coverage() - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "double mmap")]
    fn double_mmap_panics() {
        let mut pt = PageTable::new();
        pt.on_mmap(0, HP);
        pt.on_mmap(0, HP);
    }

    #[test]
    #[should_panic(expected = "hugepage-granular")]
    fn misaligned_mmap_panics() {
        let mut pt = PageTable::new();
        pt.on_mmap(4096, HP);
    }

    #[test]
    fn subrelease_breaks_hugepage_and_coverage_drops() {
        let mut pt = PageTable::new();
        pt.on_mmap(0, 2 * HP);
        pt.subrelease(0, 4 * TP).unwrap();
        assert!(!pt.is_huge_backed(0));
        assert!(pt.is_huge_backed(HP), "second hugepage untouched");
        assert_eq!(pt.resident_bytes(), 2 * HP - 4 * TP);
        let cov = pt.hugepage_coverage();
        // One of ~two hugepages' worth of resident bytes is huge-backed.
        assert!(cov > 0.4 && cov < 0.6, "coverage {cov}");
    }

    #[test]
    fn reoccupy_restores_residency_not_hugeness() {
        let mut pt = PageTable::new();
        pt.on_mmap(0, HP);
        pt.subrelease(0, HP).unwrap();
        assert_eq!(pt.resident_bytes(), 0);
        pt.reoccupy(0, HP);
        assert_eq!(pt.resident_bytes(), HP);
        assert!(!pt.is_huge_backed(0), "THP does not rebuild");
        assert_eq!(pt.hugepage_coverage(), 0.0);
    }

    #[test]
    fn munmap_removes() {
        let mut pt = PageTable::new();
        pt.on_mmap(0, HP);
        pt.on_munmap(0, HP);
        assert!(!pt.is_mapped(0));
        assert_eq!(pt.mapped_bytes(), 0);
    }

    #[test]
    #[should_panic(expected = "unmapped")]
    fn munmap_absent_panics() {
        let mut pt = PageTable::new();
        pt.on_munmap(0, HP);
    }

    #[test]
    fn page_size_for_tlb() {
        let mut pt = PageTable::new();
        pt.on_mmap(0, HP);
        assert_eq!(pt.page_size_of(100), PageSize::Huge2M);
        pt.subrelease(0, TP).unwrap();
        assert_eq!(pt.page_size_of(100), PageSize::Base4K);
        assert_eq!(pt.page_size_of(HP * 99), PageSize::Base4K);
    }
}
