//! Simulated kernel memory subsystem and scheduler.
//!
//! TCMalloc is a userspace allocator, but the paper (§5 "Cooperation with
//! kernel features") stresses that its performance rests on three kernel
//! contracts, all of which this crate models:
//!
//! * **`mmap` and transparent hugepages** ([`vmm::Vmm`], [`pagetable`]) — the
//!   pageheap requests zeroed, hugepage-aligned 2 MiB blocks; the kernel
//!   backs them with hugepages, and *subrelease* breaks a hugepage into base
//!   pages (losing TLB reach, Figure 17),
//! * **restartable sequences / virtual CPU IDs** ([`rseq::VcpuRegistry`]) —
//!   dense per-process vCPU numbering that keeps the per-CPU cache array
//!   small on machines with hundreds of hyperthreads (§4.1),
//! * **the cpuset scheduler** ([`sched::Scheduler`]) — WSC applications are
//!   constrained to a subset of CPUs and their worker-thread count
//!   fluctuates with load (Figure 9a), which is what biases usage toward
//!   low-indexed vCPUs (Figure 9b).
//!
//! A shared [`clock::Clock`] supplies simulated nanoseconds to every layer.
//!
//! # Example
//!
//! ```
//! use wsc_sim_os::vmm::Vmm;
//! use wsc_sim_os::addr::HUGE_PAGE_BYTES;
//!
//! let mut vmm = Vmm::new();
//! let grant = vmm.mmap(HUGE_PAGE_BYTES).expect("no fault plan attached");
//! assert_eq!(grant.addr % HUGE_PAGE_BYTES, 0, "hugepage aligned");
//! assert!(vmm.page_table().is_huge_backed(grant.addr));
//! ```
//!
//! A fourth contract is that the kernel may *refuse* to cooperate: [`faults`]
//! models ENOMEM, THP compaction failure, flaky `madvise`, and latency
//! spikes as a seeded, deterministic [`faults::FaultPlan`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod addr;
pub mod clock;
pub mod faults;
pub mod pagetable;
pub mod rseq;
pub mod sched;
pub mod vmm;

pub use clock::Clock;
pub use faults::{FaultInjector, FaultPlan, FaultStats, OsError};
pub use rseq::VcpuRegistry;
pub use sched::Scheduler;
pub use vmm::{MmapGrant, Vmm};
