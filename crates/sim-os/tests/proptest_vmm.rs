//! Property tests for the simulated kernel memory subsystem.

use proptest::prelude::*;
use wsc_sim_os::addr::{HUGE_PAGE_BYTES, TCMALLOC_PAGE_BYTES};
use wsc_sim_os::vmm::Vmm;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn mappings_never_overlap_and_stay_aligned(lens in prop::collection::vec(1u64..(64 << 20), 1..40)) {
        let mut vmm = Vmm::new();
        let mut ranges: Vec<(u64, u64)> = Vec::new();
        for len in lens {
            let addr = vmm.mmap(len);
            prop_assert_eq!(addr % HUGE_PAGE_BYTES, 0);
            let rounded = len.div_ceil(HUGE_PAGE_BYTES) * HUGE_PAGE_BYTES;
            for &(a, l) in &ranges {
                prop_assert!(addr + rounded <= a || a + l <= addr);
            }
            ranges.push((addr, rounded));
        }
        let total: u64 = ranges.iter().map(|&(_, l)| l).sum();
        prop_assert_eq!(vmm.mapped_bytes(), total);
    }

    #[test]
    fn residency_accounting_matches_subreleases(
        hp_count in 1u64..8,
        cuts in prop::collection::vec((0u64..2048, 1u64..64), 0..12)
    ) {
        let mut vmm = Vmm::new();
        let base = vmm.mmap(hp_count * HUGE_PAGE_BYTES);
        let pages_total = hp_count * HUGE_PAGE_BYTES / TCMALLOC_PAGE_BYTES;
        // Track released TCMalloc pages exactly.
        let mut released = vec![false; pages_total as usize];
        for (start, len) in cuts {
            let start = start % pages_total;
            let len = len.min(pages_total - start);
            if len == 0 {
                continue;
            }
            vmm.subrelease(
                base + start * TCMALLOC_PAGE_BYTES,
                len * TCMALLOC_PAGE_BYTES,
            );
            for p in start..start + len {
                released[p as usize] = true;
            }
        }
        let released_pages = released.iter().filter(|&&r| r).count() as u64;
        prop_assert_eq!(
            vmm.page_table().resident_bytes(),
            (pages_total - released_pages) * TCMALLOC_PAGE_BYTES
        );
        // Coverage: only untouched hugepages remain huge-backed.
        for hp in 0..hp_count {
            let touched = released
                [(hp * 256) as usize..((hp + 1) * 256) as usize]
                .iter()
                .any(|&r| r);
            prop_assert_eq!(
                vmm.page_table().is_huge_backed(base + hp * HUGE_PAGE_BYTES),
                !touched
            );
        }
    }

    #[test]
    fn reoccupy_restores_residency_exactly(
        start in 0u64..200,
        len in 1u64..56
    ) {
        let mut vmm = Vmm::new();
        let base = vmm.mmap(HUGE_PAGE_BYTES);
        vmm.subrelease(base, HUGE_PAGE_BYTES);
        prop_assert_eq!(vmm.page_table().resident_bytes(), 0);
        vmm.reoccupy(
            base + start * TCMALLOC_PAGE_BYTES,
            len * TCMALLOC_PAGE_BYTES,
        );
        prop_assert_eq!(
            vmm.page_table().resident_bytes(),
            len * TCMALLOC_PAGE_BYTES
        );
        // Still broken: reoccupation does not rebuild the hugepage.
        prop_assert!(!vmm.page_table().is_huge_backed(base));
    }
}
