//! Property tests for the simulated kernel memory subsystem.
//!
//! Deterministic seeded-loop properties (hermetic replacement for the
//! original proptest strategies): inputs come from a [`wsc_prng::SmallRng`]
//! stream seeded per case, so runs are identical everywhere.

use wsc_prng::SmallRng;
use wsc_sim_os::addr::{HUGE_PAGE_BYTES, TCMALLOC_PAGE_BYTES};
use wsc_sim_os::vmm::Vmm;

#[test]
fn mappings_never_overlap_and_stay_aligned() {
    for case in 0..128u64 {
        let mut rng = SmallRng::seed_from_u64(0x0520 + case);
        let mut vmm = Vmm::new();
        let mut ranges: Vec<(u64, u64)> = Vec::new();
        let n = rng.gen_range(1usize..40);
        for _ in 0..n {
            let len = rng.gen_range(1u64..(64 << 20));
            let addr = vmm.mmap(len).expect("no fault plan").addr;
            assert_eq!(addr % HUGE_PAGE_BYTES, 0);
            let rounded = len.div_ceil(HUGE_PAGE_BYTES) * HUGE_PAGE_BYTES;
            for &(a, l) in &ranges {
                assert!(addr + rounded <= a || a + l <= addr);
            }
            ranges.push((addr, rounded));
        }
        let total: u64 = ranges.iter().map(|&(_, l)| l).sum();
        assert_eq!(vmm.mapped_bytes(), total);
    }
}

#[test]
fn residency_accounting_matches_subreleases() {
    for case in 0..128u64 {
        let mut rng = SmallRng::seed_from_u64(0x0521 + case);
        let hp_count = rng.gen_range(1u64..8);
        let mut vmm = Vmm::new();
        let base = vmm
            .mmap(hp_count * HUGE_PAGE_BYTES)
            .expect("no fault plan")
            .addr;
        let pages_total = hp_count * HUGE_PAGE_BYTES / TCMALLOC_PAGE_BYTES;
        // Track released TCMalloc pages exactly.
        let mut released = vec![false; pages_total as usize];
        let cuts = rng.gen_range(0usize..12);
        for _ in 0..cuts {
            let start = rng.gen_range(0u64..2048) % pages_total;
            let len = rng.gen_range(1u64..64).min(pages_total - start);
            if len == 0 {
                continue;
            }
            vmm.subrelease(
                base + start * TCMALLOC_PAGE_BYTES,
                len * TCMALLOC_PAGE_BYTES,
            )
            .expect("mapped range");
            for p in start..start + len {
                released[p as usize] = true;
            }
        }
        let released_pages = released.iter().filter(|&&r| r).count() as u64;
        assert_eq!(
            vmm.page_table().resident_bytes(),
            (pages_total - released_pages) * TCMALLOC_PAGE_BYTES
        );
        // Coverage: only untouched hugepages remain huge-backed.
        for hp in 0..hp_count {
            let touched = released[(hp * 256) as usize..((hp + 1) * 256) as usize]
                .iter()
                .any(|&r| r);
            assert_eq!(
                vmm.page_table().is_huge_backed(base + hp * HUGE_PAGE_BYTES),
                !touched
            );
        }
    }
}

#[test]
fn reoccupy_restores_residency_exactly() {
    for case in 0..128u64 {
        let mut rng = SmallRng::seed_from_u64(0x0522 + case);
        let start = rng.gen_range(0u64..200);
        let len = rng.gen_range(1u64..56);
        let mut vmm = Vmm::new();
        let base = vmm.mmap(HUGE_PAGE_BYTES).expect("no fault plan").addr;
        vmm.subrelease(base, HUGE_PAGE_BYTES).expect("mapped range");
        assert_eq!(vmm.page_table().resident_bytes(), 0);
        vmm.reoccupy(
            base + start * TCMALLOC_PAGE_BYTES,
            len * TCMALLOC_PAGE_BYTES,
        );
        assert_eq!(vmm.page_table().resident_bytes(), len * TCMALLOC_PAGE_BYTES);
        // Still broken: reoccupation does not rebuild the hugepage.
        assert!(!vmm.page_table().is_huge_backed(base));
    }
}
