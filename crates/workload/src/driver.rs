//! The request-level workload driver.
//!
//! This is the "application" of the reproduction: it replays a workload
//! model against one allocator instance on one simulated machine and
//! produces exactly the metrics the paper's experiments report —
//! **application productivity** (requests per CPU-second), CPI, LLC load
//! misses (Table 1), dTLB walk cycles (Table 2), RAM usage, hugepage
//! coverage (Figure 17), malloc cycle share (Figure 5a), and the per-vCPU
//! miss telemetry of Figure 9b.
//!
//! The driver realizes the paper's core causal chains end-to-end:
//! objects freed in an LLC domain are warm there, so reallocating them in
//! the same domain (NUCA transfer caches) avoids remote-LLC transfers; and
//! the page-table state the pageheap produces (hugepages intact vs
//! subreleased) feeds the dTLB simulator on every access.

use crate::spec::WorkloadSpec;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};
use wsc_parallel::{Engine, Task, TaskError};
use wsc_prng::SmallRng;
use wsc_sim_hw::cache::{LlcAccess, LlcModel, LlcStats};
use wsc_sim_hw::tlb::{TlbGeometry, TlbSim, TlbStats};
use wsc_sim_hw::topology::{CpuId, Platform};
use wsc_sim_os::clock::{Clock, NS_PER_SEC};
use wsc_sim_os::sched::Scheduler;
use wsc_tcmalloc::stats::FragmentationBreakdown;
use wsc_tcmalloc::{Tcmalloc, TcmallocConfig};
use wsc_telemetry::timeseries::TimeSeries;

/// Instructions charged per malloc/free pair beyond per-request work
/// (≈40 for the fast path each way, §3).
const INSTR_PER_ALLOC_PAIR: u64 = 80;

/// Cap on program-long objects retained per process, so "Forever" lifetimes
/// model a bounded in-memory working set (cache eviction), not a leak.
const WORKING_SET_MAX_OBJECTS: usize = 60_000;
const WORKING_SET_MAX_BYTES: u64 = 192 << 20;

/// Driver parameters.
#[derive(Clone, Debug)]
pub struct DriverConfig {
    /// Requests to simulate.
    pub requests: u64,
    /// RNG seed (everything is deterministic given it).
    pub seed: u64,
    /// CPUs this process is constrained to (the control-plane cpuset).
    pub cpuset: Vec<CpuId>,
    /// How often the load level (thread count) is re-evaluated.
    pub load_interval_ns: u64,
    /// How often memory/threads time series are recorded.
    pub record_interval_ns: u64,
    /// Free every live object at the end (process teardown).
    pub drain_at_end: bool,
    /// Probability a free executes on the thread handling the *current*
    /// request rather than near the allocating CPU — the cross-CPU object
    /// flow that the transfer cache exists to serve (§4.2).
    pub remote_free_frac: f64,
}

impl DriverConfig {
    /// A sensible default: `requests` on 16 CPUs spread round-robin across
    /// the platform's LLC domains (large WSC applications "may span across
    /// multiple cache domains", §4.2).
    pub fn new(requests: u64, seed: u64, platform: &Platform) -> Self {
        let n = platform.num_cpus().min(16);
        // Span a handful of LLC domains, as the control plane would for an
        // application of this size (§4.2), without scattering over every
        // chiplet of a large machine.
        let domains = platform.num_domains().min(4);
        let per_domain = platform.cpus_per_domain();
        let cpuset = (0..n)
            .map(|i| {
                let d = i % domains;
                let k = i / domains;
                CpuId(((d * per_domain + k) % platform.num_cpus()) as u32)
            })
            .collect();
        Self {
            requests,
            seed,
            cpuset,
            load_interval_ns: NS_PER_SEC / 4,
            record_interval_ns: NS_PER_SEC / 4,
            drain_at_end: false,
            remote_free_frac: 0.5,
        }
    }

    /// Uses the given cpuset instead of the default.
    pub fn with_cpuset(mut self, cpuset: Vec<CpuId>) -> Self {
        self.cpuset = cpuset;
        self
    }
}

/// Everything one run measures.
#[derive(Clone, Debug)]
pub struct RunReport {
    /// Workload name.
    pub workload: String,
    /// Requests completed.
    pub requests: u64,
    /// Simulated wall-clock seconds.
    pub sim_seconds: f64,
    /// CPU-seconds of work performed (across threads).
    pub busy_cpu_seconds: f64,
    /// The productivity metric: requests per busy CPU-second.
    pub throughput: f64,
    /// Cycles per instruction.
    pub cpi: f64,
    /// Estimated retired instructions.
    pub instructions: f64,
    /// LLC counters.
    pub llc: LlcStats,
    /// LLC load misses per kilo-instruction (Table 1).
    pub llc_mpki: f64,
    /// dTLB counters.
    pub tlb: TlbStats,
    /// Fraction of cycles spent in page walks, % (Table 2).
    pub dtlb_walk_pct: f64,
    /// Fraction of busy time inside the allocator (Figure 5a).
    pub malloc_frac: f64,
    /// Mean resident heap bytes over the run (the RAM metric).
    pub avg_resident_bytes: f64,
    /// Peak resident heap bytes.
    pub peak_resident_bytes: u64,
    /// Mean hugepage coverage over the run (Figure 17a).
    pub avg_hugepage_coverage: f64,
    /// Final fragmentation breakdown (Figures 5b/6b).
    pub fragmentation: FragmentationBreakdown,
    /// Worker-thread time series (Figure 9a).
    pub threads_ts: TimeSeries,
    /// Resident-bytes time series.
    pub resident_ts: TimeSeries,
    /// Per-vCPU miss counts (Figure 9b).
    pub percpu_misses: Vec<u64>,
    /// Allocations the kernel refused (injected ENOMEM / hard limit that
    /// survived the pageheap's release-and-retry). Always zero without a
    /// fault plan or memory limit.
    pub failed_allocs: u64,
}

struct LiveObject {
    addr: u64,
    size: u64,
    home_cpu: CpuId,
}

/// Runs `spec` against a fresh allocator configured with `tcm_cfg` on
/// `platform`. Returns the metrics and the allocator (for telemetry that
/// lives inside it, e.g. span statistics and sampled profiles).
pub fn run(
    spec: &WorkloadSpec,
    platform: &Platform,
    tcm_cfg: TcmallocConfig,
    cfg: &DriverConfig,
) -> (RunReport, Tcmalloc) {
    assert!(!cfg.cpuset.is_empty(), "cpuset must be non-empty");
    let clock = Clock::new();
    let mut tcm = Tcmalloc::new(tcm_cfg, platform.clone(), clock.clone());
    let mut sched = Scheduler::new(cfg.cpuset.clone());
    let mut llc = LlcModel::new(platform.num_domains(), platform.llc_bytes_per_domain());
    let mut tlb = TlbSim::new(TlbGeometry::server());
    let mut rng = SmallRng::seed_from_u64(cfg.seed);
    let cost = *tcm.cost_model();

    // Pending frees ordered by deadline; working set of program-long objects.
    let mut frees: BinaryHeap<Reverse<(u64, usize)>> = BinaryHeap::new();
    let mut objects: Vec<Option<LiveObject>> = Vec::new();
    let mut free_slots: Vec<usize> = Vec::new();
    let mut working_set: VecDeque<usize> = VecDeque::new();
    let mut working_set_bytes: u64 = 0;
    let mut ws_cursor = 0usize;

    let mut busy_ns = 0.0f64;
    let mut malloc_ns = 0.0f64;
    let mut failed_allocs = 0u64;
    let mut walk_ns = 0.0f64;
    let mut instructions = 0u64;
    let mut next_load_ns = 0u64;
    let mut next_record_ns = 0u64;
    let mut threads_ts = TimeSeries::new("threads");
    let mut resident_ts = TimeSeries::new("resident");
    let mut resident_sum = 0.0f64;
    let mut coverage_sum = 0.0f64;
    let mut record_count = 0u64;
    let mut peak_resident = 0u64;

    let store = |objects: &mut Vec<Option<LiveObject>>,
                 free_slots: &mut Vec<usize>,
                 obj: LiveObject|
     -> usize {
        if let Some(idx) = free_slots.pop() {
            objects[idx] = Some(obj);
            idx
        } else {
            objects.push(Some(obj));
            objects.len() - 1
        }
    };

    // Touches an object from `cpu`: LLC + dTLB costs, returns stall ns.
    let mut touch = |tcm: &Tcmalloc,
                     llc: &mut LlcModel,
                     tlb: &mut TlbSim,
                     cpu: CpuId,
                     addr: u64,
                     size: u64|
     -> f64 {
        let domain = platform.domain_of(cpu);
        let mut ns = 0.0;
        // One LLC access per object granule (clamped — large objects are
        // touched at a sampled set of pages).
        match llc.access(domain, addr, size.min(256 << 10)) {
            LlcAccess::Hit => ns += cost.llc_hit_ns,
            LlcAccess::MissRemote => ns += cost.remote_llc_ns,
            LlcAccess::MissMemory => ns += cost.mem_ns,
        }
        // dTLB: translate up to 4 pages of the object at the page size the
        // kernel currently backs them with.
        let pt = tcm.pageheap().vmm().page_table();
        let pages = (size / (8 << 10)).clamp(1, 4);
        for p in 0..pages {
            let a = addr + p * (8 << 10);
            let out = tlb.access(a, pt.page_size_of(a));
            match out {
                wsc_sim_hw::tlb::TlbOutcome::L1Hit => {}
                wsc_sim_hw::tlb::TlbOutcome::L2Hit => ns += cost.l2_tlb_hit_ns,
                wsc_sim_hw::tlb::TlbOutcome::Walk => {
                    ns += cost.tlb_walk_ns;
                    walk_ns += cost.tlb_walk_ns;
                }
            }
        }
        ns
    };

    for _req in 0..cfg.requests {
        let now = clock.now_ns();
        // Load / thread-count evaluation.
        if now >= next_load_ns {
            next_load_ns = now + cfg.load_interval_ns;
            let t = spec.threads.at(now, &mut rng).min(cfg.cpuset.len() * 4);
            sched.set_active_threads(t);
            threads_ts.push(now, t as f64);
        }
        let active = sched.active_threads();
        let thread = rng.gen_range(0..active);
        let cpu = sched.cpu_for_thread(thread);

        let mut service_ns = 0.0f64;

        // Process due frees on this thread's CPU (the consumer touches the
        // object, then frees it — so the data is warm in *this* domain).
        while let Some(&Reverse((deadline, idx))) = frees.peek() {
            if deadline > now {
                break;
            }
            frees.pop();
            let obj = objects[idx].take().expect("object already freed");
            free_slots.push(idx);
            // Most frees happen near the allocating CPU (the owning
            // component); the rest on whichever thread consumes the object.
            let free_cpu = if rng.gen::<f64>() < cfg.remote_free_frac {
                cpu
            } else {
                obj.home_cpu
            };
            service_ns += touch(&tcm, &mut llc, &mut tlb, free_cpu, obj.addr, obj.size);
            let f = tcm.free(obj.addr, obj.size, free_cpu);
            service_ns += f.ns;
            malloc_ns += f.ns;
            instructions += INSTR_PER_ALLOC_PAIR / 2;
        }

        // Allocations for this request.
        let n_allocs = {
            let base = spec.allocs_per_request.floor() as u64;
            let frac = spec.allocs_per_request - base as f64;
            base + u64::from(rng.gen::<f64>() < frac)
        };
        for _ in 0..n_allocs {
            let (size, site) = spec.sample_size(now, &mut rng);
            // Fault-aware: a refused allocation drops the request's object
            // (the workload degrades) instead of aborting the run.
            let a = match tcm.try_malloc_with_site(size, cpu, site as u64) {
                Ok(a) => a,
                Err(_) => {
                    failed_allocs += 1;
                    continue;
                }
            };
            service_ns += a.ns;
            malloc_ns += a.ns;
            instructions += INSTR_PER_ALLOC_PAIR / 2;
            for _ in 0..spec.accesses_per_object {
                service_ns += touch(&tcm, &mut llc, &mut tlb, cpu, a.addr, size);
            }
            let idx = store(
                &mut objects,
                &mut free_slots,
                LiveObject {
                    addr: a.addr,
                    size,
                    home_cpu: cpu,
                },
            );
            match spec.sample_lifetime(size, site, &mut rng) {
                Some(lt) => frees.push(Reverse((now + lt, idx))),
                None => {
                    working_set.push_back(idx);
                    working_set_bytes += size;
                    // Bounded working set: evict oldest beyond the cap.
                    while working_set.len() > WORKING_SET_MAX_OBJECTS
                        || working_set_bytes > WORKING_SET_MAX_BYTES
                    {
                        let evict = working_set.pop_front().expect("non-empty");
                        if let Some(obj) = objects[evict].take() {
                            free_slots.push(evict);
                            working_set_bytes -= obj.size;
                            let f = tcm.free(obj.addr, obj.size, cpu);
                            service_ns += f.ns;
                            malloc_ns += f.ns;
                        }
                    }
                }
            }
        }

        // Working-set re-accesses (long-lived data locality).
        if !working_set.is_empty() {
            for _ in 0..spec.working_set_touches {
                ws_cursor =
                    (ws_cursor + 1 + rng.gen_range(0..working_set.len())) % working_set.len();
                if let Some(obj) = objects[working_set[ws_cursor]].as_ref() {
                    let (addr, size) = (obj.addr, obj.size);
                    service_ns += touch(&tcm, &mut llc, &mut tlb, cpu, addr, size);
                }
            }
        }

        // Application compute (base IPC of 2 on the simulated core).
        let base_ns = cost.cycles_to_ns(spec.instr_per_request as f64 / 2.0);
        service_ns += base_ns;
        instructions += spec.instr_per_request;
        busy_ns += service_ns;

        // Open-loop arrival: wall time advances with the offered load.
        let interarrival = 1e9 / (spec.request_rate_hz * active as f64);
        clock.advance(interarrival.max(1.0) as u64);
        tcm.maintain();

        if now >= next_record_ns {
            next_record_ns = now + cfg.record_interval_ns;
            let resident = tcm.resident_bytes();
            resident_ts.push(now, resident as f64);
            resident_sum += resident as f64;
            coverage_sum += tcm.hugepage_coverage();
            record_count += 1;
            peak_resident = peak_resident.max(resident);
        }
    }

    if cfg.drain_at_end {
        let cpu = cfg.cpuset[0];
        for obj in objects.iter_mut().filter_map(Option::take) {
            tcm.free(obj.addr, obj.size, cpu);
        }
    }

    let busy_cpu_seconds = busy_ns / 1e9;
    let sim_seconds = clock.now_ns() as f64 / 1e9;
    let cycles = cost.ns_to_cycles(busy_ns);
    let llc_stats = llc.stats();
    let tlb_stats = tlb.stats();
    let report = RunReport {
        workload: spec.name.clone(),
        requests: cfg.requests,
        sim_seconds,
        busy_cpu_seconds,
        throughput: cfg.requests as f64 / busy_cpu_seconds.max(1e-12),
        cpi: cycles / (instructions as f64).max(1.0),
        instructions: instructions as f64,
        llc: llc_stats,
        llc_mpki: llc_stats.misses() as f64 * 1000.0 / (instructions as f64).max(1.0),
        tlb: tlb_stats,
        dtlb_walk_pct: walk_ns / busy_ns.max(1e-12) * 100.0,
        malloc_frac: malloc_ns / busy_ns.max(1e-12),
        avg_resident_bytes: resident_sum / record_count.max(1) as f64,
        peak_resident_bytes: peak_resident,
        avg_hugepage_coverage: coverage_sum / record_count.max(1) as f64,
        fragmentation: tcm.fragmentation(),
        threads_ts,
        resident_ts,
        percpu_misses: tcm.percpu_miss_counts(),
        failed_allocs,
    };
    (report, tcm)
}

/// One unit of work for [`run_batch`]: a complete, self-contained run
/// specification (workload, machine, allocator config, driver knobs).
#[derive(Clone, Debug)]
pub struct RunJob {
    /// Workload to replay.
    pub spec: WorkloadSpec,
    /// Machine to replay it on.
    pub platform: Platform,
    /// Allocator configuration under test.
    pub tcm_cfg: TcmallocConfig,
    /// Driver knobs (including the run's seed).
    pub dcfg: DriverConfig,
}

/// Runs a batch of independent jobs on `engine`, returning `extract`'s
/// value per job **in submission order** regardless of thread count.
///
/// Each job builds and drops its own `Tcmalloc` + sim-os instance inside
/// the worker; only the extracted value crosses threads, so `R` is the
/// sole `Send` requirement. The task seed is the job's own `dcfg.seed`
/// (batching never reseeds a run).
///
/// # Errors
///
/// Returns the [`TaskError`] naming the lowest-index failing job (its
/// label is `"{workload} seed {seed:#x}"`) if any job panics.
pub fn run_batch<R: Send>(
    engine: &Engine,
    jobs: Vec<RunJob>,
    extract: impl Fn(&RunReport, &Tcmalloc) -> R + Sync,
) -> Result<Vec<R>, TaskError> {
    let tasks: Vec<Task<RunJob>> = jobs
        .into_iter()
        .map(|job| Task {
            seed: job.dcfg.seed,
            label: format!("{} seed {:#x}", job.spec.name, job.dcfg.seed),
            payload: job,
        })
        .collect();
    engine.run(&tasks, |task, _| {
        let j = &task.payload;
        let (report, tcm) = run(&j.spec, &j.platform, j.tcm_cfg, &j.dcfg);
        extract(&report, &tcm)
    })
}

#[cfg(test)]
// Tests may unwrap: a panic IS the failure report here.
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::profiles;

    fn platform() -> Platform {
        Platform::chiplet("test", 1, 2, 4, 2)
    }

    fn quick(spec: &WorkloadSpec, cfg: TcmallocConfig, seed: u64) -> (RunReport, Tcmalloc) {
        let p = platform();
        let dcfg = DriverConfig::new(4_000, seed, &p);
        run(spec, &p, cfg, &dcfg)
    }

    #[test]
    fn fleet_run_produces_sane_metrics() {
        let (r, tcm) = quick(&profiles::fleet_mix(), TcmallocConfig::baseline(), 1);
        assert_eq!(r.requests, 4_000);
        assert!(r.throughput > 0.0);
        assert!(r.cpi > 0.4 && r.cpi < 10.0, "cpi {}", r.cpi);
        assert!(
            r.malloc_frac > 0.005 && r.malloc_frac < 0.30,
            "malloc {}",
            r.malloc_frac
        );
        assert!(r.avg_resident_bytes > 0.0);
        assert!(r.llc.accesses > 0 && r.tlb.accesses > 0);
        assert!(tcm.live_bytes() > 0, "working set persists");
        assert!(r.fragmentation.ratio() > 0.0);
    }

    #[test]
    fn run_batch_is_thread_count_invariant() {
        let p = platform();
        let jobs: Vec<RunJob> = (0..4)
            .map(|i| RunJob {
                spec: profiles::fleet_mix(),
                platform: p.clone(),
                tcm_cfg: TcmallocConfig::baseline(),
                dcfg: DriverConfig::new(1_000, 10 + i, &p),
            })
            .collect();
        let serial = run_batch(&Engine::new(1), jobs.clone(), |r, _| {
            (r.throughput, r.avg_resident_bytes)
        })
        .unwrap();
        let threaded = run_batch(&Engine::new(3), jobs, |r, _| {
            (r.throughput, r.avg_resident_bytes)
        })
        .unwrap();
        assert_eq!(serial, threaded, "submission-order results, bit-identical");
    }

    #[test]
    fn deterministic_given_seed() {
        let (a, _) = quick(&profiles::fleet_mix(), TcmallocConfig::baseline(), 7);
        let (b, _) = quick(&profiles::fleet_mix(), TcmallocConfig::baseline(), 7);
        assert_eq!(a.busy_cpu_seconds, b.busy_cpu_seconds);
        assert_eq!(a.llc, b.llc);
        assert_eq!(a.tlb, b.tlb);
        assert_eq!(a.fragmentation, b.fragmentation);
    }

    #[test]
    fn seeds_differ() {
        let (a, _) = quick(&profiles::fleet_mix(), TcmallocConfig::baseline(), 1);
        let (b, _) = quick(&profiles::fleet_mix(), TcmallocConfig::baseline(), 2);
        assert_ne!(a.busy_cpu_seconds, b.busy_cpu_seconds);
    }

    #[test]
    fn spec_has_near_zero_malloc_share() {
        let (spec_r, _) = quick(&profiles::spec_cpu(0), TcmallocConfig::baseline(), 3);
        let (fleet_r, _) = quick(&profiles::fleet_mix(), TcmallocConfig::baseline(), 3);
        assert!(
            spec_r.malloc_frac < fleet_r.malloc_frac / 3.0,
            "spec {} vs fleet {}",
            spec_r.malloc_frac,
            fleet_r.malloc_frac
        );
    }

    #[test]
    fn drain_empties_heap() {
        let p = platform();
        let dcfg = DriverConfig {
            drain_at_end: true,
            ..DriverConfig::new(2_000, 5, &p)
        };
        let (_r, tcm) = run(
            &profiles::fleet_mix(),
            &p,
            TcmallocConfig::baseline(),
            &dcfg,
        );
        assert_eq!(tcm.live_bytes(), 0);
        assert_eq!(tcm.live_objects(), 0);
    }

    /// A middle-tier-like spec with time compressed so a short test run
    /// spans several load cycles.
    fn bursty_spec() -> WorkloadSpec {
        let mut spec = profiles::middle_tier_service();
        spec.threads.base = 5.0;
        spec.threads.amplitude = 0.9;
        spec.threads.period_ns = 20_000_000; // 20 ms diurnal cycle
        spec.threads.spike_prob = 0.10;
        spec.threads.spike_mult = 3.0;
        spec.threads.max = 16;
        spec
    }

    #[test]
    fn thread_series_fluctuates() {
        let p = platform();
        let dcfg = DriverConfig {
            load_interval_ns: 1_000_000,
            ..DriverConfig::new(6_000, 11, &p)
        };
        let (r, _) = run(&bursty_spec(), &p, TcmallocConfig::baseline(), &dcfg);
        assert!(r.threads_ts.len() > 2);
        let (lo, hi) = (r.threads_ts.min(), r.threads_ts.max());
        assert!(hi.expect("non-empty") > lo.expect("non-empty"));
    }

    #[test]
    fn vcpu_miss_skew_exists() {
        // Fig 9b: with fluctuating threads, low vCPUs miss more than high.
        let p = platform();
        let dcfg = DriverConfig {
            load_interval_ns: 1_000_000,
            ..DriverConfig::new(10_000, 13, &p)
        };
        let (r, _) = run(&bursty_spec(), &p, TcmallocConfig::baseline(), &dcfg);
        let m = &r.percpu_misses;
        assert!(m.len() > 4, "several vCPUs populated");
        let lo: u64 = m[..2].iter().sum();
        let hi: u64 = m[m.len() - 2..].iter().sum();
        assert!(lo > hi, "low vCPUs {lo} vs high {hi}");
    }
}
