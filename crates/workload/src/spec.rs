//! Workload models: size distributions, size-conditional lifetimes, thread
//! dynamics, and request structure.
//!
//! The paper's evaluation depends on its workloads through four published
//! characteristics, each of which a [`WorkloadSpec`] parameterizes:
//!
//! * the allocated-object **size distribution** (Figure 7: <1 KiB objects
//!   are 98% of allocations but 28% of bytes; >8 KiB objects are 50% of
//!   bytes; >256 KiB large allocations are 22%),
//! * the **lifetime distribution conditional on size** (Figure 8: 46% of
//!   small objects live under 1 ms, large objects live long, and lifetimes
//!   are diverse *within* every size),
//! * **worker-thread dynamics** (Figure 9a: diurnal load plus spikes),
//! * **request structure** (allocations per request, compute per request,
//!   access density — §5 notes smaller objects have higher access density).

use wsc_prng::SmallRng;

/// A size distribution component.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum SizeDist {
    /// Always the same size.
    Fixed(u64),
    /// Uniform in `[lo, hi]`.
    Uniform {
        /// Smallest size.
        lo: u64,
        /// Largest size.
        hi: u64,
    },
    /// Log-uniform in `[lo, hi]`: covers decades evenly, matching the
    /// heavy-tailed shape of Figure 7.
    LogUniform {
        /// Smallest size.
        lo: u64,
        /// Largest size.
        hi: u64,
    },
}

impl SizeDist {
    /// Draws a size.
    pub fn sample(&self, rng: &mut SmallRng) -> u64 {
        match *self {
            SizeDist::Fixed(s) => s,
            SizeDist::Uniform { lo, hi } => rng.gen_range(lo..=hi),
            SizeDist::LogUniform { lo, hi } => {
                let (l, h) = ((lo.max(1) as f64).ln(), (hi.max(1) as f64).ln());
                (l + rng.gen::<f64>() * (h - l)).exp() as u64
            }
        }
    }
}

/// A lifetime distribution component.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum LifeDist {
    /// Exponential with the given mean (bursty short-lived objects).
    Exp {
        /// Mean lifetime, ns.
        mean_ns: f64,
    },
    /// Log-uniform in `[lo, hi]` ns.
    LogUniform {
        /// Shortest lifetime, ns.
        lo_ns: u64,
        /// Longest lifetime, ns.
        hi_ns: u64,
    },
    /// Lives until process teardown (program-long).
    Forever,
}

impl LifeDist {
    /// Draws a lifetime in ns; `None` means program-long.
    pub fn sample(&self, rng: &mut SmallRng) -> Option<u64> {
        match *self {
            LifeDist::Exp { mean_ns } => {
                let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
                Some((-u.ln() * mean_ns) as u64)
            }
            LifeDist::LogUniform { lo_ns, hi_ns } => {
                let (l, h) = ((lo_ns.max(1) as f64).ln(), (hi_ns.max(1) as f64).ln());
                Some((l + rng.gen::<f64>() * (h - l)).exp() as u64)
            }
            LifeDist::Forever => None,
        }
    }
}

/// A weighted mixture of lifetime components.
#[derive(Clone, Debug)]
pub struct LifetimeMix {
    components: Vec<(f64, LifeDist)>,
    total: f64,
}

impl LifetimeMix {
    /// Builds a mixture from `(weight, component)` pairs.
    ///
    /// # Panics
    ///
    /// Panics if empty or total weight is not positive.
    pub fn new(components: Vec<(f64, LifeDist)>) -> Self {
        let total: f64 = components.iter().map(|&(w, _)| w).sum();
        assert!(
            !components.is_empty() && total > 0.0,
            "bad lifetime mixture"
        );
        Self { components, total }
    }

    /// Draws a lifetime; `None` means program-long.
    pub fn sample(&self, rng: &mut SmallRng) -> Option<u64> {
        let mut pick = rng.gen::<f64>() * self.total;
        for &(w, dist) in &self.components {
            pick -= w;
            if pick <= 0.0 {
                return dist.sample(rng);
            }
        }
        self.components.last().expect("non-empty").1.sample(rng)
    }
}

/// Size-bucketed lifetime model: mirrors the Figure 8 structure where the
/// lifetime mixture shifts with object size.
#[derive(Clone, Debug)]
pub struct LifetimeModel {
    /// `(max_size_exclusive, mixture)` in ascending size order; the last
    /// bucket catches everything.
    buckets: Vec<(u64, LifetimeMix)>,
}

impl LifetimeModel {
    /// Builds the model from ascending `(size_bound, mixture)` buckets.
    ///
    /// # Panics
    ///
    /// Panics if empty or bounds are not ascending.
    pub fn new(buckets: Vec<(u64, LifetimeMix)>) -> Self {
        assert!(!buckets.is_empty(), "need at least one bucket");
        assert!(
            buckets.windows(2).all(|w| w[0].0 < w[1].0),
            "bucket bounds must ascend"
        );
        Self { buckets }
    }

    /// Draws a lifetime for an object of `size` bytes.
    pub fn sample(&self, size: u64, rng: &mut SmallRng) -> Option<u64> {
        let mix = self
            .buckets
            .iter()
            .find(|&&(bound, _)| size < bound)
            .map_or(&self.buckets.last().expect("non-empty").1, |(_, m)| m);
        mix.sample(rng)
    }
}

/// Worker-thread dynamics (Figure 9a): diurnal sinusoid plus load spikes.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ThreadModel {
    /// Mean worker threads.
    pub base: f64,
    /// Diurnal amplitude as a fraction of `base` (0 = constant).
    pub amplitude: f64,
    /// Diurnal period, ns.
    pub period_ns: u64,
    /// Diurnal phase offset, ns. A fleet spans timezones: two machines
    /// running the same binary sit at different points of the load curve,
    /// so the fleet survey gives each machine its own offset.
    pub phase_ns: u64,
    /// Per-evaluation probability of a load spike.
    pub spike_prob: f64,
    /// Spike multiplier on the current level.
    pub spike_mult: f64,
    /// Hard cap (the cpuset size bounds it again downstream).
    pub max: usize,
}

impl ThreadModel {
    /// A constant single thread (Redis is single-threaded, §4.1/§4.2).
    pub fn single() -> Self {
        Self {
            base: 1.0,
            amplitude: 0.0,
            period_ns: 1,
            phase_ns: 0,
            spike_prob: 0.0,
            spike_mult: 1.0,
            max: 1,
        }
    }

    /// Thread count at simulated time `t_ns`.
    pub fn at(&self, t_ns: u64, rng: &mut SmallRng) -> usize {
        let shifted = t_ns.wrapping_add(self.phase_ns);
        let phase = (shifted % self.period_ns.max(1)) as f64 / self.period_ns.max(1) as f64
            * std::f64::consts::TAU;
        let mut level = self.base * (1.0 + self.amplitude * phase.sin());
        if rng.gen::<f64>() < self.spike_prob {
            level *= self.spike_mult;
        }
        (level.round() as usize).clamp(1, self.max.max(1))
    }
}

/// One component of a workload's allocation mixture: an allocation *site
/// family* with its own size distribution and (optionally) its own lifetime
/// mixture.
///
/// Lifetimes correlate strongly with allocation sites in real servers (the
/// premise of the profile-guided lifetime work the paper cites in §4.3/§5):
/// an RPC-scratch site is near-always short-lived while a cache-insert site
/// is near-always long-lived, even at the same object size. Components with
/// an explicit lifetime override model that correlation; others fall back to
/// the workload's size-conditional model.
#[derive(Clone, Debug)]
pub struct SizeComponent {
    /// Relative weight (share of allocations at time-average).
    pub weight: f64,
    /// Object-size distribution.
    pub dist: SizeDist,
    /// Site-specific lifetime mixture, if this site has one.
    pub lifetime: Option<LifetimeMix>,
}

impl SizeComponent {
    /// A component using the workload-level lifetime model.
    pub fn new(weight: f64, dist: SizeDist) -> Self {
        Self {
            weight,
            dist,
            lifetime: None,
        }
    }

    /// A component with a site-specific lifetime mixture.
    pub fn with_lifetime(weight: f64, dist: SizeDist, lifetime: LifetimeMix) -> Self {
        Self {
            weight,
            dist,
            lifetime: Some(lifetime),
        }
    }
}

/// A complete workload model.
#[derive(Clone, Debug)]
pub struct WorkloadSpec {
    /// Workload name (matches the paper's figures).
    pub name: String,
    /// Weighted allocation-site components.
    pub size_mix: Vec<SizeComponent>,
    /// Size-conditional lifetime model.
    pub lifetime: LifetimeModel,
    /// Worker-thread dynamics.
    pub threads: ThreadModel,
    /// Mean allocations per request.
    pub allocs_per_request: f64,
    /// Instructions of application work per request (excluding stalls).
    pub instr_per_request: u64,
    /// Times each freshly-allocated object is accessed.
    pub accesses_per_object: u32,
    /// Random re-accesses into the long-lived working set per request.
    pub working_set_touches: u32,
    /// Per-thread request arrival rate, Hz.
    pub request_rate_hz: f64,
    /// Period of the workload's *phase* drift: the size mixture's component
    /// weights oscillate over this period (query mixes, compactions, batch
    /// jobs), which is what makes per-class live counts swing and spans
    /// drain — the churn behind Figures 13 and 16. Zero disables drift.
    pub phase_period_ns: u64,
    /// Amplitude of the phase drift in `[0, 1)`.
    pub phase_strength: f64,
}

impl WorkloadSpec {
    /// Phase multiplier for mixture component `i` at time `t_ns`: the
    /// components wax and wane out of phase with one another.
    fn phase_weight(&self, i: usize, t_ns: u64) -> f64 {
        if self.phase_period_ns == 0 || self.phase_strength == 0.0 {
            return 1.0;
        }
        let frac = (t_ns % self.phase_period_ns) as f64 / self.phase_period_ns as f64;
        let offset = i as f64 / self.size_mix.len() as f64;
        1.0 + self.phase_strength * ((frac + offset) * std::f64::consts::TAU).sin()
    }

    /// Draws an object size at time `t_ns` and the index of the component
    /// (allocation site) it came from.
    pub fn sample_size(&self, t_ns: u64, rng: &mut SmallRng) -> (u64, usize) {
        let total: f64 = self
            .size_mix
            .iter()
            .enumerate()
            .map(|(i, c)| c.weight * self.phase_weight(i, t_ns))
            .sum();
        let mut pick = rng.gen::<f64>() * total;
        for (i, c) in self.size_mix.iter().enumerate() {
            pick -= c.weight * self.phase_weight(i, t_ns);
            if pick <= 0.0 {
                return (c.dist.sample(rng).max(1), i);
            }
        }
        let last = self.size_mix.len() - 1;
        (self.size_mix[last].dist.sample(rng).max(1), last)
    }

    /// Draws a lifetime for an object of `size` allocated at site
    /// `component`: the site-specific mixture when the component has one,
    /// else the size-conditional model.
    pub fn sample_lifetime(&self, size: u64, component: usize, rng: &mut SmallRng) -> Option<u64> {
        if let Some(mix) = self
            .size_mix
            .get(component)
            .and_then(|c| c.lifetime.as_ref())
        {
            mix.sample(rng)
        } else {
            self.lifetime.sample(size, rng)
        }
    }
}

#[cfg(test)]
// Tests may unwrap: a panic IS the failure report here.
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(42)
    }

    #[test]
    fn size_dists_stay_in_range() {
        let mut r = rng();
        for _ in 0..1000 {
            let u = SizeDist::Uniform { lo: 10, hi: 20 }.sample(&mut r);
            assert!((10..=20).contains(&u));
            let l = SizeDist::LogUniform { lo: 8, hi: 1 << 20 }.sample(&mut r);
            assert!((7..=1 << 20).contains(&l), "log-uniform {l}");
            assert_eq!(SizeDist::Fixed(99).sample(&mut r), 99);
        }
    }

    #[test]
    fn log_uniform_covers_decades() {
        let mut r = rng();
        let dist = SizeDist::LogUniform { lo: 8, hi: 8 << 20 };
        let mut small = 0;
        let mut large = 0;
        for _ in 0..10_000 {
            let s = dist.sample(&mut r);
            if s < 1024 {
                small += 1;
            }
            if s > 1 << 20 {
                large += 1;
            }
        }
        // Log-uniform: each decade gets similar mass.
        assert!(small > 2000 && large > 500, "small {small} large {large}");
    }

    #[test]
    fn exp_lifetime_mean() {
        let mut r = rng();
        let d = LifeDist::Exp { mean_ns: 1000.0 };
        let n = 20_000;
        let total: u64 = (0..n)
            .map(|_| d.sample(&mut r).expect("Exp always samples"))
            .sum();
        let mean = total as f64 / n as f64;
        assert!((mean - 1000.0).abs() < 50.0, "mean {mean}");
    }

    #[test]
    fn forever_is_none() {
        let mut r = rng();
        assert_eq!(LifeDist::Forever.sample(&mut r), None);
    }

    #[test]
    fn lifetime_model_buckets_by_size() {
        let model = LifetimeModel::new(vec![
            (
                1024,
                LifetimeMix::new(vec![(1.0, LifeDist::Exp { mean_ns: 100.0 })]),
            ),
            (u64::MAX, LifetimeMix::new(vec![(1.0, LifeDist::Forever)])),
        ]);
        let mut r = rng();
        assert!(model.sample(64, &mut r).is_some());
        assert_eq!(model.sample(1 << 20, &mut r), None);
    }

    #[test]
    #[should_panic(expected = "ascend")]
    fn lifetime_model_rejects_unsorted() {
        let mix = LifetimeMix::new(vec![(1.0, LifeDist::Forever)]);
        let _ = LifetimeModel::new(vec![(100, mix.clone()), (100, mix)]);
    }

    #[test]
    fn thread_model_fluctuates_and_clamps() {
        let m = ThreadModel {
            base: 20.0,
            amplitude: 0.5,
            period_ns: 1_000_000,
            phase_ns: 0,
            spike_prob: 0.0,
            spike_mult: 1.0,
            max: 64,
        };
        let mut r = rng();
        let peak = m.at(250_000, &mut r); // sin peak
        let trough = m.at(750_000, &mut r); // sin trough
        assert!(peak > trough, "peak {peak} vs trough {trough}");
        assert!(peak <= 64 && trough >= 1);
        assert_eq!(ThreadModel::single().at(12345, &mut r), 1);
    }

    #[test]
    fn phase_offset_shifts_the_diurnal_curve() {
        let m = ThreadModel {
            base: 20.0,
            amplitude: 0.5,
            period_ns: 1_000_000,
            phase_ns: 0,
            spike_prob: 0.0,
            spike_mult: 1.0,
            max: 64,
        };
        let shifted = ThreadModel {
            phase_ns: 250_000,
            ..m
        };
        let mut r = rng();
        // A machine a quarter-period "east" sees the peak a quarter-period
        // earlier in its own clock.
        assert_eq!(shifted.at(0, &mut r), m.at(250_000, &mut r));
        assert_eq!(shifted.at(500_000, &mut r), m.at(750_000, &mut r));
        assert!(shifted.at(0, &mut r) > shifted.at(500_000, &mut r));
    }

    #[test]
    fn spike_multiplies() {
        let m = ThreadModel {
            base: 10.0,
            amplitude: 0.0,
            period_ns: 1,
            phase_ns: 0,
            spike_prob: 1.0,
            spike_mult: 3.0,
            max: 100,
        };
        let mut r = rng();
        assert_eq!(m.at(0, &mut r), 30);
    }

    #[test]
    fn spec_sampling_is_deterministic_per_seed() {
        let spec = crate::profiles::fleet_mix();
        let draw = |seed| {
            let mut r = SmallRng::seed_from_u64(seed);
            (0..50)
                .map(|_| spec.sample_size(0, &mut r).0)
                .collect::<Vec<_>>()
        };
        assert_eq!(draw(7), draw(7));
        assert_ne!(draw(7), draw(8));
    }

    #[test]
    fn phases_shift_the_mixture() {
        let mut spec = crate::profiles::fleet_mix();
        spec.phase_period_ns = 1_000_000;
        spec.phase_strength = 0.9;
        // The tiny-object component (index 0) peaks at a different time than
        // mid components, so the share of small objects varies with t.
        let share_small = |t: u64| {
            let mut r = SmallRng::seed_from_u64(5);
            let n = 20_000;
            (0..n)
                .filter(|_| spec.sample_size(t, &mut r).0 < 64)
                .count() as f64
                / n as f64
        };
        let a = share_small(250_000);
        let b = share_small(750_000);
        assert!((a - b).abs() > 0.01, "phase drift invisible: {a} vs {b}");
    }
}
