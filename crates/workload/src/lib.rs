//! Warehouse-scale workload models and the request-level driver.
//!
//! The paper evaluates its allocator redesigns on production workloads
//! (Spanner, Monarch, Bigtable, F1 query, Disk), dedicated-server benchmarks
//! (Redis, a data-processing pipeline, an image-processing server,
//! TensorFlow Serving), SPEC CPU2006, and the fleet-wide binary mix. This
//! crate provides:
//!
//! * [`spec`] — the workload model vocabulary: size mixtures, size-
//!   conditional lifetime models, worker-thread dynamics, request structure;
//! * [`profiles`] — the concrete calibrated profiles for every workload the
//!   paper names (DESIGN.md documents each calibration);
//! * [`driver`] — the closed loop that replays a profile against a
//!   [`wsc_tcmalloc::Tcmalloc`] instance plus the LLC/dTLB models, yielding
//!   the paper's metrics (throughput, CPI, LLC MPKI, dTLB walk %, RAM).
//!
//! # Example
//!
//! ```
//! use wsc_workload::{driver, profiles};
//! use wsc_tcmalloc::TcmallocConfig;
//! use wsc_sim_hw::topology::Platform;
//!
//! let platform = Platform::chiplet("m", 1, 2, 4, 2);
//! let cfg = driver::DriverConfig::new(500, 42, &platform);
//! let (report, _tcm) = driver::run(
//!     &profiles::fleet_mix(), &platform, TcmallocConfig::baseline(), &cfg);
//! assert!(report.throughput > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod driver;
pub mod profiles;
pub mod spec;
pub mod trace;

pub use driver::{DriverConfig, RunReport};
pub use spec::WorkloadSpec;
